#include "predicates/expansion.hpp"

namespace pi2m::exact {
namespace {

// fast_expansion_sum_zeroelim (Shewchuk, Fig. 10): merge two expansions into
// their exact sum, eliding zeros. Both inputs are in increasing-magnitude,
// non-overlapping form; so is the output.
std::vector<double> sum_zeroelim(const std::vector<double>& e,
                                 const std::vector<double>& f) {
  std::vector<double> h;
  h.reserve(e.size() + f.size());
  if (e.empty()) return f;
  if (f.empty()) return e;

  std::size_t ei = 0, fi = 0;
  double enow = e[0], fnow = f[0];
  double q;
  if ((fnow > enow) == (fnow > -enow)) {
    q = enow;
    ++ei;
  } else {
    q = fnow;
    ++fi;
  }
  double qnew, hh;
  if (ei < e.size() && fi < f.size()) {
    enow = e[ei];
    fnow = f[fi];
    if ((fnow > enow) == (fnow > -enow)) {
      fast_two_sum(enow, q, qnew, hh);
      ++ei;
    } else {
      fast_two_sum(fnow, q, qnew, hh);
      ++fi;
    }
    q = qnew;
    if (hh != 0.0) h.push_back(hh);
    while (ei < e.size() && fi < f.size()) {
      enow = e[ei];
      fnow = f[fi];
      if ((fnow > enow) == (fnow > -enow)) {
        two_sum(q, enow, qnew, hh);
        ++ei;
      } else {
        two_sum(q, fnow, qnew, hh);
        ++fi;
      }
      q = qnew;
      if (hh != 0.0) h.push_back(hh);
    }
  }
  while (ei < e.size()) {
    two_sum(q, e[ei], qnew, hh);
    ++ei;
    q = qnew;
    if (hh != 0.0) h.push_back(hh);
  }
  while (fi < f.size()) {
    two_sum(q, f[fi], qnew, hh);
    ++fi;
    q = qnew;
    if (hh != 0.0) h.push_back(hh);
  }
  if (q != 0.0 || h.empty()) {
    if (q != 0.0) h.push_back(q);
  }
  return h;
}

// scale_expansion_zeroelim (Shewchuk, Fig. 13): exact product expansion * b.
std::vector<double> scale_zeroelim(const std::vector<double>& e, double b) {
  std::vector<double> h;
  if (e.empty() || b == 0.0) return h;
  h.reserve(2 * e.size());
  double q, hh;
  two_prod(e[0], b, q, hh);
  if (hh != 0.0) h.push_back(hh);
  for (std::size_t i = 1; i < e.size(); ++i) {
    double p1, p0, sum;
    two_prod(e[i], b, p1, p0);
    two_sum(q, p0, sum, hh);
    if (hh != 0.0) h.push_back(hh);
    fast_two_sum(p1, sum, q, hh);
    if (hh != 0.0) h.push_back(hh);
  }
  if (q != 0.0 || h.empty()) {
    if (q != 0.0) h.push_back(q);
  }
  return h;
}

}  // namespace

Expansion operator+(const Expansion& a, const Expansion& b) {
  Expansion r;
  r.comps_ = sum_zeroelim(a.comps_, b.comps_);
  return r;
}

Expansion Expansion::negated() const {
  Expansion r;
  r.comps_ = comps_;
  for (double& c : r.comps_) c = -c;
  return r;
}

Expansion operator-(const Expansion& a, const Expansion& b) {
  return a + b.negated();
}

Expansion operator*(const Expansion& a, double s) {
  Expansion r;
  r.comps_ = scale_zeroelim(a.comps_, s);
  return r;
}

Expansion operator*(const Expansion& a, const Expansion& b) {
  // Distribute over b's components; each partial product is exact, and the
  // exact sums keep the result exact. Sizes stay small (predicates use
  // expansions of a handful of components), so the quadratic distribution
  // is fine and simple.
  Expansion acc;
  for (double c : b.components()) {
    acc = acc + (a * c);
  }
  return acc;
}

}  // namespace pi2m::exact
