// Robust geometric predicates: orient3d and insphere.
//
// Strategy (the same class of technique the paper adopts from CGAL [9,71]):
// evaluate the determinant in plain doubles with a static forward error
// bound (Shewchuk's "stage A" filter); when the filter cannot certify the
// sign, fall back to a fully exact evaluation with expansion arithmetic.
// The exact path is hit only near-degenerate inputs, so the common case
// costs one determinant plus one comparison.
#pragma once

#include "geometry/vec3.hpp"

namespace pi2m {

/// Supported coordinate range: exactness holds while the intermediate
/// degree-3 (orient3d) / degree-5 (insphere) products stay inside double
/// range — roughly |x| <= 1e100 for orient3d and |x| <= 1e60 for insphere,
/// the same envelope as Shewchuk's original predicates. Mesh coordinates
/// (millimetres) are forty orders of magnitude away from the limits.

/// Sign of the signed volume of tetrahedron (a,b,c,d):
///   > 0  when d is below the plane through a,b,c (counterclockwise seen
///        from above), i.e. the tetrahedron is positively oriented;
///   = 0  when the four points are coplanar (exact);
///   < 0  otherwise.
int orient3d(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

/// Sign of the insphere determinant for the positively-oriented tetrahedron
/// (a,b,c,d) and query point e:
///   > 0  e lies strictly inside the circumsphere;
///   = 0  e lies exactly on the circumsphere;
///   < 0  e lies strictly outside.
/// Precondition: orient3d(a,b,c,d) > 0. (Callers in the Delaunay kernel
/// maintain positive orientation for every live cell.)
int insphere(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
             const Vec3& e);

/// Reference full-exact evaluations (the final stage of the adaptive
/// ladder), exposed for the staged-predicate agreement tests. Never call
/// these on the hot path; orient3d/insphere reach them on their own when
/// the filters cannot certify a sign.
int orient3d_exact(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);
int insphere_exact(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                   const Vec3& e);

/// Counters for filter-ladder effectiveness (benchmarked in bench_micro,
/// asserted by the degeneracy-torture tests):
///   *_calls  every invocation;
///   *_adapt  calls the stage-A static filter could not certify (they entered
///            the adaptive stage B/C ladder);
///   *_exact  calls that fell through every filter to the full exact
///            evaluation (stage D).
/// Counts are kept in padded per-thread slots (no shared cache line is
/// written on the call path) and summed on read; reporting only.
struct PredicateCounters {
  unsigned long long orient3d_calls;
  unsigned long long orient3d_adapt;
  unsigned long long orient3d_exact;
  unsigned long long insphere_calls;
  unsigned long long insphere_adapt;
  unsigned long long insphere_exact;
};
PredicateCounters predicate_counters();
void reset_predicate_counters();

}  // namespace pi2m
