#include "predicates/predicates.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>

#include "predicates/expansion.hpp"
#include "predicates/filter_bounds.hpp"

namespace pi2m {
namespace {

// Filter constants shared with the batched SIMD stage-A path
// (predicates_simd.cpp); see filter_bounds.hpp for provenance.
using filter_bounds::kIspErrBoundA;
using filter_bounds::kIspErrBoundB;
using filter_bounds::kIspErrBoundC;
using filter_bounds::kO3dErrBoundA;
using filter_bounds::kO3dErrBoundB;
using filter_bounds::kO3dErrBoundC;
using filter_bounds::kResultErrBound;

// ---------------------------------------------------------------------------
// Contention-free call counters.
//
// Every orient3d/insphere call bumps a counter; a process-global atomic
// would put one shared cache line on the hottest path in the system (every
// thread, every predicate). Instead each thread owns a cache-line-sized slot
// (single-writer; the load+store pair compiles to a plain increment, no
// lock prefix) and readers sum the slots. With more than kCounterSlots
// threads slots are shared and increments may be lost — counters are
// reporting-only, so approximate totals in that regime are acceptable.
// ---------------------------------------------------------------------------

enum CounterIndex : int {
  kO3dCalls = 0,
  kO3dAdapt = 1,
  kO3dExact = 2,
  kIspCalls = 3,
  kIspAdapt = 4,
  kIspExact = 5,
};

struct alignas(64) CounterSlot {
  std::atomic<std::uint64_t> c[8];  // 64 bytes: one cache line per slot
};
constexpr std::size_t kCounterSlots = 256;
CounterSlot g_counters[kCounterSlots];

CounterSlot& my_counter_slot() {
  static std::atomic<std::uint32_t> g_next_slot{0};
  thread_local const std::uint32_t idx =
      g_next_slot.fetch_add(1, std::memory_order_relaxed) &
      (kCounterSlots - 1);
  return g_counters[idx];
}

inline void bump(CounterSlot& slot, int which) {
  std::atomic<std::uint64_t>& c = slot.c[which];
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

std::uint64_t sum_counters(int which) {
  std::uint64_t total = 0;
  for (const CounterSlot& s : g_counters) {
    total += s.c[which].load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Fixed-size expansion primitives for the adaptive stages (Shewchuk 1997,
// Figs. 10/13). Unlike exact::Expansion these never allocate: components
// live in stack arrays ordered by increasing magnitude, zeros elided.
// ---------------------------------------------------------------------------

using exact::fast_two_sum;
using exact::two_diff;
using exact::two_prod;
using exact::two_sum;

inline void two_diff_tail(double a, double b, double x, double& y) {
  const double bv = a - x;
  const double av = x + bv;
  y = (a - av) + (bv - b);
}

inline void two_one_diff(double a1, double a0, double b, double& x2,
                         double& x1, double& x0) {
  double i;
  two_diff(a0, b, i, x0);
  two_sum(a1, i, x2, x1);
}

/// (a1,a0) - (b1,b0) -> x[3..0], exact.
inline void two_two_diff(double a1, double a0, double b1, double b0,
                         double* x) {
  double j, r0;
  two_one_diff(a1, a0, b0, j, r0, x[0]);
  two_one_diff(j, r0, b1, x[3], x[2], x[1]);
}

/// fast_expansion_sum_zeroelim: h = e + f; returns the component count.
int expansion_sum(int elen, const double* e, int flen, const double* f,
                  double* h) {
  double q, qnew, hh, enow, fnow;
  int eindex = 0, findex = 0, hindex = 0;
  enow = e[0];
  fnow = f[0];
  if ((fnow > enow) == (fnow > -enow)) {
    q = enow;
    enow = e[++eindex];
  } else {
    q = fnow;
    fnow = f[++findex];
  }
  if ((eindex < elen) && (findex < flen)) {
    if ((fnow > enow) == (fnow > -enow)) {
      fast_two_sum(enow, q, qnew, hh);
      enow = e[++eindex];
    } else {
      fast_two_sum(fnow, q, qnew, hh);
      fnow = f[++findex];
    }
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
    while ((eindex < elen) && (findex < flen)) {
      if ((fnow > enow) == (fnow > -enow)) {
        two_sum(q, enow, qnew, hh);
        enow = e[++eindex];
      } else {
        two_sum(q, fnow, qnew, hh);
        fnow = f[++findex];
      }
      q = qnew;
      if (hh != 0.0) h[hindex++] = hh;
    }
  }
  while (eindex < elen) {
    two_sum(q, enow, qnew, hh);
    enow = e[++eindex];
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  while (findex < flen) {
    two_sum(q, fnow, qnew, hh);
    fnow = f[++findex];
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  if ((q != 0.0) || (hindex == 0)) h[hindex++] = q;
  return hindex;
}

/// scale_expansion_zeroelim: h = e * b; returns the component count.
int expansion_scale(int elen, const double* e, double b, double* h) {
  double q, sum, hh, p1, p0, enow;
  int hindex = 0;
  two_prod(e[0], b, q, hh);
  if (hh != 0.0) h[hindex++] = hh;
  for (int eindex = 1; eindex < elen; ++eindex) {
    enow = e[eindex];
    two_prod(enow, b, p1, p0);
    two_sum(q, p0, sum, hh);
    if (hh != 0.0) h[hindex++] = hh;
    fast_two_sum(p1, sum, q, hh);
    if (hh != 0.0) h[hindex++] = hh;
  }
  if ((q != 0.0) || (hindex == 0)) h[hindex++] = q;
  return hindex;
}

inline double expansion_estimate(int elen, const double* e) {
  double q = e[0];
  for (int i = 1; i < elen; ++i) q += e[i];
  return q;
}

// ---------------------------------------------------------------------------
// Adaptive stage B/C evaluations. Return true (with `sign` set) when the
// stage certifies a sign; false sends the caller to the full exact stage D.
// ---------------------------------------------------------------------------

bool orient3d_adapt(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                    double permanent, int& sign) {
  const double adx = a.x - d.x, ady = a.y - d.y, adz = a.z - d.z;
  const double bdx = b.x - d.x, bdy = b.y - d.y, bdz = b.z - d.z;
  const double cdx = c.x - d.x, cdy = c.y - d.y, cdz = c.z - d.z;

  // Stage B: treat the coordinate translations as exact and evaluate the
  // determinant exactly from there (24 components max).
  double bdxcdy1, bdxcdy0, cdxbdy1, cdxbdy0;
  double cdxady1, cdxady0, adxcdy1, adxcdy0;
  double adxbdy1, adxbdy0, bdxady1, bdxady0;
  double bc[4], ca[4], ab[4];
  two_prod(bdx, cdy, bdxcdy1, bdxcdy0);
  two_prod(cdx, bdy, cdxbdy1, cdxbdy0);
  two_two_diff(bdxcdy1, bdxcdy0, cdxbdy1, cdxbdy0, bc);
  two_prod(cdx, ady, cdxady1, cdxady0);
  two_prod(adx, cdy, adxcdy1, adxcdy0);
  two_two_diff(cdxady1, cdxady0, adxcdy1, adxcdy0, ca);
  two_prod(adx, bdy, adxbdy1, adxbdy0);
  two_prod(bdx, ady, bdxady1, bdxady0);
  two_two_diff(adxbdy1, adxbdy0, bdxady1, bdxady0, ab);

  double adet[8], bdet[8], cdet[8], abdet[16], fin1[24];
  const int alen = expansion_scale(4, bc, adz, adet);
  const int blen = expansion_scale(4, ca, bdz, bdet);
  const int clen = expansion_scale(4, ab, cdz, cdet);
  const int ablen = expansion_sum(alen, adet, blen, bdet, abdet);
  const int finlen = expansion_sum(ablen, abdet, clen, cdet, fin1);

  double det = expansion_estimate(finlen, fin1);
  double errbound = kO3dErrBoundB * permanent;
  if (det >= errbound || -det >= errbound) {
    sign = (det > 0.0) - (det < 0.0);
    return true;
  }

  // Stage C: fold in the translation tails to first order.
  double adxtail, adytail, adztail;
  double bdxtail, bdytail, bdztail;
  double cdxtail, cdytail, cdztail;
  two_diff_tail(a.x, d.x, adx, adxtail);
  two_diff_tail(a.y, d.y, ady, adytail);
  two_diff_tail(a.z, d.z, adz, adztail);
  two_diff_tail(b.x, d.x, bdx, bdxtail);
  two_diff_tail(b.y, d.y, bdy, bdytail);
  two_diff_tail(b.z, d.z, bdz, bdztail);
  two_diff_tail(c.x, d.x, cdx, cdxtail);
  two_diff_tail(c.y, d.y, cdy, cdytail);
  two_diff_tail(c.z, d.z, cdz, cdztail);

  if (adxtail == 0.0 && adytail == 0.0 && adztail == 0.0 && bdxtail == 0.0 &&
      bdytail == 0.0 && bdztail == 0.0 && cdxtail == 0.0 && cdytail == 0.0 &&
      cdztail == 0.0) {
    // The translations were exact: the stage-B value IS the determinant.
    sign = (det > 0.0) - (det < 0.0);
    return true;
  }

  errbound = kO3dErrBoundC * permanent + kResultErrBound * std::fabs(det);
  det += (adz * ((bdx * cdytail + cdy * bdxtail) -
                 (bdy * cdxtail + cdx * bdytail)) +
          adztail * (bdx * cdy - bdy * cdx)) +
         (bdz * ((cdx * adytail + ady * cdxtail) -
                 (cdy * adxtail + adx * cdytail)) +
          bdztail * (cdx * ady - cdy * adx)) +
         (cdz * ((adx * bdytail + bdy * adxtail) -
                 (ady * bdxtail + bdx * adytail)) +
          cdztail * (adx * bdy - ady * bdx));
  if (det >= errbound || -det >= errbound) {
    sign = (det > 0.0) - (det < 0.0);
    return true;
  }
  return false;
}

bool insphere_adapt(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                    const Vec3& e, double permanent, int& sign) {
  const double aex = a.x - e.x, aey = a.y - e.y, aez = a.z - e.z;
  const double bex = b.x - e.x, bey = b.y - e.y, bez = b.z - e.z;
  const double cex = c.x - e.x, cey = c.y - e.y, cez = c.z - e.z;
  const double dex = d.x - e.x, dey = d.y - e.y, dez = d.z - e.z;

  // Stage B: exact evaluation with the translations taken as exact.
  double t1, t0;
  double ab[4], bc[4], cd[4], da[4], ac[4], bd[4];
  {
    double u1, u0;
    two_prod(aex, bey, t1, t0);
    two_prod(bex, aey, u1, u0);
    two_two_diff(t1, t0, u1, u0, ab);
    two_prod(bex, cey, t1, t0);
    two_prod(cex, bey, u1, u0);
    two_two_diff(t1, t0, u1, u0, bc);
    two_prod(cex, dey, t1, t0);
    two_prod(dex, cey, u1, u0);
    two_two_diff(t1, t0, u1, u0, cd);
    two_prod(dex, aey, t1, t0);
    two_prod(aex, dey, u1, u0);
    two_two_diff(t1, t0, u1, u0, da);
    two_prod(aex, cey, t1, t0);
    two_prod(cex, aey, u1, u0);
    two_two_diff(t1, t0, u1, u0, ac);
    two_prod(bex, dey, t1, t0);
    two_prod(dex, bey, u1, u0);
    two_two_diff(t1, t0, u1, u0, bd);
  }

  double temp8a[8], temp8b[8], temp8c[8], temp16[16], temp24[24], temp48[48];
  double xdet[96], ydet[96], zdet[96], xydet[192];
  double adet[288], bdet[288], cdet[288], ddet[288];
  double abdet[576], cddet[576], fin1[1152];
  int t8alen, t8blen, t8clen, t16len, t24len, t48len, xlen, ylen, zlen, xylen;

  // adet = -alift * bcd
  t8alen = expansion_scale(4, cd, bez, temp8a);
  t8blen = expansion_scale(4, bd, -cez, temp8b);
  t8clen = expansion_scale(4, bc, dez, temp8c);
  t16len = expansion_sum(t8alen, temp8a, t8blen, temp8b, temp16);
  t24len = expansion_sum(t16len, temp16, t8clen, temp8c, temp24);
  t48len = expansion_scale(t24len, temp24, aex, temp48);
  xlen = expansion_scale(t48len, temp48, -aex, xdet);
  t48len = expansion_scale(t24len, temp24, aey, temp48);
  ylen = expansion_scale(t48len, temp48, -aey, ydet);
  t48len = expansion_scale(t24len, temp24, aez, temp48);
  zlen = expansion_scale(t48len, temp48, -aez, zdet);
  xylen = expansion_sum(xlen, xdet, ylen, ydet, xydet);
  const int alen = expansion_sum(xylen, xydet, zlen, zdet, adet);

  // bdet = +blift * cda
  t8alen = expansion_scale(4, da, cez, temp8a);
  t8blen = expansion_scale(4, ac, dez, temp8b);
  t8clen = expansion_scale(4, cd, aez, temp8c);
  t16len = expansion_sum(t8alen, temp8a, t8blen, temp8b, temp16);
  t24len = expansion_sum(t16len, temp16, t8clen, temp8c, temp24);
  t48len = expansion_scale(t24len, temp24, bex, temp48);
  xlen = expansion_scale(t48len, temp48, bex, xdet);
  t48len = expansion_scale(t24len, temp24, bey, temp48);
  ylen = expansion_scale(t48len, temp48, bey, ydet);
  t48len = expansion_scale(t24len, temp24, bez, temp48);
  zlen = expansion_scale(t48len, temp48, bez, zdet);
  xylen = expansion_sum(xlen, xdet, ylen, ydet, xydet);
  const int blen = expansion_sum(xylen, xydet, zlen, zdet, bdet);

  // cdet = -clift * dab
  t8alen = expansion_scale(4, ab, dez, temp8a);
  t8blen = expansion_scale(4, bd, aez, temp8b);
  t8clen = expansion_scale(4, da, bez, temp8c);
  t16len = expansion_sum(t8alen, temp8a, t8blen, temp8b, temp16);
  t24len = expansion_sum(t16len, temp16, t8clen, temp8c, temp24);
  t48len = expansion_scale(t24len, temp24, cex, temp48);
  xlen = expansion_scale(t48len, temp48, -cex, xdet);
  t48len = expansion_scale(t24len, temp24, cey, temp48);
  ylen = expansion_scale(t48len, temp48, -cey, ydet);
  t48len = expansion_scale(t24len, temp24, cez, temp48);
  zlen = expansion_scale(t48len, temp48, -cez, zdet);
  xylen = expansion_sum(xlen, xdet, ylen, ydet, xydet);
  const int clen = expansion_sum(xylen, xydet, zlen, zdet, cdet);

  // ddet = +dlift * abc
  t8alen = expansion_scale(4, bc, aez, temp8a);
  t8blen = expansion_scale(4, ac, -bez, temp8b);
  t8clen = expansion_scale(4, ab, cez, temp8c);
  t16len = expansion_sum(t8alen, temp8a, t8blen, temp8b, temp16);
  t24len = expansion_sum(t16len, temp16, t8clen, temp8c, temp24);
  t48len = expansion_scale(t24len, temp24, dex, temp48);
  xlen = expansion_scale(t48len, temp48, dex, xdet);
  t48len = expansion_scale(t24len, temp24, dey, temp48);
  ylen = expansion_scale(t48len, temp48, dey, ydet);
  t48len = expansion_scale(t24len, temp24, dez, temp48);
  zlen = expansion_scale(t48len, temp48, dez, zdet);
  xylen = expansion_sum(xlen, xdet, ylen, ydet, xydet);
  const int dlen = expansion_sum(xylen, xydet, zlen, zdet, ddet);

  const int ablen = expansion_sum(alen, adet, blen, bdet, abdet);
  const int cdlen = expansion_sum(clen, cdet, dlen, ddet, cddet);
  const int finlen = expansion_sum(ablen, abdet, cdlen, cddet, fin1);

  double det = expansion_estimate(finlen, fin1);
  double errbound = kIspErrBoundB * permanent;
  if (det >= errbound || -det >= errbound) {
    sign = (det > 0.0) - (det < 0.0);
    return true;
  }

  // Stage C: first-order correction by the translation tails.
  double aextail, aeytail, aeztail, bextail, beytail, beztail;
  double cextail, ceytail, ceztail, dextail, deytail, deztail;
  two_diff_tail(a.x, e.x, aex, aextail);
  two_diff_tail(a.y, e.y, aey, aeytail);
  two_diff_tail(a.z, e.z, aez, aeztail);
  two_diff_tail(b.x, e.x, bex, bextail);
  two_diff_tail(b.y, e.y, bey, beytail);
  two_diff_tail(b.z, e.z, bez, beztail);
  two_diff_tail(c.x, e.x, cex, cextail);
  two_diff_tail(c.y, e.y, cey, ceytail);
  two_diff_tail(c.z, e.z, cez, ceztail);
  two_diff_tail(d.x, e.x, dex, dextail);
  two_diff_tail(d.y, e.y, dey, deytail);
  two_diff_tail(d.z, e.z, dez, deztail);
  if (aextail == 0.0 && aeytail == 0.0 && aeztail == 0.0 && bextail == 0.0 &&
      beytail == 0.0 && beztail == 0.0 && cextail == 0.0 && ceytail == 0.0 &&
      ceztail == 0.0 && dextail == 0.0 && deytail == 0.0 && deztail == 0.0) {
    sign = (det > 0.0) - (det < 0.0);
    return true;
  }

  errbound = kIspErrBoundC * permanent + kResultErrBound * std::fabs(det);
  const double abeps =
      (aex * beytail + bey * aextail) - (aey * bextail + bex * aeytail);
  const double bceps =
      (bex * ceytail + cey * bextail) - (bey * cextail + cex * beytail);
  const double cdeps =
      (cex * deytail + dey * cextail) - (cey * dextail + dex * ceytail);
  const double daeps =
      (dex * aeytail + aey * dextail) - (dey * aextail + aex * deytail);
  const double aceps =
      (aex * ceytail + cey * aextail) - (aey * cextail + cex * aeytail);
  const double bdeps =
      (bex * deytail + dey * bextail) - (bey * dextail + dex * beytail);
  det += (((bex * bex + bey * bey + bez * bez) *
               ((cez * daeps + dez * aceps + aez * cdeps) +
                (ceztail * da[3] + deztail * ac[3] + aeztail * cd[3])) +
           (dex * dex + dey * dey + dez * dez) *
               ((aez * bceps - bez * aceps + cez * abeps) +
                (aeztail * bc[3] - beztail * ac[3] + ceztail * ab[3]))) -
          ((aex * aex + aey * aey + aez * aez) *
               ((bez * cdeps - cez * bdeps + dez * bceps) +
                (beztail * cd[3] - ceztail * bd[3] + deztail * bc[3])) +
           (cex * cex + cey * cey + cez * cez) *
               ((dez * abeps + aez * bdeps + bez * daeps) +
                (deztail * ab[3] + aeztail * bd[3] + beztail * da[3])))) +
         2.0 * (((bex * bextail + bey * beytail + bez * beztail) *
                     (cez * da[3] + dez * ac[3] + aez * cd[3]) +
                 (dex * dextail + dey * deytail + dez * deztail) *
                     (aez * bc[3] - bez * ac[3] + cez * ab[3])) -
                ((aex * aextail + aey * aeytail + aez * aeztail) *
                     (bez * cd[3] - cez * bd[3] + dez * bc[3]) +
                 (cex * cextail + cey * ceytail + cez * ceztail) *
                     (dez * ab[3] + aez * bd[3] + bez * da[3])));
  if (det >= errbound || -det >= errbound) {
    sign = (det > 0.0) - (det < 0.0);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Stage D: full exact evaluation over expansion arithmetic (the initial
// translations themselves are kept as two-component expansions).
// ---------------------------------------------------------------------------

using exact::Expansion;

Expansion diff(double a, double b) {
  double hi, lo;
  two_diff(a, b, hi, lo);
  return Expansion::from_two(hi, lo);
}

}  // namespace

int orient3d_exact(const Vec3& a, const Vec3& b, const Vec3& c,
                   const Vec3& d) {
  const Expansion adx = diff(a.x, d.x), ady = diff(a.y, d.y), adz = diff(a.z, d.z);
  const Expansion bdx = diff(b.x, d.x), bdy = diff(b.y, d.y), bdz = diff(b.z, d.z);
  const Expansion cdx = diff(c.x, d.x), cdy = diff(c.y, d.y), cdz = diff(c.z, d.z);

  const Expansion det = adz * (bdx * cdy - cdx * bdy) +
                        bdz * (cdx * ady - adx * cdy) +
                        cdz * (adx * bdy - bdx * ady);
  return det.sign();
}

int insphere_exact(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                   const Vec3& e) {
  const Expansion aex = diff(a.x, e.x), aey = diff(a.y, e.y), aez = diff(a.z, e.z);
  const Expansion bex = diff(b.x, e.x), bey = diff(b.y, e.y), bez = diff(b.z, e.z);
  const Expansion cex = diff(c.x, e.x), cey = diff(c.y, e.y), cez = diff(c.z, e.z);
  const Expansion dex = diff(d.x, e.x), dey = diff(d.y, e.y), dez = diff(d.z, e.z);

  const Expansion ab = aex * bey - bex * aey;
  const Expansion bc = bex * cey - cex * bey;
  const Expansion cd = cex * dey - dex * cey;
  const Expansion da = dex * aey - aex * dey;
  const Expansion ac = aex * cey - cex * aey;
  const Expansion bd = bex * dey - dex * bey;

  const Expansion abc = aez * bc - bez * ac + cez * ab;
  const Expansion bcd = bez * cd - cez * bd + dez * bc;
  const Expansion cda = cez * da + dez * ac + aez * cd;
  const Expansion dab = dez * ab + aez * bd + bez * da;

  const Expansion alift = aex * aex + aey * aey + aez * aez;
  const Expansion blift = bex * bex + bey * bey + bez * bez;
  const Expansion clift = cex * cex + cey * cey + cez * cez;
  const Expansion dlift = dex * dex + dey * dey + dez * dez;

  const Expansion det =
      (dlift * abc - clift * dab) + (blift * cda - alift * bcd);
  return det.sign();
}

int orient3d(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  CounterSlot& counters = my_counter_slot();
  bump(counters, kO3dCalls);

  const double adx = a.x - d.x, ady = a.y - d.y, adz = a.z - d.z;
  const double bdx = b.x - d.x, bdy = b.y - d.y, bdz = b.z - d.z;
  const double cdx = c.x - d.x, cdy = c.y - d.y, cdz = c.z - d.z;

  const double bdxcdy = bdx * cdy, cdxbdy = cdx * bdy;
  const double cdxady = cdx * ady, adxcdy = adx * cdy;
  const double adxbdy = adx * bdy, bdxady = bdx * ady;

  const double det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) +
                     cdz * (adxbdy - bdxady);

  const double permanent =
      (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * std::fabs(adz) +
      (std::fabs(cdxady) + std::fabs(adxcdy)) * std::fabs(bdz) +
      (std::fabs(adxbdy) + std::fabs(bdxady)) * std::fabs(cdz);
  const double errbound = kO3dErrBoundA * permanent;
  if (det > errbound || -det > errbound) return (det > 0.0) - (det < 0.0);

  bump(counters, kO3dAdapt);
  int sign;
  if (orient3d_adapt(a, b, c, d, permanent, sign)) return sign;

  bump(counters, kO3dExact);
  return orient3d_exact(a, b, c, d);
}

int insphere(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
             const Vec3& e) {
  CounterSlot& counters = my_counter_slot();
  bump(counters, kIspCalls);

  const double aex = a.x - e.x, aey = a.y - e.y, aez = a.z - e.z;
  const double bex = b.x - e.x, bey = b.y - e.y, bez = b.z - e.z;
  const double cex = c.x - e.x, cey = c.y - e.y, cez = c.z - e.z;
  const double dex = d.x - e.x, dey = d.y - e.y, dez = d.z - e.z;

  const double aexbey = aex * bey, bexaey = bex * aey;
  const double bexcey = bex * cey, cexbey = cex * bey;
  const double cexdey = cex * dey, dexcey = dex * cey;
  const double dexaey = dex * aey, aexdey = aex * dey;
  const double aexcey = aex * cey, cexaey = cex * aey;
  const double bexdey = bex * dey, dexbey = dex * bey;

  const double ab = aexbey - bexaey;
  const double bc = bexcey - cexbey;
  const double cd = cexdey - dexcey;
  const double da = dexaey - aexdey;
  const double ac = aexcey - cexaey;
  const double bd = bexdey - dexbey;

  const double abc = aez * bc - bez * ac + cez * ab;
  const double bcd = bez * cd - cez * bd + dez * bc;
  const double cda = cez * da + dez * ac + aez * cd;
  const double dab = dez * ab + aez * bd + bez * da;

  const double alift = aex * aex + aey * aey + aez * aez;
  const double blift = bex * bex + bey * bey + bez * bez;
  const double clift = cex * cex + cey * cey + cez * cez;
  const double dlift = dex * dex + dey * dey + dez * dez;

  const double det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

  const double aezplus = std::fabs(aez), bezplus = std::fabs(bez);
  const double cezplus = std::fabs(cez), dezplus = std::fabs(dez);
  const double aexbeyplus = std::fabs(aexbey), bexaeyplus = std::fabs(bexaey);
  const double bexceyplus = std::fabs(bexcey), cexbeyplus = std::fabs(cexbey);
  const double cexdeyplus = std::fabs(cexdey), dexceyplus = std::fabs(dexcey);
  const double dexaeyplus = std::fabs(dexaey), aexdeyplus = std::fabs(aexdey);
  const double aexceyplus = std::fabs(aexcey), cexaeyplus = std::fabs(cexaey);
  const double bexdeyplus = std::fabs(bexdey), dexbeyplus = std::fabs(dexbey);

  const double permanent =
      ((cexdeyplus + dexceyplus) * bezplus + (dexbeyplus + bexdeyplus) * cezplus +
       (bexceyplus + cexbeyplus) * dezplus) * alift +
      ((dexaeyplus + aexdeyplus) * cezplus + (aexceyplus + cexaeyplus) * dezplus +
       (cexdeyplus + dexceyplus) * aezplus) * blift +
      ((aexbeyplus + bexaeyplus) * dezplus + (bexdeyplus + dexbeyplus) * aezplus +
       (dexaeyplus + aexdeyplus) * bezplus) * clift +
      ((bexceyplus + cexbeyplus) * aezplus + (cexaeyplus + aexceyplus) * bezplus +
       (aexbeyplus + bexaeyplus) * cezplus) * dlift;
  const double errbound = kIspErrBoundA * permanent;
  if (det > errbound || -det > errbound) return (det > 0.0) - (det < 0.0);

  bump(counters, kIspAdapt);
  int sign;
  if (insphere_adapt(a, b, c, d, e, permanent, sign)) return sign;

  bump(counters, kIspExact);
  return insphere_exact(a, b, c, d, e);
}

PredicateCounters predicate_counters() {
  return {sum_counters(kO3dCalls), sum_counters(kO3dAdapt),
          sum_counters(kO3dExact), sum_counters(kIspCalls),
          sum_counters(kIspAdapt), sum_counters(kIspExact)};
}

void reset_predicate_counters() {
  for (CounterSlot& s : g_counters) {
    for (auto& c : s.c) c.store(0, std::memory_order_relaxed);
  }
}

}  // namespace pi2m
