#include "predicates/predicates.hpp"

#include <atomic>
#include <cmath>

#include "predicates/expansion.hpp"

namespace pi2m {
namespace {

// Machine epsilon for round-to-nearest doubles (Shewchuk's epsilon = 2^-53).
constexpr double kEps = 1.1102230246251565e-16;
// Static filter constants from Shewchuk, "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates", 1997. They bound the
// total rounding error (including the initial coordinate translations) of
// the straightforward double evaluation.
constexpr double kO3dErrBoundA = (7.0 + 56.0 * kEps) * kEps;
constexpr double kIspErrBoundA = (16.0 + 224.0 * kEps) * kEps;

std::atomic<unsigned long long> g_o3d_calls{0};
std::atomic<unsigned long long> g_o3d_exact{0};
std::atomic<unsigned long long> g_isp_calls{0};
std::atomic<unsigned long long> g_isp_exact{0};

using exact::Expansion;
using exact::two_diff;

Expansion diff(double a, double b) {
  double hi, lo;
  two_diff(a, b, hi, lo);
  return Expansion::from_two(hi, lo);
}

int orient3d_exact(const Vec3& a, const Vec3& b, const Vec3& c,
                   const Vec3& d) {
  const Expansion adx = diff(a.x, d.x), ady = diff(a.y, d.y), adz = diff(a.z, d.z);
  const Expansion bdx = diff(b.x, d.x), bdy = diff(b.y, d.y), bdz = diff(b.z, d.z);
  const Expansion cdx = diff(c.x, d.x), cdy = diff(c.y, d.y), cdz = diff(c.z, d.z);

  const Expansion det = adz * (bdx * cdy - cdx * bdy) +
                        bdz * (cdx * ady - adx * cdy) +
                        cdz * (adx * bdy - bdx * ady);
  return det.sign();
}

int insphere_exact(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                   const Vec3& e) {
  const Expansion aex = diff(a.x, e.x), aey = diff(a.y, e.y), aez = diff(a.z, e.z);
  const Expansion bex = diff(b.x, e.x), bey = diff(b.y, e.y), bez = diff(b.z, e.z);
  const Expansion cex = diff(c.x, e.x), cey = diff(c.y, e.y), cez = diff(c.z, e.z);
  const Expansion dex = diff(d.x, e.x), dey = diff(d.y, e.y), dez = diff(d.z, e.z);

  const Expansion ab = aex * bey - bex * aey;
  const Expansion bc = bex * cey - cex * bey;
  const Expansion cd = cex * dey - dex * cey;
  const Expansion da = dex * aey - aex * dey;
  const Expansion ac = aex * cey - cex * aey;
  const Expansion bd = bex * dey - dex * bey;

  const Expansion abc = aez * bc - bez * ac + cez * ab;
  const Expansion bcd = bez * cd - cez * bd + dez * bc;
  const Expansion cda = cez * da + dez * ac + aez * cd;
  const Expansion dab = dez * ab + aez * bd + bez * da;

  const Expansion alift = aex * aex + aey * aey + aez * aez;
  const Expansion blift = bex * bex + bey * bey + bez * bez;
  const Expansion clift = cex * cex + cey * cey + cez * cez;
  const Expansion dlift = dex * dex + dey * dey + dez * dez;

  const Expansion det =
      (dlift * abc - clift * dab) + (blift * cda - alift * bcd);
  return det.sign();
}

}  // namespace

int orient3d(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  g_o3d_calls.fetch_add(1, std::memory_order_relaxed);

  const double adx = a.x - d.x, ady = a.y - d.y, adz = a.z - d.z;
  const double bdx = b.x - d.x, bdy = b.y - d.y, bdz = b.z - d.z;
  const double cdx = c.x - d.x, cdy = c.y - d.y, cdz = c.z - d.z;

  const double bdxcdy = bdx * cdy, cdxbdy = cdx * bdy;
  const double cdxady = cdx * ady, adxcdy = adx * cdy;
  const double adxbdy = adx * bdy, bdxady = bdx * ady;

  const double det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) +
                     cdz * (adxbdy - bdxady);

  const double permanent =
      (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * std::fabs(adz) +
      (std::fabs(cdxady) + std::fabs(adxcdy)) * std::fabs(bdz) +
      (std::fabs(adxbdy) + std::fabs(bdxady)) * std::fabs(cdz);
  const double errbound = kO3dErrBoundA * permanent;
  if (det > errbound || -det > errbound) return (det > 0.0) - (det < 0.0);

  g_o3d_exact.fetch_add(1, std::memory_order_relaxed);
  return orient3d_exact(a, b, c, d);
}

int insphere(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
             const Vec3& e) {
  g_isp_calls.fetch_add(1, std::memory_order_relaxed);

  const double aex = a.x - e.x, aey = a.y - e.y, aez = a.z - e.z;
  const double bex = b.x - e.x, bey = b.y - e.y, bez = b.z - e.z;
  const double cex = c.x - e.x, cey = c.y - e.y, cez = c.z - e.z;
  const double dex = d.x - e.x, dey = d.y - e.y, dez = d.z - e.z;

  const double aexbey = aex * bey, bexaey = bex * aey;
  const double bexcey = bex * cey, cexbey = cex * bey;
  const double cexdey = cex * dey, dexcey = dex * cey;
  const double dexaey = dex * aey, aexdey = aex * dey;
  const double aexcey = aex * cey, cexaey = cex * aey;
  const double bexdey = bex * dey, dexbey = dex * bey;

  const double ab = aexbey - bexaey;
  const double bc = bexcey - cexbey;
  const double cd = cexdey - dexcey;
  const double da = dexaey - aexdey;
  const double ac = aexcey - cexaey;
  const double bd = bexdey - dexbey;

  const double abc = aez * bc - bez * ac + cez * ab;
  const double bcd = bez * cd - cez * bd + dez * bc;
  const double cda = cez * da + dez * ac + aez * cd;
  const double dab = dez * ab + aez * bd + bez * da;

  const double alift = aex * aex + aey * aey + aez * aez;
  const double blift = bex * bex + bey * bey + bez * bez;
  const double clift = cex * cex + cey * cey + cez * cez;
  const double dlift = dex * dex + dey * dey + dez * dez;

  const double det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

  const double aezplus = std::fabs(aez), bezplus = std::fabs(bez);
  const double cezplus = std::fabs(cez), dezplus = std::fabs(dez);
  const double aexbeyplus = std::fabs(aexbey), bexaeyplus = std::fabs(bexaey);
  const double bexceyplus = std::fabs(bexcey), cexbeyplus = std::fabs(cexbey);
  const double cexdeyplus = std::fabs(cexdey), dexceyplus = std::fabs(dexcey);
  const double dexaeyplus = std::fabs(dexaey), aexdeyplus = std::fabs(aexdey);
  const double aexceyplus = std::fabs(aexcey), cexaeyplus = std::fabs(cexaey);
  const double bexdeyplus = std::fabs(bexdey), dexbeyplus = std::fabs(dexbey);

  const double permanent =
      ((cexdeyplus + dexceyplus) * bezplus + (dexbeyplus + bexdeyplus) * cezplus +
       (bexceyplus + cexbeyplus) * dezplus) * alift +
      ((dexaeyplus + aexdeyplus) * cezplus + (aexceyplus + cexaeyplus) * dezplus +
       (cexdeyplus + dexceyplus) * aezplus) * blift +
      ((aexbeyplus + bexaeyplus) * dezplus + (bexdeyplus + dexbeyplus) * aezplus +
       (dexaeyplus + aexdeyplus) * bezplus) * clift +
      ((bexceyplus + cexbeyplus) * aezplus + (cexaeyplus + aexceyplus) * bezplus +
       (aexbeyplus + bexaeyplus) * cezplus) * dlift;
  const double errbound = kIspErrBoundA * permanent;
  if (det > errbound || -det > errbound) return (det > 0.0) - (det < 0.0);

  g_isp_exact.fetch_add(1, std::memory_order_relaxed);
  return insphere_exact(a, b, c, d, e);
}

PredicateCounters predicate_counters() {
  return {g_o3d_calls.load(std::memory_order_relaxed),
          g_o3d_exact.load(std::memory_order_relaxed),
          g_isp_calls.load(std::memory_order_relaxed),
          g_isp_exact.load(std::memory_order_relaxed)};
}

void reset_predicate_counters() {
  g_o3d_calls.store(0, std::memory_order_relaxed);
  g_o3d_exact.store(0, std::memory_order_relaxed);
  g_isp_calls.store(0, std::memory_order_relaxed);
  g_isp_exact.store(0, std::memory_order_relaxed);
}

}  // namespace pi2m
