// Shared static-filter error-bound constants for the scalar and SIMD
// predicate paths.
//
// Both predicates.cpp (scalar adaptive ladder) and predicates_simd.cpp
// (batched stage-A filter) must use bit-identical bounds: the SIMD filter
// promises that any lane it certifies would also have been certified with
// the same sign by the scalar stage A. Keeping the constants in one header
// makes it impossible for the two copies to drift.
//
// Values are Shewchuk's ("Adaptive Precision Floating-Point Arithmetic and
// Fast Robust Geometric Predicates", 1997, §4.3 orient3d, §4.4 insphere).
// Stage A bounds the straightforward double evaluation including the
// initial coordinate translations; stage B bounds the evaluation whose
// initial translations are taken as exact (tails dropped); stage C
// additionally accounts for the translation tails to first order.
#pragma once

namespace pi2m::filter_bounds {

/// Machine epsilon for round-to-nearest doubles (Shewchuk's epsilon = 2^-53).
inline constexpr double kEps = 1.1102230246251565e-16;

inline constexpr double kResultErrBound = (3.0 + 8.0 * kEps) * kEps;
inline constexpr double kO3dErrBoundA = (7.0 + 56.0 * kEps) * kEps;
inline constexpr double kO3dErrBoundB = (3.0 + 28.0 * kEps) * kEps;
inline constexpr double kO3dErrBoundC = (26.0 + 288.0 * kEps) * kEps * kEps;
inline constexpr double kIspErrBoundA = (16.0 + 224.0 * kEps) * kEps;
inline constexpr double kIspErrBoundB = (5.0 + 72.0 * kEps) * kEps;
inline constexpr double kIspErrBoundC = (71.0 + 1408.0 * kEps) * kEps * kEps;

}  // namespace pi2m::filter_bounds
