// Floating-point expansion arithmetic (Shewchuk 1997).
//
// An expansion represents a real number exactly as an unevaluated sum of
// IEEE-754 doubles, ordered by increasing magnitude and non-overlapping.
// These primitives are the substrate for the exact orientation / insphere
// predicates in predicates.hpp; PI2M (like CGAL and TetGen, per the paper
// §7) relies on exact predicates for robustness.
//
// All operations here are exact: no rounding error is lost. The code assumes
// round-to-nearest IEEE-754 doubles and must be compiled without value-
// changing FP optimizations (-ffp-contract=off is set project-wide; explicit
// std::fma is used where contraction is *wanted*).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace pi2m::exact {

/// x + y == a + b exactly, |y| <= ulp(x)/2. No magnitude precondition.
inline void two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bv = x - a;
  const double av = x - bv;
  y = (a - av) + (b - bv);
}

/// Requires |a| >= |b| (or a == 0).
inline void fast_two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bv = x - a;
  y = b - bv;
}

/// x + y == a - b exactly.
inline void two_diff(double a, double b, double& x, double& y) {
  x = a - b;
  const double bv = a - x;
  const double av = x + bv;
  y = (a - av) + (bv - b);
}

/// x + y == a * b exactly (uses hardware FMA, exact by IEEE-754).
inline void two_prod(double a, double b, double& x, double& y) {
  x = a * b;
  y = std::fma(a, b, -x);
}

/// An exact multi-term value. Components are stored in increasing-magnitude
/// order (Shewchuk's convention); zero components are elided.
class Expansion {
 public:
  Expansion() = default;
  /*implicit*/ Expansion(double v) {
    if (v != 0.0) comps_.push_back(v);
  }
  /// Exact two-term value hi+lo (e.g. the result of two_diff).
  static Expansion from_two(double hi, double lo) {
    Expansion e;
    if (lo != 0.0) e.comps_.push_back(lo);
    if (hi != 0.0) e.comps_.push_back(hi);
    return e;
  }

  [[nodiscard]] std::size_t size() const { return comps_.size(); }
  [[nodiscard]] bool is_zero() const { return comps_.empty(); }
  [[nodiscard]] const std::vector<double>& components() const { return comps_; }

  /// The most significant component dominates the sign of the exact value.
  [[nodiscard]] int sign() const {
    if (comps_.empty()) return 0;
    const double m = comps_.back();
    return (m > 0.0) - (m < 0.0);
  }

  /// Approximate double value (correct to within one ulp of the exact sum).
  [[nodiscard]] double estimate() const {
    double s = 0.0;
    for (double c : comps_) s += c;
    return s;
  }

  friend Expansion operator+(const Expansion& a, const Expansion& b);
  friend Expansion operator-(const Expansion& a, const Expansion& b);
  friend Expansion operator*(const Expansion& a, double s);
  friend Expansion operator*(const Expansion& a, const Expansion& b);
  [[nodiscard]] Expansion negated() const;

 private:
  std::vector<double> comps_;
};

}  // namespace pi2m::exact
