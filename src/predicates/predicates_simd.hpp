// Batched stage-A predicate filters with SIMD dispatch.
//
// orient3d_batch / insphere_batch evaluate up to 8 independent candidate
// simplices at once: the static forward-error filter (Shewchuk stage A,
// bounds shared with the scalar path via filter_bounds.hpp) runs 4 lanes
// per instruction on AVX2 hardware, and every lane the filter cannot
// certify falls through to the scalar adaptive/exact ladder in
// predicates.cpp. The returned signs are therefore always FINAL —
// bitwise-identical to calling the scalar orient3d/insphere per lane —
// regardless of the dispatch level; only the speed differs.
//
// The filter arithmetic uses separate mul/add (no FMA contraction) so the
// vector stage A computes exactly the same det/permanent doubles as the
// -ffp-contract=off scalar stage A: SIMD and scalar certify the identical
// lane set, keeping fallback counters comparable across dispatch levels.
//
// Batches are SoA so callers gather straight into lanes (from the arena's
// SoA coordinate mirror or from Vec3s) and the kernels load aligned
// vectors without transposing.
#pragma once

#include "geometry/vec3.hpp"

namespace pi2m {

/// SoA batch of up to 8 orient3d(a,b,c,d) queries.
struct alignas(32) Orient3dBatch {
  static constexpr int kMaxLanes = 8;
  double ax[kMaxLanes], ay[kMaxLanes], az[kMaxLanes];
  double bx[kMaxLanes], by[kMaxLanes], bz[kMaxLanes];
  double cx[kMaxLanes], cy[kMaxLanes], cz[kMaxLanes];
  double dx[kMaxLanes], dy[kMaxLanes], dz[kMaxLanes];

  void set_lane(int i, const Vec3& a, const Vec3& b, const Vec3& c,
                const Vec3& d) {
    ax[i] = a.x; ay[i] = a.y; az[i] = a.z;
    bx[i] = b.x; by[i] = b.y; bz[i] = b.z;
    cx[i] = c.x; cy[i] = c.y; cz[i] = c.z;
    dx[i] = d.x; dy[i] = d.y; dz[i] = d.z;
  }
  [[nodiscard]] Vec3 a_of(int i) const { return {ax[i], ay[i], az[i]}; }
  [[nodiscard]] Vec3 b_of(int i) const { return {bx[i], by[i], bz[i]}; }
  [[nodiscard]] Vec3 c_of(int i) const { return {cx[i], cy[i], cz[i]}; }
  [[nodiscard]] Vec3 d_of(int i) const { return {dx[i], dy[i], dz[i]}; }
};

/// SoA batch of up to 8 insphere(a,b,c,d,e) queries.
struct alignas(32) InsphereBatch {
  static constexpr int kMaxLanes = 8;
  double ax[kMaxLanes], ay[kMaxLanes], az[kMaxLanes];
  double bx[kMaxLanes], by[kMaxLanes], bz[kMaxLanes];
  double cx[kMaxLanes], cy[kMaxLanes], cz[kMaxLanes];
  double dx[kMaxLanes], dy[kMaxLanes], dz[kMaxLanes];
  double ex[kMaxLanes], ey[kMaxLanes], ez[kMaxLanes];

  void set_lane(int i, const Vec3& a, const Vec3& b, const Vec3& c,
                const Vec3& d, const Vec3& e) {
    ax[i] = a.x; ay[i] = a.y; az[i] = a.z;
    bx[i] = b.x; by[i] = b.y; bz[i] = b.z;
    cx[i] = c.x; cy[i] = c.y; cz[i] = c.z;
    dx[i] = d.x; dy[i] = d.y; dz[i] = d.z;
    ex[i] = e.x; ey[i] = e.y; ez[i] = e.z;
  }
  [[nodiscard]] Vec3 a_of(int i) const { return {ax[i], ay[i], az[i]}; }
  [[nodiscard]] Vec3 b_of(int i) const { return {bx[i], by[i], bz[i]}; }
  [[nodiscard]] Vec3 c_of(int i) const { return {cx[i], cy[i], cz[i]}; }
  [[nodiscard]] Vec3 d_of(int i) const { return {dx[i], dy[i], dz[i]}; }
  [[nodiscard]] Vec3 e_of(int i) const { return {ex[i], ey[i], ez[i]}; }
};

/// Evaluates lanes [0, n) of the batch (1 <= n <= kMaxLanes). signs[i]
/// receives the final sign (-1/0/+1), identical to the scalar predicate.
/// Returns the number of lanes the vectorized stage-A filter could not
/// certify (those were resolved through the scalar adaptive/exact ladder);
/// useful for adaptivity decisions and asserted by the parity tests.
int orient3d_batch(const Orient3dBatch& b, int n, int* signs);
int insphere_batch(const InsphereBatch& b, int n, int* signs);

/// Batched-path effectiveness counters (padded per-thread slots, summed on
/// read; reporting only — same contract as PredicateCounters):
///   *_batches    orient3d_batch/insphere_batch invocations;
///   *_lanes      total lanes evaluated across those batches;
///   *_fallback   lanes the vector filter could not certify (each also shows
///                up as one scalar *_calls bump while being resolved).
struct SimdPredicateCounters {
  unsigned long long orient3d_batches;
  unsigned long long orient3d_lanes;
  unsigned long long orient3d_fallback;
  unsigned long long insphere_batches;
  unsigned long long insphere_lanes;
  unsigned long long insphere_fallback;
};
SimdPredicateCounters simd_predicate_counters();
void reset_simd_predicate_counters();

}  // namespace pi2m
