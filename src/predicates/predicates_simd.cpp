#include "predicates/predicates_simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>

#include "predicates/filter_bounds.hpp"
#include "predicates/predicates.hpp"
#include "support/common.hpp"
#include "support/simd.hpp"

#if PI2M_SIMD_AVX2
#include <immintrin.h>
#endif

namespace pi2m {
namespace {

using filter_bounds::kIspErrBoundA;
using filter_bounds::kO3dErrBoundA;

// Per-thread padded counter slots, same contention-free scheme as the
// scalar predicate counters (see predicates.cpp for the rationale).
enum CounterIndex : int {
  kO3dBatches = 0,
  kO3dLanes = 1,
  kO3dFallback = 2,
  kIspBatches = 3,
  kIspLanes = 4,
  kIspFallback = 5,
};

struct alignas(64) CounterSlot {
  std::atomic<std::uint64_t> c[8];  // 64 bytes: one cache line per slot
};
constexpr std::size_t kCounterSlots = 256;
CounterSlot g_counters[kCounterSlots];

CounterSlot& my_counter_slot() {
  static std::atomic<std::uint32_t> g_next_slot{0};
  thread_local const std::uint32_t idx =
      g_next_slot.fetch_add(1, std::memory_order_relaxed) &
      (kCounterSlots - 1);
  return g_counters[idx];
}

inline void bump(CounterSlot& slot, int which, std::uint64_t by) {
  std::atomic<std::uint64_t>& c = slot.c[which];
  c.store(c.load(std::memory_order_relaxed) + by, std::memory_order_relaxed);
}

std::uint64_t sum_counters(int which) {
  std::uint64_t total = 0;
  for (const CounterSlot& s : g_counters) {
    total += s.c[which].load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Stage-A filter kernels. Each evaluates lanes [0, n), writes certified
// signs, and returns the bitmask of lanes the filter could NOT certify.
// The scalar and AVX2 bodies perform the same operations in the same order
// with no FMA contraction, so both compute bit-identical det/permanent
// values and certify the identical lane set.
// ---------------------------------------------------------------------------

unsigned orient3d_filter_scalar(const Orient3dBatch& b, int n, int* signs) {
  unsigned fail = 0;
  for (int i = 0; i < n; ++i) {
    const double adx = b.ax[i] - b.dx[i], ady = b.ay[i] - b.dy[i],
                 adz = b.az[i] - b.dz[i];
    const double bdx = b.bx[i] - b.dx[i], bdy = b.by[i] - b.dy[i],
                 bdz = b.bz[i] - b.dz[i];
    const double cdx = b.cx[i] - b.dx[i], cdy = b.cy[i] - b.dy[i],
                 cdz = b.cz[i] - b.dz[i];

    const double bdxcdy = bdx * cdy, cdxbdy = cdx * bdy;
    const double cdxady = cdx * ady, adxcdy = adx * cdy;
    const double adxbdy = adx * bdy, bdxady = bdx * ady;

    const double det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) +
                       cdz * (adxbdy - bdxady);
    const double permanent =
        (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * std::fabs(adz) +
        (std::fabs(cdxady) + std::fabs(adxcdy)) * std::fabs(bdz) +
        (std::fabs(adxbdy) + std::fabs(bdxady)) * std::fabs(cdz);
    const double errbound = kO3dErrBoundA * permanent;
    if (det > errbound || -det > errbound) {
      signs[i] = (det > 0.0) - (det < 0.0);
    } else {
      fail |= 1u << i;
    }
  }
  return fail;
}

unsigned insphere_filter_scalar(const InsphereBatch& b, int n, int* signs) {
  unsigned fail = 0;
  for (int i = 0; i < n; ++i) {
    const double aex = b.ax[i] - b.ex[i], aey = b.ay[i] - b.ey[i],
                 aez = b.az[i] - b.ez[i];
    const double bex = b.bx[i] - b.ex[i], bey = b.by[i] - b.ey[i],
                 bez = b.bz[i] - b.ez[i];
    const double cex = b.cx[i] - b.ex[i], cey = b.cy[i] - b.ey[i],
                 cez = b.cz[i] - b.ez[i];
    const double dex = b.dx[i] - b.ex[i], dey = b.dy[i] - b.ey[i],
                 dez = b.dz[i] - b.ez[i];

    const double aexbey = aex * bey, bexaey = bex * aey;
    const double bexcey = bex * cey, cexbey = cex * bey;
    const double cexdey = cex * dey, dexcey = dex * cey;
    const double dexaey = dex * aey, aexdey = aex * dey;
    const double aexcey = aex * cey, cexaey = cex * aey;
    const double bexdey = bex * dey, dexbey = dex * bey;

    const double ab = aexbey - bexaey;
    const double bc = bexcey - cexbey;
    const double cd = cexdey - dexcey;
    const double da = dexaey - aexdey;
    const double ac = aexcey - cexaey;
    const double bd = bexdey - dexbey;

    const double abc = aez * bc - bez * ac + cez * ab;
    const double bcd = bez * cd - cez * bd + dez * bc;
    const double cda = cez * da + dez * ac + aez * cd;
    const double dab = dez * ab + aez * bd + bez * da;

    const double alift = aex * aex + aey * aey + aez * aez;
    const double blift = bex * bex + bey * bey + bez * bez;
    const double clift = cex * cex + cey * cey + cez * cez;
    const double dlift = dex * dex + dey * dey + dez * dez;

    const double det =
        (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

    const double aezplus = std::fabs(aez), bezplus = std::fabs(bez);
    const double cezplus = std::fabs(cez), dezplus = std::fabs(dez);
    const double aexbeyplus = std::fabs(aexbey), bexaeyplus = std::fabs(bexaey);
    const double bexceyplus = std::fabs(bexcey), cexbeyplus = std::fabs(cexbey);
    const double cexdeyplus = std::fabs(cexdey), dexceyplus = std::fabs(dexcey);
    const double dexaeyplus = std::fabs(dexaey), aexdeyplus = std::fabs(aexdey);
    const double aexceyplus = std::fabs(aexcey), cexaeyplus = std::fabs(cexaey);
    const double bexdeyplus = std::fabs(bexdey), dexbeyplus = std::fabs(dexbey);

    const double permanent =
        ((cexdeyplus + dexceyplus) * bezplus +
         (dexbeyplus + bexdeyplus) * cezplus +
         (bexceyplus + cexbeyplus) * dezplus) * alift +
        ((dexaeyplus + aexdeyplus) * cezplus +
         (aexceyplus + cexaeyplus) * dezplus +
         (cexdeyplus + dexceyplus) * aezplus) * blift +
        ((aexbeyplus + bexaeyplus) * dezplus +
         (bexdeyplus + dexbeyplus) * aezplus +
         (dexaeyplus + aexdeyplus) * bezplus) * clift +
        ((bexceyplus + cexbeyplus) * aezplus +
         (cexaeyplus + aexceyplus) * bezplus +
         (aexbeyplus + bexaeyplus) * cezplus) * dlift;
    const double errbound = kIspErrBoundA * permanent;
    if (det > errbound || -det > errbound) {
      signs[i] = (det > 0.0) - (det < 0.0);
    } else {
      fail |= 1u << i;
    }
  }
  return fail;
}

#if PI2M_SIMD_AVX2

// Per-function target attribute: the TU is compiled for the baseline arch;
// only these kernels emit AVX2, and dispatch guarantees they never run on
// hardware without it. NOTE: only _mm256_mul_pd/_mm256_add_pd/_mm256_sub_pd
// here — an FMA would change the rounding versus the -ffp-contract=off
// scalar filter and break the identical-certified-set property.

__attribute__((target("avx2"))) unsigned orient3d_filter_avx2(
    const Orient3dBatch& b, int n, int* signs) {
  const __m256d abs_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(static_cast<long long>(0x7FFFFFFFFFFFFFFFULL)));
  const __m256d err_a = _mm256_set1_pd(kO3dErrBoundA);
  unsigned fail = 0;
  for (int base = 0; base < n; base += 4) {
    const __m256d ddx = _mm256_loadu_pd(b.dx + base);
    const __m256d ddy = _mm256_loadu_pd(b.dy + base);
    const __m256d ddz = _mm256_loadu_pd(b.dz + base);
    const __m256d adx = _mm256_sub_pd(_mm256_loadu_pd(b.ax + base), ddx);
    const __m256d ady = _mm256_sub_pd(_mm256_loadu_pd(b.ay + base), ddy);
    const __m256d adz = _mm256_sub_pd(_mm256_loadu_pd(b.az + base), ddz);
    const __m256d bdx = _mm256_sub_pd(_mm256_loadu_pd(b.bx + base), ddx);
    const __m256d bdy = _mm256_sub_pd(_mm256_loadu_pd(b.by + base), ddy);
    const __m256d bdz = _mm256_sub_pd(_mm256_loadu_pd(b.bz + base), ddz);
    const __m256d cdx = _mm256_sub_pd(_mm256_loadu_pd(b.cx + base), ddx);
    const __m256d cdy = _mm256_sub_pd(_mm256_loadu_pd(b.cy + base), ddy);
    const __m256d cdz = _mm256_sub_pd(_mm256_loadu_pd(b.cz + base), ddz);

    const __m256d bdxcdy = _mm256_mul_pd(bdx, cdy);
    const __m256d cdxbdy = _mm256_mul_pd(cdx, bdy);
    const __m256d cdxady = _mm256_mul_pd(cdx, ady);
    const __m256d adxcdy = _mm256_mul_pd(adx, cdy);
    const __m256d adxbdy = _mm256_mul_pd(adx, bdy);
    const __m256d bdxady = _mm256_mul_pd(bdx, ady);

    const __m256d det = _mm256_add_pd(
        _mm256_add_pd(
            _mm256_mul_pd(adz, _mm256_sub_pd(bdxcdy, cdxbdy)),
            _mm256_mul_pd(bdz, _mm256_sub_pd(cdxady, adxcdy))),
        _mm256_mul_pd(cdz, _mm256_sub_pd(adxbdy, bdxady)));

    const __m256d permanent = _mm256_add_pd(
        _mm256_add_pd(
            _mm256_mul_pd(
                _mm256_add_pd(_mm256_and_pd(bdxcdy, abs_mask),
                              _mm256_and_pd(cdxbdy, abs_mask)),
                _mm256_and_pd(adz, abs_mask)),
            _mm256_mul_pd(
                _mm256_add_pd(_mm256_and_pd(cdxady, abs_mask),
                              _mm256_and_pd(adxcdy, abs_mask)),
                _mm256_and_pd(bdz, abs_mask))),
        _mm256_mul_pd(
            _mm256_add_pd(_mm256_and_pd(adxbdy, abs_mask),
                          _mm256_and_pd(bdxady, abs_mask)),
            _mm256_and_pd(cdz, abs_mask)));

    const __m256d errbound = _mm256_mul_pd(err_a, permanent);
    // Certified <=> det > errbound OR -det > errbound (strict, matching
    // the scalar filter; NaN-safe ordered compares fail both sides).
    const __m256d pos = _mm256_cmp_pd(det, errbound, _CMP_GT_OQ);
    const __m256d neg = _mm256_cmp_pd(
        _mm256_sub_pd(_mm256_setzero_pd(), det), errbound, _CMP_GT_OQ);
    const unsigned pos_mask = static_cast<unsigned>(_mm256_movemask_pd(pos));
    const unsigned neg_mask = static_cast<unsigned>(_mm256_movemask_pd(neg));
    const unsigned certified = pos_mask | neg_mask;
    const int limit = (n - base < 4) ? n - base : 4;
    for (int k = 0; k < limit; ++k) {
      if (certified & (1u << k)) {
        signs[base + k] = (pos_mask & (1u << k)) ? 1 : -1;
      } else {
        fail |= 1u << (base + k);
      }
    }
  }
  return fail;
}

__attribute__((target("avx2"))) unsigned insphere_filter_avx2(
    const InsphereBatch& b, int n, int* signs) {
  const __m256d abs_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(static_cast<long long>(0x7FFFFFFFFFFFFFFFULL)));
  const __m256d err_a = _mm256_set1_pd(kIspErrBoundA);
  unsigned fail = 0;
  for (int base = 0; base < n; base += 4) {
    const __m256d eex = _mm256_loadu_pd(b.ex + base);
    const __m256d eey = _mm256_loadu_pd(b.ey + base);
    const __m256d eez = _mm256_loadu_pd(b.ez + base);
    const __m256d aex = _mm256_sub_pd(_mm256_loadu_pd(b.ax + base), eex);
    const __m256d aey = _mm256_sub_pd(_mm256_loadu_pd(b.ay + base), eey);
    const __m256d aez = _mm256_sub_pd(_mm256_loadu_pd(b.az + base), eez);
    const __m256d bex = _mm256_sub_pd(_mm256_loadu_pd(b.bx + base), eex);
    const __m256d bey = _mm256_sub_pd(_mm256_loadu_pd(b.by + base), eey);
    const __m256d bez = _mm256_sub_pd(_mm256_loadu_pd(b.bz + base), eez);
    const __m256d cex = _mm256_sub_pd(_mm256_loadu_pd(b.cx + base), eex);
    const __m256d cey = _mm256_sub_pd(_mm256_loadu_pd(b.cy + base), eey);
    const __m256d cez = _mm256_sub_pd(_mm256_loadu_pd(b.cz + base), eez);
    const __m256d dex = _mm256_sub_pd(_mm256_loadu_pd(b.dx + base), eex);
    const __m256d dey = _mm256_sub_pd(_mm256_loadu_pd(b.dy + base), eey);
    const __m256d dez = _mm256_sub_pd(_mm256_loadu_pd(b.dz + base), eez);

    const __m256d aexbey = _mm256_mul_pd(aex, bey);
    const __m256d bexaey = _mm256_mul_pd(bex, aey);
    const __m256d bexcey = _mm256_mul_pd(bex, cey);
    const __m256d cexbey = _mm256_mul_pd(cex, bey);
    const __m256d cexdey = _mm256_mul_pd(cex, dey);
    const __m256d dexcey = _mm256_mul_pd(dex, cey);
    const __m256d dexaey = _mm256_mul_pd(dex, aey);
    const __m256d aexdey = _mm256_mul_pd(aex, dey);
    const __m256d aexcey = _mm256_mul_pd(aex, cey);
    const __m256d cexaey = _mm256_mul_pd(cex, aey);
    const __m256d bexdey = _mm256_mul_pd(bex, dey);
    const __m256d dexbey = _mm256_mul_pd(dex, bey);

    const __m256d ab = _mm256_sub_pd(aexbey, bexaey);
    const __m256d bc = _mm256_sub_pd(bexcey, cexbey);
    const __m256d cd = _mm256_sub_pd(cexdey, dexcey);
    const __m256d da = _mm256_sub_pd(dexaey, aexdey);
    const __m256d ac = _mm256_sub_pd(aexcey, cexaey);
    const __m256d bd = _mm256_sub_pd(bexdey, dexbey);

    const __m256d abc = _mm256_add_pd(
        _mm256_sub_pd(_mm256_mul_pd(aez, bc), _mm256_mul_pd(bez, ac)),
        _mm256_mul_pd(cez, ab));
    const __m256d bcd = _mm256_add_pd(
        _mm256_sub_pd(_mm256_mul_pd(bez, cd), _mm256_mul_pd(cez, bd)),
        _mm256_mul_pd(dez, bc));
    const __m256d cda = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(cez, da), _mm256_mul_pd(dez, ac)),
        _mm256_mul_pd(aez, cd));
    const __m256d dab = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dez, ab), _mm256_mul_pd(aez, bd)),
        _mm256_mul_pd(bez, da));

    const __m256d alift = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(aex, aex), _mm256_mul_pd(aey, aey)),
        _mm256_mul_pd(aez, aez));
    const __m256d blift = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(bex, bex), _mm256_mul_pd(bey, bey)),
        _mm256_mul_pd(bez, bez));
    const __m256d clift = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(cex, cex), _mm256_mul_pd(cey, cey)),
        _mm256_mul_pd(cez, cez));
    const __m256d dlift = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dex, dex), _mm256_mul_pd(dey, dey)),
        _mm256_mul_pd(dez, dez));

    const __m256d det = _mm256_add_pd(
        _mm256_sub_pd(_mm256_mul_pd(dlift, abc), _mm256_mul_pd(clift, dab)),
        _mm256_sub_pd(_mm256_mul_pd(blift, cda), _mm256_mul_pd(alift, bcd)));

    const __m256d aezplus = _mm256_and_pd(aez, abs_mask);
    const __m256d bezplus = _mm256_and_pd(bez, abs_mask);
    const __m256d cezplus = _mm256_and_pd(cez, abs_mask);
    const __m256d dezplus = _mm256_and_pd(dez, abs_mask);
    const __m256d aexbeyplus = _mm256_and_pd(aexbey, abs_mask);
    const __m256d bexaeyplus = _mm256_and_pd(bexaey, abs_mask);
    const __m256d bexceyplus = _mm256_and_pd(bexcey, abs_mask);
    const __m256d cexbeyplus = _mm256_and_pd(cexbey, abs_mask);
    const __m256d cexdeyplus = _mm256_and_pd(cexdey, abs_mask);
    const __m256d dexceyplus = _mm256_and_pd(dexcey, abs_mask);
    const __m256d dexaeyplus = _mm256_and_pd(dexaey, abs_mask);
    const __m256d aexdeyplus = _mm256_and_pd(aexdey, abs_mask);
    const __m256d aexceyplus = _mm256_and_pd(aexcey, abs_mask);
    const __m256d cexaeyplus = _mm256_and_pd(cexaey, abs_mask);
    const __m256d bexdeyplus = _mm256_and_pd(bexdey, abs_mask);
    const __m256d dexbeyplus = _mm256_and_pd(dexbey, abs_mask);

    const __m256d perm_a = _mm256_mul_pd(
        _mm256_add_pd(
            _mm256_add_pd(
                _mm256_mul_pd(_mm256_add_pd(cexdeyplus, dexceyplus), bezplus),
                _mm256_mul_pd(_mm256_add_pd(dexbeyplus, bexdeyplus), cezplus)),
            _mm256_mul_pd(_mm256_add_pd(bexceyplus, cexbeyplus), dezplus)),
        alift);
    const __m256d perm_b = _mm256_mul_pd(
        _mm256_add_pd(
            _mm256_add_pd(
                _mm256_mul_pd(_mm256_add_pd(dexaeyplus, aexdeyplus), cezplus),
                _mm256_mul_pd(_mm256_add_pd(aexceyplus, cexaeyplus), dezplus)),
            _mm256_mul_pd(_mm256_add_pd(cexdeyplus, dexceyplus), aezplus)),
        blift);
    const __m256d perm_c = _mm256_mul_pd(
        _mm256_add_pd(
            _mm256_add_pd(
                _mm256_mul_pd(_mm256_add_pd(aexbeyplus, bexaeyplus), dezplus),
                _mm256_mul_pd(_mm256_add_pd(bexdeyplus, dexbeyplus), aezplus)),
            _mm256_mul_pd(_mm256_add_pd(dexaeyplus, aexdeyplus), bezplus)),
        clift);
    const __m256d perm_d = _mm256_mul_pd(
        _mm256_add_pd(
            _mm256_add_pd(
                _mm256_mul_pd(_mm256_add_pd(bexceyplus, cexbeyplus), aezplus),
                _mm256_mul_pd(_mm256_add_pd(cexaeyplus, aexceyplus), bezplus)),
            _mm256_mul_pd(_mm256_add_pd(aexbeyplus, bexaeyplus), cezplus)),
        dlift);
    const __m256d permanent = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(perm_a, perm_b), perm_c), perm_d);

    const __m256d errbound = _mm256_mul_pd(err_a, permanent);
    const __m256d pos = _mm256_cmp_pd(det, errbound, _CMP_GT_OQ);
    const __m256d neg = _mm256_cmp_pd(
        _mm256_sub_pd(_mm256_setzero_pd(), det), errbound, _CMP_GT_OQ);
    const unsigned pos_mask = static_cast<unsigned>(_mm256_movemask_pd(pos));
    const unsigned neg_mask = static_cast<unsigned>(_mm256_movemask_pd(neg));
    const unsigned certified = pos_mask | neg_mask;
    const int limit = (n - base < 4) ? n - base : 4;
    for (int k = 0; k < limit; ++k) {
      if (certified & (1u << k)) {
        signs[base + k] = (pos_mask & (1u << k)) ? 1 : -1;
      } else {
        fail |= 1u << (base + k);
      }
    }
  }
  return fail;
}

#endif  // PI2M_SIMD_AVX2

inline unsigned run_orient3d_filter(const Orient3dBatch& b, int n,
                                    int* signs) {
#if PI2M_SIMD_AVX2
  if (simd::active_level() == simd::Level::kAvx2) {
    return orient3d_filter_avx2(b, n, signs);
  }
#endif
  return orient3d_filter_scalar(b, n, signs);
}

inline unsigned run_insphere_filter(const InsphereBatch& b, int n,
                                    int* signs) {
#if PI2M_SIMD_AVX2
  if (simd::active_level() == simd::Level::kAvx2) {
    return insphere_filter_avx2(b, n, signs);
  }
#endif
  return insphere_filter_scalar(b, n, signs);
}

}  // namespace

int orient3d_batch(const Orient3dBatch& b, int n, int* signs) {
  PI2M_CHECK(n >= 1 && n <= Orient3dBatch::kMaxLanes,
             "orient3d_batch lane count out of range");
  CounterSlot& counters = my_counter_slot();
  bump(counters, kO3dBatches, 1);
  bump(counters, kO3dLanes, static_cast<std::uint64_t>(n));

  unsigned fail = run_orient3d_filter(b, n, signs);
  if (fail == 0) return 0;
  int nfail = 0;
  for (int i = 0; i < n; ++i) {
    if (fail & (1u << i)) {
      signs[i] = orient3d(b.a_of(i), b.b_of(i), b.c_of(i), b.d_of(i));
      ++nfail;
    }
  }
  bump(counters, kO3dFallback, static_cast<std::uint64_t>(nfail));
  return nfail;
}

int insphere_batch(const InsphereBatch& b, int n, int* signs) {
  PI2M_CHECK(n >= 1 && n <= InsphereBatch::kMaxLanes,
             "insphere_batch lane count out of range");
  CounterSlot& counters = my_counter_slot();
  bump(counters, kIspBatches, 1);
  bump(counters, kIspLanes, static_cast<std::uint64_t>(n));

  unsigned fail = run_insphere_filter(b, n, signs);
  if (fail == 0) return 0;
  int nfail = 0;
  for (int i = 0; i < n; ++i) {
    if (fail & (1u << i)) {
      signs[i] =
          insphere(b.a_of(i), b.b_of(i), b.c_of(i), b.d_of(i), b.e_of(i));
      ++nfail;
    }
  }
  bump(counters, kIspFallback, static_cast<std::uint64_t>(nfail));
  return nfail;
}

SimdPredicateCounters simd_predicate_counters() {
  return {sum_counters(kO3dBatches), sum_counters(kO3dLanes),
          sum_counters(kO3dFallback), sum_counters(kIspBatches),
          sum_counters(kIspLanes),   sum_counters(kIspFallback)};
}

void reset_simd_predicate_counters() {
  for (CounterSlot& s : g_counters) {
    for (auto& c : s.c) c.store(0, std::memory_order_relaxed);
  }
}

}  // namespace pi2m
