#include "imaging/phantom.hpp"

#include <cmath>
#include <functional>
#include <random>

namespace pi2m::phantom {
namespace {

/// Ellipsoid membership test: ((p-c)/r)^2 <= 1 componentwise-scaled.
bool in_ellipsoid(const Vec3& p, const Vec3& c, const Vec3& r) {
  const double u = (p.x - c.x) / r.x;
  const double v = (p.y - c.y) / r.y;
  const double w = (p.z - c.z) / r.z;
  return u * u + v * v + w * w <= 1.0;
}

/// Capsule (cylinder with spherical caps) from a to b with radius r.
bool in_capsule(const Vec3& p, const Vec3& a, const Vec3& b, double r) {
  const Vec3 ab = b - a;
  const double len2 = norm2(ab);
  double t = len2 > 0.0 ? dot(p - a, ab) / len2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  return distance2(p, a + t * ab) <= r * r;
}

}  // namespace

LabeledImage3D from_function(int nx, int ny, int nz, Vec3 spacing,
                             const std::function<Label(const Vec3&)>& f) {
  LabeledImage3D img(nx, ny, nz, spacing);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const Voxel v{x, y, z};
        img.at(v) = f(img.voxel_center(v));
      }
    }
  }
  return img;
}

LabeledImage3D ball(int n, double radius_frac) {
  const Vec3 c{(n - 1) * 0.5, (n - 1) * 0.5, (n - 1) * 0.5};
  const double r = radius_frac * (n - 1) * 0.5;
  return from_function(n, n, n, {1, 1, 1}, [&](const Vec3& p) -> Label {
    return distance2(p, c) <= r * r ? 1 : 0;
  });
}

LabeledImage3D ellipsoid(int n) {
  const Vec3 c{(n - 1) * 0.5, (n - 1) * 0.5, (n - 1) * 0.5};
  // Distinct semi-axes so no lattice plane aligns with a symmetry plane,
  // while keeping ~25% of the volume foreground (interior-dominated).
  const Vec3 r{0.44 * (n - 1), 0.38 * (n - 1), 0.31 * (n - 1)};
  return from_function(n, n, n, {1, 1, 1}, [&](const Vec3& p) -> Label {
    return in_ellipsoid(p, c, r) ? 1 : 0;
  });
}

LabeledImage3D thick_shell(int n) {
  const Vec3 c{(n - 1) * 0.5, (n - 1) * 0.5, (n - 1) * 0.5};
  const double r_outer = 0.45 * (n - 1), r_core = 0.28 * (n - 1);
  return from_function(n, n, n, {1, 1, 1}, [&](const Vec3& p) -> Label {
    const double d2 = distance2(p, c);
    if (d2 <= r_core * r_core) return 1;
    if (d2 <= r_outer * r_outer) return 2;
    return 0;
  });
}

LabeledImage3D concentric_shells(int n) {
  const Vec3 c{(n - 1) * 0.5, (n - 1) * 0.5, (n - 1) * 0.5};
  const double r_outer = 0.42 * n, r_inner = 0.22 * n;
  return from_function(n, n, n, {1, 1, 1}, [&](const Vec3& p) -> Label {
    const double d2 = distance2(p, c);
    if (d2 <= r_inner * r_inner) return 2;
    if (d2 <= r_outer * r_outer) return 1;
    return 0;
  });
}

LabeledImage3D abdominal(int nx, int ny, int nz, Vec3 spacing) {
  const Vec3 ext{nx * spacing.x, ny * spacing.y, nz * spacing.z};
  const Vec3 c = 0.5 * Vec3{(nx - 1) * spacing.x, (ny - 1) * spacing.y,
                            (nz - 1) * spacing.z};
  const Vec3 body_r{0.42 * ext.x, 0.38 * ext.y, 0.46 * ext.z};
  const Vec3 liver_c = c + Vec3{0.16 * ext.x, 0.05 * ext.y, 0.06 * ext.z};
  const Vec3 liver_r{0.18 * ext.x, 0.16 * ext.y, 0.14 * ext.z};
  const Vec3 kidl_c = c + Vec3{-0.18 * ext.x, -0.10 * ext.y, -0.08 * ext.z};
  const Vec3 kidr_c = c + Vec3{0.18 * ext.x, -0.12 * ext.y, -0.14 * ext.z};
  const Vec3 kid_r{0.07 * ext.x, 0.055 * ext.y, 0.10 * ext.z};
  const Vec3 spine_a = c + Vec3{0.0, -0.22 * ext.y, -0.40 * ext.z};
  const Vec3 spine_b = c + Vec3{0.0, -0.22 * ext.y, 0.40 * ext.z};
  const double spine_r = 0.05 * std::min(ext.x, ext.y);

  return from_function(nx, ny, nz, spacing, [=](const Vec3& p) -> Label {
    if (!in_ellipsoid(p, c, body_r)) return 0;
    if (in_capsule(p, spine_a, spine_b, spine_r)) return 4;
    if (in_ellipsoid(p, kidl_c, kid_r) || in_ellipsoid(p, kidr_c, kid_r))
      return 3;
    if (in_ellipsoid(p, liver_c, liver_r)) return 2;
    return 1;
  });
}

LabeledImage3D knee(int nx, int ny, int nz, Vec3 spacing) {
  const Vec3 ext{nx * spacing.x, ny * spacing.y, nz * spacing.z};
  const Vec3 c = 0.5 * Vec3{(nx - 1) * spacing.x, (ny - 1) * spacing.y,
                            (nz - 1) * spacing.z};
  // Femur comes in from the top, tibia from the bottom, slightly offset;
  // a cartilage gap region separates them; a soft-tissue sleeve wraps all.
  const double bone_r = 0.11 * std::min(ext.x, ext.y);
  const Vec3 femur_a = c + Vec3{0.02 * ext.x, 0.0, 0.46 * ext.z};
  const Vec3 femur_b = c + Vec3{0.0, 0.0, 0.06 * ext.z};
  const Vec3 tibia_a = c + Vec3{-0.02 * ext.x, 0.0, -0.46 * ext.z};
  const Vec3 tibia_b = c + Vec3{0.0, 0.0, -0.07 * ext.z};
  const Vec3 sleeve_r{0.34 * ext.x, 0.30 * ext.y, 0.47 * ext.z};
  const Vec3 cart_c = c;
  const Vec3 cart_r{0.16 * ext.x, 0.14 * ext.y, 0.075 * ext.z};

  return from_function(nx, ny, nz, spacing, [=](const Vec3& p) -> Label {
    if (!in_ellipsoid(p, c, sleeve_r)) return 0;
    if (in_capsule(p, femur_a, femur_b, bone_r)) return 1;
    if (in_capsule(p, tibia_a, tibia_b, bone_r)) return 2;
    if (in_ellipsoid(p, cart_c, cart_r)) return 3;
    return 4;
  });
}

LabeledImage3D head_neck(int nx, int ny, int nz, Vec3 spacing) {
  const Vec3 ext{nx * spacing.x, ny * spacing.y, nz * spacing.z};
  const Vec3 c = 0.5 * Vec3{(nx - 1) * spacing.x, (ny - 1) * spacing.y,
                            (nz - 1) * spacing.z};
  const Vec3 head_c = c + Vec3{0, 0, 0.18 * ext.z};
  const double head_r = 0.30 * std::min({ext.x, ext.y, ext.z});
  const Vec3 lobe_l = head_c + Vec3{-0.35 * head_r, 0, 0.1 * head_r};
  const Vec3 lobe_rr = head_c + Vec3{0.35 * head_r, 0, 0.1 * head_r};
  const Vec3 lobe_rad{0.42 * head_r, 0.55 * head_r, 0.5 * head_r};
  const Vec3 neck_a = head_c + Vec3{0, 0, -0.6 * head_r};
  const Vec3 neck_b = c + Vec3{0, 0, -0.46 * ext.z};
  const double neck_r = 0.42 * head_r;
  const Vec3 airway_a = head_c + Vec3{0, 0.1 * head_r, 0};
  const Vec3 airway_b = neck_b + Vec3{0, 0.1 * head_r, 0};
  const double airway_r = 0.12 * head_r;

  return from_function(nx, ny, nz, spacing, [=](const Vec3& p) -> Label {
    if (in_capsule(p, airway_a, airway_b, airway_r)) return 0;  // void
    if (in_ellipsoid(p, lobe_l, lobe_rad)) return 2;
    if (in_ellipsoid(p, lobe_rr, lobe_rad)) return 3;
    if (distance2(p, head_c) <= head_r * head_r) return 1;
    if (in_capsule(p, neck_a, neck_b, neck_r)) return 4;
    return 0;
  });
}

LabeledImage3D vessels(int n, int levels) {
  // Recursive branching capsule tree from the bottom face upward.
  struct Segment {
    Vec3 a, b;
    double r;
  };
  std::vector<Segment> segs;
  const double len0 = 0.38 * n, r0 = 0.055 * n;
  std::function<void(Vec3, Vec3, double, double, int)> grow =
      [&](Vec3 base, Vec3 dir, double len, double r, int depth) {
        const Vec3 tip = base + len * dir;
        segs.push_back({base, tip, r});
        if (depth <= 0) return;
        // Two children branching at ~35 degrees in perpendicular planes.
        const Vec3 axis = std::fabs(dir.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{1, 0, 0};
        const Vec3 side = normalized(cross(dir, axis));
        for (const double s : {+0.62, -0.62}) {
          const Vec3 child_dir = normalized(dir + s * side);
          grow(tip, child_dir, 0.72 * len, 0.75 * r, depth - 1);
        }
      };
  grow({0.5 * n, 0.5 * n, 0.08 * n}, {0, 0, 1}, len0, r0, levels);

  return from_function(n, n, n, {1, 1, 1}, [&](const Vec3& p) -> Label {
    double best = 1e300;
    for (const Segment& s : segs) {
      const Vec3 ab = s.b - s.a;
      const double len2 = norm2(ab);
      double t = len2 > 0 ? dot(p - s.a, ab) / len2 : 0.0;
      t = std::clamp(t, 0.0, 1.0);
      best = std::min(best, distance(p, s.a + t * ab) - s.r);
    }
    if (best <= -0.35 * r0) return 1;            // lumen
    if (best <= 0.0) return 2;                   // vessel wall
    // Surrounding tissue block (leaves a margin to the image border).
    const double m = 0.06 * n;
    if (p.x > m && p.x < n - 1 - m && p.y > m && p.y < n - 1 - m &&
        p.z > m && p.z < n - 1 - m) {
      return 3;
    }
    return 0;
  });
}

LabeledImage3D random_blobs(int n, unsigned seed, int num_blobs,
                            int num_labels) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> pos(0.25 * n, 0.75 * n);
  std::uniform_real_distribution<double> rad(0.10 * n, 0.28 * n);
  std::uniform_int_distribution<int> lab(1, std::max(1, num_labels));

  struct Blob {
    Vec3 c, r;
    Label l;
  };
  std::vector<Blob> blobs;
  blobs.reserve(static_cast<std::size_t>(num_blobs));
  for (int i = 0; i < num_blobs; ++i) {
    blobs.push_back({{pos(rng), pos(rng), pos(rng)},
                     {rad(rng), rad(rng), rad(rng)},
                     static_cast<Label>(lab(rng))});
  }
  LabeledImage3D img = from_function(
      n, n, n, {1, 1, 1}, [&](const Vec3& p) -> Label {
        for (const Blob& b : blobs) {
          if (in_ellipsoid(p, b.c, b.r)) return b.l;
        }
        return 0;
      });
  // Guarantee at least one foreground voxel so downstream code never sees an
  // empty object.
  const Voxel mid{n / 2, n / 2, n / 2};
  if (img.labels_present().empty()) img.at(mid) = 1;
  return img;
}

}  // namespace pi2m::phantom
