// Isosurface oracle: all geometric queries the refinement rules make
// against the segmented image (paper §3).
//
// The isosurface ∂O is the set of points where the (nearest-neighbour
// extended) label field changes value — the outer object boundary plus all
// internal tissue-tissue interfaces. Queries combine the O(1) feature
// transform with short ray walks + bisection refinement ("we traverse the
// ray pq on small intervals and compute p̂ ∈ ∂O by interpolating the
// positions of different labels", paper §3).
#pragma once

#include <optional>

#include "imaging/edt.hpp"
#include "imaging/image3d.hpp"

namespace pi2m {

class IsosurfaceOracle {
 public:
  /// Builds the oracle: computes the feature transform with `threads`
  /// threads (the paper's only preprocessing step besides the virtual box).
  IsosurfaceOracle(const LabeledImage3D& img, int threads = 1);

  [[nodiscard]] const LabeledImage3D& image() const { return *img_; }
  [[nodiscard]] const FeatureTransform& edt() const { return ft_; }

  /// Nearest-neighbour label at a world point (background outside image).
  [[nodiscard]] Label label_at(const Vec3& p) const { return img_->label_at(p); }

  /// True when p is inside the object O (any non-zero label).
  [[nodiscard]] bool inside(const Vec3& p) const { return label_at(p) != 0; }

  /// The point p̂ of ∂O closest to p (paper notation): EDT lookup to find the
  /// nearest surface voxel q, then a walk along ray p→q with bisection to the
  /// exact label-change position. Empty when the image has no surface.
  [[nodiscard]] std::optional<Vec3> closest_surface_point(const Vec3& p) const;

  /// First intersection of segment [a,b] with ∂O (label change along the
  /// segment), refined by bisection. Empty when the labels never change.
  /// Used by rule R3 on Voronoi edges V(f).
  [[nodiscard]] std::optional<Vec3> segment_surface_intersection(
      const Vec3& a, const Vec3& b) const;

  /// Reference implementations of the two walks above: fixed-lattice scalar
  /// sampling at `step()` intervals (the paper's description, verbatim).
  /// Kept as the parity baseline for the DDA walks and for A/B benchmarks.
  [[nodiscard]] std::optional<Vec3> closest_surface_point_reference(
      const Vec3& p) const;
  [[nodiscard]] std::optional<Vec3> segment_surface_intersection_reference(
      const Vec3& a, const Vec3& b) const;

  /// Selects between the Amanatides–Woo voxel-DDA walks (default) and the
  /// reference scalar sampling walks for the public query entry points.
  void set_use_dda(bool on) { use_dda_ = on; }
  [[nodiscard]] bool uses_dda() const { return use_dda_; }

  /// True when the ball of center c and radius r intersects ∂O; implemented
  /// as |c - closest_surface_point(c)| <= r. Used by rules R1/R2.
  [[nodiscard]] bool ball_intersects_surface(const Vec3& c, double r) const;

  /// Sampling step for ray walks (a fraction of the minimum voxel spacing).
  [[nodiscard]] double step() const { return step_; }

  /// O(1) lower bound on the distance from p to ∂O: the EDT distance to the
  /// nearest surface-voxel *center* minus one voxel diagonal (the interface
  /// passes within a diagonal of that center). Never overestimates the true
  /// distance by construction; used as a conservative prefilter so rule
  /// classification skips the expensive ray walks for the (vast majority
  /// of) elements far from the surface.
  [[nodiscard]] double surface_distance_lower_bound(const Vec3& p) const {
    const double d = ft_.surface_distance_estimate(p);
    return d - voxel_diag_;
  }

  /// Conservative O(1) test: false only when the ball around c of radius r
  /// certainly does not intersect ∂O.
  [[nodiscard]] bool ball_may_intersect_surface(const Vec3& c, double r) const {
    return surface_distance_lower_bound(c) <= r;
  }

  /// Conservative O(1) test: false only when segment [a,b] certainly does
  /// not cross ∂O (both endpoints farther from the surface than the reach
  /// of the segment: d(a)+d(b) > |ab|).
  [[nodiscard]] bool segment_may_intersect_surface(const Vec3& a,
                                                   const Vec3& b) const {
    return surface_distance_lower_bound(a) + surface_distance_lower_bound(b) <=
           distance(a, b);
  }

 private:
  /// Refines a bracketed label change between s (label ls) and t to a point
  /// on the interface, by bisection on the label field.
  [[nodiscard]] Vec3 bisect(Vec3 s, Label ls, Vec3 t) const;

  /// Given (approximately) a surface voxel center, bisects toward the axis
  /// neighbour of differing label to land on the interface.
  [[nodiscard]] Vec3 refine_around_voxel(const Vec3& q) const;

  /// First label transition along segment [a,b], located by an integer
  /// Amanatides–Woo voxel traversal of the label grid and refined by
  /// bisection. The workhorse behind both DDA-mode public walks.
  [[nodiscard]] std::optional<Vec3> first_transition_dda(const Vec3& a,
                                                         const Vec3& b) const;

  const LabeledImage3D* img_;
  FeatureTransform ft_;
  double step_;
  double voxel_diag_;
  Vec3 inv_sp_;
  bool use_dda_ = true;
};

}  // namespace pi2m
