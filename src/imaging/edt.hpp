// Parallel exact Euclidean feature transform.
//
// PI2M needs, for any point p, the *surface voxel* nearest to p (paper §3:
// "the EDT returns the surface voxel q which is closest to p"); the paper
// uses the parallel Maurer filter of Staubs et al. [56]. We implement the
// same class of algorithm: an exact, separable, dimension-by-dimension
// feature transform (lower-envelope-of-parabolas per scanline) that
// propagates the identity of the nearest feature voxel, handles anisotropic
// spacing, and parallelizes over scanlines (it scales linearly in the number
// of threads, as [56] reports).
#pragma once

#include <cstdint>
#include <vector>

#include "imaging/image3d.hpp"

namespace pi2m {

class FeatureTransform {
 public:
  /// Computes the nearest-surface-voxel map of `img` using `threads` threads.
  static FeatureTransform compute(const LabeledImage3D& img, int threads = 1);

  /// True when the image contains at least one surface voxel.
  [[nodiscard]] bool has_surface() const { return has_surface_; }

  /// Nearest surface voxel to the center of `v` (exact, in physical
  /// distance). Only valid when has_surface().
  [[nodiscard]] Voxel nearest_surface_voxel(const Voxel& v) const;

  /// Physical (mm) distance from a world point to the center of the surface
  /// voxel nearest to the voxel containing that point. An O(1) lookup used
  /// as the cheap distance estimate in rule classification.
  [[nodiscard]] double surface_distance_estimate(const Vec3& p) const;

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }

 private:
  const LabeledImage3D* img_ = nullptr;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  bool has_surface_ = false;
  // Packed per-voxel coordinates of the nearest surface voxel.
  std::vector<std::int16_t> fx_, fy_, fz_;
};

}  // namespace pi2m
