#include "imaging/image3d.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace pi2m {

LabeledImage3D::LabeledImage3D(int nx, int ny, int nz, Vec3 spacing,
                               Vec3 origin)
    : nx_(nx), ny_(ny), nz_(nz), spacing_(spacing), origin_(origin) {
  PI2M_CHECK(nx > 0 && ny > 0 && nz > 0, "image dimensions must be positive");
  PI2M_CHECK(spacing.x > 0 && spacing.y > 0 && spacing.z > 0,
             "voxel spacing must be positive");
  inv_spacing_ = {1.0 / spacing.x, 1.0 / spacing.y, 1.0 / spacing.z};
  data_.assign(static_cast<std::size_t>(nx) * ny * nz, Label{0});
  bounds_.expand(voxel_center({0, 0, 0}) - 0.5 * spacing_);
  bounds_.expand(voxel_center({nx_ - 1, ny_ - 1, nz_ - 1}) + 0.5 * spacing_);
}

Voxel LabeledImage3D::nearest_voxel(const Vec3& p) const {
  auto clampi = [](double v, int n) {
    const int i = static_cast<int>(std::lround(v));
    return std::clamp(i, 0, n - 1);
  };
  return {clampi((p.x - origin_.x) / spacing_.x, nx_),
          clampi((p.y - origin_.y) / spacing_.y, ny_),
          clampi((p.z - origin_.z) / spacing_.z, nz_)};
}

bool LabeledImage3D::is_surface_voxel(const Voxel& v) const {
  const Label l = at(v);
  if (l == 0) return false;
  static constexpr std::array<Voxel, 6> kOffsets{
      Voxel{1, 0, 0}, Voxel{-1, 0, 0}, Voxel{0, 1, 0},
      Voxel{0, -1, 0}, Voxel{0, 0, 1}, Voxel{0, 0, -1}};
  for (const Voxel& o : kOffsets) {
    if (at({v.x + o.x, v.y + o.y, v.z + o.z}) != l) return true;
  }
  return false;
}

std::vector<Label> LabeledImage3D::labels_present() const {
  std::array<bool, 256> seen{};
  for (Label l : data_) seen[l] = true;
  std::vector<Label> out;
  for (int l = 1; l < 256; ++l) {
    if (seen[l]) out.push_back(static_cast<Label>(l));
  }
  return out;
}

}  // namespace pi2m
