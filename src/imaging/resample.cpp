#include "imaging/resample.hpp"

#include <algorithm>
#include <array>

#include "support/common.hpp"

namespace pi2m {

LabeledImage3D downsample(const LabeledImage3D& img, int factor) {
  PI2M_CHECK(factor >= 1, "downsample factor must be >= 1");
  if (factor == 1) return img;
  const int nx = std::max(1, img.nx() / factor);
  const int ny = std::max(1, img.ny() / factor);
  const int nz = std::max(1, img.nz() / factor);
  const Vec3 sp = img.spacing();
  LabeledImage3D out(nx, ny, nz,
                     {sp.x * factor, sp.y * factor, sp.z * factor},
                     img.origin());
  std::array<int, 256> votes{};
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        votes.fill(0);
        for (int dz = 0; dz < factor; ++dz) {
          for (int dy = 0; dy < factor; ++dy) {
            for (int dx = 0; dx < factor; ++dx) {
              ++votes[img.at({x * factor + dx, y * factor + dy,
                              z * factor + dz})];
            }
          }
        }
        int best = 0;
        for (int l = 1; l < 256; ++l) {
          if (votes[l] > votes[best]) best = l;
        }
        out.at({x, y, z}) = static_cast<Label>(best);
      }
    }
  }
  return out;
}

LabeledImage3D crop(const LabeledImage3D& img, Voxel lo, Voxel hi) {
  lo = {std::max(lo.x, 0), std::max(lo.y, 0), std::max(lo.z, 0)};
  hi = {std::min(hi.x, img.nx() - 1), std::min(hi.y, img.ny() - 1),
        std::min(hi.z, img.nz() - 1)};
  PI2M_CHECK(lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z,
             "empty crop region");
  const Vec3 new_origin = img.voxel_center(lo);
  LabeledImage3D out(hi.x - lo.x + 1, hi.y - lo.y + 1, hi.z - lo.z + 1,
                     img.spacing(), new_origin);
  for (int z = 0; z < out.nz(); ++z) {
    for (int y = 0; y < out.ny(); ++y) {
      for (int x = 0; x < out.nx(); ++x) {
        out.at({x, y, z}) = img.at({lo.x + x, lo.y + y, lo.z + z});
      }
    }
  }
  return out;
}

void foreground_bounds(const LabeledImage3D& img, int pad, Voxel* lo,
                       Voxel* hi) {
  *lo = {img.nx(), img.ny(), img.nz()};
  *hi = {-1, -1, -1};
  for (int z = 0; z < img.nz(); ++z) {
    for (int y = 0; y < img.ny(); ++y) {
      for (int x = 0; x < img.nx(); ++x) {
        if (img.at({x, y, z}) == 0) continue;
        lo->x = std::min(lo->x, x);
        lo->y = std::min(lo->y, y);
        lo->z = std::min(lo->z, z);
        hi->x = std::max(hi->x, x);
        hi->y = std::max(hi->y, y);
        hi->z = std::max(hi->z, z);
      }
    }
  }
  if (hi->x < 0) {  // no foreground: whole image
    *lo = {0, 0, 0};
    *hi = {img.nx() - 1, img.ny() - 1, img.nz() - 1};
    return;
  }
  lo->x = std::max(0, lo->x - pad);
  lo->y = std::max(0, lo->y - pad);
  lo->z = std::max(0, lo->z - pad);
  hi->x = std::min(img.nx() - 1, hi->x + pad);
  hi->y = std::min(img.ny() - 1, hi->y + pad);
  hi->z = std::min(img.nz() - 1, hi->z + pad);
}

}  // namespace pi2m
