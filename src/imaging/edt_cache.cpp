#include "imaging/edt_cache.hpp"

#include <condition_variable>
#include <utility>

namespace pi2m {

namespace {

inline void fnv1a(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

/// Image + 3x int16 feature coordinates per voxel (edt.hpp) + fixed slack.
std::size_t entry_footprint(const LabeledImage3D& img) {
  return img.voxel_count() * (sizeof(Label) + 3 * sizeof(std::int16_t)) +
         (std::size_t{1} << 12);
}

}  // namespace

std::uint64_t image_content_hash(const LabeledImage3D& img) {
  std::uint64_t h = 1469598103934665603ull;
  const int dims[3] = {img.nx(), img.ny(), img.nz()};
  fnv1a(h, dims, sizeof dims);
  const Vec3 sp = img.spacing();
  const Vec3 org = img.origin();
  const double geo[6] = {sp.x, sp.y, sp.z, org.x, org.y, org.z};
  fnv1a(h, geo, sizeof geo);
  if (!img.raw().empty()) {
    fnv1a(h, img.raw().data(), img.raw().size() * sizeof(Label));
  }
  return h;
}

struct EdtCache::InFlight {
  std::mutex mu;
  std::condition_variable cv;
  std::shared_ptr<const Entry> entry;  ///< set exactly once, under mu
};

EdtCache::EdtCache(std::size_t byte_budget) : budget_bytes_(byte_budget) {}

std::shared_ptr<const EdtCache::Entry> EdtCache::acquire(
    const LabeledImage3D& img, int threads, bool* hit) {
  const std::uint64_t key = image_content_hash(img);
  std::shared_ptr<InFlight> fl;
  bool creator = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      std::shared_ptr<const Entry> e = *it->second;
      if (e->image.nx() == img.nx() && e->image.ny() == img.ny() &&
          e->image.nz() == img.nz()) {
        lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU
        ++stats_.hits;
        if (hit != nullptr) *hit = true;
        return e;
      }
      // Hash collision across different shapes: serve the request without
      // caching it (practically unreachable; never hand out wrong content).
    }
    auto in = inflight_.find(key);
    if (in != inflight_.end()) {
      fl = in->second;
      ++stats_.coalesced;
    } else {
      fl = std::make_shared<InFlight>();
      inflight_.emplace(key, fl);
      creator = true;
      ++stats_.misses;
    }
  }

  if (creator) {
    // Compute outside the cache lock: concurrent jobs on *different*
    // images overlap their EDT computations freely.
    auto e = std::make_shared<Entry>();
    e->image = img;  // deep copy: entry owns stable storage
    e->oracle = std::make_shared<const IsosurfaceOracle>(e->image, threads);
    e->key = key;
    e->bytes = entry_footprint(e->image);
    {
      std::lock_guard<std::mutex> lk(fl->mu);
      fl->entry = e;
    }
    fl->cv.notify_all();
    std::lock_guard<std::mutex> lk(mu_);
    inflight_.erase(key);
    insert_and_evict_locked(std::move(e));
  }

  std::unique_lock<std::mutex> lk(fl->mu);
  fl->cv.wait(lk, [&] { return fl->entry != nullptr; });
  if (hit != nullptr) *hit = false;
  return fl->entry;
}

void EdtCache::insert_and_evict_locked(std::shared_ptr<const Entry> e) {
  const std::uint64_t key = e->key;
  if (index_.count(key) != 0) return;  // raced duplicate; keep the first
  bytes_ += e->bytes;
  lru_.push_front(std::move(e));
  index_[key] = lru_.begin();
  while (bytes_ > budget_bytes_ && !lru_.empty()) {
    const std::shared_ptr<const Entry>& victim = lru_.back();
    bytes_ -= victim->bytes;
    index_.erase(victim->key);
    lru_.pop_back();  // pinned holders keep the entry alive via shared_ptr
    ++stats_.evictions;
  }
}

void EdtCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.evictions += lru_.size();
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

EdtCache::Stats EdtCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s = stats_;
  s.bytes = bytes_;
  s.entries = lru_.size();
  s.budget_bytes = budget_bytes_;
  return s;
}

}  // namespace pi2m
