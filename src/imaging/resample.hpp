// Label-image resampling and cropping utilities: practical preprocessing
// for real scans (downsample a 512^3 atlas before meshing, crop to a
// region of interest). Nearest-neighbour only — label images must never
// be interpolated.
#pragma once

#include "imaging/image3d.hpp"

namespace pi2m {

/// Integer-factor downsampling by majority vote over each factor^3 block
/// (ties broken toward the smaller label; background participates).
/// Physical spacing scales by `factor` so world geometry is preserved.
LabeledImage3D downsample(const LabeledImage3D& img, int factor);

/// Crops the voxel region [lo, hi] (inclusive, clamped to bounds). The
/// origin shifts so world coordinates of retained voxels are unchanged.
LabeledImage3D crop(const LabeledImage3D& img, Voxel lo, Voxel hi);

/// Tight bounding box of the foreground (label != 0), padded by `pad`
/// voxels and clamped; full image when there is no foreground.
void foreground_bounds(const LabeledImage3D& img, int pad, Voxel* lo,
                       Voxel* hi);

}  // namespace pi2m
