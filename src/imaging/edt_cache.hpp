// Content-addressed cache of feature transforms (EDT) and their oracles.
//
// The feature transform is the only preprocessing step of the pipeline and
// the dominant fixed cost of small meshing jobs; in a serving process the
// same segmented image is meshed over and over with different refinement
// knobs (delta sweeps, quality ladders, per-user sizing). Since the EDT
// depends only on the image content, one computation can back them all:
// entries are keyed by a content hash of the voxel data + geometry, pinned
// by shared_ptr while any job uses them, and evicted LRU under a byte
// budget.
//
// Thread-safety: every public method is safe to call concurrently. A miss
// computes outside the lock; concurrent misses on the same key are
// single-flighted (the second caller waits for the first computation
// instead of duplicating it).
//
// The entry owns a *copy* of the image, and its oracle is built over that
// copy — callers must run refinement against entry->image (not their own
// copy) so the oracle's internal image pointer stays valid and consistent.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "imaging/image3d.hpp"
#include "imaging/isosurface.hpp"

namespace pi2m {

/// FNV-1a over dimensions, spacing, origin and raw label bytes. Two images
/// with equal hashes are treated as identical content (64-bit collision
/// odds are negligible against the cache's lifetime; dimensions are also
/// cross-checked on every hit).
std::uint64_t image_content_hash(const LabeledImage3D& img);

class EdtCache {
 public:
  struct Entry {
    LabeledImage3D image;  ///< stable copy the oracle points into
    std::shared_ptr<const IsosurfaceOracle> oracle;
    std::uint64_t key = 0;
    std::size_t bytes = 0;  ///< image + feature-transform footprint
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t coalesced = 0;  ///< waited on another thread's compute
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;
    std::size_t entries = 0;
    std::size_t budget_bytes = 0;
  };

  explicit EdtCache(std::size_t byte_budget);

  /// Returns a pinned entry whose content equals `img`, computing the image
  /// copy + feature transform with `threads` threads on a miss. `hit` (when
  /// given) reports whether the EDT computation was skipped. The returned
  /// entry stays valid for as long as the caller holds it, even across
  /// eviction.
  std::shared_ptr<const Entry> acquire(const LabeledImage3D& img, int threads,
                                       bool* hit = nullptr);

  /// Drops every idle entry (pinned entries survive via their shared_ptr).
  void clear();

  [[nodiscard]] Stats stats() const;

 private:
  struct InFlight;

  void insert_and_evict_locked(std::shared_ptr<const Entry> e);

  mutable std::mutex mu_;
  std::size_t budget_bytes_;
  std::size_t bytes_ = 0;
  /// MRU-first pinned entries; the map indexes into the list.
  std::list<std::shared_ptr<const Entry>> lru_;
  std::unordered_map<std::uint64_t,
                     std::list<std::shared_ptr<const Entry>>::iterator>
      index_;
  std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> inflight_;
  Stats stats_;
};

}  // namespace pi2m
