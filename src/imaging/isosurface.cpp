#include "imaging/isosurface.hpp"

#include <cmath>

namespace pi2m {

IsosurfaceOracle::IsosurfaceOracle(const LabeledImage3D& img, int threads)
    : img_(&img),
      ft_(FeatureTransform::compute(img, threads)),
      step_(0.45 * img.min_spacing()),
      voxel_diag_(norm(img.spacing())) {}

Vec3 IsosurfaceOracle::bisect(Vec3 s, Label ls, Vec3 t) const {
  // 15 halvings of a sub-voxel bracket resolve the interface to ~3e-5
  // voxels, far below any geometric tolerance used by the refiner.
  for (int i = 0; i < 15; ++i) {
    const Vec3 m = 0.5 * (s + t);
    if (label_at(m) == ls) {
      s = m;
    } else {
      t = m;
    }
  }
  return 0.5 * (s + t);
}

Vec3 IsosurfaceOracle::refine_around_voxel(const Vec3& q) const {
  // q is (near) the center of a surface voxel: one of its 6 axis
  // neighbourhoods carries a different label. Bisect the closest such
  // bracket to land on the interface.
  const Label lq = label_at(q);
  const Vec3 sp = img_->spacing();
  const Vec3 probes[6] = {{sp.x, 0, 0},  {-sp.x, 0, 0}, {0, sp.y, 0},
                          {0, -sp.y, 0}, {0, 0, sp.z},  {0, 0, -sp.z}};
  for (const Vec3& pr : probes) {
    if (label_at(q + pr) != lq) return bisect(q, lq, q + pr);
  }
  return q;  // isolated voxel; its center is the best surface estimate
}

std::optional<Vec3> IsosurfaceOracle::closest_surface_point(
    const Vec3& p) const {
  if (!ft_.has_surface()) return std::nullopt;
  const Voxel v = img_->nearest_voxel(p);
  const Voxel f = ft_.nearest_surface_voxel(v);
  const Vec3 q = img_->voxel_center(f);

  // Walk from p toward (and slightly past) the surface voxel center looking
  // for the label transition; q is a surface voxel so a transition exists
  // within one voxel of it in some direction — walking the ray overshoots by
  // a voxel diagonal to be safe.
  const Vec3 d = q - p;
  const double len = norm(d);
  const double overshoot = 2.0 * img_->min_spacing();
  const Label lp = label_at(p);
  if (len <= 1e-12) return refine_around_voxel(q);

  const Vec3 dir = d / len;
  Vec3 prev = p;
  Label lprev = lp;
  for (double t = step_; t <= len + overshoot; t += step_) {
    const Vec3 cur = p + t * dir;
    const Label lcur = label_at(cur);
    if (lcur != lprev) return bisect(prev, lprev, cur);
    prev = cur;
  }
  // No transition along the ray (the interface lies sideways of the surface
  // voxel, e.g. when p itself sits in the surface shell): refine around the
  // surface voxel center instead.
  return refine_around_voxel(q);
}

std::optional<Vec3> IsosurfaceOracle::segment_surface_intersection(
    const Vec3& a, const Vec3& b) const {
  const double len = distance(a, b);
  if (len <= 1e-12) return std::nullopt;
  const Vec3 dir = (b - a) / len;
  Vec3 prev = a;
  Label lprev = label_at(a);
  for (double t = step_; t < len; t += step_) {
    const Vec3 cur = a + t * dir;
    const Label lcur = label_at(cur);
    if (lcur != lprev) return bisect(prev, lprev, cur);
    prev = cur;
  }
  if (label_at(b) != lprev) return bisect(prev, lprev, b);
  return std::nullopt;
}

bool IsosurfaceOracle::ball_intersects_surface(const Vec3& c, double r) const {
  const auto q = closest_surface_point(c);
  if (!q) return false;
  return distance(c, *q) <= r;
}

}  // namespace pi2m
