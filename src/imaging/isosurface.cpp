#include "imaging/isosurface.hpp"

#include <algorithm>
#include <cmath>

namespace pi2m {

IsosurfaceOracle::IsosurfaceOracle(const LabeledImage3D& img, int threads)
    : img_(&img),
      ft_(FeatureTransform::compute(img, threads)),
      step_(0.45 * img.min_spacing()),
      voxel_diag_(norm(img.spacing())),
      inv_sp_{1.0 / img.spacing().x, 1.0 / img.spacing().y,
              1.0 / img.spacing().z} {}

Vec3 IsosurfaceOracle::bisect(Vec3 s, Label ls, Vec3 t) const {
  // 15 halvings of a sub-voxel bracket resolve the interface to ~3e-5
  // voxels, far below any geometric tolerance used by the refiner.
  for (int i = 0; i < 15; ++i) {
    const Vec3 m = 0.5 * (s + t);
    if (label_at(m) == ls) {
      s = m;
    } else {
      t = m;
    }
  }
  return 0.5 * (s + t);
}

Vec3 IsosurfaceOracle::refine_around_voxel(const Vec3& q) const {
  // q is (near) the center of a surface voxel: one of its 6 axis
  // neighbourhoods carries a different label. Bisect the closest such
  // bracket to land on the interface.
  const Label lq = label_at(q);
  const Vec3 sp = img_->spacing();
  const Vec3 probes[6] = {{sp.x, 0, 0},  {-sp.x, 0, 0}, {0, sp.y, 0},
                          {0, -sp.y, 0}, {0, 0, sp.z},  {0, 0, -sp.z}};
  for (const Vec3& pr : probes) {
    if (label_at(q + pr) != lq) return bisect(q, lq, q + pr);
  }
  return q;  // isolated voxel; its center is the best surface estimate
}

std::optional<Vec3> IsosurfaceOracle::first_transition_dda(
    const Vec3& a, const Vec3& b) const {
  // The nearest-neighbour label field is piecewise constant on the dual
  // grid: voxel (i,j,k) owns the box of half-spacing extent around its
  // center, so the field can only change value on the half-offset planes
  // x = org.x + (i±0.5)·sp.x (likewise y, z) and on the outer slab faces
  // (outside the slab everything is background). An Amanatides–Woo DDA
  // visits exactly the voxels the segment pierces — one integer label fetch
  // per crossed voxel, no world→index transform per sample — and the first
  // voxel whose label differs from the running label brackets the
  // transition, which the label-field bisection then refines exactly like
  // the reference sampling walk.
  const Vec3 dvec = b - a;
  const double len = norm(dvec);
  if (len <= 1e-12) return std::nullopt;
  const Vec3 dir = dvec / len;

  const LabeledImage3D& img = *img_;
  const Vec3 sp = img.spacing();
  const Vec3 org = img.origin();
  const int n[3] = {img.nx(), img.ny(), img.nz()};
  const double av[3] = {a.x, a.y, a.z};
  const double dv[3] = {dir.x, dir.y, dir.z};
  const double spv[3] = {sp.x, sp.y, sp.z};
  const double orgv[3] = {org.x, org.y, org.z};
  const double invv[3] = {inv_sp_.x, inv_sp_.y, inv_sp_.z};

  // Clip [0, len] against the label slab (voxel ownership boxes): outside
  // it the field is uniformly background.
  double t_in = 0.0, t_out = len;
  for (int ax = 0; ax < 3; ++ax) {
    const double lo = orgv[ax] - 0.5 * spv[ax];
    const double hi = orgv[ax] + (n[ax] - 0.5) * spv[ax];
    if (std::abs(dv[ax]) < 1e-300) {
      if (av[ax] < lo || av[ax] >= hi) return std::nullopt;  // all background
      continue;
    }
    double t0 = (lo - av[ax]) / dv[ax];
    double t1 = (hi - av[ax]) / dv[ax];
    if (t0 > t1) std::swap(t0, t1);
    t_in = std::max(t_in, t0);
    t_out = std::min(t_out, t1);
  }
  const Label l0 = label_at(a);
  if (t_in >= t_out) return std::nullopt;  // never enters the grid: all bg

  // DDA state at the entry point.
  const Vec3 pe = a + t_in * dir;
  const double pev[3] = {pe.x, pe.y, pe.z};
  int c[3];
  int step[3];
  double t_max[3], t_delta[3];
  for (int ax = 0; ax < 3; ++ax) {
    const double f = (pev[ax] - orgv[ax]) * invv[ax] + 0.5;
    c[ax] = std::clamp(static_cast<int>(std::floor(f)), 0, n[ax] - 1);
    if (dv[ax] > 1e-300) {
      step[ax] = 1;
      t_delta[ax] = spv[ax] / dv[ax];
      t_max[ax] = (orgv[ax] + (c[ax] + 0.5) * spv[ax] - av[ax]) / dv[ax];
    } else if (dv[ax] < -1e-300) {
      step[ax] = -1;
      t_delta[ax] = -spv[ax] / dv[ax];
      t_max[ax] = (orgv[ax] + (c[ax] - 0.5) * spv[ax] - av[ax]) / dv[ax];
    } else {
      step[ax] = 0;
      t_delta[ax] = t_max[ax] = 1e300;
    }
  }
  const double t_end = std::min(t_out, len);
  const Label* data = img.raw().data();
  const std::ptrdiff_t stride[3] = {
      1, n[0], static_cast<std::ptrdiff_t>(n[0]) * n[1]};
  std::ptrdiff_t idx = c[2] * stride[2] + c[1] * stride[1] + c[0];

  Label lprev = l0;
  Vec3 prev = a;  // last point known to carry label lprev
  double t_enter = t_in;
  while (true) {
    const double t_exit =
        std::min(std::min(t_max[0], t_max[1]), std::min(t_max[2], t_end));
    const Label lcur = data[idx];
    if (lcur != lprev) {
      // The field is piecewise constant on the ownership boxes, so the
      // transition sits EXACTLY on the plane the ray just crossed at
      // t_enter (for the first span: the slab entry, where the clipped-away
      // part is uniformly background). No bisection needed — the reference
      // walk's bisect converges to this same plane point.
      return a + t_enter * dir;
    }
    prev = a + (0.5 * (t_enter + t_exit)) * dir;
    if (t_exit >= t_end) break;
    const int ax = (t_max[0] <= t_max[1]) ? (t_max[0] <= t_max[2] ? 0 : 2)
                                          : (t_max[1] <= t_max[2] ? 1 : 2);
    c[ax] += step[ax];
    if (c[ax] < 0 || c[ax] >= n[ax]) break;  // numeric-edge exit guard
    idx += step[ax] * stride[ax];
    t_enter = t_exit;
    t_max[ax] += t_delta[ax];
  }

  // Tail: the segment leaves the slab into (uniform) background before
  // reaching b — the transition is exactly the slab exit plane.
  if (t_end < len && lprev != 0) return a + t_end * dir;
  // Endpoint: b lies inside the last visited voxel except for exact-boundary
  // rounding cases; mirror the reference walk's final label_at(b) check.
  if (label_at(b) != lprev) return bisect(prev, lprev, b);
  return std::nullopt;
}

std::optional<Vec3> IsosurfaceOracle::closest_surface_point(
    const Vec3& p) const {
  if (!ft_.has_surface()) return std::nullopt;
  const Voxel v = img_->nearest_voxel(p);
  const Voxel f = ft_.nearest_surface_voxel(v);
  const Vec3 q = img_->voxel_center(f);

  // Walk from p toward (and slightly past) the surface voxel center looking
  // for the label transition; q is a surface voxel so a transition exists
  // within one voxel of it in some direction — walking the ray overshoots by
  // a voxel diagonal to be safe.
  const Vec3 d = q - p;
  const double len = norm(d);
  const double overshoot = 2.0 * img_->min_spacing();
  if (len <= 1e-12) return refine_around_voxel(q);

  if (use_dda_) {
    // Candidate 1: exact projection of p onto the interface faces of the
    // surface voxel's ownership box (the faces shared with a neighbour of
    // differing label — ∂O locally IS those faces on the dual grid). This
    // dominates the reference walk's refine_around_voxel fallback, which
    // bisects to the *center* of one such face.
    double best2 = 1e300;
    Vec3 best{};
    bool have_face = false;
    {
      const LabeledImage3D& img = *img_;
      const Vec3 sp = img.spacing();
      const int n[3] = {img.nx(), img.ny(), img.nz()};
      const int fc[3] = {f.x, f.y, f.z};
      const double qv[3] = {q.x, q.y, q.z};
      const double pv[3] = {p.x, p.y, p.z};
      const double spv[3] = {sp.x, sp.y, sp.z};
      const Label* data = img.raw().data();
      const std::ptrdiff_t stride[3] = {
          1, n[0], static_cast<std::ptrdiff_t>(n[0]) * n[1]};
      const std::ptrdiff_t fidx =
          fc[2] * stride[2] + fc[1] * stride[1] + fc[0];
      const Label lq = data[fidx];
      // The box-clamped coordinates are shared by every candidate whose
      // face is on another axis: hoist them (and their squared offsets)
      // once, then evaluate all six face candidates as a flat
      // distance/comparison sweep — only the label gate stays per
      // candidate. Per-candidate term order matches the historical
      // accumulation loop, so the selected candidate is unchanged.
      double cl[3], e2[3];
      for (int oax = 0; oax < 3; ++oax) {
        cl[oax] = std::clamp(pv[oax], qv[oax] - 0.5 * spv[oax],
                             qv[oax] + 0.5 * spv[oax]);
        const double dd = cl[oax] - pv[oax];
        e2[oax] = dd * dd;
      }
      for (int cand6 = 0; cand6 < 6; ++cand6) {
        const int ax = cand6 >> 1;
        const int s = (cand6 & 1) ? 1 : -1;
        const int nc = fc[ax] + s;
        const Label ln = (nc < 0 || nc >= n[ax])
                             ? Label{0}  // outside the slab: background
                             : data[fidx + s * stride[ax]];
        if (ln == lq) continue;
        const double face = qv[ax] + 0.5 * s * spv[ax];  // the face plane
        const double fd = face - pv[ax];
        const double fterm = fd * fd;
        const double d2 = (ax == 0 ? fterm : e2[0]) +
                          (ax == 1 ? fterm : e2[1]) +
                          (ax == 2 ? fterm : e2[2]);
        if (d2 < best2) {
          best2 = d2;
          best = {ax == 0 ? face : cl[0], ax == 1 ? face : cl[1],
                  ax == 2 ? face : cl[2]};
          have_face = true;
        }
      }
    }
    // Candidate 2: the first ∂O crossing of the ray toward (and past) q —
    // in thin-sliver geometry it can undercut every face of q's box.
    const Vec3 end = p + ((len + overshoot) / len) * d;
    if (auto hit = first_transition_dda(p, end)) {
      if (!have_face || distance2(p, *hit) < best2) return hit;
    }
    if (have_face) return best;
    // Isolated surface voxel with no differing axis neighbour and no ray
    // transition: its center is the best available estimate (matches
    // refine_around_voxel's fallback).
    return q;
  }
  return closest_surface_point_reference(p);
}

std::optional<Vec3> IsosurfaceOracle::closest_surface_point_reference(
    const Vec3& p) const {
  if (!ft_.has_surface()) return std::nullopt;
  const Voxel v = img_->nearest_voxel(p);
  const Voxel f = ft_.nearest_surface_voxel(v);
  const Vec3 q = img_->voxel_center(f);

  const Vec3 d = q - p;
  const double len = norm(d);
  const double overshoot = 2.0 * img_->min_spacing();
  const Label lp = label_at(p);
  if (len <= 1e-12) return refine_around_voxel(q);

  const Vec3 dir = d / len;
  Vec3 prev = p;
  Label lprev = lp;
  // t = i·step keeps long walks on the exact sample lattice; the previous
  // t += step accumulation drifted by one ulp per step, which over hundreds
  // of samples shifted brackets relative to the fixed-lattice semantics.
  for (std::size_t i = 1;; ++i) {
    const double t = static_cast<double>(i) * step_;
    if (t > len + overshoot) break;
    const Vec3 cur = p + t * dir;
    const Label lcur = label_at(cur);
    if (lcur != lprev) return bisect(prev, lprev, cur);
    prev = cur;
  }
  // No transition along the ray (the interface lies sideways of the surface
  // voxel, e.g. when p itself sits in the surface shell): refine around the
  // surface voxel center instead.
  return refine_around_voxel(q);
}

std::optional<Vec3> IsosurfaceOracle::segment_surface_intersection(
    const Vec3& a, const Vec3& b) const {
  if (use_dda_) return first_transition_dda(a, b);
  return segment_surface_intersection_reference(a, b);
}

std::optional<Vec3> IsosurfaceOracle::segment_surface_intersection_reference(
    const Vec3& a, const Vec3& b) const {
  const double len = distance(a, b);
  if (len <= 1e-12) return std::nullopt;
  const Vec3 dir = (b - a) / len;
  Vec3 prev = a;
  Label lprev = label_at(a);
  for (std::size_t i = 1;; ++i) {
    const double t = static_cast<double>(i) * step_;  // exact sample lattice
    if (t >= len) break;
    const Vec3 cur = a + t * dir;
    const Label lcur = label_at(cur);
    if (lcur != lprev) return bisect(prev, lprev, cur);
    prev = cur;
  }
  if (label_at(b) != lprev) return bisect(prev, lprev, b);
  return std::nullopt;
}

bool IsosurfaceOracle::ball_intersects_surface(const Vec3& c, double r) const {
  const auto q = closest_surface_point(c);
  if (!q) return false;
  return distance(c, *q) <= r;
}

}  // namespace pi2m
