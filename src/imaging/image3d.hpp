// Multi-label segmented 3D image: the input format of PI2M (paper §2-3).
// Label 0 is background; every non-zero label is a tissue.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/vec3.hpp"
#include "support/common.hpp"

namespace pi2m {

using Label = std::uint8_t;

/// Integer voxel coordinate.
struct Voxel {
  int x = 0, y = 0, z = 0;
  friend bool operator==(const Voxel&, const Voxel&) = default;
};

class LabeledImage3D {
 public:
  LabeledImage3D() = default;
  /// An image of `nx*ny*nz` voxels with physical voxel spacing (mm) and
  /// world-space origin at the center of voxel (0,0,0).
  LabeledImage3D(int nx, int ny, int nz, Vec3 spacing = {1, 1, 1},
                 Vec3 origin = {0, 0, 0});

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t voxel_count() const { return data_.size(); }
  [[nodiscard]] const Vec3& spacing() const { return spacing_; }
  [[nodiscard]] const Vec3& origin() const { return origin_; }
  [[nodiscard]] double min_spacing() const {
    return std::min({spacing_.x, spacing_.y, spacing_.z});
  }

  [[nodiscard]] bool in_bounds(const Voxel& v) const {
    return v.x >= 0 && v.x < nx_ && v.y >= 0 && v.y < ny_ && v.z >= 0 &&
           v.z < nz_;
  }

  [[nodiscard]] std::size_t index(const Voxel& v) const {
    return static_cast<std::size_t>(v.z) * nx_ * ny_ +
           static_cast<std::size_t>(v.y) * nx_ + v.x;
  }

  /// Label at a voxel; out-of-bounds voxels are background.
  [[nodiscard]] Label at(const Voxel& v) const {
    return in_bounds(v) ? data_[index(v)] : Label{0};
  }
  Label& at(const Voxel& v) {
    PI2M_CHECK(in_bounds(v), "voxel write out of bounds");
    return data_[index(v)];
  }

  /// World-space center of a voxel.
  [[nodiscard]] Vec3 voxel_center(const Voxel& v) const {
    return {origin_.x + v.x * spacing_.x, origin_.y + v.y * spacing_.y,
            origin_.z + v.z * spacing_.z};
  }

  /// The voxel whose center is nearest to a world point (clamped to bounds).
  [[nodiscard]] Voxel nearest_voxel(const Vec3& p) const;

  /// Nearest-neighbour label lookup at a world point; points outside the
  /// image volume are background. Hot path: called millions of times per
  /// second by the oracle's ray walks, so it avoids any redundant work.
  [[nodiscard]] Label label_at(const Vec3& p) const {
    const double fx = (p.x - origin_.x) * inv_spacing_.x;
    const double fy = (p.y - origin_.y) * inv_spacing_.y;
    const double fz = (p.z - origin_.z) * inv_spacing_.z;
    // Round-half-away-from-zero like lround; out-of-volume -> background.
    const int ix = static_cast<int>(fx + (fx >= 0 ? 0.5 : -0.5));
    const int iy = static_cast<int>(fy + (fy >= 0 ? 0.5 : -0.5));
    const int iz = static_cast<int>(fz + (fz >= 0 ? 0.5 : -0.5));
    if (static_cast<unsigned>(ix) >= static_cast<unsigned>(nx_) ||
        static_cast<unsigned>(iy) >= static_cast<unsigned>(ny_) ||
        static_cast<unsigned>(iz) >= static_cast<unsigned>(nz_)) {
      return 0;
    }
    return data_[static_cast<std::size_t>(iz) * nx_ * ny_ +
                 static_cast<std::size_t>(iy) * nx_ + ix];
  }

  /// World-space bounding box of the voxel grid (voxel centers, inflated by
  /// half a voxel so the full sampled volume is covered). Precomputed.
  [[nodiscard]] const Aabb& bounds() const { return bounds_; }

  /// A voxel is a *surface voxel* when it is foreground (label != 0) and at
  /// least one of its 6 neighbours carries a different label (paper §3);
  /// image-border foreground voxels count (the outside is background).
  [[nodiscard]] bool is_surface_voxel(const Voxel& v) const;

  [[nodiscard]] const std::vector<Label>& raw() const { return data_; }
  std::vector<Label>& raw() { return data_; }

  /// Distinct non-zero labels present in the image.
  [[nodiscard]] std::vector<Label> labels_present() const;

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  Vec3 spacing_{1, 1, 1};
  Vec3 inv_spacing_{1, 1, 1};
  Vec3 origin_{0, 0, 0};
  Aabb bounds_;
  std::vector<Label> data_;
};

}  // namespace pi2m
