// Procedural multi-label phantoms.
//
// The paper evaluates on segmented medical atlases (IRCAD abdominal CT, SPL
// knee MR, SPL head-neck CT) that are not redistributable here. These
// generators produce multi-label segmented images with the same structural
// challenges — curved outer isosurfaces, nested tissue interfaces, thin
// layers, multiple disjoint components — so every code path (multi-material
// surface recovery, R1-R6, removals) is exercised. See DESIGN.md
// "Substitutions".
#pragma once

#include <functional>

#include "imaging/image3d.hpp"

namespace pi2m::phantom {

/// Samples an implicit labeling function onto a voxel grid. The function
/// receives world coordinates of each voxel center.
LabeledImage3D from_function(int nx, int ny, int nz, Vec3 spacing,
                             const std::function<Label(const Vec3&)>& f);

/// Single-label ball centered in the volume, radius = `radius_frac` of the
/// half-extent. The simplest smooth 2-manifold; used by quickstart & tests.
LabeledImage3D ball(int n, double radius_frac = 0.7);

/// Two-label concentric shells (sphere inside a thicker sphere): smallest
/// input with an internal material interface.
LabeledImage3D concentric_shells(int n);

/// Volume-dominated family: a solid anisotropic ellipsoid (label 1) filling
/// most of the volume. The vast majority of elements are deep interior —
/// the stress case for the hybrid BCC interior fill and its benchmark
/// input (--interior=lattice vs delaunay).
LabeledImage3D ellipsoid(int n);

/// Volume-dominated two-material variant: a large ball whose thick outer
/// shell (label 2) wraps a solid core (label 1). Both regions have deep
/// interiors, so the lattice fill must keep the internal interface
/// unstructured while filling two material bulks.
LabeledImage3D thick_shell(int n);

/// "Abdominal"-style phantom: a large ellipsoidal body (label 1) containing
/// an off-center liver-like ellipsoid (2), two kidney-like ellipsoids (3),
/// and a spine-like cylinder (4). Mirrors the multi-organ structure of the
/// IRCAD abdominal atlas used for Tables 1 & 4a and Figures 5-6.
LabeledImage3D abdominal(int nx, int ny, int nz,
                         Vec3 spacing = {1.0, 1.0, 1.0});

/// "Knee"-style phantom: two long bone-like capsules (femur/tibia, labels
/// 1, 2) meeting at an articulated joint with a thin cartilage layer (3)
/// and a surrounding soft-tissue sleeve (4). Mirrors the SPL knee atlas
/// (Table 4b, Table 6).
LabeledImage3D knee(int nx, int ny, int nz, Vec3 spacing = {1.0, 1.0, 1.0});

/// "Head-neck"-style phantom: cranial sphere (1) with two internal lobes
/// (2, 3), an airway-like tube void, and a neck cylinder (4). Mirrors the
/// SPL head-neck atlas (Table 6).
LabeledImage3D head_neck(int nx, int ny, int nz, Vec3 spacing = {1.0, 1.0, 1.0});

/// Random blobby multi-label image (union of random ellipsoids), for
/// property tests: seedable, always has at least one foreground voxel.
LabeledImage3D random_blobs(int n, unsigned seed, int num_blobs = 4,
                            int num_labels = 3);

/// "Vascular" phantom: a branching tree of thin tubes (vessel wall label 2
/// around a lumen label 1) inside a tissue block (3). Exercises the thin,
/// curved, high-curvature structures of the paper's blood-flow-simulation
/// motivation (§1) — the hardest case for isosurface recovery.
LabeledImage3D vessels(int n, int levels = 3);

}  // namespace pi2m::phantom
