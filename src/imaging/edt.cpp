#include "imaging/edt.hpp"

#include <cmath>
#include <limits>

#include "support/common.hpp"
#include "support/parallel_for.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One lower-envelope (Felzenszwalb-Huttenlocher) pass along an axis with
/// physical sample positions q[i] = i * spacing. For each output index i it
/// returns the argmin_j of cost[j] + (q[i]-q[j])^2, considering only finite
/// costs. Returns -1 where no finite parabola exists.
void lower_envelope_argmin(const std::vector<double>& cost, double spacing,
                           std::vector<int>& argmin,
                           std::vector<int>& v_buf, std::vector<double>& z_buf) {
  const int n = static_cast<int>(cost.size());
  argmin.assign(static_cast<std::size_t>(n), -1);
  v_buf.clear();
  z_buf.clear();

  auto q = [&](int i) { return i * spacing; };
  // Intersection abscissa of parabolas rooted at i and j (i > j).
  auto intersect = [&](int i, int j) {
    return ((cost[i] + q(i) * q(i)) - (cost[j] + q(j) * q(j))) /
           (2.0 * q(i) - 2.0 * q(j));
  };

  for (int i = 0; i < n; ++i) {
    if (cost[static_cast<std::size_t>(i)] == kInf) continue;
    if (v_buf.empty()) {
      v_buf.push_back(i);
      z_buf.push_back(-kInf);
      continue;
    }
    double s = intersect(i, v_buf.back());
    while (!v_buf.empty() && s <= z_buf.back()) {
      v_buf.pop_back();
      z_buf.pop_back();
      if (!v_buf.empty()) s = intersect(i, v_buf.back());
    }
    v_buf.push_back(i);
    z_buf.push_back(v_buf.size() == 1 ? -kInf : s);
  }
  if (v_buf.empty()) return;

  std::size_t k = 0;
  for (int i = 0; i < n; ++i) {
    const double x = q(i);
    while (k + 1 < v_buf.size() && z_buf[k + 1] < x) ++k;
    argmin[static_cast<std::size_t>(i)] = v_buf[k];
  }
}

}  // namespace

FeatureTransform FeatureTransform::compute(const LabeledImage3D& img,
                                           int threads) {
  FeatureTransform ft;
  ft.img_ = &img;
  ft.nx_ = img.nx();
  ft.ny_ = img.ny();
  ft.nz_ = img.nz();
  PI2M_CHECK(ft.nx_ < 32768 && ft.ny_ < 32768 && ft.nz_ < 32768,
             "image dimension exceeds feature-transform index range");
  const std::size_t total = img.voxel_count();
  ft.fx_.assign(total, -1);
  ft.fy_.assign(total, -1);
  ft.fz_.assign(total, -1);

  const int nx = ft.nx_, ny = ft.ny_, nz = ft.nz_;
  const Vec3 sp = img.spacing();
  auto idx = [nx, ny](int x, int y, int z) {
    return static_cast<std::size_t>(z) * nx * ny +
           static_cast<std::size_t>(y) * nx + x;
  };

  // Pass 1 (x axis): per (y,z) row, nearest surface voxel along the row.
  // Two linear scans suffice in 1D.
  telemetry::Span pass_x("edt.pass_x", "edt");
  parallel_blocks(static_cast<std::size_t>(ny) * nz, threads,
                  [&](std::size_t b, std::size_t e) {
    for (std::size_t row = b; row < e; ++row) {
      const int y = static_cast<int>(row % ny);
      const int z = static_cast<int>(row / ny);
      int last = -1;
      for (int x = 0; x < nx; ++x) {
        if (img.is_surface_voxel({x, y, z})) last = x;
        ft.fx_[idx(x, y, z)] = static_cast<std::int16_t>(last);
      }
      last = -1;
      for (int x = nx - 1; x >= 0; --x) {
        const std::int16_t fwd = ft.fx_[idx(x, y, z)];
        if (img.is_surface_voxel({x, y, z})) last = x;
        if (last >= 0 &&
            (fwd < 0 || (last - x) < (x - fwd))) {
          ft.fx_[idx(x, y, z)] = static_cast<std::int16_t>(last);
        }
      }
    }
  });

  // Pass 2 (y axis): combine row results across y with a lower envelope,
  // tracking the winning (fx, y') pair.
  pass_x.close();
  telemetry::Span pass_y("edt.pass_y", "edt");
  parallel_blocks(static_cast<std::size_t>(nx) * nz, threads,
                  [&](std::size_t b, std::size_t e) {
    std::vector<double> cost(static_cast<std::size_t>(ny));
    std::vector<int> argmin, v_buf;
    std::vector<double> z_buf;
    std::vector<std::int16_t> fx_new(static_cast<std::size_t>(ny));
    for (std::size_t col = b; col < e; ++col) {
      const int x = static_cast<int>(col % nx);
      const int z = static_cast<int>(col / nx);
      for (int y = 0; y < ny; ++y) {
        const std::int16_t fx = ft.fx_[idx(x, y, z)];
        const double dx = fx >= 0 ? (x - fx) * sp.x : 0.0;
        cost[static_cast<std::size_t>(y)] = fx >= 0 ? dx * dx : kInf;
      }
      lower_envelope_argmin(cost, sp.y, argmin, v_buf, z_buf);
      for (int y = 0; y < ny; ++y) {
        const int w = argmin[static_cast<std::size_t>(y)];
        if (w >= 0) {
          fx_new[static_cast<std::size_t>(y)] = ft.fx_[idx(x, w, z)];
          ft.fy_[idx(x, y, z)] = static_cast<std::int16_t>(w);
        } else {
          fx_new[static_cast<std::size_t>(y)] = -1;
        }
      }
      for (int y = 0; y < ny; ++y) {
        ft.fx_[idx(x, y, z)] = fx_new[static_cast<std::size_t>(y)];
      }
    }
  });

  // Pass 3 (z axis): combine across z; winners carry full (fx, fy, z').
  pass_y.close();
  telemetry::Span pass_z("edt.pass_z", "edt");
  parallel_blocks(static_cast<std::size_t>(nx) * ny, threads,
                  [&](std::size_t b, std::size_t e) {
    std::vector<double> cost(static_cast<std::size_t>(nz));
    std::vector<int> argmin, v_buf;
    std::vector<double> z_buf;
    std::vector<std::int16_t> fx_new(static_cast<std::size_t>(nz));
    std::vector<std::int16_t> fy_new(static_cast<std::size_t>(nz));
    for (std::size_t col = b; col < e; ++col) {
      const int x = static_cast<int>(col % nx);
      const int y = static_cast<int>(col / nx);
      for (int z = 0; z < nz; ++z) {
        const std::int16_t fx = ft.fx_[idx(x, y, z)];
        const std::int16_t fy = ft.fy_[idx(x, y, z)];
        if (fx >= 0 && fy >= 0) {
          const double dx = (x - fx) * sp.x;
          const double dy = (y - fy) * sp.y;
          cost[static_cast<std::size_t>(z)] = dx * dx + dy * dy;
        } else {
          cost[static_cast<std::size_t>(z)] = kInf;
        }
      }
      lower_envelope_argmin(cost, sp.z, argmin, v_buf, z_buf);
      for (int z = 0; z < nz; ++z) {
        const int w = argmin[static_cast<std::size_t>(z)];
        if (w >= 0) {
          fx_new[static_cast<std::size_t>(z)] = ft.fx_[idx(x, y, w)];
          fy_new[static_cast<std::size_t>(z)] = ft.fy_[idx(x, y, w)];
          ft.fz_[idx(x, y, z)] = static_cast<std::int16_t>(w);
        } else {
          fx_new[static_cast<std::size_t>(z)] = -1;
          fy_new[static_cast<std::size_t>(z)] = -1;
        }
      }
      for (int z = 0; z < nz; ++z) {
        ft.fx_[idx(x, y, z)] = fx_new[static_cast<std::size_t>(z)];
        ft.fy_[idx(x, y, z)] = fy_new[static_cast<std::size_t>(z)];
      }
    }
  });

  for (std::size_t i = 0; i < total; ++i) {
    if (ft.fx_[i] >= 0) {
      ft.has_surface_ = true;
      break;
    }
  }
  return ft;
}

Voxel FeatureTransform::nearest_surface_voxel(const Voxel& v) const {
  PI2M_CHECK(img_ != nullptr && img_->in_bounds(v),
             "feature lookup out of bounds");
  const std::size_t i = img_->index(v);
  return {fx_[i], fy_[i], fz_[i]};
}

double FeatureTransform::surface_distance_estimate(const Vec3& p) const {
  const Voxel v = img_->nearest_voxel(p);
  const Voxel f = nearest_surface_voxel(v);
  if (f.x < 0) return std::numeric_limits<double>::infinity();
  return distance(p, img_->voxel_center(f));
}

}  // namespace pi2m
