#include "imaging/edt.hpp"

#include <cmath>
#include <limits>

#include "support/common.hpp"
#include "support/parallel_for.hpp"
#include "support/simd.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One lower-envelope (Felzenszwalb-Huttenlocher) pass along an axis with
/// physical sample positions q[i] = i * spacing. For each output index i it
/// returns the argmin_j of cost[j] + (q[i]-q[j])^2, considering only finite
/// costs. Returns -1 where no finite parabola exists.
void lower_envelope_argmin(const std::vector<double>& cost, double spacing,
                           std::vector<int>& argmin,
                           std::vector<int>& v_buf, std::vector<double>& z_buf) {
  const int n = static_cast<int>(cost.size());
  argmin.assign(static_cast<std::size_t>(n), -1);
  v_buf.clear();
  z_buf.clear();

  auto q = [&](int i) { return i * spacing; };
  // Intersection abscissa of parabolas rooted at i and j (i > j).
  auto intersect = [&](int i, int j) {
    return ((cost[i] + q(i) * q(i)) - (cost[j] + q(j) * q(j))) /
           (2.0 * q(i) - 2.0 * q(j));
  };

  for (int i = 0; i < n; ++i) {
    if (cost[static_cast<std::size_t>(i)] == kInf) continue;
    if (v_buf.empty()) {
      v_buf.push_back(i);
      z_buf.push_back(-kInf);
      continue;
    }
    double s = intersect(i, v_buf.back());
    while (!v_buf.empty() && s <= z_buf.back()) {
      v_buf.pop_back();
      z_buf.pop_back();
      if (!v_buf.empty()) s = intersect(i, v_buf.back());
    }
    v_buf.push_back(i);
    z_buf.push_back(v_buf.size() == 1 ? -kInf : s);
  }
  if (v_buf.empty()) return;

  std::size_t k = 0;
  for (int i = 0; i < n; ++i) {
    const double x = q(i);
    while (k + 1 < v_buf.size() && z_buf[k + 1] < x) ++k;
    argmin[static_cast<std::size_t>(i)] = v_buf[k];
  }
}

}  // namespace

FeatureTransform FeatureTransform::compute(const LabeledImage3D& img,
                                           int threads) {
  FeatureTransform ft;
  ft.img_ = &img;
  ft.nx_ = img.nx();
  ft.ny_ = img.ny();
  ft.nz_ = img.nz();
  PI2M_CHECK(ft.nx_ < 32768 && ft.ny_ < 32768 && ft.nz_ < 32768,
             "image dimension exceeds feature-transform index range");
  const std::size_t total = img.voxel_count();
  ft.fx_.assign(total, -1);
  ft.fy_.assign(total, -1);
  ft.fz_.assign(total, -1);

  const int nx = ft.nx_, ny = ft.ny_, nz = ft.nz_;
  const Vec3 sp = img.spacing();
  auto idx = [nx, ny](int x, int y, int z) {
    return static_cast<std::size_t>(z) * nx * ny +
           static_cast<std::size_t>(y) * nx + x;
  };

  // Pass 1 (x axis): per (y,z) row, nearest surface voxel along the row.
  // Two linear scans suffice in 1D.
  telemetry::Span pass_x("edt.pass_x", "edt");
  parallel_blocks(static_cast<std::size_t>(ny) * nz, threads,
                  [&](std::size_t b, std::size_t e) {
    for (std::size_t row = b; row < e; ++row) {
      const int y = static_cast<int>(row % ny);
      const int z = static_cast<int>(row / ny);
      int last = -1;
      for (int x = 0; x < nx; ++x) {
        if (img.is_surface_voxel({x, y, z})) last = x;
        ft.fx_[idx(x, y, z)] = static_cast<std::int16_t>(last);
      }
      last = -1;
      for (int x = nx - 1; x >= 0; --x) {
        const std::int16_t fwd = ft.fx_[idx(x, y, z)];
        if (img.is_surface_voxel({x, y, z})) last = x;
        if (last >= 0 &&
            (fwd < 0 || (last - x) < (x - fwd))) {
          ft.fx_[idx(x, y, z)] = static_cast<std::int16_t>(last);
        }
      }
    }
  });

  // Pass 2 (y axis): combine row results across y with a lower envelope,
  // tracking the winning (fx, y') pair.
  pass_x.close();
  telemetry::Span pass_y("edt.pass_y", "edt");
  parallel_blocks(static_cast<std::size_t>(nx) * nz, threads,
                  [&](std::size_t b, std::size_t e) {
    std::vector<double> cost(static_cast<std::size_t>(ny));
    std::vector<double> flane(static_cast<std::size_t>(ny));
    std::vector<int> argmin, v_buf;
    std::vector<double> z_buf;
    std::vector<std::int16_t> fx_new(static_cast<std::size_t>(ny));
    for (std::size_t col = b; col < e; ++col) {
      const int x = static_cast<int>(col % nx);
      const int z = static_cast<int>(col / nx);
      // The strided gather stays scalar; the distance arithmetic below runs
      // in fixed 4-lane blocks (vector compare + blend). Per-lane operation
      // order matches the historical scalar loop, so costs are bit-identical.
      for (int y = 0; y < ny; ++y) {
        flane[static_cast<std::size_t>(y)] =
            static_cast<double>(ft.fx_[idx(x, y, z)]);
      }
      const simd::DVec4 xd = simd::DVec4::splat(static_cast<double>(x));
      const simd::DVec4 spx = simd::DVec4::splat(sp.x);
      const simd::DVec4 inf = simd::DVec4::splat(kInf);
      int y = 0;
      for (; y + 4 <= ny; y += 4) {
        const simd::DVec4 f =
            simd::DVec4::load(&flane[static_cast<std::size_t>(y)]);
        const simd::DVec4 dx = (xd - f) * spx;
        simd::DVec4::select_nonneg(f, dx * dx, inf)
            .store(&cost[static_cast<std::size_t>(y)]);
      }
      for (; y < ny; ++y) {
        const double f = flane[static_cast<std::size_t>(y)];
        const double dx = (static_cast<double>(x) - f) * sp.x;
        cost[static_cast<std::size_t>(y)] = f >= 0.0 ? dx * dx : kInf;
      }
      lower_envelope_argmin(cost, sp.y, argmin, v_buf, z_buf);
      for (int y = 0; y < ny; ++y) {
        const int w = argmin[static_cast<std::size_t>(y)];
        if (w >= 0) {
          fx_new[static_cast<std::size_t>(y)] = ft.fx_[idx(x, w, z)];
          ft.fy_[idx(x, y, z)] = static_cast<std::int16_t>(w);
        } else {
          fx_new[static_cast<std::size_t>(y)] = -1;
        }
      }
      for (int y = 0; y < ny; ++y) {
        ft.fx_[idx(x, y, z)] = fx_new[static_cast<std::size_t>(y)];
      }
    }
  });

  // Pass 3 (z axis): combine across z; winners carry full (fx, fy, z').
  pass_y.close();
  telemetry::Span pass_z("edt.pass_z", "edt");
  parallel_blocks(static_cast<std::size_t>(nx) * ny, threads,
                  [&](std::size_t b, std::size_t e) {
    std::vector<double> cost(static_cast<std::size_t>(nz));
    std::vector<double> fxlane(static_cast<std::size_t>(nz));
    std::vector<double> fylane(static_cast<std::size_t>(nz));
    std::vector<int> argmin, v_buf;
    std::vector<double> z_buf;
    std::vector<std::int16_t> fx_new(static_cast<std::size_t>(nz));
    std::vector<std::int16_t> fy_new(static_cast<std::size_t>(nz));
    for (std::size_t col = b; col < e; ++col) {
      const int x = static_cast<int>(col % nx);
      const int y = static_cast<int>(col / nx);
      // Same scheme as pass 2: scalar strided gather, 4-lane vectorized
      // distance arithmetic with bit-identical per-lane operation order.
      for (int z = 0; z < nz; ++z) {
        fxlane[static_cast<std::size_t>(z)] =
            static_cast<double>(ft.fx_[idx(x, y, z)]);
        fylane[static_cast<std::size_t>(z)] =
            static_cast<double>(ft.fy_[idx(x, y, z)]);
      }
      const simd::DVec4 xd = simd::DVec4::splat(static_cast<double>(x));
      const simd::DVec4 yd = simd::DVec4::splat(static_cast<double>(y));
      const simd::DVec4 spx = simd::DVec4::splat(sp.x);
      const simd::DVec4 spy = simd::DVec4::splat(sp.y);
      const simd::DVec4 inf = simd::DVec4::splat(kInf);
      int z = 0;
      for (; z + 4 <= nz; z += 4) {
        const simd::DVec4 fx =
            simd::DVec4::load(&fxlane[static_cast<std::size_t>(z)]);
        const simd::DVec4 fy =
            simd::DVec4::load(&fylane[static_cast<std::size_t>(z)]);
        const simd::DVec4 dx = (xd - fx) * spx;
        const simd::DVec4 dy = (yd - fy) * spy;
        const simd::DVec4 d2 = dx * dx + dy * dy;
        simd::DVec4::select_nonneg(
            fx, simd::DVec4::select_nonneg(fy, d2, inf), inf)
            .store(&cost[static_cast<std::size_t>(z)]);
      }
      for (; z < nz; ++z) {
        const double fx = fxlane[static_cast<std::size_t>(z)];
        const double fy = fylane[static_cast<std::size_t>(z)];
        if (fx >= 0.0 && fy >= 0.0) {
          const double dx = (static_cast<double>(x) - fx) * sp.x;
          const double dy = (static_cast<double>(y) - fy) * sp.y;
          cost[static_cast<std::size_t>(z)] = dx * dx + dy * dy;
        } else {
          cost[static_cast<std::size_t>(z)] = kInf;
        }
      }
      lower_envelope_argmin(cost, sp.z, argmin, v_buf, z_buf);
      for (int z = 0; z < nz; ++z) {
        const int w = argmin[static_cast<std::size_t>(z)];
        if (w >= 0) {
          fx_new[static_cast<std::size_t>(z)] = ft.fx_[idx(x, y, w)];
          fy_new[static_cast<std::size_t>(z)] = ft.fy_[idx(x, y, w)];
          ft.fz_[idx(x, y, z)] = static_cast<std::int16_t>(w);
        } else {
          fx_new[static_cast<std::size_t>(z)] = -1;
          fy_new[static_cast<std::size_t>(z)] = -1;
        }
      }
      for (int z = 0; z < nz; ++z) {
        ft.fx_[idx(x, y, z)] = fx_new[static_cast<std::size_t>(z)];
        ft.fy_[idx(x, y, z)] = fy_new[static_cast<std::size_t>(z)];
      }
    }
  });

  for (std::size_t i = 0; i < total; ++i) {
    if (ft.fx_[i] >= 0) {
      ft.has_surface_ = true;
      break;
    }
  }
  return ft;
}

Voxel FeatureTransform::nearest_surface_voxel(const Voxel& v) const {
  PI2M_CHECK(img_ != nullptr && img_->in_bounds(v),
             "feature lookup out of bounds");
  const std::size_t i = img_->index(v);
  return {fx_[i], fy_[i], fz_[i]};
}

double FeatureTransform::surface_distance_estimate(const Vec3& p) const {
  const Voxel v = img_->nearest_voxel(p);
  const Voxel f = nearest_surface_voxel(v);
  if (f.x < 0) return std::numeric_limits<double>::infinity();
  return distance(p, img_->voxel_center(f));
}

}  // namespace pi2m
