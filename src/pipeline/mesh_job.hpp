// One meshing job, end to end: the shared pipeline behind the CLI and the
// serving daemon.
//
//   JobSpec spec;                     // input + knobs (value type)
//   spec.phantom = "ball"; spec.mesh.delta = 1.0;
//   MeshJob job(spec);
//   const JobArtifacts& art = job.run();   // image -> EDT -> refine ->
//                                          // extract -> smooth -> reports
//   telemetry::RunManifest man = job.build_manifest("pi2m_cli");
//
// Extracted from apps/pi2m_cli.cpp so the daemon cannot drift from the CLI:
// both construct a JobSpec and call run(). The serving layer adds hooks —
// a cancellation token checked at refinement-loop boundaries, a shared
// EdtCache so repeat images skip the feature transform, and warm recycled
// arenas — all of which are no-ops for the one-shot CLI path.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pi2m.hpp"
#include "core/smoothing.hpp"
#include "core/validate.hpp"
#include "imaging/edt_cache.hpp"
#include "metrics/hausdorff.hpp"
#include "metrics/quality.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/run_manifest.hpp"

namespace pi2m {

/// Everything one job needs, as a plain value (protocol-decodable).
struct JobSpec {
  // --- input: exactly one of the three ---
  std::string input_path;  ///< segmented MetaImage (.mha)
  std::string phantom;     ///< ball|shells|abdominal|knee|head_neck|vessels
  int phantom_size = 64;
  /// Pre-decoded volume (inline protocol submissions, tests). Shared so
  /// specs stay cheap to copy.
  std::shared_ptr<const LabeledImage3D> inline_image;

  // --- preprocessing ---
  int downsample = 1;  ///< majority-vote factor, 1 = off
  int crop_pad = -1;   ///< crop to foreground bbox + pad; <0 = off

  // --- meshing + post ---
  /// delta/rho/threads/cm/lb/scheduler knobs. MeshingOptions itself makes
  /// delta "required"; at the job-spec layer it defaults to the historical
  /// CLI/protocol default of 1.0 world unit.
  MeshingOptions mesh = [] {
    MeshingOptions o;
    o.delta = 1.0;
    return o;
  }();
  /// Human-readable topology description ("auto" or "CxS") mirrored into
  /// the manifest; the parsed form lives in mesh.topology/topology_auto.
  std::string topology_desc;
  /// Uniform volume sizing field (R5); >0 installs mesh.size_function.
  double uniform_size = 0.0;
  int smooth = 0;       ///< quality-guarded smoothing iterations
  bool want_report = false;      ///< quality + Hausdorff fidelity
  bool want_validation = false;  ///< structural mesh validation

  // --- outputs (written by run(); formats by extension) ---
  std::vector<std::string> outputs;  ///< .vtk|.off|.mesh|.stl|.p2m
};

struct JobArtifacts {
  bool ok = false;          ///< completed refinement + wrote every output
  bool cancelled = false;   ///< the cancel token fired mid-run
  std::string error;        ///< human-readable failure (when !ok)

  LabeledImage3D image;     ///< empty when an EdtCache entry is pinned
  const LabeledImage3D* image_view = nullptr;  ///< the image actually meshed

  TetMesh mesh;
  RefineOutcome outcome;
  bool edt_cache_hit = false;
  double queue_wait_sec = 0.0;  ///< filled by the serving layer
  double smooth_sec = 0.0;
  std::optional<SmoothingReport> smoothing;
  std::optional<QualityReport> quality;
  std::optional<HausdorffResult> hausdorff;
  std::optional<MeshValidation> validation;
  /// Unified snapshot of every metric the job produced (refine.*,
  /// predicates.*, mesh.*, quality.*, ...).
  telemetry::MetricsRegistry metrics;
};

/// Name translations shared by the CLI flags and the wire protocol.
std::optional<CmKind> parse_cm_name(const std::string& s);
std::optional<LbKind> parse_lb_name(const std::string& s);
const char* cm_name(CmKind k);
const char* lb_name(LbKind k);

class MeshJob {
 public:
  explicit MeshJob(JobSpec spec);

  /// Serving hooks; call before run().
  void set_cancel(const std::atomic<bool>* cancel) { cancel_ = cancel; }
  void set_edt_cache(EdtCache* cache) { edt_cache_ = cache; }
  /// Queue wait measured by the serving layer; lands in the manifest's
  /// phase timings ahead of edt/refine.
  void set_queue_wait(double seconds) { art_.queue_wait_sec = seconds; }

  /// Loads/synthesizes the input image and applies downsample/crop.
  /// Idempotent; run() calls it implicitly. Returns false on input errors
  /// (artifacts().error says why).
  bool prepare();

  /// The image the job will mesh; valid after a successful prepare().
  [[nodiscard]] const LabeledImage3D& image() const;

  /// Runs the full pipeline. The returned artifacts live as long as the
  /// job. Safe to call once.
  const JobArtifacts& run();

  [[nodiscard]] const JobArtifacts& artifacts() const { return art_; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }

  /// Builds the versioned run manifest for this job: config mirror of the
  /// spec, phase timings (edt/refine/smooth), and the metrics snapshot.
  [[nodiscard]] telemetry::RunManifest build_manifest(
      const std::string& tool) const;

 private:
  bool fail(std::string msg);

  JobSpec spec_;
  const std::atomic<bool>* cancel_ = nullptr;
  EdtCache* edt_cache_ = nullptr;
  std::shared_ptr<const EdtCache::Entry> pinned_;  ///< cache entry in use
  JobArtifacts art_;
  bool prepared_ = false;
  bool ran_ = false;
};

}  // namespace pi2m
