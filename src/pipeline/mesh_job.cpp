#include "pipeline/mesh_job.hpp"

#include <utility>

#include "core/sizing.hpp"
#include "imaging/phantom.hpp"
#include "runtime/stats.hpp"
#include "support/common.hpp"
#include "imaging/resample.hpp"
#include "io/image_io.hpp"
#include "io/mesh_serialize.hpp"
#include "io/writers.hpp"
#include "predicates/predicates.hpp"
#include "predicates/predicates_simd.hpp"
#include "telemetry/collectors.hpp"

namespace pi2m {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

PredicateCounters counters_delta(const PredicateCounters& a,
                                 const PredicateCounters& b) {
  // Per-job view of the process-global counters. Concurrent jobs interleave
  // their counts; the delta is exact for solo runs and approximate (but
  // still monotone and roughly proportional) under concurrency.
  PredicateCounters d;
  d.orient3d_calls = b.orient3d_calls - a.orient3d_calls;
  d.orient3d_adapt = b.orient3d_adapt - a.orient3d_adapt;
  d.orient3d_exact = b.orient3d_exact - a.orient3d_exact;
  d.insphere_calls = b.insphere_calls - a.insphere_calls;
  d.insphere_adapt = b.insphere_adapt - a.insphere_adapt;
  d.insphere_exact = b.insphere_exact - a.insphere_exact;
  return d;
}

SimdPredicateCounters simd_counters_delta(const SimdPredicateCounters& a,
                                          const SimdPredicateCounters& b) {
  SimdPredicateCounters d;
  d.orient3d_batches = b.orient3d_batches - a.orient3d_batches;
  d.orient3d_lanes = b.orient3d_lanes - a.orient3d_lanes;
  d.orient3d_fallback = b.orient3d_fallback - a.orient3d_fallback;
  d.insphere_batches = b.insphere_batches - a.insphere_batches;
  d.insphere_lanes = b.insphere_lanes - a.insphere_lanes;
  d.insphere_fallback = b.insphere_fallback - a.insphere_fallback;
  return d;
}

}  // namespace

std::optional<CmKind> parse_cm_name(const std::string& s) {
  if (s == "aggressive") return CmKind::Aggressive;
  if (s == "random") return CmKind::Random;
  if (s == "global") return CmKind::Global;
  if (s == "local") return CmKind::Local;
  return std::nullopt;
}

std::optional<LbKind> parse_lb_name(const std::string& s) {
  if (s == "rws") return LbKind::RWS;
  if (s == "hws") return LbKind::HWS;
  return std::nullopt;
}

const char* cm_name(CmKind k) {
  switch (k) {
    case CmKind::Aggressive: return "aggressive";
    case CmKind::Random: return "random";
    case CmKind::Global: return "global";
    case CmKind::Local: return "local";
  }
  return "?";
}

const char* lb_name(LbKind k) {
  switch (k) {
    case LbKind::RWS: return "rws";
    case LbKind::HWS: return "hws";
  }
  return "?";
}

MeshJob::MeshJob(JobSpec spec) : spec_(std::move(spec)) {}

bool MeshJob::fail(std::string msg) {
  art_.ok = false;
  art_.error = std::move(msg);
  return false;
}

const LabeledImage3D& MeshJob::image() const {
  PI2M_CHECK(art_.image_view != nullptr, "MeshJob::prepare() not run");
  return *art_.image_view;
}

bool MeshJob::prepare() {
  if (prepared_) return art_.error.empty();
  prepared_ = true;

  if (!spec_.input_path.empty()) {
    std::string error;
    auto loaded = io::read_mha(spec_.input_path, &error);
    if (!loaded) {
      return fail("failed to read " + spec_.input_path + ": " + error);
    }
    art_.image = std::move(*loaded);
  } else if (!spec_.phantom.empty()) {
    const std::string& p = spec_.phantom;
    const int n = spec_.phantom_size;
    if (n < 2 || n > 4096) {
      return fail("phantom size out of range: " + std::to_string(n));
    }
    if (p == "ball") {
      art_.image = phantom::ball(n);
    } else if (p == "shells") {
      art_.image = phantom::concentric_shells(n);
    } else if (p == "abdominal") {
      art_.image = phantom::abdominal(n, n, n);
    } else if (p == "knee") {
      art_.image = phantom::knee(n, n, n);
    } else if (p == "head_neck") {
      art_.image = phantom::head_neck(n, n, n);
    } else if (p == "vessels") {
      art_.image = phantom::vessels(n);
    } else if (p == "ellipsoid") {
      art_.image = phantom::ellipsoid(n);
    } else if (p == "thick_shell") {
      art_.image = phantom::thick_shell(n);
    } else {
      return fail("unknown phantom '" + p + "'");
    }
  } else if (spec_.inline_image != nullptr) {
    art_.image = *spec_.inline_image;
  } else {
    return fail("no input: need input_path, phantom, or inline_image");
  }

  if (spec_.downsample > 1) {
    art_.image = downsample(art_.image, spec_.downsample);
  }
  if (spec_.crop_pad >= 0) {
    Voxel lo, hi;
    foreground_bounds(art_.image, spec_.crop_pad, &lo, &hi);
    art_.image = crop(art_.image, lo, hi);
  }
  art_.image_view = &art_.image;

  if (spec_.uniform_size > 0 && !spec_.mesh.size_function) {
    spec_.mesh.size_function = sizing::uniform(spec_.uniform_size);
  }
  return true;
}

const JobArtifacts& MeshJob::run() {
  PI2M_CHECK(!ran_, "MeshJob::run() may only run once");
  ran_ = true;
  if (!prepare()) return art_;

  // --- EDT (cached or per-run) + refinement + extraction ---
  MeshingOptions opt = spec_.mesh;
  opt.cancel = cancel_;
  std::shared_ptr<const IsosurfaceOracle> warm;
  std::shared_ptr<const IsosurfaceOracle> own_oracle;
  if (edt_cache_ != nullptr && !opt.use_reference_walks) {
    // The cache owns a stable image copy; mesh against *that* copy so the
    // pinned oracle and the refined image are the same object.
    pinned_ = edt_cache_->acquire(*art_.image_view, std::max(1, opt.threads),
                                  &art_.edt_cache_hit);
    art_.image = LabeledImage3D{};  // drop the duplicate copy
    art_.image_view = &pinned_->image;
    warm = pinned_->oracle;
  }

  const PredicateCounters pred0 = predicate_counters();
  const SimdPredicateCounters spred0 = simd_predicate_counters();
  MeshingResult res = mesh_image(*art_.image_view, opt, warm);
  art_.outcome = res.outcome;
  art_.mesh = std::move(res.mesh);
  art_.cancelled = art_.outcome.cancelled;

  if (!art_.outcome.completed) {
    if (art_.cancelled) {
      fail("cancelled");
    } else {
      fail(std::string("meshing did not complete (") +
           (art_.outcome.livelocked ? "livelock" : "budget exhausted") + ")");
    }
  }

  // One oracle serves smoothing + fidelity; reuse the pinned one if any.
  std::shared_ptr<const IsosurfaceOracle> post_oracle = warm;
  const bool want_post =
      art_.outcome.completed && (spec_.smooth > 0 || spec_.want_report);
  if (want_post && post_oracle == nullptr) {
    own_oracle = std::make_shared<const IsosurfaceOracle>(
        *art_.image_view, std::max(1, opt.threads));
    post_oracle = own_oracle;
  }

  // --- optional smoothing ---
  if (art_.outcome.completed && spec_.smooth > 0) {
    SmoothingOptions sopt;
    sopt.iterations = spec_.smooth;
    sopt.threads = opt.threads;
    const double t0 = now_sec();
    art_.smoothing = smooth_mesh(art_.mesh, *post_oracle, sopt);
    art_.smooth_sec = now_sec() - t0;
  }

  // --- reports ---
  if (art_.outcome.completed && spec_.want_report) {
    art_.quality = evaluate_quality(art_.mesh);
    art_.hausdorff = hausdorff_distance(art_.mesh, *post_oracle, 2);
  }
  if (art_.outcome.completed && spec_.want_validation) {
    art_.validation = validate_mesh(art_.mesh);
  }

  // --- unified metrics snapshot ---
  telemetry::collect_outcome(art_.metrics, art_.outcome);
  telemetry::collect_predicates(
      art_.metrics, counters_delta(pred0, predicate_counters()));
  telemetry::collect_simd_predicates(
      art_.metrics,
      simd_counters_delta(spred0, simd_predicate_counters()));
  telemetry::collect_mesh(art_.metrics, art_.mesh);
  telemetry::collect_throughput(art_.metrics, art_.mesh,
                                art_.outcome.lattice_tets,
                                art_.outcome.wall_sec);
  if (art_.smoothing) telemetry::collect_smoothing(art_.metrics,
                                                   *art_.smoothing);
  if (art_.quality) telemetry::collect_quality(art_.metrics, *art_.quality);
  if (art_.hausdorff) {
    telemetry::collect_hausdorff(art_.metrics, *art_.hausdorff);
  }
  if (art_.validation) {
    telemetry::collect_validation(art_.metrics, *art_.validation);
  }

  if (!art_.outcome.completed) return art_;

  // --- outputs ---
  for (const std::string& out : spec_.outputs) {
    bool wrote;
    if (ends_with(out, ".vtk")) {
      wrote = io::write_vtk(art_.mesh, out);
    } else if (ends_with(out, ".off")) {
      wrote = io::write_off_surface(art_.mesh, out);
    } else if (ends_with(out, ".mesh")) {
      wrote = io::write_medit(art_.mesh, out);
    } else if (ends_with(out, ".stl")) {
      wrote = io::write_stl_surface(art_.mesh, out);
    } else if (ends_with(out, ".p2m")) {
      wrote = io::save_mesh(art_.mesh, out);
    } else {
      fail("unknown output format: " + out);
      return art_;
    }
    if (!wrote) {
      fail("failed to write " + out);
      return art_;
    }
  }

  art_.ok = true;
  return art_;
}

telemetry::RunManifest MeshJob::build_manifest(const std::string& tool) const {
  telemetry::RunManifest man;
  man.tool = tool;
  if (!spec_.input_path.empty()) {
    man.set_config("input", spec_.input_path);
  } else if (!spec_.phantom.empty()) {
    man.set_config("input", "phantom:" + spec_.phantom);
    man.set_config("size", spec_.phantom_size);
  } else {
    man.set_config("input", "inline");
  }
  if (spec_.downsample > 1) man.set_config("downsample", spec_.downsample);
  if (spec_.crop_pad >= 0) man.set_config("crop_foreground", spec_.crop_pad);
  man.set_config("delta", spec_.mesh.delta);
  man.set_config("interior", interior_name(spec_.mesh.interior));
  if (spec_.mesh.lattice_spacing > 0) {
    man.set_config("lattice_spacing", spec_.mesh.lattice_spacing);
  }
  man.set_config("rho", spec_.mesh.radius_edge_bound);
  man.set_config("facet_angle", spec_.mesh.min_planar_angle_deg);
  if (spec_.uniform_size > 0) {
    man.set_config("uniform_size", spec_.uniform_size);
  }
  man.set_config("threads", spec_.mesh.threads);
  man.set_config("cm", cm_name(spec_.mesh.contention_manager));
  man.set_config("lb", lb_name(spec_.mesh.load_balancer));
  man.set_config("scheduler",
                 spec_.mesh.mutex_scheduler ? "mutex" : "lockfree");
  if (!spec_.topology_desc.empty()) {
    man.set_config("topology", spec_.topology_desc);
  }
  if (spec_.mesh.pin) man.set_config("pin", true);
  man.set_config("smooth", spec_.smooth);
  man.set_config("edt_cache_hit", art_.edt_cache_hit ? "true" : "false");
  if (art_.queue_wait_sec > 0) {
    man.add_phase("queue_wait", art_.queue_wait_sec);
  }
  man.add_phase("edt", art_.outcome.edt_sec);
  if (art_.outcome.lattice_tets > 0) {
    man.add_phase("lattice_fill", art_.outcome.lattice_fill_sec);
    man.add_phase("lattice_seed", art_.outcome.lattice_seed_sec);
  }
  man.add_phase("refine", art_.outcome.wall_sec);
  if (spec_.smooth > 0) man.add_phase("smooth", art_.smooth_sec);
  man.metrics = art_.metrics;
  if (!art_.error.empty()) man.notes = art_.error;
  return man;
}

}  // namespace pi2m
