#include "lattice/lattice_fill.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "check/oplog.hpp"
#include "support/common.hpp"
#include "support/parallel_for.hpp"

namespace pi2m {

const char* interior_name(InteriorFill k) {
  switch (k) {
    case InteriorFill::Delaunay: return "delaunay";
    case InteriorFill::Lattice: return "lattice";
  }
  return "?";
}

std::optional<InteriorFill> parse_interior_name(const std::string& s) {
  if (s == "delaunay") return InteriorFill::Delaunay;
  if (s == "lattice") return InteriorFill::Lattice;
  return std::nullopt;
}

namespace lattice {

namespace {

/// Doubled-integer lattice point keys, 21 bits per axis (even coordinates =
/// cube corners, odd = cube centers). Key order is z-major scanline order,
/// so sorted seeding walks the mesh with good locality.
constexpr int kAxisBits = 21;
constexpr std::uint64_t kAxisMask = (std::uint64_t{1} << kAxisBits) - 1;

std::uint64_t pack_key(std::int64_t dx, std::int64_t dy, std::int64_t dz) {
  return (static_cast<std::uint64_t>(dz) << (2 * kAxisBits)) |
         (static_cast<std::uint64_t>(dy) << kAxisBits) |
         static_cast<std::uint64_t>(dx);
}

void unpack_key(std::uint64_t key, std::int64_t& dx, std::int64_t& dy,
                std::int64_t& dz) {
  dx = static_cast<std::int64_t>(key & kAxisMask);
  dy = static_cast<std::int64_t>((key >> kAxisBits) & kAxisMask);
  dz = static_cast<std::int64_t>((key >> (2 * kAxisBits)) & kAxisMask);
}

/// Occupancy clearance in cube-size units beyond the 2δ surface band:
/// (√3/2)a center-to-corner + √3·a guard-ring reach = (3√3/2)a ≈ 2.598a,
/// rounded up for fp slack. Every point of the guard zone G then sits at
/// true distance >= 2δ from ∂O, so surface sampling never collides with it.
constexpr double kBandCubes = 2.7;

/// Memory ceiling for the cube grid (label + erosion bytes per cube).
constexpr std::size_t kMaxCubes = std::size_t{1} << 24;

}  // namespace

Vec3 LatticeFill::cube_center(int i, int j, int k) const {
  return {origin_.x + (i + 0.5) * a_, origin_.y + (j + 0.5) * a_,
          origin_.z + (k + 0.5) * a_};
}

Vec3 LatticeFill::point_of(std::uint64_t key) const {
  std::int64_t dx, dy, dz;
  unpack_key(key, dx, dy, dz);
  const double h = 0.5 * a_;
  return {origin_.x + dx * h, origin_.y + dy * h, origin_.z + dz * h};
}

LatticeFill::LatticeFill(const IsosurfaceOracle& oracle, double delta,
                         double spacing, int threads) {
  PI2M_CHECK(delta > 0.0, "LatticeFill: delta must be positive");
  a_ = spacing > 0.0 ? spacing : 2.0 * delta;
  band_ = 2.0 * delta + kBandCubes * a_;

  const Aabb ib = oracle.image().bounds();
  origin_ = ib.lo;
  const Vec3 ext = ib.extent();
  auto dims_for = [&](double a) {
    std::array<std::int64_t, 3> d;
    d[0] = static_cast<std::int64_t>(std::floor(ext.x / a));
    d[1] = static_cast<std::int64_t>(std::floor(ext.y / a));
    d[2] = static_cast<std::int64_t>(std::floor(ext.z / a));
    return d;
  };
  auto d = dims_for(a_);
  while (d[0] > 0 && d[1] > 0 && d[2] > 0 &&
         (static_cast<std::size_t>(d[0]) * static_cast<std::size_t>(d[1]) *
                  static_cast<std::size_t>(d[2]) >
              kMaxCubes ||
          d[0] >= (1 << (kAxisBits - 1)) || d[1] >= (1 << (kAxisBits - 1)) ||
          d[2] >= (1 << (kAxisBits - 1)))) {
    a_ *= 2.0;
    band_ = 2.0 * delta + kBandCubes * a_;
    d = dims_for(a_);
  }
  ncx_ = static_cast<int>(std::max<std::int64_t>(0, d[0]));
  ncy_ = static_cast<int>(std::max<std::int64_t>(0, d[1]));
  ncz_ = static_cast<int>(std::max<std::int64_t>(0, d[2]));
  stats_.cube_size = a_;
  stats_.cubes_total = static_cast<std::size_t>(ncx_) *
                       static_cast<std::size_t>(ncy_) *
                       static_cast<std::size_t>(ncz_);
  if (stats_.cubes_total == 0) return;

  build_occupancy(oracle, threads);
  if (stats_.cubes_filled == 0) return;
  erode_deep(threads);
  collect_faces(threads);
  collect_seed_keys();
}

void LatticeFill::build_occupancy(const IsosurfaceOracle& oracle,
                                  int threads) {
  const std::size_t n = stats_.cubes_total;
  occ_.assign(n, Label{0});
  std::atomic<std::size_t> filled{0};
  parallel_blocks(n, threads, [&](std::size_t lo, std::size_t hi) {
    std::size_t local = 0;
    for (std::size_t ci = lo; ci < hi; ++ci) {
      const int i = static_cast<int>(ci % static_cast<std::size_t>(ncx_));
      const int j = static_cast<int>((ci / static_cast<std::size_t>(ncx_)) %
                                     static_cast<std::size_t>(ncy_));
      const int k = static_cast<int>(ci / (static_cast<std::size_t>(ncx_) *
                                           static_cast<std::size_t>(ncy_)));
      const Vec3 c = cube_center(i, j, k);
      // The EDT lower bound never overestimates, so `>= band_` certifies
      // the whole cube (and its guard ring) is deep inside one material:
      // the bound measures distance to ANY label change, internal
      // interfaces included, hence a deep cube is automatically uniform.
      if (oracle.surface_distance_lower_bound(c) < band_) continue;
      if (!oracle.inside(c)) continue;  // deep *outside* is also far from ∂O
      const Label lab = oracle.label_at(c);
      if (lab == 0) continue;
      occ_[ci] = lab;
      ++local;
    }
    filled.fetch_add(local, std::memory_order_relaxed);
  });
  stats_.cubes_filled = filled.load();
}

void LatticeFill::erode_deep(int threads) {
  // Chebyshev-radius-2 erosion of the occupancy bitmap, separable into
  // three radius-2 1D min passes; out-of-grid counts as unoccupied. A point
  // all of whose incident cubes survive erosion cannot belong to a
  // boundary disphenoid (those have an unoccupied cube within Chebyshev
  // distance 2 of both of their face's cubes) and needs no kernel seed.
  const std::size_t n = stats_.cubes_total;
  std::vector<std::uint8_t> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = occ_[i] != 0 ? 1 : 0;

  const std::ptrdiff_t stride[3] = {
      1, ncx_, static_cast<std::ptrdiff_t>(ncx_) * ncy_};
  const int extent[3] = {ncx_, ncy_, ncz_};
  auto pass = [&](const std::vector<std::uint8_t>& src,
                  std::vector<std::uint8_t>& dst, int axis) {
    parallel_blocks(n, threads, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t ci = lo; ci < hi; ++ci) {
        const int coord[3] = {
            static_cast<int>(ci % static_cast<std::size_t>(ncx_)),
            static_cast<int>((ci / static_cast<std::size_t>(ncx_)) %
                             static_cast<std::size_t>(ncy_)),
            static_cast<int>(ci / (static_cast<std::size_t>(ncx_) *
                                   static_cast<std::size_t>(ncy_)))};
        std::uint8_t m = 1;
        for (int o = -2; o <= 2; ++o) {
          const int c = coord[axis] + o;
          if (c < 0 || c >= extent[axis]) {
            m = 0;
            break;
          }
          if (!src[static_cast<std::size_t>(
                  static_cast<std::ptrdiff_t>(ci) + o * stride[axis])]) {
            m = 0;
            break;
          }
        }
        dst[ci] = m;
      }
    });
  };
  pass(a, b, 0);
  pass(b, a, 1);
  pass(a, b, 2);
  deep_ = std::move(b);
}

void LatticeFill::collect_faces(int threads) {
  const std::size_t n = stats_.cubes_total;
  // Mirror parallel_blocks' chunking so per-block buffers merge in a
  // deterministic order regardless of thread scheduling.
  const std::size_t t =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(1, threads)), n);
  const std::size_t chunk = (n + t - 1) / t;
  std::vector<std::vector<std::uint64_t>> parts(t);
  parallel_blocks(n, static_cast<int>(t), [&](std::size_t lo, std::size_t hi) {
    std::vector<std::uint64_t>& out = parts[lo / chunk];
    for (std::size_t ci = lo; ci < hi; ++ci) {
      const Label lab = occ_[ci];
      if (lab == 0) continue;
      const int i = static_cast<int>(ci % static_cast<std::size_t>(ncx_));
      const int j = static_cast<int>((ci / static_cast<std::size_t>(ncx_)) %
                                     static_cast<std::size_t>(ncy_));
      const int k = static_cast<int>(ci / (static_cast<std::size_t>(ncx_) *
                                           static_cast<std::size_t>(ncy_)));
      const std::size_t nb[3] = {
          i + 1 < ncx_ ? cube_index(i + 1, j, k) : std::size_t(-1),
          j + 1 < ncy_ ? cube_index(i, j + 1, k) : std::size_t(-1),
          k + 1 < ncz_ ? cube_index(i, j, k + 1) : std::size_t(-1)};
      for (int axis = 0; axis < 3; ++axis) {
        if (nb[axis] == std::size_t(-1) || occ_[nb[axis]] != lab) continue;
        out.push_back((static_cast<std::uint64_t>(ci) << 2) |
                      static_cast<std::uint64_t>(axis));
      }
    }
  });
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  faces_.reserve(total);
  for (const auto& p : parts) {
    faces_.insert(faces_.end(), p.begin(), p.end());
  }
  stats_.faces = faces_.size();
  stats_.tets = 4 * faces_.size();
}

void LatticeFill::collect_seed_keys() {
  // A disphenoid with a face on ∂L belongs to an instantiated face whose
  // two cubes both fail the radius-2 erosion (the missing neighbour tet
  // lives one cube over). Seeding all 6 lattice points of every such face
  // therefore covers every boundary disphenoid vertex; the over-seeding of
  // nearby interior points is harmless (they are BCC points too).
  for (const std::uint64_t f : faces_) {
    const std::size_t ci = static_cast<std::size_t>(f >> 2);
    const int axis = static_cast<int>(f & 3);
    const std::size_t plane = static_cast<std::size_t>(ncx_) *
                              static_cast<std::size_t>(ncy_);
    const int i = static_cast<int>(ci % static_cast<std::size_t>(ncx_));
    const int j = static_cast<int>((ci / static_cast<std::size_t>(ncx_)) %
                                   static_cast<std::size_t>(ncy_));
    const int k = static_cast<int>(ci / plane);
    const std::ptrdiff_t stride[3] = {1, ncx_,
                                      static_cast<std::ptrdiff_t>(plane)};
    const std::size_t cj = ci + static_cast<std::size_t>(stride[axis]);
    if (deep_[ci] && deep_[cj]) continue;

    std::int64_t c1[3] = {i, j, k};
    std::int64_t c2[3] = {i, j, k};
    ++c2[axis];
    seed_keys_.push_back(
        pack_key(2 * c1[0] + 1, 2 * c1[1] + 1, 2 * c1[2] + 1));
    seed_keys_.push_back(
        pack_key(2 * c2[0] + 1, 2 * c2[1] + 1, 2 * c2[2] + 1));
    const int u = (axis + 1) % 3, v = (axis + 2) % 3;
    std::int64_t base[3] = {2 * c1[0], 2 * c1[1], 2 * c1[2]};
    base[axis] += 2;
    for (int du = 0; du <= 2; du += 2) {
      for (int dv = 0; dv <= 2; dv += 2) {
        std::int64_t q[3] = {base[0], base[1], base[2]};
        q[u] += du;
        q[v] += dv;
        seed_keys_.push_back(pack_key(q[0], q[1], q[2]));
      }
    }
  }
  std::sort(seed_keys_.begin(), seed_keys_.end());
  seed_keys_.erase(std::unique(seed_keys_.begin(), seed_keys_.end()),
                   seed_keys_.end());
  stats_.interface_vertices = seed_keys_.size();
}

bool LatticeFill::contains(const Vec3& p, Label* label) const {
  if (occ_.empty()) return false;
  const std::int64_t i =
      static_cast<std::int64_t>(std::floor((p.x - origin_.x) / a_));
  const std::int64_t j =
      static_cast<std::int64_t>(std::floor((p.y - origin_.y) / a_));
  const std::int64_t k =
      static_cast<std::int64_t>(std::floor((p.z - origin_.z) / a_));
  if (!cube_in_grid(i, j, k)) return false;
  const std::size_t ci = cube_index(static_cast<int>(i), static_cast<int>(j),
                                    static_cast<int>(k));
  const Label lab = occ_[ci];
  if (lab == 0) return false;
  // L is the union of center-to-face pyramids whose face is instantiated.
  // The pyramid containing p is the one toward the dominant axis of the
  // offset from the cube center; it is filled iff the neighbour across
  // that face is occupied with the same label.
  const Vec3 c = cube_center(static_cast<int>(i), static_cast<int>(j),
                             static_cast<int>(k));
  const double r[3] = {p.x - c.x, p.y - c.y, p.z - c.z};
  int axis = 0;
  double best = std::fabs(r[0]);
  for (int d = 1; d < 3; ++d) {
    const double m = std::fabs(r[d]);
    if (m > best) {
      best = m;
      axis = d;
    }
  }
  std::int64_t nb[3] = {i, j, k};
  nb[axis] += r[axis] >= 0.0 ? 1 : -1;
  if (!cube_in_grid(nb[0], nb[1], nb[2])) return false;
  if (occ_[cube_index(static_cast<int>(nb[0]), static_cast<int>(nb[1]),
                      static_cast<int>(nb[2]))] != lab) {
    return false;
  }
  if (label != nullptr) *label = lab;
  return true;
}

bool LatticeFill::protects(const Vec3& p) const {
  if (occ_.empty()) return false;
  const std::int64_t i =
      static_cast<std::int64_t>(std::floor((p.x - origin_.x) / a_));
  const std::int64_t j =
      static_cast<std::int64_t>(std::floor((p.y - origin_.y) / a_));
  const std::int64_t k =
      static_cast<std::int64_t>(std::floor((p.z - origin_.z) / a_));
  for (std::int64_t dk = -1; dk <= 1; ++dk) {
    for (std::int64_t dj = -1; dj <= 1; ++dj) {
      for (std::int64_t di = -1; di <= 1; ++di) {
        const std::int64_t ii = i + di, jj = j + dj, kk = k + dk;
        if (!cube_in_grid(ii, jj, kk)) continue;
        if (occ_[cube_index(static_cast<int>(ii), static_cast<int>(jj),
                            static_cast<int>(kk))] != 0) {
          return true;
        }
      }
    }
  }
  return false;
}

std::size_t LatticeFill::seed_interface(DelaunayMesh& mesh, int tid,
                                        OpScratch& scratch) {
  if (seed_keys_.empty()) return 0;
  seeded_.reserve(seed_keys_.size());
  // Rule tag 7 in the op log: not one of R1-R6, identifies lattice
  // interface seeds in recorded runs (replay treats it as a plain insert).
  check::set_current_rule(7);
  CellId hint = any_alive_cell(mesh, 0);
  for (const std::uint64_t key : seed_keys_) {
    const Vec3 p = point_of(key);
    OpResult res;
    int attempts = 0;
    do {
      res = insert_point(mesh, p, VertexKind::Lattice, hint, tid, scratch);
    } while (res.status != OpStatus::Success &&
             res.status != OpStatus::Failed && ++attempts < 64);
    PI2M_CHECK(res.status == OpStatus::Success,
               "lattice interface seed insertion failed");
    seeded_.emplace(key, res.new_vertex);
    if (!scratch.created.empty()) hint = scratch.created.front();
  }
  check::set_current_rule(0);
  return seeded_.size();
}

VertexId LatticeFill::seeded_vertex(std::uint64_t key) const {
  const auto it = seeded_.find(key);
  return it == seeded_.end() ? kNoVertex : it->second;
}

void LatticeFill::for_each_tet(
    const std::function<void(const std::array<std::uint64_t, 4>&,
                             const std::array<Vec3, 4>&, Label)>& fn) const {
  for (const std::uint64_t f : faces_) {
    const std::size_t ci = static_cast<std::size_t>(f >> 2);
    const int axis = static_cast<int>(f & 3);
    const int i = static_cast<int>(ci % static_cast<std::size_t>(ncx_));
    const int j = static_cast<int>((ci / static_cast<std::size_t>(ncx_)) %
                                   static_cast<std::size_t>(ncy_));
    const int k = static_cast<int>(ci / (static_cast<std::size_t>(ncx_) *
                                         static_cast<std::size_t>(ncy_)));
    const Label lab = occ_[ci];

    std::int64_t z1c[3] = {2 * i + 1, 2 * j + 1, 2 * k + 1};
    std::int64_t z2c[3] = {z1c[0], z1c[1], z1c[2]};
    z2c[axis] += 2;
    const int u = (axis + 1) % 3, v = (axis + 2) % 3;
    std::int64_t base[3] = {2 * i, 2 * j, 2 * k};
    base[axis] += 2;
    // Face corners wound clockwise as seen from the +axis side; with the
    // bipyramid apexes (z1, z2) prepended, (z1, z2, q[m], q[m+1]) is
    // positively oriented under the orient3d convention (verified by
    // lattice_test's exhaustive exact-predicate check).
    std::array<std::array<std::int64_t, 3>, 4> q;
    const int du[4] = {0, 0, 2, 2};
    const int dv[4] = {0, 2, 2, 0};
    for (int m = 0; m < 4; ++m) {
      q[m] = {base[0], base[1], base[2]};
      q[m][u] += du[m];
      q[m][v] += dv[m];
    }
    const std::uint64_t kz1 = pack_key(z1c[0], z1c[1], z1c[2]);
    const std::uint64_t kz2 = pack_key(z2c[0], z2c[1], z2c[2]);
    const Vec3 pz1 = point_of(kz1), pz2 = point_of(kz2);
    for (int m = 0; m < 4; ++m) {
      const int mm = (m + 1) & 3;
      const std::uint64_t ka = pack_key(q[m][0], q[m][1], q[m][2]);
      const std::uint64_t kb = pack_key(q[mm][0], q[mm][1], q[mm][2]);
      const std::array<std::uint64_t, 4> keys{kz1, kz2, ka, kb};
      const std::array<Vec3, 4> pos{pz1, pz2, point_of(ka), point_of(kb)};
      fn(keys, pos, lab);
    }
  }
}

}  // namespace lattice
}  // namespace pi2m
