// Hybrid structured-interior fill: BCC lattice templates for the deep
// interior, Delaunay refinement for the near-surface shell.
//
// The deep interior of O — everything farther than ~2δ from ∂O — carries no
// surface information, yet pure Delaunay refinement pays the full
// speculative Bowyer-Watson cost per element there. This subsystem fills
// that band with the tetragonal disphenoid honeycomb: the Delaunay
// triangulation of a body-centered-cubic point set. Each disphenoid has
// dihedral angles of exactly 60°/90° (optimal space-filling quality) and
// costs an append, not a cavity operation.
//
// Conformity is by construction, not by stitch repair. The kernel is seeded
// (pre-refinement, sequentially) with every lattice point on or near the
// region boundary ∂L. Because the disphenoids ARE the Delaunay cells of the
// BCC point set, every boundary disphenoid's circumsphere is strictly empty
// of all other lattice points; the refinement rules are forbidden (via
// `protects`) from inserting inside the guard zone covering those
// circumspheres, so the boundary disphenoids are present verbatim in the
// final kernel triangulation. Delaunay triangulations are face-to-face,
// hence no kernel cell straddles ∂L and the lattice/shell interface is
// watertight with shared vertex indices.
//
// See DESIGN.md "Hybrid structured-interior fill" for the band arithmetic
// and the full conformity argument.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "imaging/isosurface.hpp"

namespace pi2m {

/// Interior meshing strategy (MeshingOptions/RefinerOptions `interior`).
enum class InteriorFill : std::uint8_t {
  Delaunay,  ///< pure Delaunay refinement everywhere (pre-hybrid behaviour)
  Lattice,   ///< BCC template bulk + Delaunay skin (default)
};

const char* interior_name(InteriorFill k);
std::optional<InteriorFill> parse_interior_name(const std::string& s);

namespace lattice {

struct LatticeStats {
  std::size_t cubes_total = 0;     ///< cubes in the covering grid
  std::size_t cubes_filled = 0;    ///< cubes deep enough to occupy
  std::size_t faces = 0;           ///< instantiated interior faces (4 tets each)
  std::size_t tets = 0;            ///< template tets (= 4 * faces)
  std::size_t interface_vertices = 0;  ///< lattice points seeded as protected
  double cube_size = 0.0;          ///< lattice spacing a (world units)
};

/// The BCC lattice fill of one oracle's deep-interior band.
///
/// Geometry: an axis-aligned cube grid of spacing `a` anchored at the image
/// bounds origin. Lattice points live on doubled-integer coordinates (even =
/// cube corners, odd = cube centers), packed 21 bits per axis into a uint64
/// key — the vnBccTetrahedra-style centroid indexing scheme. A cube is
/// occupied when the EDT certifies its center is deeper than
/// 2δ + 2.7a from ∂O (so the whole guard zone stays ≥ 2δ inside O, and the
/// cube is automatically single-label). Each face between two occupied
/// same-label cubes instantiates the 4 disphenoids of its bipyramid.
///
/// Immutable after construction; concurrent `contains`/`protects` queries
/// are safe.
class LatticeFill {
 public:
  /// Builds occupancy + face tables from the EDT. `spacing` <= 0 selects
  /// the automatic spacing 2δ. `threads` parallelizes the occupancy scan
  /// and face instantiation over lattice-cube blocks.
  LatticeFill(const IsosurfaceOracle& oracle, double delta, double spacing,
              int threads);

  [[nodiscard]] bool empty() const { return stats_.cubes_filled == 0; }
  [[nodiscard]] const LatticeStats& stats() const { return stats_; }
  [[nodiscard]] double cube_size() const { return a_; }

  /// O(1): is p inside the lattice region L (the union of instantiated
  /// bipyramids)? Used by extraction to drop kernel cells the templates
  /// replace. On true, `label` (if non-null) receives the material label.
  [[nodiscard]] bool contains(const Vec3& p, Label* label = nullptr) const;

  /// O(1): is p inside the guard zone G (occupancy dilated by one cube
  /// ring)? G covers every boundary-disphenoid circumsphere (reach 0.559a <
  /// a), so refinement rules refuse to insert here and the seeded interface
  /// stays Delaunay-present. By the band margin, G never reaches within 2δ
  /// of ∂O — surface sampling (R1/R3) is untouched.
  [[nodiscard]] bool protects(const Vec3& p) const;

  /// Inserts every interface lattice point (the "wall + rind": any used
  /// point whose cube neighbourhood is not fully deep) into the kernel as a
  /// protected VertexKind::Lattice vertex. Sequential, in sorted-key order —
  /// deterministic. Call once, pre-refinement, on the quiescent mesh.
  /// Returns the number of seeded vertices.
  std::size_t seed_interface(DelaunayMesh& mesh, int tid, OpScratch& scratch);

  /// Kernel vertex id of a seeded lattice point (kNoVertex when the key was
  /// not part of the seeded interface).
  [[nodiscard]] VertexId seeded_vertex(std::uint64_t key) const;

  /// World position of a lattice point key (exact: origin + key * a/2, the
  /// same computation seeding used, so shared vertices are bit-identical).
  [[nodiscard]] Vec3 point_of(std::uint64_t key) const;

  /// Enumerates the template tets: fn(keys, positions, label) once per tet,
  /// vertices in positive orient3d order. Deterministic face order.
  void for_each_tet(
      const std::function<void(const std::array<std::uint64_t, 4>& keys,
                               const std::array<Vec3, 4>& pos, Label label)>&
          fn) const;

 private:
  [[nodiscard]] std::size_t cube_index(int i, int j, int k) const {
    return (static_cast<std::size_t>(k) * static_cast<std::size_t>(ncy_) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(ncx_) +
           static_cast<std::size_t>(i);
  }
  [[nodiscard]] bool cube_in_grid(std::int64_t i, std::int64_t j,
                                  std::int64_t k) const {
    return i >= 0 && i < ncx_ && j >= 0 && j < ncy_ && k >= 0 && k < ncz_;
  }
  [[nodiscard]] Vec3 cube_center(int i, int j, int k) const;
  void build_occupancy(const IsosurfaceOracle& oracle, int threads);
  void erode_deep(int threads);
  void collect_faces(int threads);
  void collect_seed_keys();

  Vec3 origin_{};   ///< world position of lattice point (0,0,0)
  double a_ = 0.0;  ///< cube size (lattice spacing)
  double band_ = 0.0;  ///< EDT clearance required at an occupied center
  int ncx_ = 0, ncy_ = 0, ncz_ = 0;

  /// Per-cube material label; 0 = unoccupied.
  std::vector<Label> occ_;
  /// Chebyshev-radius-2 erosion of occupancy: a point all of whose incident
  /// cubes are deep cannot touch a boundary disphenoid and needs no seed.
  std::vector<std::uint8_t> deep_;
  /// Instantiated interior faces, packed (cube_index << 2) | axis.
  std::vector<std::uint64_t> faces_;
  /// Interface lattice points, sorted by key (deterministic seed order).
  std::vector<std::uint64_t> seed_keys_;
  std::unordered_map<std::uint64_t, VertexId> seeded_;
  LatticeStats stats_;
};

}  // namespace lattice
}  // namespace pi2m
