// Sequential replayer for recorded kernel operation logs.
//
// Re-executes an oplog (check/oplog.hpp) single-threaded, in commit-sequence
// order, against a fresh mesh over the same virtual box. Because the
// sequence numbers are drawn while each operation holds its vertex locks,
// sequence order is a valid linearization of the concurrent run, and the
// Bowyer-Watson cavity of a point is a pure function of the current
// triangulation (exact predicates) — so the replay converges to the same
// simplicial complex, compared via canonical snapshots (check/snapshot.hpp).
//
// Caveat, documented rather than hidden: vertex removal breaks exact
// cospherical ties in the link re-triangulation by vertex timestamp.
// Timestamps are assigned at creation, from a counter distinct from the
// commit-sequence counter, so two concurrent *non-conflicting* inserts can
// have timestamp order opposite their sequence order. Replay then assigns
// them swapped timestamps, which can only matter if a later removal's link
// is exactly cospherical across those two vertices. Such a divergence is
// not silent — it surfaces as a snapshot mismatch pointing at the removal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/auditor.hpp"
#include "check/oplog.hpp"
#include "check/snapshot.hpp"
#include "geometry/vec3.hpp"

namespace pi2m::check {

struct ReplayOptions {
  /// Run an incremental audit every N applied operations (0 = only the
  /// final full audit).
  std::uint32_t audit_every = 0;
  /// Insphere sampling rate for the audits (see InvariantAuditor).
  std::uint32_t insphere_sample = 8;
  /// Capacity of the replay mesh.
  std::size_t max_vertices = 1u << 20;
  std::size_t max_cells = 1u << 22;
};

struct ReplayResult {
  /// Every op applied cleanly and every audit passed.
  bool ok = false;
  std::string error;
  /// Index into the log of the op that failed to apply or first op after
  /// which an audit failed; -1 when ok (or the failure is global).
  std::int64_t failed_op = -1;
  std::size_t applied = 0;
  /// Canonical snapshot + hash of the replayed mesh (valid when every op
  /// applied, even if an audit failed).
  MeshSnapshot snapshot;
  std::uint64_t hash = 0;
  AuditReport final_audit;
};

/// Replays `log` over a fresh mesh on `box`. The box must be the same
/// virtual box the recording run used, or point location will fail.
ReplayResult replay_oplog(const Aabb& box, const std::vector<OpRecord>& log,
                          const ReplayOptions& opts = {});

}  // namespace pi2m::check
