#include "check/replay.hpp"

#include <cstring>
#include <map>
#include <sstream>
#include <tuple>

#include "delaunay/operations.hpp"

namespace pi2m::check {

namespace {

/// Exact-position key: the raw bit patterns of (x, y, z). Positions are
/// recorded and replayed bit-for-bit, so bitwise equality is the right
/// notion (and avoids -0.0 == 0.0 aliasing two distinct keys).
using PosKey = std::array<std::uint64_t, 3>;

PosKey pos_key(const Vec3& p) {
  PosKey k;
  std::memcpy(&k[0], &p.x, 8);
  std::memcpy(&k[1], &p.y, 8);
  std::memcpy(&k[2], &p.z, 8);
  return k;
}

}  // namespace

ReplayResult replay_oplog(const Aabb& box, const std::vector<OpRecord>& log,
                          const ReplayOptions& opts) {
  ReplayResult res;
  DelaunayMesh mesh(box, opts.max_vertices, opts.max_cells);
  InvariantAuditor auditor(mesh, opts.insphere_sample);
  OpScratch scratch;
  constexpr int kTid = 0;

  std::map<PosKey, VertexId> by_pos;
  CellId hint = any_alive_cell(mesh, 0);

  const auto fail_at = [&](std::size_t i, const std::string& what) {
    res.ok = false;
    res.failed_op = static_cast<std::int64_t>(i);
    std::ostringstream os;
    os << "op " << i << " (seq " << log[i].seq << ", "
       << (log[i].op == OpKind::Insert ? "insert" : "remove") << " at ("
       << log[i].point.x << ", " << log[i].point.y << ", " << log[i].point.z
       << ")): " << what;
    res.error = os.str();
  };

  for (std::size_t i = 0; i < log.size(); ++i) {
    const OpRecord& r = log[i];
    if (r.op == OpKind::Insert) {
      const OpResult op =
          insert_point(mesh, r.point, static_cast<VertexKind>(r.kind), hint,
                       kTid, scratch);
      // Single-threaded: Conflict/Stale are impossible, and a *committed*
      // recorded insert must commit again under any valid linearization.
      if (op.status != OpStatus::Success) {
        fail_at(i, "recorded insert did not apply (status " +
                       std::to_string(static_cast<int>(op.status)) + ")");
        return res;
      }
      by_pos.emplace(pos_key(r.point), op.new_vertex);
      if (!scratch.created.empty()) hint = scratch.created.front();
    } else {
      const auto it = by_pos.find(pos_key(r.point));
      if (it == by_pos.end()) {
        fail_at(i, "recorded removal of a vertex this replay never inserted");
        return res;
      }
      const OpResult op = remove_vertex(mesh, it->second, kTid, scratch);
      if (op.status != OpStatus::Success) {
        fail_at(i, "recorded removal did not apply (status " +
                       std::to_string(static_cast<int>(op.status)) + ")");
        return res;
      }
      by_pos.erase(it);
      if (!scratch.created.empty()) hint = scratch.created.front();
    }
    ++res.applied;

    if (opts.audit_every != 0 && res.applied % opts.audit_every == 0) {
      const AuditReport rep = auditor.audit_incremental();
      if (!rep.ok) {
        fail_at(i, "incremental audit failed: " + rep.errors.front());
        res.final_audit = rep;
        return res;
      }
    }
  }

  res.final_audit = auditor.audit_full();
  res.snapshot = snapshot_mesh(mesh);
  res.hash = snapshot_hash(res.snapshot);
  res.ok = res.final_audit.ok;
  if (!res.ok && res.error.empty()) {
    res.error = "final audit failed: " + (res.final_audit.errors.empty()
                                              ? std::string("(no detail)")
                                              : res.final_audit.errors.front());
  }
  return res;
}

}  // namespace pi2m::check
