#include "check/auditor.hpp"

#include <cmath>
#include <sstream>

#include "geometry/tetra.hpp"
#include "predicates/predicates.hpp"

namespace pi2m::check {

namespace {

/// splitmix64 finalizer: deterministic per-(cell, face) sampling decision
/// that is stable across runs and independent of audit call order.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

InvariantAuditor::InvariantAuditor(const DelaunayMesh& mesh,
                                   std::uint32_t insphere_sample)
    : mesh_(mesh), insphere_sample_(insphere_sample) {}

void InvariantAuditor::add_error(AuditReport& rep, std::string msg) const {
  rep.ok = false;
  ++rep.total_violations;
  if (rep.errors.size() < AuditReport::kMaxErrors) {
    rep.errors.push_back(std::move(msg));
  }
}

void InvariantAuditor::audit_cell(CellId c, AuditReport& rep) {
  const Cell& cl = mesh_.cell(c);
  ++rep.cells_checked;

  const std::uint32_t gen = mesh_.cell_gen(c);
  if ((gen & 1u) == 0) {
    // Only called on cells that looked alive a moment ago; with no
    // concurrent mutation (the audit contract) this cannot happen.
    std::ostringstream os;
    os << "cell " << c << ": even (retired) generation " << gen
       << " while enumerated as alive";
    add_error(rep, os.str());
    return;
  }

  // Vertex liveness.
  for (int i = 0; i < 4; ++i) {
    const VertexId v = cl.v[static_cast<std::size_t>(i)];
    if (v >= mesh_.vertex_count()) {
      std::ostringstream os;
      os << "cell " << c << ": vertex slot " << i << " out of range (" << v
         << ")";
      add_error(rep, os.str());
      return;
    }
    if (mesh_.vertex(v).dead.load(std::memory_order_acquire)) {
      std::ostringstream os;
      os << "cell " << c << ": references dead vertex " << v;
      add_error(rep, os.str());
      return;
    }
  }

  // Orientation (exact).
  const auto p = mesh_.positions(c);
  if (orient3d(p[0], p[1], p[2], p[3]) <= 0) {
    std::ostringstream os;
    os << "cell " << c << ": non-positive orientation";
    add_error(rep, os.str());
    return;
  }

  // Adjacency and hull conformity.
  for (int i = 0; i < 4; ++i) {
    const VertexId fa = cl.v[static_cast<std::size_t>(kFaceOf[i][0])];
    const VertexId fb = cl.v[static_cast<std::size_t>(kFaceOf[i][1])];
    const VertexId fc = cl.v[static_cast<std::size_t>(kFaceOf[i][2])];
    const CellId nb = cl.n[static_cast<std::size_t>(i)].load(
        std::memory_order_acquire);

    if (nb == kNoCell) {
      // Only the virtual-box hull may be open; its faces consist purely of
      // Box-kind corners.
      const bool hull = mesh_.vertex(fa).kind == VertexKind::Box &&
                        mesh_.vertex(fb).kind == VertexKind::Box &&
                        mesh_.vertex(fc).kind == VertexKind::Box;
      if (!hull) {
        std::ostringstream os;
        os << "cell " << c << " face " << i
           << ": open (kNoCell) neighbour on a non-hull face";
        add_error(rep, os.str());
      }
      continue;
    }

    if (nb >= mesh_.cell_slot_count() || !mesh_.cell_alive(nb)) {
      std::ostringstream os;
      os << "cell " << c << " face " << i << ": neighbour " << nb
         << (nb >= mesh_.cell_slot_count() ? " out of range" : " is retired");
      add_error(rep, os.str());
      continue;
    }

    const int mirror = mesh_.face_index_of(nb, fa, fb, fc);
    if (mirror < 0) {
      std::ostringstream os;
      os << "cell " << c << " face " << i << ": neighbour " << nb
         << " has no face with the same 3 vertices";
      add_error(rep, os.str());
      continue;
    }
    const CellId back = mesh_.cell(nb).n[static_cast<std::size_t>(mirror)].load(
        std::memory_order_acquire);
    if (back != c) {
      std::ostringstream os;
      os << "cell " << c << " face " << i << ": mirror slot of neighbour "
         << nb << " points at " << back << " (adjacency asymmetry)";
      add_error(rep, os.str());
      continue;
    }

    // Sampled exact local-Delaunay spot check. Deterministic in (cell ids,
    // generations), independent of call order; checking each interior face
    // from its lower-id side halves the work without losing coverage.
    if (insphere_sample_ != 0 && c < nb) {
      const std::uint64_t h =
          mix64((static_cast<std::uint64_t>(c) << 32) |
                static_cast<std::uint64_t>(gen + static_cast<std::uint32_t>(i)))
          ^ sample_state_;
      if (h % insphere_sample_ == 0) {
        const Cell& ncl = mesh_.cell(nb);
        const VertexId opp = ncl.v[static_cast<std::size_t>(mirror)];
        ++rep.insphere_checked;
        if (insphere(p[0], p[1], p[2], p[3], mesh_.vertex(opp).pos) > 0) {
          std::ostringstream os;
          os << "cell " << c << " face " << i << ": neighbour vertex " << opp
             << " strictly inside circumsphere (Delaunay violation)";
          add_error(rep, os.str());
        }
      }
    }
  }
}

AuditReport InvariantAuditor::audit_incremental() {
  AuditReport rep;
  const std::uint32_t slots = mesh_.cell_slot_count();
  if (checked_gen_.size() < slots) checked_gen_.resize(slots, 0);
  for (CellId c = 0; c < slots; ++c) {
    const std::uint32_t gen = mesh_.cell_gen(c);
    if (gen == checked_gen_[c]) continue;  // unchanged since last pass
    if ((gen & 1u) != 0) audit_cell(c, rep);
    // Cache retired generations too: a slot that stays retired is skipped
    // until it is recycled (gen bumps again).
    checked_gen_[c] = gen;
  }
  return rep;
}

AuditReport InvariantAuditor::audit_full() {
  checked_gen_.clear();
  AuditReport rep = audit_incremental();

  // Cavity closure: commits exchange a cavity for a star of identical total
  // volume, so the alive cells must always tile the virtual box exactly.
  const Aabb& b = mesh_.box();
  const Vec3 e = b.extent();
  const double box_vol = e.x * e.y * e.z;
  const double vol = mesh_.total_volume();
  // Relative tolerance only absorbs floating-point summation error over
  // ~1e6 cells; a leaked or overlapping cavity is off by whole tetrahedra.
  if (std::fabs(vol - box_vol) > 1e-9 * box_vol) {
    std::ostringstream os;
    os << "volume closure violated: alive cells sum to " << vol
       << ", virtual box is " << box_vol;
    add_error(rep, os.str());
  }
  return rep;
}

}  // namespace pi2m::check
