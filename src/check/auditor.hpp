// Incremental invariant auditor for the concurrent Delaunay mesh.
//
// check_integrity() is a full quadratic-ish sweep meant for small test
// meshes; the auditor is its production-strength sibling: it caches the
// generation word of every cell slot it has validated and, on subsequent
// calls, re-checks only slots whose generation changed (new, retired or
// recycled cells). That makes audit-every-N-operations affordable inside
// the fuzz driver and at refiner phase boundaries.
//
// Per-cell checks (exact arithmetic, no epsilons):
//  * generation parity — an alive cell has an odd generation word;
//  * vertex liveness — no alive cell references a dead or out-of-range
//    vertex;
//  * orientation — orient3d over the 4 corners is strictly positive;
//  * adjacency mirror symmetry — n[i] names a cell that is alive and has a
//    face consisting of exactly the same 3 vertices, whose neighbour slot
//    points back at us;
//  * hull conformity — a kNoCell neighbour is only legal on the virtual
//    box hull, i.e. when all 3 face vertices are Box-kind;
//  * sampled local Delaunay — for a deterministic 1-in-N sample of faces,
//    the neighbour's opposite vertex must not lie strictly inside our
//    circumsphere (exact insphere).
//
// Global checks (audit_full / phase boundaries):
//  * cavity closure — the signed volumes of all alive cells sum to the
//    virtual-box volume (every commit swaps a cavity for a star of equal
//    volume, so any leak or overlap shows up here);
//  * everything incremental, with the cache cleared first.
//
// Thread contract: call only while no thread is mutating the mesh (the
// refiner's phase boundaries, or after workers join).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "delaunay/mesh.hpp"

namespace pi2m::check {

struct AuditReport {
  bool ok = true;
  /// Human-readable violations, capped at kMaxErrors (counted beyond).
  std::vector<std::string> errors;
  std::size_t cells_checked = 0;
  std::size_t insphere_checked = 0;
  std::size_t total_violations = 0;

  static constexpr std::size_t kMaxErrors = 32;
};

class InvariantAuditor {
 public:
  /// `insphere_sample` = check the local Delaunay property on roughly 1 in
  /// N eligible faces (0 disables the sampled insphere check entirely).
  explicit InvariantAuditor(const DelaunayMesh& mesh,
                            std::uint32_t insphere_sample = 8);

  /// Checks only cells whose generation changed since the last audit.
  AuditReport audit_incremental();

  /// Clears the generation cache, re-checks every alive cell and runs the
  /// global volume-closure check.
  AuditReport audit_full();

 private:
  void audit_cell(CellId c, AuditReport& rep);
  void add_error(AuditReport& rep, std::string msg) const;

  const DelaunayMesh& mesh_;
  /// Generation word of each slot at the time it last passed; slots whose
  /// current generation matches are skipped.
  std::vector<std::uint32_t> checked_gen_;
  std::uint32_t insphere_sample_;
  /// Deterministic sampling state (splitmix-style counter hash, no global
  /// RNG) so two audits of identical meshes check identical faces.
  std::uint64_t sample_state_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace pi2m::check
