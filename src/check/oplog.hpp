// Operation-log recorder for the speculative Bowyer-Watson kernel.
//
// Motivation: a racy interleaving that corrupts adjacency in a concurrent
// refine run is nondeterministic and nearly impossible to reproduce from a
// failing test alone. The recorder captures every *committed* insert/remove
// — point, vertex kind, refinement rule, cavity size, committing thread and
// a global commit sequence number — so the run can later be re-executed
// sequentially (see check/replay.hpp) and audited incrementally.
//
// Why replay is faithful: every cell an operation reads or writes (the
// cavity plus its rejected-outside rind) is vertex-locked for the whole
// operation, so two concurrently committed operations either conflict (and
// the locks order their commit-sequence draws) or touch disjoint cells (and
// commute exactly). Re-applying the log in sequence order is therefore a
// valid linearization of the concurrent execution and reproduces the same
// triangulation (up to cell/vertex ids — compared via the canonical
// snapshot in check/snapshot.hpp).
//
// Gating mirrors telemetry:
//  * Compile time: -DPI2M_OPLOG=OFF (PI2M_OPLOG_ENABLED=0) turns the commit
//    hook into an empty inline; the session/save/load API stays available
//    and produces empty logs.
//  * Run time: with no active recording session the hook is one relaxed
//    atomic load and a predictable branch.
//
// Threading contract: begin()/end() must not race with commits (call from
// the orchestrating thread before spawning / after joining workers).
// Recording itself is fully concurrent — each thread appends to its own
// buffer; only the sequence counter is shared, and it is drawn while the
// operation still holds its vertex locks, which is what makes the sequence
// a valid linearization order.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geometry/vec3.hpp"

#ifndef PI2M_OPLOG_ENABLED
#define PI2M_OPLOG_ENABLED 1
#endif

namespace pi2m::check {

enum class OpKind : std::uint8_t { Insert = 0, Remove = 1 };

/// One committed kernel operation. For Insert, `point` is the inserted
/// point; for Remove it is the position of the removed vertex (positions
/// are immutable and unique among alive vertices, so the replayer resolves
/// them back to vertex ids exactly).
struct OpRecord {
  Vec3 point;
  std::uint64_t seq = 0;     ///< global commit order (drawn under locks)
  std::uint32_t cavity = 0;  ///< cells retired by the operation
  std::int32_t tid = -1;     ///< committing thread
  OpKind op = OpKind::Insert;
  std::uint8_t kind = 0;     ///< VertexKind of the inserted/removed vertex
  std::uint8_t rule = 0;     ///< refinement rule (0 = none/direct kernel)
};

// --- session control (available in both build modes) ----------------------

/// Opens a recording session: clears all buffers, resets the sequence
/// counter and enables the commit hook.
void begin();

/// Closes the session: the hook goes quiet, buffered records stay readable.
void end();

/// One merged view of every buffered record, sorted by commit sequence.
/// Requires recording threads to have quiesced (joined, or session ended).
std::vector<OpRecord> snapshot();

/// Number of buffered records (post-end or quiesced).
std::size_t record_count();

/// Binary save/load of a log (the core of a replay bundle). Format:
/// "P2MOPLOG" magic, u32 version, u64 count, packed little-endian records.
bool save_oplog(const std::vector<OpRecord>& log, const std::string& path);
std::optional<std::vector<OpRecord>> load_oplog(const std::string& path,
                                                std::string* error = nullptr);

// --- hot-path hooks --------------------------------------------------------

#if PI2M_OPLOG_ENABLED

namespace detail {
extern std::atomic<bool> g_recording;
void record_slow(OpKind op, const Vec3& p, std::uint8_t kind,
                 std::uint32_t cavity, int tid);
std::uint8_t& current_rule_slot();
}  // namespace detail

/// True while a recording session is open (the run-time gate).
inline bool active() {
  return detail::g_recording.load(std::memory_order_relaxed);
}

/// Commit hook. MUST be called while the operation still holds its vertex
/// locks (i.e. before the unlock in the commit path): the sequence number
/// drawn inside is only a valid linearization order under that condition.
inline void record_commit(OpKind op, const Vec3& p, std::uint8_t kind,
                          std::uint32_t cavity, int tid) {
  if (active()) detail::record_slow(op, p, kind, cavity, tid);
}

/// Tags subsequent commits on this thread with a refinement rule (the
/// delaunay kernel does not know which rule triggered it; the refiner does).
inline void set_current_rule(std::uint8_t rule) {
  if (active()) detail::current_rule_slot() = rule;
}

#else  // !PI2M_OPLOG_ENABLED — compiled-out hooks

inline bool active() { return false; }
inline void record_commit(OpKind, const Vec3&, std::uint8_t, std::uint32_t,
                          int) {}
inline void set_current_rule(std::uint8_t) {}

#endif  // PI2M_OPLOG_ENABLED

}  // namespace pi2m::check
