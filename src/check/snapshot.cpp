#include "check/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <tuple>

namespace pi2m::check {

namespace {

void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_f64(std::string& s, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  put_u64(s, bits);
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
double get_f64(const unsigned char* p) {
  const std::uint64_t bits = get_u64(p);
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

constexpr char kMagic[8] = {'P', '2', 'M', 'S', 'N', 'A', 'P', '1'};

bool pos_less(const Vec3& a, const Vec3& b) {
  return std::tie(a.x, a.y, a.z) < std::tie(b.x, b.y, b.z);
}

}  // namespace

bool MeshSnapshot::operator==(const MeshSnapshot& other) const {
  // Compare through the byte serialization so "equal" and "byte-identical"
  // can never diverge (e.g. -0.0 vs 0.0 compare equal as doubles but differ
  // as bytes; both executions of the same ops produce the same bits).
  return snapshot_bytes(*this) == snapshot_bytes(other);
}

MeshSnapshot snapshot_mesh(const DelaunayMesh& mesh) {
  MeshSnapshot s;

  // Alive vertices, position-sorted. Positions are unique among alive
  // vertices (duplicate inserts fail; re-inserted removals first mark the
  // old vertex dead), so the order — and hence the canonical index map —
  // is total and deterministic.
  std::vector<VertexId> alive;
  alive.reserve(mesh.vertex_count());
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    if (!mesh.vertex(v).dead.load(std::memory_order_acquire)) {
      alive.push_back(v);
    }
  }
  std::sort(alive.begin(), alive.end(), [&](VertexId a, VertexId b) {
    return pos_less(mesh.vertex(a).pos, mesh.vertex(b).pos);
  });
  std::vector<std::uint32_t> canon(mesh.vertex_count(), 0xFFFFFFFFu);
  s.vertices.reserve(alive.size());
  s.kinds.reserve(alive.size());
  for (std::size_t i = 0; i < alive.size(); ++i) {
    canon[alive[i]] = static_cast<std::uint32_t>(i);
    s.vertices.push_back(mesh.vertex(alive[i]).pos);
    s.kinds.push_back(static_cast<std::uint8_t>(mesh.vertex(alive[i]).kind));
  }

  mesh.for_each_alive_cell([&](CellId c) {
    const Cell& cl = mesh.cell(c);
    std::array<std::uint32_t, 4> t{canon[cl.v[0]], canon[cl.v[1]],
                                   canon[cl.v[2]], canon[cl.v[3]]};
    std::sort(t.begin(), t.end());
    s.cells.push_back(t);
  });
  std::sort(s.cells.begin(), s.cells.end());
  return s;
}

std::string snapshot_bytes(const MeshSnapshot& s) {
  std::string out;
  out.reserve(sizeof(kMagic) + 16 + s.vertices.size() * 25 +
              s.cells.size() * 16);
  out.append(kMagic, sizeof(kMagic));
  put_u64(out, s.vertices.size());
  put_u64(out, s.cells.size());
  for (std::size_t i = 0; i < s.vertices.size(); ++i) {
    put_f64(out, s.vertices[i].x);
    put_f64(out, s.vertices[i].y);
    put_f64(out, s.vertices[i].z);
    out.push_back(static_cast<char>(s.kinds[i]));
  }
  for (const auto& t : s.cells) {
    for (const std::uint32_t v : t) put_u32(out, v);
  }
  return out;
}

std::uint64_t snapshot_hash(const MeshSnapshot& s) {
  const std::string bytes = snapshot_bytes(s);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool save_snapshot(const MeshSnapshot& s, const std::string& path) {
  const std::string bytes = snapshot_bytes(s);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool load_snapshot(const std::string& path, MeshSnapshot& out,
                   std::string* error) {
  const auto fail = [&](const char* msg) {
    if (error) *error = msg;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open snapshot file");
  std::string raw;
  char chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) raw.append(chunk, n);
  std::fclose(f);

  if (raw.size() < sizeof(kMagic) + 16 ||
      std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail("not a snapshot file (bad magic)");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(raw.data());
  std::size_t off = sizeof(kMagic);
  const std::uint64_t nv = get_u64(p + off);
  off += 8;
  const std::uint64_t nc = get_u64(p + off);
  off += 8;
  if (raw.size() - off < nv * 25 + nc * 16) return fail("truncated snapshot");

  out = MeshSnapshot{};
  out.vertices.reserve(nv);
  out.kinds.reserve(nv);
  out.cells.reserve(nc);
  for (std::uint64_t i = 0; i < nv; ++i) {
    Vec3 v;
    v.x = get_f64(p + off); off += 8;
    v.y = get_f64(p + off); off += 8;
    v.z = get_f64(p + off); off += 8;
    out.vertices.push_back(v);
    out.kinds.push_back(p[off]); off += 1;
  }
  for (std::uint64_t i = 0; i < nc; ++i) {
    std::array<std::uint32_t, 4> t{};
    for (int k = 0; k < 4; ++k) {
      t[static_cast<std::size_t>(k)] = get_u32(p + off);
      off += 4;
    }
    out.cells.push_back(t);
  }
  return true;
}

}  // namespace pi2m::check
