// Canonical triangulation snapshots: an id-free value representation of a
// DelaunayMesh used to compare a concurrent run against its sequential
// replay byte-for-byte.
//
// Vertex and cell *ids* are allocation artifacts (threads draw them from
// shared counters in racy order), so two executions of the same logical
// operation sequence produce the same complex under different ids. The
// canonical form erases the ids: alive vertices are sorted by position
// (positions are immutable and unique among alive vertices), and every cell
// becomes the sorted 4-tuple of canonical vertex indices, with the cell
// list itself sorted. Two meshes are equal as simplicial complexes iff
// their canonical snapshots serialize to identical bytes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "delaunay/mesh.hpp"

namespace pi2m::check {

struct MeshSnapshot {
  /// Alive vertices sorted lexicographically by (x, y, z).
  std::vector<Vec3> vertices;
  /// VertexKind per vertex, parallel to `vertices`.
  std::vector<std::uint8_t> kinds;
  /// Alive cells as ascending canonical vertex indices; list sorted.
  std::vector<std::array<std::uint32_t, 4>> cells;

  bool operator==(const MeshSnapshot& other) const;
};

/// Captures the canonical snapshot. Only valid while no thread is mutating
/// the mesh.
MeshSnapshot snapshot_mesh(const DelaunayMesh& mesh);

/// Canonical little-endian byte serialization (the "byte-identical"
/// comparison unit; also what replay bundles store on disk).
std::string snapshot_bytes(const MeshSnapshot& s);

/// FNV-1a over snapshot_bytes — a cheap fingerprint for logs/manifests.
std::uint64_t snapshot_hash(const MeshSnapshot& s);

/// Writes snapshot_bytes to `path` / reads a snapshot back. load returns
/// false (filling `error` when given) on malformed input.
bool save_snapshot(const MeshSnapshot& s, const std::string& path);
bool load_snapshot(const std::string& path, MeshSnapshot& out,
                   std::string* error = nullptr);

}  // namespace pi2m::check
