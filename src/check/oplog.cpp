#include "check/oplog.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

namespace pi2m::check {

#if PI2M_OPLOG_ENABLED

namespace detail {

std::atomic<bool> g_recording{false};

namespace {

/// Per-thread append-only record buffer. Registered once per thread under a
/// mutex; appends are uncontended afterwards. Buffers live until the next
/// begin() so snapshot() can run after the writer threads have exited.
struct Buffer {
  std::vector<OpRecord> records;
  std::uint8_t current_rule = 0;
};

std::mutex g_registry_mutex;
std::vector<std::unique_ptr<Buffer>> g_buffers;
std::atomic<std::uint64_t> g_next_seq{0};
/// Session id: thread-local buffer pointers from a previous session must
/// not be reused (their storage was cleared by begin()).
std::atomic<std::uint64_t> g_session{0};

Buffer& tls_buffer() {
  thread_local Buffer* buf = nullptr;
  thread_local std::uint64_t session = 0;
  const std::uint64_t cur = g_session.load(std::memory_order_acquire);
  if (buf == nullptr || session != cur) {
    std::lock_guard<std::mutex> lk(g_registry_mutex);
    g_buffers.push_back(std::make_unique<Buffer>());
    buf = g_buffers.back().get();
    session = cur;
  }
  return *buf;
}

}  // namespace

void record_slow(OpKind op, const Vec3& p, std::uint8_t kind,
                 std::uint32_t cavity, int tid) {
  Buffer& b = tls_buffer();
  OpRecord r;
  r.point = p;
  // Drawn while the caller still holds the operation's vertex locks:
  // conflicting operations are ordered by their lock handoff, so sequence
  // order is a valid linearization (see header).
  r.seq = g_next_seq.fetch_add(1, std::memory_order_relaxed);
  r.cavity = cavity;
  r.tid = tid;
  r.op = op;
  r.kind = kind;
  r.rule = b.current_rule;
  b.records.push_back(r);
}

std::uint8_t& current_rule_slot() { return tls_buffer().current_rule; }

}  // namespace detail

void begin() {
  std::lock_guard<std::mutex> lk(detail::g_registry_mutex);
  detail::g_buffers.clear();
  detail::g_next_seq.store(0, std::memory_order_relaxed);
  detail::g_session.fetch_add(1, std::memory_order_acq_rel);
  detail::g_recording.store(true, std::memory_order_release);
}

void end() { detail::g_recording.store(false, std::memory_order_release); }

std::vector<OpRecord> snapshot() {
  std::lock_guard<std::mutex> lk(detail::g_registry_mutex);
  std::vector<OpRecord> out;
  std::size_t total = 0;
  for (const auto& b : detail::g_buffers) total += b->records.size();
  out.reserve(total);
  for (const auto& b : detail::g_buffers) {
    out.insert(out.end(), b->records.begin(), b->records.end());
  }
  std::sort(out.begin(), out.end(),
            [](const OpRecord& a, const OpRecord& b) { return a.seq < b.seq; });
  return out;
}

std::size_t record_count() {
  std::lock_guard<std::mutex> lk(detail::g_registry_mutex);
  std::size_t total = 0;
  for (const auto& b : detail::g_buffers) total += b->records.size();
  return total;
}

#else  // !PI2M_OPLOG_ENABLED

void begin() {}
void end() {}
std::vector<OpRecord> snapshot() { return {}; }
std::size_t record_count() { return 0; }

#endif  // PI2M_OPLOG_ENABLED

namespace {

constexpr char kMagic[8] = {'P', '2', 'M', 'O', 'P', 'L', 'O', 'G'};
constexpr std::uint32_t kVersion = 1;
// point (3 doubles) + seq + cavity + tid + op + kind + rule, packed.
constexpr std::size_t kRecordBytes = 3 * 8 + 8 + 4 + 4 + 1 + 1 + 1;

void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_f64(std::string& s, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  put_u64(s, bits);
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
double get_f64(const unsigned char* p) {
  const std::uint64_t bits = get_u64(p);
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

}  // namespace

bool save_oplog(const std::vector<OpRecord>& log, const std::string& path) {
  std::string out;
  out.reserve(sizeof(kMagic) + 4 + 8 + log.size() * kRecordBytes);
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kVersion);
  put_u64(out, log.size());
  for (const OpRecord& r : log) {
    put_f64(out, r.point.x);
    put_f64(out, r.point.y);
    put_f64(out, r.point.z);
    put_u64(out, r.seq);
    put_u32(out, r.cavity);
    put_u32(out, static_cast<std::uint32_t>(r.tid));
    out.push_back(static_cast<char>(r.op));
    out.push_back(static_cast<char>(r.kind));
    out.push_back(static_cast<char>(r.rule));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

std::optional<std::vector<OpRecord>> load_oplog(const std::string& path,
                                                std::string* error) {
  const auto fail = [&](const char* msg) -> std::optional<std::vector<OpRecord>> {
    if (error) *error = msg;
    return std::nullopt;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open oplog file");
  std::string raw;
  char chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) raw.append(chunk, n);
  std::fclose(f);

  if (raw.size() < sizeof(kMagic) + 4 + 8 ||
      std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail("not an oplog file (bad magic)");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(raw.data());
  std::size_t off = sizeof(kMagic);
  const std::uint32_t version = get_u32(p + off);
  off += 4;
  if (version != kVersion) return fail("unsupported oplog version");
  const std::uint64_t count = get_u64(p + off);
  off += 8;
  if (raw.size() - off < count * kRecordBytes) return fail("truncated oplog");

  std::vector<OpRecord> log;
  log.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    OpRecord r;
    r.point.x = get_f64(p + off); off += 8;
    r.point.y = get_f64(p + off); off += 8;
    r.point.z = get_f64(p + off); off += 8;
    r.seq = get_u64(p + off); off += 8;
    r.cavity = get_u32(p + off); off += 4;
    r.tid = static_cast<std::int32_t>(get_u32(p + off)); off += 4;
    r.op = static_cast<OpKind>(p[off]); off += 1;
    r.kind = p[off]; off += 1;
    r.rule = p[off]; off += 1;
    log.push_back(r);
  }
  return log;
}

}  // namespace pi2m::check
