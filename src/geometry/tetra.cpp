#include "geometry/tetra.hpp"

#include <algorithm>
#include <cmath>

namespace pi2m {
namespace {
constexpr double kPi = 3.14159265358979323846;

double clamp_cos(double c) { return std::min(1.0, std::max(-1.0, c)); }
}  // namespace

Circumsphere circumsphere(const Vec3& a, const Vec3& b, const Vec3& c,
                          const Vec3& d) {
  const Vec3 ba = b - a, ca = c - a, da = d - a;
  const double ba2 = norm2(ba), ca2 = norm2(ca), da2 = norm2(da);

  const Vec3 cbc = cross(ba, ca);
  const double denom = 2.0 * dot(cbc, da);  // 12 * signed volume

  Circumsphere out;
  // Degeneracy guard: compare against the scale of the element so the test
  // is unit-independent.
  const double scale = std::sqrt(std::max({ba2, ca2, da2}));
  if (std::fabs(denom) <= 1e-13 * scale * scale * scale) {
    out.valid = false;
    out.radius2 = 1e300;
    return out;
  }
  const Vec3 num = da2 * cbc + ca2 * cross(da, ba) + ba2 * cross(ca, da);
  const Vec3 rel = num / denom;
  out.center = a + rel;
  out.radius2 = norm2(rel);
  out.valid = true;
  return out;
}

Circumsphere triangle_circumcircle(const Vec3& a, const Vec3& b,
                                   const Vec3& c) {
  const Vec3 ba = b - a, ca = c - a;
  const Vec3 n = cross(ba, ca);
  const double n2 = norm2(n);

  Circumsphere out;
  const double scale = std::max(norm2(ba), norm2(ca));
  if (n2 <= 1e-26 * scale * scale) {
    out.valid = false;
    out.radius2 = 1e300;
    return out;
  }
  const Vec3 rel =
      (norm2(ba) * cross(ca, n) + norm2(ca) * cross(n, ba)) / (2.0 * n2);
  out.center = a + rel;
  out.radius2 = norm2(rel);
  out.valid = true;
  return out;
}

double signed_volume(const Vec3& a, const Vec3& b, const Vec3& c,
                     const Vec3& d) {
  // Matches the predicate convention: orient3d > 0 <=> this is > 0.
  const Vec3 ad = a - d, bd = b - d, cd = c - d;
  return dot(ad, cross(bd, cd)) / 6.0;
}

double shortest_edge(const Vec3& a, const Vec3& b, const Vec3& c,
                     const Vec3& d) {
  const double e2 = std::min({distance2(a, b), distance2(a, c), distance2(a, d),
                              distance2(b, c), distance2(b, d), distance2(c, d)});
  return std::sqrt(e2);
}

double radius_edge_ratio(const Vec3& a, const Vec3& b, const Vec3& c,
                         const Vec3& d) {
  const Circumsphere cs = circumsphere(a, b, c, d);
  if (!cs.valid) return 1e300;
  const double se = shortest_edge(a, b, c, d);
  if (se <= 0.0) return 1e300;
  return std::sqrt(cs.radius2) / se;
}

std::array<double, 6> dihedral_angles(const Vec3& a, const Vec3& b,
                                      const Vec3& c, const Vec3& d) {
  const std::array<Vec3, 4> p{a, b, c, d};
  // Edge (i,j) with opposite edge (k,l): the dihedral angle along edge (i,j)
  // is the angle between faces (i,j,k) and (i,j,l).
  constexpr int edges[6][4] = {{0, 1, 2, 3}, {0, 2, 1, 3}, {0, 3, 1, 2},
                               {1, 2, 0, 3}, {1, 3, 0, 2}, {2, 3, 0, 1}};
  std::array<double, 6> out{};
  for (int e = 0; e < 6; ++e) {
    const Vec3& pi = p[edges[e][0]];
    const Vec3& pj = p[edges[e][1]];
    const Vec3& pk = p[edges[e][2]];
    const Vec3& pl = p[edges[e][3]];
    const Vec3 n1 = cross(pj - pi, pk - pi);
    const Vec3 n2 = cross(pj - pi, pl - pi);
    const double n1n = norm(n1), n2n = norm(n2);
    if (n1n <= 0.0 || n2n <= 0.0) {
      out[e] = 0.0;
      continue;
    }
    out[e] = std::acos(clamp_cos(dot(n1, n2) / (n1n * n2n))) * 180.0 / kPi;
  }
  return out;
}

std::array<double, 3> triangle_angles(const Vec3& a, const Vec3& b,
                                      const Vec3& c) {
  auto angle_at = [](const Vec3& apex, const Vec3& u, const Vec3& v) {
    const Vec3 e1 = u - apex, e2 = v - apex;
    const double n1 = norm(e1), n2 = norm(e2);
    if (n1 <= 0.0 || n2 <= 0.0) return 0.0;
    return std::acos(clamp_cos(dot(e1, e2) / (n1 * n2))) * 180.0 / kPi;
  };
  return {angle_at(a, b, c), angle_at(b, c, a), angle_at(c, a, b)};
}

double min_triangle_angle(const Vec3& a, const Vec3& b, const Vec3& c) {
  const auto ang = triangle_angles(a, b, c);
  return std::min({ang[0], ang[1], ang[2]});
}

}  // namespace pi2m
