// Tetrahedron and triangle metric computations: circumcenters, radii,
// volumes, the radius-edge ratio used by refinement rule R4, dihedral
// angles, and triangle planar angles used by rule R3 (paper §3).
#pragma once

#include <array>

#include "geometry/vec3.hpp"

namespace pi2m {

/// Circumcenter and squared circumradius of a tetrahedron.
struct Circumsphere {
  Vec3 center;
  double radius2 = 0.0;
  /// False when the tetrahedron is (numerically) degenerate; callers must
  /// treat such elements as infinitely bad.
  bool valid = false;
};

/// Solves the 3x3 system for the circumcenter relative to `a` (exact in the
/// absence of rounding; uses the scaled Cramer formulation which is stable
/// for well-shaped elements and flags near-flat ones).
Circumsphere circumsphere(const Vec3& a, const Vec3& b, const Vec3& c,
                          const Vec3& d);

/// Circumcenter and squared circumradius of triangle (a,b,c) in 3D.
Circumsphere triangle_circumcircle(const Vec3& a, const Vec3& b, const Vec3& c);

/// Signed volume: positive when orient3d(a,b,c,d) > 0 under the predicate
/// convention used throughout this library.
double signed_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

/// Length of the shortest of the six edges.
double shortest_edge(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

/// Circumradius over shortest edge. Returns a large sentinel (1e300) for
/// degenerate elements so they always classify as poor.
double radius_edge_ratio(const Vec3& a, const Vec3& b, const Vec3& c,
                         const Vec3& d);

/// The six dihedral angles (degrees), unordered.
std::array<double, 6> dihedral_angles(const Vec3& a, const Vec3& b,
                                      const Vec3& c, const Vec3& d);

/// The three interior angles (degrees) of triangle (a,b,c).
std::array<double, 3> triangle_angles(const Vec3& a, const Vec3& b,
                                      const Vec3& c);

/// Smallest interior angle (degrees) of triangle (a,b,c).
double min_triangle_angle(const Vec3& a, const Vec3& b, const Vec3& c);

}  // namespace pi2m
