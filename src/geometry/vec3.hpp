// 3D vector used throughout PI2M. Plain aggregate, value semantics.
#pragma once

#include <array>
#include <cmath>
#include <iosfwd>

namespace pi2m {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

  friend constexpr Vec3 operator+(const Vec3& a, const Vec3& b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(const Vec3& a, const Vec3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(double s, const Vec3& a) {
    return {s * a.x, s * a.y, s * a.z};
  }
  friend constexpr Vec3 operator*(const Vec3& a, double s) { return s * a; }
  friend constexpr Vec3 operator/(const Vec3& a, double s) {
    return {a.x / s, a.y / s, a.z / s};
  }
  Vec3& operator+=(const Vec3& b) {
    x += b.x; y += b.y; z += b.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& b) {
    x -= b.x; y -= b.y; z -= b.z;
    return *this;
  }
  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

constexpr double norm2(const Vec3& a) { return dot(a, a); }

inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

inline double distance(const Vec3& a, const Vec3& b) { return norm(a - b); }

constexpr double distance2(const Vec3& a, const Vec3& b) { return norm2(a - b); }

inline Vec3 normalized(const Vec3& a) {
  const double n = norm(a);
  return n > 0.0 ? a / n : Vec3{0, 0, 0};
}

/// Axis-aligned bounding box.
struct Aabb {
  Vec3 lo{+1e300, +1e300, +1e300};
  Vec3 hi{-1e300, -1e300, -1e300};

  void expand(const Vec3& p) {
    lo.x = std::min(lo.x, p.x); lo.y = std::min(lo.y, p.y); lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x); hi.y = std::max(hi.y, p.y); hi.z = std::max(hi.z, p.z);
  }
  [[nodiscard]] bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }
  [[nodiscard]] Vec3 extent() const { return hi - lo; }
  [[nodiscard]] Vec3 center() const { return 0.5 * (lo + hi); }
  /// Grow symmetrically by `margin` in every direction.
  [[nodiscard]] Aabb inflated(double margin) const {
    return {lo - Vec3{margin, margin, margin}, hi + Vec3{margin, margin, margin}};
  }
};

}  // namespace pi2m
