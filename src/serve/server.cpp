#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"
#include "telemetry/json_writer.hpp"

namespace pi2m::serve {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool bind_unix(int fd, const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // a stale socket file from a dead daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = "bind(" + path + "): " + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace

struct SocketServer::Conn {
  int fd = -1;
  std::string in;   ///< bytes read, not yet newline-terminated
  std::string out;  ///< response bytes not yet written
  bool closing = false;
};

SocketServer::SocketServer(MeshService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {
  if (::pipe(stop_pipe_) != 0) {
    error_ = std::string("pipe: ") + std::strerror(errno);
    return;
  }
  set_nonblocking(stop_pipe_[0]);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  if (!bind_unix(fd, path_, &error_) || ::listen(fd, 64) != 0) {
    if (error_.empty()) {
      error_ = std::string("listen: ") + std::strerror(errno);
    }
    ::close(fd);
    return;
  }
  set_nonblocking(fd);
  listen_fd_ = fd;
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

void SocketServer::stop() {
  stopping_.store(true, std::memory_order_release);
  const char b = 1;
  // Best-effort wakeup; async-signal-safe (write on a pipe).
  [[maybe_unused]] const auto n = ::write(stop_pipe_[1], &b, 1);
}

std::string SocketServer::handle_request(const Request& req) {
  telemetry::JsonWriter w;
  switch (req.op) {
    case Request::Op::Invalid:
      return error_response(kBadRequest, req.error);

    case Request::Op::Ping:
      w.begin_object().kv("ok", true).kv("op", "ping").end_object();
      return w.str();

    case Request::Op::Submit: {
      const auto res = service_.submit(req.job, req.priority);
      if (!res.accepted) {
        return error_response(res.reject_code,
                              res.reject_code == kDraining
                                  ? "daemon is shutting down"
                                  : "queue is at capacity");
      }
      w.begin_object()
          .kv("ok", true)
          .kv("id", res.id)
          .kv("state", job_state_name(JobState::Queued))
          .kv("priority", priority_name(req.priority))
          .end_object();
      return w.str();
    }

    case Request::Op::Status: {
      const auto rec = service_.find(req.id);
      if (rec == nullptr) {
        return error_response(kNotFound,
                              "no job " + std::to_string(req.id));
      }
      const JobState s = rec->current_state();
      w.begin_object()
          .kv("ok", true)
          .kv("id", rec->id)
          .kv("state", job_state_name(s))
          .kv("priority", priority_name(rec->priority));
      if (s != JobState::Queued) {
        w.kv("queue_wait_sec", rec->queue_wait_sec);
      }
      if (rec->terminal()) {
        w.kv("mesh_sec", rec->mesh_sec)
            .kv("edt_cache_hit", rec->edt_cache_hit);
        if (!rec->error.empty()) w.kv("error", rec->error);
      }
      w.end_object();
      return w.str();
    }

    case Request::Op::Cancel: {
      const auto rec = service_.find(req.id);
      if (rec == nullptr) {
        return error_response(kNotFound,
                              "no job " + std::to_string(req.id));
      }
      const bool requested = service_.cancel(req.id);
      w.begin_object()
          .kv("ok", true)
          .kv("id", rec->id)
          .kv("cancelled", requested)
          .kv("state", job_state_name(rec->current_state()))
          .end_object();
      return w.str();
    }

    case Request::Op::Result: {
      const auto rec = service_.find(req.id);
      if (rec == nullptr) {
        return error_response(kNotFound,
                              "no job " + std::to_string(req.id));
      }
      if (!rec->terminal()) {
        return error_response(
            kNotFinished,
            "job " + std::to_string(req.id) + " is " +
                job_state_name(rec->current_state()));
      }
      w.begin_object()
          .kv("ok", true)
          .kv("id", rec->id)
          .kv("state", job_state_name(rec->current_state()))
          .kv("queue_wait_sec", rec->queue_wait_sec)
          .kv("mesh_sec", rec->mesh_sec)
          .kv("edt_cache_hit", rec->edt_cache_hit);
      if (!rec->error.empty()) w.kv("error", rec->error);
      w.key("manifest");
      if (rec->manifest_json.empty()) {
        w.null();  // cancelled before it ever ran
      } else {
        w.raw(rec->manifest_json);
      }
      w.end_object();
      return w.str();
    }

    case Request::Op::Stats: {
      w.begin_object().kv("ok", true).key("metrics");
      service_.metrics_snapshot().write_json(w);
      w.end_object();
      return w.str();
    }

    case Request::Op::Shutdown: {
      drain_ = req.drain;
      stop();
      w.begin_object()
          .kv("ok", true)
          .kv("mode", req.drain ? "drain" : "now")
          .end_object();
      return w.str();
    }
  }
  return error_response(kInternal, "unhandled op");
}

void SocketServer::handle_line(Conn& c, std::string_view line) {
  // Tolerate CRLF clients and skip blank keep-alive lines.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.remove_suffix(1);
  }
  if (line.empty()) return;
  c.out += handle_request(parse_request(line));
  c.out += '\n';
}

bool SocketServer::serve() {
  if (!ok()) return false;
  std::map<int, Conn> conns;
  std::vector<pollfd> fds;

  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({stop_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, c] : conns) {
      short ev = POLLIN;
      if (!c.out.empty()) ev |= POLLOUT;
      fds.push_back({fd, ev, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("poll: ") + std::strerror(errno);
      return false;
    }

    if ((fds[0].revents & POLLIN) != 0) break;  // stop() fired

    if ((fds[1].revents & POLLIN) != 0) {
      while (true) {
        const int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        set_nonblocking(cfd);
        Conn c;
        c.fd = cfd;
        conns.emplace(cfd, std::move(c));
      }
    }

    std::vector<int> dead;
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const auto it = conns.find(fds[i].fd);
      if (it == conns.end()) continue;
      Conn& c = it->second;
      const short re = fds[i].revents;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        dead.push_back(c.fd);
        continue;
      }
      if ((re & POLLIN) != 0) {
        char buf[4096];
        while (true) {
          const ssize_t n = ::read(c.fd, buf, sizeof buf);
          if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            if (c.in.size() > (std::size_t{64} << 20)) {
              // A line this long is not a protocol message; drop the peer
              // rather than buffering without bound.
              dead.push_back(c.fd);
              c.closing = true;
              break;
            }
            continue;
          }
          if (n == 0) {
            c.closing = true;  // peer shut down its write side
          }
          break;  // EAGAIN or EOF
        }
        if (c.closing && c.in.empty() && c.out.empty()) {
          dead.push_back(c.fd);
        }
        std::size_t start = 0;
        while (true) {
          const std::size_t nl = c.in.find('\n', start);
          if (nl == std::string::npos) break;
          handle_line(c, std::string_view(c.in).substr(start, nl - start));
          start = nl + 1;
        }
        c.in.erase(0, start);
      }
      if (!c.out.empty() && (re & (POLLOUT | POLLIN)) != 0) {
        const ssize_t n = ::write(c.fd, c.out.data(), c.out.size());
        if (n > 0) {
          c.out.erase(0, static_cast<std::size_t>(n));
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          dead.push_back(c.fd);
        }
      }
      if ((re & POLLHUP) != 0 && c.out.empty()) dead.push_back(c.fd);
      if (c.closing && c.out.empty()) dead.push_back(c.fd);
    }
    for (const int fd : dead) {
      const auto it = conns.find(fd);
      if (it == conns.end()) continue;
      ::close(fd);
      conns.erase(it);
    }
  }

  for (auto& [fd, c] : conns) {
    // Flush best-effort (the shutdown ack, typically) before closing.
    if (!c.out.empty()) {
      [[maybe_unused]] const auto n = ::write(fd, c.out.data(), c.out.size());
    }
    ::close(fd);
  }
  if (drain_) {
    service_.drain();
  } else {
    service_.shutdown_now();
  }
  return true;
}

bool request_over_socket(const std::string& socket_path,
                         const std::string& request_line,
                         std::string* response_line, std::string* error) {
  response_line->clear();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + socket_path;
    ::close(fd);
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *error = "connect(" + socket_path + "): " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  std::string msg = request_line;
  if (msg.empty() || msg.back() != '\n') msg += '\n';
  std::size_t off = 0;
  while (off < msg.size()) {
    const ssize_t n = ::write(fd, msg.data() + off, msg.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("write: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("read: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;  // daemon closed before a full line: fall through
    response_line->append(buf, static_cast<std::size_t>(n));
    const std::size_t nl = response_line->find('\n');
    if (nl != std::string::npos) {
      response_line->resize(nl);
      ::close(fd);
      return true;
    }
  }
  ::close(fd);
  if (!response_line->empty()) return true;  // line without trailing \n
  *error = "daemon closed the connection without a response";
  return false;
}

}  // namespace pi2m::serve
