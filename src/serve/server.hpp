// Local socket front-end of the meshing daemon.
//
// AF_UNIX stream socket, single poll loop, newline-delimited JSON (one
// request per line, one response line back; see serve/protocol.hpp).
// Request handling is O(request) — submissions are bounded-queue pushes,
// status/cancel are map lookups — so one poll thread comfortably fronts
// executors doing seconds of meshing work each; the loop never blocks on
// the service.
//
// Shutdown paths:
//   - stop() (signal-handler safe via the self-pipe): the loop exits, then
//     serve() drains the service (graceful; in-flight jobs finish).
//   - {"op":"shutdown","mode":"drain"}: same, after answering the client.
//   - {"op":"shutdown","mode":"now"}: cancels queued + running jobs first.
#pragma once

#include <atomic>
#include <string>

#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace pi2m::serve {

class SocketServer {
 public:
  /// Binds `socket_path` (unlinking a stale file first). `service` must
  /// outlive the server.
  SocketServer(MeshService& service, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// False when the socket could not be bound (error() says why).
  [[nodiscard]] bool ok() const { return listen_fd_ >= 0; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Runs the poll loop on the calling thread until stop() or a shutdown
  /// request, then drains the service. Returns false on a fatal socket
  /// error.
  bool serve();

  /// Wakes the poll loop and makes serve() return. Async-signal-safe:
  /// writes one byte to the self-pipe.
  void stop();

  /// After serve() returned: whether the final service teardown should be
  /// (or was) a drain (true) or an immediate cancel-everything (false).
  [[nodiscard]] bool drained() const { return drain_; }

 private:
  struct Conn;
  void handle_line(Conn& c, std::string_view line);
  std::string handle_request(const Request& req);

  MeshService& service_;
  std::string path_;
  std::string error_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  bool drain_ = true;
};

/// Client-side helper: connects, sends one request line, reads one
/// response line. Used by pi2m_submit, the loadgen, and the tests.
bool request_over_socket(const std::string& socket_path,
                         const std::string& request_line,
                         std::string* response_line, std::string* error);

}  // namespace pi2m::serve
