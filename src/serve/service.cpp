#include "serve/service.hpp"

#include <utility>

#include "runtime/stats.hpp"
#include "serve/protocol.hpp"
#include "support/arena_pool.hpp"

namespace pi2m::serve {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

MeshService::MeshService(ServiceConfig cfg)
    : cfg_(cfg),
      edt_cache_(cfg.edt_cache_bytes),
      queue_(cfg.queue_capacity) {
  const int n = std::max(1, cfg_.executors);
  executors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    executors_.emplace_back([this, i] { executor_loop(i); });
  }
}

MeshService::~MeshService() { shutdown_now(); }

MeshService::SubmitResult MeshService::submit(
    JobSpec spec, Priority pri, std::function<void()> on_start) {
  SubmitResult res;
  if (draining_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    res.reject_code = kDraining;
    return res;
  }
  auto rec = std::make_shared<JobRecord>();
  rec->priority = pri;
  rec->spec = std::move(spec);
  rec->submit_sec = now_sec();
  rec->on_start = std::move(on_start);
  {
    // The id is issued under the lock so ids are dense and the record is
    // findable before try_push can possibly schedule it.
    std::lock_guard<std::mutex> lk(jobs_mu_);
    rec->id = next_id_++;
    jobs_.emplace(rec->id, rec);
  }
  const auto pushed = queue_.try_push(rec, pri);
  if (pushed != JobQueue<std::shared_ptr<JobRecord>>::Push::Ok) {
    {
      std::lock_guard<std::mutex> lk(jobs_mu_);
      jobs_.erase(rec->id);
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    res.reject_code =
        pushed == JobQueue<std::shared_ptr<JobRecord>>::Push::Full
            ? kRejectedOverload
            : kDraining;
    return res;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  res.accepted = true;
  res.id = rec->id;
  return res;
}

std::shared_ptr<JobRecord> MeshService::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(jobs_mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

bool MeshService::cancel(std::uint64_t id) {
  const auto rec = find(id);
  if (rec == nullptr || rec->terminal()) return false;
  // The token first: if the job is between the queue pop and the Running
  // transition, the executor's pre-start check still sees it.
  rec->cancel.store(true, std::memory_order_release);
  const bool dequeued = queue_.remove_if(
      [&](const std::shared_ptr<JobRecord>& r) { return r->id == id; });
  if (dequeued) {
    rec->queue_wait_sec = now_sec() - rec->submit_sec;
    rec->error = "cancelled before start";
    finish(rec, JobState::Cancelled);
  }
  return true;
}

std::shared_ptr<JobRecord> MeshService::wait(std::uint64_t id) {
  const auto rec = find(id);
  if (rec == nullptr) return nullptr;
  std::unique_lock<std::mutex> lk(jobs_mu_);
  jobs_cv_.wait(lk, [&] { return rec->terminal(); });
  return rec;
}

void MeshService::finish(const std::shared_ptr<JobRecord>& rec,
                         JobState final_state) {
  switch (final_state) {
    case JobState::Done:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::Failed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::Cancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    default: break;
  }
  {
    // The terminal store happens under jobs_mu_ so wait()'s predicate
    // check and this notification cannot interleave into a missed wakeup.
    std::lock_guard<std::mutex> lk(jobs_mu_);
    rec->state.store(static_cast<int>(final_state),
                     std::memory_order_release);
  }
  jobs_cv_.notify_all();
}

void MeshService::executor_loop(int /*slot*/) {
  std::shared_ptr<JobRecord> rec;
  while (queue_.pop(&rec)) {
    if (rec->on_start) rec->on_start();
    if (rec->cancel.load(std::memory_order_acquire)) {
      // Cancelled between submission and here (or the remove_if raced the
      // pop and lost — the token still wins).
      if (!rec->terminal()) {
        rec->queue_wait_sec = now_sec() - rec->submit_sec;
        rec->error = "cancelled before start";
        finish(rec, JobState::Cancelled);
      }
      rec.reset();
      continue;
    }
    run_job(rec);
    rec.reset();  // release the record (and any pinned entries) promptly
  }
}

void MeshService::run_job(const std::shared_ptr<JobRecord>& rec) {
  rec->queue_wait_sec = now_sec() - rec->submit_sec;
  queue_wait_hist_.record_sec(rec->queue_wait_sec);
  rec->state.store(static_cast<int>(JobState::Running),
                   std::memory_order_release);
  running_.fetch_add(1, std::memory_order_relaxed);

  JobSpec spec = rec->spec;
  if (spec.mesh.threads <= 0) spec.mesh.threads = cfg_.default_threads;
  spec.mesh.warm_arena = cfg_.warm_arena;

  MeshJob job(std::move(spec));
  job.set_cancel(&rec->cancel);
  job.set_edt_cache(&edt_cache_);
  job.set_queue_wait(rec->queue_wait_sec);

  const double t0 = now_sec();
  const JobArtifacts& art = job.run();
  rec->mesh_sec = now_sec() - t0;
  mesh_hist_.record_sec(rec->mesh_sec);
  rec->edt_cache_hit = art.edt_cache_hit;
  rec->error = art.error;

  telemetry::RunManifest man = job.build_manifest("pi2m_serve");
  man.set_config("job_id", std::to_string(rec->id));
  man.set_config("priority", priority_name(rec->priority));
  rec->manifest_json = man.to_json();
  if (!cfg_.manifest_dir.empty()) {
    // Advisory artifact; the manifest also travels in the result response.
    [[maybe_unused]] const bool wrote = man.write(
        cfg_.manifest_dir + "/job_" + std::to_string(rec->id) + ".json");
  }

  running_.fetch_sub(1, std::memory_order_relaxed);
  finish(rec, art.ok            ? JobState::Done
              : art.cancelled   ? JobState::Cancelled
                                : JobState::Failed);
}

void MeshService::drain() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  draining_.store(true, std::memory_order_release);
  queue_.close();
  if (!joined_.exchange(true)) {
    for (auto& t : executors_) t.join();
  }
}

void MeshService::shutdown_now() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  draining_.store(true, std::memory_order_release);
  for (const auto& rec : queue_.close_and_clear()) {
    rec->cancel.store(true, std::memory_order_release);
    if (!rec->terminal()) {
      rec->queue_wait_sec = now_sec() - rec->submit_sec;
      rec->error = "cancelled at shutdown";
      finish(rec, JobState::Cancelled);
    }
  }
  {
    // Trip every in-flight job's token; the workers notice at the next
    // refinement-loop boundary.
    std::lock_guard<std::mutex> jl(jobs_mu_);
    for (const auto& [id, rec] : jobs_) {
      if (!rec->terminal()) rec->cancel.store(true, std::memory_order_release);
    }
  }
  if (!joined_.exchange(true)) {
    for (auto& t : executors_) t.join();
  }
}

telemetry::MetricsRegistry MeshService::metrics_snapshot() const {
  telemetry::MetricsRegistry reg;
  reg.set("serve.jobs.accepted", accepted_.load(std::memory_order_relaxed));
  reg.set("serve.jobs.rejected", rejected_.load(std::memory_order_relaxed));
  reg.set("serve.jobs.completed",
          completed_.load(std::memory_order_relaxed));
  reg.set("serve.jobs.failed", failed_.load(std::memory_order_relaxed));
  reg.set("serve.jobs.cancelled",
          cancelled_.load(std::memory_order_relaxed));
  reg.set("serve.jobs.running", running_.load(std::memory_order_relaxed));
  reg.set("serve.queue.depth", queue_.depth());
  reg.set("serve.queue.capacity", queue_.capacity());
  queue_wait_hist_.publish(reg, "serve.latency.queue_wait");
  mesh_hist_.publish(reg, "serve.latency.mesh");

  const EdtCache::Stats cs = edt_cache_.stats();
  reg.set("serve.edt_cache.hits", cs.hits);
  reg.set("serve.edt_cache.misses", cs.misses);
  reg.set("serve.edt_cache.coalesced", cs.coalesced);
  reg.set("serve.edt_cache.evictions", cs.evictions);
  reg.set("serve.edt_cache.bytes", cs.bytes);
  reg.set("serve.edt_cache.entries", cs.entries);
  reg.set("serve.edt_cache.budget_bytes", cs.budget_bytes);

  const ArenaPool::Stats as = ArenaPool::instance().stats();
  reg.set("serve.arena.acquires", as.acquires);
  reg.set("serve.arena.reuses", as.reuses);
  reg.set("serve.arena.releases", as.releases);
  reg.set("serve.arena.frees", as.frees);
  reg.set("serve.arena.cached_bytes", as.cached_bytes);
  reg.set("serve.arena.budget_bytes", as.budget_bytes);
  return reg;
}

}  // namespace pi2m::serve
