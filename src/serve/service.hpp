// MeshService: the long-lived meshing engine behind the daemon.
//
// Owns the admission-controlled priority queue, a fixed pool of executor
// threads (each running one MeshJob at a time with `threads` refinement
// workers), the shared EDT/oracle cache, and the serve-level metrics.
// Transport-agnostic: the socket server (serve/server.hpp) and the tests
// drive it directly through submit/status/cancel/result.
//
// Job lifecycle:  Queued -> Running -> Done | Failed | Cancelled
//                    \________________________________/
//                     cancel() at any point before a terminal state
//
// Cross-job isolation: each job runs a fresh MeshJob (fresh Refiner, fresh
// DelaunayMesh). Shared state is immutable by construction — cached EDT
// entries are const and content-addressed, warm arena blocks are raw
// storage placement-new'ed per job — so concurrent jobs cannot observe
// each other.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "imaging/edt_cache.hpp"
#include "pipeline/mesh_job.hpp"
#include "serve/job_queue.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/metrics_registry.hpp"

namespace pi2m::serve {

enum class JobState : int { Queued, Running, Done, Failed, Cancelled };
const char* job_state_name(JobState s);

struct ServiceConfig {
  int executors = 4;            ///< concurrent in-flight jobs
  std::size_t queue_capacity = 64;  ///< queued (not yet running) jobs
  int default_threads = 1;      ///< refinement workers per job when the
                                ///< request does not say
  std::size_t edt_cache_bytes = std::size_t{256} << 20;
  bool warm_arena = true;       ///< recycle mesh arena blocks across jobs
  std::string manifest_dir;     ///< when set, write job_<id>.json per job
};

/// One submitted job. State is an atomic so status polls never block a
/// running executor; result fields are written by the executor before the
/// terminal state is published (release) and read by protocol handlers
/// after observing it (acquire).
struct JobRecord {
  std::uint64_t id = 0;
  Priority priority = Priority::Normal;
  JobSpec spec;
  std::atomic<int> state{static_cast<int>(JobState::Queued)};
  std::atomic<bool> cancel{false};

  double submit_sec = 0.0;  ///< monotonic clock at admission
  // Written by the executor; published by the terminal state store.
  double queue_wait_sec = 0.0;
  double mesh_sec = 0.0;
  bool edt_cache_hit = false;
  std::string error;          ///< terminal Failed detail
  std::string manifest_json;  ///< full run manifest (Done/Failed/Cancelled)

  /// Test hook: runs on the executor right before the job starts (after
  /// the queue pop, before the Running transition). Lets tests hold the
  /// executors busy deterministically.
  std::function<void()> on_start;

  [[nodiscard]] JobState current_state() const {
    return static_cast<JobState>(state.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool terminal() const {
    const JobState s = current_state();
    return s == JobState::Done || s == JobState::Failed ||
           s == JobState::Cancelled;
  }
};

class MeshService {
 public:
  struct SubmitResult {
    bool accepted = false;
    std::uint64_t id = 0;
    const char* reject_code = nullptr;  ///< kRejectedOverload / kDraining
  };

  explicit MeshService(ServiceConfig cfg);
  /// Joins the executors; equivalent to shutdown_now() if still running.
  ~MeshService();

  MeshService(const MeshService&) = delete;
  MeshService& operator=(const MeshService&) = delete;

  /// Admission control: bounded-queue push or an explicit rejection.
  SubmitResult submit(JobSpec spec, Priority pri,
                      std::function<void()> on_start = nullptr);

  /// Looks up a job (any state); nullptr when the id was never issued.
  [[nodiscard]] std::shared_ptr<JobRecord> find(std::uint64_t id) const;

  /// Requests cancellation: a queued job is removed immediately; a running
  /// job's cancel token trips at the next refinement-loop boundary.
  /// Returns false when the id is unknown or the job already finished.
  bool cancel(std::uint64_t id);

  /// Blocks until the job reaches a terminal state (test/client helper).
  std::shared_ptr<JobRecord> wait(std::uint64_t id);

  /// Stops admissions, runs the backlog dry, joins the executors.
  void drain();
  /// Stops admissions, cancels the backlog and the running jobs, joins.
  void shutdown_now();
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// serve.* metrics + queue gauge + latency histograms + EDT cache and
  /// arena pool counters, as one registry snapshot.
  [[nodiscard]] telemetry::MetricsRegistry metrics_snapshot() const;

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  [[nodiscard]] EdtCache& edt_cache() { return edt_cache_; }

 private:
  void executor_loop(int slot);
  void run_job(const std::shared_ptr<JobRecord>& rec);
  void finish(const std::shared_ptr<JobRecord>& rec, JobState final_state);

  ServiceConfig cfg_;
  EdtCache edt_cache_;
  JobQueue<std::shared_ptr<JobRecord>> queue_;

  mutable std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;  ///< signaled on any terminal transition
  std::unordered_map<std::uint64_t, std::shared_ptr<JobRecord>> jobs_;
  std::uint64_t next_id_ = 1;

  std::vector<std::thread> executors_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> joined_{false};
  std::mutex lifecycle_mu_;  ///< serializes drain()/shutdown_now()

  // serve.jobs.* counters
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> running_{0};
  telemetry::LatencyHistogram queue_wait_hist_;
  telemetry::LatencyHistogram mesh_hist_;
};

}  // namespace pi2m::serve
