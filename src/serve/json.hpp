// Minimal JSON reader for the serving protocol (the write side reuses
// telemetry/json_writer.hpp).
//
// Recursive-descent parser producing a small DOM: null/bool/number/string/
// array/object. Scope is exactly what newline-delimited protocol messages
// need — full RFC 8259 value grammar, \uXXXX escapes decoded to UTF-8,
// depth-limited against adversarial nesting. Numbers are doubles (the
// protocol's integers — job ids, voxel counts — are well under 2^53).
//
// Also carries the base64 codec used to ship inline raw volumes through
// the text protocol.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pi2m::serve {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::Number), num_(d) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::String), str_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : kind_(Kind::Array), arr_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o)
      : kind_(Kind::Object),
        obj_(std::make_shared<JsonObject>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? str_ : kEmpty;
  }
  [[nodiscard]] const JsonArray& as_array() const {
    static const JsonArray kEmpty;
    return is_array() ? *arr_ : kEmpty;
  }
  [[nodiscard]] const JsonObject& as_object() const {
    static const JsonObject kEmpty;
    return is_object() ? *obj_ : kEmpty;
  }

  /// Object member lookup; a null value for missing keys / non-objects, so
  /// lookups chain without null checks: v["job"]["delta"].as_double(1.0).
  [[nodiscard]] const JsonValue& operator[](std::string_view key) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Shared so JsonValue stays cheaply copyable (the DOM is read-only after
  // parse; protocol handlers pass sub-values around by value).
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parses one JSON document. Returns nullopt-style: on failure the result
/// is null and *error (when given) says what went wrong and where.
JsonValue json_parse(std::string_view text, std::string* error = nullptr);

/// RFC 4648 base64 (standard alphabet, padded).
std::string base64_encode(const void* data, std::size_t len);
/// Strict decode: rejects bad characters / bad padding. Empty input is an
/// empty (successful) result.
bool base64_decode(std::string_view text, std::vector<std::uint8_t>* out);

}  // namespace pi2m::serve
