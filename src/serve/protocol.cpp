#include "serve/protocol.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "telemetry/json_writer.hpp"

namespace pi2m::serve {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::High: return "high";
    case Priority::Normal: return "normal";
    case Priority::Low: return "low";
  }
  return "?";
}

bool parse_priority(std::string_view name, Priority* out) {
  if (name == "high") {
    *out = Priority::High;
  } else if (name == "normal") {
    *out = Priority::Normal;
  } else if (name == "low") {
    *out = Priority::Low;
  } else {
    return false;
  }
  return true;
}

namespace {

bool decode_volume(const JsonValue& v, JobSpec* spec, std::string* error) {
  const int nx = static_cast<int>(v["nx"].as_int());
  const int ny = static_cast<int>(v["ny"].as_int());
  const int nz = static_cast<int>(v["nz"].as_int());
  if (nx < 1 || ny < 1 || nz < 1 || nx > 4096 || ny > 4096 || nz > 4096) {
    *error = "volume: bad dimensions";
    return false;
  }
  Vec3 spacing{1, 1, 1};
  Vec3 origin{0, 0, 0};
  const JsonArray& sp = v["spacing"].as_array();
  if (sp.size() == 3) {
    spacing = {sp[0].as_double(1), sp[1].as_double(1), sp[2].as_double(1)};
    if (spacing.x <= 0 || spacing.y <= 0 || spacing.z <= 0) {
      *error = "volume: spacing must be positive";
      return false;
    }
  }
  const JsonArray& org = v["origin"].as_array();
  if (org.size() == 3) {
    origin = {org[0].as_double(), org[1].as_double(), org[2].as_double()};
  }
  std::vector<std::uint8_t> labels;
  if (!base64_decode(v["labels_b64"].as_string(), &labels)) {
    *error = "volume: labels_b64 is not valid base64";
    return false;
  }
  const std::size_t want = static_cast<std::size_t>(nx) * ny * nz;
  if (labels.size() != want) {
    *error = "volume: labels_b64 decodes to " +
             std::to_string(labels.size()) + " bytes, want " +
             std::to_string(want);
    return false;
  }
  auto img = std::make_shared<LabeledImage3D>(nx, ny, nz, spacing, origin);
  static_assert(sizeof(Label) == 1, "wire format ships one byte per voxel");
  img->raw().assign(labels.begin(), labels.end());
  spec->inline_image = std::move(img);
  return true;
}

}  // namespace

bool decode_job(const JsonValue& j, JobSpec* spec, std::string* error) {
  if (!j.is_object()) {
    *error = "job must be an object";
    return false;
  }
  spec->input_path = j["input"].as_string();
  spec->phantom = j["phantom"].as_string();
  if (j["size"].is_number()) {
    spec->phantom_size = static_cast<int>(j["size"].as_int());
  }
  if (j["volume"].is_object() &&
      !decode_volume(j["volume"], spec, error)) {
    return false;
  }
  int inputs = 0;
  if (!spec->input_path.empty()) ++inputs;
  if (!spec->phantom.empty()) ++inputs;
  if (spec->inline_image != nullptr) ++inputs;
  if (inputs != 1) {
    *error = "job needs exactly one of input/phantom/volume";
    return false;
  }

  if (j["downsample"].is_number()) {
    spec->downsample = static_cast<int>(j["downsample"].as_int());
  }
  if (j["crop_pad"].is_number()) {
    spec->crop_pad = static_cast<int>(j["crop_pad"].as_int());
  }
  spec->mesh.delta = j["delta"].as_double(spec->mesh.delta);
  if (spec->mesh.delta <= 0) {
    *error = "delta must be positive";
    return false;
  }
  spec->mesh.radius_edge_bound =
      j["rho"].as_double(spec->mesh.radius_edge_bound);
  spec->mesh.min_planar_angle_deg =
      j["facet_angle"].as_double(spec->mesh.min_planar_angle_deg);
  spec->uniform_size = j["uniform_size"].as_double(spec->uniform_size);
  // 0 = "not specified": the service substitutes its configured default.
  spec->mesh.threads = static_cast<int>(j["threads"].as_int(0));
  if (j["cm"].is_string()) {
    const auto cm = parse_cm_name(j["cm"].as_string());
    if (!cm) {
      *error = "unknown contention manager '" + j["cm"].as_string() + "'";
      return false;
    }
    spec->mesh.contention_manager = *cm;
  }
  if (j["lb"].is_string()) {
    const auto lb = parse_lb_name(j["lb"].as_string());
    if (!lb) {
      *error = "unknown load balancer '" + j["lb"].as_string() + "'";
      return false;
    }
    spec->mesh.load_balancer = *lb;
  }
  if (j["interior"].is_string()) {
    const auto fill = parse_interior_name(j["interior"].as_string());
    if (!fill) {
      *error = "unknown interior fill '" + j["interior"].as_string() + "'";
      return false;
    }
    spec->mesh.interior = *fill;
  }
  spec->mesh.lattice_spacing =
      j["lattice_spacing"].as_double(spec->mesh.lattice_spacing);
  if (spec->mesh.lattice_spacing < 0) {
    *error = "lattice_spacing must be non-negative";
    return false;
  }
  spec->mesh.use_reference_walks =
      j["reference_walks"].as_bool(spec->mesh.use_reference_walks);
  if (j["smooth"].is_number()) {
    spec->smooth = static_cast<int>(j["smooth"].as_int());
  }
  spec->want_report = j["report"].as_bool(spec->want_report);
  spec->want_validation = j["validate"].as_bool(spec->want_validation);
  for (const JsonValue& out : j["outputs"].as_array()) {
    if (!out.is_string()) {
      *error = "outputs must be an array of paths";
      return false;
    }
    spec->outputs.push_back(out.as_string());
  }
  return true;
}

Request parse_request(std::string_view line) {
  Request req;
  std::string perr;
  const JsonValue root = json_parse(line, &perr);
  if (!root.is_object()) {
    req.error = perr.empty() ? "request must be a JSON object" : perr;
    return req;
  }
  const std::string& op = root["op"].as_string();
  if (op == "ping") {
    req.op = Request::Op::Ping;
  } else if (op == "submit") {
    if (root["priority"].is_string() &&
        !parse_priority(root["priority"].as_string(), &req.priority)) {
      req.error = "unknown priority '" + root["priority"].as_string() + "'";
      return req;
    }
    if (!decode_job(root["job"], &req.job, &req.error)) return req;
    req.op = Request::Op::Submit;
  } else if (op == "status" || op == "cancel" || op == "result") {
    if (!root["id"].is_number() || root["id"].as_int() < 0) {
      req.error = "missing or bad 'id'";
      return req;
    }
    req.id = static_cast<std::uint64_t>(root["id"].as_int());
    req.op = op == "status"   ? Request::Op::Status
             : op == "cancel" ? Request::Op::Cancel
                              : Request::Op::Result;
  } else if (op == "stats") {
    req.op = Request::Op::Stats;
  } else if (op == "shutdown") {
    const std::string& mode = root["mode"].as_string();
    if (!mode.empty() && mode != "drain" && mode != "now") {
      req.error = "shutdown mode must be 'drain' or 'now'";
      return req;
    }
    req.drain = mode != "now";
    req.op = Request::Op::Shutdown;
  } else {
    req.error = op.empty() ? "missing 'op'" : "unknown op '" + op + "'";
  }
  return req;
}

std::string error_response(const char* code, const std::string& detail) {
  telemetry::JsonWriter w;
  w.begin_object()
      .kv("ok", false)
      .kv("code", code)
      .kv("error", detail)
      .end_object();
  return w.str();
}

}  // namespace pi2m::serve
