// Wire protocol of the meshing daemon: newline-delimited JSON over a local
// stream socket. One request object per line, one response object per
// line, strictly request/response (no server push).
//
// Requests ({"op": ...}):
//   {"op":"ping"}
//   {"op":"submit","priority":"high|normal|low","job":{...}}
//   {"op":"status","id":N}
//   {"op":"cancel","id":N}
//   {"op":"result","id":N}
//   {"op":"stats"}
//   {"op":"shutdown","mode":"drain|now"}
//
// Job object (all knobs optional except one input):
//   "input": "/path/vol.mha"            — or —
//   "phantom": "ball", "size": 64       — or —
//   "volume": {"nx":..,"ny":..,"nz":..,
//              "spacing":[sx,sy,sz], "origin":[ox,oy,oz],
//              "labels_b64": "<base64 of nx*ny*nz label bytes>"}
//   "downsample", "crop_pad", "delta", "rho", "facet_angle",
//   "uniform_size", "threads", "cm", "lb", "smooth",
//   "interior": "lattice|delaunay", "lattice_spacing",
//   "reference_walks", "report", "validate", "outputs": ["/path/out.vtk"]
//
// Responses always carry "ok". Failures carry a stable machine-readable
// "code" (kRejectedOverload, kDraining, kNotFound, ...) plus a
// human-readable "error". See DESIGN.md "Serving architecture" for the
// job lifecycle these ops drive.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "pipeline/mesh_job.hpp"
#include "serve/job_queue.hpp"
#include "serve/json.hpp"

namespace pi2m::serve {

/// Stable failure codes (the protocol's contract; never renumber/rename).
inline constexpr const char* kRejectedOverload = "REJECTED_OVERLOAD";
inline constexpr const char* kDraining = "DRAINING";
inline constexpr const char* kNotFound = "NOT_FOUND";
inline constexpr const char* kNotFinished = "NOT_FINISHED";
inline constexpr const char* kBadRequest = "BAD_REQUEST";
inline constexpr const char* kInternal = "INTERNAL";

const char* priority_name(Priority p);
/// "high"/"normal"/"low"; anything else fails.
bool parse_priority(std::string_view name, Priority* out);

struct Request {
  enum class Op {
    Invalid,
    Ping,
    Submit,
    Status,
    Cancel,
    Result,
    Stats,
    Shutdown,
  };
  Op op = Op::Invalid;
  std::string error;        ///< why the request is Invalid
  std::uint64_t id = 0;     ///< status/cancel/result
  Priority priority = Priority::Normal;  ///< submit
  JobSpec job;              ///< submit
  bool drain = true;        ///< shutdown: drain (true) or now (false)
};

/// Parses one request line. Never throws; malformed input yields
/// Op::Invalid with `error` set.
Request parse_request(std::string_view line);

/// Decodes the "job" object into a JobSpec (defaults per JobSpec).
/// `threads` is left at 0 when absent so the service can apply its
/// configured per-job default.
bool decode_job(const JsonValue& j, JobSpec* spec, std::string* error);

/// {"ok":false,"code":code,"error":detail}
std::string error_response(const char* code, const std::string& detail);

}  // namespace pi2m::serve
