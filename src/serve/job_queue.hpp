// Bounded priority job queue for the meshing service.
//
// Three strict priority classes; FIFO within a class (two jobs at the same
// priority complete in submission order — the fairness contract the
// protocol documents). The bound is the admission-control backstop: when
// `size == capacity` try_push refuses immediately and the caller answers
// REJECTED_OVERLOAD, so a burst of submissions degrades into fast explicit
// rejections instead of an unbounded memory ramp.
//
// Blocking pop() is for the executor threads; close() wakes them all and
// lets them drain what is already queued before exiting (graceful drain),
// while close_and_clear() also discards the backlog (immediate shutdown —
// the caller owns notifying the discarded jobs).
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace pi2m::serve {

/// Strict priority classes; lower value runs first.
enum class Priority : int { High = 0, Normal = 1, Low = 2 };
inline constexpr int kPriorityClasses = 3;

template <typename T>
class JobQueue {
 public:
  enum class Push { Ok, Full, Closed };

  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  Push try_push(T item, Priority pri) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return Push::Closed;
      if (size_ >= capacity_) return Push::Full;
      classes_[static_cast<int>(pri)].push_back(std::move(item));
      ++size_;
    }
    cv_.notify_one();
    return Push::Ok;
  }

  /// Blocks until an item is available or the queue is closed and drained
  /// (returns false). Highest class first, FIFO within a class.
  bool pop(T* out) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;
    for (auto& q : classes_) {
      if (q.empty()) continue;
      *out = std::move(q.front());
      q.pop_front();
      --size_;
      return true;
    }
    return false;  // unreachable: size_ > 0 implies a non-empty class
  }

  /// Removes the first queued item matching `pred` (any class); returns
  /// whether one was removed. Cancel-before-start uses this.
  template <typename Pred>
  bool remove_if(Pred pred) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& q : classes_) {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (pred(*it)) {
          q.erase(it);
          --size_;
          return true;
        }
      }
    }
    return false;
  }

  /// Stops admissions; blocked pop() calls drain the backlog then return
  /// false. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// close() plus discarding the backlog. Returns the discarded items so
  /// the caller can mark them cancelled.
  std::deque<T> close_and_clear() {
    std::deque<T> dropped;
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
      for (auto& q : classes_) {
        for (auto& item : q) dropped.push_back(std::move(item));
        q.clear();
      }
      size_ = 0;
    }
    cv_.notify_all();
    return dropped;
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return size_;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<T>, kPriorityClasses> classes_;
  const std::size_t capacity_;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace pi2m::serve
