#include "serve/json.hpp"

#include <cctype>
#include <cstdlib>

namespace pi2m::serve {

const JsonValue& JsonValue::operator[](std::string_view key) const {
  static const JsonValue kNull;
  if (!is_object()) return kNull;
  const auto it = obj_->find(key);
  return it == obj_->end() ? kNull : it->second;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool expect(char c) {
    if (at_end() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return fail("bad literal");
    }
    pos += word.size();
    return true;
  }

  static void append_utf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool hex4(unsigned* out) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) return fail("truncated \\u escape");
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (at_end()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (text.substr(pos, 2) != "\\u") {
              return fail("lone high surrogate");
            }
            pos += 2;
            unsigned lo = 0;
            if (!hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("bad escape");
      }
    }
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos;
    if (!at_end() && text[pos] == '-') ++pos;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (!at_end() && text[pos] == '.') {
      ++pos;
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (!at_end() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (!at_end() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      return fail("bad number");
    }
    const std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    *out = JsonValue(d);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue();
        return true;
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case '[': {
        ++pos;
        JsonArray arr;
        skip_ws();
        if (!at_end() && peek() == ']') {
          ++pos;
        } else {
          while (true) {
            JsonValue v;
            if (!parse_value(&v, depth + 1)) return false;
            arr.push_back(std::move(v));
            skip_ws();
            if (at_end()) return fail("unterminated array");
            const char c = text[pos++];
            if (c == ']') break;
            if (c != ',') return fail("expected ',' or ']'");
          }
        }
        *out = JsonValue(std::move(arr));
        return true;
      }
      case '{': {
        ++pos;
        JsonObject obj;
        skip_ws();
        if (!at_end() && peek() == '}') {
          ++pos;
        } else {
          while (true) {
            skip_ws();
            std::string key;
            if (!parse_string(&key)) return false;
            skip_ws();
            if (!expect(':')) return false;
            JsonValue v;
            if (!parse_value(&v, depth + 1)) return false;
            obj.insert_or_assign(std::move(key), std::move(v));
            skip_ws();
            if (at_end()) return fail("unterminated object");
            const char c = text[pos++];
            if (c == '}') break;
            if (c != ',') return fail("expected ',' or '}'");
          }
        }
        *out = JsonValue(std::move(obj));
        return true;
      }
      default:
        return parse_number(out);
    }
  }
};

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

JsonValue json_parse(std::string_view text, std::string* error) {
  Parser p;
  p.text = text;
  JsonValue v;
  if (!p.parse_value(&v, 0)) {
    if (error != nullptr) *error = p.error;
    return JsonValue();
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error != nullptr) {
      *error = "trailing characters at offset " + std::to_string(p.pos);
    }
    return JsonValue();
  }
  return v;
}

std::string base64_encode(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::string out;
  out.reserve((len + 2) / 3 * 4);
  for (std::size_t i = 0; i < len; i += 3) {
    const std::uint32_t b0 = bytes[i];
    const std::uint32_t b1 = i + 1 < len ? bytes[i + 1] : 0;
    const std::uint32_t b2 = i + 2 < len ? bytes[i + 2] : 0;
    const std::uint32_t triple = (b0 << 16) | (b1 << 8) | b2;
    out.push_back(kB64Alphabet[(triple >> 18) & 0x3F]);
    out.push_back(kB64Alphabet[(triple >> 12) & 0x3F]);
    out.push_back(i + 1 < len ? kB64Alphabet[(triple >> 6) & 0x3F] : '=');
    out.push_back(i + 2 < len ? kB64Alphabet[triple & 0x3F] : '=');
  }
  return out;
}

bool base64_decode(std::string_view text, std::vector<std::uint8_t>* out) {
  out->clear();
  if (text.empty()) return true;
  if (text.size() % 4 != 0) return false;
  out->reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    const bool last = i + 4 == text.size();
    int pad = 0;
    std::uint32_t triple = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text[i + k];
      if (c == '=') {
        // Padding only in the last quantum, only in the final two slots.
        if (!last || k < 2) return false;
        ++pad;
        triple <<= 6;
        continue;
      }
      if (pad > 0) return false;  // data after '='
      const int v = b64_value(c);
      if (v < 0) return false;
      triple = (triple << 6) | static_cast<std::uint32_t>(v);
    }
    out->push_back(static_cast<std::uint8_t>((triple >> 16) & 0xFF));
    if (pad < 2) out->push_back(static_cast<std::uint8_t>((triple >> 8) & 0xFF));
    if (pad < 1) out->push_back(static_cast<std::uint8_t>(triple & 0xFF));
  }
  return true;
}

}  // namespace pi2m::serve
