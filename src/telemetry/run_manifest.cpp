#include "telemetry/run_manifest.hpp"

#include <cstdio>
#include <ctime>
#include <thread>

#include "telemetry/json_writer.hpp"

namespace pi2m::telemetry {

const char* build_git_describe() {
#ifdef PI2M_GIT_DESCRIBE
  return PI2M_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void RunManifest::set_config(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  set_config(key, buf);
}

void RunManifest::set_config(std::string_view key, int value) {
  set_config(key, std::to_string(value));
}

std::string RunManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "pi2m-manifest");
  w.kv("schema_version", kSchemaVersion);
  w.kv("tool", tool);
  w.kv("git", git);
  w.kv("timestamp", timestamp);
  w.key("host").begin_object();
  w.kv("hardware_threads",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.end_object();
  w.key("config").begin_object();
  for (const auto& [k, v] : config) w.kv(k, v);
  w.end_object();
  w.key("phases").begin_object();
  for (const auto& [name, sec] : phases) w.kv(name, sec);
  w.end_object();
  w.key("metrics");
  metrics.write_json(w);
  if (!notes.empty()) w.kv("notes", notes);
  w.end_object();
  return w.str();
}

bool RunManifest::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = to_json();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fputc('\n', f) != EOF && ok;
  return std::fclose(f) == 0 && ok;
}

}  // namespace pi2m::telemetry
