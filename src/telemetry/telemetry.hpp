// Low-overhead event tracing: per-thread ring buffers + Chrome trace export.
//
// Model
//  * A *session* is opened with begin() and closed with end(). While a
//    session is active, threads emit events into their own fixed-capacity
//    ring buffer (single producer, no locks, no allocation on the hot
//    path); overflow overwrites the oldest events and bumps a drop counter
//    that the exporters surface.
//  * Two event shapes: *spans* (RAII `Span`, recorded as one complete event
//    with start + duration when the scope exits) and *instants* (a point in
//    time with an optional integer argument). Span nesting needs no
//    bookkeeping — Chrome/Perfetto nest complete events on the same thread
//    lane by time containment.
//  * After the session ends (or the emitting threads have quiesced), the
//    rings are merged into one timeline: snapshot() for programmatic
//    access, chrome_trace_json()/write_chrome_trace() for the
//    chrome://tracing / Perfetto "traceEvents" format.
//
// Gating
//  * Compile time: building with PI2M_TELEMETRY_ENABLED=0 (CMake option
//    -DPI2M_TELEMETRY=OFF) turns Span/instant/set_thread_name into empty
//    inlines; the session/export API stays link-compatible and produces an
//    empty trace.
//  * Run time: with no active session, emission is one relaxed atomic load
//    and a predictable branch — cheap enough to leave the probes compiled
//    into the hot paths (the ≤2% overhead budget in DESIGN.md).
//
// Threading contract: begin()/end() must not race with emission (in
// practice: call them from the orchestrating thread before spawning /
// after joining workers). Emission itself is fully concurrent — each
// thread writes only its own ring. Export requires emitters to have
// quiesced (joined, or the session ended).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#ifndef PI2M_TELEMETRY_ENABLED
#define PI2M_TELEMETRY_ENABLED 1
#endif

namespace pi2m::telemetry {

// --- session control & export (available in both build modes) -------------

/// Opens a tracing session. Each emitting thread gets a ring of
/// `events_per_thread` slots (~56 B each). Re-opening a session resets all
/// rings and drop counters.
void begin(std::size_t events_per_thread = std::size_t{1} << 16);

/// Closes the session: emission stops, buffered events stay exportable.
void end();

/// True while a session is active (the run-time gate).
bool active();

/// Names the calling thread's lane in the exported trace ("worker 3").
/// No-op without an active session.
void set_thread_name(const std::string& name);

/// One merged, timestamp-sorted view of every buffered event.
struct TraceEventView {
  std::string thread;    ///< lane name ("worker 0", or "thread N")
  std::uint32_t tid = 0; ///< lane id (registration order)
  std::string name;
  std::string category;
  std::string arg_name;  ///< empty when the event carries no argument
  std::uint64_t ts_ns = 0;   ///< since session begin()
  std::uint64_t dur_ns = 0;  ///< 0 for instants
  std::uint64_t arg = 0;
  bool is_instant = false;
};
std::vector<TraceEventView> snapshot();

/// Events overwritten by ring overflow since begin(), summed over threads.
std::uint64_t dropped_events();

/// Events currently buffered (post-drop), summed over threads.
std::size_t event_count();

/// Chrome trace-event JSON ("traceEvents" array object format) of the
/// buffered events, with thread-name metadata and the drop counter in
/// "otherData".
std::string chrome_trace_json();
bool write_chrome_trace(const std::string& path);

// --- emission -------------------------------------------------------------

#if PI2M_TELEMETRY_ENABLED

namespace detail {
extern std::atomic<bool> g_enabled;
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
/// Slow paths (ring append); called only when a session is active.
void emit_complete(const char* name, const char* category,
                   std::uint64_t start_ns, const char* arg_name,
                   std::uint64_t arg);
void emit_instant(const char* name, const char* category,
                  const char* arg_name, std::uint64_t arg);
}  // namespace detail

/// Point event. All strings must have static storage duration (string
/// literals): the ring stores the pointers.
inline void instant(const char* name, const char* category = "pi2m",
                    const char* arg_name = nullptr, std::uint64_t arg = 0) {
  if (detail::g_enabled.load(std::memory_order_relaxed)) {
    detail::emit_instant(name, category, arg_name, arg);
  }
}

/// RAII span: records one complete event covering the scope's lifetime.
/// Strings must have static storage duration.
class Span {
 public:
  explicit Span(const char* name, const char* category = "pi2m")
      : name_(detail::g_enabled.load(std::memory_order_relaxed) ? name
                                                                : nullptr),
        category_(category) {
    if (name_) start_ns_ = detail::now_ns();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (name_) {
      detail::emit_complete(name_, category_, start_ns_, arg_name_, arg_);
    }
  }

  /// Attaches a numeric argument reported with the completed span
  /// (`arg_name` must be a string literal).
  void set_arg(const char* arg_name, std::uint64_t arg) {
    arg_name_ = arg_name;
    arg_ = arg;
  }

  /// Ends the span before scope exit (for back-to-back phases sharing one
  /// scope). Idempotent; the destructor then records nothing.
  void close() {
    if (name_) {
      detail::emit_complete(name_, category_, start_ns_, arg_name_, arg_);
      name_ = nullptr;
    }
  }

 private:
  const char* name_;  ///< nullptr => tracing was off at construction
  const char* category_;
  const char* arg_name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
};

#else  // !PI2M_TELEMETRY_ENABLED — compiled-out emission

inline void instant(const char*, const char* = "pi2m", const char* = nullptr,
                    std::uint64_t = 0) {}

class Span {
 public:
  explicit Span(const char*, const char* = "pi2m") {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void set_arg(const char*, std::uint64_t) {}
  void close() {}
};

#endif  // PI2M_TELEMETRY_ENABLED

}  // namespace pi2m::telemetry

// Scoped-span convenience macro (unique variable name per line).
#define PI2M_TRACE_CONCAT2(a, b) a##b
#define PI2M_TRACE_CONCAT(a, b) PI2M_TRACE_CONCAT2(a, b)
#define PI2M_TRACE_SPAN(name, category) \
  ::pi2m::telemetry::Span PI2M_TRACE_CONCAT(pi2m_tspan_, __LINE__)(name, category)
