#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>

#include "telemetry/json_writer.hpp"

namespace pi2m::telemetry {

#if PI2M_TELEMETRY_ENABLED

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// One event slot. Strings are static-storage pointers (string literals),
/// so a slot is POD and overwriting on ring wrap needs no destruction.
struct Event {
  const char* name = nullptr;
  const char* category = nullptr;
  const char* arg_name = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;
  bool is_instant = false;
};

/// Single-producer ring: only the owning thread writes `ring`/`head`/`name`.
/// Readers (export) run strictly after the producers quiesced, so plain
/// fields suffice and the hot path is a store + increment.
struct ThreadBuffer {
  std::vector<Event> ring;
  std::uint64_t head = 0;      ///< events ever pushed this session
  std::uint64_t session = 0;   ///< session these contents belong to
  std::uint32_t tid = 0;
  std::string name;
};

struct Registry {
  std::mutex mu;  ///< guards `buffers`/`free_buffers` (registration/export)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  /// Buffers whose owning thread exited, available for adoption by new
  /// threads. Without this a long-lived process (the meshing daemon) that
  /// traces per-request worker pools would register a fresh multi-MB ring
  /// for every worker of every job, unbounded; with it the footprint is
  /// capped by the peak number of *concurrently* live traced threads.
  std::vector<ThreadBuffer*> free_buffers;
  std::atomic<std::uint64_t> session{0};
  std::atomic<std::uint64_t> t0_ns{0};
  std::atomic<std::size_t> capacity{std::size_t{1} << 16};
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static teardown
  return *r;
}

thread_local ThreadBuffer* tl_buffer = nullptr;

/// Thread-exit hook: returns the thread's buffer to the free list. The
/// buffer (and its recorded events) stays in Registry::buffers for export;
/// only *ownership* is recycled, and the next adopting thread re-uses the
/// lane sequentially — the single-producer invariant holds because the
/// previous owner has exited before adoption (ordered by Registry::mu).
struct BufferReleaser {
  ~BufferReleaser() {
    if (tl_buffer == nullptr) return;
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.free_buffers.push_back(tl_buffer);
    tl_buffer = nullptr;
  }
};
thread_local BufferReleaser tl_releaser;

ThreadBuffer& local_buffer() {
  Registry& r = registry();
  ThreadBuffer* b = tl_buffer;
  if (b == nullptr) {
    std::lock_guard<std::mutex> lk(r.mu);
    // Adopt only lanes whose contents belong to a *finished* session.
    // Sharing a lane within the live session would let a late thread
    // overwrite the previous owner's events (ring pressure → drops) and
    // its thread attribution; such lanes stay parked until the next
    // session resets them.
    const std::uint64_t live = r.session.load(std::memory_order_acquire);
    for (std::size_t i = r.free_buffers.size(); i-- > 0;) {
      if (r.free_buffers[i]->session != live) {
        b = r.free_buffers[i];
        r.free_buffers.erase(r.free_buffers.begin() +
                             static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    if (b == nullptr) {
      auto owned = std::make_unique<ThreadBuffer>();
      b = owned.get();
      b->tid = static_cast<std::uint32_t>(r.buffers.size());
      b->name = "thread " + std::to_string(b->tid);
      r.buffers.push_back(std::move(owned));
    }
    tl_buffer = b;
    (void)tl_releaser;  // ODR-use: arm the thread-exit release hook
  }
  const std::uint64_t sid = r.session.load(std::memory_order_acquire);
  if (b->session != sid || b->ring.empty()) {
    b->ring.assign(r.capacity.load(std::memory_order_relaxed), Event{});
    b->head = 0;
    b->session = sid;
  }
  return *b;
}

void push(const Event& e) {
  ThreadBuffer& b = local_buffer();
  b.ring[b.head % b.ring.size()] = e;
  ++b.head;
}

std::uint64_t rel_ts(std::uint64_t abs_ns) {
  const std::uint64_t t0 =
      registry().t0_ns.load(std::memory_order_relaxed);
  return abs_ns > t0 ? abs_ns - t0 : 0;
}

}  // namespace

namespace detail {

void emit_complete(const char* name, const char* category,
                   std::uint64_t start_ns, const char* arg_name,
                   std::uint64_t arg) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;  // ended mid-span
  Event e;
  e.name = name;
  e.category = category;
  e.arg_name = arg_name;
  e.ts_ns = rel_ts(start_ns);
  const std::uint64_t end_ns = rel_ts(now_ns());
  e.dur_ns = end_ns > e.ts_ns ? end_ns - e.ts_ns : 0;
  e.arg = arg;
  push(e);
}

void emit_instant(const char* name, const char* category,
                  const char* arg_name, std::uint64_t arg) {
  Event e;
  e.name = name;
  e.category = category;
  e.arg_name = arg_name;
  e.ts_ns = rel_ts(now_ns());
  e.arg = arg;
  e.is_instant = true;
  push(e);
}

}  // namespace detail

void begin(std::size_t events_per_thread) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.capacity.store(std::max<std::size_t>(events_per_thread, 8),
                   std::memory_order_relaxed);
  r.t0_ns.store(detail::now_ns(), std::memory_order_relaxed);
  // Bumping the session invalidates every buffer lazily: each thread
  // re-initializes its own ring on its first event (no cross-thread writes).
  r.session.fetch_add(1, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
}

void end() { detail::g_enabled.store(false, std::memory_order_release); }

bool active() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  if (!active()) return;
  local_buffer().name = name;
}

namespace {

/// Buffers belonging to the current session, with their buffered window.
template <typename Fn>
void for_each_current_event(Fn&& fn) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const std::uint64_t sid = r.session.load(std::memory_order_acquire);
  for (const auto& b : r.buffers) {
    if (b->session != sid || b->ring.empty()) continue;
    const std::uint64_t cap = b->ring.size();
    const std::uint64_t count = std::min(b->head, cap);
    for (std::uint64_t i = b->head - count; i < b->head; ++i) {
      fn(*b, b->ring[i % cap]);
    }
  }
}

}  // namespace

std::vector<TraceEventView> snapshot() {
  std::vector<TraceEventView> out;
  for_each_current_event([&](const ThreadBuffer& b, const Event& e) {
    TraceEventView v;
    v.thread = b.name;
    v.tid = b.tid;
    v.name = e.name ? e.name : "";
    v.category = e.category ? e.category : "";
    v.arg_name = e.arg_name ? e.arg_name : "";
    v.ts_ns = e.ts_ns;
    v.dur_ns = e.dur_ns;
    v.arg = e.arg;
    v.is_instant = e.is_instant;
    out.push_back(std::move(v));
  });
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEventView& a, const TraceEventView& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::uint64_t dropped_events() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const std::uint64_t sid = r.session.load(std::memory_order_acquire);
  std::uint64_t dropped = 0;
  for (const auto& b : r.buffers) {
    if (b->session != sid || b->ring.empty()) continue;
    const std::uint64_t cap = b->ring.size();
    if (b->head > cap) dropped += b->head - cap;
  }
  return dropped;
}

std::size_t event_count() {
  std::size_t n = 0;
  for_each_current_event([&](const ThreadBuffer&, const Event&) { ++n; });
  return n;
}

std::string chrome_trace_json() {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Lane metadata first: process name + one thread_name record per lane.
  w.begin_object()
      .kv("name", "process_name")
      .kv("ph", "M")
      .kv("pid", 1)
      .kv("tid", 0)
      .key("args")
      .begin_object()
      .kv("name", "pi2m")
      .end_object()
      .end_object();
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    const std::uint64_t sid = r.session.load(std::memory_order_acquire);
    for (const auto& b : r.buffers) {
      if (b->session != sid || b->ring.empty()) continue;
      w.begin_object()
          .kv("name", "thread_name")
          .kv("ph", "M")
          .kv("pid", 1)
          .kv("tid", b->tid)
          .key("args")
          .begin_object()
          .kv("name", b->name)
          .end_object()
          .end_object();
    }
  }

  for (const TraceEventView& e : snapshot()) {
    w.begin_object()
        .kv("name", e.name)
        .kv("cat", e.category)
        .kv("ph", e.is_instant ? "i" : "X")
        .kv("pid", 1)
        .kv("tid", e.tid)
        .kv("ts", static_cast<double>(e.ts_ns) * 1e-3);  // microseconds
    if (e.is_instant) {
      w.kv("s", "t");  // thread-scoped instant
    } else {
      w.kv("dur", static_cast<double>(e.dur_ns) * 1e-3);
    }
    if (!e.arg_name.empty()) {
      w.key("args").begin_object().kv(e.arg_name, e.arg).end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData")
      .begin_object()
      .kv("schema", "pi2m-trace/1")
      .kv("dropped_events", dropped_events())
      .end_object();
  w.end_object();
  return w.str();
}

#else  // !PI2M_TELEMETRY_ENABLED — inert session API, empty exports

namespace {
bool g_active = false;
}

void begin(std::size_t) { g_active = true; }
void end() { g_active = false; }
bool active() { return g_active; }
void set_thread_name(const std::string&) {}
std::vector<TraceEventView> snapshot() { return {}; }
std::uint64_t dropped_events() { return 0; }
std::size_t event_count() { return 0; }

std::string chrome_trace_json() {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array().end_array();
  w.key("otherData")
      .begin_object()
      .kv("schema", "pi2m-trace/1")
      .kv("dropped_events", std::uint64_t{0})
      .kv("note", "built with PI2M_TELEMETRY=OFF")
      .end_object();
  w.end_object();
  return w.str();
}

#endif  // PI2M_TELEMETRY_ENABLED

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace pi2m::telemetry
