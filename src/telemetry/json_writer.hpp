// Minimal streaming JSON writer used by the telemetry exporters (Chrome
// trace files, metric snapshots, run manifests).
//
// Deliberately tiny: no DOM, no parsing — the writer appends tokens to a
// string and tracks just enough state (container stack + comma pending) to
// emit syntactically valid JSON. Keys and string values are escaped per
// RFC 8259; non-finite doubles (which JSON cannot represent) are emitted as
// the strings "inf" / "-inf" / "nan" so a consumer sees them explicitly
// instead of a parse error.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace pi2m::telemetry {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Emits `"name":` — must be followed by exactly one value/container.
  JsonWriter& key(std::string_view name) {
    comma();
    append_escaped(name);
    out_ += ':';
    pending_ = false;  // the upcoming value completes this member
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    comma();
    append_escaped(s);
    return done();
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    comma();
    out_ += b ? "true" : "false";
    return done();
  }
  JsonWriter& value(double d) {
    comma();
    if (!std::isfinite(d)) {
      append_escaped(std::isnan(d) ? "nan" : (d > 0 ? "inf" : "-inf"));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out_ += buf;
    }
    return done();
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out_ += buf;
    return done();
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out_ += buf;
    return done();
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null() {
    comma();
    out_ += "null";
    return done();
  }

  /// Splices a pre-rendered JSON value verbatim (one value's worth; the
  /// caller guarantees it is itself valid JSON). Lets composite documents
  /// embed already-serialized parts — e.g. a run manifest inside a serve
  /// protocol response — without re-parsing.
  JsonWriter& raw(std::string_view json) {
    comma();
    out_ += json;
    return done();
  }

  /// Shorthand for key(...).value(...).
  template <typename T>
  JsonWriter& kv(std::string_view name, const T& v) {
    return key(name).value(v);
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] bool complete() const { return stack_.empty() && !out_.empty(); }

  static std::string escaped(std::string_view s) {
    JsonWriter w;
    w.append_escaped(s);
    return w.out_;
  }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    stack_.push_back(c);
    pending_ = false;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    if (!stack_.empty()) stack_.pop_back();
    pending_ = true;
    return *this;
  }
  void comma() {
    if (pending_) out_ += ',';
    pending_ = false;
  }
  JsonWriter& done() {
    pending_ = true;
    return *this;
  }
  void append_escaped(std::string_view s) {
    out_ += '"';
    for (const char ch : s) {
      switch (ch) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            out_ += buf;
          } else {
            out_ += ch;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<char> stack_;
  bool pending_ = false;  ///< a sibling precedes the next element
};

}  // namespace pi2m::telemetry
