// Versioned machine-readable run report ("run manifest").
//
// One JSON document describes one run end-to-end: what was run (tool, git
// version, timestamp, host), how it was configured (stringly key/value
// mirror of the command line), where the time went (ordered phase
// timings), and every metric the run produced (a MetricsRegistry
// snapshot). This is the single producer format behind `pi2m
// --json-report`, the bench binaries' manifest output, and the
// BENCH_*.json trajectory entries — consumers parse one schema instead of
// per-binary hand-written JSON.
//
// Schema (version 1):
//   {
//     "schema": "pi2m-manifest",
//     "schema_version": 1,
//     "tool": "pi2m_cli",
//     "git": "<git describe or 'unknown'>",
//     "timestamp": "2026-08-06T12:00:00Z",
//     "host": { "hardware_threads": N },
//     "config": { "<flag>": "<value>", ... },
//     "phases": { "<name>_sec": seconds, ... },   // insertion-ordered
//     "metrics": { "<area>.<metric>": number|bool, ... },
//     "notes": "free text"                        // omitted when empty
//   }
// Consumers must ignore unknown keys; producers bump kSchemaVersion on any
// incompatible change (key removal or meaning change).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metrics_registry.hpp"

namespace pi2m::telemetry {

/// `git describe` of the built tree (baked in at configure time),
/// "unknown" outside a git checkout.
const char* build_git_describe();

/// Current time as "YYYY-MM-DDTHH:MM:SSZ" (UTC).
std::string iso8601_utc_now();

struct RunManifest {
  static constexpr int kSchemaVersion = 1;

  std::string tool;                 ///< producing binary ("pi2m_cli", ...)
  std::string git = build_git_describe();
  std::string timestamp = iso8601_utc_now();
  std::map<std::string, std::string, std::less<>> config;
  std::vector<std::pair<std::string, double>> phases;  ///< (name, seconds)
  MetricsRegistry metrics;
  std::string notes;

  void set_config(std::string_view key, std::string_view value) {
    config.insert_or_assign(std::string(key), std::string(value));
  }
  void set_config(std::string_view key, double value);
  void set_config(std::string_view key, int value);

  /// Appends a phase timing; phases keep insertion order (pipeline order).
  void add_phase(std::string_view name, double seconds) {
    phases.emplace_back(std::string(name), seconds);
  }

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] bool write(const std::string& path) const;
};

}  // namespace pi2m::telemetry
