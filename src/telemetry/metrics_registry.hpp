// Unified named-metric snapshot registry.
//
// Every counter the system produces — refiner ThreadStats totals, predicate
// filter-ladder counters, rule firings, quality/fidelity/validation reports
// — is published here under a dotted name ("refine.rollbacks",
// "quality.min_dihedral_deg") so one API serves the CLI's --metrics and
// --json-report outputs, the bench manifest emitters, and the tests.
// Collectors that translate the legacy structs live in
// telemetry/collectors.hpp; this class knows nothing about them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>

namespace pi2m::telemetry {

class JsonWriter;

struct MetricValue {
  enum class Kind : std::uint8_t { U64, F64, Bool };
  Kind kind = Kind::U64;
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;

  /// Numeric view regardless of kind (Bool -> 0/1).
  [[nodiscard]] double as_double() const {
    switch (kind) {
      case Kind::U64: return static_cast<double>(u);
      case Kind::F64: return d;
      case Kind::Bool: return b ? 1.0 : 0.0;
    }
    return 0.0;
  }
};

class MetricsRegistry {
 public:
  void set_u64(std::string_view name, std::uint64_t v);
  void set(std::string_view name, double v);
  void set(std::string_view name, bool v);
  /// Any non-bool integral publishes as U64 (negative values clamp to 0 —
  /// every counter in the system is a count).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void set(std::string_view name, T v) {
    set_u64(name, v < T{0} ? 0 : static_cast<std::uint64_t>(v));
  }

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::uint64_t u64(std::string_view name,
                                  std::uint64_t fallback = 0) const;
  [[nodiscard]] double f64(std::string_view name, double fallback = 0) const;
  [[nodiscard]] bool flag(std::string_view name, bool fallback = false) const;

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  [[nodiscard]] bool empty() const { return metrics_.empty(); }
  [[nodiscard]] const std::map<std::string, MetricValue, std::less<>>& all()
      const {
    return metrics_;
  }

  /// Copies every metric of `other` into this registry (`other` wins ties).
  void merge(const MetricsRegistry& other);

  /// Appends this registry as one JSON object value (caller provides the
  /// surrounding key); names sort lexicographically, so related metrics
  /// group together.
  void write_json(JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, MetricValue, std::less<>> metrics_;
};

}  // namespace pi2m::telemetry
