#include "telemetry/metrics_registry.hpp"

#include "telemetry/json_writer.hpp"

namespace pi2m::telemetry {

void MetricsRegistry::set_u64(std::string_view name, std::uint64_t v) {
  MetricValue m;
  m.kind = MetricValue::Kind::U64;
  m.u = v;
  metrics_.insert_or_assign(std::string(name), m);
}

void MetricsRegistry::set(std::string_view name, double v) {
  MetricValue m;
  m.kind = MetricValue::Kind::F64;
  m.d = v;
  metrics_.insert_or_assign(std::string(name), m);
}

void MetricsRegistry::set(std::string_view name, bool v) {
  MetricValue m;
  m.kind = MetricValue::Kind::Bool;
  m.b = v;
  metrics_.insert_or_assign(std::string(name), m);
}

bool MetricsRegistry::has(std::string_view name) const {
  return metrics_.find(name) != metrics_.end();
}

std::uint64_t MetricsRegistry::u64(std::string_view name,
                                   std::uint64_t fallback) const {
  const auto it = metrics_.find(name);
  if (it == metrics_.end()) return fallback;
  const MetricValue& m = it->second;
  switch (m.kind) {
    case MetricValue::Kind::U64: return m.u;
    case MetricValue::Kind::F64: return static_cast<std::uint64_t>(m.d);
    case MetricValue::Kind::Bool: return m.b ? 1 : 0;
  }
  return fallback;
}

double MetricsRegistry::f64(std::string_view name, double fallback) const {
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? fallback : it->second.as_double();
}

bool MetricsRegistry::flag(std::string_view name, bool fallback) const {
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? fallback : it->second.as_double() != 0.0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.metrics_) {
    metrics_.insert_or_assign(name, value);
  }
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  for (const auto& [name, m] : metrics_) {
    w.key(name);
    switch (m.kind) {
      case MetricValue::Kind::U64: w.value(m.u); break;
      case MetricValue::Kind::F64: w.value(m.d); break;
      case MetricValue::Kind::Bool: w.value(m.b); break;
    }
  }
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace pi2m::telemetry
