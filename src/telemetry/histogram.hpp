// Lock-free log-bucketed latency histogram for service-level metrics.
//
// Fixed storage (one cache-line-friendly array of atomic counters), safe
// for concurrent record() from any thread, and cheap enough to sit on every
// job completion. Buckets are powers of two of microseconds: bucket i
// covers [2^i, 2^(i+1)) µs, bucket 0 also absorbs sub-microsecond values —
// ~5 ns resolution error at p50 is irrelevant for millisecond-scale job
// latencies, while the fixed layout needs no configuration.
//
// Percentiles are estimated from the bucket counts with the geometric
// midpoint of the winning bucket; publish() emits the standard snapshot
// (count/sum/max + p50/p90/p95/p99) under a dotted prefix so the registry
// dump and run manifests carry service latency without bespoke plumbing.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/metrics_registry.hpp"

namespace pi2m::telemetry {

class LatencyHistogram {
 public:
  /// 2^0 .. 2^37 µs: sub-µs to ~38 hours, more than any job latency.
  static constexpr int kBuckets = 38;

  void record_sec(double seconds) {
    const double us = seconds * 1e6;
    const std::uint64_t ticks =
        us <= 1.0 ? 1 : static_cast<std::uint64_t>(us);
    int b = 63 - std::countl_zero(ticks);
    b = std::min(b, kBuckets - 1);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(ticks, std::memory_order_relaxed);
    std::uint64_t prev = max_us_.load(std::memory_order_relaxed);
    while (ticks > prev && !max_us_.compare_exchange_weak(
                               prev, ticks, std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    std::uint64_t count = 0;
    double sum_sec = 0.0;
    double max_sec = 0.0;
    double p50_sec = 0.0;
    double p90_sec = 0.0;
    double p95_sec = 0.0;
    double p99_sec = 0.0;
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    std::array<std::uint64_t, kBuckets> b{};
    for (int i = 0; i < kBuckets; ++i) {
      b[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += b[i];
    }
    s.sum_sec = 1e-6 * static_cast<double>(
                           sum_us_.load(std::memory_order_relaxed));
    s.max_sec = 1e-6 * static_cast<double>(
                           max_us_.load(std::memory_order_relaxed));
    s.p50_sec = percentile(b, s.count, 0.50);
    s.p90_sec = percentile(b, s.count, 0.90);
    s.p95_sec = percentile(b, s.count, 0.95);
    s.p99_sec = percentile(b, s.count, 0.99);
    return s;
  }

  /// Publishes "<prefix>.count", ".sum_sec", ".max_sec", ".p50_sec",
  /// ".p90_sec", ".p95_sec", ".p99_sec".
  void publish(MetricsRegistry& reg, std::string_view prefix) const {
    const Snapshot s = snapshot();
    const std::string p(prefix);
    reg.set(p + ".count", s.count);
    reg.set(p + ".sum_sec", s.sum_sec);
    reg.set(p + ".max_sec", s.max_sec);
    reg.set(p + ".p50_sec", s.p50_sec);
    reg.set(p + ".p90_sec", s.p90_sec);
    reg.set(p + ".p95_sec", s.p95_sec);
    reg.set(p + ".p99_sec", s.p99_sec);
  }

 private:
  static double percentile(const std::array<std::uint64_t, kBuckets>& b,
                           std::uint64_t count, double q) {
    if (count == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += b[i];
      if (seen >= std::max<std::uint64_t>(rank, 1)) {
        // Geometric midpoint of [2^i, 2^(i+1)) µs.
        return 1e-6 * std::exp2(static_cast<double>(i) + 0.5);
      }
    }
    return 0.0;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

}  // namespace pi2m::telemetry
