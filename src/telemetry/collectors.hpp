// Translators from the legacy per-module statistics structs into the
// unified MetricsRegistry namespace. Header-only on purpose: the registry
// core stays dependency-free (pi2m_telemetry links only pi2m_support) while
// these inline collectors may include any layer; each consumer (CLI, bench
// binaries, tests) already links the libraries whose structs it collects.
//
// Naming convention: "<area>.<metric>", lowercase, stable across PRs — the
// manifest consumers (BENCH_*.json trajectory, tools/trace_summary.py)
// treat these names as schema.
#pragma once

#include "core/pi2m.hpp"
#include "core/smoothing.hpp"
#include "core/validate.hpp"
#include "metrics/hausdorff.hpp"
#include "metrics/quality.hpp"
#include "predicates/predicates.hpp"
#include "predicates/predicates_simd.hpp"
#include "runtime/stats.hpp"
#include "telemetry/metrics_registry.hpp"

namespace pi2m::telemetry {

inline void collect_stats(MetricsRegistry& r, const StatsTotals& t) {
  r.set("refine.operations", t.operations);
  r.set("refine.insertions", t.insertions);
  r.set("refine.removals", t.removals);
  r.set("refine.rollbacks", t.rollbacks);
  r.set("refine.failed_ops", t.failed_ops);
  r.set("refine.cells_created", t.cells_created);
  r.set("refine.steals_intra_socket", t.steals_intra_socket);
  r.set("refine.steals_intra_blade", t.steals_intra_blade);
  r.set("refine.steals_inter_blade", t.steals_inter_blade);
  r.set("refine.steals_total", t.total_steals());
  r.set("refine.parks", t.parks);
  r.set("refine.unparks", t.unparks);
  r.set("refine.parked_sec", t.parked_sec);
  r.set("refine.contention_sec", t.contention_sec);
  r.set("refine.loadbalance_sec", t.loadbalance_sec);
  r.set("refine.rollback_sec", t.rollback_sec);
  r.set("refine.overhead_sec", t.total_overhead_sec());
}

inline void collect_outcome(MetricsRegistry& r, const RefineOutcome& o) {
  collect_stats(r, o.totals);
  r.set("refine.completed", o.completed);
  r.set("refine.livelocked", o.livelocked);
  r.set("refine.budget_exhausted", o.budget_exhausted);
  r.set("refine.cancelled", o.cancelled);
  r.set("refine.wall_sec", o.wall_sec);
  r.set("refine.edt_sec", o.edt_sec);
  r.set("refine.alive_cells", o.alive_cells);
  r.set("refine.mesh_cells", o.mesh_cells);
  r.set("refine.vertices", o.vertices);
  // rule_counts[0] is Rule::None (never fired); R1..R5 are the paper rules.
  r.set("rules.r1", o.rule_counts[1]);
  r.set("rules.r2", o.rule_counts[2]);
  r.set("rules.r3", o.rule_counts[3]);
  r.set("rules.r4", o.rule_counts[4]);
  r.set("rules.r5", o.rule_counts[5]);
  // Geometry-cache effectiveness (all zero when RefinerOptions disabled it).
  r.set("classify.cache.hits", o.classify_cache_hits);
  r.set("classify.cache.misses", o.classify_cache_misses);
  const double cache_total =
      static_cast<double>(o.classify_cache_hits + o.classify_cache_misses);
  r.set("classify.cache.hit_rate",
        cache_total > 0.0 ? static_cast<double>(o.classify_cache_hits) /
                                cache_total
                          : 0.0);
  r.set("classify.csp.hits", o.classify_csp_hits);
  r.set("classify.csp.misses", o.classify_csp_misses);
  // Hybrid interior fill (all zero when --interior=delaunay or the image
  // had no deep-interior band).
  r.set("lattice.cells_filled", o.lattice_cubes);
  r.set("lattice.tets", o.lattice_tets);
  r.set("lattice.interface_vertices", o.lattice_seeds);
  r.set("lattice.fill_sec", o.lattice_fill_sec);
  r.set("lattice.seed_sec", o.lattice_seed_sec);
}

inline void collect_predicates(MetricsRegistry& r,
                               const PredicateCounters& c) {
  r.set("predicates.orient3d_calls", c.orient3d_calls);
  r.set("predicates.orient3d_adapt", c.orient3d_adapt);
  r.set("predicates.orient3d_exact", c.orient3d_exact);
  r.set("predicates.insphere_calls", c.insphere_calls);
  r.set("predicates.insphere_adapt", c.insphere_adapt);
  r.set("predicates.insphere_exact", c.insphere_exact);
}

inline void collect_simd_predicates(MetricsRegistry& r,
                                    const SimdPredicateCounters& c) {
  r.set("predicates.simd.orient3d_batches", c.orient3d_batches);
  r.set("predicates.simd.orient3d_lanes", c.orient3d_lanes);
  r.set("predicates.simd.orient3d_fallback", c.orient3d_fallback);
  r.set("predicates.simd.insphere_batches", c.insphere_batches);
  r.set("predicates.simd.insphere_lanes", c.insphere_lanes);
  r.set("predicates.simd.insphere_fallback", c.insphere_fallback);
  const double lanes =
      static_cast<double>(c.orient3d_lanes + c.insphere_lanes);
  const double fallback =
      static_cast<double>(c.orient3d_fallback + c.insphere_fallback);
  // Fraction of batched lanes the vector filter could NOT certify (they
  // fell back to the scalar adaptive/exact ladder). 0 = every lane was
  // sign-certified by the SIMD stage-A filter.
  r.set("predicates.simd.fallback_rate", lanes > 0.0 ? fallback / lanes : 0.0);
}

inline void collect_mesh(MetricsRegistry& r, const TetMesh& m) {
  r.set("mesh.tets", m.num_tets());
  r.set("mesh.points", m.num_points());
  r.set("mesh.boundary_tris", m.boundary_tris.size());
}

/// Element throughput + interior/shell breakdown. `interior_tets` is the
/// template-tet count from the refine outcome; the remainder of the final
/// mesh is the Delaunay shell. `mesh_sec` is the meshing wall time
/// (refinement incl. lattice fill/seed; EDT excluded, as elements/s on the
/// serving path reuses cached EDTs).
inline void collect_throughput(MetricsRegistry& r, const TetMesh& m,
                               std::size_t interior_tets, double mesh_sec) {
  const std::size_t total = m.num_tets();
  const std::size_t interior = interior_tets < total ? interior_tets : total;
  r.set("mesh.interior_tets", interior);
  r.set("mesh.shell_tets", total - interior);
  r.set("mesh.elements_per_second",
        mesh_sec > 0.0 ? static_cast<double>(total) / mesh_sec : 0.0);
  r.set("mesh.us_per_element",
        total > 0 ? 1e6 * mesh_sec / static_cast<double>(total) : 0.0);
}

inline void collect_quality(MetricsRegistry& r, const QualityReport& q) {
  r.set("quality.num_tets", q.num_tets);
  r.set("quality.num_boundary_tris", q.num_boundary_tris);
  r.set("quality.max_radius_edge", q.max_radius_edge);
  r.set("quality.mean_radius_edge", q.mean_radius_edge);
  r.set("quality.min_dihedral_deg", q.min_dihedral_deg);
  r.set("quality.max_dihedral_deg", q.max_dihedral_deg);
  r.set("quality.min_boundary_planar_deg", q.min_boundary_planar_deg);
  r.set("quality.min_volume", q.min_volume);
  r.set("quality.total_volume", q.total_volume);
}

inline void collect_hausdorff(MetricsRegistry& r, const HausdorffResult& h) {
  r.set("fidelity.hausdorff", h.symmetric());
  r.set("fidelity.mesh_to_surface", h.mesh_to_surface);
  r.set("fidelity.surface_to_mesh", h.surface_to_mesh);
}

inline void collect_smoothing(MetricsRegistry& r, const SmoothingReport& s) {
  r.set("smoothing.moves_accepted", s.moves_accepted);
  r.set("smoothing.moves_rejected", s.moves_rejected);
  r.set("smoothing.min_dihedral_before", s.min_dihedral_before);
  r.set("smoothing.min_dihedral_after", s.min_dihedral_after);
}

inline void collect_validation(MetricsRegistry& r, const MeshValidation& v) {
  r.set("validation.ok", v.ok);
  r.set("validation.errors", v.errors.size());
  r.set("validation.connected_components", v.connected_components);
  r.set("validation.boundary_edges_nonmanifold",
        v.boundary_edges_nonmanifold);
}

}  // namespace pi2m::telemetry
