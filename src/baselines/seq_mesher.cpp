#include "baselines/seq_mesher.hpp"

#include <cmath>
#include <map>
#include <queue>

#include "core/spatial_grid.hpp"
#include "delaunay/local_dt.hpp"
#include "delaunay/mesh.hpp"  // kFaceOf, VertexKind
#include "geometry/tetra.hpp"
#include "runtime/stats.hpp"  // now_sec

namespace pi2m::baselines {
namespace {

/// Worst-first queue entry (largest circumradius first, CGAL-style).
struct QueueEntry {
  double key;
  int tet;
  bool operator<(const QueueEntry& o) const { return key < o.key; }
};

class SeqMesher {
 public:
  SeqMesher(const LabeledImage3D& img, const SeqMesherOptions& opt)
      : opt_(opt),
        oracle_(img, /*threads=*/1),
        box_(img.bounds().inflated(0.15 * norm(img.bounds().extent()))),
        dt_(box_),
        iso_grid_(box_, opt.delta) {
    kinds_.assign(4, VertexKind::Box);  // the auxiliary corners
  }

  SeqMesherResult run() {
    SeqMesherResult res;
    const double t0 = now_sec();

    // Bootstrap: the image bounding box corners play the virtual-box role.
    for (int b = 0; b < 8; ++b) {
      const Vec3 p{(b & 1) ? box_.hi.x : box_.lo.x,
                   (b & 2) ? box_.hi.y : box_.lo.y,
                   (b & 4) ? box_.hi.z : box_.lo.z};
      add_vertex(p, VertexKind::Box);
    }
    for (std::size_t t = 0; t < dt_.tets().size(); ++t) {
      schedule(static_cast<int>(t));
    }

    while (!queue_.empty() && insertions_ < opt_.op_budget) {
      const QueueEntry e = queue_.top();
      queue_.pop();
      if (!dt_.tets()[static_cast<std::size_t>(e.tet)].alive) continue;
      const bool acted = refine_tet(e.tet);
      // R1/R3 insert points away from the tet's circumsphere; when the tet
      // survives an *actual* insertion, re-examine it for the remaining
      // rules. (A rejected insertion must not re-schedule, or the queue
      // would never drain.)
      if (acted && dt_.tets()[static_cast<std::size_t>(e.tet)].alive) {
        schedule(e.tet);
      }
    }
    res.completed = queue_.empty();
    res.insertions = insertions_;
    res.wall_sec = now_sec() - t0;
    res.mesh = extract();
    return res;
  }

 private:
  int add_vertex(const Vec3& p, VertexKind kind) {
    const int idx = dt_.add_point(p);
    if (idx < 0) return -1;
    ++insertions_;
    kinds_.resize(static_cast<std::size_t>(idx) + 1, VertexKind::Box);
    kinds_[static_cast<std::size_t>(idx)] = kind;
    if (on_surface(kind)) {
      iso_grid_.insert(p, static_cast<VertexId>(idx));
    }
    for (const int t : dt_.last_created()) schedule(t);
    return idx;
  }

  [[nodiscard]] bool has_aux(int t) const {
    for (const int v : dt_.tets()[static_cast<std::size_t>(t)].v) {
      if (LocalDelaunay::is_aux(v)) return true;
    }
    return false;
  }

  [[nodiscard]] Circumsphere circum(int t) const {
    const auto& tet = dt_.tets()[static_cast<std::size_t>(t)];
    return circumsphere(dt_.point(tet.v[0]), dt_.point(tet.v[1]),
                        dt_.point(tet.v[2]), dt_.point(tet.v[3]));
  }

  void schedule(int t) {
    if (has_aux(t)) return;
    const Circumsphere cs = circum(t);
    if (!cs.valid) return;
    queue_.push({cs.radius2, t});
  }

  /// Applies the first matching rule R1/R2/R3/R4/R5 to tet t; returns
  /// whether an insertion was attempted.
  bool refine_tet(int t) {
    const auto& tet = dt_.tets()[static_cast<std::size_t>(t)];
    const Circumsphere cs = circum(t);
    if (!cs.valid) return false;
    const double r = std::sqrt(cs.radius2);

    if (oracle_.ball_may_intersect_surface(cs.center, r)) {
      const auto zhat = oracle_.closest_surface_point(cs.center);
      if (zhat && distance(cs.center, *zhat) <= r) {
        if (!iso_grid_.any_within(*zhat, opt_.delta)) {
          return add_vertex(*zhat, VertexKind::Isosurface) >= 0;
        }
        if (r > 2.0 * opt_.delta) {
          return insert_circumcenter(cs.center);
        }
      }
    }

    // R3: facet surface-centers.
    for (int i = 0; i < 4; ++i) {
      const int nb = tet.n[i];
      if (nb < 0 || has_aux(nb)) continue;
      const Circumsphere ncs = circum(nb);
      if (!ncs.valid) continue;
      if (!oracle_.segment_may_intersect_surface(cs.center, ncs.center))
        continue;
      const auto hit = oracle_.segment_surface_intersection(cs.center, ncs.center);
      if (!hit) continue;
      const Vec3& fa = dt_.point(tet.v[kFaceOf[i][0]]);
      const Vec3& fb = dt_.point(tet.v[kFaceOf[i][1]]);
      const Vec3& fc = dt_.point(tet.v[kFaceOf[i][2]]);
      const bool bad_angle =
          min_triangle_angle(fa, fb, fc) < opt_.min_planar_angle_deg;
      const bool off_surface =
          !on_surface(kinds_[static_cast<std::size_t>(tet.v[kFaceOf[i][0]])]) ||
          !on_surface(kinds_[static_cast<std::size_t>(tet.v[kFaceOf[i][1]])]) ||
          !on_surface(kinds_[static_cast<std::size_t>(tet.v[kFaceOf[i][2]])]);
      if (!bad_angle && !off_surface) continue;
      const double guard = 1e-3 * opt_.delta;
      if (distance(*hit, fa) < guard || distance(*hit, fb) < guard ||
          distance(*hit, fc) < guard) {
        continue;
      }
      return add_vertex(*hit, VertexKind::SurfaceCenter) >= 0;
    }

    if (!oracle_.inside(cs.center)) return false;
    const double shortest =
        shortest_edge(dt_.point(tet.v[0]), dt_.point(tet.v[1]),
                      dt_.point(tet.v[2]), dt_.point(tet.v[3]));
    if (shortest > 0.0 && r / shortest > opt_.rho_bound) {
      return insert_circumcenter(cs.center);
    }
    if (opt_.size_fn && r > opt_.size_fn(cs.center)) {
      return insert_circumcenter(cs.center);
    }
    return false;
  }

  /// Sequential baselines have no removals; instead a circumcenter landing
  /// within δ of a surface sample is rejected (the protecting-ball style
  /// guard restricted-Delaunay implementations use) and the encroached
  /// surface region is split instead (Ruppert-style), locally densifying
  /// the sample so the quality bound is still reached near ∂O. This is the
  /// work PI2M's R6 removals save.
  bool insert_circumcenter(const Vec3& c) {
    if (!box_.contains(c)) return false;
    if (iso_grid_.any_within(c, opt_.protect_factor * opt_.delta)) {
      const auto z = oracle_.closest_surface_point(c);
      if (z && !iso_grid_.any_within(*z, 0.45 * opt_.delta)) {
        return add_vertex(*z, VertexKind::SurfaceCenter) >= 0;
      }
      return false;
    }
    return add_vertex(c, VertexKind::Circumcenter) >= 0;
  }

  [[nodiscard]] TetMesh extract() const {
    TetMesh out;
    std::map<int, std::uint32_t> remap;
    auto map_vertex = [&](int v) {
      auto it = remap.find(v);
      if (it != remap.end()) return it->second;
      const auto idx = static_cast<std::uint32_t>(out.points.size());
      out.points.push_back(dt_.point(v));
      out.point_kinds.push_back(kinds_[static_cast<std::size_t>(v)]);
      remap.emplace(v, idx);
      return idx;
    };
    // Label per tet index (0 = dropped).
    std::vector<Label> keep(dt_.tets().size(), 0);
    for (std::size_t t = 0; t < dt_.tets().size(); ++t) {
      const auto& tet = dt_.tets()[t];
      if (!tet.alive || has_aux(static_cast<int>(t))) continue;
      const Circumsphere cs = circum(static_cast<int>(t));
      if (!cs.valid) continue;
      keep[t] = oracle_.label_at(cs.center);
    }
    for (std::size_t t = 0; t < dt_.tets().size(); ++t) {
      if (keep[t] == 0) continue;
      const auto& tet = dt_.tets()[t];
      out.tets.push_back({map_vertex(tet.v[0]), map_vertex(tet.v[1]),
                          map_vertex(tet.v[2]), map_vertex(tet.v[3])});
      out.tet_labels.push_back(keep[t]);
      for (int i = 0; i < 4; ++i) {
        const int nb = tet.n[i];
        const Label other = nb < 0 ? Label{0} : keep[static_cast<std::size_t>(nb)];
        if (other >= keep[t]) continue;
        out.boundary_tris.push_back({map_vertex(tet.v[kFaceOf[i][0]]),
                                     map_vertex(tet.v[kFaceOf[i][1]]),
                                     map_vertex(tet.v[kFaceOf[i][2]])});
      }
    }
    return out;
  }

  SeqMesherOptions opt_;
  IsosurfaceOracle oracle_;
  Aabb box_;
  LocalDelaunay dt_;
  SpatialHashGrid iso_grid_;
  std::vector<VertexKind> kinds_;
  std::priority_queue<QueueEntry> queue_;
  std::uint64_t insertions_ = 0;
};

}  // namespace

SeqMesherResult mesh_image_reference(const LabeledImage3D& img,
                                     const SeqMesherOptions& opt) {
  const double t0 = now_sec();
  SeqMesher mesher(img, opt);  // constructor computes the EDT
  const double edt = now_sec() - t0;
  SeqMesherResult res = mesher.run();
  res.edt_sec = edt;
  res.wall_sec += edt;
  return res;
}

}  // namespace pi2m::baselines
