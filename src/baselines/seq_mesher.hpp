// Reference-style sequential isosurface Delaunay mesher — the CGAL stand-in
// for the paper's single-threaded comparison (Table 6).
//
// CGAL itself is not installed in this environment (see DESIGN.md
// "Substitutions"); this baseline implements the same algorithm class CGAL
// Mesh_3 belongs to — sequential restricted-Delaunay refinement over a
// labeled image with a worst-element-first priority queue and exact
// predicates — in straightforward "reference" C++: a growing vector-based
// triangulation (delaunay/local_dt in incremental mode), per-operation
// container allocations, std::map face gluing, no pooling. The comparison
// against PI2M therefore measures what the paper measures: the engineering
// gap between an optimized concurrent implementation (run on one thread,
// locks and all) and a clean sequential one. Absolute CGAL numbers are not
// claimed.
#pragma once

#include "core/pi2m.hpp"
#include "core/sizing.hpp"
#include "imaging/isosurface.hpp"

namespace pi2m::baselines {

struct SeqMesherOptions {
  double delta = 2.0;
  double rho_bound = 2.0;
  double min_planar_angle_deg = 30.0;
  SizeFunction size_fn;
  /// Circumcenters closer than protect_factor*delta to a surface sample are
  /// rejected (and the encroached surface split instead). Without removals
  /// this guard is what guarantees termination; small values trade
  /// termination margin for near-surface element quality.
  double protect_factor = 0.1;
  std::uint64_t op_budget = std::uint64_t{1} << 28;
};

struct SeqMesherResult {
  TetMesh mesh;
  double wall_sec = 0.0;  ///< includes EDT (as the paper reports for PI2M)
  double edt_sec = 0.0;
  std::uint64_t insertions = 0;
  bool completed = false;
};

/// Runs the reference mesher on a labeled image.
SeqMesherResult mesh_image_reference(const LabeledImage3D& img,
                                     const SeqMesherOptions& opt);

}  // namespace pi2m::baselines
