// PLC-based sequential volume mesher — the TetGen stand-in (Table 6).
//
// TetGen is PLC-based (paper §2/§7): it receives the recovered isosurface
// triangulation as input and only fills the enclosed volume. Following the
// paper's protocol, this baseline takes the surface vertices recovered by
// PI2M, triangulates them (they become the boundary sample), and refines
// the interior by radius-edge ratio plus an optional sizing field. In/out
// classification uses a caller-provided oracle (the paper instead places
// per-tissue seed points — which it notes is fragile for thin tissues; an
// oracle is the robust equivalent). TetGen itself is not installed here;
// see DESIGN.md "Substitutions".
#pragma once

#include "core/pi2m.hpp"
#include "core/sizing.hpp"
#include "imaging/isosurface.hpp"

namespace pi2m::baselines {

struct PlcMesherOptions {
  double rho_bound = 2.0;
  SizeFunction size_fn;
  /// Circumcenters closer than this to a boundary vertex are rejected
  /// (boundary protection; keeps termination without boundary re-recovery).
  double protect_radius = 1.0;
  std::uint64_t op_budget = std::uint64_t{1} << 28;
};

struct PlcMesherResult {
  TetMesh mesh;
  double wall_sec = 0.0;
  std::uint64_t insertions = 0;
  bool completed = false;
};

/// `surface` supplies the boundary sample (its points of surface kind) and
/// `oracle` the in/out + label queries for element classification.
PlcMesherResult mesh_volume_from_surface(const TetMesh& surface,
                                         const IsosurfaceOracle& oracle,
                                         const PlcMesherOptions& opt);

}  // namespace pi2m::baselines
