#include "baselines/plc_mesher.hpp"

#include <cmath>
#include <map>
#include <queue>

#include "core/spatial_grid.hpp"
#include "delaunay/local_dt.hpp"
#include "delaunay/mesh.hpp"  // kFaceOf
#include "geometry/tetra.hpp"
#include "runtime/stats.hpp"

namespace pi2m::baselines {
namespace {

struct QueueEntry {
  double key;
  int tet;
  bool operator<(const QueueEntry& o) const { return key < o.key; }
};

class PlcMesher {
 public:
  PlcMesher(const TetMesh& surface, const IsosurfaceOracle& oracle,
            const PlcMesherOptions& opt)
      : opt_(opt),
        oracle_(oracle),
        box_(oracle.image().bounds().inflated(
            0.15 * norm(oracle.image().bounds().extent()))),
        dt_(box_),
        boundary_grid_(box_, std::max(opt.protect_radius, 1e-6)),
        surface_(surface) {}

  PlcMesherResult run() {
    PlcMesherResult res;
    const double t0 = now_sec();

    // Phase 1: insert the box corners, then the given boundary sample.
    for (int b = 0; b < 8; ++b) {
      const Vec3 p{(b & 1) ? box_.hi.x : box_.lo.x,
                   (b & 2) ? box_.hi.y : box_.lo.y,
                   (b & 4) ? box_.hi.z : box_.lo.z};
      add_point(p, /*boundary=*/false);
    }
    for (std::size_t i = 0; i < surface_.points.size(); ++i) {
      if (!on_surface(surface_.point_kinds[i])) continue;
      add_point(surface_.points[i], /*boundary=*/true);
    }

    // Phase 2: quality refinement of interior elements.
    for (std::size_t t = 0; t < dt_.tets().size(); ++t) {
      schedule(static_cast<int>(t));
    }
    while (!queue_.empty() && insertions_ < opt_.op_budget) {
      const QueueEntry e = queue_.top();
      queue_.pop();
      if (!dt_.tets()[static_cast<std::size_t>(e.tet)].alive) continue;
      refine_tet(e.tet);
    }
    res.completed = queue_.empty();
    res.insertions = insertions_;
    res.wall_sec = now_sec() - t0;
    res.mesh = extract();
    return res;
  }

 private:
  int add_point(const Vec3& p, bool boundary) {
    const int idx = dt_.add_point(p);
    if (idx < 0) return -1;
    ++insertions_;
    if (boundary) boundary_grid_.insert(p, static_cast<VertexId>(idx));
    for (const int t : dt_.last_created()) schedule(t);
    return idx;
  }

  [[nodiscard]] bool has_aux(int t) const {
    for (const int v : dt_.tets()[static_cast<std::size_t>(t)].v) {
      if (LocalDelaunay::is_aux(v)) return true;
    }
    return false;
  }

  [[nodiscard]] Circumsphere circum(int t) const {
    const auto& tet = dt_.tets()[static_cast<std::size_t>(t)];
    return circumsphere(dt_.point(tet.v[0]), dt_.point(tet.v[1]),
                        dt_.point(tet.v[2]), dt_.point(tet.v[3]));
  }

  void schedule(int t) {
    if (has_aux(t)) return;
    const Circumsphere cs = circum(t);
    if (!cs.valid) return;
    queue_.push({cs.radius2, t});
  }

  void refine_tet(int t) {
    const auto& tet = dt_.tets()[static_cast<std::size_t>(t)];
    const Circumsphere cs = circum(t);
    if (!cs.valid || !oracle_.inside(cs.center)) return;
    const double r = std::sqrt(cs.radius2);
    const double shortest =
        shortest_edge(dt_.point(tet.v[0]), dt_.point(tet.v[1]),
                      dt_.point(tet.v[2]), dt_.point(tet.v[3]));
    const bool bad_shape = shortest > 0.0 && r / shortest > opt_.rho_bound;
    const bool too_big = opt_.size_fn && r > opt_.size_fn(cs.center);
    if (!bad_shape && !too_big) return;
    if (!box_.contains(cs.center)) return;
    if (boundary_grid_.any_within(cs.center, opt_.protect_radius)) return;
    add_point(cs.center, /*boundary=*/false);
  }

  [[nodiscard]] TetMesh extract() const {
    TetMesh out;
    std::map<int, std::uint32_t> remap;
    auto map_vertex = [&](int v) {
      auto it = remap.find(v);
      if (it != remap.end()) return it->second;
      const auto idx = static_cast<std::uint32_t>(out.points.size());
      out.points.push_back(dt_.point(v));
      out.point_kinds.push_back(VertexKind::Circumcenter);
      remap.emplace(v, idx);
      return idx;
    };
    std::vector<Label> keep(dt_.tets().size(), 0);
    for (std::size_t t = 0; t < dt_.tets().size(); ++t) {
      const auto& tet = dt_.tets()[t];
      if (!tet.alive || has_aux(static_cast<int>(t))) continue;
      const Circumsphere cs = circum(static_cast<int>(t));
      if (!cs.valid) continue;
      keep[t] = oracle_.label_at(cs.center);
    }
    for (std::size_t t = 0; t < dt_.tets().size(); ++t) {
      if (keep[t] == 0) continue;
      const auto& tet = dt_.tets()[t];
      out.tets.push_back({map_vertex(tet.v[0]), map_vertex(tet.v[1]),
                          map_vertex(tet.v[2]), map_vertex(tet.v[3])});
      out.tet_labels.push_back(keep[t]);
      for (int i = 0; i < 4; ++i) {
        const int nb = tet.n[i];
        const Label other = nb < 0 ? Label{0} : keep[static_cast<std::size_t>(nb)];
        if (other >= keep[t]) continue;
        out.boundary_tris.push_back({map_vertex(tet.v[kFaceOf[i][0]]),
                                     map_vertex(tet.v[kFaceOf[i][1]]),
                                     map_vertex(tet.v[kFaceOf[i][2]])});
      }
    }
    return out;
  }

  PlcMesherOptions opt_;
  const IsosurfaceOracle& oracle_;
  Aabb box_;
  LocalDelaunay dt_;
  SpatialHashGrid boundary_grid_;
  const TetMesh& surface_;
  std::priority_queue<QueueEntry> queue_;
  std::uint64_t insertions_ = 0;
};

}  // namespace

PlcMesherResult mesh_volume_from_surface(const TetMesh& surface,
                                         const IsosurfaceOracle& oracle,
                                         const PlcMesherOptions& opt) {
  PlcMesher mesher(surface, oracle, opt);
  return mesher.run();
}

}  // namespace pi2m::baselines
