#include "runtime/contention.hpp"

#include <algorithm>
#include <random>
#include <thread>

#include "support/common.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {
namespace {

/// Blocking a thread is only safe when at least one other thread remains
/// active (neither CM-blocked nor idle); otherwise the would-be waker may
/// never run (paper §5.3's active-thread rule, applied to all blocking CMs).
bool may_block(const CmContext& ctx, int currently_blocked) {
  const int idle =
      ctx.idle_threads ? ctx.idle_threads->load(std::memory_order_acquire) : 0;
  return currently_blocked + idle + 1 < ctx.nthreads;
}

class AggressiveCm final : public ContentionManager {
 public:
  void on_success(int) override {}
  void on_rollback(int, int, ThreadStats&) override {}
};

class RandomCm final : public ContentionManager {
 public:
  RandomCm(CmContext ctx, int r_plus)
      : ctx_(ctx), r_plus_(r_plus), consecutive_(ctx.nthreads) {
    for (auto& c : consecutive_) c.v = 0;
  }

  void on_success(int tid) override { consecutive_[tid].v = 0; }

  void on_rollback(int tid, int /*conflicting*/, ThreadStats& stats) override {
    if (++consecutive_[tid].v <= r_plus_) return;
    consecutive_[tid].v = 0;
    // Seeded per thread id when the context carries a seed, so fuzz runs can
    // reproduce the backoff stream; random_device otherwise (historical).
    thread_local std::mt19937 rng = [&] {
      if (ctx_.seed != 0) {
        std::seed_seq seq{static_cast<unsigned>(ctx_.seed),
                          static_cast<unsigned>(ctx_.seed >> 32),
                          static_cast<unsigned>(tid)};
        return std::mt19937(seq);
      }
      return std::mt19937(std::random_device{}());
    }();
    std::uniform_int_distribution<int> ms(1, r_plus_);
    telemetry::Span cm_span("cm.backoff", "cm");
    const double t0 = now_sec();
    const double deadline = t0 + ms(rng) * 1e-3;
    while (now_sec() < deadline &&
           !ctx_.done->load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    stats.add_contention(now_sec() - t0);
  }

 private:
  struct alignas(64) PaddedInt {
    int v;
  };
  CmContext ctx_;
  int r_plus_;
  std::vector<PaddedInt> consecutive_;
};

class GlobalCm final : public ContentionManager {
 public:
  GlobalCm(CmContext ctx, int s_plus)
      : ctx_(ctx), s_plus_(s_plus), per_thread_(ctx.nthreads) {}

  void on_success(int tid) override {
    PerThread& me = per_thread_[tid];
    if (++me.successes < s_plus_) return;
    me.successes = 0;
    wake_one();
  }

  void on_rollback(int tid, int /*conflicting*/, ThreadStats& stats) override {
    PerThread& me = per_thread_[tid];
    me.successes = 0;
    if (!may_block(ctx_, blocked_.load(std::memory_order_acquire))) return;

    me.wait.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      queue_.push_back(tid);
    }
    blocked_.fetch_add(1, std::memory_order_acq_rel);
    telemetry::Span cm_span("cm.wait", "cm");
    const double t0 = now_sec();
    while (me.wait.load(std::memory_order_acquire) &&
           !ctx_.done->load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    blocked_.fetch_sub(1, std::memory_order_acq_rel);
    stats.add_contention(now_sec() - t0);
  }

  void wake_one() override {
    int victim = -1;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!queue_.empty()) {
        victim = queue_.front();
        queue_.pop_front();
      }
    }
    if (victim >= 0) {
      per_thread_[victim].wait.store(false, std::memory_order_release);
    }
  }

  void wake_all() override {
    std::lock_guard<std::mutex> lk(mutex_);
    while (!queue_.empty()) {
      per_thread_[queue_.front()].wait.store(false, std::memory_order_release);
      queue_.pop_front();
    }
  }

  [[nodiscard]] int blocked_count() const override {
    return blocked_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) PerThread {
    int successes = 0;
    std::atomic<bool> wait{false};
  };
  CmContext ctx_;
  int s_plus_;
  std::vector<PerThread> per_thread_;
  std::mutex mutex_;               // guards queue_ (the global CL)
  std::deque<int> queue_;
  std::atomic<int> blocked_{0};
};

// Local-CM: direct transcription of paper Fig. 2 with the busy_wait /
// conflicting_id protocol. The per-thread mutexes are locked in
// (max, min) id order as in the paper's pseudocode, which (together with
// the busy_wait check) yields Lemmas 1 and 2.
class LocalCm final : public ContentionManager {
 public:
  LocalCm(CmContext ctx, int s_plus)
      : ctx_(ctx), s_plus_(s_plus), per_thread_(ctx.nthreads) {}

  void on_success(int tid) override {
    PerThread& me = per_thread_[tid];
    me.conflicting_id.store(-1, std::memory_order_relaxed);
    if (++me.successes < s_plus_) return;
    me.successes = 0;
    wake_from_cl(tid);
  }

  void on_rollback(int tid, int conflicting, ThreadStats& stats) override {
    PerThread& me = per_thread_[tid];
    me.successes = 0;
    if (conflicting < 0 || conflicting >= ctx_.nthreads || conflicting == tid)
      return;
    me.conflicting_id.store(conflicting, std::memory_order_relaxed);
    if (!may_block(ctx_, blocked_.load(std::memory_order_acquire))) return;

    PerThread& other = per_thread_[conflicting];
    PerThread& first = per_thread_[std::max(tid, conflicting)];
    PerThread& second = per_thread_[std::min(tid, conflicting)];
    bool will_block;
    {
      std::scoped_lock lk(first.mutex, second.mutex);
      if (other.busy_wait.load(std::memory_order_acquire)) {
        // The thread we depend on has itself decided to block: blocking too
        // could close a dependency cycle, so we must not (paper Fig. 2c
        // lines 6-10; Lemma 1).
        will_block = false;
      } else {
        me.busy_wait.store(true, std::memory_order_release);
        will_block = true;
      }
    }
    if (!will_block) return;

    {
      std::lock_guard<std::mutex> lk(other.cl_mutex);
      other.cl.push_back(tid);
    }
    blocked_.fetch_add(1, std::memory_order_acq_rel);
    telemetry::Span cm_span("cm.wait", "cm");
    cm_span.set_arg("on", static_cast<std::uint64_t>(conflicting));
    const double t0 = now_sec();
    while (me.busy_wait.load(std::memory_order_acquire) &&
           !ctx_.done->load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    blocked_.fetch_sub(1, std::memory_order_acq_rel);
    stats.add_contention(now_sec() - t0);
  }

  void wake_one() override {
    for (int t = 0; t < ctx_.nthreads; ++t) {
      if (wake_from_cl(t)) return;
    }
  }

  void wake_all() override {
    for (int t = 0; t < ctx_.nthreads; ++t) {
      while (wake_from_cl(t)) {
      }
    }
  }

  [[nodiscard]] int blocked_count() const override {
    return blocked_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) PerThread {
    int successes = 0;
    std::atomic<int> conflicting_id{-1};
    std::atomic<bool> busy_wait{false};
    std::mutex mutex;     // serializes the block/no-block decision (Fig. 2c)
    std::mutex cl_mutex;  // guards cl
    std::vector<int> cl;  // threads waiting on this thread
  };

  /// Pops the first waiter of thread t's CL and releases it. Note that a
  /// thread about to block must NOT flush its own CL (paper Fig. 4 shows
  /// the livelock that would cause); waiters are only released on progress.
  bool wake_from_cl(int t) {
    PerThread& owner = per_thread_[t];
    int victim = -1;
    {
      std::lock_guard<std::mutex> lk(owner.cl_mutex);
      if (!owner.cl.empty()) {
        victim = owner.cl.front();
        owner.cl.erase(owner.cl.begin());
      }
    }
    if (victim < 0) return false;
    per_thread_[victim].busy_wait.store(false, std::memory_order_release);
    return true;
  }

  CmContext ctx_;
  int s_plus_;
  std::vector<PerThread> per_thread_;
  std::atomic<int> blocked_{0};
};

}  // namespace

const char* to_string(CmKind k) {
  switch (k) {
    case CmKind::Aggressive:
      return "Aggressive-CM";
    case CmKind::Random:
      return "Random-CM";
    case CmKind::Global:
      return "Global-CM";
    case CmKind::Local:
      return "Local-CM";
  }
  return "?";
}

std::unique_ptr<ContentionManager> make_contention_manager(CmKind kind,
                                                           CmContext ctx,
                                                           int r_plus,
                                                           int s_plus) {
  PI2M_CHECK(ctx.done != nullptr, "CM context needs a done flag");
  switch (kind) {
    case CmKind::Aggressive:
      return std::make_unique<AggressiveCm>();
    case CmKind::Random:
      return std::make_unique<RandomCm>(ctx, r_plus);
    case CmKind::Global:
      return std::make_unique<GlobalCm>(ctx, s_plus);
    case CmKind::Local:
      return std::make_unique<LocalCm>(ctx, s_plus);
  }
  return nullptr;
}

}  // namespace pi2m
