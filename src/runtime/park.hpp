// Per-thread parking for the adaptive idle policy (replaces raw spinning
// on the begging-list work flag).
//
// A ThreadParker is an eventcount for exactly one sleeper: the owning
// thread calls park(timeout); any other thread calls unpark(). The state
// machine (Empty -> Parked -> Empty, with Notified absorbing early wakes)
// guarantees no lost wake-up: an unpark() that races ahead of the matching
// park() leaves a token that makes the park() return immediately.
//
// Parks are always *timed* — the refiner re-checks its idle invariants
// (done flag, inbox, termination condition) on every wake, so a bounded
// park doubles as a liveness backstop: even if every wake signal were
// missed the system re-examines the world every timeout period.
//
// Implementation: a futex on the state word on Linux release builds; a
// mutex + condition_variable everywhere else (non-Linux, and sanitizer
// builds, where the raw syscall would be invisible to TSan's interceptors).
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__linux__) && !defined(PI2M_UNDER_SANITIZER)
#define PI2M_PARK_FUTEX 1
#else
#define PI2M_PARK_FUTEX 0
#include <condition_variable>
#include <mutex>
#endif

namespace pi2m {

class alignas(64) ThreadParker {
 public:
  ThreadParker() = default;
  ThreadParker(const ThreadParker&) = delete;
  ThreadParker& operator=(const ThreadParker&) = delete;

  /// Blocks the owning thread for at most `timeout_us` microseconds, or
  /// until unpark(). Consumes a pending wake token and returns immediately
  /// if unpark() already happened. Returns true when woken by unpark()
  /// (possibly a token), false on timeout.
  bool park(std::uint64_t timeout_us);

  /// Wakes the owner if parked; otherwise leaves a token so the next
  /// park() returns immediately. Any thread may call this.
  void unpark();

 private:
  enum State : int { kEmpty = 0, kParked = 1, kNotified = 2 };

  std::atomic<int> state_{kEmpty};
#if !PI2M_PARK_FUTEX
  std::mutex mutex_;
  std::condition_variable cv_;
#endif
};

}  // namespace pi2m
