// Contention managers (paper §5).
//
// A rollback means a thread attempted to acquire a vertex already owned by
// another thread. The contention manager (CM) decides what the rolled-back
// thread does next. Four schemes from the paper:
//
//  * Aggressive-CM — do nothing, retry greedily. Non-blocking; livelocks in
//    practice on high thread counts (paper Table 1).
//  * Random-CM — after r+ consecutive rollbacks sleep a random 1..r+ ms.
//    Non-blocking; livelocks are rare but possible (observed at 256 cores).
//  * Global-CM — blocked threads queue on one global FIFO Contention List;
//    a thread that completes s+ consecutive operations wakes the head.
//    Blocking => livelock-free; deadlock avoided by never blocking the last
//    active thread.
//  * Local-CM — per-thread Contention Lists plus the busy_wait/conflicting_id
//    handshake of paper Fig. 2, which provably breaks dependency cycles
//    (Lemmas 1 & 2): in any cycle at least one thread blocks and at least
//    one does not.
//
// All busy-waits yield (mandatory on the single-core reproduction host) and
// abort on the global done flag. Waited time is charged to the thread's
// contention overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/stats.hpp"

namespace pi2m {

enum class CmKind : std::uint8_t { Aggressive, Random, Global, Local };

const char* to_string(CmKind k);

/// Shared context the CM consults while blocking.
struct CmContext {
  const std::atomic<bool>* done = nullptr;      ///< global stop flag
  std::atomic<int>* idle_threads = nullptr;     ///< threads parked on begging lists
  int nthreads = 1;
  /// Seed for randomized CM decisions (Random-CM backoff). 0 = seed from
  /// std::random_device (historical behaviour); non-zero makes the per-
  /// thread backoff streams reproducible across runs (fuzzing/replay).
  std::uint64_t seed = 0;
};

class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  /// Called after every successfully completed operation.
  virtual void on_success(int tid) = 0;

  /// Called after a rollback caused by `conflicting` (-1 if unknown). May
  /// block the calling thread; blocked time is charged to stats.
  virtual void on_rollback(int tid, int conflicting, ThreadStats& stats) = 0;

  /// Wakes one blocked thread if any; called by threads about to idle on a
  /// begging list so system-wide progress can never stall (generalizes the
  /// paper's active-thread accounting of Global-CM to all schemes).
  virtual void wake_one() {}

  /// Wakes everyone (termination / livelock abort).
  virtual void wake_all() {}

  /// Number of threads currently blocked inside the CM.
  [[nodiscard]] virtual int blocked_count() const { return 0; }
};

/// Factory. `r_plus` and `s_plus` follow the paper defaults (5 and 10).
std::unique_ptr<ContentionManager> make_contention_manager(CmKind kind,
                                                           CmContext ctx,
                                                           int r_plus = 5,
                                                           int s_plus = 10);

}  // namespace pi2m
