#include "runtime/stats.hpp"

namespace pi2m {

StatsTotals aggregate(const std::vector<ThreadStats>& stats) {
  StatsTotals t;
  for (const ThreadStats& s : stats) {
    t.operations += s.operations.load(std::memory_order_relaxed);
    t.insertions += s.insertions.load(std::memory_order_relaxed);
    t.removals += s.removals.load(std::memory_order_relaxed);
    t.rollbacks += s.rollbacks.load(std::memory_order_relaxed);
    t.failed_ops += s.failed_ops.load(std::memory_order_relaxed);
    t.cells_created += s.cells_created.load(std::memory_order_relaxed);
    t.steals_intra_socket += s.steals_intra_socket.load(std::memory_order_relaxed);
    t.steals_intra_blade += s.steals_intra_blade.load(std::memory_order_relaxed);
    t.steals_inter_blade += s.steals_inter_blade.load(std::memory_order_relaxed);
    t.parks += s.parks.load(std::memory_order_relaxed);
    t.unparks += s.unparks_sent.load(std::memory_order_relaxed);
    t.parked_sec += s.parked_ns.load(std::memory_order_relaxed) * 1e-9;
    t.contention_sec += s.contention_ns.load(std::memory_order_relaxed) * 1e-9;
    t.loadbalance_sec += s.loadbalance_ns.load(std::memory_order_relaxed) * 1e-9;
    t.rollback_sec += s.rollback_ns.load(std::memory_order_relaxed) * 1e-9;
  }
  return t;
}

}  // namespace pi2m
