#include "runtime/workstealing.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>

#include "support/common.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {
namespace {

// ---------------------------------------------------------------------------
// Lock-free slot arrays
// ---------------------------------------------------------------------------

/// Fixed-capacity set of thread ids with CAS-claimed slots. The paper caps
/// every begging-list level at a handful of entries, so a linear scan over
/// the array is both wait-free (one bounded pass, no retry loop) and cache
/// cheap (the whole array is a few words).
class SlotArray {
 public:
  explicit SlotArray(int capacity)
      : slots_(static_cast<std::size_t>(std::max(capacity, 0))) {
    for (auto& s : slots_) s.store(kEmpty, std::memory_order_relaxed);
  }

  /// Claims the first empty slot for `tid`; false when all slots are taken.
  bool try_put(int tid) {
    for (auto& s : slots_) {
      int expected = kEmpty;
      if (s.load(std::memory_order_relaxed) == kEmpty &&
          s.compare_exchange_strong(expected, tid, std::memory_order_release,
                                    std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Claims and returns the first occupied slot's tid; -1 when empty.
  int try_take() {
    for (auto& s : slots_) {
      int tid = s.load(std::memory_order_acquire);
      if (tid != kEmpty &&
          s.compare_exchange_strong(tid, kEmpty, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
        return tid;
      }
    }
    return -1;
  }

  /// Removes `tid` if still present (it can occupy at most one slot).
  bool try_remove(int tid) {
    for (auto& s : slots_) {
      int expected = tid;
      if (s.load(std::memory_order_relaxed) == tid &&
          s.compare_exchange_strong(expected, kEmpty,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

 private:
  static constexpr int kEmpty = -1;
  std::vector<std::atomic<int>> slots_;
};

// ---------------------------------------------------------------------------
// Lock-free balancers
// ---------------------------------------------------------------------------

class RwsLockFreeBalancer final : public LoadBalancer {
 public:
  explicit RwsLockFreeBalancer(const Topology& topo)
      : LoadBalancer(topo), list_(topo.threads()) {}

  void enqueue_beggar(int tid) override {
    telemetry::instant("lb.beg", "lb");
    mark_begging(tid);
    // One slot per thread and a thread occupies at most one => a full pass
    // can only fail against transient claim races; retry until placed.
    while (!list_.try_put(tid)) std::this_thread::yield();
    count_.fetch_add(1, std::memory_order_release);
  }

  int pop_beggar(int giver, StealLevel* level) override {
    if (count_.load(std::memory_order_acquire) == 0) return -1;
    const int beggar = list_.try_take();
    if (beggar < 0) return -1;
    count_.fetch_sub(1, std::memory_order_release);
    if (level != nullptr) *level = classify(giver, beggar);
    return beggar;
  }

  void cancel(int tid) override {
    if (list_.try_remove(tid)) count_.fetch_sub(1, std::memory_order_release);
    clear_begging(tid);
  }

  [[nodiscard]] bool any_beggar() const override {
    return count_.load(std::memory_order_acquire) > 0;
  }

 private:
  SlotArray list_;
  std::atomic<int> count_{0};
};

class HwsLockFreeBalancer final : public LoadBalancer {
 public:
  explicit HwsLockFreeBalancer(const Topology& topo) : LoadBalancer(topo) {
    bl1_.reserve(static_cast<std::size_t>(topo.num_sockets()));
    for (int s = 0; s < topo.num_sockets(); ++s) {
      bl1_.emplace_back(topo.threads_per_socket() - 1);
    }
    const int sockets_per_blade =
        topo.threads_per_blade() / topo.threads_per_socket();
    bl2_.reserve(static_cast<std::size_t>(topo.num_blades()));
    bl3_.reserve(static_cast<std::size_t>(topo.num_blades()));
    for (int b = 0; b < topo.num_blades(); ++b) {
      bl2_.emplace_back(sockets_per_blade - 1);
      bl3_.emplace_back(1);
    }
  }

  void enqueue_beggar(int tid) override {
    telemetry::instant("lb.beg", "lb");
    mark_begging(tid);
    const int s = topo_.socket_of(tid);
    const int b = topo_.blade_of(tid);
    // Level selection per paper §6.1, expressed as claim-or-overflow: BL1
    // while the socket level has a free slot (capacity tps-1), then BL2
    // (capacity sockets_per_blade-1), then the blade's single BL3 slot.
    // The capacities sum to threads_per_blade, and each thread holds at
    // most one slot, so a full pass can only fail against transient claim
    // races; retry until placed.
    for (;;) {
      if (bl1_[static_cast<std::size_t>(s)].try_put(tid)) break;
      if (bl2_[static_cast<std::size_t>(b)].try_put(tid)) break;
      if (bl3_[static_cast<std::size_t>(b)].try_put(tid)) break;
      std::this_thread::yield();
    }
    count_.fetch_add(1, std::memory_order_release);
  }

  int pop_beggar(int giver, StealLevel* level) override {
    if (count_.load(std::memory_order_acquire) == 0) return -1;
    const int s = topo_.socket_of(giver);
    const int b = topo_.blade_of(giver);
    // HWS locality order: own socket, own blade, then machine-wide.
    int beggar = bl1_[static_cast<std::size_t>(s)].try_take();
    if (beggar < 0) beggar = bl2_[static_cast<std::size_t>(b)].try_take();
    for (std::size_t ob = 0; beggar < 0 && ob < bl3_.size(); ++ob) {
      beggar = bl3_[ob].try_take();
    }
    if (beggar < 0) return -1;
    count_.fetch_sub(1, std::memory_order_release);
    if (level != nullptr) *level = classify(giver, beggar);
    return beggar;
  }

  void cancel(int tid) override {
    // A thread only ever claims slots at its own socket/blade, so cancel
    // is O(levels): three small scans instead of the old O(n) deque erase.
    const std::size_t s = static_cast<std::size_t>(topo_.socket_of(tid));
    const std::size_t b = static_cast<std::size_t>(topo_.blade_of(tid));
    if (bl1_[s].try_remove(tid) || bl2_[b].try_remove(tid) ||
        bl3_[b].try_remove(tid)) {
      count_.fetch_sub(1, std::memory_order_release);
    }
    clear_begging(tid);
  }

  [[nodiscard]] bool any_beggar() const override {
    return count_.load(std::memory_order_acquire) > 0;
  }

 private:
  std::vector<SlotArray> bl1_;  ///< per socket, capacity tps-1
  std::vector<SlotArray> bl2_;  ///< per blade, capacity sockets_per_blade-1
  std::vector<SlotArray> bl3_;  ///< one slot per blade
  std::atomic<int> count_{0};
};

// ---------------------------------------------------------------------------
// Mutex balancers (escape hatch: SchedulerImpl::Mutex / --mutex-scheduler)
// ---------------------------------------------------------------------------

void erase_value(std::deque<int>& q, int v) {
  q.erase(std::remove(q.begin(), q.end(), v), q.end());
}

class RwsMutexBalancer final : public LoadBalancer {
 public:
  explicit RwsMutexBalancer(const Topology& topo) : LoadBalancer(topo) {}

  void enqueue_beggar(int tid) override {
    telemetry::instant("lb.beg", "lb");
    mark_begging(tid);
    std::lock_guard<std::mutex> lk(mutex_);
    list_.push_back(tid);
    count_.fetch_add(1, std::memory_order_release);
  }

  int pop_beggar(int giver, StealLevel* level) override {
    if (count_.load(std::memory_order_acquire) == 0) return -1;
    int beggar = -1;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!list_.empty()) {
        beggar = list_.front();
        list_.pop_front();
        count_.fetch_sub(1, std::memory_order_release);
      }
    }
    if (beggar >= 0 && level != nullptr) *level = classify(giver, beggar);
    return beggar;
  }

  void cancel(int tid) override {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      const auto before = list_.size();
      erase_value(list_, tid);
      if (list_.size() != before)
        count_.fetch_sub(1, std::memory_order_release);
    }
    clear_begging(tid);
  }

  [[nodiscard]] bool any_beggar() const override {
    return count_.load(std::memory_order_acquire) > 0;
  }

 private:
  std::mutex mutex_;
  std::deque<int> list_;
  std::atomic<int> count_{0};
};

class HwsMutexBalancer final : public LoadBalancer {
 public:
  explicit HwsMutexBalancer(const Topology& topo)
      : LoadBalancer(topo),
        bl1_(topo.num_sockets()),
        bl2_(topo.num_blades()) {}

  void enqueue_beggar(int tid) override {
    telemetry::instant("lb.beg", "lb");
    mark_begging(tid);
    const int s = topo_.socket_of(tid);
    const int b = topo_.blade_of(tid);
    std::lock_guard<std::mutex> lk(mutex_);
    // Level selection per paper §6.1: BL1 while the socket has another
    // non-idle thread, then BL2 while the blade has another non-idle
    // socket, else BL3 (at most one thread per blade ends up there).
    if (static_cast<int>(bl1_[s].size()) < topo_.threads_per_socket() - 1) {
      bl1_[s].push_back(tid);
    } else if (static_cast<int>(bl2_[b].size()) <
               topo_.threads_per_blade() / topo_.threads_per_socket() - 1) {
      bl2_[b].push_back(tid);
    } else {
      bl3_.push_back(tid);
    }
    count_.fetch_add(1, std::memory_order_release);
  }

  int pop_beggar(int giver, StealLevel* level) override {
    if (count_.load(std::memory_order_acquire) == 0) return -1;
    const int s = topo_.socket_of(giver);
    const int b = topo_.blade_of(giver);
    int beggar = -1;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!bl1_[s].empty()) {
        beggar = bl1_[s].front();
        bl1_[s].pop_front();
      } else if (!bl2_[b].empty()) {
        beggar = bl2_[b].front();
        bl2_[b].pop_front();
      } else if (!bl3_.empty()) {
        beggar = bl3_.front();
        bl3_.pop_front();
      }
      if (beggar >= 0) count_.fetch_sub(1, std::memory_order_release);
    }
    if (beggar >= 0 && level != nullptr) *level = classify(giver, beggar);
    return beggar;
  }

  void cancel(int tid) override {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      std::size_t before = bl3_.size();
      for (auto& q : bl1_) before += q.size();
      for (auto& q : bl2_) before += q.size();
      erase_value(bl1_[topo_.socket_of(tid)], tid);
      erase_value(bl2_[topo_.blade_of(tid)], tid);
      erase_value(bl3_, tid);
      std::size_t after = bl3_.size();
      for (auto& q : bl1_) after += q.size();
      for (auto& q : bl2_) after += q.size();
      if (after != before) count_.fetch_sub(1, std::memory_order_release);
    }
    clear_begging(tid);
  }

  [[nodiscard]] bool any_beggar() const override {
    return count_.load(std::memory_order_acquire) > 0;
  }

 private:
  std::mutex mutex_;  // guards all lists; begging is the cold path
  std::vector<std::deque<int>> bl1_;  // per socket
  std::vector<std::deque<int>> bl2_;  // per blade
  std::deque<int> bl3_;               // machine-wide
  std::atomic<int> count_{0};
};

}  // namespace

LoadBalancer::LoadBalancer(const Topology& topo)
    : topo_(topo),
      flags_(static_cast<std::size_t>(topo.threads())),
      begging_(static_cast<std::size_t>(topo.threads())) {}

StealLevel LoadBalancer::classify(int giver, int beggar) const {
  if (topo_.same_socket(giver, beggar)) return StealLevel::IntraSocket;
  if (topo_.same_blade(giver, beggar)) return StealLevel::IntraBlade;
  return StealLevel::InterBlade;
}

const char* to_string(LbKind k) {
  return k == LbKind::RWS ? "RWS" : "HWS";
}

const char* to_string(SchedulerImpl s) {
  return s == SchedulerImpl::LockFree ? "lockfree" : "mutex";
}

std::unique_ptr<LoadBalancer> make_load_balancer(LbKind kind,
                                                 const Topology& topo,
                                                 SchedulerImpl impl) {
  if (impl == SchedulerImpl::Mutex) {
    if (kind == LbKind::RWS) return std::make_unique<RwsMutexBalancer>(topo);
    return std::make_unique<HwsMutexBalancer>(topo);
  }
  if (kind == LbKind::RWS) return std::make_unique<RwsLockFreeBalancer>(topo);
  return std::make_unique<HwsLockFreeBalancer>(topo);
}

}  // namespace pi2m
