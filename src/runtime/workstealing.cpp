#include "runtime/workstealing.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {
namespace {

void erase_value(std::deque<int>& q, int v) {
  q.erase(std::remove(q.begin(), q.end(), v), q.end());
}

class RwsBalancer final : public LoadBalancer {
 public:
  explicit RwsBalancer(const Topology& topo) : LoadBalancer(topo) {}

  void enqueue_beggar(int tid) override {
    telemetry::instant("lb.beg", "lb");
    std::lock_guard<std::mutex> lk(mutex_);
    list_.push_back(tid);
    count_.fetch_add(1, std::memory_order_release);
  }

  int pop_beggar(int giver, StealLevel* level) override {
    if (count_.load(std::memory_order_acquire) == 0) return -1;
    int beggar = -1;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!list_.empty()) {
        beggar = list_.front();
        list_.pop_front();
        count_.fetch_sub(1, std::memory_order_release);
      }
    }
    if (beggar >= 0 && level != nullptr) *level = classify(giver, beggar);
    return beggar;
  }

  void cancel(int tid) override {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto before = list_.size();
    erase_value(list_, tid);
    if (list_.size() != before) count_.fetch_sub(1, std::memory_order_release);
  }

  [[nodiscard]] bool any_beggar() const override {
    return count_.load(std::memory_order_acquire) > 0;
  }

 private:
  std::mutex mutex_;
  std::deque<int> list_;
  std::atomic<int> count_{0};
};

class HwsBalancer final : public LoadBalancer {
 public:
  explicit HwsBalancer(const Topology& topo)
      : LoadBalancer(topo),
        bl1_(topo.num_sockets()),
        bl2_(topo.num_blades()) {}

  void enqueue_beggar(int tid) override {
    telemetry::instant("lb.beg", "lb");
    const int s = topo_.socket_of(tid);
    const int b = topo_.blade_of(tid);
    std::lock_guard<std::mutex> lk(mutex_);
    // Level selection per paper §6.1: BL1 while the socket has another
    // non-idle thread, then BL2 while the blade has another non-idle
    // socket, else BL3 (at most one thread per blade ends up there).
    if (static_cast<int>(bl1_[s].size()) < topo_.threads_per_socket() - 1) {
      bl1_[s].push_back(tid);
    } else if (static_cast<int>(bl2_[b].size()) <
               topo_.threads_per_blade() / topo_.threads_per_socket() - 1) {
      bl2_[b].push_back(tid);
    } else {
      bl3_.push_back(tid);
    }
    count_.fetch_add(1, std::memory_order_release);
  }

  int pop_beggar(int giver, StealLevel* level) override {
    if (count_.load(std::memory_order_acquire) == 0) return -1;
    const int s = topo_.socket_of(giver);
    const int b = topo_.blade_of(giver);
    int beggar = -1;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!bl1_[s].empty()) {
        beggar = bl1_[s].front();
        bl1_[s].pop_front();
      } else if (!bl2_[b].empty()) {
        beggar = bl2_[b].front();
        bl2_[b].pop_front();
      } else if (!bl3_.empty()) {
        beggar = bl3_.front();
        bl3_.pop_front();
      }
      if (beggar >= 0) count_.fetch_sub(1, std::memory_order_release);
    }
    if (beggar >= 0 && level != nullptr) *level = classify(giver, beggar);
    return beggar;
  }

  void cancel(int tid) override {
    std::lock_guard<std::mutex> lk(mutex_);
    std::size_t before = bl3_.size();
    for (auto& q : bl1_) before += q.size();
    for (auto& q : bl2_) before += q.size();
    erase_value(bl1_[topo_.socket_of(tid)], tid);
    erase_value(bl2_[topo_.blade_of(tid)], tid);
    erase_value(bl3_, tid);
    std::size_t after = bl3_.size();
    for (auto& q : bl1_) after += q.size();
    for (auto& q : bl2_) after += q.size();
    if (after != before) count_.fetch_sub(1, std::memory_order_release);
  }

  [[nodiscard]] bool any_beggar() const override {
    return count_.load(std::memory_order_acquire) > 0;
  }

 private:
  std::mutex mutex_;  // guards all lists; begging is the cold path
  std::vector<std::deque<int>> bl1_;  // per socket
  std::vector<std::deque<int>> bl2_;  // per blade
  std::deque<int> bl3_;               // machine-wide
  std::atomic<int> count_{0};
};

}  // namespace

LoadBalancer::LoadBalancer(const Topology& topo)
    : topo_(topo), flags_(static_cast<std::size_t>(topo.threads())) {}

StealLevel LoadBalancer::classify(int giver, int beggar) const {
  if (topo_.same_socket(giver, beggar)) return StealLevel::IntraSocket;
  if (topo_.same_blade(giver, beggar)) return StealLevel::IntraBlade;
  return StealLevel::InterBlade;
}

const char* to_string(LbKind k) {
  return k == LbKind::RWS ? "RWS" : "HWS";
}

std::unique_ptr<LoadBalancer> make_load_balancer(LbKind kind,
                                                 const Topology& topo) {
  if (kind == LbKind::RWS) return std::make_unique<RwsBalancer>(topo);
  return std::make_unique<HwsBalancer>(topo);
}

}  // namespace pi2m
