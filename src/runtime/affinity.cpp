#include "runtime/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace pi2m {

#if defined(__linux__)

bool pin_current_thread_to_cpu(int cpu) {
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}

int usable_cpu_count() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

#else

bool pin_current_thread_to_cpu(int) { return false; }

int usable_cpu_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

#endif

}  // namespace pi2m
