// Virtual cc-NUMA topology.
//
// The paper runs on Blacklight (8 cores/socket, 2 sockets/blade, 128
// blades). Its Hierarchical Work Stealing (HWS, §6.1) and the same-socket
// PEL optimizations consult the machine topology. This build targets
// arbitrary hosts (including the single-core container used for the
// reproduction), so by default the topology is *declared*, not probed:
// threads are assigned to virtual sockets/blades in contiguous blocks,
// exactly how a pinned Blacklight run lays threads out. All locality
// counters (intra-socket / intra-blade / inter-blade steals) are defined
// against this virtual topology. See DESIGN.md "Substitutions".
//
// With --topology=auto the spec is instead probed from the host
// (/sys/devices/system/cpu/*/topology on Linux), which also yields a
// tid -> cpu map laid out socket-by-socket, so --pin places contiguous
// thread blocks on real sockets. A failed probe falls back to the declared
// Blacklight-style spec with an identity cpu map.
#pragma once

#include <string>
#include <vector>

namespace pi2m {

struct TopologySpec {
  int cores_per_socket = 8;   ///< Blacklight default
  int sockets_per_blade = 2;  ///< Blacklight default
};

/// Result of probing the host's real CPU topology.
struct HostProbe {
  bool ok = false;      ///< false => spec/cpus hold the fallback values
  TopologySpec spec{};  ///< probed (or fallback Blacklight-style) layout
  /// Online cpu ids ordered socket-by-socket: assigning tid i to cpus[i %
  /// cpus.size()] puts contiguous tid blocks on the same physical package.
  std::vector<int> cpus;
};

/// Parses /sys/devices/system/cpu/cpu*/topology (or a test double rooted at
/// `sysfs_root`). One "blade" maps to the whole host: sockets_per_blade =
/// number of physical packages, cores_per_socket = hardware threads of the
/// largest package.
HostProbe probe_host_topology(
    const std::string& sysfs_root = "/sys/devices/system/cpu");

class Topology {
 public:
  Topology(int nthreads, TopologySpec spec = {});
  /// Topology from a host probe: uses the probed spec and keeps the cpu map
  /// for pinning. A failed probe degrades to the declared-spec behaviour.
  static Topology from_probe(int nthreads, const HostProbe& probe);

  [[nodiscard]] int threads() const { return nthreads_; }
  [[nodiscard]] int threads_per_socket() const { return tps_; }
  [[nodiscard]] int threads_per_blade() const { return tpb_; }
  [[nodiscard]] int socket_of(int tid) const { return tid / tps_; }
  [[nodiscard]] int blade_of(int tid) const { return tid / tpb_; }
  [[nodiscard]] int num_sockets() const { return nsockets_; }
  [[nodiscard]] int num_blades() const { return nblades_; }
  [[nodiscard]] bool same_socket(int a, int b) const {
    return socket_of(a) == socket_of(b);
  }
  [[nodiscard]] bool same_blade(int a, int b) const {
    return blade_of(a) == blade_of(b);
  }
  /// Host cpu to pin thread `tid` to (probed map when available, identity
  /// otherwise; oversubscribed tids wrap).
  [[nodiscard]] int cpu_of(int tid) const;
  /// True when cpu_of comes from a successful host probe.
  [[nodiscard]] bool host_probed() const { return !cpus_.empty(); }
  [[nodiscard]] std::string describe() const;

 private:
  int nthreads_;
  int tps_;
  int tpb_;
  int nsockets_;
  int nblades_;
  std::vector<int> cpus_;  ///< empty for declared topologies
};

}  // namespace pi2m
