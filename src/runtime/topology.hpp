// Virtual cc-NUMA topology.
//
// The paper runs on Blacklight (8 cores/socket, 2 sockets/blade, 128
// blades). Its Hierarchical Work Stealing (HWS, §6.1) and the same-socket
// PEL optimizations consult the machine topology. This build targets
// arbitrary hosts (including the single-core container used for the
// reproduction), so the topology is *declared*, not probed: threads are
// assigned to virtual sockets/blades round-robin-free (contiguous blocks),
// exactly how a pinned Blacklight run lays threads out. All locality
// counters (intra-socket / intra-blade / inter-blade steals) are defined
// against this virtual topology. See DESIGN.md "Substitutions".
#pragma once

#include <string>

namespace pi2m {

struct TopologySpec {
  int cores_per_socket = 8;   ///< Blacklight default
  int sockets_per_blade = 2;  ///< Blacklight default
};

class Topology {
 public:
  Topology(int nthreads, TopologySpec spec = {});

  [[nodiscard]] int threads() const { return nthreads_; }
  [[nodiscard]] int threads_per_socket() const { return tps_; }
  [[nodiscard]] int threads_per_blade() const { return tpb_; }
  [[nodiscard]] int socket_of(int tid) const { return tid / tps_; }
  [[nodiscard]] int blade_of(int tid) const { return tid / tpb_; }
  [[nodiscard]] int num_sockets() const { return nsockets_; }
  [[nodiscard]] int num_blades() const { return nblades_; }
  [[nodiscard]] bool same_socket(int a, int b) const {
    return socket_of(a) == socket_of(b);
  }
  [[nodiscard]] bool same_blade(int a, int b) const {
    return blade_of(a) == blade_of(b);
  }
  [[nodiscard]] std::string describe() const;

 private:
  int nthreads_;
  int tps_;
  int tpb_;
  int nsockets_;
  int nblades_;
};

}  // namespace pi2m
