#include "runtime/topology.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace pi2m {

Topology::Topology(int nthreads, TopologySpec spec) : nthreads_(nthreads) {
  PI2M_CHECK(nthreads >= 1, "topology needs at least one thread");
  PI2M_CHECK(spec.cores_per_socket >= 1 && spec.sockets_per_blade >= 1,
             "invalid topology spec");
  tps_ = spec.cores_per_socket;
  tpb_ = spec.cores_per_socket * spec.sockets_per_blade;
  nsockets_ = (nthreads + tps_ - 1) / tps_;
  nblades_ = (nthreads + tpb_ - 1) / tpb_;
}

std::string Topology::describe() const {
  return std::to_string(nthreads_) + " threads = " +
         std::to_string(nblades_) + " blade(s) x " +
         std::to_string(tpb_ / tps_) + " socket(s) x " + std::to_string(tps_) +
         " core(s)";
}

}  // namespace pi2m
