#include "runtime/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "support/common.hpp"

namespace pi2m {
namespace {

/// Reads a small integer file ("0\n"); -1 on any failure.
int read_int_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return -1;
  int v = -1;
  f >> v;
  if (!f) return -1;
  return v;
}

}  // namespace

HostProbe probe_host_topology(const std::string& sysfs_root) {
  HostProbe probe;
  // package id -> cpu ids, discovered by probing cpu0, cpu1, ... until the
  // first hole (sysfs numbers online cpus contiguously from 0).
  std::map<int, std::vector<int>> packages;
  for (int cpu = 0;; ++cpu) {
    const std::string base =
        sysfs_root + "/cpu" + std::to_string(cpu) + "/topology/";
    const int pkg = read_int_file(base + "physical_package_id");
    if (pkg < 0) break;
    packages[pkg].push_back(cpu);
  }
  if (packages.empty()) {
    return probe;  // ok=false: caller falls back to the declared spec
  }
  std::size_t largest = 0;
  for (auto& [pkg, cpus] : packages) {
    std::sort(cpus.begin(), cpus.end());
    largest = std::max(largest, cpus.size());
    probe.cpus.insert(probe.cpus.end(), cpus.begin(), cpus.end());
  }
  probe.ok = true;
  probe.spec.cores_per_socket = static_cast<int>(largest);
  probe.spec.sockets_per_blade = static_cast<int>(packages.size());
  return probe;
}

Topology::Topology(int nthreads, TopologySpec spec) : nthreads_(nthreads) {
  PI2M_CHECK(nthreads >= 1, "topology needs at least one thread");
  PI2M_CHECK(spec.cores_per_socket >= 1 && spec.sockets_per_blade >= 1,
             "invalid topology spec");
  tps_ = spec.cores_per_socket;
  tpb_ = spec.cores_per_socket * spec.sockets_per_blade;
  nsockets_ = (nthreads + tps_ - 1) / tps_;
  nblades_ = (nthreads + tpb_ - 1) / tpb_;
}

Topology Topology::from_probe(int nthreads, const HostProbe& probe) {
  Topology topo(nthreads, probe.ok ? probe.spec : TopologySpec{});
  if (probe.ok) topo.cpus_ = probe.cpus;
  return topo;
}

int Topology::cpu_of(int tid) const {
  if (cpus_.empty()) return tid;  // identity: declared/virtual topology
  return cpus_[static_cast<std::size_t>(tid) % cpus_.size()];
}

std::string Topology::describe() const {
  return std::to_string(nthreads_) + " threads = " +
         std::to_string(nblades_) + " blade(s) x " +
         std::to_string(tpb_ / tps_) + " socket(s) x " + std::to_string(tps_) +
         " core(s)" + (cpus_.empty() ? "" : " [host-probed]");
}

}  // namespace pi2m
