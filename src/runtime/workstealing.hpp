// Begging-list load balancers (paper §4.4 and §6.1).
//
// An idle thread advertises itself on a Begging List (BL); a working thread
// that completes an operation and has enough poor elements hands some to
// the first advertised beggar. Two schemes:
//
//  * RWS — the paper's baseline: one global begging list.
//  * HWS — Hierarchical Work Stealing: three levels. BL1 is shared by the
//    threads of one (virtual) socket and holds at most
//    threads_per_socket-1 beggars; BL2 by the sockets of one blade
//    (at most sockets_per_blade-1); BL3 is machine-wide (at most one
//    beggar per blade). Givers serve BL1 of their own socket first, then
//    BL2 of their blade, then BL3, which keeps stolen work local and
//    reduces inter-blade traffic (paper Fig. 5b).
//
// Two interchangeable implementations per scheme:
//
//  * SchedulerImpl::LockFree (default) — each level is a fixed-capacity
//    array of atomic tid slots. The paper's occupancy caps
//    (threads_per_socket-1 / sockets_per_blade-1 / one-per-blade) make the
//    arrays small; a beggar claims an empty slot with one CAS, a giver
//    claims a beggar with one CAS, and cancel is an O(levels) scan over
//    the thread's own slots. Level capacities sum to threads_per_blade, so
//    a begging thread always finds a slot in its own blade.
//  * SchedulerImpl::Mutex — the original mutex + deque implementation,
//    kept as an escape hatch (--mutex-scheduler) and as the A/B baseline
//    for BENCH_scheduler.json.
//
// The actual blocking loop lives in the refiner (it must also watch its
// inbox and the done flag); the balancer only manages membership, the
// per-thread wake flags, begging-state tokens, and steal-locality
// classification.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/topology.hpp"

namespace pi2m {

enum class LbKind : std::uint8_t { RWS, HWS };
enum class SchedulerImpl : std::uint8_t { LockFree, Mutex };

const char* to_string(LbKind k);
const char* to_string(SchedulerImpl s);

/// Locality of a work transfer, measured against the virtual topology.
enum class StealLevel : std::uint8_t { IntraSocket = 0, IntraBlade = 1, InterBlade = 2 };

class LoadBalancer {
 public:
  explicit LoadBalancer(const Topology& topo);
  virtual ~LoadBalancer() = default;

  /// Registers `tid` as idle. The caller then waits on work_flag(tid)
  /// (spin / park — see the refiner's idle protocol).
  virtual void enqueue_beggar(int tid) = 0;

  /// Pops the most local beggar for `giver`; -1 when none. Fills `level`
  /// with the transfer locality.
  virtual int pop_beggar(int giver, StealLevel* level) = 0;

  /// Removes `tid` from the lists if still present (idle loop aborted) and
  /// clears its begging token.
  virtual void cancel(int tid) = 0;

  /// True while any thread is registered as begging.
  [[nodiscard]] virtual bool any_beggar() const = 0;

  /// True from enqueue_beggar(tid) until that thread's own cancel(tid) —
  /// popping a beggar does NOT clear it. A giver that claimed `tid` via
  /// pop_beggar checks this before handing work: false means the beggar
  /// already left its idle loop (done flag, work from another giver), so
  /// the giver keeps the batch instead of stranding it (the lost-wakeup
  /// window of the old protocol).
  [[nodiscard]] bool still_begging(int tid) const {
    return begging_[tid].flag.load(std::memory_order_acquire);
  }

  /// Set by the giver after filling the beggar's inbox; cleared by the
  /// beggar on wake-up.
  std::atomic<bool>& work_flag(int tid) { return flags_[tid].flag; }

  [[nodiscard]] const Topology& topology() const { return topo_; }

 protected:
  [[nodiscard]] StealLevel classify(int giver, int beggar) const;
  void mark_begging(int tid) {
    begging_[tid].flag.store(true, std::memory_order_release);
  }
  void clear_begging(int tid) {
    begging_[tid].flag.store(false, std::memory_order_release);
  }

  Topology topo_;

 private:
  struct alignas(64) Flag {
    std::atomic<bool> flag{false};
  };
  std::vector<Flag> flags_;
  std::vector<Flag> begging_;
};

std::unique_ptr<LoadBalancer> make_load_balancer(
    LbKind kind, const Topology& topo,
    SchedulerImpl impl = SchedulerImpl::LockFree);

}  // namespace pi2m
