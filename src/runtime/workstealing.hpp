// Begging-list load balancers (paper §4.4 and §6.1).
//
// An idle thread advertises itself on a Begging List (BL); a working thread
// that completes an operation and has enough poor elements hands some to
// the first advertised beggar. Two schemes:
//
//  * RWS — the paper's baseline: one global begging list.
//  * HWS — Hierarchical Work Stealing: three levels. BL1 is shared by the
//    threads of one (virtual) socket and holds at most
//    threads_per_socket-1 beggars; BL2 by the sockets of one blade
//    (at most sockets_per_blade-1); BL3 is machine-wide (at most one
//    beggar per blade). Givers serve BL1 of their own socket first, then
//    BL2 of their blade, then BL3, which keeps stolen work local and
//    reduces inter-blade traffic (paper Fig. 5b).
//
// The actual blocking loop lives in the refiner (it must also watch its
// inbox and the done flag); the balancer only manages membership, the
// per-thread wake flags, and steal-locality classification.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/topology.hpp"

namespace pi2m {

enum class LbKind : std::uint8_t { RWS, HWS };

const char* to_string(LbKind k);

/// Locality of a work transfer, measured against the virtual topology.
enum class StealLevel : std::uint8_t { IntraSocket = 0, IntraBlade = 1, InterBlade = 2 };

class LoadBalancer {
 public:
  explicit LoadBalancer(const Topology& topo);
  virtual ~LoadBalancer() = default;

  /// Registers `tid` as idle. The caller then spins on work_flag(tid).
  virtual void enqueue_beggar(int tid) = 0;

  /// Pops the most local beggar for `giver`; -1 when none. Fills `level`
  /// with the transfer locality.
  virtual int pop_beggar(int giver, StealLevel* level) = 0;

  /// Removes `tid` from the lists if still present (idle loop aborted).
  virtual void cancel(int tid) = 0;

  /// True while any thread is registered as begging.
  [[nodiscard]] virtual bool any_beggar() const = 0;

  /// Set by the giver after filling the beggar's inbox; cleared by the
  /// beggar on wake-up.
  std::atomic<bool>& work_flag(int tid) { return flags_[tid].flag; }

  [[nodiscard]] const Topology& topology() const { return topo_; }

 protected:
  [[nodiscard]] StealLevel classify(int giver, int beggar) const;

  Topology topo_;

 private:
  struct alignas(64) Flag {
    std::atomic<bool> flag{false};
  };
  std::vector<Flag> flags_;
};

std::unique_ptr<LoadBalancer> make_load_balancer(LbKind kind,
                                                 const Topology& topo);

}  // namespace pi2m
