// Per-thread statistics and wasted-cycle accounting.
//
// The paper's evaluation (§5.5, §6) decomposes wasted cycles into three
// overheads: contention overhead (busy-waiting on Contention Lists),
// load-balance overhead (busy-waiting on Begging Lists), and rollback
// overhead (partial work discarded on a rollback). Counters are relaxed
// atomics so a sampler thread can read them live (Figure 6's timeline).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace pi2m {

/// Monotonic seconds.
inline double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Contention audit: every counter here is written by exactly one worker
/// thread (its own slot in the `std::vector<ThreadStats>`); the atomics exist
/// only so the sampler can read them concurrently. alignas(64) keeps each
/// slot on its own cache lines, so no two threads ever write the same line —
/// the same discipline as the predicate counters (see predicates.cpp).
struct alignas(64) ThreadStats {
  std::atomic<std::uint64_t> operations{0};
  std::atomic<std::uint64_t> insertions{0};
  std::atomic<std::uint64_t> removals{0};
  std::atomic<std::uint64_t> rollbacks{0};
  std::atomic<std::uint64_t> failed_ops{0};
  std::atomic<std::uint64_t> cells_created{0};

  // Work-stealing locality (defined against the virtual topology).
  std::atomic<std::uint64_t> steals_intra_socket{0};
  std::atomic<std::uint64_t> steals_intra_blade{0};
  std::atomic<std::uint64_t> steals_inter_blade{0};

  // Idle-parking accounting. `parks` / `parked_ns` are written by the
  // owning thread; `unparks_sent` counts wake-ups this thread *sent* to
  // parked beggars (still single-writer: it lives in the sender's slot).
  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> unparks_sent{0};
  std::atomic<std::uint64_t> parked_ns{0};

  // Wasted-cycle accounting in nanoseconds (atomics for live sampling).
  std::atomic<std::uint64_t> contention_ns{0};
  std::atomic<std::uint64_t> loadbalance_ns{0};
  std::atomic<std::uint64_t> rollback_ns{0};

  void add_contention(double sec) {
    contention_ns.fetch_add(static_cast<std::uint64_t>(sec * 1e9),
                            std::memory_order_relaxed);
  }
  void add_loadbalance(double sec) {
    loadbalance_ns.fetch_add(static_cast<std::uint64_t>(sec * 1e9),
                             std::memory_order_relaxed);
  }
  void add_rollback_time(double sec) {
    rollback_ns.fetch_add(static_cast<std::uint64_t>(sec * 1e9),
                          std::memory_order_relaxed);
  }
  void add_parked(double sec) {
    parked_ns.fetch_add(static_cast<std::uint64_t>(sec * 1e9),
                        std::memory_order_relaxed);
  }
};

/// Aggregated view over all threads (plain values).
struct StatsTotals {
  std::uint64_t operations = 0;
  std::uint64_t insertions = 0;
  std::uint64_t removals = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t cells_created = 0;
  std::uint64_t steals_intra_socket = 0;
  std::uint64_t steals_intra_blade = 0;
  std::uint64_t steals_inter_blade = 0;
  std::uint64_t parks = 0;
  std::uint64_t unparks = 0;
  double parked_sec = 0;
  double contention_sec = 0;
  double loadbalance_sec = 0;
  double rollback_sec = 0;

  [[nodiscard]] double total_overhead_sec() const {
    return contention_sec + loadbalance_sec + rollback_sec;
  }
  [[nodiscard]] std::uint64_t total_steals() const {
    return steals_intra_socket + steals_intra_blade + steals_inter_blade;
  }
};

StatsTotals aggregate(const std::vector<ThreadStats>& stats);

/// One sample of the Figure-6 timeline: cumulative overhead seconds (all
/// threads together) as a function of wall time.
struct TimelineSample {
  double wall_sec = 0;
  double contention_sec = 0;
  double loadbalance_sec = 0;
  double rollback_sec = 0;
  std::uint64_t operations = 0;
};

}  // namespace pi2m
