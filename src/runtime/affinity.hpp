// Thread-to-core pinning (behind the --pin / MeshingOptions::pin gate).
//
// The paper's Blacklight runs pin one thread per core so the HWS locality
// levels and the first-touch arena placement correspond to physical
// sockets. This build targets arbitrary hosts: pinning is best-effort
// (sched_setaffinity on Linux, a no-op returning false elsewhere) and the
// virtual topology stays authoritative when pinning is unavailable.
#pragma once

namespace pi2m {

/// Pins the calling thread to `cpu`. Returns false when the platform does
/// not support affinity or the call fails (cpu offline, cgroup mask, ...).
bool pin_current_thread_to_cpu(int cpu);

/// Number of CPUs usable by this process (affinity-mask aware on Linux);
/// falls back to std::thread::hardware_concurrency.
int usable_cpu_count();

}  // namespace pi2m
