// Bounded lock-free MPSC ring for work hand-off (paper §4.4).
//
// Replaces the mutex-guarded inbox vector in the refiner's ThreadCtx: any
// giver thread publishes a *batch* of entries with one tail reservation
// (single CAS) followed by per-slot release stores; the owning (beggar)
// thread drains without taking any lock. The layout is a Vyukov-style
// bounded queue specialised for one consumer:
//
//  * every slot carries a sequence word; slot (pos & mask) is writable by
//    the producer owning position `pos` once its sequence equals `pos`,
//    and readable by the consumer once it equals `pos + 1`;
//  * producers reserve [t, t+n) with one CAS on `tail_` after checking
//    `t + n - head_ <= capacity` — because `head_` only grows, the check
//    stays valid after the CAS, so the reserved slots are guaranteed
//    recycled (sequence already advanced) and the writer never waits;
//  * the consumer bumps `head_` with a release store per element, which is
//    what publishes the recycled slot back to producers.
//
// try_push_batch never blocks: a full ring returns false and the giver
// keeps the batch (work is conserved, it just stays local). This bounds
// memory and doubles as back-pressure against swamping one beggar.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace pi2m {

template <typename T>
class MpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(static_cast<std::uint64_t>(i),
                          std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer: publishes `items[0..n)` as one contiguous batch.
  /// Returns false (ring unchanged) when fewer than `n` slots are free.
  bool try_push_batch(const T* items, std::size_t n) {
    if (n == 0) return true;
    if (n > capacity()) return false;
    std::uint64_t t = tail_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t h = head_.load(std::memory_order_acquire);
      if (t + n - h > capacity()) return false;  // not enough free slots
      if (tail_.compare_exchange_weak(t, t + n, std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      Slot& s = slots_[(t + i) & mask_];
      s.value = items[i];
      // Publishes the value: the consumer's acquire load of seq pairs with
      // this store.
      s.seq.store(t + i + 1, std::memory_order_release);
    }
    return true;
  }

  bool try_push(const T& item) { return try_push_batch(&item, 1); }

  /// Single consumer only: drains every currently-published entry into
  /// `fn(const T&)`, in publication order per producer. Returns the count.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    std::size_t count = 0;
    for (;;) {
      Slot& s = slots_[h & mask_];
      if (s.seq.load(std::memory_order_acquire) != h + 1) break;
      fn(static_cast<const T&>(s.value));
      // Recycle the slot for the producer `capacity` positions ahead.
      s.seq.store(h + capacity(), std::memory_order_relaxed);
      ++h;
      // Release order publishes the recycled seq to producers that check
      // occupancy via head_.
      head_.store(h, std::memory_order_release);
      ++count;
    }
    return count;
  }

  /// Consumer-side emptiness probe (safe for other threads as a hint).
  [[nodiscard]] bool empty() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return slots_[h & mask_].seq.load(std::memory_order_acquire) != h + 1;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer reservation
};

}  // namespace pi2m
