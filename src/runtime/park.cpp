#include "runtime/park.hpp"

#if PI2M_PARK_FUTEX
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#else
#include <chrono>
#endif

namespace pi2m {

#if PI2M_PARK_FUTEX

namespace {

long futex(std::atomic<int>* addr, int op, int val,
           const struct timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<int*>(addr), op, val, timeout,
                 nullptr, 0);
}

}  // namespace

bool ThreadParker::park(std::uint64_t timeout_us) {
  int expected = kEmpty;
  if (!state_.compare_exchange_strong(expected, kParked,
                                      std::memory_order_acquire,
                                      std::memory_order_acquire)) {
    // A token was pending (unpark() won the race); consume it.
    state_.store(kEmpty, std::memory_order_relaxed);
    return true;
  }
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_us / 1000000);
  ts.tv_nsec = static_cast<long>((timeout_us % 1000000) * 1000);
  // FUTEX_WAIT returns immediately with EAGAIN if the word is no longer
  // kParked — exactly the unpark()-raced-ahead case. Spurious wakes and
  // EINTR are fine: the caller re-checks its conditions anyway.
  futex(&state_, FUTEX_WAIT_PRIVATE, kParked, &ts);
  // Whether notified, timed out, or interrupted, leave the parker Empty.
  return state_.exchange(kEmpty, std::memory_order_acquire) == kNotified;
}

void ThreadParker::unpark() {
  if (state_.exchange(kNotified, std::memory_order_release) == kParked) {
    futex(&state_, FUTEX_WAKE_PRIVATE, 1, nullptr);
  }
}

#else  // condvar fallback

bool ThreadParker::park(std::uint64_t timeout_us) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (state_.load(std::memory_order_acquire) == kNotified) {
    state_.store(kEmpty, std::memory_order_relaxed);
    return true;
  }
  state_.store(kParked, std::memory_order_relaxed);
  cv_.wait_for(lk, std::chrono::microseconds(timeout_us), [&] {
    return state_.load(std::memory_order_relaxed) == kNotified;
  });
  return state_.exchange(kEmpty, std::memory_order_acquire) == kNotified;
}

void ThreadParker::unpark() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    state_.store(kNotified, std::memory_order_release);
  }
  cv_.notify_one();
}

#endif

}  // namespace pi2m
