#include "metrics/quality.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/tetra.hpp"

namespace pi2m {

QualityReport evaluate_quality(const TetMesh& mesh) {
  QualityReport r;
  r.num_tets = mesh.tets.size();
  r.num_boundary_tris = mesh.boundary_tris.size();

  double rho_sum = 0.0;
  for (const auto& t : mesh.tets) {
    const Vec3& a = mesh.points[t[0]];
    const Vec3& b = mesh.points[t[1]];
    const Vec3& c = mesh.points[t[2]];
    const Vec3& d = mesh.points[t[3]];

    const double rho = radius_edge_ratio(a, b, c, d);
    if (rho < 1e299) {
      r.max_radius_edge = std::max(r.max_radius_edge, rho);
      rho_sum += rho;
      const auto bin = static_cast<std::size_t>(
          std::min(16.0, std::floor(rho / 0.25)));
      ++r.radius_edge_histogram[bin];
    }

    for (const double ang : dihedral_angles(a, b, c, d)) {
      r.min_dihedral_deg = std::min(r.min_dihedral_deg, ang);
      r.max_dihedral_deg = std::max(r.max_dihedral_deg, ang);
      const auto bin = static_cast<std::size_t>(
          std::clamp(std::floor(ang / 10.0), 0.0, 17.0));
      ++r.dihedral_histogram[bin];
    }

    const double vol = std::fabs(signed_volume(a, b, c, d));
    r.min_volume = std::min(r.min_volume, vol);
    r.total_volume += vol;
  }
  if (r.num_tets > 0) rho_sum /= static_cast<double>(r.num_tets);
  r.mean_radius_edge = rho_sum;

  for (const auto& f : mesh.boundary_tris) {
    r.min_boundary_planar_deg = std::min(
        r.min_boundary_planar_deg,
        min_triangle_angle(mesh.points[f[0]], mesh.points[f[1]],
                           mesh.points[f[2]]));
  }
  if (mesh.tets.empty()) r.min_volume = 0.0;
  return r;
}

}  // namespace pi2m
