#include "metrics/hausdorff.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace pi2m {

double point_segment_distance(const Vec3& p, const Vec3& a, const Vec3& b) {
  const Vec3 ab = b - a;
  const double len2 = dot(ab, ab);
  if (len2 <= 0.0) return distance(p, a);  // degenerate segment
  const double t = std::clamp(dot(p - a, ab) / len2, 0.0, 1.0);
  return distance(p, a + t * ab);
}

double point_triangle_distance(const Vec3& p, const Vec3& a, const Vec3& b,
                               const Vec3& c) {
  // Ericson, "Real-Time Collision Detection", closest point on triangle.
  const Vec3 ab = b - a, ac = c - a, ap = p - a;

  // Zero-area triangles (collinear or coincident vertices) break the
  // region classification below two ways: a vanished barycentric
  // denominator makes the interior case divide 0/0, and a zero-length
  // edge can satisfy an edge-region test whose *other* edge carries the
  // true minimum (a == b classifies p into the a-b "edge" even when the
  // surviving segment a-c is closer). A degenerate triangle IS its
  // edges, so the minimum clamped segment distance is exact.
  const Vec3 nrm = cross(ab, ac);
  if (!(dot(nrm, nrm) > 0.0)) {
    return std::min({point_segment_distance(p, a, b),
                     point_segment_distance(p, b, c),
                     point_segment_distance(p, c, a)});
  }

  const double d1 = dot(ab, ap), d2 = dot(ac, ap);
  if (d1 <= 0.0 && d2 <= 0.0) return distance(p, a);

  const Vec3 bp = p - b;
  const double d3 = dot(ab, bp), d4 = dot(ac, bp);
  if (d3 >= 0.0 && d4 <= d3) return distance(p, b);

  // Edge regions delegate to the clamped segment distance: the textbook
  // t = d1/(d1-d3) style ratios divide by |edge|^2-derived quantities that
  // vanish for coincident vertices (0/0 -> NaN); the clamp is a no-op on
  // non-degenerate inputs and exact on degenerate ones.
  const double vc = d1 * d4 - d3 * d2;
  if (vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0) {
    return point_segment_distance(p, a, b);
  }

  const Vec3 cp = p - c;
  const double d5 = dot(ab, cp), d6 = dot(ac, cp);
  if (d6 >= 0.0 && d5 <= d6) return distance(p, c);

  const double vb = d5 * d2 - d1 * d6;
  if (vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0) {
    return point_segment_distance(p, a, c);
  }

  const double va = d3 * d6 - d5 * d4;
  if (va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0) {
    return point_segment_distance(p, b, c);
  }

  // Interior region. A zero-area triangle (collinear or coincident
  // vertices) can slip through every edge-region test with va+vb+vc == 0;
  // dividing then yields inf/NaN coordinates that poison the Hausdorff
  // max. Such a triangle IS its edges, so the edge distances are exact.
  const double sum = va + vb + vc;
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    return std::min({point_segment_distance(p, a, b),
                     point_segment_distance(p, b, c),
                     point_segment_distance(p, c, a)});
  }
  const double denom = 1.0 / sum;
  const double v = vb * denom, w = vc * denom;
  return distance(p, a + v * ab + w * ac);
}

namespace {

/// Uniform grid over boundary triangles for nearest-triangle queries.
class TriangleGrid {
 public:
  TriangleGrid(const TetMesh& mesh, double cell) : mesh_(mesh), cell_(cell) {
    for (const auto& p : mesh.points) bounds_.expand(p);
    for (std::size_t t = 0; t < mesh.boundary_tris.size(); ++t) {
      Aabb bb;
      for (int k = 0; k < 3; ++k) bb.expand(mesh_.points[mesh_.boundary_tris[t][k]]);
      for_cells(bb, [&](std::int64_t key) {
        cells_[key].push_back(static_cast<std::uint32_t>(t));
      });
    }
  }

  /// Nearest-triangle distance via expanding ring search.
  [[nodiscard]] double distance_to(const Vec3& p) const {
    double best = std::numeric_limits<double>::infinity();
    for (int ring = 0; ring < 64; ++ring) {
      visit_ring(p, ring, [&](std::uint32_t t) {
        const auto& f = mesh_.boundary_tris[t];
        best = std::min(best,
                        point_triangle_distance(p, mesh_.points[f[0]],
                                                mesh_.points[f[1]],
                                                mesh_.points[f[2]]));
      });
      // Once a candidate exists, one more ring guarantees correctness
      // (anything outside ring+1 is farther than ring*cell >= best).
      if (best < ring * cell_) break;
    }
    return best;
  }

 private:
  [[nodiscard]] std::int64_t key_of(int x, int y, int z) const {
    const std::int64_t off = 1 << 20;
    return ((static_cast<std::int64_t>(x) + off) << 42) |
           ((static_cast<std::int64_t>(y) + off) << 21) |
           (static_cast<std::int64_t>(z) + off);
  }
  [[nodiscard]] int coord(double v, double o) const {
    return static_cast<int>(std::floor((v - o) / cell_));
  }

  template <typename Fn>
  void for_cells(const Aabb& bb, Fn&& fn) {
    for (int z = coord(bb.lo.z, bounds_.lo.z); z <= coord(bb.hi.z, bounds_.lo.z); ++z)
      for (int y = coord(bb.lo.y, bounds_.lo.y); y <= coord(bb.hi.y, bounds_.lo.y); ++y)
        for (int x = coord(bb.lo.x, bounds_.lo.x); x <= coord(bb.hi.x, bounds_.lo.x); ++x)
          fn(key_of(x, y, z));
  }

  template <typename Fn>
  void visit_ring(const Vec3& p, int ring, Fn&& fn) const {
    const int cx = coord(p.x, bounds_.lo.x);
    const int cy = coord(p.y, bounds_.lo.y);
    const int cz = coord(p.z, bounds_.lo.z);
    for (int dz = -ring; dz <= ring; ++dz) {
      for (int dy = -ring; dy <= ring; ++dy) {
        for (int dx = -ring; dx <= ring; ++dx) {
          if (std::max({std::abs(dx), std::abs(dy), std::abs(dz)}) != ring)
            continue;  // shell only
          const auto it = cells_.find(key_of(cx + dx, cy + dy, cz + dz));
          if (it == cells_.end()) continue;
          for (std::uint32_t t : it->second) fn(t);
        }
      }
    }
  }

  const TetMesh& mesh_;
  double cell_;
  Aabb bounds_;
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace

HausdorffResult hausdorffdistance_impl(const TetMesh& mesh,
                                       const IsosurfaceOracle& oracle,
                                       int n) {
  HausdorffResult out;
  if (mesh.boundary_tris.empty()) return out;

  // mesh -> surface: barycentric samples of each boundary triangle.
  for (const auto& f : mesh.boundary_tris) {
    const Vec3& a = mesh.points[f[0]];
    const Vec3& b = mesh.points[f[1]];
    const Vec3& c = mesh.points[f[2]];
    for (int i = 0; i <= n; ++i) {
      for (int j = 0; j <= n - i; ++j) {
        const double u = static_cast<double>(i) / n;
        const double v = static_cast<double>(j) / n;
        const Vec3 p = a + u * (b - a) + v * (c - a);
        const auto q = oracle.closest_surface_point(p);
        if (q) out.mesh_to_surface = std::max(out.mesh_to_surface,
                                              distance(p, *q));
      }
    }
  }

  // surface -> mesh: every surface voxel, refined onto the interface.
  const LabeledImage3D& img = oracle.image();
  TriangleGrid grid(mesh, 2.0 * img.min_spacing());
  for (int z = 0; z < img.nz(); ++z) {
    for (int y = 0; y < img.ny(); ++y) {
      for (int x = 0; x < img.nx(); ++x) {
        if (!img.is_surface_voxel({x, y, z})) continue;
        const auto q = oracle.closest_surface_point(img.voxel_center({x, y, z}));
        if (!q) continue;
        out.surface_to_mesh =
            std::max(out.surface_to_mesh, grid.distance_to(*q));
      }
    }
  }
  return out;
}

HausdorffResult hausdorff_distance(const TetMesh& mesh,
                                   const IsosurfaceOracle& oracle,
                                   int samples_per_edge) {
  return hausdorffdistance_impl(mesh, oracle, std::max(1, samples_per_edge));
}

}  // namespace pi2m
