// Mesh quality statistics: the metrics of the paper's Table 6 —
// radius-edge ratio, dihedral angles, smallest boundary planar angle —
// plus distribution summaries for the benches.
#pragma once

#include <array>
#include <cstddef>

#include "core/pi2m.hpp"

namespace pi2m {

struct QualityReport {
  std::size_t num_tets = 0;
  std::size_t num_boundary_tris = 0;

  double max_radius_edge = 0.0;
  double mean_radius_edge = 0.0;

  double min_dihedral_deg = 180.0;
  double max_dihedral_deg = 0.0;

  double min_boundary_planar_deg = 180.0;

  double min_volume = 1e300;
  double total_volume = 0.0;

  /// Histogram of dihedral angles in 10-degree bins [0,180).
  std::array<std::size_t, 18> dihedral_histogram{};
  /// Histogram of radius-edge ratios in 0.25 bins [0, 4), last bin = >=4.
  std::array<std::size_t, 17> radius_edge_histogram{};
};

/// Evaluates all metrics over an extracted mesh.
QualityReport evaluate_quality(const TetMesh& mesh);

}  // namespace pi2m
