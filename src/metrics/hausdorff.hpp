// Two-sided (symmetric) Hausdorff distance between the extracted mesh
// boundary and the image isosurface — the paper's fidelity metric
// (Table 6). Theorem 1 predicts it shrinks as O(δ²) with the sample
// spacing.
//
// Both directions are estimated by dense sampling:
//  * mesh→surface: sample points on every boundary triangle, measure the
//    oracle distance to ∂O;
//  * surface→mesh: refine every surface voxel to an interface point and
//    measure the distance to the nearest boundary triangle (grid-
//    accelerated exact point-triangle distance).
#pragma once

#include "core/pi2m.hpp"
#include "imaging/isosurface.hpp"

namespace pi2m {

/// Exact distance from point p to segment [a,b] (degenerate segments fall
/// back to the point distance).
double point_segment_distance(const Vec3& p, const Vec3& a, const Vec3& b);

/// Exact distance from point p to triangle (a,b,c) (Ericson, RTCD §5.1.5).
/// Degenerate (zero-area: collinear or coincident) triangles fall back to
/// the minimum point-segment distance over the edges instead of dividing by
/// a vanished barycentric denominator.
double point_triangle_distance(const Vec3& p, const Vec3& a, const Vec3& b,
                               const Vec3& c);

struct HausdorffResult {
  double mesh_to_surface = 0.0;
  double surface_to_mesh = 0.0;
  [[nodiscard]] double symmetric() const {
    return mesh_to_surface > surface_to_mesh ? mesh_to_surface
                                             : surface_to_mesh;
  }
};

/// `samples_per_edge` controls the triangle sampling density (the triangle
/// gets ~n(n+1)/2 samples).
HausdorffResult hausdorff_distance(const TetMesh& mesh,
                                   const IsosurfaceOracle& oracle,
                                   int samples_per_edge = 3);

}  // namespace pi2m
