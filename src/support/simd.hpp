// SIMD dispatch layer for the batched geometric core.
//
// One binary runs everywhere: vector kernels are compiled with per-function
// target attributes (no global -mavx2), selected at runtime from CPUID.
// Two levels exist — kScalar (portable, always available) and kAvx2
// (4-wide double lanes; requires AVX2+FMA hardware, though the filter
// kernels deliberately use separate mul/add so their rounding matches the
// -ffp-contract=off scalar code bit for bit).
//
// Selection order:
//   1. a programmatic override (force_simd_level / clear_simd_override),
//      used by tests and the pi2m_fuzz SIMD-parity mode;
//   2. the PI2M_SIMD environment variable ("avx2" | "scalar");
//   3. CPUID detection.
// Requests for unavailable levels clamp down to kScalar.
//
// Building with -DPI2M_SIMD=OFF (CMake) defines PI2M_SIMD_DISABLED and
// removes the vector kernels entirely; every query then reports kScalar.
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && !defined(PI2M_SIMD_DISABLED)
#define PI2M_SIMD_AVX2 1
#else
#define PI2M_SIMD_AVX2 0
#endif

namespace pi2m::simd {

enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
};

namespace detail {

inline std::atomic<int> g_override{-1};

inline Level detect_level() {
#if PI2M_SIMD_AVX2
  bool have_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (const char* env = std::getenv("PI2M_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    // "avx2" (or anything else) keeps hardware detection authoritative:
    // requesting a level the CPU lacks clamps down to scalar.
  }
  return have_avx2 ? Level::kAvx2 : Level::kScalar;
#else
  return Level::kScalar;
#endif
}

}  // namespace detail

/// The level the dispatched kernels will actually run at, honouring any
/// override, then PI2M_SIMD, then CPUID. Cheap enough for per-batch calls
/// (one relaxed atomic load in the common no-override case).
inline Level active_level() {
  const int o = detail::g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<Level>(o);
  static const Level detected = detail::detect_level();
  return detected;
}

/// Force a dispatch level for this process (clamped to what the build and
/// hardware support). Used by --no-simd, tests, and fuzz parity runs.
inline void force_simd_level(Level level) {
#if !PI2M_SIMD_AVX2
  level = Level::kScalar;
#else
  if (level == Level::kAvx2 && !__builtin_cpu_supports("avx2")) {
    level = Level::kScalar;
  }
#endif
  detail::g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

/// Return to environment/CPUID-driven selection.
inline void clear_simd_override() {
  detail::g_override.store(-1, std::memory_order_relaxed);
}

inline const char* level_name(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

// ---------------------------------------------------------------------------
// Portable fixed-width lane helper for code that wants data-parallel shape
// without per-function target attributes (EDT sweeps, distance loops). The
// ops below compile to SSE2 pairs at baseline -O2 and the fixed 4-lane
// structure keeps gcc's autovectorizer engaged; the hot predicate filters
// use real AVX2 intrinsics in predicates_simd.cpp instead.
// ---------------------------------------------------------------------------

struct DVec4 {
  double lane[4];

  static DVec4 splat(double v) { return {{v, v, v, v}}; }
  static DVec4 load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
  void store(double* p) const {
    p[0] = lane[0];
    p[1] = lane[1];
    p[2] = lane[2];
    p[3] = lane[3];
  }

  friend DVec4 operator+(const DVec4& a, const DVec4& b) {
    return {{a.lane[0] + b.lane[0], a.lane[1] + b.lane[1],
             a.lane[2] + b.lane[2], a.lane[3] + b.lane[3]}};
  }
  friend DVec4 operator-(const DVec4& a, const DVec4& b) {
    return {{a.lane[0] - b.lane[0], a.lane[1] - b.lane[1],
             a.lane[2] - b.lane[2], a.lane[3] - b.lane[3]}};
  }
  friend DVec4 operator*(const DVec4& a, const DVec4& b) {
    return {{a.lane[0] * b.lane[0], a.lane[1] * b.lane[1],
             a.lane[2] * b.lane[2], a.lane[3] * b.lane[3]}};
  }

  /// Lanewise c.lane >= 0 ? a : b — a branchless select the compiler maps
  /// to a vector compare + blend.
  static DVec4 select_nonneg(const DVec4& c, const DVec4& a, const DVec4& b) {
    return {{c.lane[0] >= 0.0 ? a.lane[0] : b.lane[0],
             c.lane[1] >= 0.0 ? a.lane[1] : b.lane[1],
             c.lane[2] >= 0.0 ? a.lane[2] : b.lane[2],
             c.lane[3] >= 0.0 ? a.lane[3] : b.lane[3]}};
  }
};

}  // namespace pi2m::simd
