// Minimal fork-join helper for coarse-grained data-parallel loops (EDT rows,
// final mesh scans). The PI2M refiner itself uses its own long-lived worker
// threads (runtime/); this helper is only for pre/post-processing phases.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace pi2m {

/// Runs fn(begin, end) over [0, n) split into contiguous blocks across
/// `threads` std::threads (the calling thread executes block 0).
inline void parallel_blocks(std::size_t n, int threads,
                            const std::function<void(std::size_t, std::size_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t t = std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  const std::size_t chunk = (n + t - 1) / t;
  std::vector<std::thread> pool;
  pool.reserve(t - 1);
  for (std::size_t i = 1; i < t; ++i) {
    const std::size_t b = i * chunk;
    const std::size_t e = std::min(n, b + chunk);
    if (b >= e) break;
    pool.emplace_back(fn, b, e);
  }
  fn(0, std::min(n, chunk));
  for (std::thread& th : pool) th.join();
}

}  // namespace pi2m
