// Process-wide recycling pool for arena chunk storage.
//
// A one-shot run allocates its mesh arenas, faults the pages in, and frees
// everything at teardown; the next job in the same process pays the
// page-fault bill again. In the serving scenario (many jobs per process)
// that bill dominates small-job latency, so ChunkedStore can optionally
// draw its fixed-size chunk blocks from this pool instead of the heap:
// blocks released by a finished job's mesh come back warm — same sizes,
// pages already resident — and the next job re-uses them.
//
// The pool hands out *raw storage only*; the ChunkedStore placement-news
// fresh elements into every block it acquires, so no object state can leak
// between jobs (the second-run determinism test in tests/serve_test.cpp
// guards exactly this). Blocks are bucketed by byte size and capped by a
// byte budget; releases beyond the budget free immediately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <new>
#include <vector>

namespace pi2m {

class ArenaPool {
 public:
  /// All pool blocks share this alignment, which must dominate the
  /// alignment of every element type stored in pooled chunks.
  static constexpr std::size_t kAlignment = 64;

  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served from the pool
    std::uint64_t releases = 0;  ///< total release() calls
    std::uint64_t frees = 0;     ///< releases dropped (budget exceeded)
    std::size_t cached_bytes = 0;
    std::size_t budget_bytes = 0;
  };

  static ArenaPool& instance() {
    static ArenaPool* pool = new ArenaPool;  // leaked: alive at any teardown
    return *pool;
  }

  /// Returns a block of exactly `bytes` (recycled when one is cached, fresh
  /// otherwise). Never nullptr.
  void* acquire(std::size_t bytes) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.acquires;
      auto it = free_.find(bytes);
      if (it != free_.end() && !it->second.empty()) {
        void* p = it->second.back();
        it->second.pop_back();
        cached_bytes_ -= bytes;
        ++stats_.reuses;
        return p;
      }
    }
    return ::operator new(bytes, std::align_val_t{kAlignment});
  }

  /// Returns a block to the pool; frees it instead when caching it would
  /// exceed the byte budget.
  void release(void* p, std::size_t bytes) {
    if (p == nullptr) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.releases;
      if (cached_bytes_ + bytes <= budget_bytes_) {
        free_[bytes].push_back(p);
        cached_bytes_ += bytes;
        return;
      }
      ++stats_.frees;
    }
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  /// Caps the cached (idle) bytes; shrinks the cache immediately when
  /// lowered. In-flight blocks are not counted or affected.
  void set_budget(std::size_t bytes) {
    std::vector<std::pair<void*, std::size_t>> victims;
    {
      std::lock_guard<std::mutex> lk(mu_);
      budget_bytes_ = bytes;
      trim_locked(victims);
    }
    for (auto& [p, sz] : victims) {
      (void)sz;
      ::operator delete(p, std::align_val_t{kAlignment});
    }
  }

  /// Frees every cached block (tests; budget unchanged).
  void clear() {
    std::vector<std::pair<void*, std::size_t>> victims;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto& [sz, blocks] : free_) {
        for (void* p : blocks) victims.emplace_back(p, sz);
        blocks.clear();
      }
      cached_bytes_ = 0;
    }
    for (auto& [p, sz] : victims) {
      (void)sz;
      ::operator delete(p, std::align_val_t{kAlignment});
    }
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    Stats s = stats_;
    s.cached_bytes = cached_bytes_;
    s.budget_bytes = budget_bytes_;
    return s;
  }

 private:
  ArenaPool() = default;

  void trim_locked(std::vector<std::pair<void*, std::size_t>>& victims) {
    // Evict largest buckets first: one big block frees the most budget.
    for (auto it = free_.rbegin();
         it != free_.rend() && cached_bytes_ > budget_bytes_; ++it) {
      while (!it->second.empty() && cached_bytes_ > budget_bytes_) {
        victims.emplace_back(it->second.back(), it->first);
        it->second.pop_back();
        cached_bytes_ -= it->first;
        ++stats_.frees;
      }
    }
  }

  mutable std::mutex mu_;
  std::map<std::size_t, std::vector<void*>> free_;
  std::size_t cached_bytes_ = 0;
  std::size_t budget_bytes_ = std::size_t{512} << 20;  // 512 MiB default
  Stats stats_;
};

}  // namespace pi2m
