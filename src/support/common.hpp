// Small shared utilities used across all PI2M modules.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace pi2m {

/// Identifier types. 32-bit indices keep cells at half a cache line and are
/// ample for the mesh sizes this build targets (< 4e9 cells).
using VertexId = std::uint32_t;
using CellId = std::uint32_t;

inline constexpr VertexId kNoVertex = 0xFFFFFFFFu;
inline constexpr CellId kNoCell = 0xFFFFFFFFu;

/// Fatal invariant violation: print and abort. Used for conditions that
/// indicate a bug in this library, never for bad user input.
[[noreturn]] inline void fatal(std::string_view msg) {
  std::fprintf(stderr, "pi2m fatal: %.*s\n", static_cast<int>(msg.size()),
               msg.data());
  std::abort();
}

#define PI2M_CHECK(cond, msg)      \
  do {                             \
    if (!(cond)) ::pi2m::fatal(msg); \
  } while (0)

}  // namespace pi2m
