// SoA coordinate mirror for the vertex arena.
//
// The Vertex record interleaves the position with the atomic owner word
// (the per-vertex try-lock) and the dead flag, so under contention every
// position read shares a cache line with lock traffic from other threads.
// The mirror stores coordinates as packed x/y/z lanes per 256-slot block:
// the lines it occupies are written exactly once (at vertex creation,
// positions are immutable afterwards) and then stay in the shared state of
// every core's cache — no invalidations from locking, and batched
// predicate gathers read from lanes that vector loads can use directly.
//
// Coherence contract: set(id, p) is called by the single creating thread
// BEFORE the vertex is published (the owner release-store in
// create_vertex). Readers only learn vertex ids through acquire loads that
// read from that store chain (cell v[] snapshots, locate walks), so by
// the existing happens-before edges the mirror write is visible whenever
// the id is. Block installation uses the same lock-free CAS scheme as
// ChunkedStore. Verified under 1/2/4-thread churn by the sanitize-labelled
// SoA coherence tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "geometry/vec3.hpp"
#include "support/common.hpp"

namespace pi2m {

class SoaCoordStore {
 public:
  static constexpr std::size_t kBlockBits = 8;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;

  struct alignas(64) Block {
    double x[kBlockSize];
    double y[kBlockSize];
    double z[kBlockSize];
  };

  explicit SoaCoordStore(std::size_t max_elems)
      : blocks_((max_elems + kBlockSize - 1) / kBlockSize + 1) {
    for (auto& b : blocks_) b.store(nullptr, std::memory_order_relaxed);
  }
  ~SoaCoordStore() {
    for (auto& b : blocks_) delete b.load(std::memory_order_relaxed);
  }
  SoaCoordStore(const SoaCoordStore&) = delete;
  SoaCoordStore& operator=(const SoaCoordStore&) = delete;

  /// Single-writer per id, before the id is published (see header comment).
  void set(std::uint32_t id, const Vec3& p) {
    Block* b = ensure_block(id >> kBlockBits);
    const std::size_t s = id & (kBlockSize - 1);
    b->x[s] = p.x;
    b->y[s] = p.y;
    b->z[s] = p.z;
  }

  [[nodiscard]] Vec3 get(std::uint32_t id) const {
    const Block* b = blocks_[id >> kBlockBits].load(std::memory_order_acquire);
    const std::size_t s = id & (kBlockSize - 1);
    return {b->x[s], b->y[s], b->z[s]};
  }

 private:
  Block* ensure_block(std::size_t bi) {
    Block* b = blocks_[bi].load(std::memory_order_acquire);
    if (b != nullptr) return b;
    Block* fresh = new Block();
    Block* expected = nullptr;
    if (blocks_[bi].compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel)) {
      return fresh;
    }
    delete fresh;  // another thread won the race
    return expected;
  }

  mutable std::vector<std::atomic<Block*>> blocks_;
};

}  // namespace pi2m
