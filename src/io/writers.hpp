// Mesh export: VTK legacy (volume + labels, loadable in ParaView), OFF
// (boundary surface), and Medit .mesh (volume + labels, loadable in gmsh).
#pragma once

#include <string>

#include "core/pi2m.hpp"

namespace pi2m::io {

/// Legacy-ASCII VTK unstructured grid with per-cell tissue labels.
/// Returns false on I/O failure.
bool write_vtk(const TetMesh& mesh, const std::string& path);

/// OFF file of the boundary (isosurface) triangles only.
bool write_off_surface(const TetMesh& mesh, const std::string& path);

/// Medit .mesh format (vertices, tetrahedra with label refs, boundary tris).
bool write_medit(const TetMesh& mesh, const std::string& path);

/// Binary STL of the boundary (isosurface) triangles.
bool write_stl_surface(const TetMesh& mesh, const std::string& path);

}  // namespace pi2m::io
