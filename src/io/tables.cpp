#include "io/tables.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pi2m::io {

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  if (rows_.empty()) return {};
  std::size_t cols = 0;
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream out;
  for (std::size_t ri = 0; ri < rows_.size(); ++ri) {
    const auto& r = rows_[ri];
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      const std::size_t pad = width[c] - cell.size();
      if (ri == 0 || c == 0) {  // header row and row labels: left aligned
        out << cell << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << cell;
      }
      if (c + 1 < cols) out << "  ";
    }
    out << '\n';
    if (ri == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c + 1 < cols ? 2 : 0);
      out << std::string(total, '-') << '\n';
    }
  }
  return out.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*E", precision, v);
  return buf;
}

std::string fmt_int(std::uint64_t v) {
  // Group thousands for readability.
  const std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_pct(double frac, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, 100.0 * frac);
  return buf;
}

}  // namespace pi2m::io
