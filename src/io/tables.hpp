// Fixed-width text tables for the benchmark harness: every bench binary
// prints the rows of the paper table/figure it reproduces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pi2m::io {

class TextTable {
 public:
  /// First row added is treated as the header.
  void add_row(std::vector<std::string> cells);
  /// Renders with column alignment (header left, data right).
  [[nodiscard]] std::string to_string() const;
  void print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers used across benches.
std::string fmt_double(double v, int precision = 2);
std::string fmt_sci(double v, int precision = 2);
std::string fmt_int(std::uint64_t v);
std::string fmt_pct(double frac, int precision = 1);

}  // namespace pi2m::io
