#include "io/writers.hpp"

#include <cstdio>
#include <memory>

namespace pi2m::io {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open(const std::string& path) { return File(std::fopen(path.c_str(), "w")); }

}  // namespace

bool write_vtk(const TetMesh& mesh, const std::string& path) {
  File f = open(path);
  if (!f) return false;
  std::fprintf(f.get(), "# vtk DataFile Version 3.0\npi2m mesh\nASCII\n");
  std::fprintf(f.get(), "DATASET UNSTRUCTURED_GRID\nPOINTS %zu double\n",
               mesh.points.size());
  for (const Vec3& p : mesh.points) {
    std::fprintf(f.get(), "%.9g %.9g %.9g\n", p.x, p.y, p.z);
  }
  std::fprintf(f.get(), "CELLS %zu %zu\n", mesh.tets.size(),
               mesh.tets.size() * 5);
  for (const auto& t : mesh.tets) {
    std::fprintf(f.get(), "4 %u %u %u %u\n", t[0], t[1], t[2], t[3]);
  }
  std::fprintf(f.get(), "CELL_TYPES %zu\n", mesh.tets.size());
  for (std::size_t i = 0; i < mesh.tets.size(); ++i) {
    std::fprintf(f.get(), "10\n");  // VTK_TETRA
  }
  std::fprintf(f.get(), "CELL_DATA %zu\nSCALARS label int 1\nLOOKUP_TABLE default\n",
               mesh.tets.size());
  for (const Label l : mesh.tet_labels) {
    std::fprintf(f.get(), "%d\n", static_cast<int>(l));
  }
  return std::ferror(f.get()) == 0;
}

bool write_off_surface(const TetMesh& mesh, const std::string& path) {
  File f = open(path);
  if (!f) return false;
  std::fprintf(f.get(), "OFF\n%zu %zu 0\n", mesh.points.size(),
               mesh.boundary_tris.size());
  for (const Vec3& p : mesh.points) {
    std::fprintf(f.get(), "%.9g %.9g %.9g\n", p.x, p.y, p.z);
  }
  for (const auto& t : mesh.boundary_tris) {
    std::fprintf(f.get(), "3 %u %u %u\n", t[0], t[1], t[2]);
  }
  return std::ferror(f.get()) == 0;
}

bool write_medit(const TetMesh& mesh, const std::string& path) {
  File f = open(path);
  if (!f) return false;
  std::fprintf(f.get(), "MeshVersionFormatted 2\nDimension 3\n");
  std::fprintf(f.get(), "Vertices\n%zu\n", mesh.points.size());
  for (const Vec3& p : mesh.points) {
    std::fprintf(f.get(), "%.9g %.9g %.9g 0\n", p.x, p.y, p.z);
  }
  std::fprintf(f.get(), "Tetrahedra\n%zu\n", mesh.tets.size());
  for (std::size_t i = 0; i < mesh.tets.size(); ++i) {
    const auto& t = mesh.tets[i];
    std::fprintf(f.get(), "%u %u %u %u %d\n", t[0] + 1, t[1] + 1, t[2] + 1,
                 t[3] + 1, static_cast<int>(mesh.tet_labels[i]));
  }
  std::fprintf(f.get(), "Triangles\n%zu\n", mesh.boundary_tris.size());
  for (const auto& t : mesh.boundary_tris) {
    std::fprintf(f.get(), "%u %u %u 0\n", t[0] + 1, t[1] + 1, t[2] + 1);
  }
  std::fprintf(f.get(), "End\n");
  return std::ferror(f.get()) == 0;
}

bool write_stl_surface(const TetMesh& mesh, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  char header[80] = "pi2m boundary surface";
  std::fwrite(header, 1, sizeof header, f.get());
  const auto count = static_cast<std::uint32_t>(mesh.boundary_tris.size());
  std::fwrite(&count, 4, 1, f.get());
  for (const auto& t : mesh.boundary_tris) {
    const Vec3& a = mesh.points[t[0]];
    const Vec3& b = mesh.points[t[1]];
    const Vec3& c3 = mesh.points[t[2]];
    const Vec3 n = normalized(cross(b - a, c3 - a));
    float rec[12] = {
        float(n.x),  float(n.y),  float(n.z),  float(a.x), float(a.y),
        float(a.z),  float(b.x),  float(b.y),  float(b.z), float(c3.x),
        float(c3.y), float(c3.z)};
    std::fwrite(rec, 4, 12, f.get());
    const std::uint16_t attr = 0;
    std::fwrite(&attr, 2, 1, f.get());
  }
  return std::ferror(f.get()) == 0;
}

}  // namespace pi2m::io
