#include "io/mesh_serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace pi2m::io {
namespace {

constexpr char kMagic[8] = {'P', 'I', '2', 'M', 'M', 'S', 'H', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return in.good();
}

template <typename T>
bool read_vec(std::ifstream& in, std::vector<T>& v, std::uint64_t max_count) {
  std::uint64_t n = 0;
  if (!read_pod(in, n) || n > max_count) return false;
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return in.good() || (n == 0 && !in.bad());
}

constexpr std::uint64_t kMaxCount = std::uint64_t{1} << 33;

}  // namespace

bool save_mesh(const TetMesh& mesh, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof kMagic);
  write_vec(out, mesh.points);
  write_vec(out, mesh.point_kinds);
  write_vec(out, mesh.tets);
  write_vec(out, mesh.tet_labels);
  write_vec(out, mesh.boundary_tris);
  return out.good();
}

std::optional<TetMesh> load_mesh(const std::string& path, std::string* error) {
  const auto fail = [&](const char* msg) -> std::optional<TetMesh> {
    if (error) *error = msg;
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open file");
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  if (!in.good() || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return fail("bad magic / unsupported version");
  }
  TetMesh m;
  if (!read_vec(in, m.points, kMaxCount)) return fail("truncated points");
  if (!read_vec(in, m.point_kinds, kMaxCount)) return fail("truncated kinds");
  if (!read_vec(in, m.tets, kMaxCount)) return fail("truncated tets");
  if (!read_vec(in, m.tet_labels, kMaxCount)) return fail("truncated labels");
  if (!read_vec(in, m.boundary_tris, kMaxCount)) return fail("truncated tris");
  if (m.point_kinds.size() != m.points.size() ||
      m.tet_labels.size() != m.tets.size()) {
    return fail("inconsistent array sizes");
  }
  const auto n = static_cast<std::uint32_t>(m.points.size());
  for (const auto& t : m.tets) {
    for (const std::uint32_t w : t) {
      if (w >= n) return fail("tet index out of range");
    }
  }
  for (const auto& f : m.boundary_tris) {
    for (const std::uint32_t w : f) {
      if (w >= n) return fail("boundary index out of range");
    }
  }
  return m;
}

}  // namespace pi2m::io
