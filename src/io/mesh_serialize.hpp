// Binary serialization of extracted meshes (.p2m): a compact round-trip
// format so large meshes can be cached between pipeline stages without the
// precision loss and size of text formats.
#pragma once

#include <optional>
#include <string>

#include "core/pi2m.hpp"

namespace pi2m::io {

/// Writes the mesh in the versioned binary .p2m format.
bool save_mesh(const TetMesh& mesh, const std::string& path);

/// Reads a .p2m file; nullopt (with `error` filled when given) on any
/// malformed or version-incompatible input.
std::optional<TetMesh> load_mesh(const std::string& path,
                                 std::string* error = nullptr);

}  // namespace pi2m::io
