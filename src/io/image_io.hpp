// Segmented-image file I/O: MetaImage (.mha, the ITK/3D-Slicer container
// the paper's atlas inputs ship in) with embedded uncompressed voxel data,
// plus a trivial raw+header pair. Only the label-image subset is supported:
// unsigned 8/16-bit voxels, 3 dimensions, no compression.
#pragma once

#include <optional>
#include <string>

#include "imaging/image3d.hpp"

namespace pi2m::io {

/// Writes `img` as an uncompressed MET_UCHAR MetaImage with embedded data.
bool write_mha(const LabeledImage3D& img, const std::string& path);

/// Reads an uncompressed local-data MetaImage. Returns nullopt (and fills
/// `error` when given) on malformed input or unsupported features; 16-bit
/// inputs are accepted when every voxel fits a label byte.
std::optional<LabeledImage3D> read_mha(const std::string& path,
                                       std::string* error = nullptr);

}  // namespace pi2m::io
