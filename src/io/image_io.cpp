#include "io/image_io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace pi2m::io {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

struct MhaHeader {
  int nx = 0, ny = 0, nz = 0;
  Vec3 spacing{1, 1, 1};
  Vec3 origin{0, 0, 0};
  std::string element_type;
  bool big_endian = false;     ///< ElementByteOrderMSB / BinaryDataByteOrderMSB
  std::size_t header_end = 0;  ///< offset of the first voxel byte
};

bool parse_header(const std::string& raw, MhaHeader& h, std::string* error) {
  std::size_t pos = 0;
  std::map<std::string, std::string> kv;
  while (pos < raw.size()) {
    const std::size_t eol = raw.find('\n', pos);
    if (eol == std::string::npos) return fail(error, "unterminated header");
    const std::string line = raw.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail(error, "malformed header line");
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    kv[key] = val;
    if (key == "ElementDataFile") {
      if (val != "LOCAL") return fail(error, "only ElementDataFile=LOCAL supported");
      h.header_end = pos;
      break;
    }
  }
  if (h.header_end == 0) return fail(error, "missing ElementDataFile");

  const auto get = [&](const std::string& k) -> std::string {
    const auto it = kv.find(k);
    return it == kv.end() ? std::string{} : it->second;
  };
  if (get("NDims") != "3") return fail(error, "only NDims=3 supported");
  if (get("CompressedData") == "True") {
    return fail(error,
                "CompressedData = True is not supported: decompress the file "
                "first (e.g. convert with ITK/SimpleITK to an uncompressed "
                ".mha)");
  }
  if (!get("CompressedData").empty() && get("CompressedData") != "False") {
    return fail(error, "unrecognized CompressedData value '" +
                           get("CompressedData") + "'");
  }
  // MetaImage spells the byte-order key both ways depending on the writer;
  // either one set to True means the voxel data is big-endian.
  for (const char* k : {"ElementByteOrderMSB", "BinaryDataByteOrderMSB"}) {
    const std::string v = get(k);
    if (v == "True") {
      h.big_endian = true;
    } else if (!v.empty() && v != "False") {
      return fail(error, std::string("bad ") + k + " value '" + v + "'");
    }
  }
  {
    std::istringstream ss(get("DimSize"));
    if (!(ss >> h.nx >> h.ny >> h.nz) || h.nx <= 0 || h.ny <= 0 || h.nz <= 0) {
      return fail(error, "bad DimSize");
    }
  }
  {
    std::string sp = get("ElementSpacing");
    if (sp.empty()) sp = get("ElementSize");
    if (!sp.empty()) {
      std::istringstream ss(sp);
      if (!(ss >> h.spacing.x >> h.spacing.y >> h.spacing.z) ||
          h.spacing.x <= 0 || h.spacing.y <= 0 || h.spacing.z <= 0) {
        return fail(error, "bad ElementSpacing");
      }
    }
  }
  {
    std::string off = get("Offset");
    if (off.empty()) off = get("Position");
    if (!off.empty()) {
      std::istringstream ss(off);
      if (!(ss >> h.origin.x >> h.origin.y >> h.origin.z)) {
        return fail(error, "bad Offset");
      }
    }
  }
  h.element_type = get("ElementType");
  if (h.element_type != "MET_UCHAR" && h.element_type != "MET_USHORT") {
    return fail(error, "unsupported ElementType '" + h.element_type + "'");
  }
  return true;
}

}  // namespace

bool write_mha(const LabeledImage3D& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "ObjectType = Image\n"
      << "NDims = 3\n"
      << "BinaryData = True\n"
      << "BinaryDataByteOrderMSB = False\n"
      << "CompressedData = False\n"
      << "DimSize = " << img.nx() << ' ' << img.ny() << ' ' << img.nz() << '\n'
      << "ElementSpacing = " << img.spacing().x << ' ' << img.spacing().y
      << ' ' << img.spacing().z << '\n'
      << "Offset = " << img.origin().x << ' ' << img.origin().y << ' '
      << img.origin().z << '\n'
      << "ElementType = MET_UCHAR\n"
      << "ElementDataFile = LOCAL\n";
  out.write(reinterpret_cast<const char*>(img.raw().data()),
            static_cast<std::streamsize>(img.voxel_count()));
  return out.good();
}

std::optional<LabeledImage3D> read_mha(const std::string& path,
                                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string raw = buf.str();

  MhaHeader h;
  if (!parse_header(raw, h, error)) return std::nullopt;

  const std::size_t voxels =
      static_cast<std::size_t>(h.nx) * h.ny * h.nz;
  const std::size_t bytes_per =
      h.element_type == "MET_USHORT" ? 2 : 1;
  if (raw.size() - h.header_end < voxels * bytes_per) {
    if (error) *error = "truncated voxel data";
    return std::nullopt;
  }

  LabeledImage3D img(h.nx, h.ny, h.nz, h.spacing, h.origin);
  const auto* data =
      reinterpret_cast<const unsigned char*>(raw.data() + h.header_end);
  if (bytes_per == 1) {
    std::copy(data, data + voxels, img.raw().begin());
  } else {
    for (std::size_t i = 0; i < voxels; ++i) {
      // ushort labels, assembled per the header's byte order (the previous
      // reader assumed little-endian and silently mangled MSB files);
      // must fit a label byte.
      const unsigned lo = data[2 * i + (h.big_endian ? 1 : 0)];
      const unsigned hi = data[2 * i + (h.big_endian ? 0 : 1)];
      const unsigned v = lo | (hi << 8);
      if (v > 255) {
        if (error) *error = "MET_USHORT label exceeds 255";
        return std::nullopt;
      }
      img.raw()[i] = static_cast<Label>(v);
    }
  }
  return img;
}

}  // namespace pi2m::io
