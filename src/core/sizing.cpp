#include "core/sizing.hpp"

#include <algorithm>
#include <limits>

namespace pi2m::sizing {

SizeFunction unconstrained() {
  return [](const Vec3&) { return std::numeric_limits<double>::infinity(); };
}

SizeFunction uniform(double radius) {
  return [radius](const Vec3&) { return radius; };
}

SizeFunction axis_graded(int axis, double lo_coord, double hi_coord,
                         double radius_at_lo, double radius_at_hi) {
  return [=](const Vec3& p) {
    const double x = p[axis];
    const double t =
        std::clamp((x - lo_coord) / (hi_coord - lo_coord), 0.0, 1.0);
    return radius_at_lo + t * (radius_at_hi - radius_at_lo);
  };
}

SizeFunction radial(const Vec3& focus, double near_radius, double far_radius,
                    double growth) {
  return [=](const Vec3& p) {
    return std::clamp(near_radius + growth * distance(p, focus), near_radius,
                      far_radius);
  };
}

SizeFunction per_label(const LabeledImage3D& img,
                       std::map<Label, double> radii, double default_radius) {
  return [&img, radii = std::move(radii), default_radius](const Vec3& p) {
    const auto it = radii.find(img.label_at(p));
    return it == radii.end() ? default_radius : it->second;
  };
}

}  // namespace pi2m::sizing
