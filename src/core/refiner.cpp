#include "core/refiner.hpp"

#include <thread>

#include "check/auditor.hpp"
#include "check/oplog.hpp"
#include "geometry/tetra.hpp"
#include "runtime/affinity.hpp"
#include "support/parallel_for.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {
namespace {

/// The virtual box inflates the image bounds by this fraction of the
/// diagonal so that circumcenters of near-hull elements stay insertable.
constexpr double kBoxMarginFrac = 0.15;

/// Per-thread cell-arena bump block (see DelaunayMesh). Big enough to
/// amortize the shared-counter CAS and keep a thread's fresh cells on its
/// own cache lines; small enough that the tail stranded at termination is
/// noise against the arena capacity.
constexpr std::uint32_t kArenaBlock = 256;

/// Timed-park duration. Parks double as the liveness backstop for the
/// termination/done checks, so they must stay short.
constexpr std::uint64_t kParkTimeoutUs = 1000;

Topology make_topology(const RefinerOptions& opt) {
  const int n = std::max(1, opt.threads);
  if (opt.topology_auto) {
    return Topology::from_probe(n, probe_host_topology());
  }
  return Topology(n, opt.topology);
}

}  // namespace

Refiner::Refiner(const LabeledImage3D& img, RefinerOptions opt)
    : Refiner(img, std::move(opt), nullptr) {}

Refiner::Refiner(const LabeledImage3D& img, RefinerOptions opt,
                 std::shared_ptr<const IsosurfaceOracle> warm_oracle)
    : opt_(opt),
      img_(&img),
      topo_(make_topology(opt)),
      stats_(static_cast<std::size_t>(std::max(1, opt.threads))) {
  opt_.threads = std::max(1, opt_.threads);
  PI2M_CHECK(opt_.rules.delta > 0.0, "RefineRulesConfig::delta must be set");

  if (warm_oracle != nullptr) {
    // EDT cache hit: the feature transform is already computed and shared;
    // the oracle's walk mode was fixed when the cache entry was built.
    oracle_ = std::move(warm_oracle);
    edt_sec_ = 0.0;
  } else {
    const double t0 = now_sec();
    {
      PI2M_TRACE_SPAN("phase.edt", "phase");
      const int edt_threads =
          opt_.edt_threads > 0 ? opt_.edt_threads : opt_.threads;
      auto fresh = std::make_unique<IsosurfaceOracle>(img, edt_threads);
      fresh->set_use_dda(!opt_.use_reference_walks);
      oracle_ = std::move(fresh);
    }
    edt_sec_ = now_sec() - t0;
  }

  const Aabb ib = img.bounds();
  const Aabb box = ib.inflated(kBoxMarginFrac * norm(ib.extent()));
  mesh_ = std::make_unique<DelaunayMesh>(box, opt_.max_vertices,
                                         opt_.max_cells, kArenaBlock,
                                         opt_.warm_arena);
  if (opt_.use_geom_cache) {
    geom_cache_ = std::make_unique<CellGeomCache>(mesh_->cell_capacity());
  }

  // Cell size = 2x query radius: a query ball overlaps at most 8 cells.
  // (removal_factor 0 disables R6; the grid still needs a positive cell.)
  const double delta = opt_.rules.delta;
  iso_grid_ = std::make_unique<SpatialHashGrid>(box, 2.0 * delta);
  cc_grid_ = std::make_unique<SpatialHashGrid>(
      box, 2.0 * std::max(opt_.rules.removal_factor, 1.0) * delta);

  lb_ = make_load_balancer(opt_.lb, topo_,
                           opt_.mutex_scheduler ? SchedulerImpl::Mutex
                                                : SchedulerImpl::LockFree);
  CmContext cm_ctx;
  cm_ctx.done = &done_;
  cm_ctx.idle_threads = &idle_count_;
  cm_ctx.nthreads = opt_.threads;
  cm_ctx.seed = opt_.rng_seed;
  cm_ = make_contention_manager(opt_.cm, cm_ctx);

  ctxs_.reserve(static_cast<std::size_t>(opt_.threads));
  for (int t = 0; t < opt_.threads; ++t) {
    ctxs_.push_back(std::make_unique<ThreadCtx>());
  }
}

void Refiner::drain_inbox(int tid) {
  ThreadCtx& ctx = *ctxs_[tid];
  ctx.inbox.drain([&](const PelEntry& e) {
    (e.near_surface ? ctx.pel_surface : ctx.pel_volume).push_back(e);
  });
}

void Refiner::wake_all_workers() {
  for (auto& c : ctxs_) c->parker.unpark();
}

bool Refiner::tag_near_surface(const std::array<Vec3, 4>& p) const {
  const Vec3 centroid = 0.25 * (p[0] + p[1] + p[2] + p[3]);
  double reach2 = 0.0;
  for (const Vec3& v : p) reach2 = std::max(reach2, distance2(centroid, v));
  const double d = oracle_->surface_distance_lower_bound(centroid);
  return d <= 2.0 * std::sqrt(reach2);
}

void Refiner::distribute_new_cells(int tid, const std::vector<CellId>& created) {
  ThreadCtx& ctx = *ctxs_[tid];
  ThreadStats& st = stats_[tid];
  st.cells_created.fetch_add(created.size(), std::memory_order_relaxed);

  // All new cells become refinement candidates; classification runs once,
  // at pop time (the paper classifies in the creator — running it in the
  // consumer halves the oracle work at the cost of slightly chattier PELs;
  // the classification outcome is identical).
  ctx.new_poor.clear();
  for (const CellId c : created) {
    const std::uint32_t gen = mesh_->cell_gen(c);
    if ((gen & 1u) == 0) continue;  // already re-retired by a racing thread
    const auto p = mesh_->positions(c);
    // Snapshot validation (see rules.cpp compute_core): a racing thread may
    // retire and recycle one of our fresh cells; the generation re-read
    // rejects a possibly-torn position read before anything is derived
    // from it.
    if (mesh_->cell_gen(c) != gen) continue;
    // The geometry cache is filled lazily by the first classify_cell of
    // (c, gen) rather than here: roughly half of freshly created cells are
    // re-retired by a later cavity before they are ever popped, so an
    // eager fill would pay the oracle work (EDT fetch + inside test) for
    // cells nobody classifies. Pops, retries and R3 neighbour scans of the
    // surviving cells all hit the lazily filled entry.
    ctx.new_poor.push_back({c, gen, tag_near_surface(p)});
  }
  if (ctx.new_poor.empty()) return;

  // Hand the fresh poor elements to a beggar when we have enough work of
  // our own (paper §4.4's counter threshold).
  if (static_cast<int>(ctx.pel_surface.size() + ctx.pel_volume.size()) >=
          opt_.give_threshold &&
      lb_->any_beggar()) {
    StealLevel level{};
    const int beggar = lb_->pop_beggar(tid, &level);
    // still_begging guards the lost-wakeup window of the old protocol: a
    // claimed beggar may already have left its idle loop (done flag, work
    // from another giver); its begging token is cleared only by its own
    // cancel, so a false here means "keep the batch locally". The residual
    // race (token read true, beggar cancels, batch lands after its final
    // drain) is benign: the giver raised outstanding_ before publishing, so
    // termination cannot fire until the beggar's next drain_inbox.
    if (beggar >= 0 && lb_->still_begging(beggar)) {
      ThreadCtx& bctx = *ctxs_[beggar];
      const auto n = static_cast<std::int64_t>(ctx.new_poor.size());
      outstanding_.fetch_add(n, std::memory_order_acq_rel);
      if (bctx.inbox.try_push_batch(ctx.new_poor.data(),
                                    ctx.new_poor.size())) {
        switch (level) {
          case StealLevel::IntraSocket:
            st.steals_intra_socket.fetch_add(1, std::memory_order_relaxed);
            telemetry::instant("steal.intra_socket", "lb", "to",
                               static_cast<std::uint64_t>(beggar));
            break;
          case StealLevel::IntraBlade:
            st.steals_intra_blade.fetch_add(1, std::memory_order_relaxed);
            telemetry::instant("steal.intra_blade", "lb", "to",
                               static_cast<std::uint64_t>(beggar));
            break;
          case StealLevel::InterBlade:
            st.steals_inter_blade.fetch_add(1, std::memory_order_relaxed);
            telemetry::instant("steal.inter_blade", "lb", "to",
                               static_cast<std::uint64_t>(beggar));
            break;
        }
        lb_->work_flag(beggar).store(true, std::memory_order_release);
        bctx.parker.unpark();
        st.unparks_sent.fetch_add(1, std::memory_order_relaxed);
        telemetry::instant("lb.unpark", "lb", "to",
                           static_cast<std::uint64_t>(beggar));
        return;
      }
      // Ring full (the beggar is drowning in hand-offs already): revert the
      // accounting and keep the batch on our own PELs.
      outstanding_.fetch_sub(n, std::memory_order_acq_rel);
    }
  }
  for (const PelEntry& e : ctx.new_poor) {
    (e.near_surface ? ctx.pel_surface : ctx.pel_volume).push_back(e);
  }
  outstanding_.fetch_add(static_cast<std::int64_t>(ctx.new_poor.size()),
                         std::memory_order_acq_rel);
}

void Refiner::handle_insertion(int tid, const PelEntry& e) {
  ThreadCtx& ctx = *ctxs_[tid];
  ThreadStats& st = stats_[tid];

  if (mesh_->cell_gen(e.cell) != e.gen) return;  // invalidated entry
  // One span covers classification + the speculative operation; rule 0
  // marks entries that classified clean (no operation attempted).
  telemetry::Span op_span("op.insert", "op");
  const Classification cls =
      classify_cell(*mesh_, e.cell, *oracle_, *iso_grid_, opt_.rules,
                    geom_cache_.get(), tid);
  op_span.set_arg("rule", static_cast<std::uint64_t>(cls.rule));
  if (cls.rule == Rule::None) return;

  const double t0 = now_sec();
  // Circumcenter insertions (R2/R4/R5) skip the point-location walk: the
  // popped cell itself conflicts with its own circumcenter, so the cavity
  // BFS can be seeded there directly. Surface points (R1/R3) lie away from
  // the cell and use the walking path with the cell as hint.
  const bool is_circumcenter = cls.kind == VertexKind::Circumcenter;
  // R1's δ-sparsity gate was evaluated inside classify_cell; on an
  // oversubscribed core the thread can be descheduled before the insert
  // commits, during which racing threads may sample the same surface
  // patch. Re-check the gate against the current grid immediately before
  // the operation so the window shrinks from [classify, commit] to the
  // locked region, and re-examine the cell under the updated grid instead
  // of committing a near-duplicate sample.
  if (cls.rule == Rule::R1 &&
      iso_grid_->any_within(cls.point, opt_.rules.delta)) {
    if (mesh_->cell_gen(e.cell) == e.gen) {
      (e.near_surface ? ctx.pel_surface : ctx.pel_volume).push_back(e);
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
    }
    return;
  }
  // Tags the commit record with the triggering rule when the op-log
  // recorder is active (the kernel itself does not know about R1-R5).
  check::set_current_rule(static_cast<std::uint8_t>(cls.rule));
  const OpResult r =
      is_circumcenter
          ? insert_point_in_conflict(*mesh_, cls.point, cls.kind, e.cell,
                                     e.gen, tid, ctx.scratch)
          : insert_point(*mesh_, cls.point, cls.kind, e.cell, tid,
                         ctx.scratch);
  switch (r.status) {
    case OpStatus::Success: {
      st.operations.fetch_add(1, std::memory_order_relaxed);
      st.insertions.fetch_add(1, std::memory_order_relaxed);
      successful_ops_.fetch_add(1, std::memory_order_relaxed);
      rule_counts_[static_cast<std::size_t>(cls.rule)].fetch_add(
          1, std::memory_order_relaxed);
      cm_->on_success(tid);

      if (on_surface(cls.kind)) {
        iso_grid_->insert(cls.point, r.new_vertex);
        // R6: already-inserted circumcenters too close to the new surface
        // vertex must go.
        cc_grid_->collect_within(
            cls.point, opt_.rules.removal_factor * opt_.rules.delta,
            ctx.near_ccs);
        for (const auto& [pos, vid] : ctx.near_ccs) {
          ctx.removals.push_back(vid);
          outstanding_.fetch_add(1, std::memory_order_acq_rel);
        }
      } else {
        cc_grid_->insert(cls.point, r.new_vertex);
      }
      distribute_new_cells(tid, ctx.scratch.created);

      // The triggering cell may have survived (R1/R3 insert points away
      // from its circumsphere); re-examine it for the remaining rules.
      if (mesh_->cell_gen(e.cell) == e.gen) {
        (e.near_surface ? ctx.pel_surface : ctx.pel_volume).push_back(e);
        outstanding_.fetch_add(1, std::memory_order_acq_rel);
      }
      break;
    }
    case OpStatus::Conflict:
      st.rollbacks.fetch_add(1, std::memory_order_relaxed);
      st.add_rollback_time(now_sec() - t0);
      telemetry::instant(
          "rollback", "op", "by",
          static_cast<std::uint64_t>(std::max(r.conflicting_thread, 0)));
      (e.near_surface ? ctx.pel_surface : ctx.pel_volume).push_back(e);
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
      cm_->on_rollback(tid, r.conflicting_thread, st);
      break;
    case OpStatus::Stale:
      (e.near_surface ? ctx.pel_surface : ctx.pel_volume).push_back(e);
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
      std::this_thread::yield();
      break;
    case OpStatus::Failed:
      st.failed_ops.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void Refiner::handle_removal(int tid, VertexId v) {
  ThreadCtx& ctx = *ctxs_[tid];
  ThreadStats& st = stats_[tid];

  const Vertex& vert = mesh_->vertex(v);
  if (vert.dead.load(std::memory_order_acquire) ||
      vert.kind != VertexKind::Circumcenter) {
    return;  // already removed, or a stale/foreign entry
  }
  const Vec3 pos = vert.pos;

  telemetry::Span op_span("op.remove", "op");
  // 6 = the R6 removal rule (the Rule enum only covers insertion rules).
  check::set_current_rule(6);
  const double t0 = now_sec();
  const OpResult r = remove_vertex(*mesh_, v, tid, ctx.removal_scratch);
  switch (r.status) {
    case OpStatus::Success:
      st.operations.fetch_add(1, std::memory_order_relaxed);
      st.removals.fetch_add(1, std::memory_order_relaxed);
      successful_ops_.fetch_add(1, std::memory_order_relaxed);
      cm_->on_success(tid);
      cc_grid_->remove(pos, v);
      distribute_new_cells(tid, ctx.removal_scratch.created);
      break;
    case OpStatus::Conflict:
      st.rollbacks.fetch_add(1, std::memory_order_relaxed);
      st.add_rollback_time(now_sec() - t0);
      telemetry::instant(
          "rollback", "op", "by",
          static_cast<std::uint64_t>(std::max(r.conflicting_thread, 0)));
      ctx.removals.push_back(v);
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
      cm_->on_rollback(tid, r.conflicting_thread, st);
      break;
    case OpStatus::Stale:
      ctx.removals.push_back(v);
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
      std::this_thread::yield();
      break;
    case OpStatus::Failed:
      // Degenerate ball or hull-adjacent vertex: the circumcenter stays
      // (documented policy); drop it from the grid so R6 stops retrying.
      cc_grid_->remove(pos, v);
      st.failed_ops.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void Refiner::idle_protocol(int tid) {
  ThreadCtx& ctx = *ctxs_[tid];
  ThreadStats& st = stats_[tid];

  // Never park the system's last runnable thread while others wait in a
  // contention list: rescue one first (see contention.hpp).
  cm_->wake_one();

  telemetry::Span idle_span("idle", "lb");
  const double t0 = now_sec();
  idle_count_.fetch_add(1, std::memory_order_acq_rel);
  lb_->enqueue_beggar(tid);
  std::atomic<bool>& flag = lb_->work_flag(tid);
  // Adaptive idle policy: spin/yield for park_spin_us (work usually arrives
  // within a few operations' latency), then fall back to timed parks. The
  // park timeout bounds how stale the checks below can get even if an
  // unpark is missed, so liveness never depends on the wake-up path alone.
  const double spin_deadline = t0 + 1e-6 * opt_.park_spin_us;
  while (true) {
    if (flag.load(std::memory_order_acquire)) break;
    if (done_.load(std::memory_order_acquire)) break;
    if (!ctx.inbox.empty()) break;
    // Global termination: everyone idle, nothing outstanding, nobody
    // blocked in a contention list.
    if (idle_count_.load(std::memory_order_acquire) == opt_.threads &&
        outstanding_.load(std::memory_order_acquire) == 0 &&
        cm_->blocked_count() == 0) {
      done_.store(true, std::memory_order_release);
      cm_->wake_all();
      wake_all_workers();
      break;
    }
    if (now_sec() < spin_deadline) {
      std::this_thread::yield();
      continue;
    }
    telemetry::Span park_span("idle.park", "lb");
    st.parks.fetch_add(1, std::memory_order_relaxed);
    const double p0 = now_sec();
    ctx.parker.park(kParkTimeoutUs);
    st.add_parked(now_sec() - p0);
  }
  lb_->cancel(tid);
  flag.store(false, std::memory_order_release);
  idle_count_.fetch_sub(1, std::memory_order_acq_rel);
  st.add_loadbalance(now_sec() - t0);
  drain_inbox(tid);
}

void Refiner::worker(int tid) {
  telemetry::set_thread_name("worker " + std::to_string(tid));
  if (opt_.pin) {
    // Best-effort: contiguous tid blocks land on the same package when the
    // topology was host-probed (identity map otherwise).
    pin_current_thread_to_cpu(topo_.cpu_of(tid));
  }
  ThreadCtx& ctx = *ctxs_[tid];
  while (!done_.load(std::memory_order_acquire)) {
    if (successful_ops_.load(std::memory_order_relaxed) >= opt_.op_budget) {
      budget_exhausted_.store(true, std::memory_order_release);
      done_.store(true, std::memory_order_release);
      cm_->wake_all();
      wake_all_workers();
      break;
    }
    // Cooperative cancellation, checked at the loop boundary only: an
    // in-flight operation always commits or rolls back in full, so the
    // mesh is left structurally sound for inspection/teardown.
    if (opt_.cancel != nullptr &&
        opt_.cancel->load(std::memory_order_relaxed)) {
      cancelled_.store(true, std::memory_order_release);
      done_.store(true, std::memory_order_release);
      cm_->wake_all();
      wake_all_workers();
      break;
    }
    if (!ctx.removals.empty()) {
      const VertexId v = ctx.removals.front();
      ctx.removals.pop_front();
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
      handle_removal(tid, v);
      continue;
    }
    if (ctx.pel_surface.empty() && ctx.pel_volume.empty()) drain_inbox(tid);
    if (ctx.pel_surface.empty() && ctx.pel_volume.empty()) {
      idle_protocol(tid);
      continue;
    }
    // LIFO within each priority class: refining the most recent cells
    // first lets local cascades retire their short-lived siblings before
    // they are ever classified, which measurably cuts wasted oracle work
    // versus FIFO. Surface work drains before volume work (see ThreadCtx).
    std::deque<PelEntry>& q =
        ctx.pel_surface.empty() ? ctx.pel_volume : ctx.pel_surface;
    const PelEntry e = q.back();
    q.pop_back();
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    handle_insertion(tid, e);
  }
}

void Refiner::monitor() {
  const double period =
      opt_.record_timeline ? opt_.timeline_period_sec : 0.01;
  std::uint64_t last_ops = 0;
  double last_progress = now_sec();
  double next_sample = start_sec_;

  while (!done_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    // Backstop for fully-parked workers: the monitor notices a cancel
    // within its polling period and wakes everyone.
    if (opt_.cancel != nullptr &&
        opt_.cancel->load(std::memory_order_relaxed)) {
      cancelled_.store(true, std::memory_order_release);
      done_.store(true, std::memory_order_release);
      cm_->wake_all();
      wake_all_workers();
      break;
    }
    const double now = now_sec();
    const std::uint64_t ops = successful_ops_.load(std::memory_order_relaxed);
    if (ops != last_ops) {
      last_ops = ops;
      last_progress = now;
    } else if (now - last_progress > opt_.watchdog_sec) {
      // No operation completed anywhere for watchdog_sec: livelock (or a
      // wedged system); abort so the caller can report it (paper Table 1).
      livelocked_.store(true, std::memory_order_release);
      done_.store(true, std::memory_order_release);
      cm_->wake_all();
      wake_all_workers();
      break;
    }
    if (opt_.record_timeline && now >= next_sample) {
      const StatsTotals t = aggregate(stats_);
      timeline_.push_back({now - start_sec_, t.contention_sec,
                           t.loadbalance_sec, t.rollback_sec, t.operations});
      next_sample = now + period;
    }
  }
}

RefineOutcome Refiner::refine() {
  PI2M_CHECK(!refined_, "Refiner::refine() may only run once");
  refined_ = true;
  start_sec_ = now_sec();

  // Hybrid interior fill: build the BCC occupancy/templates from the EDT
  // and seed the interface lattice points into the quiescent mesh before
  // any worker starts — both phases count toward the refinement wall time
  // (they replace refinement work, so benches must see their cost).
  double lattice_fill_sec = 0.0, lattice_seed_sec = 0.0;
  if (opt_.interior == InteriorFill::Lattice) {
    {
      PI2M_TRACE_SPAN("phase.lattice_fill", "phase");
      const double t0 = now_sec();
      lattice_ = std::make_unique<lattice::LatticeFill>(
          *oracle_, opt_.rules.delta, opt_.lattice_spacing, opt_.threads);
      lattice_fill_sec = now_sec() - t0;
    }
    if (lattice_->empty()) {
      // No deep-interior band at this image/δ scale: degrade to the pure
      // Delaunay path (byte-identical to --interior=delaunay).
      lattice_.reset();
    } else {
      PI2M_TRACE_SPAN("phase.lattice_seed", "phase");
      const double t0 = now_sec();
      lattice_->seed_interface(*mesh_, 0, ctxs_[0]->scratch);
      lattice_seed_sec = now_sec() - t0;
      opt_.rules.lattice = lattice_.get();
    }
  }

  // Seed thread 0 with the initial cells (paper: "only the main thread
  // might have a non-empty PEL" right after the box triangulation) — after
  // lattice seeding, so the enumeration sees the post-seed triangulation.
  {
    ThreadCtx& ctx = *ctxs_[0];
    mesh_->for_each_alive_cell([&](CellId c) {
      ctx.pel_surface.push_back({c, mesh_->cell_gen(c), true});
      outstanding_.fetch_add(1, std::memory_order_relaxed);
    });
  }
  double wall = 0.0;
  {
    PI2M_TRACE_SPAN("phase.refine", "phase");
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(opt_.threads));
    for (int t = 0; t < opt_.threads; ++t) {
      pool.emplace_back([this, t] { worker(t); });
    }
    monitor();
    for (std::thread& th : pool) th.join();
    wall = now_sec() - start_sec_;
  }

  RefineOutcome out;
  if (opt_.audit_final) {
    // Phase boundary: the workers joined, so the mesh is quiescent and the
    // auditor's no-concurrent-mutation contract holds.
    PI2M_TRACE_SPAN("phase.audit", "phase");
    check::InvariantAuditor auditor(*mesh_);
    check::AuditReport rep = auditor.audit_full();
    out.audit_errors = std::move(rep.errors);
    if (!rep.ok && out.audit_errors.empty()) {
      out.audit_errors.push_back("audit failed (violations truncated)");
    }
  }
  out.completed = !livelocked_.load() && !budget_exhausted_.load() &&
                  !cancelled_.load();
  out.livelocked = livelocked_.load();
  out.budget_exhausted = budget_exhausted_.load();
  out.cancelled = cancelled_.load();
  out.wall_sec = wall;
  out.edt_sec = edt_sec_;
  if (lattice_ != nullptr) {
    const lattice::LatticeStats& ls = lattice_->stats();
    out.lattice_cubes = ls.cubes_filled;
    out.lattice_tets = ls.tets;
    out.lattice_seeds = ls.interface_vertices;
    out.lattice_fill_sec = lattice_fill_sec;
    out.lattice_seed_sec = lattice_seed_sec;
  }
  out.totals = aggregate(stats_);
  out.timeline = timeline_;
  for (std::size_t i = 0; i < rule_counts_.size(); ++i) {
    out.rule_counts[i] = rule_counts_[i].load(std::memory_order_relaxed);
  }
  if (geom_cache_ != nullptr) {
    const CellGeomCache::CounterTotals ct = geom_cache_->totals();
    out.classify_cache_hits = ct.hits;
    out.classify_cache_misses = ct.misses;
    out.classify_csp_hits = ct.csp_hits;
    out.classify_csp_misses = ct.csp_misses;
  }

  // Count alive cells and final elements (circumcenter inside O) with a
  // parallel scan — the paper keeps incremental per-thread lists instead;
  // a single O(#cells) pass at the end is an equivalent, simpler accounting
  // (see DESIGN.md deviations).
  const std::uint32_t slots = mesh_->cell_slot_count();
  std::atomic<std::size_t> alive{0}, elems{0};
  parallel_blocks(slots, opt_.threads, [&](std::size_t b, std::size_t e) {
    std::size_t a = 0, m = 0;
    for (std::size_t c = b; c < e; ++c) {
      const CellId cid = static_cast<CellId>(c);
      if (!mesh_->cell_alive(cid)) continue;
      ++a;
      const auto p = mesh_->positions(cid);
      const Circumsphere cs = circumsphere(p[0], p[1], p[2], p[3]);
      if (cs.valid && oracle_->inside(cs.center)) ++m;
    }
    alive.fetch_add(a);
    elems.fetch_add(m);
  });
  out.alive_cells = alive.load();
  out.mesh_cells = elems.load();
  std::size_t live_vertices = 0;
  for (VertexId v = 0; v < mesh_->vertex_count(); ++v) {
    if (!mesh_->vertex(v).dead.load(std::memory_order_relaxed)) ++live_vertices;
  }
  out.vertices = live_vertices;
  return out;
}

}  // namespace pi2m
