#include "core/validate.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "geometry/tetra.hpp"
#include "predicates/predicates.hpp"

namespace pi2m {
namespace {

using FaceKey = std::array<std::uint32_t, 3>;
using EdgeKey = std::array<std::uint32_t, 2>;

FaceKey face_key(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  FaceKey k{a, b, c};
  std::sort(k.begin(), k.end());
  return k;
}

}  // namespace

MeshValidation validate_mesh(const TetMesh& mesh) {
  MeshValidation v;
  auto fail = [&v](std::string msg) { v.errors.push_back(std::move(msg)); };

  // --- array and index sanity ---
  if (mesh.point_kinds.size() != mesh.points.size()) {
    fail("point_kinds size mismatch");
  }
  if (mesh.tet_labels.size() != mesh.tets.size()) {
    fail("tet_labels size mismatch");
  }
  const auto n = static_cast<std::uint32_t>(mesh.points.size());
  for (const auto& t : mesh.tets) {
    for (const std::uint32_t w : t) {
      if (w >= n) {
        fail("tet vertex index out of range");
        break;
      }
    }
  }
  for (const auto& f : mesh.boundary_tris) {
    for (const std::uint32_t w : f) {
      if (w >= n) {
        fail("boundary vertex index out of range");
        break;
      }
    }
  }
  if (!v.errors.empty()) return v;  // indices unusable below

  // --- element sanity ---
  // Sliver threshold: relative to the mesh's own scale so validation is
  // unit-independent. 1e-12 of diag^3 is far below any element a sizing-
  // driven refinement legitimately produces, but still ~4 orders of
  // magnitude above double rounding noise at the bbox scale.
  Aabb bbox;
  for (const Vec3& p : mesh.points) bbox.expand(p);
  const double diag = mesh.points.empty() ? 0.0 : norm(bbox.extent());
  const double sliver_vol = 1e-12 * diag * diag * diag;
  for (std::size_t i = 0; i < mesh.tets.size(); ++i) {
    const auto& t = mesh.tets[i];
    // The exact predicate decides degenerate/inverted: the floating-point
    // volume of a coplanar quadruple can round to a nonzero value (and an
    // inverted sliver's to a positive one), so fabs(vol) <= 0.0 misses both.
    const int sign = orient3d(mesh.points[t[0]], mesh.points[t[1]],
                              mesh.points[t[2]], mesh.points[t[3]]);
    if (sign == 0) {
      fail("degenerate (coplanar) tetrahedron");
    } else if (sign < 0) {
      fail("inverted (negatively oriented) tetrahedron");
    } else {
      const double vol = signed_volume(mesh.points[t[0]], mesh.points[t[1]],
                                       mesh.points[t[2]], mesh.points[t[3]]);
      if (vol < sliver_vol) ++v.sliver_elements;
    }
    if (i < mesh.tet_labels.size() && mesh.tet_labels[i] == 0) {
      fail("element with background label");
    }
  }

  // --- face conformity ---
  std::map<FaceKey, int> face_count;
  for (const auto& t : mesh.tets) {
    constexpr int f[4][3] = {{1, 3, 2}, {0, 2, 3}, {0, 3, 1}, {0, 1, 2}};
    for (const auto& fi : f) {
      ++face_count[face_key(t[fi[0]], t[fi[1]], t[fi[2]])];
    }
  }
  std::map<FaceKey, int> boundary_faces;
  for (const auto& b : mesh.boundary_tris) {
    ++boundary_faces[face_key(b[0], b[1], b[2])];
  }
  for (const auto& [k, c] : boundary_faces) {
    if (c > 1) fail("duplicate boundary triangle");
    if (face_count.find(k) == face_count.end()) {
      fail("boundary triangle is not a face of any element");
    }
  }
  for (const auto& [k, c] : face_count) {
    if (c > 2) {
      fail("face shared by more than two elements");
    } else if (c == 1 && boundary_faces.find(k) == boundary_faces.end()) {
      fail("exposed face missing from boundary_tris");
    }
  }

  // --- boundary edge manifoldness (informational) ---
  std::map<EdgeKey, int> edge_count;
  for (const auto& b : mesh.boundary_tris) {
    for (int i = 0; i < 3; ++i) {
      EdgeKey e{b[i], b[(i + 1) % 3]};
      if (e[0] > e[1]) std::swap(e[0], e[1]);
      ++edge_count[e];
    }
  }
  for (const auto& [e, c] : edge_count) {
    if (c != 2) ++v.boundary_edges_nonmanifold;
  }

  // --- connected components of the element graph (via shared faces) ---
  if (!mesh.tets.empty()) {
    std::map<FaceKey, std::uint32_t> first_owner;
    std::vector<std::uint32_t> parent(mesh.tets.size());
    for (std::uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
    std::function<std::uint32_t(std::uint32_t)> find =
        [&](std::uint32_t x) -> std::uint32_t {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (std::uint32_t ti = 0; ti < mesh.tets.size(); ++ti) {
      const auto& t = mesh.tets[ti];
      constexpr int f[4][3] = {{1, 3, 2}, {0, 2, 3}, {0, 3, 1}, {0, 1, 2}};
      for (const auto& fi : f) {
        const FaceKey k = face_key(t[fi[0]], t[fi[1]], t[fi[2]]);
        const auto [it, fresh] = first_owner.emplace(k, ti);
        if (!fresh) parent[find(ti)] = find(it->second);
      }
    }
    for (std::uint32_t i = 0; i < parent.size(); ++i) {
      if (find(i) == i) ++v.connected_components;
    }
  }

  v.ok = v.errors.empty();
  return v;
}

}  // namespace pi2m
