#include "core/spatial_grid.hpp"

#include <cmath>

namespace pi2m {
namespace {

/// Mixes a packed cell key into a bucket hash (splitmix64 finalizer).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

SpatialHashGrid::SpatialHashGrid(const Aabb& box, double cell_size,
                                 std::size_t bucket_count)
    : origin_(box.lo), cell_size_(cell_size), buckets_(bucket_count) {
  PI2M_CHECK(cell_size > 0.0, "grid cell size must be positive");
  PI2M_CHECK(bucket_count > 0, "grid needs at least one bucket");
}

std::int64_t SpatialHashGrid::pack_key(std::int64_t cx, std::int64_t cy,
                                       std::int64_t cz) {
  // 21 bits per axis (offset to keep them non-negative) pack into 63 bits.
  const std::int64_t kOff = 1 << 20;
  return ((cx + kOff) << 42) | ((cy + kOff) << 21) | (cz + kOff);
}

std::int64_t SpatialHashGrid::cell_key_of(const Vec3& p) const {
  return pack_key(
      static_cast<std::int64_t>(std::floor((p.x - origin_.x) / cell_size_)),
      static_cast<std::int64_t>(std::floor((p.y - origin_.y) / cell_size_)),
      static_cast<std::int64_t>(std::floor((p.z - origin_.z) / cell_size_)));
}

template <typename Fn>
void SpatialHashGrid::for_overlapped_cells(const Vec3& p, double radius,
                                           Fn&& fn) const {
  const auto lo = [&](double v, double o) {
    return static_cast<std::int64_t>(std::floor((v - radius - o) / cell_size_));
  };
  const auto hi = [&](double v, double o) {
    return static_cast<std::int64_t>(std::floor((v + radius - o) / cell_size_));
  };
  const std::int64_t x0 = lo(p.x, origin_.x), x1 = hi(p.x, origin_.x);
  const std::int64_t y0 = lo(p.y, origin_.y), y1 = hi(p.y, origin_.y);
  const std::int64_t z0 = lo(p.z, origin_.z), z1 = hi(p.z, origin_.z);
  for (std::int64_t z = z0; z <= z1; ++z) {
    for (std::int64_t y = y0; y <= y1; ++y) {
      for (std::int64_t x = x0; x <= x1; ++x) {
        fn(pack_key(x, y, z));
      }
    }
  }
}

std::size_t SpatialHashGrid::bucket_of(std::int64_t key) const {
  return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(key)) %
                                  buckets_.size());
}

void SpatialHashGrid::insert(const Vec3& p, VertexId v) {
  const std::int64_t key = cell_key_of(p);
  Bucket& b = buckets_[bucket_of(key)];
  b.acquire();
  b.items.push_back({p, v, key});
  b.release();
  count_.fetch_add(1, std::memory_order_relaxed);
}

bool SpatialHashGrid::remove(const Vec3& p, VertexId v) {
  const std::int64_t key = cell_key_of(p);
  Bucket& b = buckets_[bucket_of(key)];
  bool found = false;
  b.acquire();
  for (std::size_t i = 0; i < b.items.size(); ++i) {
    if (b.items[i].id == v && b.items[i].cell_key == key) {
      b.items[i] = b.items.back();
      b.items.pop_back();
      found = true;
      break;
    }
  }
  b.release();
  if (found) count_.fetch_sub(1, std::memory_order_relaxed);
  return found;
}

bool SpatialHashGrid::any_within(const Vec3& p, double radius) const {
  const double r2 = radius * radius;
  bool hit = false;
  for_overlapped_cells(p, radius, [&](std::int64_t key) {
    if (hit) return;
    const Bucket& b = buckets_[bucket_of(key)];
    b.acquire();
    for (const Entry& e : b.items) {
      if (e.cell_key == key && distance2(e.pos, p) < r2) {
        hit = true;
        break;
      }
    }
    b.release();
  });
  return hit;
}

void SpatialHashGrid::collect_within(
    const Vec3& p, double radius,
    std::vector<std::pair<Vec3, VertexId>>& out) const {
  out.clear();
  const double r2 = radius * radius;
  for_overlapped_cells(p, radius, [&](std::int64_t key) {
    const Bucket& b = buckets_[bucket_of(key)];
    b.acquire();
    for (const Entry& e : b.items) {
      if (e.cell_key == key && distance2(e.pos, p) < r2) {
        out.emplace_back(e.pos, e.id);
      }
    }
    b.release();
  });
}

}  // namespace pi2m
