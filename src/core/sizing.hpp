// User-specified sizing fields (paper rule R5: a tetrahedron whose
// circumradius exceeds sf(c(t)) is refined at its circumcenter). The paper
// highlights custom surface and volume densities as an advantage over
// voxel-pitch-locked PLC methods (§2).
#pragma once

#include <functional>
#include <map>

#include "geometry/vec3.hpp"
#include "imaging/image3d.hpp"

namespace pi2m {

/// Target circumradius bound at a point; return +inf to disable locally.
using SizeFunction = std::function<double(const Vec3&)>;

namespace sizing {

/// No size constraint anywhere (R5 never fires).
SizeFunction unconstrained();

/// Constant circumradius bound.
SizeFunction uniform(double radius);

/// Linear ramp along an axis between two bounds — exercises graded meshes.
SizeFunction axis_graded(int axis, double lo_coord, double hi_coord,
                         double radius_at_lo, double radius_at_hi);

/// Finer near a focus point, coarser away from it: radius grows linearly
/// with the distance from `focus` (clamped to [near_radius, far_radius]).
SizeFunction radial(const Vec3& focus, double near_radius, double far_radius,
                    double growth = 0.5);

/// Per-tissue element density (paper §2: "able to satisfy both surface and
/// volume custom element densities"): the bound at a point is looked up by
/// the tissue label there; labels not in the map use `default_radius`.
/// The image reference must outlive the returned function.
SizeFunction per_label(const LabeledImage3D& img,
                       std::map<Label, double> radii, double default_radius);

}  // namespace sizing
}  // namespace pi2m
