// The refinement rules R1-R6 (paper §3).
//
//  R1  circumball of t intersects ∂O, closest surface point ẑ=ĉ(t) is
//      δ-far from every existing isosurface vertex        -> insert ẑ
//  R2  circumball of t intersects ∂O and r(t) > 2δ        -> insert c(t)
//  R3  a facet's Voronoi edge V(f) crosses ∂O at c_surf and the facet has a
//      planar angle < 30° or a vertex off the isosurface  -> insert c_surf
//  R4  c(t) inside O and radius-edge ratio > 2            -> insert c(t)
//  R5  c(t) inside O and r(t) > sf(c(t))                  -> insert c(t)
//  R6  circumcenters closer than 2δ to an isosurface vertex are deleted
//      (triggered after each surface-vertex insertion; see Refiner).
//
// R1/R2 create the dense surface sample of Theorem 1 (fidelity); R3/R4
// enforce quality; R5 the user sizing field; R6 guarantees termination.
#pragma once

#include <cstdint>

#include "core/sizing.hpp"
#include "core/spatial_grid.hpp"
#include "delaunay/geom_cache.hpp"
#include "delaunay/mesh.hpp"
#include "imaging/isosurface.hpp"

namespace pi2m {

namespace lattice {
class LatticeFill;
}

enum class Rule : std::uint8_t { None = 0, R1, R2, R3, R4, R5 };

const char* to_string(Rule r);

struct RefineRulesConfig {
  double delta = 2.0;                  ///< surface sample spacing (R1/R2/R6)
  double rho_bound = 2.0;              ///< radius-edge bound (R4)
  double min_planar_angle_deg = 30.0;  ///< boundary facet angle bound (R3)
  SizeFunction size_fn;                ///< optional sizing field (R5)
  double removal_factor = 2.0;         ///< R6 radius = removal_factor * delta
  /// Hybrid interior fill: when non-null, no rule may insert a point inside
  /// the lattice guard zone (LatticeFill::protects) — refinement must never
  /// encroach the structured region or its interface circumspheres. A
  /// blocked rule falls through to the next one; a cell with every
  /// applicable rule blocked classifies as Rule::None (no requeue, so
  /// termination is preserved). Surface points (R1/R3) are never blocked:
  /// the occupancy band keeps the guard zone >= 2δ away from ∂O.
  const lattice::LatticeFill* lattice = nullptr;
};

struct Classification {
  Rule rule = Rule::None;
  Vec3 point{};          ///< the point the rule inserts
  VertexKind kind = VertexKind::Circumcenter;
};

/// Classifies an alive cell against R1-R5 in paper order. `iso_grid` holds
/// the already-inserted surface vertices (for R1's packing check).
/// Safe to call without holding locks: positions are immutable, and a
/// misclassification caused by concurrent restructuring at worst schedules
/// an unnecessary (harmless) point or is re-checked at operation time.
///
/// With `cache` non-null the per-generation geometry (circumsphere, EDT
/// lower bound, inside test, memoized closest surface point) is served from
/// / published to the generation-tagged side arena, so pops, retries, and
/// the R3 neighbour scan stop recomputing identical quantities. The parts
/// that read mutable state (`iso_grid.any_within`) are always evaluated
/// fresh, so caching never changes the classification result. `tid` only
/// picks a padded hit/miss counter slot.
Classification classify_cell(const DelaunayMesh& mesh, CellId c,
                             const IsosurfaceOracle& oracle,
                             const SpatialHashGrid& iso_grid,
                             const RefineRulesConfig& cfg,
                             CellGeomCache* cache = nullptr, int tid = 0);

}  // namespace pi2m
