#include "core/pi2m.hpp"

#include <unordered_map>

#include "geometry/tetra.hpp"
#include "support/parallel_for.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {

TetMesh extract_mesh(const DelaunayMesh& mesh, const IsosurfaceOracle& oracle,
                     int threads, const lattice::LatticeFill* lattice) {
  PI2M_TRACE_SPAN("phase.extract", "phase");
  const std::uint32_t slots = mesh.cell_slot_count();

  // Pass 1 (parallel): label of each kept cell, 0 = dropped. Hybrid runs
  // additionally drop cells covered by the lattice region L (the templates
  // replace them); `covered` remembers the material label of such cells so
  // face emission across ∂L sees the right effective label. The seeded
  // interface guarantees no kernel cell straddles ∂L, so the exact
  // centroid-in-L test classifies cells whole.
  std::vector<Label> keep(slots, 0);
  std::vector<Label> covered(lattice != nullptr ? slots : 0, 0);
  parallel_blocks(slots, threads, [&](std::size_t b, std::size_t e) {
    for (std::size_t c = b; c < e; ++c) {
      const CellId cid = static_cast<CellId>(c);
      if (!mesh.cell_alive(cid)) continue;
      const auto p = mesh.positions(cid);
      if (lattice != nullptr) {
        // Covered test first: a cell inside L is replaced by templates no
        // matter where its circumcenter lands (a sliver's can leave O).
        const Vec3 centroid = 0.25 * (p[0] + p[1] + p[2] + p[3]);
        Label lat_lab = 0;
        if (lattice->contains(centroid, &lat_lab)) {
          covered[c] = lat_lab;
          continue;
        }
      }
      const Circumsphere cs = circumsphere(p[0], p[1], p[2], p[3]);
      if (!cs.valid) continue;
      keep[c] = oracle.label_at(cs.center);
    }
  });

  // Pass 2 (sequential): compact points and emit elements + interface
  // triangles. Faces are emitted from the side with the smaller label so
  // each interface triangle appears once; lattice-covered neighbours never
  // emit themselves, so the kept side emits whenever labels differ.
  TetMesh out;
  std::unordered_map<VertexId, std::uint32_t> remap;
  auto map_vertex = [&](VertexId v) {
    auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    const auto idx = static_cast<std::uint32_t>(out.points.size());
    out.points.push_back(mesh.vertex(v).pos);
    out.point_kinds.push_back(mesh.vertex(v).kind);
    remap.emplace(v, idx);
    return idx;
  };

  for (CellId c = 0; c < slots; ++c) {
    if (keep[c] == 0) continue;
    const Cell& cl = mesh.cell(c);
    out.tets.push_back({map_vertex(cl.v[0]), map_vertex(cl.v[1]),
                        map_vertex(cl.v[2]), map_vertex(cl.v[3])});
    out.tet_labels.push_back(keep[c]);
    for (int i = 0; i < 4; ++i) {
      const CellId nb = cl.n[i].load(std::memory_order_acquire);
      const bool nb_covered =
          nb != kNoCell && lattice != nullptr && covered[nb] != 0;
      const Label other =
          nb == kNoCell ? Label{0} : (nb_covered ? covered[nb] : keep[nb]);
      const bool emit = other < keep[c] || (nb_covered && other != keep[c]);
      if (!emit) continue;
      out.boundary_tris.push_back({map_vertex(cl.v[kFaceOf[i][0]]),
                                   map_vertex(cl.v[kFaceOf[i][1]]),
                                   map_vertex(cl.v[kFaceOf[i][2]])});
    }
  }

  if (lattice != nullptr) {
    // Pass 2b: a covered cell whose neighbour was dropped outright (e.g. a
    // sliver whose circumcenter walked outside O) leaves a ∂L face with no
    // kernel emitter; emit its boundary triangle from the covered side so
    // the stitched mesh stays conforming.
    for (CellId c = 0; c < slots; ++c) {
      if (covered[c] == 0) continue;
      const Cell& cl = mesh.cell(c);
      for (int i = 0; i < 4; ++i) {
        const CellId nb = cl.n[i].load(std::memory_order_acquire);
        if (nb != kNoCell && (keep[nb] != 0 || covered[nb] != 0)) continue;
        out.boundary_tris.push_back({map_vertex(cl.v[kFaceOf[i][0]]),
                                     map_vertex(cl.v[kFaceOf[i][1]]),
                                     map_vertex(cl.v[kFaceOf[i][2]])});
      }
    }

    // Pass 3 (stitch): append the BCC template tets. Interface vertices
    // reuse the seeded kernel vertex ids (bit-identical positions by
    // construction); deep lattice points get fresh ids keyed by their
    // packed lattice coordinate.
    PI2M_TRACE_SPAN("phase.stitch", "phase");
    out.tets.reserve(out.tets.size() + lattice->stats().tets);
    out.tet_labels.reserve(out.tet_labels.size() + lattice->stats().tets);
    std::unordered_map<std::uint64_t, std::uint32_t> lattice_remap;
    auto map_lattice_vertex = [&](std::uint64_t key, const Vec3& pos) {
      const VertexId seeded = lattice->seeded_vertex(key);
      if (seeded != kNoVertex) return map_vertex(seeded);
      auto it = lattice_remap.find(key);
      if (it != lattice_remap.end()) return it->second;
      const auto idx = static_cast<std::uint32_t>(out.points.size());
      out.points.push_back(pos);
      out.point_kinds.push_back(VertexKind::Lattice);
      lattice_remap.emplace(key, idx);
      return idx;
    };
    lattice->for_each_tet([&](const std::array<std::uint64_t, 4>& keys,
                              const std::array<Vec3, 4>& pos, Label lab) {
      out.tets.push_back({map_lattice_vertex(keys[0], pos[0]),
                          map_lattice_vertex(keys[1], pos[1]),
                          map_lattice_vertex(keys[2], pos[2]),
                          map_lattice_vertex(keys[3], pos[3])});
      out.tet_labels.push_back(lab);
    });
  }
  return out;
}

RefinerOptions to_refiner_options(const MeshingOptions& opt) {
  PI2M_CHECK(opt.delta > 0.0, "MeshingOptions::delta must be positive");
  RefinerOptions r;
  r.threads = opt.threads;
  r.cm = opt.contention_manager;
  r.lb = opt.load_balancer;
  r.topology = opt.topology;
  r.interior = opt.interior;
  r.lattice_spacing = opt.lattice_spacing;
  r.rules.delta = opt.delta;
  r.rules.rho_bound = opt.radius_edge_bound;
  r.rules.min_planar_angle_deg = opt.min_planar_angle_deg;
  r.rules.size_fn = opt.size_function;
  r.max_vertices = opt.max_vertices;
  r.max_cells = opt.max_cells;
  r.watchdog_sec = opt.watchdog_sec;
  r.use_geom_cache = opt.use_geom_cache;
  r.use_reference_walks = opt.use_reference_walks;
  r.pin = opt.pin;
  r.topology_auto = opt.topology_auto;
  r.mutex_scheduler = opt.mutex_scheduler;
  r.park_spin_us = opt.park_spin_us;
  r.cancel = opt.cancel;
  r.warm_arena = opt.warm_arena;
  return r;
}

MeshingResult mesh_image(const LabeledImage3D& img, const MeshingOptions& opt) {
  return mesh_image(img, opt, nullptr);
}

MeshingResult mesh_image(const LabeledImage3D& img, const MeshingOptions& opt,
                         std::shared_ptr<const IsosurfaceOracle> warm_oracle) {
  Refiner refiner(img, to_refiner_options(opt), std::move(warm_oracle));
  MeshingResult res;
  res.outcome = refiner.refine();
  res.mesh = extract_mesh(refiner.mesh(), refiner.oracle(), opt.threads,
                          refiner.lattice());
  return res;
}

}  // namespace pi2m
