#include "core/pi2m.hpp"

#include <unordered_map>

#include "geometry/tetra.hpp"
#include "support/parallel_for.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {

TetMesh extract_mesh(const DelaunayMesh& mesh, const IsosurfaceOracle& oracle,
                     int threads) {
  PI2M_TRACE_SPAN("phase.extract", "phase");
  const std::uint32_t slots = mesh.cell_slot_count();

  // Pass 1 (parallel): label of each kept cell, 0 = dropped.
  std::vector<Label> keep(slots, 0);
  parallel_blocks(slots, threads, [&](std::size_t b, std::size_t e) {
    for (std::size_t c = b; c < e; ++c) {
      const CellId cid = static_cast<CellId>(c);
      if (!mesh.cell_alive(cid)) continue;
      const auto p = mesh.positions(cid);
      const Circumsphere cs = circumsphere(p[0], p[1], p[2], p[3]);
      if (!cs.valid) continue;
      keep[c] = oracle.label_at(cs.center);
    }
  });

  // Pass 2 (sequential): compact points and emit elements + interface
  // triangles. Faces are emitted from the side with the smaller label so
  // each interface triangle appears once.
  TetMesh out;
  std::unordered_map<VertexId, std::uint32_t> remap;
  auto map_vertex = [&](VertexId v) {
    auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    const auto idx = static_cast<std::uint32_t>(out.points.size());
    out.points.push_back(mesh.vertex(v).pos);
    out.point_kinds.push_back(mesh.vertex(v).kind);
    remap.emplace(v, idx);
    return idx;
  };

  for (CellId c = 0; c < slots; ++c) {
    if (keep[c] == 0) continue;
    const Cell& cl = mesh.cell(c);
    out.tets.push_back({map_vertex(cl.v[0]), map_vertex(cl.v[1]),
                        map_vertex(cl.v[2]), map_vertex(cl.v[3])});
    out.tet_labels.push_back(keep[c]);
    for (int i = 0; i < 4; ++i) {
      const CellId nb = cl.n[i].load(std::memory_order_acquire);
      const Label other = nb == kNoCell ? Label{0} : keep[nb];
      const bool emit = other < keep[c];  // dropped or smaller-labelled side
      if (!emit) continue;
      out.boundary_tris.push_back({map_vertex(cl.v[kFaceOf[i][0]]),
                                   map_vertex(cl.v[kFaceOf[i][1]]),
                                   map_vertex(cl.v[kFaceOf[i][2]])});
    }
  }
  return out;
}

RefinerOptions to_refiner_options(const MeshingOptions& opt) {
  PI2M_CHECK(opt.delta > 0.0, "MeshingOptions::delta must be positive");
  RefinerOptions r;
  r.threads = opt.threads;
  r.cm = opt.contention_manager;
  r.lb = opt.load_balancer;
  r.topology = opt.topology;
  r.rules.delta = opt.delta;
  r.rules.rho_bound = opt.radius_edge_bound;
  r.rules.min_planar_angle_deg = opt.min_planar_angle_deg;
  r.rules.size_fn = opt.size_function;
  r.max_vertices = opt.max_vertices;
  r.max_cells = opt.max_cells;
  r.watchdog_sec = opt.watchdog_sec;
  r.use_geom_cache = opt.use_geom_cache;
  r.use_reference_walks = opt.use_reference_walks;
  r.pin = opt.pin;
  r.topology_auto = opt.topology_auto;
  r.mutex_scheduler = opt.mutex_scheduler;
  r.park_spin_us = opt.park_spin_us;
  r.cancel = opt.cancel;
  r.warm_arena = opt.warm_arena;
  return r;
}

MeshingResult mesh_image(const LabeledImage3D& img, const MeshingOptions& opt) {
  return mesh_image(img, opt, nullptr);
}

MeshingResult mesh_image(const LabeledImage3D& img, const MeshingOptions& opt,
                         std::shared_ptr<const IsosurfaceOracle> warm_oracle) {
  Refiner refiner(img, to_refiner_options(opt), std::move(warm_oracle));
  MeshingResult res;
  res.outcome = refiner.refine();
  res.mesh = extract_mesh(refiner.mesh(), refiner.oracle(), opt.threads);
  return res;
}

}  // namespace pi2m
