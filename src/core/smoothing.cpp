#include "core/smoothing.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/tetra.hpp"
#include "support/parallel_for.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {
namespace {

struct VertexTopology {
  std::vector<std::vector<std::uint32_t>> incident_tets;
  std::vector<std::vector<std::uint32_t>> neighbours;          // all
  std::vector<std::vector<std::uint32_t>> surface_neighbours;  // via boundary tris
  std::vector<char> on_boundary;
};

VertexTopology build_topology(const TetMesh& mesh) {
  VertexTopology topo;
  const std::size_t n = mesh.points.size();
  topo.incident_tets.resize(n);
  topo.neighbours.resize(n);
  topo.surface_neighbours.resize(n);
  topo.on_boundary.assign(n, 0);

  for (std::uint32_t t = 0; t < mesh.tets.size(); ++t) {
    for (const std::uint32_t v : mesh.tets[t]) {
      topo.incident_tets[v].push_back(t);
    }
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (i != j) topo.neighbours[mesh.tets[t][i]].push_back(mesh.tets[t][j]);
      }
    }
  }
  for (const auto& f : mesh.boundary_tris) {
    for (int i = 0; i < 3; ++i) {
      topo.on_boundary[f[i]] = 1;
      topo.surface_neighbours[f[i]].push_back(f[(i + 1) % 3]);
      topo.surface_neighbours[f[i]].push_back(f[(i + 2) % 3]);
    }
  }
  for (auto& v : topo.neighbours) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  for (auto& v : topo.surface_neighbours) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return topo;
}

/// Worst (minimum) dihedral angle, minimum signed volume, and worst
/// (maximum) radius-edge ratio over the tets incident to vertex v,
/// evaluated with v at position `pos`.
void local_quality(const TetMesh& mesh, const VertexTopology& topo,
                   std::uint32_t v, const Vec3& pos, double* min_dihedral,
                   double* min_volume, double* max_rho) {
  *min_dihedral = 180.0;
  *min_volume = 1e300;
  *max_rho = 0.0;
  for (const std::uint32_t t : topo.incident_tets[v]) {
    Vec3 p[4];
    for (int k = 0; k < 4; ++k) {
      const std::uint32_t w = mesh.tets[t][k];
      p[k] = (w == v) ? pos : mesh.points[w];
    }
    // |signed volume| with orientation check: flipping is an inversion.
    const double vol0 = signed_volume(mesh.points[mesh.tets[t][0]],
                                      mesh.points[mesh.tets[t][1]],
                                      mesh.points[mesh.tets[t][2]],
                                      mesh.points[mesh.tets[t][3]]);
    double vol = signed_volume(p[0], p[1], p[2], p[3]);
    if (vol0 < 0) vol = -vol;  // normalize to the tet's original handedness
    *min_volume = std::min(*min_volume, vol);
    *max_rho = std::max(*max_rho, radius_edge_ratio(p[0], p[1], p[2], p[3]));
    const auto angles = dihedral_angles(p[0], p[1], p[2], p[3]);
    for (const double a : angles) *min_dihedral = std::min(*min_dihedral, a);
  }
}

double global_min_dihedral(const TetMesh& mesh) {
  double m = 180.0;
  for (const auto& t : mesh.tets) {
    const auto angles =
        dihedral_angles(mesh.points[t[0]], mesh.points[t[1]],
                        mesh.points[t[2]], mesh.points[t[3]]);
    for (const double a : angles) m = std::min(m, a);
  }
  return m;
}

}  // namespace

SmoothingReport smooth_mesh(TetMesh& mesh, const IsosurfaceOracle& oracle,
                            const SmoothingOptions& opt) {
  SmoothingReport rep;
  if (mesh.tets.empty()) return rep;
  PI2M_TRACE_SPAN("phase.smooth", "phase");
  const VertexTopology topo = build_topology(mesh);
  rep.min_dihedral_before = global_min_dihedral(mesh);

  std::atomic<std::size_t> accepted{0}, rejected{0};
  for (int iter = 0; iter < opt.iterations; ++iter) {
    // Stage proposals in parallel (reads only), then apply sequentially
    // with a final acceptance re-check against the already-applied moves —
    // a simple two-phase scheme that needs no coloring.
    const std::size_t n = mesh.points.size();
    std::vector<Vec3> proposal(n);
    std::vector<char> has_proposal(n, 0);

    parallel_blocks(n, opt.threads, [&](std::size_t b, std::size_t e) {
      for (std::size_t v = b; v < e; ++v) {
        const bool boundary = topo.on_boundary[v] != 0;
        if (boundary && !opt.smooth_surface) continue;
        if (!boundary && !opt.smooth_interior) continue;
        const auto& nbrs =
            boundary ? topo.surface_neighbours[v] : topo.neighbours[v];
        if (nbrs.size() < 3 || topo.incident_tets[v].empty()) continue;

        Vec3 centroid{0, 0, 0};
        for (const std::uint32_t w : nbrs) centroid += mesh.points[w];
        centroid = centroid / static_cast<double>(nbrs.size());
        Vec3 target = mesh.points[v] +
                      opt.relaxation * (centroid - mesh.points[v]);
        if (boundary) {
          // Keep the fidelity guarantee: boundary vertices stay on ∂O.
          const auto q = oracle.closest_surface_point(target);
          if (!q) continue;
          target = *q;
        }
        proposal[v] = target;
        has_proposal[v] = 1;
      }
    });

    for (std::size_t v = 0; v < n; ++v) {
      if (!has_proposal[v]) continue;
      double dih_before, vol_before, rho_before;
      double dih_after, vol_after, rho_after;
      local_quality(mesh, topo, static_cast<std::uint32_t>(v), mesh.points[v],
                    &dih_before, &vol_before, &rho_before);
      local_quality(mesh, topo, static_cast<std::uint32_t>(v), proposal[v],
                    &dih_after, &vol_after, &rho_after);
      // Accept only when nothing inverts, the locally-worst dihedral does
      // not get worse, and the radius-edge bound is not traded away.
      if (vol_after > 0.0 && dih_after >= dih_before &&
          rho_after <= std::max(rho_before, 2.0)) {
        mesh.points[v] = proposal[v];
        accepted.fetch_add(1, std::memory_order_relaxed);
      } else {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  rep.moves_accepted = accepted.load();
  rep.moves_rejected = rejected.load();
  rep.min_dihedral_after = global_min_dihedral(mesh);
  return rep;
}

}  // namespace pi2m
