// Concurrent spatial hash grid over mesh vertices.
//
// Two instances drive the point-management rules:
//  * the isosurface-vertex grid enforces R1's δ-packing ("z is inserted if
//    it is at a distance not closer than δ to any other isosurface vertex");
//  * the circumcenter grid answers R6's "all already inserted circumcenters
//    closer than 2δ to z" queries and supports deletion.
//
// Buckets are hashed grid cells guarded by tiny spinlocks; queries with
// radius <= cell_size only touch the 27 neighbouring grid cells. Distance
// filtering makes hash collisions harmless (they only add scan work).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "geometry/vec3.hpp"
#include "support/common.hpp"

namespace pi2m {

class SpatialHashGrid {
 public:
  /// Queries visit every grid cell overlapping the query ball, so any
  /// radius works with any `cell_size`; cell_size ~ 2x the typical query
  /// radius touches at most 8 cells per query.
  SpatialHashGrid(const Aabb& box, double cell_size,
                  std::size_t bucket_count = 1u << 16);

  void insert(const Vec3& p, VertexId v);
  /// Removes (p, v) if present; returns whether it was found.
  bool remove(const Vec3& p, VertexId v);

  /// True when some stored point lies strictly within `radius` of p.
  [[nodiscard]] bool any_within(const Vec3& p, double radius) const;

  /// Collects the (position, id) pairs strictly within `radius` of p.
  void collect_within(const Vec3& p, double radius,
                      std::vector<std::pair<Vec3, VertexId>>& out) const;

  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double cell_size() const { return cell_size_; }

 private:
  struct Entry {
    Vec3 pos;
    VertexId id;
    std::int64_t cell_key;  ///< packed grid-cell coordinates
  };
  struct alignas(64) Bucket {
    mutable std::atomic_flag lock = ATOMIC_FLAG_INIT;
    std::vector<Entry> items;

    void acquire() const {
      while (lock.test_and_set(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    void release() const { lock.clear(std::memory_order_release); }
  };

  [[nodiscard]] std::int64_t cell_key_of(const Vec3& p) const;
  [[nodiscard]] static std::int64_t pack_key(std::int64_t cx, std::int64_t cy,
                                             std::int64_t cz);
  [[nodiscard]] std::size_t bucket_of(std::int64_t key) const;
  /// Invokes fn(key) for every grid cell overlapping the ball (p, radius).
  template <typename Fn>
  void for_overlapped_cells(const Vec3& p, double radius, Fn&& fn) const;

  Vec3 origin_;
  double cell_size_;
  std::vector<Bucket> buckets_;
  std::atomic<std::size_t> count_{0};
};

}  // namespace pi2m
