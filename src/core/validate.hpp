// Structural validation of extracted meshes — the checks a downstream FE
// user runs before trusting a mesh. Complements DelaunayMesh's internal
// invariant checks (which operate on the live triangulation) by validating
// the exported value type.
#pragma once

#include <string>
#include <vector>

#include "core/pi2m.hpp"

namespace pi2m {

struct MeshValidation {
  bool ok = false;
  std::vector<std::string> errors;  ///< empty when ok

  // Informational:
  std::size_t connected_components = 0;
  std::size_t boundary_edges_nonmanifold = 0;
  /// Elements whose volume is below a relative epsilon of the bounding-box
  /// scale (near-degenerate slivers). Valid for FE assembly but poison for
  /// conditioning; reported, not fatal.
  std::size_t sliver_elements = 0;
};

/// Checks:
///  * index ranges and parallel-array sizes;
///  * every tetrahedron is positively oriented by the *exact* orient3d
///    predicate (coplanar or inverted elements are errors — a floating-
///    point volume of "0.0" would miss inverted slivers whose computed
///    volume rounds to a positive value), plus a nonzero label;
///  * near-degenerate slivers (volume below 1e-12 x bbox-diagonal^3) are
///    counted in sliver_elements;
///  * face conformity: every interior face is shared by exactly 2 tets and
///    every tet face is either interior or listed in boundary_tris;
///  * boundary edge manifoldness (each boundary edge on exactly 2 boundary
///    triangles), reported but not fatal (multi-material junction lines
///    legitimately have >2);
///  * counts connected components of the element graph.
MeshValidation validate_mesh(const TetMesh& mesh);

}  // namespace pi2m
