// Optional mesh smoothing post-pass — the paper's stated future work
// ("mesh boundary smoothing is desirable for CFD simulations... the
// extension of our framework to support the computationally expensive step
// of volume-conserving smoothing in parallel is left for future work",
// §7-§8).
//
// This implements quality-guarded smart-Laplacian smoothing:
//  * interior vertices move toward the centroid of their neighbours;
//  * surface vertices move toward the centroid of their *surface*
//    neighbours and are re-projected onto ∂O through the oracle, so
//    fidelity is preserved while boundary triangles relax;
//  * every move is accepted only if no incident tetrahedron inverts and
//    the worst local dihedral angle does not deteriorate — smoothing never
//    trades away the quality guarantees the refiner established.
// Passes are parallelized over vertices with an owner-computes coloring-free
// scheme (moves are staged, conflicts resolved by acceptance re-check).
#pragma once

#include "core/pi2m.hpp"
#include "imaging/isosurface.hpp"

namespace pi2m {

struct SmoothingOptions {
  int iterations = 3;
  double relaxation = 0.5;  ///< step fraction toward the centroid
  bool smooth_surface = true;
  bool smooth_interior = true;
  int threads = 1;
};

struct SmoothingReport {
  std::size_t moves_accepted = 0;
  std::size_t moves_rejected = 0;
  double min_dihedral_before = 0;
  double min_dihedral_after = 0;
};

/// Smooths `mesh` in place. Requires the oracle the mesh was built from
/// (for surface re-projection).
SmoothingReport smooth_mesh(TetMesh& mesh, const IsosurfaceOracle& oracle,
                            const SmoothingOptions& opt = {});

}  // namespace pi2m
