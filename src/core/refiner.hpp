// The PI2M parallel Delaunay refiner (paper Algorithm 1).
//
// Each worker thread owns a Poor Element List (PEL) and repeatedly: pops an
// element, re-validates and classifies it against R1-R5, speculatively
// applies the Delaunay operation (insertion, or the R6 removals triggered
// by surface-vertex insertions), and on success classifies the new cells —
// handing poor ones to begging threads per the load balancer. Rollbacks go
// through the configured contention manager. Termination is detected when
// every thread is idle and no work is outstanding; a watchdog converts
// global no-progress (livelock, possible under Aggressive/Random-CM) into
// an orderly abort so benchmarks can report it (paper Table 1 "livelock").
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/rules.hpp"
#include "core/spatial_grid.hpp"
#include "delaunay/operations.hpp"
#include "imaging/isosurface.hpp"
#include "lattice/lattice_fill.hpp"
#include "runtime/contention.hpp"
#include "runtime/mpsc_inbox.hpp"
#include "runtime/park.hpp"
#include "runtime/stats.hpp"
#include "runtime/topology.hpp"
#include "runtime/workstealing.hpp"

namespace pi2m {

struct RefinerOptions {
  int threads = 1;
  CmKind cm = CmKind::Local;
  LbKind lb = LbKind::HWS;
  TopologySpec topology{};
  RefineRulesConfig rules{};

  /// Interior strategy: BCC-lattice bulk + Delaunay skin (default), or pure
  /// Delaunay refinement everywhere (the escape hatch / A-B baseline).
  /// Images too small to contain a deep-interior band degrade conservatively
  /// to a byte-identical pure-Delaunay run.
  InteriorFill interior = InteriorFill::Lattice;
  /// Lattice cube size in world units; <= 0 selects the automatic spacing
  /// 2δ (disphenoid edges then match the surface sample spacing scale).
  double lattice_spacing = 0.0;

  std::size_t max_vertices = std::size_t{1} << 22;
  std::size_t max_cells = std::size_t{1} << 24;
  /// Safety valve: abort (budget_exhausted) after this many successful
  /// operations. Termination is expected well before (paper [7,8]).
  std::uint64_t op_budget = std::uint64_t{1} << 40;
  /// Declare livelock when no operation completes for this long.
  double watchdog_sec = 20.0;
  /// A thread only gives work when its PEL holds at least this many
  /// elements (paper §4.4; 5 "yielded the best results").
  int give_threshold = 5;

  bool record_timeline = false;       ///< sample Figure-6 style series
  double timeline_period_sec = 0.05;
  int edt_threads = 0;                ///< 0 = same as `threads`

  /// Seed for randomized runtime decisions (Random-CM backoff streams).
  /// 0 = nondeterministic (std::random_device); non-zero makes the runtime's
  /// random choices reproducible for fuzzing and failure replay.
  std::uint64_t rng_seed = 0;
  /// Serve classification geometry from the generation-tagged per-cell
  /// cache (delaunay/geom_cache.hpp). Off = recompute everything per
  /// classify (A/B baseline; results are identical either way).
  bool use_geom_cache = true;
  /// Use the reference scalar sampling walks instead of the voxel-DDA
  /// walks in the oracle (A/B baseline; see IsosurfaceOracle::set_use_dda).
  bool use_reference_walks = false;
  /// Run a full invariant audit (check/auditor.hpp) on the final mesh after
  /// the workers join — the refinement-phase boundary, where the mesh is
  /// quiescent. Violations land in RefineOutcome::audit_errors.
  bool audit_final = false;

  // ---- scheduler & memory locality (see DESIGN.md) ----
  /// Pin worker thread `tid` to the cpu the topology maps it to
  /// (sched_setaffinity on Linux; a no-op elsewhere). A failed pin is
  /// silently ignored — it is a locality hint, not a correctness knob.
  bool pin = false;
  /// Probe /sys/devices/system/cpu for the real socket layout instead of
  /// using the declared `topology` spec; also yields the cpu map --pin uses.
  bool topology_auto = false;
  /// Select the mutex+deque begging lists and mutex inbox era semantics
  /// (SchedulerImpl::Mutex) instead of the lock-free slot arrays — the
  /// escape hatch and the A/B baseline for BENCH_scheduler.json.
  bool mutex_scheduler = false;
  /// An idle thread spins/yields this long before each timed park. 0 parks
  /// immediately; larger values trade wake-up latency for cpu.
  int park_spin_us = 50;

  // ---- serving hooks (see DESIGN.md "Serving architecture") ----
  /// Cooperative cancellation: when non-null and set, every worker stops at
  /// its next refinement-loop boundary and refine() returns with
  /// RefineOutcome::cancelled (completed == false). The pointee must
  /// outlive refine(); the flag is only read, never cleared.
  const std::atomic<bool>* cancel = nullptr;
  /// Back the mesh arenas with process-wide recycled chunk blocks
  /// (support/arena_pool.hpp) so repeated runs in one process skip the
  /// page-fault warm-up. Results are identical either way.
  bool warm_arena = false;
};

struct RefineOutcome {
  bool completed = false;
  bool livelocked = false;
  bool budget_exhausted = false;
  bool cancelled = false;  ///< RefinerOptions::cancel fired mid-run
  double wall_sec = 0.0;   ///< refinement only (excludes EDT)
  double edt_sec = 0.0;    ///< preprocessing (feature transform)
  StatsTotals totals;
  std::vector<TimelineSample> timeline;
  std::size_t alive_cells = 0;  ///< all cells tiling the virtual box
  std::size_t mesh_cells = 0;   ///< elements with circumcenter inside O
  std::size_t vertices = 0;
  std::array<std::uint64_t, 6> rule_counts{};  ///< successful ops per rule
  /// Geometry-cache effectiveness over the whole run (zero when the cache
  /// was disabled): core entry and memoized closest-surface-point lookups.
  std::uint64_t classify_cache_hits = 0;
  std::uint64_t classify_cache_misses = 0;
  std::uint64_t classify_csp_hits = 0;
  std::uint64_t classify_csp_misses = 0;
  /// Violations found by the final audit (audit_final); empty when the
  /// audit passed or was not requested.
  std::vector<std::string> audit_errors;
  /// Hybrid interior fill (all zero for pure-Delaunay runs or when the
  /// image had no deep-interior band).
  std::size_t lattice_cubes = 0;       ///< occupied lattice cubes
  std::size_t lattice_tets = 0;        ///< template tets the extraction appends
  std::size_t lattice_seeds = 0;       ///< protected interface vertices
  double lattice_fill_sec = 0.0;       ///< occupancy + template instantiation
  double lattice_seed_sec = 0.0;       ///< sequential interface seeding
};

class Refiner {
 public:
  Refiner(const LabeledImage3D& img, RefinerOptions opt);

  /// Serving-path constructor: re-uses a precomputed oracle (EDT cache hit)
  /// instead of computing the feature transform. `warm_oracle` must have
  /// been built over an image identical in content to `img` (it is queried,
  /// never mutated, so one oracle may serve concurrent refiners) and its
  /// DDA/reference walk mode is taken as-is — opt.use_reference_walks is
  /// ignored. RefineOutcome::edt_sec reports 0 for such runs.
  Refiner(const LabeledImage3D& img, RefinerOptions opt,
          std::shared_ptr<const IsosurfaceOracle> warm_oracle);

  /// Runs refinement to completion (or livelock/budget abort). Callable
  /// once per Refiner instance.
  RefineOutcome refine();

  [[nodiscard]] DelaunayMesh& mesh() { return *mesh_; }
  [[nodiscard]] const DelaunayMesh& mesh() const { return *mesh_; }
  [[nodiscard]] const IsosurfaceOracle& oracle() const { return *oracle_; }
  [[nodiscard]] const RefinerOptions& options() const { return opt_; }
  /// The hybrid interior fill this run refined against; null for pure
  /// Delaunay runs (or an empty band). Extraction stitches against it.
  [[nodiscard]] const lattice::LatticeFill* lattice() const {
    return lattice_.get();
  }
  [[nodiscard]] const std::vector<ThreadStats>& thread_stats() const {
    return stats_;
  }

 private:
  struct PelEntry {
    CellId cell;
    std::uint32_t gen;
    bool near_surface;  ///< scheduling tag (cheap EDT proxy, not semantic)
  };

  /// Inbox ring capacity (entries). A hand-off batch is at most the cells
  /// of one cavity refill (tens), so thousands of slots make ring-full a
  /// cold path while keeping the ring ~48 KiB per thread.
  static constexpr std::size_t kInboxCapacity = 2048;

  /// Cheap O(1) scheduling tag: true when the cell plausibly intersects
  /// the surface neighbourhood. Mis-tags only affect processing order.
  /// Takes the already-loaded vertex positions so the caller can share the
  /// load with the geometry-cache fill.
  [[nodiscard]] bool tag_near_surface(const std::array<Vec3, 4>& p) const;

  struct alignas(64) ThreadCtx {
    /// Two-priority PEL: cells near ∂O (fidelity rules) are refined before
    /// interior cells (volume quality rules). Completing the local surface
    /// sample first means far fewer circumcenters are placed prematurely
    /// and later torn out by R6 — the paper's Phase-1 behaviour (Fig. 6).
    std::deque<PelEntry> pel_surface;
    std::deque<PelEntry> pel_volume;
    std::deque<VertexId> removals;
    /// Lock-free hand-off target: givers publish whole batches with one
    /// CAS reservation, this thread drains without taking a lock. A full
    /// ring rejects the batch and the giver keeps it locally — the PELs
    /// are unbounded, the transfer channel is not.
    MpscRing<PelEntry> inbox{kInboxCapacity};
    /// Futex/condvar parker for the idle protocol's timed parks.
    ThreadParker parker;
    OpScratch scratch;
    OpScratch removal_scratch;
    std::vector<std::pair<Vec3, VertexId>> near_ccs;  // R6 query buffer
    std::vector<PelEntry> new_poor;                   // distribution buffer
  };

  void worker(int tid);
  void handle_insertion(int tid, const PelEntry& e);
  void handle_removal(int tid, VertexId v);
  void distribute_new_cells(int tid, const std::vector<CellId>& created);
  void idle_protocol(int tid);
  void drain_inbox(int tid);
  /// Unparks every worker. Every done_-setter must call this so no thread
  /// sleeps out its park timeout before noticing termination.
  void wake_all_workers();
  void monitor();

  RefinerOptions opt_;
  const LabeledImage3D* img_;
  /// Shared so the serving layer's EDT cache can hand one immutable oracle
  /// to many concurrent refiners; solo runs own theirs exclusively.
  std::shared_ptr<const IsosurfaceOracle> oracle_;
  std::unique_ptr<DelaunayMesh> mesh_;
  std::unique_ptr<CellGeomCache> geom_cache_;  ///< null when disabled
  std::unique_ptr<SpatialHashGrid> iso_grid_;
  std::unique_ptr<SpatialHashGrid> cc_grid_;
  std::unique_ptr<lattice::LatticeFill> lattice_;  ///< null = pure Delaunay
  Topology topo_;
  std::unique_ptr<LoadBalancer> lb_;
  std::unique_ptr<ContentionManager> cm_;
  std::vector<ThreadStats> stats_;
  std::vector<std::unique_ptr<ThreadCtx>> ctxs_;

  std::atomic<bool> done_{false};
  std::atomic<bool> livelocked_{false};
  std::atomic<bool> budget_exhausted_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<int> idle_count_{0};
  std::atomic<std::uint64_t> successful_ops_{0};
  std::array<std::atomic<std::uint64_t>, 6> rule_counts_{};
  double edt_sec_ = 0.0;
  double start_sec_ = 0.0;
  std::vector<TimelineSample> timeline_;
  bool refined_ = false;
};

}  // namespace pi2m
