#include "core/rules.hpp"

#include <cmath>

#include "geometry/tetra.hpp"
#include "lattice/lattice_fill.hpp"

namespace pi2m {

const char* to_string(Rule r) {
  switch (r) {
    case Rule::None: return "none";
    case Rule::R1: return "R1";
    case Rule::R2: return "R2";
    case Rule::R3: return "R3";
    case Rule::R4: return "R4";
    case Rule::R5: return "R5";
  }
  return "?";
}

namespace {

/// The cache-eligible geometry of a cell, computed fresh from its vertex
/// positions and the (static) image: circumsphere, EDT lower bound on the
/// circumcenter's surface distance, inside-O test at the circumcenter.
///
/// Returns false when the slot was recycled while the positions were being
/// read (seqlock-style validation: a commit bumps the generation *before*
/// its release-stores to v[], so observing any of its vertex writes forces
/// the generation re-read to see the newer value). A false return means the
/// snapshot may be torn and MUST NOT be classified or published under `gen`.
bool compute_core(const DelaunayMesh& mesh, CellId c, std::uint32_t gen,
                  const IsosurfaceOracle& oracle,
                  CellGeomCache::CoreView& g) {
  const auto pos = mesh.positions(c);
  if (mesh.cell_gen(c) != gen) return false;  // recycled mid-read
  g.cs = circumsphere(pos[0], pos[1], pos[2], pos[3]);
  if (g.cs.valid) {
    g.surf_lb = oracle.surface_distance_lower_bound(g.cs.center);
    g.inside = oracle.inside(g.cs.center);
  }
  return true;
}

/// Cache-or-compute for the core geometry of (c, gen); publishes on a miss.
/// False when the slot was concurrently recycled (caller should treat the
/// cell as dead).
bool core_of(const DelaunayMesh& mesh, CellId c, std::uint32_t gen,
             const IsosurfaceOracle& oracle, CellGeomCache* cache, int tid,
             CellGeomCache::CoreView& g) {
  if (cache != nullptr && cache->load(c, gen, g, tid)) return true;
  if (!compute_core(mesh, c, gen, oracle, g)) return false;
  if (cache != nullptr) cache->store(c, gen, g);
  return true;
}

}  // namespace

Classification classify_cell(const DelaunayMesh& mesh, CellId c,
                             const IsosurfaceOracle& oracle,
                             const SpatialHashGrid& iso_grid,
                             const RefineRulesConfig& cfg,
                             CellGeomCache* cache, int tid) {
  Classification out;
  const std::uint32_t gen = mesh.cell_gen(c);
  if ((gen & 1u) == 0) return out;  // not alive

  const Cell& cl = mesh.cell(c);

  // Cells spanned by box vertices only exist far outside the object until
  // the surface sample grows; they are still classified normally — their
  // circumballs intersect ∂O early on, which is exactly what bootstraps
  // surface recovery (paper Fig. 1b).
  CellGeomCache::CoreView g;
  if (!core_of(mesh, c, gen, oracle, cache, tid, g)) return out;
  const Circumsphere& cs = g.cs;
  if (!cs.valid) return out;  // degenerate slivers are unrefinable directly
  const double r = std::sqrt(cs.radius2);

  // Hybrid interior-fill constraint: a rule whose insertion point falls in
  // the lattice guard zone is suppressed (falls through to the next rule).
  // R1/R3 surface points are geometrically outside the zone, so only
  // quality/sizing refinement is muted near the structured interface.
  const lattice::LatticeFill* lat = cfg.lattice;
  const auto allowed = [lat](const Vec3& p) {
    return lat == nullptr || !lat->protects(p);
  };

  // --- fidelity rules R1 / R2 -----------------------------------------
  // O(1) EDT prefilter first: most interior/exterior elements are nowhere
  // near ∂O and skip the ray walk entirely. The cached lower bound makes
  // this a comparison, not even an EDT grid fetch.
  const bool ball_may_hit = g.surf_lb <= r;
  if (ball_may_hit) {
    std::optional<Vec3> zhat;
    if (cache == nullptr || !cache->load_closest(c, gen, zhat, tid)) {
      zhat = oracle.closest_surface_point(cs.center);
      if (cache != nullptr) cache->store_closest(c, gen, zhat);
    }
    if (zhat.has_value() && distance(cs.center, *zhat) <= r) {
      if (!iso_grid.any_within(*zhat, cfg.delta) && allowed(*zhat)) {
        out.rule = Rule::R1;
        out.point = *zhat;
        out.kind = VertexKind::Isosurface;
        return out;
      }
      if (r > 2.0 * cfg.delta && allowed(cs.center)) {
        out.rule = Rule::R2;
        out.point = cs.center;
        out.kind = VertexKind::Circumcenter;
        return out;
      }
    }
  }

  // --- boundary facet rule R3 ------------------------------------------
  for (int i = 0; i < 4; ++i) {
    const CellId nb = cl.n[i].load(std::memory_order_acquire);
    if (nb == kNoCell) continue;
    const std::uint32_t ngen = mesh.cell_gen(nb);
    if ((ngen & 1u) == 0) continue;  // neighbour not alive
    // The neighbour's core geometry comes from (or seeds) the same cache —
    // an R3 scan used to recompute up to four neighbour circumspheres that
    // the neighbours' own classifications had already derived.
    CellGeomCache::CoreView ng;
    if (!core_of(mesh, nb, ngen, oracle, cache, tid, ng)) continue;
    const Circumsphere& ncs = ng.cs;
    if (!ncs.valid) continue;
    // Both circumcenters lie on the face's axis, so |c(t)c(nb)| <=
    // r(t)+r(nb) and the Voronoi edge V(f) is covered by the two
    // circumballs: it can only cross ∂O when one of them does.
    if (!ball_may_hit && ng.surf_lb > std::sqrt(ncs.radius2)) continue;
    // Segment prefilter from the two cached lower bounds (the inline
    // segment_may_intersect_surface would re-fetch both EDT estimates).
    if (g.surf_lb + ng.surf_lb > distance(cs.center, ncs.center)) continue;
    const auto hit = oracle.segment_surface_intersection(cs.center, ncs.center);
    if (!hit.has_value()) continue;

    // Acquire atomic_ref reads: classification runs without vertex locks
    // (the insertion re-validates the cell's generation afterwards), so a
    // commit may concurrently rewrite this recycled slot's v array.
    std::array<VertexId, 3> fv;
    for (int k = 0; k < 3; ++k) {
      fv[static_cast<std::size_t>(k)] =
          std::atomic_ref(const_cast<VertexId&>(cl.v[kFaceOf[i][k]]))
              .load(std::memory_order_acquire);
    }
    const Vec3& fa = mesh.vertex(fv[0]).pos;
    const Vec3& fb = mesh.vertex(fv[1]).pos;
    const Vec3& fc = mesh.vertex(fv[2]).pos;
    const bool bad_angle =
        min_triangle_angle(fa, fb, fc) < cfg.min_planar_angle_deg;
    const bool off_surface = !on_surface(mesh.vertex(fv[0]).kind) ||
                             !on_surface(mesh.vertex(fv[1]).kind) ||
                             !on_surface(mesh.vertex(fv[2]).kind);
    if (!bad_angle && !off_surface) continue;

    // Degeneracy guard: a surface-center (numerically) on top of a facet
    // vertex cannot make progress.
    const double guard = 1e-3 * cfg.delta;
    if (distance(*hit, fa) < guard || distance(*hit, fb) < guard ||
        distance(*hit, fc) < guard) {
      continue;
    }
    if (!allowed(*hit)) continue;
    out.rule = Rule::R3;
    out.point = *hit;
    out.kind = VertexKind::SurfaceCenter;
    return out;
  }

  // --- volume rules R4 / R5 ---------------------------------------------
  // The inside-O test was resolved once per cell generation (compute_core)
  // and rides along in the cached word — no label fetch here.
  if (!g.inside) return out;

  const auto pos = mesh.positions(c);
  const double shortest = shortest_edge(pos[0], pos[1], pos[2], pos[3]);
  if (shortest > 0.0 && r / shortest > cfg.rho_bound &&
      allowed(cs.center)) {
    out.rule = Rule::R4;
    out.point = cs.center;
    out.kind = VertexKind::Circumcenter;
    return out;
  }
  if (cfg.size_fn && r > cfg.size_fn(cs.center) && allowed(cs.center)) {
    out.rule = Rule::R5;
    out.point = cs.center;
    out.kind = VertexKind::Circumcenter;
    return out;
  }
  return out;
}

}  // namespace pi2m
