#include "core/rules.hpp"

#include <cmath>

#include "geometry/tetra.hpp"

namespace pi2m {

const char* to_string(Rule r) {
  switch (r) {
    case Rule::None: return "none";
    case Rule::R1: return "R1";
    case Rule::R2: return "R2";
    case Rule::R3: return "R3";
    case Rule::R4: return "R4";
    case Rule::R5: return "R5";
  }
  return "?";
}

Classification classify_cell(const DelaunayMesh& mesh, CellId c,
                             const IsosurfaceOracle& oracle,
                             const SpatialHashGrid& iso_grid,
                             const RefineRulesConfig& cfg) {
  Classification out;
  if (!mesh.cell_alive(c)) return out;

  const Cell& cl = mesh.cell(c);
  const auto pos = mesh.positions(c);

  // Cells spanned by box vertices only exist far outside the object until
  // the surface sample grows; they are still classified normally — their
  // circumballs intersect ∂O early on, which is exactly what bootstraps
  // surface recovery (paper Fig. 1b).
  const Circumsphere cs = circumsphere(pos[0], pos[1], pos[2], pos[3]);
  if (!cs.valid) return out;  // degenerate slivers are unrefinable directly
  const double r = std::sqrt(cs.radius2);

  // --- fidelity rules R1 / R2 -----------------------------------------
  // O(1) EDT prefilter first: most interior/exterior elements are nowhere
  // near ∂O and skip the ray walk entirely.
  const bool ball_may_hit = oracle.ball_may_intersect_surface(cs.center, r);
  if (ball_may_hit) {
    const auto zhat = oracle.closest_surface_point(cs.center);
    if (zhat.has_value() && distance(cs.center, *zhat) <= r) {
      if (!iso_grid.any_within(*zhat, cfg.delta)) {
        out.rule = Rule::R1;
        out.point = *zhat;
        out.kind = VertexKind::Isosurface;
        return out;
      }
      if (r > 2.0 * cfg.delta) {
        out.rule = Rule::R2;
        out.point = cs.center;
        out.kind = VertexKind::Circumcenter;
        return out;
      }
    }
  }

  // --- boundary facet rule R3 ------------------------------------------
  for (int i = 0; i < 4; ++i) {
    const CellId nb = cl.n[i].load(std::memory_order_acquire);
    if (nb == kNoCell || !mesh.cell_alive(nb)) continue;
    const auto npos = mesh.positions(nb);
    const Circumsphere ncs = circumsphere(npos[0], npos[1], npos[2], npos[3]);
    if (!ncs.valid) continue;
    // Both circumcenters lie on the face's axis, so |c(t)c(nb)| <=
    // r(t)+r(nb) and the Voronoi edge V(f) is covered by the two
    // circumballs: it can only cross ∂O when one of them does.
    if (!ball_may_hit &&
        !oracle.ball_may_intersect_surface(ncs.center,
                                           std::sqrt(ncs.radius2))) {
      continue;
    }
    if (!oracle.segment_may_intersect_surface(cs.center, ncs.center)) continue;
    const auto hit = oracle.segment_surface_intersection(cs.center, ncs.center);
    if (!hit.has_value()) continue;

    // Acquire atomic_ref reads: classification runs without vertex locks
    // (the insertion re-validates the cell's generation afterwards), so a
    // commit may concurrently rewrite this recycled slot's v array.
    std::array<VertexId, 3> fv;
    for (int k = 0; k < 3; ++k) {
      fv[static_cast<std::size_t>(k)] =
          std::atomic_ref(const_cast<VertexId&>(cl.v[kFaceOf[i][k]]))
              .load(std::memory_order_acquire);
    }
    const Vec3& fa = mesh.vertex(fv[0]).pos;
    const Vec3& fb = mesh.vertex(fv[1]).pos;
    const Vec3& fc = mesh.vertex(fv[2]).pos;
    const bool bad_angle =
        min_triangle_angle(fa, fb, fc) < cfg.min_planar_angle_deg;
    const bool off_surface = !on_surface(mesh.vertex(fv[0]).kind) ||
                             !on_surface(mesh.vertex(fv[1]).kind) ||
                             !on_surface(mesh.vertex(fv[2]).kind);
    if (!bad_angle && !off_surface) continue;

    // Degeneracy guard: a surface-center (numerically) on top of a facet
    // vertex cannot make progress.
    const double guard = 1e-3 * cfg.delta;
    if (distance(*hit, fa) < guard || distance(*hit, fb) < guard ||
        distance(*hit, fc) < guard) {
      continue;
    }
    out.rule = Rule::R3;
    out.point = *hit;
    out.kind = VertexKind::SurfaceCenter;
    return out;
  }

  // --- volume rules R4 / R5 ---------------------------------------------
  if (!oracle.inside(cs.center)) return out;

  const double shortest = shortest_edge(pos[0], pos[1], pos[2], pos[3]);
  if (shortest > 0.0 && r / shortest > cfg.rho_bound) {
    out.rule = Rule::R4;
    out.point = cs.center;
    out.kind = VertexKind::Circumcenter;
    return out;
  }
  if (cfg.size_fn && r > cfg.size_fn(cs.center)) {
    out.rule = Rule::R5;
    out.point = cs.center;
    out.kind = VertexKind::Circumcenter;
    return out;
  }
  return out;
}

}  // namespace pi2m
