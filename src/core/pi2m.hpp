// Public API of the PI2M library.
//
// One call turns a multi-label segmented image into a quality tetrahedral
// mesh whose boundary faces lie on the recovered isosurfaces:
//
//   pi2m::MeshingOptions opt;
//   opt.delta = 2.0;                       // surface sample spacing (mm)
//   opt.threads = 8;
//   pi2m::MeshingResult res = pi2m::mesh_image(image, opt);
//   // res.mesh.points / res.mesh.tets / res.mesh.tet_labels ...
//
// The final mesh M is the set of tetrahedra whose circumcenter lies inside
// the object O (paper Fig. 1c / Theorem 1); every tetrahedron carries the
// label of the tissue containing its circumcenter, so multi-material
// conformity comes out directly.
#pragma once

#include <array>
#include <cstdint>

#include "core/refiner.hpp"
#include "imaging/image3d.hpp"

namespace pi2m {

/// A plain extracted tetrahedral mesh (value type, safe to keep after the
/// Refiner is destroyed).
struct TetMesh {
  std::vector<Vec3> points;
  std::vector<std::array<std::uint32_t, 4>> tets;  ///< indices into points
  std::vector<Label> tet_labels;                   ///< tissue per element
  /// Triangles separating different labels (including label 0 = outside):
  /// the recovered isosurface(s).
  std::vector<std::array<std::uint32_t, 3>> boundary_tris;
  std::vector<VertexKind> point_kinds;

  [[nodiscard]] std::size_t num_tets() const { return tets.size(); }
  [[nodiscard]] std::size_t num_points() const { return points.size(); }
};

/// Extracts the final mesh from a refined triangulation: keeps cells whose
/// circumcenter lies inside O, labels them by the tissue at the
/// circumcenter, and collects label-interface triangles.
///
/// With a non-null `lattice` (a hybrid run's fill, from Refiner::lattice())
/// the kernel cells covered by the structured region are dropped and the
/// BCC template tets are appended in their place, sharing the seeded
/// interface vertex indices — the stitched mesh is watertight across ∂L.
TetMesh extract_mesh(const DelaunayMesh& mesh, const IsosurfaceOracle& oracle,
                     int threads = 1,
                     const lattice::LatticeFill* lattice = nullptr);

struct MeshingOptions {
  /// Surface sample spacing δ (world units). The dominant knob: halving δ
  /// roughly multiplies the element count by 8 (paper §6.3's volume
  /// argument). Required.
  double delta = 0.0;
  double radius_edge_bound = 2.0;
  double min_planar_angle_deg = 30.0;
  SizeFunction size_function;  ///< optional volume sizing field (R5)

  /// Interior fill strategy: BCC-lattice bulk + Delaunay skin (default) or
  /// pure Delaunay refinement (`delaunay`, the pre-hybrid behaviour and the
  /// A/B baseline). Small images degrade to identical pure-Delaunay output.
  InteriorFill interior = InteriorFill::Lattice;
  /// Lattice cube size (world units); <= 0 = automatic (2δ).
  double lattice_spacing = 0.0;

  int threads = 1;
  CmKind contention_manager = CmKind::Local;
  LbKind load_balancer = LbKind::HWS;
  TopologySpec topology{};

  std::size_t max_vertices = std::size_t{1} << 22;
  std::size_t max_cells = std::size_t{1} << 24;
  double watchdog_sec = 30.0;

  /// A/B switches for the classification hot path (defaults = fast path):
  /// the generation-tagged geometry cache and the voxel-DDA oracle walks.
  bool use_geom_cache = true;
  bool use_reference_walks = false;

  /// Scheduler & memory-locality knobs (see RefinerOptions for semantics):
  /// pin workers to cpus, probe the host topology instead of the declared
  /// spec, fall back to the mutex scheduler, spin budget before parking.
  bool pin = false;
  bool topology_auto = false;
  bool mutex_scheduler = false;
  int park_spin_us = 50;

  /// Serving hooks (see RefinerOptions for semantics): cooperative
  /// cancellation checked at refinement-loop boundaries, and warm
  /// recycled arena storage for repeated meshes in one process.
  const std::atomic<bool>* cancel = nullptr;
  bool warm_arena = false;
};

struct MeshingResult {
  TetMesh mesh;
  RefineOutcome outcome;
  [[nodiscard]] bool ok() const { return outcome.completed; }
  [[nodiscard]] double elements_per_sec() const {
    return outcome.wall_sec > 0 ? static_cast<double>(mesh.num_tets()) /
                                      outcome.wall_sec
                                : 0.0;
  }
};

/// One-shot image-to-mesh conversion.
MeshingResult mesh_image(const LabeledImage3D& img, const MeshingOptions& opt);

/// Serving-path variant: re-uses a precomputed oracle (EDT cache hit; must
/// match `img` in content) instead of recomputing the feature transform.
/// Pass nullptr to fall back to the one-shot behaviour.
MeshingResult mesh_image(const LabeledImage3D& img, const MeshingOptions& opt,
                         std::shared_ptr<const IsosurfaceOracle> warm_oracle);

/// Translates the public options into refiner options (exposed for benches
/// that need to drive the Refiner directly).
RefinerOptions to_refiner_options(const MeshingOptions& opt);

}  // namespace pi2m
