#include "fem/laplace.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "geometry/tetra.hpp"

namespace pi2m::fem {

void CsrMatrix::multiply(const std::vector<double>& x,
                         std::vector<double>& y) const {
  const std::size_t n = rows();
  y.assign(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      acc += val[k] * x[col[k]];
    }
    y[r] = acc;
  }
}

CsrMatrix assemble_stiffness(const TetMesh& mesh) {
  const std::size_t n = mesh.points.size();
  // Triplet accumulation per row; meshes are small enough that a map per
  // row is fine for a reference FE substrate.
  std::vector<std::map<std::uint32_t, double>> rows(n);

  for (const auto& t : mesh.tets) {
    const Vec3& a = mesh.points[t[0]];
    const Vec3& b = mesh.points[t[1]];
    const Vec3& c = mesh.points[t[2]];
    const Vec3& d = mesh.points[t[3]];
    const double vol6 = 6.0 * signed_volume(a, b, c, d);
    if (std::fabs(vol6) < 1e-300) continue;

    // Gradients of the barycentric basis functions: grad λ_i is the inward
    // normal of the opposite face scaled by 1/(6V) (sign handled by vol6).
    const Vec3 g[4] = {
        cross(d - b, c - b) / vol6,
        cross(c - a, d - a) / vol6,
        cross(d - a, b - a) / vol6,
        cross(b - a, c - a) / vol6,
    };
    const double vol = std::fabs(vol6) / 6.0;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        rows[t[i]][t[j]] += vol * dot(g[i], g[j]);
      }
    }
  }

  CsrMatrix m;
  m.row_ptr.assign(n + 1, 0);
  std::size_t nnz = 0;
  for (std::size_t r = 0; r < n; ++r) nnz += rows[r].size();
  m.col.reserve(nnz);
  m.val.reserve(nnz);
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& [c, v] : rows[r]) {
      m.col.push_back(c);
      m.val.push_back(v);
    }
    m.row_ptr[r + 1] = static_cast<std::uint32_t>(m.col.size());
  }
  return m;
}

SolveResult solve_laplace(const TetMesh& mesh, const DirichletProblem& problem,
                          double tolerance, int max_iterations) {
  SolveResult out;
  const std::size_t n = mesh.points.size();
  if (n == 0) {
    out.converged = true;
    return out;
  }

  std::vector<char> fixed(n, 0);
  for (const auto& f : mesh.boundary_tris) {
    for (const std::uint32_t v : f) fixed[v] = 1;
  }

  const CsrMatrix k = assemble_stiffness(mesh);
  out.u.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    if (fixed[v]) out.u[v] = problem.boundary_value(mesh.points[v]);
  }

  // rhs for interior unknowns: -K_ib * u_b; solve on the interior block by
  // zeroing fixed rows/cols implicitly (projection).
  std::vector<double> rhs(n, 0.0), tmp(n);
  k.multiply(out.u, tmp);
  for (std::size_t v = 0; v < n; ++v) rhs[v] = fixed[v] ? 0.0 : -tmp[v];

  std::vector<double> diag(n, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::uint32_t i = k.row_ptr[r]; i < k.row_ptr[r + 1]; ++i) {
      if (k.col[i] == r && k.val[i] > 0.0) diag[r] = k.val[i];
    }
  }

  auto project = [&](std::vector<double>& x) {
    for (std::size_t v = 0; v < n; ++v) {
      if (fixed[v]) x[v] = 0.0;
    }
  };
  auto dotv = [](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  };

  // Jacobi-preconditioned CG on the homogeneous correction du.
  std::vector<double> du(n, 0.0), r = rhs, z(n), p(n), q(n);
  project(r);
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
  project(z);
  p = z;
  double rz = dotv(r, z);
  const double rhs_norm = std::sqrt(std::max(dotv(rhs, rhs), 1e-300));

  for (out.iterations = 0; out.iterations < max_iterations; ++out.iterations) {
    const double rnorm = std::sqrt(dotv(r, r));
    out.residual = rnorm / rhs_norm;
    if (out.residual < tolerance) {
      out.converged = true;
      break;
    }
    k.multiply(p, q);
    project(q);
    const double pq = dotv(p, q);
    if (pq <= 0.0) break;  // matrix not SPD on this subspace: bail out
    const double alpha = rz / pq;
    for (std::size_t i = 0; i < n; ++i) {
      du[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
    project(z);
    const double rz_new = dotv(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  for (std::size_t i = 0; i < n; ++i) out.u[i] += du[i];
  return out;
}

}  // namespace pi2m::fem
