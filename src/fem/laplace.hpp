// Minimal P1 finite-element substrate: assembly and solution of the
// Laplace problem on a PI2M tetrahedral mesh.
//
// The paper's motivation is patient-specific FE modeling ("the robustness
// and accuracy of the solver rely on the quality of the mesh", §1). This
// module closes that loop: it assembles the P1 stiffness matrix on an
// extracted TetMesh, applies Dirichlet data on the recovered isosurface,
// and solves with Jacobi-preconditioned conjugate gradients. Element
// quality shows up directly as conditioning — the examples and tests use
// it to demonstrate that PI2M meshes are solver-ready (and that CG
// iteration counts respond to mesh quality).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/pi2m.hpp"

namespace pi2m::fem {

/// Compressed sparse row matrix (symmetric content, full storage).
struct CsrMatrix {
  std::vector<std::uint32_t> row_ptr;
  std::vector<std::uint32_t> col;
  std::vector<double> val;
  [[nodiscard]] std::size_t rows() const { return row_ptr.size() - 1; }

  void multiply(const std::vector<double>& x, std::vector<double>& y) const;
};

/// P1 (linear tetrahedra) stiffness matrix of -∆ on the mesh. Degenerate
/// elements (zero volume) are skipped.
CsrMatrix assemble_stiffness(const TetMesh& mesh);

struct DirichletProblem {
  /// Boundary value at a point; applied to every vertex on the mesh
  /// boundary (vertices of boundary_tris).
  std::function<double(const Vec3&)> boundary_value;
};

struct SolveResult {
  std::vector<double> u;     ///< nodal solution
  int iterations = 0;
  double residual = 0.0;     ///< final relative residual
  bool converged = false;
};

/// Solves -∆u = 0 with the given Dirichlet data using Jacobi-preconditioned
/// CG on the interior unknowns.
SolveResult solve_laplace(const TetMesh& mesh, const DirichletProblem& problem,
                          double tolerance = 1e-8, int max_iterations = 5000);

}  // namespace pi2m::fem
