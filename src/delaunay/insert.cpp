#include "check/oplog.hpp"
#include "delaunay/operations.hpp"
#include "predicates/predicates.hpp"
#include "predicates/predicates_simd.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {
namespace {

/// Locks a vertex, recording newly acquired locks in scratch for rollback.
/// Returns false (filling `held_by`) when another thread owns it.
bool lock_vertex(DelaunayMesh& mesh, VertexId v, int tid, OpScratch& s,
                 std::int32_t& held_by) {
  if (mesh.vertex(v).owner.load(std::memory_order_relaxed) == tid) return true;
  if (!mesh.try_lock_vertex(v, tid, held_by)) return false;
  s.locked.push_back(v);
  return true;
}

void unlock_all(DelaunayMesh& mesh, int tid, OpScratch& s) {
  for (VertexId v : s.locked) mesh.unlock_vertex(v, tid);
  s.locked.clear();
}

bool lock_cell_vertices(DelaunayMesh& mesh, CellId c, int tid, OpScratch& s,
                        std::int32_t& held_by) {
  Cell& cl = mesh.cell(c);
  for (int i = 0; i < 4; ++i) {
    // Acquire atomic_ref read: `c` is not locked yet, so a concurrent commit
    // may be rewriting this (recycled) slot. Callers re-check liveness and
    // containment after all four locks are held.
    const VertexId vi =
        std::atomic_ref(cl.v[i]).load(std::memory_order_acquire);
    if (!lock_vertex(mesh, vi, tid, s, held_by)) return false;
  }
  return true;
}

int insphere_cell(const DelaunayMesh& mesh, CellId c, const Vec3& p) {
  const auto pos = mesh.positions(c);
  return insphere(pos[0], pos[1], pos[2], pos[3], p);
}

/// Index of the face of `nb` adjacent to cell `c`. Valid while `nb`'s face
/// vertices stay locked (no other thread may rewire a face it cannot lock).
int mirror_face(const DelaunayMesh& mesh, CellId nb, CellId c) {
  const Cell& cl = mesh.cell(nb);
  for (int j = 0; j < 4; ++j) {
    if (cl.n[j].load(std::memory_order_relaxed) == c) return j;
  }
  return -1;
}

/// Grows the conflict cavity from the locked, alive, conflicting cell `c0`,
/// validates it, and commits the Bowyer-Watson retriangulation. Assumes
/// c0's vertices are already locked and insphere(c0, p) > 0.
OpResult grow_and_commit(DelaunayMesh& mesh, const Vec3& p, VertexKind kind,
                         CellId c0, int tid, OpScratch& s) {
  OpResult res;
  // Membership in the cavity / outside-rind is tracked by stamping cells with
  // this operation's globally unique epoch (O(1) probe; see Cell::mark). A
  // cell is only ever stamped while this thread holds all of its vertices,
  // and the pre-lock probe tolerates foreign stamps because epochs never
  // repeat across threads or operations.
  const std::uint64_t in_cavity = s.cavity_mark();
  const std::uint64_t is_outside = s.outside_mark();
  s.cavity.push_back(c0);
  mesh.cell(c0).mark.store(in_cavity, std::memory_order_relaxed);
  s.bfs.push_back(c0);
  // Per popped cell the four faces are classified in order, the (distinct —
  // two tetrahedra share at most one face) unmarked neighbours are locked in
  // face order, then ALL their insphere filters run as one predicate batch,
  // and results are applied in face order again. The stamp/push/bface
  // sequences are exactly those of the historical one-face-at-a-time loop
  // (including the lock set held when a try-lock fails), so rollback and
  // commit behaviour are unchanged — only the filter arithmetic is wider.
  enum class FaceClass : std::uint8_t { Hull, InCavity, Outside, NeedTest };
  while (!s.bfs.empty()) {
    const CellId c = s.bfs.back();
    s.bfs.pop_back();
    const Cell& cl = mesh.cell(c);

    FaceClass fclass[4];
    CellId fnb[4];
    int lane_of[4];
    InsphereBatch batch;
    int lanes = 0;
    for (int i = 0; i < 4; ++i) {
      const CellId nb = cl.n[i].load(std::memory_order_acquire);
      fnb[i] = nb;
      lane_of[i] = -1;
      if (nb == kNoCell) {
        fclass[i] = FaceClass::Hull;
        continue;
      }
      const std::uint64_t nb_mark =
          mesh.cell(nb).mark.load(std::memory_order_relaxed);
      if (nb_mark == in_cavity) {
        fclass[i] = FaceClass::InCavity;
        continue;
      }
      if (nb_mark == is_outside) {
        fclass[i] = FaceClass::Outside;
        continue;
      }
      std::int32_t held_by = -1;
      if (!lock_cell_vertices(mesh, nb, tid, s, held_by)) {
        // The work discarded here (grown cavity) is invisible to the
        // refiner's rollback accounting; expose its size on the timeline.
        telemetry::instant("bw.abort", "op", "cavity", s.cavity.size());
        unlock_all(mesh, tid, s);
        res.status = OpStatus::Conflict;
        res.conflicting_thread = held_by;
        return res;
      }
      PI2M_CHECK(mesh.cell_alive(nb),
                 "neighbour of a locked cell died (locking protocol bug)");
      fclass[i] = FaceClass::NeedTest;
      const auto pos = mesh.positions(nb);
      batch.set_lane(lanes, pos[0], pos[1], pos[2], pos[3], p);
      lane_of[i] = lanes++;
    }

    int signs[4];
    if (lanes > 0) insphere_batch(batch, lanes, signs);

    for (int i = 0; i < 4; ++i) {
      const CellId nb = fnb[i];
      const VertexId fa = cl.v[kFaceOf[i][0]];
      const VertexId fb = cl.v[kFaceOf[i][1]];
      const VertexId fc = cl.v[kFaceOf[i][2]];
      switch (fclass[i]) {
        case FaceClass::Hull:
          s.bfaces.push_back({c, i, kNoCell, -1, fa, fb, fc});
          break;
        case FaceClass::InCavity:
          break;
        case FaceClass::Outside:
          s.bfaces.push_back({c, i, nb, mirror_face(mesh, nb, c), fa, fb, fc});
          break;
        case FaceClass::NeedTest:
          if (signs[lane_of[i]] > 0) {
            s.cavity.push_back(nb);
            mesh.cell(nb).mark.store(in_cavity, std::memory_order_relaxed);
            s.bfs.push_back(nb);
          } else {
            mesh.cell(nb).mark.store(is_outside, std::memory_order_relaxed);
            s.bfaces.push_back(
                {c, i, nb, mirror_face(mesh, nb, c), fa, fb, fc});
          }
          break;
      }
    }
  }

  // Validate: every new tetrahedron must be positively oriented, i.e. the
  // cavity is star-shaped around p. Batched 8 boundary faces per filter
  // pass; any non-positive lane fails the whole operation, as before.
  {
    const std::size_t nbf = s.bfaces.size();
    for (std::size_t base = 0; base < nbf;
         base += Orient3dBatch::kMaxLanes) {
      Orient3dBatch vb;
      const int vn = static_cast<int>(
          std::min<std::size_t>(Orient3dBatch::kMaxLanes, nbf - base));
      for (int k = 0; k < vn; ++k) {
        const OpScratch::BFace& bf = s.bfaces[base + k];
        vb.set_lane(k, mesh.position(bf.a), mesh.position(bf.b),
                    mesh.position(bf.c), p);
      }
      int vsigns[Orient3dBatch::kMaxLanes];
      orient3d_batch(vb, vn, vsigns);
      for (int k = 0; k < vn; ++k) {
        if (vsigns[k] <= 0) {
          unlock_all(mesh, tid, s);
          res.status = OpStatus::Failed;  // p degenerate against boundary
          return res;
        }
      }
    }
  }

  // --- commit ---
  telemetry::Span commit_span("bw.commit", "op");
  commit_span.set_arg("cells", s.bfaces.size());
  const VertexId pv =
      mesh.create_vertex(p, kind, tid, s.vblock);  // born locked
  s.locked.push_back(pv);

  // Each cavity-boundary edge is shared by exactly two boundary faces, so
  // every edge pairs up exactly once: O(1) hashed find-or-insert replaces the
  // former O(edges) scan per edge.
  s.edge_glue.begin(s.bfaces.size() * 3 / 2 + 1);
  for (const OpScratch::BFace& bf : s.bfaces) {
    const CellId nc = mesh.allocate_cell(s.freelist);
    Cell& cl = mesh.cell(nc);
    // Release stores: the unlocked locate walk snapshots v with acquire
    // atomic_refs (locate.cpp); pairing with these stores extends the
    // vertex-lock happens-before chain to the walker's position reads.
    const std::array<VertexId, 4> nv{bf.a, bf.b, bf.c, pv};
    for (int k = 0; k < 4; ++k) {
      std::atomic_ref(cl.v[k]).store(nv[k], std::memory_order_release);
    }
    cl.n[3].store(bf.outside, std::memory_order_release);
    if (bf.outside != kNoCell) {
      PI2M_CHECK(bf.mirror >= 0,
                 "cavity boundary face missing from outside cell");
      mesh.cell(bf.outside).n[bf.mirror].store(nc, std::memory_order_release);
    }
    // Internal gluing: new-cell face k (k<3) lies on edge (base minus k) + p.
    const std::array<VertexId, 3> base{bf.a, bf.b, bf.c};
    for (int k = 0; k < 3; ++k) {
      const std::uint64_t key = edge_key(base[(k + 1) % 3], base[(k + 2) % 3]);
      auto* slot = s.edge_glue.find_or_insert(key, {nc, k});
      if (slot != nullptr) {
        cl.n[k].store(slot->value.cell, std::memory_order_release);
        mesh.cell(slot->value.cell)
            .n[slot->value.face]
            .store(nc, std::memory_order_release);
        s.edge_glue.consume(slot);
      }
    }
    for (VertexId v : {bf.a, bf.b, bf.c, pv}) {
      mesh.vertex(v).incident_hint.store(nc, std::memory_order_relaxed);
    }
    s.created.push_back(nc);
  }
  PI2M_CHECK(s.edge_glue.live() == 0,
             "unmatched cavity-boundary edge after re-fill");

  for (const CellId c : s.cavity) mesh.retire_cell(c, s.freelist);
  // Recorded before unlock: the sequence number drawn inside is only a valid
  // linearization order while the op still holds its vertex locks.
  check::record_commit(check::OpKind::Insert, p,
                       static_cast<std::uint8_t>(kind),
                       static_cast<std::uint32_t>(s.cavity.size()), tid);
  unlock_all(mesh, tid, s);

  res.status = OpStatus::Success;
  res.new_vertex = pv;
  return res;
}

}  // namespace

OpResult insert_point(DelaunayMesh& mesh, const Vec3& p, VertexKind kind,
                      CellId hint, int tid, OpScratch& s) {
  s.begin_op();
  OpResult res;
  if (!mesh.box().contains(p)) {
    res.status = OpStatus::Failed;
    return res;
  }

  // --- locate and pin the target cell ---
  CellId c0 = kNoCell;
  CellId start = hint;
  for (int attempt = 0; attempt < 4; ++attempt) {
    LocateResult loc = locate_point(mesh, p, start);
    if (!loc.ok) {
      // The hint died (or the walk was disrupted); restart from any alive
      // cell once per attempt.
      loc = locate_point(mesh, p, any_alive_cell(mesh, start));
      if (!loc.ok) {
        res.status = OpStatus::Stale;
        return res;
      }
    }
    std::int32_t held_by = -1;
    if (!lock_cell_vertices(mesh, loc.cell, tid, s, held_by)) {
      unlock_all(mesh, tid, s);
      res.status = OpStatus::Conflict;
      res.conflicting_thread = held_by;
      return res;
    }
    if (!mesh.cell_alive(loc.cell)) {
      // The cell died between the walk and the lock; re-walk from an alive
      // cell near where the last walk ended (restarting from the original
      // hint — possibly long dead — would retread the same ground).
      unlock_all(mesh, tid, s);
      start = any_alive_cell(mesh, loc.cell);
      continue;
    }
    // Containment re-check under locks (the unlocked walk is best-effort):
    // all four face orientations in one predicate batch.
    const auto pos = mesh.positions(loc.cell);
    Orient3dBatch cb;
    for (int i = 0; i < 4; ++i) {
      cb.set_lane(i, pos[kFaceOf[i][0]], pos[kFaceOf[i][1]],
                  pos[kFaceOf[i][2]], p);
    }
    int csigns[4];
    orient3d_batch(cb, 4, csigns);
    const bool inside_cell =
        csigns[0] >= 0 && csigns[1] >= 0 && csigns[2] >= 0 && csigns[3] >= 0;
    if (!inside_cell) {
      // The best-effort walk stopped one or more cells short (concurrent
      // restructuring): resume from where it stopped so retries make
      // progress instead of re-walking from the stale hint.
      unlock_all(mesh, tid, s);
      start = loc.cell;
      continue;
    }
    c0 = loc.cell;
    break;
  }
  if (c0 == kNoCell) {
    res.status = OpStatus::Stale;
    return res;
  }

  if (insphere_cell(mesh, c0, p) <= 0) {
    // p coincides with (or is cospherical-degenerate against) an existing
    // vertex of the containing cell: nothing sensible to insert.
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Failed;
    return res;
  }
  return grow_and_commit(mesh, p, kind, c0, tid, s);
}

OpResult insert_point_in_conflict(DelaunayMesh& mesh, const Vec3& p,
                                  VertexKind kind, CellId conflict,
                                  std::uint32_t conflict_gen, int tid,
                                  OpScratch& s) {
  s.begin_op();
  OpResult res;
  if (!mesh.box().contains(p)) {
    res.status = OpStatus::Failed;
    return res;
  }
  std::int32_t held_by = -1;
  if (!lock_cell_vertices(mesh, conflict, tid, s, held_by)) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Conflict;
    res.conflicting_thread = held_by;
    return res;
  }
  if (mesh.cell_gen(conflict) != conflict_gen) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Stale;  // the cell changed under the caller
    return res;
  }
  if (insphere_cell(mesh, conflict, p) <= 0) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Failed;  // caller's conflict claim was wrong
    return res;
  }
  return grow_and_commit(mesh, p, kind, conflict, tid, s);
}

}  // namespace pi2m
