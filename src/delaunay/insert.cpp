#include <algorithm>

#include "delaunay/operations.hpp"
#include "predicates/predicates.hpp"

namespace pi2m {
namespace {

/// Locks a vertex, recording newly acquired locks in scratch for rollback.
/// Returns false (filling `held_by`) when another thread owns it.
bool lock_vertex(DelaunayMesh& mesh, VertexId v, int tid, OpScratch& s,
                 std::int32_t& held_by) {
  if (mesh.vertex(v).owner.load(std::memory_order_relaxed) == tid) return true;
  if (!mesh.try_lock_vertex(v, tid, held_by)) return false;
  s.locked.push_back(v);
  return true;
}

void unlock_all(DelaunayMesh& mesh, int tid, OpScratch& s) {
  for (VertexId v : s.locked) mesh.unlock_vertex(v, tid);
  s.locked.clear();
}

bool lock_cell_vertices(DelaunayMesh& mesh, CellId c, int tid, OpScratch& s,
                        std::int32_t& held_by) {
  const Cell& cl = mesh.cell(c);
  for (int i = 0; i < 4; ++i) {
    if (!lock_vertex(mesh, cl.v[i], tid, s, held_by)) return false;
  }
  return true;
}

bool contains_id(const std::vector<CellId>& v, CellId c) {
  return std::find(v.begin(), v.end(), c) != v.end();
}

int insphere_cell(const DelaunayMesh& mesh, CellId c, const Vec3& p) {
  const auto pos = mesh.positions(c);
  return insphere(pos[0], pos[1], pos[2], pos[3], p);
}

/// Grows the conflict cavity from the locked, alive, conflicting cell `c0`,
/// validates it, and commits the Bowyer-Watson retriangulation. Assumes
/// c0's vertices are already locked and insphere(c0, p) > 0.
OpResult grow_and_commit(DelaunayMesh& mesh, const Vec3& p, VertexKind kind,
                         CellId c0, int tid, OpScratch& s) {
  OpResult res;
  s.cavity.push_back(c0);
  s.bfs.push_back(c0);
  while (!s.bfs.empty()) {
    const CellId c = s.bfs.back();
    s.bfs.pop_back();
    const Cell& cl = mesh.cell(c);
    for (int i = 0; i < 4; ++i) {
      const CellId nb = cl.n[i].load(std::memory_order_acquire);
      const VertexId fa = cl.v[kFaceOf[i][0]];
      const VertexId fb = cl.v[kFaceOf[i][1]];
      const VertexId fc = cl.v[kFaceOf[i][2]];
      if (nb == kNoCell) {
        s.bfaces.push_back({c, i, kNoCell, fa, fb, fc});
        continue;
      }
      if (contains_id(s.cavity, nb)) continue;
      if (contains_id(s.outside, nb)) {
        s.bfaces.push_back({c, i, nb, fa, fb, fc});
        continue;
      }
      std::int32_t held_by = -1;
      if (!lock_cell_vertices(mesh, nb, tid, s, held_by)) {
        unlock_all(mesh, tid, s);
        res.status = OpStatus::Conflict;
        res.conflicting_thread = held_by;
        return res;
      }
      PI2M_CHECK(mesh.cell_alive(nb),
                 "neighbour of a locked cell died (locking protocol bug)");
      if (insphere_cell(mesh, nb, p) > 0) {
        s.cavity.push_back(nb);
        s.bfs.push_back(nb);
      } else {
        s.outside.push_back(nb);
        s.bfaces.push_back({c, i, nb, fa, fb, fc});
      }
    }
  }

  // Validate: every new tetrahedron must be positively oriented, i.e. the
  // cavity is star-shaped around p.
  for (const OpScratch::BFace& bf : s.bfaces) {
    if (orient3d(mesh.vertex(bf.a).pos, mesh.vertex(bf.b).pos,
                 mesh.vertex(bf.c).pos, p) <= 0) {
      unlock_all(mesh, tid, s);
      res.status = OpStatus::Failed;  // p degenerate against cavity boundary
      return res;
    }
  }

  // --- commit ---
  const VertexId pv = mesh.create_vertex(p, kind, tid);  // born locked
  s.locked.push_back(pv);

  for (const OpScratch::BFace& bf : s.bfaces) {
    const CellId nc = mesh.allocate_cell(s.freelist);
    Cell& cl = mesh.cell(nc);
    cl.v = {bf.a, bf.b, bf.c, pv};
    cl.n[3].store(bf.outside, std::memory_order_release);
    if (bf.outside != kNoCell) {
      const int j = mesh.face_index_of(bf.outside, bf.a, bf.b, bf.c);
      PI2M_CHECK(j >= 0, "cavity boundary face missing from outside cell");
      mesh.cell(bf.outside).n[j].store(nc, std::memory_order_release);
    }
    // Internal gluing: new-cell face k (k<3) lies on edge (base minus k) + p.
    const std::array<VertexId, 3> base{bf.a, bf.b, bf.c};
    for (int k = 0; k < 3; ++k) {
      VertexId u = base[(k + 1) % 3], v = base[(k + 2) % 3];
      if (u > v) std::swap(u, v);
      bool linked = false;
      for (const OpScratch::EdgeSlot& e : s.edgemap) {
        if (e.u == u && e.v == v) {
          cl.n[k].store(e.cell, std::memory_order_release);
          mesh.cell(e.cell).n[e.face].store(nc, std::memory_order_release);
          linked = true;
          break;
        }
      }
      if (!linked) s.edgemap.push_back({u, v, nc, k});
    }
    for (VertexId v : {bf.a, bf.b, bf.c, pv}) {
      mesh.vertex(v).incident_hint.store(nc, std::memory_order_relaxed);
    }
    s.created.push_back(nc);
  }

  for (const CellId c : s.cavity) mesh.retire_cell(c, s.freelist);
  unlock_all(mesh, tid, s);

  res.status = OpStatus::Success;
  res.new_vertex = pv;
  return res;
}

}  // namespace

OpResult insert_point(DelaunayMesh& mesh, const Vec3& p, VertexKind kind,
                      CellId hint, int tid, OpScratch& s) {
  s.reset();
  OpResult res;
  if (!mesh.box().contains(p)) {
    res.status = OpStatus::Failed;
    return res;
  }

  // --- locate and pin the target cell ---
  CellId c0 = kNoCell;
  CellId start = hint;
  for (int attempt = 0; attempt < 4; ++attempt) {
    LocateResult loc = locate_point(mesh, p, start);
    if (!loc.ok) {
      // The hint died (or the walk was disrupted); restart from any alive
      // cell once per attempt.
      loc = locate_point(mesh, p, any_alive_cell(mesh, start));
      if (!loc.ok) {
        res.status = OpStatus::Stale;
        return res;
      }
    }
    std::int32_t held_by = -1;
    if (!lock_cell_vertices(mesh, loc.cell, tid, s, held_by)) {
      unlock_all(mesh, tid, s);
      res.status = OpStatus::Conflict;
      res.conflicting_thread = held_by;
      return res;
    }
    if (!mesh.cell_alive(loc.cell)) {
      // The cell died between the walk and the lock; re-walk.
      unlock_all(mesh, tid, s);
      start = hint;
      continue;
    }
    // Containment re-check under locks (the unlocked walk is best-effort).
    const auto pos = mesh.positions(loc.cell);
    bool inside_cell = true;
    for (int i = 0; i < 4 && inside_cell; ++i) {
      if (orient3d(pos[kFaceOf[i][0]], pos[kFaceOf[i][1]], pos[kFaceOf[i][2]],
                   p) < 0) {
        inside_cell = false;
      }
    }
    if (!inside_cell) {
      unlock_all(mesh, tid, s);
      start = hint;
      continue;
    }
    c0 = loc.cell;
    break;
  }
  if (c0 == kNoCell) {
    res.status = OpStatus::Stale;
    return res;
  }

  if (insphere_cell(mesh, c0, p) <= 0) {
    // p coincides with (or is cospherical-degenerate against) an existing
    // vertex of the containing cell: nothing sensible to insert.
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Failed;
    return res;
  }
  return grow_and_commit(mesh, p, kind, c0, tid, s);
}

OpResult insert_point_in_conflict(DelaunayMesh& mesh, const Vec3& p,
                                  VertexKind kind, CellId conflict,
                                  std::uint32_t conflict_gen, int tid,
                                  OpScratch& s) {
  s.reset();
  OpResult res;
  if (!mesh.box().contains(p)) {
    res.status = OpStatus::Failed;
    return res;
  }
  std::int32_t held_by = -1;
  if (!lock_cell_vertices(mesh, conflict, tid, s, held_by)) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Conflict;
    res.conflicting_thread = held_by;
    return res;
  }
  if (mesh.cell_gen(conflict) != conflict_gen) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Stale;  // the cell changed under the caller
    return res;
  }
  if (insphere_cell(mesh, conflict, p) <= 0) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Failed;  // caller's conflict claim was wrong
    return res;
  }
  return grow_and_commit(mesh, p, kind, conflict, tid, s);
}

}  // namespace pi2m
