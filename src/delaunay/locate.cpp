#include <array>

#include "delaunay/operations.hpp"
#include "predicates/predicates.hpp"
#include "predicates/predicates_simd.hpp"

namespace pi2m {

CellId any_alive_cell(const DelaunayMesh& mesh, CellId near_hint) {
  const std::uint32_t n = mesh.cell_slot_count();
  if (n == 0) return kNoCell;
  const CellId start = near_hint < n ? near_hint : 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    const CellId c = (start + k) % n;
    if (mesh.cell_alive(c)) return c;
  }
  return kNoCell;
}

namespace {

enum class StepOutcome {
  Moved,      ///< crossed a face into a neighbour; c/spin updated
  Contained,  ///< no face separates p from this cell: walk done
  Disrupted,  ///< dead cell, id out of range, or walked out of the box
  Retry,      ///< torn snapshot; re-read the same slot
};

/// One step of the remembering walk. Snapshot semantics are identical to the
/// historical scalar loop; the four face orientations are evaluated as one
/// predicate batch (a single vectorized stage-A pass on AVX2 hardware)
/// instead of up to four early-exited scalar calls, and the crossed face is
/// then chosen in spin-rotated order from the precomputed signs — the same
/// face the scalar scan would have picked.
StepOutcome walk_step(const DelaunayMesh& mesh, const Vec3& p, CellId& c,
                      int& spin) {
  // Snapshot the cell under generation re-check: concurrent retirement or
  // slot reuse during the unlocked walk is detected, not trusted.
  const std::uint32_t g1 = mesh.cell_gen(c);
  if ((g1 & 1u) == 0) return StepOutcome::Disrupted;  // dead cell
  const Cell& cl = mesh.cell(c);
  // Acquire atomic_ref loads: v may be concurrently rewritten by a commit
  // recycling this slot (the committer uses release stores). Reading-from
  // such a store synchronizes-with it, which — via the writer's vertex
  // locks — orders every vertex position write before our reads below.
  // A torn *snapshot* (mixed old/new ids) is still possible and merely
  // sends the walk astray; callers re-validate containment under locks.
  std::array<VertexId, 4> vs;
  for (int i = 0; i < 4; ++i) {
    vs[i] = std::atomic_ref(const_cast<VertexId&>(cl.v[i]))
                .load(std::memory_order_acquire);
  }
  std::array<CellId, 4> ns;
  for (int i = 0; i < 4; ++i) ns[i] = cl.n[i].load(std::memory_order_acquire);
  if (mesh.cell_gen(c) != g1) return StepOutcome::Retry;  // torn snapshot

  const std::uint32_t vcount = mesh.vertex_count();
  std::array<Vec3, 4> pos;
  for (int i = 0; i < 4; ++i) {
    if (vs[i] >= vcount) return StepOutcome::Disrupted;
    pos[i] = mesh.position(vs[i]);
  }

  Orient3dBatch batch;
  for (int i = 0; i < 4; ++i) {
    batch.set_lane(i, pos[kFaceOf[i][0]], pos[kFaceOf[i][1]],
                   pos[kFaceOf[i][2]], p);
  }
  int signs[4];
  orient3d_batch(batch, 4, signs);

  // Rotating the face scan start index implements the classic "remembering"
  // walk tie-break that avoids 2-cycles on degenerate inputs.
  for (int k = 0; k < 4; ++k) {
    const int i = (k + spin) & 3;
    if (signs[i] < 0) {
      const CellId nb = ns[i];
      if (nb == kNoCell) return StepOutcome::Disrupted;  // out of the box
      c = nb;
      ++spin;
      return StepOutcome::Moved;
    }
  }
  return StepOutcome::Contained;
}

}  // namespace

LocateResult locate_point(const DelaunayMesh& mesh, const Vec3& p, CellId hint,
                          int max_steps) {
  LocateResult out;
  if (hint == kNoCell || hint >= mesh.cell_slot_count()) return out;

  CellId c = hint;
  int spin = 0;
  for (int step = 0; step < max_steps; ++step) {
    switch (walk_step(mesh, p, c, spin)) {
      case StepOutcome::Contained:
        out.cell = c;
        out.ok = true;
        return out;
      case StepOutcome::Disrupted:
        return out;
      case StepOutcome::Moved:
      case StepOutcome::Retry:
        break;  // both consume a step, as the scalar loop always did
    }
  }
  return out;  // step limit: heavy churn, let the caller retry
}

int locate_points(const DelaunayMesh& mesh, const Vec3* pts, int n,
                  const CellId* hints, LocateResult* out, int max_steps) {
  PI2M_CHECK(n >= 0 && n <= kMaxLocateBatch,
             "locate_points batch size out of range");
  struct WalkState {
    CellId c = kNoCell;
    int spin = 0;
    bool done = false;
  };
  std::array<WalkState, kMaxLocateBatch> walks;

  int remaining = 0;
  for (int w = 0; w < n; ++w) {
    out[w] = LocateResult{};
    if (hints[w] == kNoCell || hints[w] >= mesh.cell_slot_count()) {
      walks[w].done = true;
      continue;
    }
    walks[w].c = hints[w];
    ++remaining;
  }

  for (int step = 0; step < max_steps && remaining > 0; ++step) {
    // Software pipelining: touch every active walk's current cell before
    // stepping any of them, so the (likely) cache misses of independent
    // walks overlap instead of serializing.
    for (int w = 0; w < n; ++w) {
      if (!walks[w].done) __builtin_prefetch(&mesh.cell(walks[w].c));
    }
    for (int w = 0; w < n; ++w) {
      WalkState& ws = walks[w];
      if (ws.done) continue;
      switch (walk_step(mesh, pts[w], ws.c, ws.spin)) {
        case StepOutcome::Contained:
          out[w].cell = ws.c;
          out[w].ok = true;
          ws.done = true;
          --remaining;
          break;
        case StepOutcome::Disrupted:
          ws.done = true;
          --remaining;
          break;
        case StepOutcome::Moved:
        case StepOutcome::Retry:
          break;
      }
    }
  }

  int ok = 0;
  for (int w = 0; w < n; ++w) ok += out[w].ok ? 1 : 0;
  return ok;
}

}  // namespace pi2m
