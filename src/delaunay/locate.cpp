#include <array>

#include "delaunay/operations.hpp"
#include "predicates/predicates.hpp"

namespace pi2m {

CellId any_alive_cell(const DelaunayMesh& mesh, CellId near_hint) {
  const std::uint32_t n = mesh.cell_slot_count();
  if (n == 0) return kNoCell;
  const CellId start = near_hint < n ? near_hint : 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    const CellId c = (start + k) % n;
    if (mesh.cell_alive(c)) return c;
  }
  return kNoCell;
}

LocateResult locate_point(const DelaunayMesh& mesh, const Vec3& p, CellId hint,
                          int max_steps) {
  LocateResult out;
  if (hint == kNoCell || hint >= mesh.cell_slot_count()) return out;

  CellId c = hint;
  // Rotating the face scan start index implements the classic "remembering"
  // walk tie-break that avoids 2-cycles on degenerate inputs.
  int spin = 0;
  for (int step = 0; step < max_steps; ++step) {
    // Snapshot the cell under generation re-check: concurrent retirement or
    // slot reuse during the unlocked walk is detected, not trusted.
    const std::uint32_t g1 = mesh.cell_gen(c);
    if ((g1 & 1u) == 0) return out;  // dead cell: walk disrupted
    const Cell& cl = mesh.cell(c);
    // Acquire atomic_ref loads: v may be concurrently rewritten by a commit
    // recycling this slot (the committer uses release stores). Reading-from
    // such a store synchronizes-with it, which — via the writer's vertex
    // locks — orders every vertex position write before our reads below.
    // A torn *snapshot* (mixed old/new ids) is still possible and merely
    // sends the walk astray; callers re-validate containment under locks.
    std::array<VertexId, 4> vs;
    for (int i = 0; i < 4; ++i) {
      vs[i] = std::atomic_ref(const_cast<VertexId&>(cl.v[i]))
                  .load(std::memory_order_acquire);
    }
    std::array<CellId, 4> ns;
    for (int i = 0; i < 4; ++i) ns[i] = cl.n[i].load(std::memory_order_acquire);
    if (mesh.cell_gen(c) != g1) continue;  // torn snapshot; re-read same slot

    const std::uint32_t vcount = mesh.vertex_count();
    bool bad = false;
    std::array<Vec3, 4> pos;
    for (int i = 0; i < 4; ++i) {
      if (vs[i] >= vcount) {
        bad = true;
        break;
      }
      pos[i] = mesh.vertex(vs[i]).pos;
    }
    if (bad) return out;

    bool moved = false;
    for (int k = 0; k < 4 && !moved; ++k) {
      const int i = (k + spin) & 3;
      const Vec3& a = pos[kFaceOf[i][0]];
      const Vec3& b = pos[kFaceOf[i][1]];
      const Vec3& cc = pos[kFaceOf[i][2]];
      if (orient3d(a, b, cc, p) < 0) {
        const CellId nb = ns[i];
        if (nb == kNoCell) return out;  // walked out of the virtual box
        c = nb;
        ++spin;
        moved = true;
      }
    }
    if (!moved) {
      out.cell = c;
      out.ok = true;
      return out;
    }
  }
  return out;  // step limit: heavy churn, let the caller retry
}

}  // namespace pi2m
