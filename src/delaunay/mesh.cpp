#include "delaunay/mesh.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "delaunay/operations.hpp"
#include "geometry/tetra.hpp"
#include "predicates/predicates.hpp"

namespace pi2m {

namespace detail {

std::uint64_t acquire_epoch_block(std::uint64_t count) {
  // Starts at 1 so no operation ever uses epoch 0: freshly-constructed cells
  // carry mark == 0, which must never match a live epoch.
  static std::atomic<std::uint64_t> g_next_epoch{1};
  return g_next_epoch.fetch_add(count, std::memory_order_relaxed);
}

}  // namespace detail

DelaunayMesh::DelaunayMesh(const Aabb& box, std::size_t max_vertices,
                           std::size_t max_cells, std::uint32_t arena_block,
                           bool pooled_arena)
    : box_(box),
      vertices_(max_vertices, pooled_arena),
      coords_(max_vertices),
      cells_(max_cells, pooled_arena),
      arena_block_(std::clamp<std::uint32_t>(
          arena_block, 1, ChunkedStore<Cell>::kChunkSize)) {
  PI2M_CHECK(box.hi.x > box.lo.x && box.hi.y > box.lo.y && box.hi.z > box.lo.z,
             "virtual box must have positive extent");
  build_initial_box();
}

VertexId DelaunayMesh::create_vertex(const Vec3& pos, VertexKind kind,
                                     int tid) {
  const VertexId id = vertices_.allocate();
  Vertex& v = vertices_[id];
  v.pos = pos;
  coords_.set(id, pos);  // mirror write precedes the owner release-store
  v.kind = kind;
  v.timestamp = next_timestamp_.fetch_add(1, std::memory_order_relaxed);
  v.dead.store(false, std::memory_order_relaxed);
  v.owner.store(tid, std::memory_order_release);
  return id;
}

VertexId DelaunayMesh::create_vertex(const Vec3& pos, VertexKind kind, int tid,
                                     VertexBlock& blk) {
  if (blk.next == blk.end) {
    // Vertex blocks refill at half the cell block size: operations create
    // ~1 vertex but several cells.
    const auto [first, granted] =
        vertices_.allocate_block(std::max<std::uint32_t>(arena_block_ / 2, 1));
    blk.next = first;
    blk.end = first + granted;
  }
  const VertexId id = blk.next++;
  Vertex& v = vertices_[id];
  v.pos = pos;
  coords_.set(id, pos);  // mirror write precedes the owner release-store
  v.kind = kind;
  v.timestamp = next_timestamp_.fetch_add(1, std::memory_order_relaxed);
  v.dead.store(false, std::memory_order_relaxed);
  v.owner.store(tid, std::memory_order_release);
  return id;
}

bool DelaunayMesh::try_lock_vertex(VertexId vid, int tid,
                                   std::int32_t& held_by) {
  Vertex& v = vertices_[vid];
  std::int32_t expected = -1;
  if (v.owner.compare_exchange_strong(expected, tid,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
    return true;
  }
  if (expected == tid) return true;  // reentrant
  held_by = expected;
  return false;
}

void DelaunayMesh::unlock_vertex(VertexId vid, int tid) {
  Vertex& v = vertices_[vid];
  PI2M_CHECK(v.owner.load(std::memory_order_relaxed) == tid,
             "unlocking a vertex not held by this thread");
  v.owner.store(-1, std::memory_order_release);
}

CellId DelaunayMesh::allocate_cell(CellFreeList& fl) {
  CellId id;
  if (!fl.slots.empty()) {
    // Recycle-first: slots this thread retired are hottest in its cache.
    id = fl.slots.back();
    fl.slots.pop_back();
  } else if (fl.block_next != fl.block_end) {
    id = fl.block_next++;
  } else {
    const auto [first, granted] = cells_.allocate_block(arena_block_);
    id = first;
    fl.block_next = first + 1;
    fl.block_end = first + granted;
  }
  Cell& c = cells_[id];
  // even -> odd: alive. Release pairs with generation re-checks in readers.
  // Plain load+store instead of an RMW: the slot is exclusively ours here
  // (fresh from the arena, or from this thread's own freelist), so there is
  // no competing writer to serialize against.
  c.gen.store(c.gen.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
  return id;
}

void DelaunayMesh::retire_cell(CellId cid, CellFreeList& fl) {
  Cell& c = cells_[cid];
  // Single writer: only the thread holding all four vertex locks may retire
  // a cell, so load+store needs no lock prefix.
  const std::uint32_t g = c.gen.load(std::memory_order_relaxed);
  PI2M_CHECK((g & 1u) != 0, "retiring a cell that is not alive");
  c.gen.store(g + 1, std::memory_order_release);
  fl.slots.push_back(cid);
}

std::array<Vec3, 4> DelaunayMesh::positions(CellId c) const {
  // Acquire atomic_ref reads of v: some callers (locate walk, refiner work
  // distribution) snapshot cells without holding their vertex locks, racing
  // with commits that rewrite recycled slots; lock-holding callers pay a
  // plain load on x86. Reading-from a committer's release store orders the
  // vertices' position writes before the pos reads below.
  const Cell& cl = cells_[c];
  std::array<Vec3, 4> out;
  for (int i = 0; i < 4; ++i) {
    const VertexId vi = std::atomic_ref(const_cast<VertexId&>(cl.v[i]))
                            .load(std::memory_order_acquire);
    out[static_cast<std::size_t>(i)] = coords_.get(vi);
  }
  return out;
}

std::size_t DelaunayMesh::count_alive_cells() const {
  std::size_t n = 0;
  for_each_alive_cell([&](CellId) { ++n; });
  return n;
}

int DelaunayMesh::face_index_of(CellId c, VertexId fa, VertexId fb,
                                VertexId fc) const {
  const Cell& cl = cells_[c];
  for (int i = 0; i < 4; ++i) {
    const VertexId opp = cl.v[i];
    if (opp != fa && opp != fb && opp != fc) {
      const VertexId a = cl.v[kFaceOf[i][0]];
      const VertexId b = cl.v[kFaceOf[i][1]];
      const VertexId cc = cl.v[kFaceOf[i][2]];
      const bool match = (a == fa || a == fb || a == fc) &&
                         (b == fa || b == fb || b == fc) &&
                         (cc == fa || cc == fb || cc == fc);
      if (match) return i;
    }
  }
  return -1;
}

void DelaunayMesh::build_initial_box() {
  // Corner b = (x | y<<1 | z<<2) bit pattern (paper Fig. 1a).
  for (int b = 0; b < 8; ++b) {
    const Vec3 p{(b & 1) ? box_.hi.x : box_.lo.x,
                 (b & 2) ? box_.hi.y : box_.lo.y,
                 (b & 4) ? box_.hi.z : box_.lo.z};
    box_vertices_[static_cast<std::size_t>(b)] =
        create_vertex(p, VertexKind::Box, /*tid=*/0);
    vertex(box_vertices_[static_cast<std::size_t>(b)]).owner.store(-1);
  }

  // Kuhn subdivision: 6 tetrahedra around the main diagonal 000 -> 111.
  // Each permutation of the axes gives one path 000 -> 111 through the cube.
  constexpr int kPaths[6][4] = {{0, 1, 3, 7}, {0, 1, 5, 7}, {0, 2, 3, 7},
                                {0, 2, 6, 7}, {0, 4, 5, 7}, {0, 4, 6, 7}};
  CellFreeList fl;
  std::vector<CellId> made;
  for (const auto& path : kPaths) {
    const CellId cid = allocate_cell(fl);
    Cell& c = cell(cid);
    for (int k = 0; k < 4; ++k) {
      c.v[static_cast<std::size_t>(k)] =
          box_vertices_[static_cast<std::size_t>(path[k])];
    }
    const auto p = positions(cid);
    if (orient3d(p[0], p[1], p[2], p[3]) < 0) std::swap(c.v[2], c.v[3]);
    PI2M_CHECK(orient3d(vertices_[c.v[0]].pos, vertices_[c.v[1]].pos,
                        vertices_[c.v[2]].pos, vertices_[c.v[3]].pos) > 0,
               "initial box cell is degenerate");
    for (int k = 0; k < 4; ++k) {
      vertex(c.v[static_cast<std::size_t>(k)])
          .incident_hint.store(cid, std::memory_order_relaxed);
    }
    made.push_back(cid);
  }

  // Brute-force adjacency for the 6 initial cells.
  std::map<std::tuple<VertexId, VertexId, VertexId>, std::pair<CellId, int>>
      faces;
  for (CellId cid : made) {
    Cell& c = cell(cid);
    for (int i = 0; i < 4; ++i) {
      std::array<VertexId, 3> f{c.v[static_cast<std::size_t>(kFaceOf[i][0])],
                                c.v[static_cast<std::size_t>(kFaceOf[i][1])],
                                c.v[static_cast<std::size_t>(kFaceOf[i][2])]};
      std::sort(f.begin(), f.end());
      const auto key = std::make_tuple(f[0], f[1], f[2]);
      auto it = faces.find(key);
      if (it == faces.end()) {
        faces.emplace(key, std::make_pair(cid, i));
      } else {
        c.n[static_cast<std::size_t>(i)].store(it->second.first,
                                               std::memory_order_release);
        cell(it->second.first)
            .n[static_cast<std::size_t>(it->second.second)]
            .store(cid, std::memory_order_release);
      }
    }
  }
}

std::string DelaunayMesh::check_integrity(bool check_delaunay) const {
  std::ostringstream err;
  std::vector<CellId> alive;
  for_each_alive_cell([&](CellId c) { alive.push_back(c); });

  // The SoA coordinate mirror must agree bit-for-bit with the vertex
  // records for every published vertex.
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].dead.load()) continue;
    const Vec3 m = coords_.get(v);
    const Vec3& p = vertices_[v].pos;
    if (m.x != p.x || m.y != p.y || m.z != p.z) {
      err << "SoA coordinate mirror incoherent for vertex " << v << "\n";
    }
  }

  for (CellId c : alive) {
    const Cell& cl = cells_[c];
    const auto p = positions(c);
    if (orient3d(p[0], p[1], p[2], p[3]) <= 0) {
      err << "cell " << c << " not positively oriented\n";
    }
    for (int i = 0; i < 4; ++i) {
      const CellId nb = cl.n[static_cast<std::size_t>(i)].load();
      if (nb == kNoCell) continue;
      if (!cell_alive(nb)) {
        err << "cell " << c << " neighbour " << nb << " is dead\n";
        continue;
      }
      const Cell& nc = cells_[nb];
      bool back = false;
      for (int j = 0; j < 4; ++j) {
        if (nc.n[static_cast<std::size_t>(j)].load() == c) back = true;
      }
      if (!back) err << "adjacency not symmetric between " << c << " and " << nb << "\n";
      // The shared face must consist of the same 3 vertices.
      const VertexId fa = cl.v[static_cast<std::size_t>(kFaceOf[i][0])];
      const VertexId fb = cl.v[static_cast<std::size_t>(kFaceOf[i][1])];
      const VertexId fc = cl.v[static_cast<std::size_t>(kFaceOf[i][2])];
      if (face_index_of(nb, fa, fb, fc) < 0) {
        err << "cells " << c << "," << nb << " disagree on shared face\n";
      }
    }
  }

  if (check_delaunay) {
    // Every alive vertex must lie on or outside the circumsphere of every
    // alive cell.
    std::vector<VertexId> verts;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
      if (!vertices_[v].dead.load()) verts.push_back(v);
    }
    for (CellId c : alive) {
      const Cell& cl = cells_[c];
      const auto p = positions(c);
      for (VertexId v : verts) {
        if (v == cl.v[0] || v == cl.v[1] || v == cl.v[2] || v == cl.v[3])
          continue;
        if (insphere(p[0], p[1], p[2], p[3], vertices_[v].pos) > 0) {
          err << "vertex " << v << " violates Delaunay for cell " << c << "\n";
        }
      }
    }
  }
  return err.str();
}

double DelaunayMesh::total_volume() const {
  double vol = 0.0;
  for_each_alive_cell([&](CellId c) {
    const auto p = positions(c);
    vol += signed_volume(p[0], p[1], p[2], p[3]);
  });
  return vol;
}

}  // namespace pi2m
