#include <algorithm>
#include <cmath>

#include "check/oplog.hpp"
#include "delaunay/local_dt.hpp"
#include "delaunay/operations.hpp"
#include "geometry/tetra.hpp"
#include "predicates/predicates.hpp"
#include "telemetry/telemetry.hpp"

namespace pi2m {
namespace {

bool lock_vertex(DelaunayMesh& mesh, VertexId v, int tid, OpScratch& s,
                 std::int32_t& held_by) {
  if (mesh.vertex(v).owner.load(std::memory_order_relaxed) == tid) return true;
  if (!mesh.try_lock_vertex(v, tid, held_by)) return false;
  s.locked.push_back(v);
  return true;
}

void unlock_all(DelaunayMesh& mesh, int tid, OpScratch& s) {
  for (VertexId v : s.locked) mesh.unlock_vertex(v, tid);
  s.locked.clear();
}

/// Unlocks (and unrecords) every vertex locked after position `base`.
void unlock_from(DelaunayMesh& mesh, int tid, OpScratch& s, std::size_t base) {
  for (std::size_t i = base; i < s.locked.size(); ++i) {
    mesh.unlock_vertex(s.locked[i], tid);
  }
  s.locked.resize(base);
}

bool lock_cell_vertices(DelaunayMesh& mesh, CellId c, int tid, OpScratch& s,
                        std::int32_t& held_by) {
  Cell& cl = mesh.cell(c);
  for (int i = 0; i < 4; ++i) {
    // Acquire atomic_ref read: `c` is not locked yet, so a concurrent commit
    // may be rewriting this (recycled) slot. Callers re-check liveness and
    // containment after all four locks are held.
    const VertexId vi =
        std::atomic_ref(cl.v[i]).load(std::memory_order_acquire);
    if (!lock_vertex(mesh, vi, tid, s, held_by)) return false;
  }
  return true;
}

bool cell_has_vertex(const Cell& c, VertexId v) {
  return c.v[0] == v || c.v[1] == v || c.v[2] == v || c.v[3] == v;
}

}  // namespace

OpResult remove_vertex(DelaunayMesh& mesh, VertexId pv, int tid,
                       OpScratch& s) {
  s.begin_op();
  OpResult res;

  std::int32_t held_by = -1;
  if (!lock_vertex(mesh, pv, tid, s, held_by)) {
    res.status = OpStatus::Conflict;
    res.conflicting_thread = held_by;
    return res;
  }
  Vertex& vp = mesh.vertex(pv);
  if (vp.dead.load(std::memory_order_acquire) || vp.kind == VertexKind::Box) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Failed;
    return res;
  }

  // --- pin one cell incident to pv ---
  CellId c0 = kNoCell;
  CellId candidate = vp.incident_hint.load(std::memory_order_relaxed);
  for (int attempt = 0; attempt < 4 && c0 == kNoCell; ++attempt) {
    if (candidate == kNoCell || candidate >= mesh.cell_slot_count() ||
        !mesh.cell_alive(candidate)) {
      const LocateResult loc =
          locate_point(mesh, vp.pos, any_alive_cell(mesh, candidate));
      if (!loc.ok) break;
      candidate = loc.cell;
    }
    const std::size_t base = s.locked.size();
    if (!lock_cell_vertices(mesh, candidate, tid, s, held_by)) {
      unlock_all(mesh, tid, s);
      res.status = OpStatus::Conflict;
      res.conflicting_thread = held_by;
      return res;
    }
    if (mesh.cell_alive(candidate) &&
        cell_has_vertex(mesh.cell(candidate), pv)) {
      c0 = candidate;
      break;
    }
    unlock_from(mesh, tid, s, base);
    // Walk to pv's position for the next attempt.
    const LocateResult loc =
        locate_point(mesh, vp.pos, any_alive_cell(mesh, candidate));
    candidate = loc.ok ? loc.cell : kNoCell;
    if (candidate == kNoCell) break;
  }
  if (c0 == kNoCell) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Stale;
    return res;
  }

  // --- gather the ball B(pv), locking every touched vertex ---
  // Ball membership is O(1) via the epoch-stamped cell marks (see
  // Cell::mark); every stamped cell is vertex-locked by this thread.
  const std::uint64_t in_ball = s.cavity_mark();
  s.cavity.push_back(c0);  // cavity doubles as the ball container here
  mesh.cell(c0).mark.store(in_ball, std::memory_order_relaxed);
  s.bfs.push_back(c0);
  while (!s.bfs.empty()) {
    const CellId c = s.bfs.back();
    s.bfs.pop_back();
    const Cell& cl = mesh.cell(c);
    int ip = -1;
    for (int i = 0; i < 4; ++i) {
      if (cl.v[i] == pv) ip = i;
    }
    PI2M_CHECK(ip >= 0, "ball cell lost the removed vertex");
    for (int i = 0; i < 4; ++i) {
      if (i == ip) {
        // The face opposite pv is a boundary face of the ball. Its outside
        // neighbour can never itself contain pv (two cells with the same
        // vertex set would coincide), so it survives the commit; record the
        // mirror face index now while its adjacency is pinned by our locks.
        const CellId out = cl.n[i].load(std::memory_order_acquire);
        int mirror = -1;
        if (out != kNoCell) {
          const Cell& ol = mesh.cell(out);
          for (int j = 0; j < 4; ++j) {
            if (ol.n[j].load(std::memory_order_relaxed) == c) mirror = j;
          }
        }
        s.bfaces.push_back({c, i, out, mirror, cl.v[kFaceOf[i][0]],
                            cl.v[kFaceOf[i][1]], cl.v[kFaceOf[i][2]]});
        continue;
      }
      const CellId nb = cl.n[i].load(std::memory_order_acquire);
      if (nb == kNoCell) {
        // A face containing pv lies on the hull: pv is effectively a hull
        // vertex; refuse the removal.
        unlock_all(mesh, tid, s);
        res.status = OpStatus::Failed;
        return res;
      }
      if (mesh.cell(nb).mark.load(std::memory_order_relaxed) == in_ball)
        continue;
      if (!lock_cell_vertices(mesh, nb, tid, s, held_by)) {
        // Partially-gathered ball discarded: expose its size (see insert.cpp).
        telemetry::instant("bw.abort", "op", "cavity", s.cavity.size());
        unlock_all(mesh, tid, s);
        res.status = OpStatus::Conflict;
        res.conflicting_thread = held_by;
        return res;
      }
      PI2M_CHECK(mesh.cell_alive(nb) && cell_has_vertex(mesh.cell(nb), pv),
                 "ball neighbour inconsistent (locking protocol bug)");
      s.cavity.push_back(nb);
      mesh.cell(nb).mark.store(in_ball, std::memory_order_relaxed);
      s.bfs.push_back(nb);
    }
  }

  // --- link vertices, ordered by global insertion timestamp ---
  std::vector<VertexId> link;
  for (const CellId c : s.cavity) {
    for (int i = 0; i < 4; ++i) {
      const VertexId v = mesh.cell(c).v[i];
      if (v != pv) link.push_back(v);
    }
  }
  std::sort(link.begin(), link.end());
  link.erase(std::unique(link.begin(), link.end()), link.end());
  std::sort(link.begin(), link.end(), [&](VertexId a, VertexId b) {
    return mesh.vertex(a).timestamp < mesh.vertex(b).timestamp;
  });

  std::vector<Vec3> pts;
  pts.reserve(link.size());
  for (const VertexId v : link) pts.push_back(mesh.vertex(v).pos);
  // Global id -> local DT index, O(log n) per lookup (`link` itself is
  // timestamp-ordered, so a parallel id-sorted view is needed).
  std::vector<std::pair<VertexId, int>> local_of_global(link.size());
  for (std::size_t i = 0; i < link.size(); ++i) {
    local_of_global[i] = {link[i], 4 + static_cast<int>(i)};
  }
  std::sort(local_of_global.begin(), local_of_global.end());
  auto local_index = [&](VertexId v) {
    const auto it = std::lower_bound(local_of_global.begin(),
                                     local_of_global.end(),
                                     std::make_pair(v, 0));
    return it->second;
  };

  static thread_local LocalDelaunay dt;
  dt.rebuild(pts);
  if (!dt.ok()) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Failed;
    return res;
  }

  // --- select the local tets that tile the ball cavity ---
  s.triple_index.begin(s.bfaces.size());  // sorted triple -> bface idx
  for (std::size_t bi = 0; bi < s.bfaces.size(); ++bi) {
    std::array<int, 3> key{local_index(s.bfaces[bi].a),
                           local_index(s.bfaces[bi].b),
                           local_index(s.bfaces[bi].c)};
    std::sort(key.begin(), key.end());
    if (s.triple_index.find_or_insert(key, static_cast<int>(bi)) != nullptr) {
      // Two ball cells share the same opposite face: degenerate ball.
      unlock_all(mesh, tid, s);
      res.status = OpStatus::Failed;
      return res;
    }
  }

  std::vector<char> inside(dt.tets().size(), 0);
  std::vector<int> stack;
  bool extract_ok = true;
  for (const OpScratch::BFace& bf : s.bfaces) {
    const int ti = dt.find_tet_with_face(local_index(bf.a), local_index(bf.b),
                                         local_index(bf.c));
    if (ti < 0) {
      extract_ok = false;
      break;
    }
    if (!inside[static_cast<std::size_t>(ti)]) {
      inside[static_cast<std::size_t>(ti)] = 1;
      stack.push_back(ti);
    }
  }
  std::size_t walls = 0;
  while (extract_ok && !stack.empty()) {
    const int ti = stack.back();
    stack.pop_back();
    const LocalDelaunay::Tet& t = dt.tets()[static_cast<std::size_t>(ti)];
    for (int k = 0; k < 4; ++k) {
      if (LocalDelaunay::is_aux(t.v[k])) {
        extract_ok = false;  // cavity fill leaked to the auxiliary hull
        break;
      }
    }
    for (int f = 0; extract_ok && f < 4; ++f) {
      std::array<int, 3> key{t.v[kFaceOf[f][0]], t.v[kFaceOf[f][1]],
                             t.v[kFaceOf[f][2]]};
      std::sort(key.begin(), key.end());
      if (s.triple_index.find(key) != nullptr) {
        ++walls;
        continue;
      }
      const int nb = t.n[f];
      if (nb < 0) {
        extract_ok = false;
        break;
      }
      if (!inside[static_cast<std::size_t>(nb)]) {
        inside[static_cast<std::size_t>(nb)] = 1;
        stack.push_back(nb);
      }
    }
  }
  if (extract_ok && walls != s.bfaces.size()) extract_ok = false;

  // Volume validation: the selected tets must tile the ball exactly.
  if (extract_ok) {
    double ball_vol = 0.0;
    for (const CellId c : s.cavity) {
      const auto p = mesh.positions(c);
      ball_vol += signed_volume(p[0], p[1], p[2], p[3]);
    }
    double fill_vol = 0.0;
    for (std::size_t ti = 0; ti < dt.tets().size(); ++ti) {
      if (!inside[ti]) continue;
      const LocalDelaunay::Tet& t = dt.tets()[ti];
      fill_vol += signed_volume(dt.point(t.v[0]), dt.point(t.v[1]),
                                dt.point(t.v[2]), dt.point(t.v[3]));
    }
    if (std::fabs(fill_vol - ball_vol) > 1e-9 * std::fabs(ball_vol)) {
      extract_ok = false;
    }
  }
  if (!extract_ok) {
    unlock_all(mesh, tid, s);
    res.status = OpStatus::Failed;
    return res;
  }

  // --- commit ---
  // Hashed face pairing: interior faces match exactly twice across the new
  // cells; the unmatched remainder is exactly the ball boundary.
  telemetry::Span commit_span("bw.commit", "op");
  commit_span.set_arg("cells", s.cavity.size());
  std::size_t n_new = 0;
  for (std::size_t ti = 0; ti < dt.tets().size(); ++ti) {
    if (inside[ti]) ++n_new;
  }
  s.face_glue.begin(4 * n_new);
  for (std::size_t ti = 0; ti < dt.tets().size(); ++ti) {
    if (!inside[ti]) continue;
    const LocalDelaunay::Tet& t = dt.tets()[ti];
    const CellId nc = mesh.allocate_cell(s.freelist);
    Cell& cl = mesh.cell(nc);
    for (int k = 0; k < 4; ++k) {
      // Release store: the unlocked locate walk reads v through acquire
      // atomic_refs (see locate.cpp), and the release pairs its reads with
      // the vertex-lock chain that ordered the vertices' position writes.
      std::atomic_ref(cl.v[k]).store(link[static_cast<std::size_t>(t.v[k] - 4)],
                                     std::memory_order_release);
    }
    for (int k = 0; k < 4; ++k) {
      cl.n[k].store(kNoCell, std::memory_order_relaxed);
      mesh.vertex(cl.v[k]).incident_hint.store(nc, std::memory_order_relaxed);
    }
    s.created.push_back(nc);
    for (int f = 0; f < 4; ++f) {
      std::array<VertexId, 3> key{cl.v[kFaceOf[f][0]], cl.v[kFaceOf[f][1]],
                                  cl.v[kFaceOf[f][2]]};
      std::sort(key.begin(), key.end());
      auto* slot = s.face_glue.find_or_insert(key, {nc, f});
      if (slot != nullptr) {
        cl.n[f].store(slot->value.cell, std::memory_order_release);
        mesh.cell(slot->value.cell)
            .n[slot->value.face]
            .store(nc, std::memory_order_release);
        s.face_glue.consume(slot);
      }
    }
  }
  // Remaining open faces are exactly the ball boundary: wire them to the
  // outside cells recorded in bfaces.
  for (const OpScratch::BFace& bf : s.bfaces) {
    std::array<VertexId, 3> key{bf.a, bf.b, bf.c};
    std::sort(key.begin(), key.end());
    auto* slot = s.face_glue.find(key);
    PI2M_CHECK(slot != nullptr,
               "ball boundary face missing after re-triangulation");
    const auto [nc, f] = slot->value;
    mesh.cell(nc).n[f].store(bf.outside, std::memory_order_release);
    if (bf.outside != kNoCell) {
      PI2M_CHECK(bf.mirror >= 0, "outside cell lost the shared ball face");
      mesh.cell(bf.outside).n[bf.mirror].store(nc, std::memory_order_release);
    }
    s.face_glue.consume(slot);
  }
  PI2M_CHECK(s.face_glue.live() == 0,
             "unmatched faces after ball re-triangulation");

  for (const CellId c : s.cavity) mesh.retire_cell(c, s.freelist);
  vp.dead.store(true, std::memory_order_release);
  // Recorded before unlock: the sequence number drawn inside is only a valid
  // linearization order while the op still holds its vertex locks.
  check::record_commit(check::OpKind::Remove, vp.pos,
                       static_cast<std::uint8_t>(vp.kind),
                       static_cast<std::uint32_t>(s.cavity.size()), tid);
  unlock_all(mesh, tid, s);

  res.status = OpStatus::Success;
  res.new_vertex = kNoVertex;
  return res;
}

}  // namespace pi2m
