// Generation-tagged per-cell geometry cache (side arena).
//
// Motivation: a cell's derived geometry — circumsphere, EDT surface-distance
// lower bound, the inside-O test at the circumcenter, and the memoized
// closest-surface-point of the circumcenter — is a pure function of the
// cell's (immutable) vertex positions and the (static) input image. Yet the
// refinement loop recomputes all of it on every classify: at creation-time
// tagging, at every pop, on every conflict/stale retry, and once more for
// each of up to four neighbours in rule R3's scan. This arena memoizes those
// quantities per cell *slot*, keyed by the slot's generation counter.
//
// Safety argument (see DESIGN.md "Classification & oracle caching"):
//  * Entries are validated, never trusted: a reader presents the generation
//    it believes the cell has; anything else — an empty entry, an entry for
//    a previous occupant of a recycled slot, or an entry mid-write — fails
//    the tag comparison and reads as a miss. A stale read is therefore
//    *detected*, not consumed.
//  * Writers are exclusive per slot: publishing claims the tag word with a
//    CAS into a "filling" state (ready bit clear) that no other thread may
//    claim over, writes the payload, then release-stores the ready tag.
//    Claims are monotone in the generation, so a laggard thread holding a
//    stale generation can never downgrade a fresher entry.
//  * Readers follow the seqlock discipline (tag — payload — fence — tag),
//    with payload accessed through relaxed std::atomic_ref, so a reader
//    overlapping a writer for a *newer* generation of the same slot is
//    race-free and detects the overlap via the re-read tag.
//
// No locks, no waiting: a thread that loses a claim or hits a miss simply
// computes the geometry locally — the cache is an accelerator, never an
// obligation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "geometry/tetra.hpp"
#include "geometry/vec3.hpp"
#include "support/common.hpp"

namespace pi2m {

class CellGeomCache {
 public:
  /// Everything classify_cell derives from the cell alone (not from the
  /// mutable packing grids): circumsphere, the EDT lower bound on the
  /// circumcenter's distance to the surface, and whether the circumcenter
  /// lies inside O. `surf_lb` / `inside` are meaningful only when cs.valid.
  struct CoreView {
    Circumsphere cs;
    double surf_lb = 0.0;
    bool inside = false;
  };

  struct CounterTotals {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t csp_hits = 0;
    std::uint64_t csp_misses = 0;
  };

  /// Sized to the mesh's cell-slot capacity; chunks allocate on first touch
  /// (mirroring the cell arena), so memory tracks the live slot range.
  explicit CellGeomCache(std::size_t max_cells)
      : chunks_((max_cells >> kChunkBits) + 1) {
    for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
  }
  ~CellGeomCache() {
    for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
  }
  CellGeomCache(const CellGeomCache&) = delete;
  CellGeomCache& operator=(const CellGeomCache&) = delete;

  /// Seqlock read of the core entry for (c, gen). True on hit. `tid` indexes
  /// the padded hit/miss counter slot (any small non-negative id works).
  bool load(CellId c, std::uint32_t gen, CoreView& out, int tid = 0) {
    Entry& e = entry(c);
    const std::uint64_t want_gen = std::uint64_t{gen};
    const std::uint64_t t1 = e.tag.load(std::memory_order_acquire);
    if ((t1 >> kCoreGenShift) != want_gen || (t1 & kReadyBit) == 0) {
      count(tid).misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    out.cs.center = {relaxed_load(e.cx), relaxed_load(e.cy),
                     relaxed_load(e.cz)};
    out.cs.radius2 = relaxed_load(e.r2);
    out.surf_lb = relaxed_load(e.surf_lb);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (e.tag.load(std::memory_order_relaxed) != t1) {
      count(tid).misses.fetch_add(1, std::memory_order_relaxed);
      return false;  // writer for a newer generation intervened
    }
    out.cs.valid = (t1 & kCsValidBit) != 0;
    out.inside = (t1 & kInsideBit) != 0;
    count(tid).hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Publishes the core entry for (c, gen). A no-op when another writer
  /// holds the slot or a same-or-newer generation is already present.
  void store(CellId c, std::uint32_t gen, const CoreView& v) {
    Entry& e = entry(c);
    if (!claim(e.tag, gen, kCoreGenShift)) return;
    std::atomic_thread_fence(std::memory_order_release);
    relaxed_store(e.cx, v.cs.center.x);
    relaxed_store(e.cy, v.cs.center.y);
    relaxed_store(e.cz, v.cs.center.z);
    relaxed_store(e.r2, v.cs.radius2);
    relaxed_store(e.surf_lb, v.surf_lb);
    std::uint64_t done = (std::uint64_t{gen} << kCoreGenShift) | kReadyBit;
    if (v.cs.valid) done |= kCsValidBit;
    if (v.inside) done |= kInsideBit;
    e.tag.store(done, std::memory_order_release);
  }

  /// Seqlock read of the memoized closest_surface_point(circumcenter) for
  /// (c, gen). True on hit; `out` is nullopt when the oracle had no surface.
  bool load_closest(CellId c, std::uint32_t gen, std::optional<Vec3>& out,
                    int tid = 0) {
    Entry& e = entry(c);
    const std::uint64_t t1 = e.csp_tag.load(std::memory_order_acquire);
    if ((t1 >> kCspGenShift) != std::uint64_t{gen} || (t1 & kReadyBit) == 0) {
      count(tid).csp_misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const Vec3 p{relaxed_load(e.px), relaxed_load(e.py), relaxed_load(e.pz)};
    std::atomic_thread_fence(std::memory_order_acquire);
    if (e.csp_tag.load(std::memory_order_relaxed) != t1) {
      count(tid).csp_misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if ((t1 & kCspHasBit) != 0) {
      out = p;
    } else {
      out = std::nullopt;
    }
    count(tid).csp_hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void store_closest(CellId c, std::uint32_t gen,
                     const std::optional<Vec3>& p) {
    Entry& e = entry(c);
    if (!claim(e.csp_tag, gen, kCspGenShift)) return;
    std::atomic_thread_fence(std::memory_order_release);
    const Vec3 v = p.value_or(Vec3{});
    relaxed_store(e.px, v.x);
    relaxed_store(e.py, v.y);
    relaxed_store(e.pz, v.z);
    std::uint64_t done = (std::uint64_t{gen} << kCspGenShift) | kReadyBit;
    if (p.has_value()) done |= kCspHasBit;
    e.csp_tag.store(done, std::memory_order_release);
  }

  [[nodiscard]] CounterTotals totals() const {
    CounterTotals t;
    for (const Slot& s : counters_) {
      t.hits += s.hits.load(std::memory_order_relaxed);
      t.misses += s.misses.load(std::memory_order_relaxed);
      t.csp_hits += s.csp_hits.load(std::memory_order_relaxed);
      t.csp_misses += s.csp_misses.load(std::memory_order_relaxed);
    }
    return t;
  }

 private:
  // Both tag words reserve bit 0 as the ready flag. A claimed-but-unpublished
  // word has the generation in place and bit 0 clear — indistinguishable from
  // "absent" to readers, unclaimable to other writers.
  static constexpr std::uint64_t kReadyBit = 1;
  static constexpr std::uint64_t kCsValidBit = 2;
  static constexpr std::uint64_t kInsideBit = 4;
  static constexpr int kCoreGenShift = 3;
  static constexpr std::uint64_t kCspHasBit = 2;
  static constexpr int kCspGenShift = 2;

  static constexpr std::size_t kChunkBits = 14;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kCounterSlots = 64;

  struct Entry {
    std::atomic<std::uint64_t> tag{0};
    double cx = 0, cy = 0, cz = 0;
    double r2 = 0;
    double surf_lb = 0;
    std::atomic<std::uint64_t> csp_tag{0};
    double px = 0, py = 0, pz = 0;
  };

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> csp_hits{0};
    std::atomic<std::uint64_t> csp_misses{0};
  };

  static double relaxed_load(const double& d) {
    return std::atomic_ref(const_cast<double&>(d))
        .load(std::memory_order_relaxed);
  }
  static void relaxed_store(double& d, double v) {
    std::atomic_ref(d).store(v, std::memory_order_relaxed);
  }

  /// Takes the tag from an absent/ready state of a strictly older generation
  /// to the filling state `gen << shift` (ready bit clear). Monotonicity plus
  /// the ready-bit requirement make writers exclusive: nobody can claim over
  /// an in-flight fill, and stale generations can never displace fresh ones.
  static bool claim(std::atomic<std::uint64_t>& tag, std::uint32_t gen,
                    int shift) {
    std::uint64_t t = tag.load(std::memory_order_relaxed);
    if ((t & kReadyBit) == 0 && t != 0) return false;  // writer in flight
    if ((t >> shift) >= std::uint64_t{gen}) return false;  // same or newer
    return tag.compare_exchange_strong(t, std::uint64_t{gen} << shift,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed);
  }

  Entry& entry(CellId c) {
    const std::size_t ci = c >> kChunkBits;
    PI2M_CHECK(ci < chunks_.size(), "geom cache: cell id beyond capacity");
    Entry* chunk = chunks_[ci].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      Entry* fresh = new Entry[kChunkSize];
      if (chunks_[ci].compare_exchange_strong(chunk, fresh,
                                              std::memory_order_acq_rel)) {
        chunk = fresh;
      } else {
        delete[] fresh;  // another thread won the race; `chunk` was updated
      }
    }
    return chunk[c & (kChunkSize - 1)];
  }

  Slot& count(int tid) {
    return counters_[static_cast<std::size_t>(tid) & (kCounterSlots - 1)];
  }

  std::vector<std::atomic<Entry*>> chunks_;
  std::array<Slot, kCounterSlots> counters_{};
};

}  // namespace pi2m
