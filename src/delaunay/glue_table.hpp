// Epoch-stamped open-addressing hash tables for the Bowyer-Watson commit
// paths: cavity-boundary edge -> (new cell, face) gluing during insertion and
// face-triple -> (cell, face) pairing during ball re-triangulation.
//
// Design constraints (hot path, one table per OpScratch / LocalDelaunay):
//  * zero allocation per operation: begin() only reallocates when the cavity
//    outgrows every previous one seen by this scratch;
//  * O(1) clear: slots carry the epoch of the operation that wrote them, so
//    stale slots from earlier operations are simply invisible;
//  * no tombstones: a matched slot is "consumed" in place (faces and edges
//    pair up exactly twice in a valid complex), and the live-slot count
//    provides the "all matched" post-condition check.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace pi2m {

inline std::uint64_t glue_mix64(std::uint64_t x) {
  // splitmix64 finalizer: full-avalanche mixing for sequential ids.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::uint64_t glue_hash(std::uint64_t key) { return glue_mix64(key); }

template <typename T>
inline std::uint64_t glue_hash(const std::array<T, 3>& key) {
  std::uint64_t h = glue_mix64(static_cast<std::uint64_t>(key[0]));
  h = glue_mix64(h ^ static_cast<std::uint64_t>(key[1]));
  return glue_mix64(h ^ static_cast<std::uint64_t>(key[2]));
}

/// Packs an undirected edge (two 32-bit vertex ids) into one table key.
inline std::uint64_t edge_key(std::uint32_t u, std::uint32_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

template <typename Key, typename Value>
class GlueTable {
 public:
  struct Slot {
    Key key{};
    std::uint64_t epoch = 0;
    Value value{};
    bool live = false;  ///< false once matched (consumed)
  };

  /// Starts a new operation expecting up to `expected` insertions. Keeps the
  /// load factor at or below 1/2; reallocates (and implicitly clears) only
  /// when the table must grow.
  void begin(std::size_t expected) {
    std::size_t want = 16;
    while (want < 2 * expected + 1) want <<= 1;
    if (want > slots_.size()) {
      slots_.assign(want, Slot{});
      epoch_ = 0;
    }
    ++epoch_;
    live_ = 0;
  }

  /// Looks up `key`; when absent, inserts it with `value` and returns
  /// nullptr. When present and live, returns the slot (caller typically
  /// glues and then consume()s it). Re-inserting a consumed key is a
  /// protocol violation (a face/edge can only pair twice).
  Slot* find_or_insert(const Key& key, const Value& value) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = glue_hash(key) & mask;
    for (;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.key = key;
        s.epoch = epoch_;
        s.value = value;
        s.live = true;
        ++live_;
        return nullptr;
      }
      if (s.key == key) {
        PI2M_CHECK(s.live, "glue table key matched more than twice");
        return &s;
      }
    }
  }

  /// Finds the live slot for `key`, nullptr when absent or consumed.
  Slot* find(const Key& key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = glue_hash(key) & mask;
    for (;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) return nullptr;
      if (s.key == key) return s.live ? &s : nullptr;
    }
  }

  void consume(Slot* s) {
    s->live = false;
    --live_;
  }

  /// Number of inserted-but-unmatched slots in the current operation.
  [[nodiscard]] std::size_t live() const { return live_; }

 private:
  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 0;
  std::size_t live_ = 0;
};

}  // namespace pi2m
