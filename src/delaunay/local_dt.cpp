#include "delaunay/local_dt.hpp"

#include <algorithm>

#include "delaunay/mesh.hpp"  // kFaceOf
#include "predicates/predicates.hpp"
#include "predicates/predicates_simd.hpp"

namespace pi2m {
namespace {

constexpr int kMaxWalkSteps = 4096;

}  // namespace

void LocalDelaunay::init_bounding_tet(const Vec3& c, double half_diag) {
  // A regular tetrahedron with vertices at distance L from the center
  // contains the ball of radius L/3; L = 64*d comfortably encloses all
  // points with margin for circumcenters of skinny intermediate tets.
  const double l = 64.0 * std::max(half_diag, 1e-9);
  pts_.push_back(c + l * Vec3{1, 1, 1});
  pts_.push_back(c + l * Vec3{1, -1, -1});
  pts_.push_back(c + l * Vec3{-1, 1, -1});
  pts_.push_back(c + l * Vec3{-1, -1, 1});

  Tet t0;
  t0.v = {0, 1, 2, 3};
  if (orient3d(pts_[0], pts_[1], pts_[2], pts_[3]) < 0) std::swap(t0.v[2], t0.v[3]);
  t0.n = {-1, -1, -1, -1};
  t0.alive = true;
  tets_.push_back(t0);
}

LocalDelaunay::LocalDelaunay(const std::vector<Vec3>& pts) { rebuild(pts); }

void LocalDelaunay::rebuild(const std::vector<Vec3>& pts) {
  pts_.clear();
  tets_.clear();
  last_created_.clear();
  ok_ = false;
  if (pts.empty()) return;

  Aabb bb;
  for (const Vec3& p : pts) bb.expand(p);
  pts_.reserve(pts.size() + 4);
  init_bounding_tet(bb.center(), norm(bb.extent()));
  pts_.insert(pts_.end(), pts.begin(), pts.end());

  for (std::size_t i = 4; i < pts_.size(); ++i) {
    if (!insert(static_cast<int>(i))) return;  // ok_ stays false
  }
  ok_ = true;
}

LocalDelaunay::LocalDelaunay(const Aabb& bounds) {
  init_bounding_tet(bounds.center(), norm(bounds.extent()));
  ok_ = true;
}

int LocalDelaunay::add_point(const Vec3& p) {
  const int idx = static_cast<int>(pts_.size());
  pts_.push_back(p);
  if (!insert(idx)) {
    pts_.pop_back();
    return -1;
  }
  return idx;
}

int LocalDelaunay::locate(const Vec3& p) const {
  int cur = -1;
  for (int i = static_cast<int>(tets_.size()) - 1; i >= 0; --i) {
    if (tets_[static_cast<std::size_t>(i)].alive) {
      cur = i;
      break;
    }
  }
  int spin = 0;
  for (int step = 0; step < kMaxWalkSteps && cur >= 0; ++step) {
    const Tet& t = tets_[static_cast<std::size_t>(cur)];
    // All four face orientations in one predicate batch, then the crossed
    // face picked in spin-rotated order — the same face the early-exiting
    // scalar scan chose.
    Orient3dBatch batch;
    for (int f = 0; f < 4; ++f) {
      batch.set_lane(f, pts_[static_cast<std::size_t>(t.v[kFaceOf[f][0]])],
                     pts_[static_cast<std::size_t>(t.v[kFaceOf[f][1]])],
                     pts_[static_cast<std::size_t>(t.v[kFaceOf[f][2]])], p);
    }
    int signs[4];
    orient3d_batch(batch, 4, signs);
    bool moved = false;
    for (int k = 0; k < 4 && !moved; ++k) {
      const int f = (k + spin) & 3;
      if (signs[f] < 0) {
        cur = t.n[f];
        ++spin;
        moved = true;
      }
    }
    if (!moved) return cur;
  }
  return -1;
}

bool LocalDelaunay::insert(int pi) {
  last_created_.clear();
  const Vec3& p = pts_[static_cast<std::size_t>(pi)];
  const int start = locate(p);
  if (start < 0) return false;

  auto in_sphere = [&](int ti) {
    const Tet& t = tets_[static_cast<std::size_t>(ti)];
    return insphere(pts_[static_cast<std::size_t>(t.v[0])],
                    pts_[static_cast<std::size_t>(t.v[1])],
                    pts_[static_cast<std::size_t>(t.v[2])],
                    pts_[static_cast<std::size_t>(t.v[3])], p);
  };
  if (in_sphere(start) <= 0) return false;  // duplicate / degenerate point

  auto& cavity = cavity_;
  auto& stack = stack_;
  auto& bfaces = bfaces_;
  const std::uint64_t epoch = ++cavity_epoch_;
  cavity.assign(1, start);
  tets_[static_cast<std::size_t>(start)].mark = epoch;
  stack.assign(1, start);
  bfaces.clear();
  auto in_cavity = [&](int ti) {
    return tets_[static_cast<std::size_t>(ti)].mark == epoch;
  };
  // The frontier's candidate neighbours (distinct per popped tet — two
  // tetrahedra share at most one face) are classified in face order, their
  // insphere filters evaluated as one predicate batch, and the results
  // applied in face order again: the same cavity/boundary sequences as the
  // historical one-face-at-a-time loop, with a 4-wide filter pass.
  while (!stack.empty()) {
    const int ti = stack.back();
    stack.pop_back();
    const Tet t = tets_[static_cast<std::size_t>(ti)];  // copy: tets_ may grow
    int pending[4];
    int lane_of[4];
    InsphereBatch batch;
    int lanes = 0;
    for (int f = 0; f < 4; ++f) {
      const int nb = t.n[f];
      lane_of[f] = -1;
      pending[f] = nb;
      if (nb < 0 || in_cavity(nb)) continue;
      const Tet& nt = tets_[static_cast<std::size_t>(nb)];
      batch.set_lane(lanes, pts_[static_cast<std::size_t>(nt.v[0])],
                     pts_[static_cast<std::size_t>(nt.v[1])],
                     pts_[static_cast<std::size_t>(nt.v[2])],
                     pts_[static_cast<std::size_t>(nt.v[3])], p);
      lane_of[f] = lanes++;
    }
    int signs[4];
    if (lanes > 0) insphere_batch(batch, lanes, signs);
    for (int f = 0; f < 4; ++f) {
      const int nb = pending[f];
      const int a = t.v[kFaceOf[f][0]];
      const int b = t.v[kFaceOf[f][1]];
      const int c = t.v[kFaceOf[f][2]];
      if (nb < 0) {
        bfaces.push_back({a, b, c, -1});
        continue;
      }
      if (lane_of[f] < 0) continue;  // already in cavity
      if (signs[lane_of[f]] > 0) {
        cavity.push_back(nb);
        tets_[static_cast<std::size_t>(nb)].mark = epoch;
        stack.push_back(nb);
      } else {
        bfaces.push_back({a, b, c, nb});
      }
    }
  }

  for (const BFace& bf : bfaces) {
    if (orient3d(pts_[static_cast<std::size_t>(bf.a)],
                 pts_[static_cast<std::size_t>(bf.b)],
                 pts_[static_cast<std::size_t>(bf.c)], p) <= 0) {
      return false;  // degenerate against cavity boundary
    }
  }

  for (int ti : cavity) tets_[static_cast<std::size_t>(ti)].alive = false;

  // Hashed boundary-edge gluing: each cavity-boundary edge pairs exactly
  // twice, so every lookup is O(1) in the epoch-stamped table.
  edge_glue_.begin(bfaces.size() * 3 / 2 + 1);
  for (const BFace& bf : bfaces) {
    const int nt = static_cast<int>(tets_.size());
    Tet t;
    t.v = {bf.a, bf.b, bf.c, pi};
    t.n = {-1, -1, -1, bf.outside};
    t.alive = true;
    tets_.push_back(t);
    last_created_.push_back(nt);
    if (bf.outside >= 0) {
      Tet& ot = tets_[static_cast<std::size_t>(bf.outside)];
      for (int j = 0; j < 4; ++j) {
        const int oa = ot.v[kFaceOf[j][0]];
        const int ob = ot.v[kFaceOf[j][1]];
        const int oc = ot.v[kFaceOf[j][2]];
        const auto has = [&](int x) { return x == oa || x == ob || x == oc; };
        if (has(bf.a) && has(bf.b) && has(bf.c)) {
          ot.n[j] = nt;
          break;
        }
      }
    }
    const std::array<int, 3> base{bf.a, bf.b, bf.c};
    for (int k = 0; k < 3; ++k) {
      const std::uint64_t key =
          edge_key(static_cast<std::uint32_t>(base[(k + 1) % 3]),
                   static_cast<std::uint32_t>(base[(k + 2) % 3]));
      auto* slot = edge_glue_.find_or_insert(key, {nt, k});
      if (slot != nullptr) {
        tets_[static_cast<std::size_t>(nt)].n[k] = slot->value.tet;
        tets_[static_cast<std::size_t>(slot->value.tet)].n[slot->value.face] =
            nt;
        edge_glue_.consume(slot);
      }
    }
  }
  return true;
}

int LocalDelaunay::find_tet_with_face(int a, int b, int c) const {
  for (std::size_t ti = 0; ti < tets_.size(); ++ti) {
    const Tet& t = tets_[ti];
    if (!t.alive) continue;
    int other = -1;
    int found = 0;
    for (int k = 0; k < 4; ++k) {
      if (t.v[k] == a || t.v[k] == b || t.v[k] == c) {
        ++found;
      } else {
        other = t.v[k];
      }
    }
    if (found != 3 || other < 0) continue;
    if (orient3d(pts_[static_cast<std::size_t>(a)],
                 pts_[static_cast<std::size_t>(b)],
                 pts_[static_cast<std::size_t>(c)],
                 pts_[static_cast<std::size_t>(other)]) > 0) {
      return static_cast<int>(ti);
    }
  }
  return -1;
}

}  // namespace pi2m
