// Small sequential incremental Delaunay triangulation, used to re-triangulate
// the ball of a removed vertex (paper §4.2): "we compute a local Delaunay
// triangulation D_B of the vertices incident to p, such that the vertices
// inserted earlier in the shared triangulation are inserted into D_B first."
//
// Points are inserted in caller order inside a large bounding tetrahedron of
// four auxiliary vertices (indices 0..3); caller point i becomes index 4+i.
// The same exact predicates and the same on-sphere tie rule as the global
// mesh are used, so in non-degenerate configurations the restriction of D_B
// to the ball cavity matches the global Delaunay structure exactly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "delaunay/glue_table.hpp"
#include "geometry/vec3.hpp"

namespace pi2m {

class LocalDelaunay {
 public:
  struct Tet {
    std::array<int, 4> v;
    std::array<int, 4> n;  ///< -1 past the auxiliary hull
    bool alive = false;
    std::uint64_t mark = 0;  ///< cavity stamp of the insertion that last
                             ///< examined this tet (single-threaded, plain)
  };

  /// Builds the triangulation of `pts` (inserted in the given order).
  /// Check ok() before using the result.
  explicit LocalDelaunay(const std::vector<Vec3>& pts);

  /// Starts an *empty* triangulation whose auxiliary tetrahedron encloses
  /// `bounds`; points are then added with add_point. This incremental mode
  /// is the kernel of the reference sequential meshers (baselines/), which
  /// deliberately use this simple vector-based structure instead of the
  /// concurrent arena mesh.
  explicit LocalDelaunay(const Aabb& bounds);

  /// Inserts one point; returns its vertex index, or -1 when the insertion
  /// is degenerate (duplicate / cospherical tie at the located cell).
  /// In incremental mode the triangulation stays valid after a failure.
  int add_point(const Vec3& p);

  LocalDelaunay() = default;
  /// Re-initializes this instance with a new point set, reusing all
  /// internal storage — the removal hot path keeps one instance per thread
  /// instead of reallocating per ball (paper: removals are ~2% of ops but
  /// each one re-triangulates a ~25-vertex ball).
  void rebuild(const std::vector<Vec3>& pts);

  /// Indices of the tets created by the last successful add_point.
  [[nodiscard]] const std::vector<int>& last_created() const {
    return last_created_;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::vector<Tet>& tets() const { return tets_; }
  [[nodiscard]] const Vec3& point(int i) const {
    return pts_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] static bool is_aux(int vertex_index) {
    return vertex_index < 4;
  }

  /// Index of an alive tet whose face {a,b,c} (caller point indices, i.e.
  /// already offset by +4) has its fourth vertex on the positive side of
  /// the oriented face (a,b,c); -1 if none.
  [[nodiscard]] int find_tet_with_face(int a, int b, int c) const;

 private:
  struct BFace {
    int a, b, c, outside;
  };

  void init_bounding_tet(const Vec3& center, double half_diag);
  bool insert(int pi);
  [[nodiscard]] int locate(const Vec3& p) const;

  std::vector<Vec3> pts_;
  std::vector<Tet> tets_;
  std::vector<int> last_created_;
  // Reused per-insert scratch (hot path for removal re-triangulation).
  std::vector<int> cavity_, stack_;
  std::vector<BFace> bfaces_;
  struct GlueRef {
    int tet;
    int face;
  };
  GlueTable<std::uint64_t, GlueRef> edge_glue_;
  /// Monotonic per-instance stamp; a tet is in the current cavity iff its
  /// mark equals this. Survives rebuild() (fresh tets start at mark 0 and
  /// the stamp only grows), so no O(tets) clearing is ever needed.
  std::uint64_t cavity_epoch_ = 0;
  bool ok_ = false;
};

}  // namespace pi2m
