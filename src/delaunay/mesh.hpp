// Concurrent tetrahedral mesh storage for speculative Delaunay refinement.
//
// Design (paper §4):
//  * Vertices and cells live in chunked arenas that never move or free
//    memory while the mesh is alive, so concurrent readers never touch
//    freed storage.
//  * Every vertex carries an atomic owner word used as a try-lock; the
//    paper replaces pthread try-locks with GCC atomic built-ins — here we
//    use std::atomic compare-exchange, which compiles to the same
//    instructions.
//  * Cells carry a generation word: odd = alive, even = retired. A retired
//    cell slot may be recycled; stale references (PEL entries, walk steps)
//    detect recycling by comparing generations.
//
// Locking protocol invariants (relied on throughout insert/remove):
//  I1. Retiring a cell requires holding all 4 of its vertices.
//  I2. Writing a cell's neighbour slot n[i] requires holding the 3 vertices
//      of face i.
//  I3. Therefore: holding any vertex of a live cell keeps it alive, and
//      holding a face keeps the adjacency across that face stable.
//  Vertex positions are immutable after creation; vertex slots are never
//  recycled (removed vertices are only marked dead — removals are ~2% of
//  operations (paper §7), so the leaked slots are negligible).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "geometry/vec3.hpp"
#include "support/arena_pool.hpp"
#include "support/common.hpp"
#include "support/soa_store.hpp"

namespace pi2m {

enum class VertexKind : std::uint8_t {
  Box,            ///< virtual-box corner (never refined, never on ∂O)
  Isosurface,     ///< rule R1 sample point on ∂O
  SurfaceCenter,  ///< rule R3 Voronoi-edge/∂O intersection (also on ∂O)
  Circumcenter,   ///< rules R2/R4/R5 Steiner point (removable by R6)
  Lattice,        ///< protected BCC interface seed (hybrid interior fill)
};

/// True for vertex kinds that lie on the isosurface and participate in the
/// fidelity guarantees (Theorem 1).
constexpr bool on_surface(VertexKind k) {
  return k == VertexKind::Isosurface || k == VertexKind::SurfaceCenter;
}

struct Vertex {
  Vec3 pos;
  std::atomic<std::int32_t> owner{-1};   ///< locking thread id, -1 = free
  std::atomic<CellId> incident_hint{kNoCell};  ///< some cell touching this vertex
  std::uint32_t timestamp = 0;  ///< global creation order (removal re-insertion order)
  VertexKind kind = VertexKind::Box;
  /// Defaults to true so block-reserved arena slots that were never handed
  /// out by create_vertex read as dead in live-vertex scans.
  std::atomic<bool> dead{true};
};

struct Cell {
  /// Plain for lock-holding readers/writers; the lock-free locate walk and
  /// the commit paths that rewrite recycled slots access elements through
  /// std::atomic_ref (release store / acquire load) — see locate.cpp.
  std::array<VertexId, 4> v{kNoVertex, kNoVertex, kNoVertex, kNoVertex};
  /// n[i] is the cell across the face opposite v[i]; kNoCell on the hull of
  /// the virtual box.
  std::array<std::atomic<CellId>, 4> n{kNoCell, kNoCell, kNoCell, kNoCell};
  /// Odd = alive. Incremented on retire and again on reuse.
  std::atomic<std::uint32_t> gen{0};
  /// Cavity-membership stamp for the operation that last examined this cell
  /// (see OpScratch::begin_op). Epoch values are globally unique across
  /// threads and operations, so a stale or foreign stamp can never alias the
  /// reader's current epoch; relaxed atomics keep the unsynchronized probe
  /// race-free. Low bit: 0 = in-cavity, 1 = outside (rejected neighbour).
  std::atomic<std::uint64_t> mark{0};
};

/// Vertex triple of face i of a positively-oriented cell (v0,v1,v2,v3),
/// ordered so that orient3d(face, v[i]) > 0 (the opposite vertex sees the
/// face counterclockwise).
constexpr std::array<std::array<int, 3>, 4> kFaceOf{{
    {1, 3, 2}, {0, 2, 3}, {0, 3, 1}, {0, 1, 2}}};

/// Append-only chunked arena with stable addresses and lock-free growth.
template <typename T>
class ChunkedStore {
 public:
  static constexpr std::size_t kChunkBits = 14;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;

  /// `pooled` draws chunk storage from the process-wide ArenaPool and
  /// returns it there on destruction (warm re-use across jobs in one
  /// process — see DESIGN.md "Serving architecture"). Every acquired block
  /// is re-initialized element-by-element with placement-new, so a pooled
  /// store is observationally identical to a heap-backed one.
  explicit ChunkedStore(std::size_t max_elems, bool pooled = false)
      : chunks_((max_elems + kChunkSize - 1) / kChunkSize + 1),
        max_elems_(max_elems),
        pooled_(pooled) {
    for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
  }
  ~ChunkedStore() {
    for (auto& c : chunks_) {
      T* p = c.load(std::memory_order_relaxed);
      if (p == nullptr) continue;
      if (pooled_) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "pooled chunks skip element destruction");
        ArenaPool::instance().release(p, kChunkBytes);
      } else {
        delete[] p;
      }
    }
  }
  ChunkedStore(const ChunkedStore&) = delete;
  ChunkedStore& operator=(const ChunkedStore&) = delete;

  /// Allocates one default-constructed element; thread-safe.
  std::uint32_t allocate() {
    const std::uint32_t id = count_.fetch_add(1, std::memory_order_relaxed);
    PI2M_CHECK(id < max_elems_, "arena capacity exceeded (raise MeshingOptions limits)");
    ensure_chunk(id >> kChunkBits);
    return id;
  }

  /// Reserves up to `want` contiguous elements in one shot (per-thread bump
  /// blocks — see DESIGN.md "Scheduling & memory locality"). Returns {first
  /// id, granted count}; the grant is clamped to the remaining capacity (a
  /// CAS loop, so near-full arenas degrade to small grants instead of
  /// tripping the capacity check for slots nobody would use). granted >= 1.
  std::pair<std::uint32_t, std::uint32_t> allocate_block(std::uint32_t want) {
    std::uint32_t cur = count_.load(std::memory_order_relaxed);
    std::uint32_t grant;
    do {
      PI2M_CHECK(cur < max_elems_,
                 "arena capacity exceeded (raise MeshingOptions limits)");
      grant = static_cast<std::uint32_t>(
          std::min<std::size_t>(want, max_elems_ - cur));
    } while (!count_.compare_exchange_weak(cur, cur + grant,
                                           std::memory_order_relaxed));
    for (std::size_t ci = cur >> kChunkBits;
         ci <= (cur + grant - 1) >> kChunkBits; ++ci) {
      ensure_chunk(ci);
    }
    return {cur, grant};
  }

  T& operator[](std::uint32_t id) {
    return chunk(id >> kChunkBits)[id & (kChunkSize - 1)];
  }
  const T& operator[](std::uint32_t id) const {
    return chunk(id >> kChunkBits)[id & (kChunkSize - 1)];
  }

  [[nodiscard]] std::uint32_t size() const {
    return count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return max_elems_; }

 private:
  T* chunk(std::size_t ci) const {
    return chunks_[ci].load(std::memory_order_acquire);
  }
  void ensure_chunk(std::size_t ci) {
    if (chunks_[ci].load(std::memory_order_acquire) != nullptr) return;
    T* fresh;
    if (pooled_) {
      static_assert(alignof(T) <= ArenaPool::kAlignment,
                    "pool blocks under-aligned for T");
      void* raw = ArenaPool::instance().acquire(kChunkBytes);
      fresh = static_cast<T*>(raw);
      for (std::size_t i = 0; i < kChunkSize; ++i) new (fresh + i) T;
    } else {
      fresh = new T[kChunkSize];
    }
    T* expected = nullptr;
    if (!chunks_[ci].compare_exchange_strong(expected, fresh,
                                             std::memory_order_acq_rel)) {
      // Another thread won the race.
      if (pooled_) {
        ArenaPool::instance().release(fresh, kChunkBytes);
      } else {
        delete[] fresh;
      }
    }
  }

  static constexpr std::size_t kChunkBytes = kChunkSize * sizeof(T);

  mutable std::vector<std::atomic<T*>> chunks_;
  std::atomic<std::uint32_t> count_{0};
  std::size_t max_elems_;
  bool pooled_ = false;
};

/// Per-thread recycling pool for retired cell slots, plus a bump block of
/// fresh slots reserved from the arena in batches (allocate_block). Both
/// keep a thread's allocations contiguous and recycled by the thread that
/// touched them last — the memory-locality half of the scheduler overhaul.
struct CellFreeList {
  std::vector<CellId> slots;
  CellId block_next = 0;  ///< next unused slot of the reserved block
  CellId block_end = 0;   ///< one past the reserved block (0 = no block)
};

/// Per-thread bump block of reserved vertex slots (lives in OpScratch, one
/// per worker). Reserved-unused slots stay flagged dead (see Vertex::dead).
struct VertexBlock {
  VertexId next = 0;
  VertexId end = 0;  ///< one past the block; next == end => exhausted
};

class DelaunayMesh {
 public:
  /// Builds the virtual box enclosing `box`, triangulated into 6 tetrahedra
  /// (paper Fig. 1a) — the only sequential step of the algorithm.
  /// `arena_block` is the per-thread bump-block size used by allocate_cell /
  /// the block create_vertex overload; 1 (the default) reserves slots one at
  /// a time, which is what direct constructions (tests, tools) want — the
  /// refiner passes a larger block sized to its thread count.
  /// `pooled_arena` backs the vertex/cell arenas with ArenaPool blocks so
  /// repeated meshes in one process re-use warm storage (serving path).
  DelaunayMesh(const Aabb& box, std::size_t max_vertices,
               std::size_t max_cells, std::uint32_t arena_block = 1,
               bool pooled_arena = false);

  [[nodiscard]] const Aabb& box() const { return box_; }

  // ---- vertices ----
  Vertex& vertex(VertexId v) { return vertices_[v]; }
  [[nodiscard]] const Vertex& vertex(VertexId v) const { return vertices_[v]; }
  /// Position read from the SoA coordinate mirror: equal to vertex(v).pos
  /// for every published vertex, but served from cache lines that carry no
  /// lock traffic (see soa_store.hpp). Preferred on the geometric hot paths.
  [[nodiscard]] Vec3 position(VertexId v) const { return coords_.get(v); }
  [[nodiscard]] std::uint32_t vertex_count() const { return vertices_.size(); }
  [[nodiscard]] const std::array<VertexId, 8>& box_vertices() const {
    return box_vertices_;
  }

  /// Creates a vertex (timestamped with the global creation counter) that is
  /// born locked by `tid`.
  VertexId create_vertex(const Vec3& pos, VertexKind kind, int tid);
  /// Same, but drawing the slot from the caller's bump block (refilled from
  /// the arena in arena_block-sized reservations).
  VertexId create_vertex(const Vec3& pos, VertexKind kind, int tid,
                         VertexBlock& blk);

  /// Try-lock. Succeeds immediately when `tid` already owns the vertex.
  /// On failure stores the observed owner in `held_by`.
  bool try_lock_vertex(VertexId v, int tid, std::int32_t& held_by);
  void unlock_vertex(VertexId v, int tid);

  // ---- cells ----
  Cell& cell(CellId c) { return cells_[c]; }
  [[nodiscard]] const Cell& cell(CellId c) const { return cells_[c]; }
  [[nodiscard]] std::uint32_t cell_slot_count() const { return cells_.size(); }
  /// Capacity of the cell arena. Side arenas indexed by CellId (e.g. the
  /// generation-tagged geometry cache, delaunay/geom_cache.hpp) size
  /// themselves to this so every slot id is addressable.
  [[nodiscard]] std::size_t cell_capacity() const { return cells_.capacity(); }

  [[nodiscard]] bool cell_alive(CellId c) const {
    return (cells_[c].gen.load(std::memory_order_acquire) & 1u) != 0;
  }
  [[nodiscard]] std::uint32_t cell_gen(CellId c) const {
    return cells_[c].gen.load(std::memory_order_acquire);
  }

  /// Allocates a cell slot (recycled or fresh) and marks it alive.
  CellId allocate_cell(CellFreeList& fl);
  /// Retires an alive cell (caller holds all 4 vertices, invariant I1).
  void retire_cell(CellId c, CellFreeList& fl);

  /// Convenience for readers: the four vertex positions of a cell. Caller
  /// must guarantee the cell is stable (holds a vertex of it) or tolerate
  /// a torn read detected via generation re-check.
  [[nodiscard]] std::array<Vec3, 4> positions(CellId c) const;

  /// Number of alive cells (linear scan; used by tests/statistics only).
  [[nodiscard]] std::size_t count_alive_cells() const;

  /// Walks all alive cells, calling fn(CellId). Only valid when no thread
  /// is mutating the mesh.
  template <typename Fn>
  void for_each_alive_cell(Fn&& fn) const {
    const std::uint32_t n = cells_.size();
    for (CellId c = 0; c < n; ++c) {
      if (cell_alive(c)) fn(c);
    }
  }

  /// Face index of `c` whose three vertices are exactly {a,b,c} (any
  /// order); -1 when no such face exists.
  [[nodiscard]] int face_index_of(CellId c, VertexId fa, VertexId fb,
                                  VertexId fc) const;

  // ---- integrity checks (tests) ----
  /// Verifies adjacency symmetry, positive orientation, and (optionally)
  /// the Delaunay property for all alive cells. Returns an error string,
  /// empty on success. Quadratic-ish; call on small meshes only.
  [[nodiscard]] std::string check_integrity(bool check_delaunay) const;

  /// Sum of cell volumes (should equal the virtual box volume at all times).
  [[nodiscard]] double total_volume() const;

 private:
  void build_initial_box();

  Aabb box_;
  ChunkedStore<Vertex> vertices_;
  SoaCoordStore coords_;
  ChunkedStore<Cell> cells_;
  std::array<VertexId, 8> box_vertices_{};
  std::atomic<std::uint32_t> next_timestamp_{0};
  std::uint32_t arena_block_;
};

}  // namespace pi2m
