// Speculative Delaunay operations: point location, Bowyer-Watson insertion
// and vertex removal, with per-vertex try-locks and rollback (paper §4.2).
//
// Both operations are *all-or-nothing*: they acquire every vertex they touch
// up front, validate the full change, and only then mutate the mesh. A lock
// failure produces OpStatus::Conflict and leaves the mesh untouched — the
// rollback the paper describes ("the operation is stopped and the changes
// are discarded").
#pragma once

#include <cstdint>
#include <vector>

#include "delaunay/glue_table.hpp"
#include "delaunay/mesh.hpp"

namespace pi2m {

namespace detail {
/// Hands out a block of `count` epoch values disjoint from every other block
/// ever issued (single process-wide atomic, bumped once per ~64k operations
/// per scratch, so it is never contended on the per-operation path).
std::uint64_t acquire_epoch_block(std::uint64_t count);
}  // namespace detail

enum class OpStatus : std::uint8_t {
  Success,   ///< mesh mutated, new cells reported
  Conflict,  ///< a vertex was held by another thread; nothing changed
  Stale,     ///< transient inconsistency (concurrent restructuring); retry
  Failed,    ///< operation is permanently inapplicable (duplicate point,
             ///< degenerate configuration, point outside the box)
};

struct OpResult {
  OpStatus status = OpStatus::Failed;
  std::int32_t conflicting_thread = -1;  ///< valid when status == Conflict
  VertexId new_vertex = kNoVertex;       ///< valid for successful insertions
};

/// Reusable per-thread scratch buffers so the hot path never allocates.
/// Cavity membership is O(1) via epoch-stamped cell marks: begin_op() draws a
/// globally unique epoch, cells entering the cavity (or its rejected-outside
/// rind) are stamped with it, and membership is a single relaxed load —
/// replacing the former O(cavity) linear scans that made cavity growth
/// quadratic. Face/edge gluing during commit goes through epoch-stamped hash
/// tables (GlueTable), also O(1) per face.
///
/// A scratch is bound to ONE mesh for its lifetime: its `freelist` holds
/// retired cell slots of that mesh, and reusing the scratch against a
/// different mesh would hand out foreign slot ids.
struct OpScratch {
  std::vector<VertexId> locked;
  std::vector<CellId> cavity;
  std::vector<CellId> bfs;
  struct BFace {
    CellId inside;
    int face;
    CellId outside;
    int mirror;        ///< index of this face in `outside` (-1 on the hull);
                       ///< recorded during the BFS while `outside` is pinned,
                       ///< so commit skips the 12-compare face_index_of scan
    VertexId a, b, c;  ///< ordered so orient3d(a,b,c, interior point) > 0
  };
  std::vector<BFace> bfaces;
  std::vector<CellId> created;  ///< output of the last successful operation
  struct GlueTarget {
    CellId cell;
    int face;
  };
  /// Open cavity-boundary edges -> (new cell, face) during insertion re-fill.
  GlueTable<std::uint64_t, GlueTarget> edge_glue;
  /// Open faces -> (cell, face) during ball re-triangulation (removal).
  GlueTable<std::array<VertexId, 3>, GlueTarget> face_glue;
  /// Sorted boundary triple -> bface index during ball extraction (removal).
  GlueTable<std::array<int, 3>, int> triple_index;
  CellFreeList freelist;
  /// Bump block of reserved vertex slots (mesh.create_vertex overload), so
  /// vertices created by this thread are contiguous and first-touched here.
  VertexBlock vblock;

  /// Epoch of the operation in flight; see Cell::mark.
  std::uint64_t epoch = 0;

  /// Starts a new operation: clears the per-op vectors and draws a fresh
  /// globally unique epoch for the cavity marks.
  void begin_op() {
    locked.clear();
    cavity.clear();
    bfs.clear();
    bfaces.clear();
    created.clear();
    if (epoch_next_ == epoch_end_) {
      constexpr std::uint64_t kBlock = std::uint64_t{1} << 16;
      epoch_next_ = detail::acquire_epoch_block(kBlock);
      epoch_end_ = epoch_next_ + kBlock;
    }
    epoch = epoch_next_++;
  }

  /// Mark values for the current operation (Cell::mark low-bit scheme).
  [[nodiscard]] std::uint64_t cavity_mark() const { return epoch << 1; }
  [[nodiscard]] std::uint64_t outside_mark() const { return (epoch << 1) | 1; }

 private:
  std::uint64_t epoch_next_ = 0;
  std::uint64_t epoch_end_ = 0;
};

struct LocateResult {
  CellId cell = kNoCell;
  bool ok = false;
};

/// Best-effort lock-free walk from `hint` to an alive cell containing `p`.
/// The result must be re-validated under locks by the caller; `ok == false`
/// means the walk was disrupted (dead hint, concurrent restructuring, or
/// step limit).
LocateResult locate_point(const DelaunayMesh& mesh, const Vec3& p, CellId hint,
                          int max_steps = 8192);

/// Batched point location: walks up to kMaxLocateBatch independent points
/// in lockstep, prefetching every active walk's current cell before
/// stepping any of them so the cache misses of independent walks overlap
/// (software pipelining). Each walk produces exactly the result the scalar
/// locate_point would: the batching is across queries, per-query semantics
/// are unchanged, and the batch degrades gracefully — finished or disrupted
/// walks drop out while the rest continue. Returns the number of walks that
/// ended with ok == true.
inline constexpr int kMaxLocateBatch = 4;
int locate_points(const DelaunayMesh& mesh, const Vec3* pts, int n,
                  const CellId* hints, LocateResult* out, int max_steps = 8192);

/// Scans cell slots starting at `near_hint` (wrapping) for any alive cell;
/// used to restart a walk whose hint died. kNoCell when the mesh has no
/// alive cells (never happens for a constructed mesh).
CellId any_alive_cell(const DelaunayMesh& mesh, CellId near_hint);

/// Inserts `p` into the triangulation (Bowyer-Watson over the conflict
/// cavity). On success `scratch.created` holds the new cells.
OpResult insert_point(DelaunayMesh& mesh, const Vec3& p, VertexKind kind,
                      CellId hint, int tid, OpScratch& scratch);

/// Fast path for refinement: inserts `p` given a cell known to conflict
/// with it (e.g. the bad cell whose circumcenter p is — a tetrahedron's
/// circumcenter always lies inside its own circumsphere). Skips the point-
/// location walk entirely: the cavity BFS is seeded at `conflict` and the
/// star-shape validation of the cavity boundary guarantees correctness.
/// `conflict_gen` is the caller's generation snapshot of the cell.
OpResult insert_point_in_conflict(DelaunayMesh& mesh, const Vec3& p,
                                  VertexKind kind, CellId conflict,
                                  std::uint32_t conflict_gen, int tid,
                                  OpScratch& scratch);

/// Removes vertex `p` by re-triangulating its ball with a local Delaunay
/// triangulation of the link, inserting older (smaller-timestamp) vertices
/// first (paper §4.2). On success `scratch.created` holds the new cells.
OpResult remove_vertex(DelaunayMesh& mesh, VertexId p, int tid,
                       OpScratch& scratch);

}  // namespace pi2m
