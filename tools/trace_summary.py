#!/usr/bin/env python3
"""Summarize a pi2m Chrome trace (produced by `pi2m --trace FILE`).

Reports, without opening a browser:
  * per-phase wall time (the `phase.*` spans),
  * operation counts and mean durations (`op.*` / `bw.*` spans),
  * rollback rate (rollback instants vs. attempted operations),
  * steal locality (intra-socket / intra-blade / inter-blade split),
  * contention-manager wait time, and the dropped-event counter.

With `--manifest MANIFEST.json` (the `--json-report` output of the same
run) it additionally reports the SIMD predicate-filter economics: batched
lanes, the fraction the vector stage-A filter certified directly (hits)
versus lanes that fell back to the scalar adaptive/exact ladder, per
predicate kind — alongside the per-phase wall times so the rates can be
read against the phases that issue the batches (refine dominates; the EDT
passes use the fixed-lane arithmetic that never falls back) — and the
element-throughput economics of the hybrid interior fill: elements/s,
us/element, the interior (BCC template) vs shell (Delaunay) tet split,
and the lattice fill/seed counters.

With two trace files, prints the two summaries side by side (e.g. to
compare contention managers or thread counts on the same input).

Usage: tools/trace_summary.py TRACE.json [OTHER_TRACE.json]
                              [--manifest MANIFEST.json]
"""

import argparse
import json
import sys
from collections import defaultdict


def load_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        sys.exit(f"{path}: not a trace-event file (no 'traceEvents' key)")
    return doc


def summarize(doc):
    """Reduce one trace document to a flat {section: {name: value}} dict."""
    spans = defaultdict(lambda: [0, 0.0])  # name -> [count, total_us]
    instants = defaultdict(int)            # name -> count
    parks = defaultdict(lambda: [0, 0.0])  # tid -> [count, total_us]
    threads = set()
    tid_names = {}
    for ev in doc["traceEvents"]:
        ph = ev.get("ph")
        if ph == "X":
            agg = spans[ev["name"]]
            agg[0] += 1
            agg[1] += ev.get("dur", 0.0)
            if ev["name"] == "idle.park":
                agg = parks[ev.get("tid", 0)]
                agg[0] += 1
                agg[1] += ev.get("dur", 0.0)
        elif ph == "i":
            instants[ev["name"]] += 1
        elif ph == "M" and ev.get("name") == "thread_name":
            threads.add(ev["args"]["name"])
            tid_names[ev.get("tid", 0)] = ev["args"]["name"]

    s = {}
    s["lanes"] = {"threads": ", ".join(sorted(threads)) or "(unnamed)"}

    phases = {
        name[len("phase."):]: total / 1e6
        for name, (_, total) in spans.items()
        if name.startswith("phase.")
    }
    for name, (_, total) in spans.items():
        if name.startswith("edt.pass_"):
            phases.setdefault("edt passes", 0.0)
            phases["edt passes"] += total / 1e6
    s["phase wall time (s)"] = {k: f"{v:.3f}" for k, v in phases.items()}

    ops = {}
    for name, (count, total) in sorted(spans.items()):
        if name.startswith(("op.", "bw.", "cm.", "idle")):
            mean_us = total / count if count else 0.0
            ops[name] = f"{count:>8} x {mean_us:9.1f} us"
    s["spans (count x mean)"] = ops

    attempts = spans["op.insert"][0] + spans["op.remove"][0]
    rollbacks = instants.get("rollback", 0)
    aborts = instants.get("bw.abort", 0)
    rates = {"operation attempts": str(attempts)}
    if attempts:
        rates["rollbacks"] = f"{rollbacks} ({100.0 * rollbacks / attempts:.2f}%)"
        rates["cavity aborts"] = f"{aborts} ({100.0 * aborts / attempts:.2f}%)"
    s["rollback"] = rates

    steal_names = ("steal.intra_socket", "steal.intra_blade",
                   "steal.inter_blade")
    total_steals = sum(instants.get(n, 0) for n in steal_names)
    steals = {"total": str(total_steals), "begs": str(instants.get("lb.beg", 0))}
    if total_steals:
        for n in steal_names:
            c = instants.get(n, 0)
            steals[n[len("steal."):]] = (
                f"{c} ({100.0 * c / total_steals:.1f}%)")
    s["steals"] = steals

    # Adaptive idle policy: timed parks per worker thread, plus the wakeup
    # traffic (lb.unpark = giver-side unparks after a batch publication).
    parking = {"unparks sent": str(instants.get("lb.unpark", 0))}
    for tid in sorted(parks):
        count, total = parks[tid]
        mean_us = total / count if count else 0.0
        lane = tid_names.get(tid, f"tid {tid}")
        parking[lane] = (
            f"{count:>6} parks x {mean_us:8.1f} us  ({total / 1e6:.3f} s)")
    s["parking (per thread)"] = parking

    other = doc.get("otherData", {})
    s["trace"] = {
        "events": str(len(doc["traceEvents"])),
        "dropped": str(other.get("dropped_events", "?")),
        "schema": str(other.get("schema", "?")),
    }
    return s


def simd_filter_section(manifest_path):
    """SIMD filter hit/fallback rates from a pi2m run manifest."""
    with open(manifest_path) as f:
        man = json.load(f)
    metrics = man.get("metrics", {})
    rows = {}

    def rate_row(kind):
        lanes = metrics.get(f"predicates.simd.{kind}_lanes", 0)
        fallback = metrics.get(f"predicates.simd.{kind}_fallback", 0)
        batches = metrics.get(f"predicates.simd.{kind}_batches", 0)
        if lanes:
            hit = 100.0 * (lanes - fallback) / lanes
            rows[kind] = (f"{int(lanes):>10} lanes in {int(batches)} batches, "
                          f"{hit:.2f}% filter hits, "
                          f"{100.0 - hit:.2f}% scalar fallback")
        else:
            rows[kind] = "no batched calls"

    rate_row("orient3d")
    rate_row("insphere")
    if "predicates.simd.fallback_rate" in metrics:
        rows["overall fallback"] = (
            f"{100.0 * metrics['predicates.simd.fallback_rate']:.2f}%")
    # Phase wall times from the manifest, so the rates above can be read
    # against the phases that issue the batches.
    for name, sec in sorted(man.get("phases", {}).items()):
        rows[f"phase {name}"] = f"{sec:.3f} s"
    return rows


def throughput_section(manifest_path):
    """Element throughput + hybrid interior-fill economics from a manifest."""
    with open(manifest_path) as f:
        man = json.load(f)
    metrics = man.get("metrics", {})
    rows = {}
    total = int(metrics.get("mesh.tets", 0))
    if "mesh.elements_per_second" in metrics:
        rows["elements/s"] = f"{metrics['mesh.elements_per_second']:,.0f}"
        rows["us/element"] = f"{metrics.get('mesh.us_per_element', 0.0):.2f}"
    if "mesh.interior_tets" in metrics and total:
        interior = int(metrics["mesh.interior_tets"])
        shell = int(metrics.get("mesh.shell_tets", total - interior))
        rows["interior tets (BCC)"] = (
            f"{interior:>10} ({100.0 * interior / total:.1f}%)")
        rows["shell tets (Delaunay)"] = (
            f"{shell:>10} ({100.0 * shell / total:.1f}%)")
    filled = int(metrics.get("lattice.cells_filled", 0))
    if filled:
        rows["lattice cubes"] = str(filled)
        rows["lattice interface vertices"] = (
            str(int(metrics.get("lattice.interface_vertices", 0))))
        rows["lattice fill"] = f"{metrics.get('lattice.fill_sec', 0.0):.3f} s"
        rows["lattice seed"] = f"{metrics.get('lattice.seed_sec', 0.0):.3f} s"
    elif "interior" in man.get("config", {}):
        rows["interior mode"] = (
            f"{man['config']['interior']} (no lattice band engaged)")
    return rows


def print_single(s):
    for section, rows in s.items():
        if not rows:
            continue
        print(f"{section}:")
        width = max(len(k) for k in rows)
        for k, v in rows.items():
            print(f"  {k:<{width}}  {v}")
        print()


def print_pair(a, b, name_a, name_b):
    for section in dict.fromkeys(list(a) + list(b)):
        rows_a, rows_b = a.get(section, {}), b.get(section, {})
        keys = list(dict.fromkeys(list(rows_a) + list(rows_b)))
        if not keys:
            continue
        kw = max(len(k) for k in keys)
        vw = max([len(str(rows_a.get(k, "-"))) for k in keys] + [len(name_a)])
        print(f"{section}:")
        print(f"  {'':<{kw}}  {name_a:<{vw}}  {name_b}")
        for k in keys:
            print(f"  {k:<{kw}}  {str(rows_a.get(k, '-')):<{vw}}  "
                  f"{rows_b.get(k, '-')}")
        print()


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", help="Chrome trace JSON from pi2m --trace")
    ap.add_argument("other", nargs="?",
                    help="second trace: print both summaries side by side")
    ap.add_argument("--manifest",
                    help="pi2m run manifest (--json-report) of the same run: "
                         "adds SIMD filter hit/fallback rates per phase")
    args = ap.parse_args()

    first = summarize(load_trace(args.trace))
    if args.manifest:
        first["simd predicate filter"] = simd_filter_section(args.manifest)
        first["element throughput"] = throughput_section(args.manifest)
    if args.other is None:
        print_single(first)
    else:
        second = summarize(load_trace(args.other))
        print_pair(first, second, args.trace, args.other)


if __name__ == "__main__":
    main()
