#!/usr/bin/env bash
# Build and run the `sanitize`-labelled tests under ThreadSanitizer and/or
# AddressSanitizer+UBSan, each in its own build tree (sanitized objects must
# never mix with plain ones).
#
# Usage: tools/run_sanitizers.sh [thread|address|all]   (default: all)
set -euo pipefail

cd "$(dirname "$0")/.."
which="${1:-all}"

run_one() {
  local kind="$1"
  local dir="build-${kind%%,*}san"
  case "$kind" in
    thread)  dir=build-tsan ;;
    address) dir=build-asan ;;
    *) echo "unknown sanitizer '$kind'" >&2; exit 2 ;;
  esac
  echo "=== ${kind} sanitizer -> ${dir} ==="
  cmake -B "$dir" -S . -DPI2M_SANITIZE="$kind" >/dev/null
  cmake --build "$dir" -j "$(nproc)" --target \
    delaunay_test runtime_test torture_test property_test \
    staged_predicates_test predicates_simd_test telemetry_test check_test \
    classify_cache_test serve_test lattice_test pi2m_fuzz
  # halt_on_error: fail the test run on the first report instead of racing on.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=0" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "$dir" -L sanitize --output-on-failure
  # Fixed-seed fuzz smoke: 27 seeds cover every scenario family at 1/2/4
  # threads, with record -> sequential replay -> byte-compare on each case.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=0" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    "$dir/apps/pi2m_fuzz" --corpus 27
}

case "$which" in
  thread|address) run_one "$which" ;;
  all) run_one thread; run_one address ;;
  *) echo "usage: $0 [thread|address|all]" >&2; exit 2 ;;
esac
echo "sanitizer runs clean"
