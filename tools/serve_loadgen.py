#!/usr/bin/env python3
"""Load generator for the pi2m_serve daemon.

Speaks the newline-delimited JSON protocol over the daemon's AF_UNIX
socket: submits a batch of phantom meshing jobs from several concurrent
client threads, polls them to completion, and prints a latency/throughput
summary (plus the daemon's serve.* metrics). Exits non-zero if any job
fails or the numbers are inconsistent, so CI can use it as a smoke test.

Usage:
  tools/serve_loadgen.py --socket /tmp/pi2m.sock \
      --jobs 12 --clients 4 --phantom ball --size 48 [--delta 1.5]
      [--priority-mix] [--json OUT.json]
"""

import argparse
import json
import socket
import statistics
import sys
import threading
import time


def request(sock_path, payload, timeout=300.0):
    """One request/response round-trip; payload is a dict."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(timeout)
        s.connect(sock_path)
        s.sendall((json.dumps(payload) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.decode())


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--socket", required=True)
    ap.add_argument("--jobs", type=int, default=12)
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--phantom", default="ball")
    ap.add_argument("--size", type=int, default=48)
    ap.add_argument("--delta", type=float, default=0.0,
                    help="refinement delta (daemon default when omitted)")
    ap.add_argument("--priority-mix", action="store_true",
                    help="rotate submissions over high/normal/low")
    ap.add_argument("--poll-sec", type=float, default=0.05)
    ap.add_argument("--json", default="",
                    help="write the summary as JSON to this path")
    args = ap.parse_args()

    ping = request(args.socket, {"op": "ping"})
    if not ping.get("ok"):
        print(f"loadgen: daemon not responding: {ping}", file=sys.stderr)
        return 1

    job = {"phantom": args.phantom, "size": args.size}
    if args.delta > 0:
        job["delta"] = args.delta
    priorities = ["high", "normal", "low"] if args.priority_mix else ["normal"]

    lock = threading.Lock()
    accepted = []   # (id, submit_time)
    rejected = []

    def submit_worker(worker, count):
        for i in range(count):
            req = {"op": "submit", "job": job,
                   "priority": priorities[(worker + i) % len(priorities)]}
            t0 = time.monotonic()
            resp = request(args.socket, req)
            with lock:
                if resp.get("ok"):
                    accepted.append((resp["id"], t0))
                else:
                    rejected.append(resp.get("code", "?"))

    per_client = [args.jobs // args.clients] * args.clients
    for i in range(args.jobs % args.clients):
        per_client[i] += 1
    wall0 = time.monotonic()
    threads = [threading.Thread(target=submit_worker, args=(w, n))
               for w, n in enumerate(per_client)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # Poll every accepted job to a terminal state.
    latencies, states = [], {}
    pending = dict(accepted)
    while pending:
        for jid in list(pending):
            st = request(args.socket, {"op": "status", "id": jid})
            state = st.get("state")
            if state in ("done", "failed", "cancelled"):
                latencies.append(time.monotonic() - pending.pop(jid))
                states[jid] = state
        if pending:
            time.sleep(args.poll_sec)
    wall = time.monotonic() - wall0

    stats = request(args.socket, {"op": "stats"}).get("metrics", {})
    done = sum(1 for s in states.values() if s == "done")
    failed = len(states) - done
    summary = {
        "jobs_submitted": args.jobs,
        "jobs_accepted": len(accepted),
        "jobs_rejected": len(rejected),
        "jobs_done": done,
        "jobs_failed_or_cancelled": failed,
        "wall_sec": round(wall, 4),
        "jobs_per_sec": round(done / wall, 3) if wall > 0 else 0.0,
        "latency_sec": {
            "mean": round(statistics.mean(latencies), 4) if latencies else 0,
            "p50": round(statistics.median(latencies), 4) if latencies else 0,
            "max": round(max(latencies), 4) if latencies else 0,
        },
        "serve_metrics": {k: v for k, v in sorted(stats.items())
                          if k.startswith(("serve.jobs", "serve.edt_cache",
                                           "serve.latency.mesh.p"))},
    }
    print(json.dumps(summary, indent=2))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(summary, f, indent=2)

    if failed or not latencies:
        print("loadgen: some jobs did not complete", file=sys.stderr)
        return 1
    # Rejections are only acceptable as explicit overload backpressure.
    if any(code != "REJECTED_OVERLOAD" for code in rejected):
        print(f"loadgen: unexpected rejections: {rejected}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
