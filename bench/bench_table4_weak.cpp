// Reproduces paper Table 4: weak scaling on two inputs (abdominal and knee
// phantoms standing in for the IRCAD/SPL atlases). The problem size is
// controlled through delta (paper §6.3: decreasing delta by x increases the
// mesh size by ~x^3), keeping elements-per-thread approximately constant.
// Rows per thread count: #elements, time, elements/second, speedup
// (= El(n)*T(1) / (T(n)*El(1))), efficiency, overhead secs per thread.
//
//   ./bench_table4_weak [grid_size=48] [delta1=1.6] [max_threads=8]
#include "bench_common.hpp"

using namespace pi2m;

namespace {

void weak_scaling_case(const char* name, const LabeledImage3D& img,
                       double delta_1, int max_threads) {
  std::printf("\n(Table 4 reproduction) input: %s\n", name);
  io::TextTable t;
  std::vector<std::string> h{"#Threads"}, e{"#Elements"}, w{"Time (secs)"},
      r{"Elements per second"}, s{"Speedup"}, f{"Efficiency"},
      o{"Overhead secs per thread"};

  double t1 = 0.0;
  std::size_t el1 = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    const double delta = bench::weak_scaling_delta(delta_1, threads);
    std::printf("  threads=%d delta=%.3f...\n", threads, delta);
    bench::RunConfig cfg;
    cfg.delta = delta;
    cfg.threads = threads;
    const RefineOutcome out = bench::run_pi2m(img, cfg);
    if (threads == 1) {
      t1 = out.wall_sec;
      el1 = out.mesh_cells;
    }
    const double speedup =
        (static_cast<double>(out.mesh_cells) * t1) /
        (out.wall_sec * static_cast<double>(el1));
    h.push_back(std::to_string(threads));
    e.push_back(io::fmt_sci(static_cast<double>(out.mesh_cells), 2));
    w.push_back(io::fmt_double(out.wall_sec, 2));
    r.push_back(io::fmt_sci(out.mesh_cells / out.wall_sec, 2));
    s.push_back(io::fmt_double(speedup, 2));
    f.push_back(io::fmt_double(speedup / threads, 2));
    o.push_back(io::fmt_double(out.totals.total_overhead_sec() / threads, 2));
  }
  t.add_row(h);
  t.add_row(e);
  t.add_row(w);
  t.add_row(r);
  t.add_row(s);
  t.add_row(f);
  t.add_row(o);
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const double delta_1 = argc > 2 ? std::atof(argv[2]) : 1.6;
  const int max_threads = argc > 3 ? std::atoi(argv[3]) : 8;

  std::printf("== Table 4: weak scaling on two inputs ==\n");
  bench::print_host_note();

  const LabeledImage3D abdominal = phantom::abdominal(n, n, n);
  weak_scaling_case("abdominal phantom (Table 4a)", abdominal, delta_1,
                    max_threads);
  const LabeledImage3D knee = phantom::knee(n, n, n);
  weak_scaling_case("knee phantom (Table 4b)", knee, delta_1, max_threads);
  return 0;
}
