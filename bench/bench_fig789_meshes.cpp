// Reproduces paper Figures 7-9: the rendered output meshes of PI2M, the
// CGAL-class reference, and the TetGen-class PLC mesher on the knee and
// head-neck inputs. A text bench cannot render, so this binary produces
// the render-ready artifacts (VTK with per-tissue labels + STL surfaces)
// and prints the per-tissue composition table each figure visualizes —
// including the paper's Figure-9 observation that the PLC/TetGen path
// loses the tissue identities (it only receives the outer PLC and seeds;
// here: it labels by lookup, so composition matches, but it recovers no
// internal interfaces of its own).
//
//   ./bench_fig789_meshes [grid_size=64] [delta=1.0] [outdir=.]
#include <map>
#include <string>

#include "baselines/plc_mesher.hpp"
#include "baselines/seq_mesher.hpp"
#include "bench_common.hpp"
#include "io/writers.hpp"

using namespace pi2m;

namespace {

void composition(const char* tool, const TetMesh& mesh) {
  std::map<int, std::size_t> per_label;
  for (const Label l : mesh.tet_labels) ++per_label[l];
  std::printf("  %-22s %8zu tets, %6zu interface tris, tissues:", tool,
              mesh.num_tets(), mesh.boundary_tris.size());
  for (const auto& [l, cnt] : per_label) {
    std::printf(" %d:%zu", l, cnt);
  }
  std::printf("\n");
}

void run_case(const char* name, const LabeledImage3D& img, double delta,
              const std::string& outdir) {
  std::printf("(Figures 7-9 artifacts) input: %s\n", name);

  RefinerOptions opt;
  opt.threads = 1;
  opt.rules.delta = delta;
  Refiner refiner(img, opt);
  if (!refiner.refine().completed) {
    std::fprintf(stderr, "  PI2M failed\n");
    return;
  }
  const TetMesh pi2m_mesh = extract_mesh(refiner.mesh(), refiner.oracle(), 1);
  composition("PI2M (Fig 7)", pi2m_mesh);

  baselines::SeqMesherOptions sopt;
  sopt.delta = delta;
  const auto sres = baselines::mesh_image_reference(img, sopt);
  composition("SeqRef (Fig 8)", sres.mesh);

  baselines::PlcMesherOptions popt;
  popt.protect_radius = 0.9 * delta;
  const auto pres =
      baselines::mesh_volume_from_surface(pi2m_mesh, refiner.oracle(), popt);
  composition("PLC (Fig 9)", pres.mesh);

  const std::string base = outdir + "/" + name;
  io::write_vtk(pi2m_mesh, base + "_pi2m.vtk");
  io::write_stl_surface(pi2m_mesh, base + "_pi2m.stl");
  io::write_vtk(sres.mesh, base + "_seqref.vtk");
  io::write_vtk(pres.mesh, base + "_plc.vtk");
  std::printf("  wrote %s_{pi2m,seqref,plc}.vtk and %s_pi2m.stl\n\n",
              base.c_str(), base.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const double delta = argc > 2 ? std::atof(argv[2]) : 1.0;
  const std::string outdir = argc > 3 ? argv[3] : ".";

  std::printf("== Figures 7-9: output meshes of the three tools ==\n");
  std::printf("(render the .vtk files colored by the 'label' cell scalar)\n\n");
  run_case("knee", phantom::knee(n, n, n), delta, outdir);
  run_case("head_neck", phantom::head_neck(n, n, n), delta, outdir);
  return 0;
}
