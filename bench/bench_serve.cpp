// bench_serve — serving-path throughput and latency.
//
//   ./bench_serve [--manifest PATH] [grid_size=96] [delta=4.0] [jobs=12]
//
// Drives an in-process MeshService (the same engine behind pi2m_serve)
// with `jobs` identical phantom requests at 1, 4 and 8 concurrent
// in-flight executors, once against a cold EDT cache (zero byte budget:
// every job recomputes the feature transform) and once warm (the cache
// is pre-seeded, every job hits). Reports jobs/sec and the mesh-latency
// p50/p95/p99 per configuration; with --manifest the whole table is also
// written as one JSON document (the BENCH_serve.json artifact).
//
// On a single-hardware-thread container the in-flight levels timeshare
// one core, so jobs/sec does not scale with executors — the cold-vs-warm
// delta (EDT work skipped entirely) is the signal to read.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"
#include "telemetry/json_writer.hpp"

namespace {

using namespace pi2m;
using namespace pi2m::serve;

struct RunResult {
  int inflight = 0;
  bool warm = false;
  int jobs = 0;
  double wall_sec = 0.0;
  double jobs_per_sec = 0.0;
  double mean_sec = 0.0;  ///< exact (histogram sum/count), not bucketed
  double p50_sec = 0.0, p90_sec = 0.0, p95_sec = 0.0, p99_sec = 0.0;
  double queue_wait_p50_sec = 0.0;
  std::uint64_t cache_hits = 0, cache_misses = 0;
};

JobSpec make_spec(int size, double delta) {
  JobSpec spec;
  spec.phantom = "ball";
  spec.phantom_size = size;
  spec.mesh.delta = delta;
  spec.mesh.threads = 1;
  return spec;
}

RunResult run_level(int inflight, bool warm, int jobs, int size,
                    double delta) {
  ServiceConfig cfg;
  cfg.executors = inflight;
  cfg.queue_capacity = static_cast<std::size_t>(jobs) + 8;
  cfg.default_threads = 1;
  // Cold: a zero byte budget evicts every entry on insert, so each job
  // recomputes the EDT (single-flight coalescing still applies while a
  // compute is in progress, as it would in a real cold burst).
  cfg.edt_cache_bytes = warm ? std::size_t{512} << 20 : 0;

  MeshService svc(cfg);
  if (warm) {
    // Seed the cache outside the timed window.
    const auto seed = svc.submit(make_spec(size, delta), Priority::Normal);
    if (seed.accepted) svc.wait(seed.id);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    const auto res = svc.submit(make_spec(size, delta), Priority::Normal);
    if (!res.accepted) {
      std::fprintf(stderr, "bench_serve: submission rejected (%s)\n",
                   res.reject_code != nullptr ? res.reject_code : "?");
      std::exit(1);
    }
    ids.push_back(res.id);
  }
  for (const auto id : ids) {
    const auto rec = svc.wait(id);
    if (rec == nullptr || rec->current_state() != JobState::Done) {
      std::fprintf(stderr, "bench_serve: job %llu did not complete\n",
                   static_cast<unsigned long long>(id));
      std::exit(1);
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const telemetry::MetricsRegistry reg = svc.metrics_snapshot();
  RunResult r;
  r.inflight = inflight;
  r.warm = warm;
  r.jobs = jobs;
  r.wall_sec = wall;
  r.jobs_per_sec = static_cast<double>(jobs) / wall;
  const std::uint64_t n = reg.u64("serve.latency.mesh.count");
  r.mean_sec =
      n > 0 ? reg.f64("serve.latency.mesh.sum_sec") / static_cast<double>(n)
            : 0.0;
  r.p50_sec = reg.f64("serve.latency.mesh.p50_sec");
  r.p90_sec = reg.f64("serve.latency.mesh.p90_sec");
  r.p95_sec = reg.f64("serve.latency.mesh.p95_sec");
  r.p99_sec = reg.f64("serve.latency.mesh.p99_sec");
  r.queue_wait_p50_sec = reg.f64("serve.latency.queue_wait.p50_sec");
  r.cache_hits = reg.u64("serve.edt_cache.hits");
  r.cache_misses = reg.u64("serve.edt_cache.misses");
  svc.drain();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (a.rfind("--manifest=", 0) == 0) {
      manifest_path = a.substr(std::string("--manifest=").size());
    } else {
      pos.push_back(a);
    }
  }
  // Default workload: a coarse "interactive preview" mesh over a sizable
  // volume, where the EDT is ~half the per-job cost — the serving sweet
  // spot the warm cache targets. (Finer deltas shift time into refinement
  // and shrink the cache's relative win.)
  const int size = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 96;
  const double delta = pos.size() > 1 ? std::atof(pos[1].c_str()) : 4.0;
  const int jobs = pos.size() > 2 ? std::atoi(pos[2].c_str()) : 12;

  pi2m::bench::print_host_note();
  std::printf("# bench_serve: ball %d, delta %.3g, %d jobs per level\n\n",
              size, delta, jobs);
  std::printf("%8s %6s %10s %10s %10s %10s %10s %8s\n", "inflight", "cache",
              "jobs/sec", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "hits");

  std::vector<RunResult> results;
  for (const int inflight : {1, 4, 8}) {
    for (const bool warm : {false, true}) {
      const RunResult r = run_level(inflight, warm, jobs, size, delta);
      std::printf("%8d %6s %10.2f %10.2f %10.2f %10.2f %10.2f %8llu\n",
                  r.inflight, r.warm ? "warm" : "cold", r.jobs_per_sec,
                  1e3 * r.mean_sec, 1e3 * r.p50_sec, 1e3 * r.p95_sec,
                  1e3 * r.p99_sec,
                  static_cast<unsigned long long>(r.cache_hits));
      results.push_back(r);
    }
  }

  // Headline: warm-over-cold speedup at each level (EDT skipped per job).
  std::printf("\n");
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    std::printf(
        "# inflight %d: warm/cold throughput x%.2f, mean latency x%.2f\n",
        results[i].inflight,
        results[i + 1].jobs_per_sec / results[i].jobs_per_sec,
        results[i].mean_sec / results[i + 1].mean_sec);
  }

  if (!manifest_path.empty()) {
    pi2m::telemetry::JsonWriter w;
    w.begin_object()
        .kv("bench", "bench_serve")
        .kv("workload", "phantom:ball")
        .kv("size", size)
        .kv("delta", delta)
        .kv("jobs_per_level", jobs)
        .kv("threads_per_job", 1)
        .kv("hardware_threads",
            static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
        .key("levels")
        .begin_array();
    for (const RunResult& r : results) {
      w.begin_object()
          .kv("inflight", r.inflight)
          .kv("cache", r.warm ? "warm" : "cold")
          .kv("jobs", r.jobs)
          .kv("wall_sec", r.wall_sec)
          .kv("jobs_per_sec", r.jobs_per_sec)
          .kv("mesh_mean_sec", r.mean_sec)
          .kv("mesh_p50_sec", r.p50_sec)
          .kv("mesh_p90_sec", r.p90_sec)
          .kv("mesh_p95_sec", r.p95_sec)
          .kv("mesh_p99_sec", r.p99_sec)
          .kv("queue_wait_p50_sec", r.queue_wait_p50_sec)
          .kv("edt_cache_hits", r.cache_hits)
          .kv("edt_cache_misses", r.cache_misses)
          .end_object();
    }
    w.end_array().end_object();
    std::ofstream out(manifest_path);
    out << w.str() << "\n";
    if (!out) {
      std::fprintf(stderr, "bench_serve: failed to write %s\n",
                   manifest_path.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", manifest_path.c_str());
  }
  return 0;
}
