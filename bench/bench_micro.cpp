// Microbenchmarks (google-benchmark): the kernels whose cost structure
// determines PI2M's single-threaded rate — exact predicates (filtered vs
// exact path), EDT construction, oracle queries, Bowyer-Watson insertion
// throughput, spatial grid operations, and vertex removal.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/rules.hpp"
#include "core/spatial_grid.hpp"
#include "delaunay/geom_cache.hpp"
#include "delaunay/local_dt.hpp"
#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "imaging/edt.hpp"
#include "imaging/isosurface.hpp"
#include "imaging/phantom.hpp"
#include "predicates/predicates.hpp"
#include "telemetry/run_manifest.hpp"

namespace {

using namespace pi2m;

std::vector<Vec3> random_points(std::size_t n, unsigned seed,
                                double lo = 0.02, double hi = 0.98) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(lo, hi);
  std::vector<Vec3> pts(n);
  for (Vec3& p : pts) p = {u(rng), u(rng), u(rng)};
  return pts;
}

void BM_Orient3dFiltered(benchmark::State& state) {
  const auto pts = random_points(4096, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const Vec3& a = pts[i % pts.size()];
    const Vec3& b = pts[(i + 1) % pts.size()];
    const Vec3& c = pts[(i + 2) % pts.size()];
    const Vec3& d = pts[(i + 3) % pts.size()];
    benchmark::DoNotOptimize(orient3d(a, b, c, d));
    ++i;
  }
}
BENCHMARK(BM_Orient3dFiltered);

void BM_Orient3dExactPath(benchmark::State& state) {
  // Coplanar inputs defeat the stage-A static filter on every call. Before
  // the adaptive ladder this meant the full expansion-arithmetic fallback;
  // now stage B certifies the zero (exact translations -> zero tails).
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0.3, 0.4, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(orient3d(a, b, c, d));
  }
}
BENCHMARK(BM_Orient3dExactPath);

void BM_Orient3dStageD(benchmark::State& state) {
  // Reference cost of the final full-exact stage, called directly.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0.3, 0.4, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(orient3d_exact(a, b, c, d));
  }
}
BENCHMARK(BM_Orient3dStageD);

void BM_InsphereFiltered(benchmark::State& state) {
  const auto pts = random_points(4096, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        insphere(pts[i % 4096], pts[(i + 1) % 4096], pts[(i + 2) % 4096],
                 pts[(i + 3) % 4096], pts[(i + 4) % 4096]));
    ++i;
  }
}
BENCHMARK(BM_InsphereFiltered);

void BM_InsphereExactPath(benchmark::State& state) {
  // Cospherical cube corners defeat the stage-A filter every call; the
  // adaptive stage B now certifies the zero without dynamic expansions.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 0, 1}, d{0, 1, 0}, e{1, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(insphere(a, b, c, d, e));
  }
}
BENCHMARK(BM_InsphereExactPath);

void BM_InsphereStageD(benchmark::State& state) {
  // Reference cost of the final full-exact stage, called directly.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 0, 1}, d{0, 1, 0}, e{1, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(insphere_exact(a, b, c, d, e));
  }
}
BENCHMARK(BM_InsphereStageD);

void BM_EdtConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LabeledImage3D img = phantom::abdominal(n, n, n);
  for (auto _ : state) {
    const FeatureTransform ft = FeatureTransform::compute(img, 1);
    benchmark::DoNotOptimize(ft.has_surface());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(img.voxel_count()));
}
BENCHMARK(BM_EdtConstruction)->Arg(32)->Arg(64);

void BM_OracleClosestPoint(benchmark::State& state) {
  // Voxel-DDA walk (the default production path).
  const LabeledImage3D img = phantom::abdominal(48, 48, 48);
  const IsosurfaceOracle oracle(img, 1);
  const auto pts = random_points(1024, 3, 5.0, 43.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.closest_surface_point(pts[i % 1024]));
    ++i;
  }
}
BENCHMARK(BM_OracleClosestPoint);

void BM_OracleClosestPointRef(benchmark::State& state) {
  // Reference scalar-sampling walk, same queries (A/B baseline).
  const LabeledImage3D img = phantom::abdominal(48, 48, 48);
  const IsosurfaceOracle oracle(img, 1);
  const auto pts = random_points(1024, 3, 5.0, 43.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle.closest_surface_point_reference(pts[i % 1024]));
    ++i;
  }
}
BENCHMARK(BM_OracleClosestPointRef);

void BM_SegmentIntersect(benchmark::State& state) {
  const LabeledImage3D img = phantom::abdominal(48, 48, 48);
  const IsosurfaceOracle oracle(img, 1);
  const auto pts = random_points(2048, 8, 5.0, 43.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle.segment_surface_intersection(pts[i % 2048], pts[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_SegmentIntersect);

void BM_SegmentIntersectRef(benchmark::State& state) {
  const LabeledImage3D img = phantom::abdominal(48, 48, 48);
  const IsosurfaceOracle oracle(img, 1);
  const auto pts = random_points(2048, 8, 5.0, 43.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.segment_surface_intersection_reference(
        pts[i % 2048], pts[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_SegmentIntersectRef);

/// Shared scenario for the classify benches: a triangulation of random
/// points over an abdominal phantom, classified against an empty iso grid
/// (every near-surface cell exercises the full R1 walk path, like the
/// early refinement phase does).
struct ClassifyScenario {
  LabeledImage3D img = phantom::abdominal(32, 32, 32);
  IsosurfaceOracle oracle{img, 1};
  DelaunayMesh mesh;
  SpatialHashGrid iso_grid;
  RefineRulesConfig cfg;
  std::vector<CellId> cells;

  ClassifyScenario()
      : mesh(img.bounds().inflated(8.0), 1u << 16, 1u << 19),
        iso_grid(img.bounds().inflated(8.0), 4.0) {
    cfg.delta = 2.0;
    OpScratch scratch;
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> u(1.0, 31.0);
    for (int i = 0; i < 2000; ++i) {
      const Vec3 p{u(rng), u(rng), u(rng)};
      insert_point(mesh, p, VertexKind::Circumcenter, 0, 0, scratch);
    }
    mesh.for_each_alive_cell([&](CellId c) { cells.push_back(c); });
  }
};

ClassifyScenario& classify_scenario() {
  static ClassifyScenario s;
  return s;
}

void BM_ClassifyCell(benchmark::State& state) {
  // Warm generation-tagged cache: the steady state of pops/retries/R3 scans.
  ClassifyScenario& s = classify_scenario();
  CellGeomCache cache(s.mesh.cell_capacity());
  for (const CellId c : s.cells) {
    benchmark::DoNotOptimize(
        classify_cell(s.mesh, c, s.oracle, s.iso_grid, s.cfg, &cache, 0));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_cell(s.mesh, s.cells[i % s.cells.size()],
                                           s.oracle, s.iso_grid, s.cfg, &cache,
                                           0));
    ++i;
  }
}
BENCHMARK(BM_ClassifyCell);

void BM_ClassifyCellUncached(benchmark::State& state) {
  // Baseline: every classify recomputes circumspheres/EDT/inside from
  // scratch (the pre-cache behaviour).
  ClassifyScenario& s = classify_scenario();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_cell(
        s.mesh, s.cells[i % s.cells.size()], s.oracle, s.iso_grid, s.cfg));
    ++i;
  }
}
BENCHMARK(BM_ClassifyCellUncached);

void BM_DelaunayInsertion(benchmark::State& state) {
  // Throughput of the full speculative insertion path (single thread).
  const auto pts = random_points(1u << 14, 4);
  for (auto _ : state) {
    state.PauseTiming();
    DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1u << 16, 1u << 19);
    OpScratch scratch;
    state.ResumeTiming();
    CellId hint = 0;
    for (const Vec3& p : pts) {
      const OpResult r =
          insert_point(mesh, p, VertexKind::Circumcenter, hint, 0, scratch);
      if (r.status == OpStatus::Success) hint = scratch.created.front();
    }
    benchmark::DoNotOptimize(hint);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_DelaunayInsertion)->Unit(benchmark::kMillisecond);

void BM_DelaunayRemoval(benchmark::State& state) {
  const auto pts = random_points(2000, 5);
  for (auto _ : state) {
    state.PauseTiming();
    DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1u << 16, 1u << 19);
    OpScratch scratch;
    std::vector<VertexId> inserted;
    for (const Vec3& p : pts) {
      const OpResult r =
          insert_point(mesh, p, VertexKind::Circumcenter, 0, 0, scratch);
      if (r.status == OpStatus::Success) inserted.push_back(r.new_vertex);
    }
    state.ResumeTiming();
    int removed = 0;
    for (std::size_t i = 0; i < inserted.size(); i += 4) {
      if (remove_vertex(mesh, inserted[i], 0, scratch).status ==
          OpStatus::Success) {
        ++removed;
      }
    }
    benchmark::DoNotOptimize(removed);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_DelaunayRemoval)->Unit(benchmark::kMillisecond);

void BM_SpatialGridInsertQuery(benchmark::State& state) {
  const Aabb box{{0, 0, 0}, {100, 100, 100}};
  const auto pts = random_points(1u << 14, 6, 1.0, 99.0);
  for (auto _ : state) {
    SpatialHashGrid grid(box, 2.0);
    VertexId id = 0;
    for (const Vec3& p : pts) {
      if (!grid.any_within(p, 1.0)) grid.insert(p, id++);
    }
    benchmark::DoNotOptimize(grid.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_SpatialGridInsertQuery)->Unit(benchmark::kMillisecond);

void BM_LocalDelaunayBuild(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    const LocalDelaunay dt(pts);
    benchmark::DoNotOptimize(dt.ok());
  }
}
BENCHMARK(BM_LocalDelaunayBuild)->Arg(16)->Arg(32)->Arg(64);

/// Console reporting plus a MetricsRegistry capture of every benchmark's
/// per-iteration CPU time, for the --manifest run-manifest output.
class ManifestReporter final : public benchmark::ConsoleReporter {
 public:
  explicit ManifestReporter(telemetry::MetricsRegistry* reg) : reg_(reg) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.iterations <= 0) continue;
      const double ns_per_iter =
          r.cpu_accumulated_time / static_cast<double>(r.iterations) * 1e9;
      reg_->set("bench." + r.benchmark_name() + ".cpu_ns_per_iter",
                ns_per_iter);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  telemetry::MetricsRegistry* reg_;
};

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so `--manifest PATH` /
// `--manifest=PATH` can be stripped before google-benchmark parses the
// command line, and the captured timings written as a pi2m run manifest.
int main(int argc, char** argv) {
  std::string manifest_path;
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (a.rfind("--manifest=", 0) == 0) {
      manifest_path = a.substr(std::string("--manifest=").size());
    } else {
      pass.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(pass.size());
  benchmark::Initialize(&pass_argc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, pass.data())) return 1;

  pi2m::telemetry::MetricsRegistry reg;
  ManifestReporter reporter(&reg);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!manifest_path.empty()) {
    pi2m::telemetry::RunManifest man;
    man.tool = "bench_micro";
    man.metrics = reg;
    if (!man.write(manifest_path)) {
      std::fprintf(stderr, "failed to write %s\n", manifest_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", manifest_path.c_str());
  }
  return 0;
}
