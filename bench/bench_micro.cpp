// Microbenchmarks (google-benchmark): the kernels whose cost structure
// determines PI2M's single-threaded rate — exact predicates (filtered vs
// exact path), EDT construction, oracle queries, Bowyer-Watson insertion
// throughput, spatial grid operations, and vertex removal.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/rules.hpp"
#include "core/spatial_grid.hpp"
#include "delaunay/geom_cache.hpp"
#include "delaunay/local_dt.hpp"
#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "imaging/edt.hpp"
#include "imaging/isosurface.hpp"
#include "imaging/phantom.hpp"
#include "predicates/predicates.hpp"
#include "predicates/predicates_simd.hpp"
#include "runtime/mpsc_inbox.hpp"
#include "runtime/topology.hpp"
#include "runtime/workstealing.hpp"
#include "telemetry/run_manifest.hpp"

namespace {

using namespace pi2m;

std::vector<Vec3> random_points(std::size_t n, unsigned seed,
                                double lo = 0.02, double hi = 0.98) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(lo, hi);
  std::vector<Vec3> pts(n);
  for (Vec3& p : pts) p = {u(rng), u(rng), u(rng)};
  return pts;
}

// Pool size for the predicate benches. Power of two so the sliding-window
// index wraps with an AND instead of a hardware divide: a 64-bit `div`
// against the runtime `size()` costs more than the stage-A filter itself
// and would swamp the per-candidate comparison.
constexpr std::size_t kPredPoolMask = 4096 - 1;

void BM_Orient3dFiltered(benchmark::State& state) {
  const auto pts = random_points(kPredPoolMask + 1, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const Vec3& a = pts[i & kPredPoolMask];
    const Vec3& b = pts[(i + 1) & kPredPoolMask];
    const Vec3& c = pts[(i + 2) & kPredPoolMask];
    const Vec3& d = pts[(i + 3) & kPredPoolMask];
    benchmark::DoNotOptimize(orient3d(a, b, c, d));
    ++i;
  }
}
BENCHMARK(BM_Orient3dFiltered);

void BM_Orient3dExactPath(benchmark::State& state) {
  // Coplanar inputs defeat the stage-A static filter on every call. Before
  // the adaptive ladder this meant the full expansion-arithmetic fallback;
  // now stage B certifies the zero (exact translations -> zero tails).
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0.3, 0.4, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(orient3d(a, b, c, d));
  }
}
BENCHMARK(BM_Orient3dExactPath);

void BM_Orient3dStageD(benchmark::State& state) {
  // Reference cost of the final full-exact stage, called directly.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0.3, 0.4, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(orient3d_exact(a, b, c, d));
  }
}
BENCHMARK(BM_Orient3dStageD);

// Batch pool for the filter-hit-path benches. Small enough that the pool
// stays L1-resident (16 * 768 B / 16 * 960 B), mirroring the scalar bench
// whose point pool is likewise resident: both then measure the predicate
// evaluation itself, not memory traffic.
constexpr std::size_t kBatchPoolMask = 16 - 1;

/// Batched stage-A filter throughput on the filter-hit path: pre-marshalled
/// batches of `lanes` random candidates evaluated in rotation. Per-candidate
/// cost = reported time / lanes; compare against BM_Orient3dFiltered (one
/// resident candidate per iteration) for the filter-hit-path speedup.
void orient3d_batch_bench(benchmark::State& state, int lanes) {
  const auto pts = random_points(kPredPoolMask + 1, 1);
  std::vector<Orient3dBatch> pool(kBatchPoolMask + 1);
  std::size_t j = 0;
  for (Orient3dBatch& b : pool) {
    for (int k = 0; k < lanes; ++k, ++j) {
      b.set_lane(k, pts[j & kPredPoolMask], pts[(j + 1) & kPredPoolMask],
                 pts[(j + 2) & kPredPoolMask], pts[(j + 3) & kPredPoolMask]);
    }
  }
  int signs[Orient3dBatch::kMaxLanes];
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        orient3d_batch(pool[i & kBatchPoolMask], lanes, signs));
    benchmark::DoNotOptimize(signs[0]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}

/// Marshal-inclusive variant: fills the batch lane by lane inside the timed
/// loop, as the cavity-BFS and walk consumers do. The gap against the
/// pooled bench is the SoA transpose cost (scalar stores immediately
/// re-read as vector loads -> store-forward stalls), reported separately
/// so it is not mistaken for filter cost.
void orient3d_batch_marshal_bench(benchmark::State& state, int lanes) {
  const auto pts = random_points(kPredPoolMask + 1, 1);
  std::size_t i = 0;
  int signs[Orient3dBatch::kMaxLanes];
  for (auto _ : state) {
    Orient3dBatch b;
    for (int k = 0; k < lanes; ++k) {
      const std::size_t j = i + static_cast<std::size_t>(k);
      b.set_lane(k, pts[j & kPredPoolMask], pts[(j + 1) & kPredPoolMask],
                 pts[(j + 2) & kPredPoolMask], pts[(j + 3) & kPredPoolMask]);
    }
    benchmark::DoNotOptimize(orient3d_batch(b, lanes, signs));
    benchmark::DoNotOptimize(signs[0]);
    i += static_cast<std::size_t>(lanes);
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}

void BM_Orient3dBatch4(benchmark::State& state) {
  orient3d_batch_bench(state, 4);
}
BENCHMARK(BM_Orient3dBatch4);

void BM_Orient3dBatch8(benchmark::State& state) {
  orient3d_batch_bench(state, 8);
}
BENCHMARK(BM_Orient3dBatch8);

void BM_Orient3dBatch8Marshal(benchmark::State& state) {
  orient3d_batch_marshal_bench(state, 8);
}
BENCHMARK(BM_Orient3dBatch8Marshal);

void BM_InsphereFiltered(benchmark::State& state) {
  const auto pts = random_points(kPredPoolMask + 1, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(insphere(
        pts[i & kPredPoolMask], pts[(i + 1) & kPredPoolMask],
        pts[(i + 2) & kPredPoolMask], pts[(i + 3) & kPredPoolMask],
        pts[(i + 4) & kPredPoolMask]));
    ++i;
  }
}
BENCHMARK(BM_InsphereFiltered);

void insphere_batch_bench(benchmark::State& state, int lanes) {
  const auto pts = random_points(kPredPoolMask + 1, 2);
  std::vector<InsphereBatch> pool(kBatchPoolMask + 1);
  std::size_t j = 0;
  for (InsphereBatch& b : pool) {
    for (int k = 0; k < lanes; ++k, ++j) {
      b.set_lane(k, pts[j & kPredPoolMask], pts[(j + 1) & kPredPoolMask],
                 pts[(j + 2) & kPredPoolMask], pts[(j + 3) & kPredPoolMask],
                 pts[(j + 4) & kPredPoolMask]);
    }
  }
  int signs[InsphereBatch::kMaxLanes];
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        insphere_batch(pool[i & kBatchPoolMask], lanes, signs));
    benchmark::DoNotOptimize(signs[0]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}

void insphere_batch_marshal_bench(benchmark::State& state, int lanes) {
  const auto pts = random_points(kPredPoolMask + 1, 2);
  std::size_t i = 0;
  int signs[InsphereBatch::kMaxLanes];
  for (auto _ : state) {
    InsphereBatch b;
    for (int k = 0; k < lanes; ++k) {
      const std::size_t j = i + static_cast<std::size_t>(k);
      b.set_lane(k, pts[j & kPredPoolMask], pts[(j + 1) & kPredPoolMask],
                 pts[(j + 2) & kPredPoolMask], pts[(j + 3) & kPredPoolMask],
                 pts[(j + 4) & kPredPoolMask]);
    }
    benchmark::DoNotOptimize(insphere_batch(b, lanes, signs));
    benchmark::DoNotOptimize(signs[0]);
    i += static_cast<std::size_t>(lanes);
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}

void BM_InsphereBatch4(benchmark::State& state) {
  insphere_batch_bench(state, 4);
}
BENCHMARK(BM_InsphereBatch4);

void BM_InsphereBatch8(benchmark::State& state) {
  insphere_batch_bench(state, 8);
}
BENCHMARK(BM_InsphereBatch8);

void BM_InsphereBatch8Marshal(benchmark::State& state) {
  insphere_batch_marshal_bench(state, 8);
}
BENCHMARK(BM_InsphereBatch8Marshal);

void BM_InsphereExactPath(benchmark::State& state) {
  // Cospherical cube corners defeat the stage-A filter every call; the
  // adaptive stage B now certifies the zero without dynamic expansions.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 0, 1}, d{0, 1, 0}, e{1, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(insphere(a, b, c, d, e));
  }
}
BENCHMARK(BM_InsphereExactPath);

void BM_InsphereStageD(benchmark::State& state) {
  // Reference cost of the final full-exact stage, called directly.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 0, 1}, d{0, 1, 0}, e{1, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(insphere_exact(a, b, c, d, e));
  }
}
BENCHMARK(BM_InsphereStageD);

/// Shared triangulation for the locate-walk benches: 8k random points so
/// walks are long enough for the cell-header cache misses to dominate.
struct LocateScenario {
  DelaunayMesh mesh{{{0, 0, 0}, {1, 1, 1}}, 1u << 16, 1u << 19};
  std::vector<Vec3> queries = random_points(4096, 9);
  CellId hint = 0;

  LocateScenario() {
    OpScratch scratch;
    for (const Vec3& p : random_points(1u << 13, 10)) {
      const OpResult r =
          insert_point(mesh, p, VertexKind::Circumcenter, hint, 0, scratch);
      if (r.status == OpStatus::Success) hint = scratch.created.front();
    }
  }
};

LocateScenario& locate_scenario() {
  static LocateScenario s;
  return s;
}

void BM_LocateWalkScalar(benchmark::State& state) {
  // One walk at a time: every step's cell-header load is a serialized miss.
  LocateScenario& s = locate_scenario();
  std::size_t i = 0;
  for (auto _ : state) {
    for (int k = 0; k < kMaxLocateBatch; ++k) {
      benchmark::DoNotOptimize(
          locate_point(s.mesh, s.queries[(i + k) % s.queries.size()], s.hint));
    }
    i += kMaxLocateBatch;
  }
  state.SetItemsProcessed(state.iterations() * kMaxLocateBatch);
}
BENCHMARK(BM_LocateWalkScalar);

void BM_LocateWalkBatched(benchmark::State& state) {
  // Four independent walks in lockstep with a prefetch round per step, so
  // the misses of independent walks overlap (software pipelining).
  LocateScenario& s = locate_scenario();
  Vec3 pts[kMaxLocateBatch];
  CellId hints[kMaxLocateBatch];
  LocateResult out[kMaxLocateBatch];
  std::size_t i = 0;
  for (auto _ : state) {
    for (int k = 0; k < kMaxLocateBatch; ++k) {
      pts[k] = s.queries[(i + k) % s.queries.size()];
      hints[k] = s.hint;
    }
    benchmark::DoNotOptimize(
        locate_points(s.mesh, pts, kMaxLocateBatch, hints, out));
    benchmark::DoNotOptimize(out[0].cell);
    i += kMaxLocateBatch;
  }
  state.SetItemsProcessed(state.iterations() * kMaxLocateBatch);
}
BENCHMARK(BM_LocateWalkBatched);

void BM_EdtConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LabeledImage3D img = phantom::abdominal(n, n, n);
  for (auto _ : state) {
    const FeatureTransform ft = FeatureTransform::compute(img, 1);
    benchmark::DoNotOptimize(ft.has_surface());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(img.voxel_count()));
}
BENCHMARK(BM_EdtConstruction)->Arg(32)->Arg(64);

void BM_OracleClosestPoint(benchmark::State& state) {
  // Voxel-DDA walk (the default production path).
  const LabeledImage3D img = phantom::abdominal(48, 48, 48);
  const IsosurfaceOracle oracle(img, 1);
  const auto pts = random_points(1024, 3, 5.0, 43.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.closest_surface_point(pts[i % 1024]));
    ++i;
  }
}
BENCHMARK(BM_OracleClosestPoint);

void BM_OracleClosestPointRef(benchmark::State& state) {
  // Reference scalar-sampling walk, same queries (A/B baseline).
  const LabeledImage3D img = phantom::abdominal(48, 48, 48);
  const IsosurfaceOracle oracle(img, 1);
  const auto pts = random_points(1024, 3, 5.0, 43.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle.closest_surface_point_reference(pts[i % 1024]));
    ++i;
  }
}
BENCHMARK(BM_OracleClosestPointRef);

void BM_SegmentIntersect(benchmark::State& state) {
  const LabeledImage3D img = phantom::abdominal(48, 48, 48);
  const IsosurfaceOracle oracle(img, 1);
  const auto pts = random_points(2048, 8, 5.0, 43.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle.segment_surface_intersection(pts[i % 2048], pts[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_SegmentIntersect);

void BM_SegmentIntersectRef(benchmark::State& state) {
  const LabeledImage3D img = phantom::abdominal(48, 48, 48);
  const IsosurfaceOracle oracle(img, 1);
  const auto pts = random_points(2048, 8, 5.0, 43.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.segment_surface_intersection_reference(
        pts[i % 2048], pts[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_SegmentIntersectRef);

/// Shared scenario for the classify benches: a triangulation of random
/// points over an abdominal phantom, classified against an empty iso grid
/// (every near-surface cell exercises the full R1 walk path, like the
/// early refinement phase does).
struct ClassifyScenario {
  LabeledImage3D img = phantom::abdominal(32, 32, 32);
  IsosurfaceOracle oracle{img, 1};
  DelaunayMesh mesh;
  SpatialHashGrid iso_grid;
  RefineRulesConfig cfg;
  std::vector<CellId> cells;

  ClassifyScenario()
      : mesh(img.bounds().inflated(8.0), 1u << 16, 1u << 19),
        iso_grid(img.bounds().inflated(8.0), 4.0) {
    cfg.delta = 2.0;
    OpScratch scratch;
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> u(1.0, 31.0);
    for (int i = 0; i < 2000; ++i) {
      const Vec3 p{u(rng), u(rng), u(rng)};
      insert_point(mesh, p, VertexKind::Circumcenter, 0, 0, scratch);
    }
    mesh.for_each_alive_cell([&](CellId c) { cells.push_back(c); });
  }
};

ClassifyScenario& classify_scenario() {
  static ClassifyScenario s;
  return s;
}

void BM_ClassifyCell(benchmark::State& state) {
  // Warm generation-tagged cache: the steady state of pops/retries/R3 scans.
  ClassifyScenario& s = classify_scenario();
  CellGeomCache cache(s.mesh.cell_capacity());
  for (const CellId c : s.cells) {
    benchmark::DoNotOptimize(
        classify_cell(s.mesh, c, s.oracle, s.iso_grid, s.cfg, &cache, 0));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_cell(s.mesh, s.cells[i % s.cells.size()],
                                           s.oracle, s.iso_grid, s.cfg, &cache,
                                           0));
    ++i;
  }
}
BENCHMARK(BM_ClassifyCell);

void BM_ClassifyCellUncached(benchmark::State& state) {
  // Baseline: every classify recomputes circumspheres/EDT/inside from
  // scratch (the pre-cache behaviour).
  ClassifyScenario& s = classify_scenario();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_cell(
        s.mesh, s.cells[i % s.cells.size()], s.oracle, s.iso_grid, s.cfg));
    ++i;
  }
}
BENCHMARK(BM_ClassifyCellUncached);

void BM_DelaunayInsertion(benchmark::State& state) {
  // Throughput of the full speculative insertion path (single thread).
  const auto pts = random_points(1u << 14, 4);
  for (auto _ : state) {
    state.PauseTiming();
    DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1u << 16, 1u << 19);
    OpScratch scratch;
    state.ResumeTiming();
    CellId hint = 0;
    for (const Vec3& p : pts) {
      const OpResult r =
          insert_point(mesh, p, VertexKind::Circumcenter, hint, 0, scratch);
      if (r.status == OpStatus::Success) hint = scratch.created.front();
    }
    benchmark::DoNotOptimize(hint);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_DelaunayInsertion)->Unit(benchmark::kMillisecond);

void BM_DelaunayRemoval(benchmark::State& state) {
  const auto pts = random_points(2000, 5);
  for (auto _ : state) {
    state.PauseTiming();
    DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1u << 16, 1u << 19);
    OpScratch scratch;
    std::vector<VertexId> inserted;
    for (const Vec3& p : pts) {
      const OpResult r =
          insert_point(mesh, p, VertexKind::Circumcenter, 0, 0, scratch);
      if (r.status == OpStatus::Success) inserted.push_back(r.new_vertex);
    }
    state.ResumeTiming();
    int removed = 0;
    for (std::size_t i = 0; i < inserted.size(); i += 4) {
      if (remove_vertex(mesh, inserted[i], 0, scratch).status ==
          OpStatus::Success) {
        ++removed;
      }
    }
    benchmark::DoNotOptimize(removed);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_DelaunayRemoval)->Unit(benchmark::kMillisecond);

void BM_SpatialGridInsertQuery(benchmark::State& state) {
  const Aabb box{{0, 0, 0}, {100, 100, 100}};
  const auto pts = random_points(1u << 14, 6, 1.0, 99.0);
  for (auto _ : state) {
    SpatialHashGrid grid(box, 2.0);
    VertexId id = 0;
    for (const Vec3& p : pts) {
      if (!grid.any_within(p, 1.0)) grid.insert(p, id++);
    }
    benchmark::DoNotOptimize(grid.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_SpatialGridInsertQuery)->Unit(benchmark::kMillisecond);

void BM_LocalDelaunayBuild(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    const LocalDelaunay dt(pts);
    benchmark::DoNotOptimize(dt.ok());
  }
}
BENCHMARK(BM_LocalDelaunayBuild)->Arg(16)->Arg(32)->Arg(64);

/// Same layout as the refiner's PelEntry: what one inbox hand-off moves.
struct HandoffEntry {
  std::uint32_t cell;
  std::uint32_t gen;
  bool near_surface;
};

constexpr std::size_t kHandoffBatch = 64;
constexpr std::size_t kHandoffCapacity = 2048;

std::vector<HandoffEntry> handoff_batch() {
  std::vector<HandoffEntry> batch(kHandoffBatch);
  for (std::size_t i = 0; i < kHandoffBatch; ++i) {
    batch[i] = {static_cast<std::uint32_t>(i), 1, false};
  }
  return batch;
}

/// Shared state for the contended hand-off benches (thread 0 = beggar
/// draining its inbox, thread 1 = giver publishing batches). Both sides
/// bound the inbox at the same capacity; a full inbox makes the giver
/// yield and retry a few times, then drop the batch (the refiner keeps
/// the batch locally in that case).
struct MutexInbox {
  std::mutex m;
  std::vector<HandoffEntry> inbox;
};
MutexInbox& mutex_inbox() {
  static MutexInbox s;
  return s;
}
MpscRing<HandoffEntry>& mpsc_inbox() {
  static MpscRing<HandoffEntry> s(kHandoffCapacity);
  return s;
}

void BM_InboxHandoffMutex(benchmark::State& state) {
  // The pre-overhaul hand-off under real contention: giver locks and
  // appends the batch while the beggar locks and swaps the vector out.
  MutexInbox& s = mutex_inbox();
  if (state.thread_index() == 0) {
    std::vector<HandoffEntry> drained;
    std::size_t n = 0;
    for (auto _ : state) {
      {
        std::lock_guard<std::mutex> lk(s.m);
        drained.clear();
        drained.swap(s.inbox);
      }
      n += drained.size();
      benchmark::DoNotOptimize(drained.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
  } else {
    const auto batch = handoff_batch();
    for (auto _ : state) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        bool pushed = false;
        {
          std::lock_guard<std::mutex> lk(s.m);
          if (s.inbox.size() + batch.size() <= kHandoffCapacity) {
            s.inbox.insert(s.inbox.end(), batch.begin(), batch.end());
            pushed = true;
          }
        }
        if (pushed) break;
        std::this_thread::yield();
      }
    }
  }
}
BENCHMARK(BM_InboxHandoffMutex)->Threads(2)->UseRealTime();

void BM_InboxHandoffMpsc(benchmark::State& state) {
  // The lock-free hand-off under the same contention: one batched CAS
  // publication by the giver, lock-free drain by the beggar.
  MpscRing<HandoffEntry>& ring = mpsc_inbox();
  if (state.thread_index() == 0) {
    std::size_t n = 0;
    for (auto _ : state) {
      ring.drain([&](const HandoffEntry& e) {
        ++n;
        benchmark::DoNotOptimize(e.cell);
      });
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
  } else {
    const auto batch = handoff_batch();
    for (auto _ : state) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        if (ring.try_push_batch(batch.data(), batch.size())) break;
        std::this_thread::yield();
      }
    }
  }
}
BENCHMARK(BM_InboxHandoffMpsc)->Threads(2)->UseRealTime();

/// Poll-to-drain latency of one idle episode, as the begging thread
/// experiences it: the beggar polls its empty inbox (the seed protocol
/// locked the inbox mutex on EVERY poll iteration of the idle spin; the
/// shipped ring polls with a relaxed empty() check), then a batch of 64
/// arrives and is drained. 64 polls per episode is conservative — a real
/// idle episode spins hundreds of iterations.
template <typename PollFn, typename PushFn, typename DrainFn>
void idle_episode(benchmark::State& state, PollFn&& poll, PushFn&& push,
                  DrainFn&& drain) {
  constexpr int kPolls = 64;
  for (auto _ : state) {
    for (int i = 0; i < kPolls; ++i) benchmark::DoNotOptimize(poll());
    push();
    benchmark::DoNotOptimize(drain());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kHandoffBatch));
}

void BM_IdlePollDrainMutex(benchmark::State& state) {
  const auto batch = handoff_batch();
  std::mutex inbox_mutex;
  std::vector<HandoffEntry> inbox;
  std::vector<HandoffEntry> drained;
  idle_episode(
      state,
      [&] {
        std::lock_guard<std::mutex> lk(inbox_mutex);
        return inbox.empty();
      },
      [&] {
        std::lock_guard<std::mutex> lk(inbox_mutex);
        for (const HandoffEntry& e : batch) inbox.push_back(e);
      },
      [&] {
        std::lock_guard<std::mutex> lk(inbox_mutex);
        drained.clear();
        drained.swap(inbox);
        return drained.size();
      });
}
BENCHMARK(BM_IdlePollDrainMutex);

void BM_IdlePollDrainMpsc(benchmark::State& state) {
  const auto batch = handoff_batch();
  MpscRing<HandoffEntry> ring(kHandoffCapacity);
  std::vector<HandoffEntry> drained;
  idle_episode(
      state, [&] { return ring.empty(); },
      [&] { ring.try_push_batch(batch.data(), batch.size()); },
      [&] {
        drained.clear();
        ring.drain([&](const HandoffEntry& e) { drained.push_back(e); });
        return drained.size();
      });
}
BENCHMARK(BM_IdlePollDrainMpsc);

/// One complete hand-off cycle on the work-distribution critical path, at
/// realistic beggar occupancy (7 of 8 threads begging): giver pops the
/// most local beggar and publishes a batch of 64 into its inbox; the
/// beggar polls its inbox, drains it, cancels its begging registration and
/// re-enqueues. The mutex variant replicates the seed protocol exactly
/// (per-element push_back under the lock, empty-poll under the lock,
/// O(n) deque-scan cancel); the lock-free variant is the shipped one.
void BM_HandoffCycleMutex(benchmark::State& state) {
  const Topology topo(8, {2, 2});
  const auto lb = make_load_balancer(LbKind::HWS, topo, SchedulerImpl::Mutex);
  for (int tid = 1; tid < 8; ++tid) lb->enqueue_beggar(tid);
  const auto batch = handoff_batch();
  std::mutex inbox_mutex;
  std::vector<HandoffEntry> inbox;
  std::vector<HandoffEntry> drained;
  StealLevel level;
  for (auto _ : state) {
    const int beggar = lb->pop_beggar(0, &level);
    {
      std::lock_guard<std::mutex> lk(inbox_mutex);
      for (const HandoffEntry& e : batch) inbox.push_back(e);
    }
    bool has_work = false;
    {
      std::lock_guard<std::mutex> lk(inbox_mutex);
      has_work = !inbox.empty();
    }
    benchmark::DoNotOptimize(has_work);
    {
      std::lock_guard<std::mutex> lk(inbox_mutex);
      drained.clear();
      drained.swap(inbox);
    }
    benchmark::DoNotOptimize(drained.data());
    lb->cancel(beggar);
    lb->enqueue_beggar(beggar);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kHandoffBatch));
}
BENCHMARK(BM_HandoffCycleMutex);

void BM_HandoffCycleLockfree(benchmark::State& state) {
  const Topology topo(8, {2, 2});
  const auto lb =
      make_load_balancer(LbKind::HWS, topo, SchedulerImpl::LockFree);
  for (int tid = 1; tid < 8; ++tid) lb->enqueue_beggar(tid);
  const auto batch = handoff_batch();
  MpscRing<HandoffEntry> ring(kHandoffCapacity);
  std::vector<HandoffEntry> drained;
  StealLevel level;
  for (auto _ : state) {
    const int beggar = lb->pop_beggar(0, &level);
    benchmark::DoNotOptimize(lb->still_begging(beggar));
    ring.try_push_batch(batch.data(), batch.size());
    benchmark::DoNotOptimize(ring.empty());
    drained.clear();
    ring.drain([&](const HandoffEntry& e) { drained.push_back(e); });
    benchmark::DoNotOptimize(drained.data());
    lb->cancel(beggar);
    lb->enqueue_beggar(beggar);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kHandoffBatch));
}
BENCHMARK(BM_HandoffCycleLockfree);

void beggar_churn(benchmark::State& state, SchedulerImpl impl) {
  // Single-thread churn through the HWS begging lists: the enqueue /
  // pop / cancel cycle every idle episode pays. The virtual Blacklight
  // topology (8 threads, 2 cores/socket, 2 sockets/blade) exercises all
  // three levels.
  const Topology topo(8, {2, 2});
  const auto lb = make_load_balancer(LbKind::HWS, topo, impl);
  StealLevel level;
  for (auto _ : state) {
    for (int tid = 1; tid < 8; ++tid) lb->enqueue_beggar(tid);
    benchmark::DoNotOptimize(lb->pop_beggar(0, &level));
    for (int tid = 1; tid < 8; ++tid) lb->cancel(tid);
    benchmark::DoNotOptimize(lb->any_beggar());
  }
  state.SetItemsProcessed(state.iterations() * 7);
}

void BM_BeggarChurnMutex(benchmark::State& state) {
  beggar_churn(state, SchedulerImpl::Mutex);
}
BENCHMARK(BM_BeggarChurnMutex);

void BM_BeggarChurnLockfree(benchmark::State& state) {
  beggar_churn(state, SchedulerImpl::LockFree);
}
BENCHMARK(BM_BeggarChurnLockfree);

/// Console reporting plus a MetricsRegistry capture of every benchmark's
/// per-iteration CPU time, for the --manifest run-manifest output.
class ManifestReporter final : public benchmark::ConsoleReporter {
 public:
  explicit ManifestReporter(telemetry::MetricsRegistry* reg) : reg_(reg) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.iterations <= 0) continue;
      const double ns_per_iter =
          r.cpu_accumulated_time / static_cast<double>(r.iterations) * 1e9;
      reg_->set("bench." + r.benchmark_name() + ".cpu_ns_per_iter",
                ns_per_iter);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  telemetry::MetricsRegistry* reg_;
};

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so `--manifest PATH` /
// `--manifest=PATH` can be stripped before google-benchmark parses the
// command line, and the captured timings written as a pi2m run manifest.
int main(int argc, char** argv) {
  std::string manifest_path;
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (a.rfind("--manifest=", 0) == 0) {
      manifest_path = a.substr(std::string("--manifest=").size());
    } else {
      pass.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(pass.size());
  benchmark::Initialize(&pass_argc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, pass.data())) return 1;

  pi2m::telemetry::MetricsRegistry reg;
  ManifestReporter reporter(&reg);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!manifest_path.empty()) {
    pi2m::telemetry::RunManifest man;
    man.tool = "bench_micro";
    man.metrics = reg;
    if (!man.write(manifest_path)) {
      std::fprintf(stderr, "failed to write %s\n", manifest_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", manifest_path.c_str());
  }
  return 0;
}
