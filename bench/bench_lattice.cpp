// bench_lattice — hybrid BCC interior fill vs pure Delaunay refinement on
// the volume-dominated ellipsoid phantom (the acceptance benchmark of the
// hybrid interior fill; results recorded in BENCH_lattice.json).
//
// Measures element throughput (us per element of refinement wall time,
// which for the hybrid mode includes the lattice fill + interface seeding)
// and the symmetric Hausdorff distance of each mesh to the recovered
// isosurface. Both modes sample the surface at the same delta, so fidelity
// must come out equal; the hybrid additionally fills the deep interior
// with uniform disphenoids at append cost, where the pure-Delaunay mode
// leaves large sparse cells — the throughput comparison is elements
// produced per second of wall time at equal Hausdorff.
//
// Modes are interleaved within each round (order alternating per round) so
// thermal/neighbor drift cancels; the medians over rounds are the reported
// numbers.
//
// Usage: bench_lattice [grid_size] [delta] [threads] [rounds] [spacing]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/pi2m.hpp"
#include "imaging/phantom.hpp"
#include "metrics/hausdorff.hpp"

namespace {

using namespace pi2m;

struct Sample {
  double wall_sec = 0.0;
  double us_per_element = 0.0;
  double elements_per_sec = 0.0;
  double hausdorff = 0.0;
  std::size_t tets = 0;
  std::size_t lattice_tets = 0;
  double fill_sec = 0.0;
  double seed_sec = 0.0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

Sample run_mode(const LabeledImage3D& img, const IsosurfaceOracle& oracle,
                InteriorFill mode, double delta, double spacing, int threads) {
  MeshingOptions opt;
  opt.delta = delta;
  opt.threads = threads;
  opt.interior = mode;
  opt.lattice_spacing = spacing;
  const MeshingResult res = mesh_image(img, opt);
  if (!res.ok()) {
    std::fprintf(stderr, "run did not complete\n");
    std::exit(1);
  }
  Sample s;
  s.wall_sec = res.outcome.wall_sec;
  s.tets = res.mesh.num_tets();
  s.us_per_element = 1e6 * s.wall_sec / static_cast<double>(s.tets);
  s.elements_per_sec = static_cast<double>(s.tets) / s.wall_sec;
  s.lattice_tets = res.outcome.lattice_tets;
  s.fill_sec = res.outcome.lattice_fill_sec;
  s.seed_sec = res.outcome.lattice_seed_sec;
  s.hausdorff = hausdorff_distance(res.mesh, oracle, threads).symmetric();
  return s;
}

void print_mode(const char* name, const std::vector<Sample>& runs) {
  std::vector<double> us, eps, haus, wall;
  for (const Sample& s : runs) {
    us.push_back(s.us_per_element);
    eps.push_back(s.elements_per_sec);
    haus.push_back(s.hausdorff);
    wall.push_back(s.wall_sec);
  }
  std::printf("    \"%s\": {\n", name);
  std::printf("      \"median_us_per_element\": %.3f,\n", median(us));
  std::printf("      \"median_elements_per_sec\": %.0f,\n", median(eps));
  std::printf("      \"median_wall_sec\": %.3f,\n", median(wall));
  std::printf("      \"median_hausdorff\": %.4f,\n", median(haus));
  std::printf("      \"tets\": %zu,\n", runs.back().tets);
  if (runs.back().lattice_tets > 0) {
    std::printf("      \"lattice_tets\": %zu,\n", runs.back().lattice_tets);
    std::printf("      \"fill_sec\": %.3f,\n", runs.back().fill_sec);
    std::printf("      \"seed_sec\": %.3f,\n", runs.back().seed_sec);
  }
  std::printf("      \"us_per_element_runs\": [");
  for (std::size_t i = 0; i < us.size(); ++i) {
    std::printf("%s%.3f", i ? ", " : "", us[i]);
  }
  std::printf("],\n");
  std::printf("      \"hausdorff_runs\": [");
  for (std::size_t i = 0; i < haus.size(); ++i) {
    std::printf("%s%.4f", i ? ", " : "", haus[i]);
  }
  std::printf("]\n    }");
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 96;
  const double delta = argc > 2 ? std::atof(argv[2]) : 1.0;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 2;
  const int rounds = argc > 4 ? std::atoi(argv[4]) : 5;
  // Lattice spacing delta (finer than the automatic 2*delta): the interior
  // elements come out at the same scale as the surface sampling, which is
  // what an FE simulation consuming the mesh wants.
  const double spacing = argc > 5 ? std::atof(argv[5]) : delta;

  const LabeledImage3D img = phantom::ellipsoid(n);
  const IsosurfaceOracle oracle(img, threads);

  std::vector<Sample> lat, del;
  for (int r = 0; r < rounds; ++r) {
    // Alternate mode order each round so slow drift cancels in the medians.
    if (r % 2 == 0) {
      lat.push_back(run_mode(img, oracle, InteriorFill::Lattice, delta,
                             spacing, threads));
      del.push_back(run_mode(img, oracle, InteriorFill::Delaunay, delta,
                             spacing, threads));
    } else {
      del.push_back(run_mode(img, oracle, InteriorFill::Delaunay, delta,
                             spacing, threads));
      lat.push_back(run_mode(img, oracle, InteriorFill::Lattice, delta,
                             spacing, threads));
    }
    std::fprintf(stderr,
                 "round %d: lattice %.3f us/el (H %.3f)  delaunay %.3f us/el "
                 "(H %.3f)\n",
                 r, lat.back().us_per_element, lat.back().hausdorff,
                 del.back().us_per_element, del.back().hausdorff);
  }

  std::vector<double> lat_us, del_us;
  for (const Sample& s : lat) lat_us.push_back(s.us_per_element);
  for (const Sample& s : del) del_us.push_back(s.us_per_element);
  const double speedup = median(del_us) / median(lat_us);

  std::printf("{\n");
  std::printf(
      "  \"config\": {\"phantom\": \"ellipsoid\", \"size\": %d, "
      "\"delta\": %.3f, \"lattice_spacing\": %.3f, \"threads\": %d, "
      "\"rounds\": %d},\n",
      n, delta, spacing, threads, rounds);
  std::printf("  \"modes\": {\n");
  print_mode("lattice", lat);
  std::printf(",\n");
  print_mode("delaunay", del);
  std::printf("\n  },\n");
  std::printf("  \"throughput_ratio_delaunay_over_lattice\": %.2f\n", speedup);
  std::printf("}\n");
  return speedup >= 3.0 ? 0 : 1;
}
