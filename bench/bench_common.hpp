// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every bench accepts [grid_size] [delta] as its first arguments so runs
// can be scaled up on bigger machines; the defaults are sized for a small
// single-core container (each bench finishes in seconds to a few minutes).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/refiner.hpp"
#include "imaging/phantom.hpp"
#include "io/tables.hpp"

namespace pi2m::bench {

inline LabeledImage3D make_phantom(const std::string& name, int n) {
  if (name == "ball") return phantom::ball(n, 0.7);
  if (name == "shells") return phantom::concentric_shells(n);
  if (name == "abdominal") return phantom::abdominal(n, n, n);
  if (name == "knee") return phantom::knee(n, n, n);
  if (name == "head_neck") return phantom::head_neck(n, n, n);
  std::fprintf(stderr, "unknown phantom '%s'\n", name.c_str());
  std::exit(2);
}

struct RunConfig {
  double delta = 1.5;
  int threads = 1;
  CmKind cm = CmKind::Local;
  LbKind lb = LbKind::HWS;
  TopologySpec topo{2, 2};  // small virtual sockets: all BL levels active
  double watchdog_sec = 15.0;
  bool timeline = false;
  double timeline_period = 0.05;
  SizeFunction size_fn;
};

inline RefineOutcome run_pi2m(const LabeledImage3D& img, const RunConfig& cfg) {
  RefinerOptions opt;
  opt.threads = cfg.threads;
  opt.cm = cfg.cm;
  opt.lb = cfg.lb;
  opt.topology = cfg.topo;
  opt.rules.delta = cfg.delta;
  opt.rules.size_fn = cfg.size_fn;
  opt.watchdog_sec = cfg.watchdog_sec;
  opt.record_timeline = cfg.timeline;
  opt.timeline_period_sec = cfg.timeline_period;
  Refiner refiner(img, opt);
  return refiner.refine();
}

/// Weak scaling control (paper §6.3): a decrease of delta by x increases
/// the mesh size by ~x^3, so delta_n = delta_1 / n^(1/3) keeps the number
/// of elements per thread approximately constant.
inline double weak_scaling_delta(double delta_1, int threads) {
  return delta_1 / std::cbrt(static_cast<double>(threads));
}

inline void print_host_note() {
  std::printf(
      "# NOTE: this reproduction host exposes %u hardware thread(s); thread\n"
      "# counts beyond that exercise PI2M's concurrency control (rollbacks,\n"
      "# contention managers, begging lists) without physical parallel\n"
      "# speedup. The paper ran on Blacklight (cc-NUMA, up to 256 cores).\n"
      "# Algorithmic counters (rollbacks, steal locality, overhead seconds)\n"
      "# remain directly comparable; wall-clock speedups do not. See\n"
      "# EXPERIMENTS.md.\n",
      std::thread::hardware_concurrency());
}

}  // namespace pi2m::bench
