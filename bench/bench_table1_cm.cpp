// Reproduces paper Table 1: comparison among Contention Managers
// (Aggressive-CM, Random-CM, Global-CM, Local-CM) at two thread counts.
// Rows: time, rollbacks, contention/load-balance/rollback overhead seconds,
// total overhead, speedup vs 1 thread, livelock observed.
//
//   ./bench_table1_cm [grid_size=48] [delta=1.2] [threads_a=4] [threads_b=8]
//
// Paper shape to reproduce: Aggressive livelocks; Random terminates (if at
// all) with far larger rollback counts and overheads; Global and Local are
// livelock-free with Local showing the lowest total overhead.
#include <optional>

#include "bench_common.hpp"

using namespace pi2m;

namespace {

struct CmRun {
  bool livelock = false;
  RefineOutcome out;
};

CmRun run_cm(const LabeledImage3D& img, double delta, int threads, CmKind cm,
             double watchdog) {
  bench::RunConfig cfg;
  cfg.delta = delta;
  cfg.threads = threads;
  cfg.cm = cm;
  cfg.watchdog_sec = watchdog;
  CmRun r;
  r.out = bench::run_pi2m(img, cfg);
  r.livelock = r.out.livelocked;
  return r;
}

void table_for(const LabeledImage3D& img, double delta, int threads,
               double t1_sec) {
  std::printf("\n(Table 1 reproduction) %d threads\n", threads);
  io::TextTable t;
  t.add_row({"", "Aggressive-CM", "Random-CM", "Global-CM", "Local-CM"});

  const CmKind kinds[] = {CmKind::Aggressive, CmKind::Random, CmKind::Global,
                          CmKind::Local};
  std::vector<CmRun> runs;
  runs.reserve(4);
  for (const CmKind k : kinds) {
    std::printf("  running %s...\n", to_string(k));
    // Aggressive/Random may livelock; keep their watchdog short.
    const double wd = (k == CmKind::Aggressive || k == CmKind::Random) ? 10.0
                                                                       : 30.0;
    runs.push_back(run_cm(img, delta, threads, k, wd));
  }

  auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells{label};
    for (const CmRun& r : runs) {
      cells.push_back(r.livelock ? "n/a" : getter(r.out));
    }
    t.add_row(std::move(cells));
  };
  row("time (secs)",
      [](const RefineOutcome& o) { return io::fmt_double(o.wall_sec, 2); });
  row("#elements",
      [](const RefineOutcome& o) { return io::fmt_int(o.mesh_cells); });
  row("rollbacks",
      [](const RefineOutcome& o) { return io::fmt_int(o.totals.rollbacks); });
  row("contention overhead (secs)", [](const RefineOutcome& o) {
    return io::fmt_double(o.totals.contention_sec, 2);
  });
  row("load balance overhead (secs)", [](const RefineOutcome& o) {
    return io::fmt_double(o.totals.loadbalance_sec, 2);
  });
  row("rollback overhead (secs)", [](const RefineOutcome& o) {
    return io::fmt_double(o.totals.rollback_sec, 2);
  });
  row("total overhead (secs)", [](const RefineOutcome& o) {
    return io::fmt_double(o.totals.total_overhead_sec(), 2);
  });
  row("speedup vs 1 thread", [t1_sec](const RefineOutcome& o) {
    return io::fmt_double(t1_sec / o.wall_sec, 2);
  });
  {
    std::vector<std::string> cells{"livelock"};
    for (const CmRun& r : runs) cells.push_back(r.livelock ? "yes" : "no");
    t.add_row(std::move(cells));
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 56;
  const double delta = argc > 2 ? std::atof(argv[2]) : 1.0;
  const int threads_a = argc > 3 ? std::atoi(argv[3]) : 4;
  const int threads_b = argc > 4 ? std::atoi(argv[4]) : 8;

  std::printf("== Table 1: Contention Manager comparison ==\n");
  std::printf("input: abdominal phantom %d^3, delta=%.2f\n", n, delta);
  bench::print_host_note();

  const LabeledImage3D img = phantom::abdominal(n, n, n);

  std::printf("baseline single-thread run...\n");
  bench::RunConfig base;
  base.delta = delta;
  base.threads = 1;
  const RefineOutcome o1 = bench::run_pi2m(img, base);
  std::printf("1-thread: %.2fs, %zu elements\n", o1.wall_sec, o1.mesh_cells);

  table_for(img, delta, threads_a, o1.wall_sec);
  table_for(img, delta, threads_b, o1.wall_sec);
  return 0;
}
