// Reproduces paper Figure 6: cumulative overhead seconds (contention +
// load balance + rollback, summed over all threads) as a function of wall
// time. The paper's phase structure should appear: a steep Phase-1 ramp at
// the start of refinement (the mesh is almost empty, so there is little
// parallelism and intense begging/contention), then near-flat growth once
// enough elements exist to keep every thread busy.
//
//   ./bench_fig6_timeline [grid_size=48] [delta=1.0] [threads=16]
#include "bench_common.hpp"

using namespace pi2m;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const double delta = argc > 2 ? std::atof(argv[2]) : 0.9;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 16;

  std::printf("== Figure 6: overhead vs wall time (%d threads) ==\n", threads);
  std::printf("input: abdominal phantom %d^3, delta=%.2f\n", n, delta);
  bench::print_host_note();

  const LabeledImage3D img = phantom::abdominal(n, n, n);
  bench::RunConfig cfg;
  cfg.delta = delta;
  cfg.threads = threads;
  cfg.timeline = true;
  cfg.timeline_period = 0.02;
  const RefineOutcome out = bench::run_pi2m(img, cfg);
  if (!out.completed) {
    std::fprintf(stderr, "run did not complete\n");
    return 1;
  }

  io::TextTable t;
  t.add_row({"wall (s)", "overhead total (s)", "contention (s)",
             "load balance (s)", "rollback (s)", "ops so far"});
  for (const TimelineSample& s : out.timeline) {
    t.add_row({io::fmt_double(s.wall_sec, 3),
               io::fmt_double(s.contention_sec + s.loadbalance_sec +
                                  s.rollback_sec, 3),
               io::fmt_double(s.contention_sec, 3),
               io::fmt_double(s.loadbalance_sec, 3),
               io::fmt_double(s.rollback_sec, 3), io::fmt_int(s.operations)});
  }
  t.print();

  // Phase-1 summary as in the paper's narrative: the share of useful work
  // during the first 10% of the run vs overall.
  if (!out.timeline.empty()) {
    const TimelineSample& last = out.timeline.back();
    const double cut = last.wall_sec * 0.1;
    const TimelineSample* early = &out.timeline.front();
    for (const auto& s : out.timeline) {
      if (s.wall_sec <= cut) early = &s;
    }
    auto useful = [&](const TimelineSample& s, double wall) {
      const double total = wall * threads;
      const double wasted = s.contention_sec + s.loadbalance_sec + s.rollback_sec;
      return total > 0 ? (total - wasted) / total : 0.0;
    };
    std::printf("\nuseful-work share, first %.0f%% of run : %s\n", 10.0,
                io::fmt_pct(useful(*early, cut)).c_str());
    std::printf("useful-work share, whole run          : %s\n",
                io::fmt_pct(useful(last, last.wall_sec)).c_str());
    std::printf("total elements: %zu in %.2fs\n", out.mesh_cells,
                out.wall_sec);
  }
  return 0;
}
