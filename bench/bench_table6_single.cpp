// Reproduces paper Table 6: single-threaded comparison of PI2M against the
// CGAL-class sequential reference mesher and the TetGen-class PLC mesher
// on the knee and head-neck phantoms. Columns per tool: tetrahedra/second,
// time, #tetrahedra, max radius-edge ratio, smallest boundary planar angle,
// (min,max) dihedral angles, symmetric Hausdorff distance.
//
// Paper shape to reproduce: PI2M single-thread rate exceeds the reference
// sequential mesher; PI2M and the reference produce similar quality; the
// PLC mesher (fed PI2M's recovered isosurface, as the paper feeds TetGen)
// is competitive on raw volume-filling but delivers worse dihedral angles
// and radius-edge ratios.
//
//   ./bench_table6_single [grid_size=96] [delta=0.65]
#include "baselines/plc_mesher.hpp"
#include "baselines/seq_mesher.hpp"
#include "bench_common.hpp"
#include "metrics/hausdorff.hpp"
#include "metrics/quality.hpp"

using namespace pi2m;

namespace {

struct ToolResult {
  std::string name;
  TetMesh mesh;
  double wall_sec = 0;
  bool has_hausdorff = true;
};

void print_case(const char* input_name, const std::vector<ToolResult>& tools,
                const IsosurfaceOracle& oracle) {
  std::printf("\n(Table 6 reproduction) input: %s\n", input_name);
  io::TextTable t;
  {
    std::vector<std::string> h{"metric"};
    for (const auto& r : tools) h.push_back(r.name);
    t.add_row(h);
  }
  std::vector<QualityReport> q;
  q.reserve(tools.size());
  for (const auto& r : tools) q.push_back(evaluate_quality(r.mesh));

  auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells{label};
    for (std::size_t i = 0; i < tools.size(); ++i) {
      cells.push_back(getter(tools[i], q[i]));
    }
    t.add_row(std::move(cells));
  };
  row("#tetrahedra / second", [](const ToolResult& r, const QualityReport&) {
    return io::fmt_int(static_cast<std::uint64_t>(
        r.mesh.num_tets() / std::max(r.wall_sec, 1e-9)));
  });
  row("time (secs)", [](const ToolResult& r, const QualityReport&) {
    return io::fmt_double(r.wall_sec, 2);
  });
  row("#tetrahedra", [](const ToolResult& r, const QualityReport&) {
    return io::fmt_int(r.mesh.num_tets());
  });
  row("max radius-edge ratio", [](const ToolResult&, const QualityReport& qq) {
    return io::fmt_double(qq.max_radius_edge, 2);
  });
  row("smallest boundary planar angle",
      [](const ToolResult&, const QualityReport& qq) {
        return io::fmt_double(qq.min_boundary_planar_deg, 1) + " deg";
      });
  row("(min, max) dihedral angles",
      [](const ToolResult&, const QualityReport& qq) {
        return "(" + io::fmt_double(qq.min_dihedral_deg, 1) + ", " +
               io::fmt_double(qq.max_dihedral_deg, 1) + ") deg";
      });
  {
    std::vector<std::string> cells{"Hausdorff distance"};
    for (const auto& r : tools) {
      if (!r.has_hausdorff) {
        cells.push_back("n/a (surface given)");
        continue;
      }
      const HausdorffResult h = hausdorff_distance(r.mesh, oracle, 2);
      cells.push_back(io::fmt_double(h.symmetric(), 2) + " vox");
    }
    t.add_row(std::move(cells));
  }
  t.print();
}

void run_case(const char* name, const LabeledImage3D& img, double delta) {
  std::vector<ToolResult> tools;

  // PI2M, single thread (with all its locking/CM/LB machinery active).
  std::printf("  PI2M(1 thread)...\n");
  bench::RunConfig cfg;
  cfg.delta = delta;
  cfg.threads = 1;
  RefinerOptions opt;
  opt.threads = 1;
  opt.rules.delta = delta;
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  ToolResult pi2m_res;
  pi2m_res.name = "PI2M(1T)";
  pi2m_res.mesh = extract_mesh(refiner.mesh(), refiner.oracle(), 1);
  // As in the paper, PI2M's time includes the EDT.
  pi2m_res.wall_sec = out.wall_sec + out.edt_sec;
  tools.push_back(std::move(pi2m_res));

  // Reference sequential mesher (CGAL stand-in).
  std::printf("  reference sequential mesher...\n");
  baselines::SeqMesherOptions sopt;
  sopt.delta = delta;
  const auto sres = baselines::mesh_image_reference(img, sopt);
  tools.push_back({"SeqRef(CGAL-class)", sres.mesh, sres.wall_sec, true});

  // PLC mesher (TetGen stand-in) fed PI2M's recovered isosurface.
  std::printf("  PLC volume mesher...\n");
  baselines::PlcMesherOptions popt;
  popt.protect_radius = 0.9 * delta;
  const auto pres = baselines::mesh_volume_from_surface(
      tools[0].mesh, refiner.oracle(), popt);
  ToolResult plc{"PLC(TetGen-class)", pres.mesh, pres.wall_sec, false};
  tools.push_back(std::move(plc));

  print_case(name, tools, refiner.oracle());
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults sized so the meshes land in the regime the paper compares in
  // (hundreds of thousands of elements), where PI2M's pooled flat storage
  // overtakes the reference's ever-growing lazy priority queue.
  const int n = argc > 1 ? std::atoi(argv[1]) : 96;
  const double delta = argc > 2 ? std::atof(argv[2]) : 0.65;

  std::printf("== Table 6: single-threaded comparison ==\n");
  std::printf("(CGAL/TetGen are represented by from-scratch stand-ins of the\n"
              " same algorithm classes; see DESIGN.md \"Substitutions\")\n");

  run_case("knee phantom", phantom::knee(n, n, n), delta);
  run_case("head-neck phantom", phantom::head_neck(n, n, n), delta);
  return 0;
}
