// Reproduces paper Table 5: the hyper-threaded execution of the Table 4a
// case study — same problem sizes, twice as many threads as "cores".
//
// The paper reports HW counters (TLB/LLC misses, resource stalls) from
// Blacklight; portable equivalents are unavailable here, so this bench
// reports the software-visible counters that carry the paper's argument:
// relative speedup of 2x-threads vs 1x-threads at each size, overhead
// seconds per thread, and rollbacks (see DESIGN.md "Substitutions").
//
//   ./bench_table5_ht [grid_size=48] [delta1=1.6] [max_cores=8]
#include "bench_common.hpp"

using namespace pi2m;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const double delta_1 = argc > 2 ? std::atof(argv[2]) : 1.6;
  const int max_cores = argc > 3 ? std::atoi(argv[3]) : 8;

  std::printf("== Table 5: 2x thread oversubscription (hyper-threading) ==\n");
  std::printf("input: abdominal phantom %d^3\n", n);
  bench::print_host_note();

  const LabeledImage3D img = phantom::abdominal(n, n, n);

  io::TextTable t;
  std::vector<std::string> h{"#Cores"}, e{"#Elements"}, w1{"Time 1x (s)"},
      w2{"Time 2x (s)"}, sp{"Speedup 2x vs 1x"}, ov{"Overhead secs/thread 2x"},
      rb1{"Rollbacks 1x"}, rb2{"Rollbacks 2x"};

  for (int cores = 1; cores <= max_cores; cores *= 2) {
    const double delta = bench::weak_scaling_delta(delta_1, cores);
    std::printf("  cores=%d (threads %d vs %d), delta=%.3f...\n", cores,
                cores, 2 * cores, delta);
    bench::RunConfig base;
    base.delta = delta;
    base.threads = cores;
    const RefineOutcome o1 = bench::run_pi2m(img, base);

    bench::RunConfig ht = base;
    ht.threads = 2 * cores;
    const RefineOutcome o2 = bench::run_pi2m(img, ht);

    h.push_back(std::to_string(cores));
    e.push_back(io::fmt_sci(static_cast<double>(o1.mesh_cells), 2));
    w1.push_back(io::fmt_double(o1.wall_sec, 2));
    w2.push_back(io::fmt_double(o2.wall_sec, 2));
    sp.push_back(io::fmt_double(o1.wall_sec / o2.wall_sec, 2));
    ov.push_back(
        io::fmt_double(o2.totals.total_overhead_sec() / (2 * cores), 2));
    rb1.push_back(io::fmt_int(o1.totals.rollbacks));
    rb2.push_back(io::fmt_int(o2.totals.rollbacks));
  }
  t.add_row(h);
  t.add_row(e);
  t.add_row(w1);
  t.add_row(w2);
  t.add_row(sp);
  t.add_row(ov);
  t.add_row(rb1);
  t.add_row(rb2);
  t.print();
  return 0;
}
