// Ablations of the design choices DESIGN.md calls out (not a paper table;
// supports the paper's §4-§6 claims):
//   1. R6 removals on/off — removals are the paper's headline algorithmic
//      addition; disabling them shows their effect on mesh size/quality.
//   2. give_threshold sweep — the paper fixes 5 ("yielded the best
//      results"); the sweep shows the sensitivity.
//   3. Virtual topology granularity under HWS — how socket size changes
//      steal locality.
//
//   ./bench_ablation [grid_size=44] [delta=1.2] [threads=8] [manifest.json]
#include "bench_common.hpp"
#include "metrics/quality.hpp"
#include "telemetry/run_manifest.hpp"

using namespace pi2m;

namespace {

RefineOutcome run(const LabeledImage3D& img, double delta, int threads,
                  double removal_factor, int give_threshold,
                  TopologySpec topo) {
  RefinerOptions opt;
  opt.threads = threads;
  opt.rules.delta = delta;
  opt.rules.removal_factor = removal_factor;
  opt.give_threshold = give_threshold;
  opt.topology = topo;
  Refiner refiner(img, opt);
  return refiner.refine();
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 44;
  const double delta = argc > 2 ? std::atof(argv[2]) : 1.2;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 8;
  const std::string manifest_path = argc > 4 ? argv[4] : "";
  telemetry::MetricsRegistry reg;

  std::printf("== Ablation studies ==\n");
  const LabeledImage3D img = phantom::abdominal(n, n, n);

  std::printf("\n(1) R6 removals on/off (removal radius factor)\n");
  {
    io::TextTable t;
    t.add_row({"removal factor", "elements", "removals", "time(s)",
               "vertices"});
    for (const double rf : {0.0, 1.0, 2.0, 3.0}) {
      const RefineOutcome out = run(img, delta, 1, rf, 5, {2, 2});
      t.add_row({io::fmt_double(rf, 1), io::fmt_int(out.mesh_cells),
                 io::fmt_int(out.totals.removals),
                 io::fmt_double(out.wall_sec, 2), io::fmt_int(out.vertices)});
      const std::string p =
          "ablation.removal_factor_" + io::fmt_double(rf, 1) + ".";
      reg.set(p + "mesh_cells", out.mesh_cells);
      reg.set(p + "removals", out.totals.removals);
      reg.set(p + "wall_sec", out.wall_sec);
      reg.set(p + "vertices", out.vertices);
    }
    t.print();
    std::printf("(factor 0 disables R6 entirely; 2.0 is the paper's rule)\n");
  }

  std::printf("\n(2) work-give threshold sweep (%d threads)\n", threads);
  {
    io::TextTable t;
    t.add_row({"threshold", "time(s)", "loadbal(s)", "steals", "rollbacks"});
    for (const int thr : {1, 5, 20, 100}) {
      const RefineOutcome out = run(img, delta, threads, 2.0, thr, {2, 2});
      t.add_row({std::to_string(thr), io::fmt_double(out.wall_sec, 2),
                 io::fmt_double(out.totals.loadbalance_sec, 2),
                 io::fmt_int(out.totals.total_steals()),
                 io::fmt_int(out.totals.rollbacks)});
      const std::string p =
          "ablation.give_threshold_" + std::to_string(thr) + ".";
      reg.set(p + "wall_sec", out.wall_sec);
      reg.set(p + "loadbalance_sec", out.totals.loadbalance_sec);
      reg.set(p + "steals", out.totals.total_steals());
      reg.set(p + "rollbacks", out.totals.rollbacks);
    }
    t.print();
    std::printf("(the paper uses 5)\n");
  }

  std::printf("\n(3) virtual topology granularity under HWS (%d threads)\n",
              threads);
  {
    io::TextTable t;
    t.add_row({"cores/socket x sockets/blade", "intra-socket", "intra-blade",
               "inter-blade", "time(s)"});
    const TopologySpec topos[] = {{1, 1}, {2, 2}, {4, 2}, {8, 2}};
    for (const TopologySpec& ts : topos) {
      const RefineOutcome out = run(img, delta, threads, 2.0, 5, ts);
      t.add_row({std::to_string(ts.cores_per_socket) + "x" +
                     std::to_string(ts.sockets_per_blade),
                 io::fmt_int(out.totals.steals_intra_socket),
                 io::fmt_int(out.totals.steals_intra_blade),
                 io::fmt_int(out.totals.steals_inter_blade),
                 io::fmt_double(out.wall_sec, 2)});
      const std::string p = "ablation.topology_" +
                            std::to_string(ts.cores_per_socket) + "x" +
                            std::to_string(ts.sockets_per_blade) + ".";
      reg.set(p + "steals_intra_socket", out.totals.steals_intra_socket);
      reg.set(p + "steals_intra_blade", out.totals.steals_intra_blade);
      reg.set(p + "steals_inter_blade", out.totals.steals_inter_blade);
      reg.set(p + "wall_sec", out.wall_sec);
    }
    t.print();
  }

  if (!manifest_path.empty()) {
    telemetry::RunManifest man;
    man.tool = "bench_ablation";
    man.set_config("grid_size", n);
    man.set_config("delta", delta);
    man.set_config("threads", threads);
    man.metrics = reg;
    if (!man.write(manifest_path)) {
      std::fprintf(stderr, "failed to write %s\n", manifest_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", manifest_path.c_str());
  }
  return 0;
}
