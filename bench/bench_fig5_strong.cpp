// Reproduces paper Figure 5: strong scaling with Random Work Stealing (RWS)
// vs Hierarchical Work Stealing (HWS).
//   (a) speedup per thread count for both balancers,
//   (b) inter-blade steal counts (HWS must show markedly fewer),
//   (c) per-thread overhead breakdown for HWS.
//
//   ./bench_fig5_strong [--manifest PATH] [grid_size=48] [delta=1.1]
//                       [max_threads=16]
//
// With --manifest the largest HWS run's outcome (steal locality, park
// counters, wall time) is written as a pi2m run manifest for CI smoke.
#include <vector>

#include "bench_common.hpp"
#include "telemetry/collectors.hpp"
#include "telemetry/run_manifest.hpp"

using namespace pi2m;

int main(int argc, char** argv) {
  // Strip --manifest before the positional [grid delta threads] parse.
  std::string manifest_path;
  std::vector<char*> pos;
  pos.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (a.rfind("--manifest=", 0) == 0) {
      manifest_path = a.substr(std::string("--manifest=").size());
    } else {
      pos.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(pos.size());
  argv = pos.data();

  const int n = argc > 1 ? std::atoi(argv[1]) : 56;
  const double delta = argc > 2 ? std::atof(argv[2]) : 1.0;
  const int max_threads = argc > 3 ? std::atoi(argv[3]) : 16;

  std::printf("== Figure 5: strong scaling, RWS vs HWS ==\n");
  std::printf("input: abdominal phantom %d^3, delta=%.2f (fixed problem)\n",
              n, delta);
  bench::print_host_note();

  const LabeledImage3D img = phantom::abdominal(n, n, n);

  struct Run {
    int threads;
    LbKind lb;
    RefineOutcome out;
  };
  std::vector<Run> runs;
  double t1 = 0.0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    for (const LbKind lb : {LbKind::RWS, LbKind::HWS}) {
      if (threads == 1 && lb == LbKind::HWS) continue;  // identical at 1
      std::printf("  running %s x%d...\n", to_string(lb), threads);
      bench::RunConfig cfg;
      cfg.delta = delta;
      cfg.threads = threads;
      cfg.lb = lb;
      const RefineOutcome out = bench::run_pi2m(img, cfg);
      if (threads == 1) t1 = out.wall_sec;
      runs.push_back({threads, lb, out});
    }
  }

  std::printf("\n(Fig 5a) speedup = time(1) / time(n)\n");
  io::TextTable a;
  a.add_row({"threads", "RWS speedup", "HWS speedup", "RWS time(s)",
             "HWS time(s)"});
  for (int threads = 2; threads <= max_threads; threads *= 2) {
    std::string cells[4];
    for (const auto& r : runs) {
      if (r.threads != threads) continue;
      const int c = r.lb == LbKind::RWS ? 0 : 1;
      cells[c] = io::fmt_double(t1 / r.out.wall_sec, 2);
      cells[c + 2] = io::fmt_double(r.out.wall_sec, 2);
    }
    a.add_row({std::to_string(threads), cells[0], cells[1], cells[2],
               cells[3]});
  }
  a.print();

  std::printf("\n(Fig 5b) work transfers by locality (virtual topology)\n");
  io::TextTable b;
  b.add_row({"threads", "balancer", "intra-socket", "intra-blade",
             "inter-blade", "inter-blade share"});
  for (const auto& r : runs) {
    if (r.threads == 1) continue;
    const auto& t = r.out.totals;
    const std::uint64_t total = t.total_steals();
    b.add_row({std::to_string(r.threads), to_string(r.lb),
               io::fmt_int(t.steals_intra_socket),
               io::fmt_int(t.steals_intra_blade),
               io::fmt_int(t.steals_inter_blade),
               total ? io::fmt_pct(static_cast<double>(t.steals_inter_blade) /
                                   static_cast<double>(total))
                     : "-"});
  }
  b.print();

  std::printf("\n(Fig 5c) HWS overhead breakdown per thread (seconds)\n");
  io::TextTable c;
  c.add_row({"threads", "contention/thr", "load-bal/thr", "rollback/thr",
             "total/thr"});
  for (const auto& r : runs) {
    if (r.lb != LbKind::HWS) continue;
    const auto& t = r.out.totals;
    const double inv = 1.0 / r.threads;
    c.add_row({std::to_string(r.threads),
               io::fmt_double(t.contention_sec * inv, 3),
               io::fmt_double(t.loadbalance_sec * inv, 3),
               io::fmt_double(t.rollback_sec * inv, 3),
               io::fmt_double(t.total_overhead_sec() * inv, 3)});
  }
  c.print();

  if (!manifest_path.empty()) {
    // Manifest of the largest HWS run (the scheduler's stress case).
    const Run* best = nullptr;
    for (const auto& r : runs) {
      if (r.lb != LbKind::HWS) continue;
      if (!best || r.threads > best->threads) best = &r;
    }
    if (!best) best = &runs.back();
    telemetry::RunManifest man;
    man.tool = "bench_fig5_strong";
    man.config["phantom"] = "abdominal";
    man.config["grid"] = std::to_string(n);
    man.config["threads"] = std::to_string(best->threads);
    man.config["lb"] = to_string(best->lb);
    telemetry::collect_outcome(man.metrics, best->out);
    if (!man.write(manifest_path)) {
      std::fprintf(stderr, "failed to write %s\n", manifest_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", manifest_path.c_str());
  }
  return 0;
}
