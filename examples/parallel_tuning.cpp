// Parallel-runtime tour: drives the Refiner directly to show the knobs the
// paper's evaluation turns — contention manager, load balancer, virtual
// topology, thread count — and prints the wasted-cycle breakdown (§5.5)
// for each configuration.
//
//   ./parallel_tuning [grid_size] [delta] [max_threads]
#include <cstdio>
#include <cstdlib>

#include "core/refiner.hpp"
#include "imaging/phantom.hpp"
#include "io/tables.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 40;
  const double delta = argc > 2 ? std::atof(argv[2]) : 1.8;
  const int max_threads = argc > 3 ? std::atoi(argv[3]) : 4;

  const pi2m::LabeledImage3D img = pi2m::phantom::abdominal(n, n, n);

  pi2m::io::TextTable table;
  table.add_row({"config", "threads", "elements", "time(s)", "rollbacks",
                 "contention(s)", "loadbal(s)", "rollback(s)", "steals",
                 "inter-blade"});

  struct Config {
    const char* name;
    pi2m::CmKind cm;
    pi2m::LbKind lb;
  };
  const Config configs[] = {
      {"Local+HWS", pi2m::CmKind::Local, pi2m::LbKind::HWS},
      {"Local+RWS", pi2m::CmKind::Local, pi2m::LbKind::RWS},
      {"Global+HWS", pi2m::CmKind::Global, pi2m::LbKind::HWS},
      {"Random+HWS", pi2m::CmKind::Random, pi2m::LbKind::HWS},
  };

  for (const Config& cfg : configs) {
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      pi2m::RefinerOptions opt;
      opt.threads = threads;
      opt.cm = cfg.cm;
      opt.lb = cfg.lb;
      opt.topology = {2, 2};  // small virtual sockets exercise all BL levels
      opt.rules.delta = delta;
      pi2m::Refiner refiner(img, opt);
      const pi2m::RefineOutcome out = refiner.refine();
      if (!out.completed) {
        table.add_row({cfg.name, std::to_string(threads), "livelock!", "-",
                       "-", "-", "-", "-", "-", "-"});
        continue;
      }
      table.add_row({cfg.name, std::to_string(threads),
                     pi2m::io::fmt_int(out.mesh_cells),
                     pi2m::io::fmt_double(out.wall_sec, 3),
                     pi2m::io::fmt_int(out.totals.rollbacks),
                     pi2m::io::fmt_double(out.totals.contention_sec, 3),
                     pi2m::io::fmt_double(out.totals.loadbalance_sec, 3),
                     pi2m::io::fmt_double(out.totals.rollback_sec, 3),
                     pi2m::io::fmt_int(out.totals.total_steals()),
                     pi2m::io::fmt_int(out.totals.steals_inter_blade)});
    }
  }
  table.print();
  std::printf(
      "\nNote: this host exposes one physical core; thread counts above it\n"
      "exercise the concurrency control (rollbacks, CM waits, begging-list\n"
      "traffic) without wall-clock speedup. See EXPERIMENTS.md.\n");
  return 0;
}
