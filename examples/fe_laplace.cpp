// End-to-end FE pipeline — the use case the paper's introduction motivates:
// mesh a segmented image, then run a finite-element solve on the result.
//
// Solves the Laplace problem -∆u = 0 on a ball phantom with Dirichlet data
// g(p) = p.x on the recovered isosurface. The exact solution is the
// harmonic function u = x, so the nodal error measures the whole pipeline
// (image -> isosurface recovery -> quality mesh -> assembly -> solve).
// Also demonstrates how mesh smoothing affects solver conditioning (CG
// iterations).
//
//   ./fe_laplace [grid_size] [delta] [threads]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/pi2m.hpp"
#include "core/smoothing.hpp"
#include "fem/laplace.hpp"
#include "imaging/phantom.hpp"
#include "metrics/quality.hpp"

namespace {

double solve_and_report(const char* tag, const pi2m::TetMesh& mesh) {
  pi2m::fem::DirichletProblem problem;
  problem.boundary_value = [](const pi2m::Vec3& p) { return p.x; };
  const pi2m::fem::SolveResult sol =
      pi2m::fem::solve_laplace(mesh, problem, 1e-9);

  double max_err = 0.0;
  for (std::size_t v = 0; v < mesh.points.size(); ++v) {
    max_err = std::max(max_err, std::abs(sol.u[v] - mesh.points[v].x));
  }
  const pi2m::QualityReport q = pi2m::evaluate_quality(mesh);
  std::printf(
      "%-10s CG %s in %4d iters (res %.1e) | max nodal error %.2e | "
      "min dihedral %.2f deg\n",
      tag, sol.converged ? "converged" : "FAILED", sol.iterations,
      sol.residual, max_err, q.min_dihedral_deg);
  return max_err;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 40;
  const double delta = argc > 2 ? std::atof(argv[2]) : 1.6;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 2;

  std::printf("FE pipeline demo: Laplace equation on a meshed ball phantom\n");
  std::printf("(exact solution u = x; nodal error measures the pipeline)\n\n");

  const pi2m::LabeledImage3D img = pi2m::phantom::ball(n, 0.7);
  pi2m::MeshingOptions opt;
  opt.delta = delta;
  opt.threads = threads;
  pi2m::MeshingResult res = pi2m::mesh_image(img, opt);
  if (!res.ok()) {
    std::fprintf(stderr, "meshing failed\n");
    return 1;
  }
  std::printf("mesh: %zu tets, %zu vertices, built in %.2fs\n\n",
              res.mesh.num_tets(), res.mesh.num_points(),
              res.outcome.wall_sec + res.outcome.edt_sec);

  solve_and_report("as-meshed", res.mesh);

  // Quality-guarded smoothing and re-solve: better worst elements usually
  // means fewer CG iterations at the same tolerance.
  const pi2m::IsosurfaceOracle oracle(img, threads);
  pi2m::SmoothingOptions sopt;
  sopt.iterations = 4;
  sopt.threads = threads;
  pi2m::smooth_mesh(res.mesh, oracle, sopt);
  solve_and_report("smoothed", res.mesh);

  std::printf("\n(the nodal error is bounded by the O(h^2) interpolation\n"
              " error of P1 elements at this mesh resolution)\n");
  return 0;
}
