// Quickstart: mesh a simple segmented image (a ball phantom) and write the
// result to disk. Demonstrates the one-call public API.
//
//   ./quickstart [image_size] [delta] [threads]
//
// Produces quickstart.vtk (volume + labels, open in ParaView) and
// quickstart.off (the recovered isosurface).
#include <cstdio>
#include <cstdlib>

#include "core/pi2m.hpp"
#include "imaging/phantom.hpp"
#include "io/writers.hpp"
#include "metrics/quality.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const double delta = argc > 2 ? std::atof(argv[2]) : 2.0;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 2;

  std::printf("Building a %dx%dx%d ball phantom...\n", n, n, n);
  const pi2m::LabeledImage3D img = pi2m::phantom::ball(n, 0.7);

  pi2m::MeshingOptions opt;
  opt.delta = delta;   // surface sample spacing, in voxels here
  opt.threads = threads;

  std::printf("Meshing (delta=%.2f, %d threads)...\n", delta, threads);
  const pi2m::MeshingResult res = pi2m::mesh_image(img, opt);
  if (!res.ok()) {
    std::fprintf(stderr, "meshing did not complete (livelock=%d)\n",
                 res.outcome.livelocked);
    return 1;
  }

  const pi2m::QualityReport q = pi2m::evaluate_quality(res.mesh);
  std::printf("\n  elements            : %zu\n", res.mesh.num_tets());
  std::printf("  vertices            : %zu\n", res.mesh.num_points());
  std::printf("  boundary triangles  : %zu\n", res.mesh.boundary_tris.size());
  std::printf("  EDT time            : %.3f s\n", res.outcome.edt_sec);
  std::printf("  refinement time     : %.3f s\n", res.outcome.wall_sec);
  std::printf("  elements / second   : %.0f\n", res.elements_per_sec());
  std::printf("  max radius-edge     : %.3f (target <= %.1f)\n",
              q.max_radius_edge, opt.radius_edge_bound);
  std::printf("  dihedral angle range: [%.1f, %.1f] deg\n", q.min_dihedral_deg,
              q.max_dihedral_deg);
  std::printf("  insertions/removals : %llu / %llu\n",
              static_cast<unsigned long long>(res.outcome.totals.insertions),
              static_cast<unsigned long long>(res.outcome.totals.removals));

  if (!pi2m::io::write_vtk(res.mesh, "quickstart.vtk") ||
      !pi2m::io::write_off_surface(res.mesh, "quickstart.off")) {
    std::fprintf(stderr, "failed to write output files\n");
    return 1;
  }
  std::printf("\nWrote quickstart.vtk and quickstart.off\n");
  return 0;
}
