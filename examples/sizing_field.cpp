// Custom sizing fields (rule R5): the control over surface/volume density
// the paper contrasts with voxel-pitch-locked PLC methods (§2). Meshes the
// knee phantom three ways — uniform, radially graded toward the joint, and
// axis-graded — and shows how the element budget redistributes.
//
//   ./sizing_field [grid_size] [threads]
#include <cstdio>
#include <cstdlib>

#include "core/pi2m.hpp"
#include "imaging/phantom.hpp"
#include "io/writers.hpp"
#include "metrics/quality.hpp"

namespace {

void run(const char* name, const pi2m::LabeledImage3D& img,
         const pi2m::MeshingOptions& opt) {
  const pi2m::MeshingResult res = pi2m::mesh_image(img, opt);
  if (!res.ok()) {
    std::fprintf(stderr, "%s: meshing failed\n", name);
    return;
  }
  const pi2m::QualityReport q = pi2m::evaluate_quality(res.mesh);
  std::printf("%-14s %8zu elements  %7.2fs  max rho %.2f  min vol %.3g\n",
              name, res.mesh.num_tets(), res.outcome.wall_sec,
              q.max_radius_edge, q.min_volume);
  std::string path = std::string("sizing_") + name + ".vtk";
  pi2m::io::write_vtk(res.mesh, path);
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 2;
  const pi2m::LabeledImage3D img = pi2m::phantom::knee(n, n, n);

  const pi2m::Vec3 joint{(n - 1) * 0.5, (n - 1) * 0.5, (n - 1) * 0.5};

  pi2m::MeshingOptions uniform;
  uniform.delta = 2.0;
  uniform.threads = threads;
  uniform.size_function = pi2m::sizing::uniform(4.0);

  pi2m::MeshingOptions radial = uniform;
  // Fine (radius 1.5 voxels) at the joint line, coarse (6) far away.
  radial.size_function = pi2m::sizing::radial(joint, 1.5, 6.0, 0.35);

  pi2m::MeshingOptions graded = uniform;
  graded.size_function = pi2m::sizing::axis_graded(2, 0.0, n - 1.0, 2.0, 8.0);

  std::printf("Sizing-field study on the knee phantom (%d^3, %d threads)\n\n",
              n, threads);
  run("uniform", img, uniform);
  run("radial_joint", img, radial);
  run("axis_graded", img, graded);
  std::printf("\nWrote sizing_*.vtk\n");
  return 0;
}
