// Multi-tissue meshing: the scenario the paper's introduction motivates —
// patient-specific FE models from segmented multi-label scans. Meshes the
// "abdominal" and "head-neck" phantoms (stand-ins for the IRCAD/SPL
// atlases), reports per-tissue element counts, verifies multi-material
// conformity, and exports per-case VTK/Medit files.
//
//   ./multitissue [grid_size] [delta] [threads]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/pi2m.hpp"
#include "imaging/phantom.hpp"
#include "io/writers.hpp"
#include "metrics/hausdorff.hpp"
#include "metrics/quality.hpp"

namespace {

void mesh_case(const std::string& name, const pi2m::LabeledImage3D& img,
               double delta, int threads) {
  std::printf("=== %s (%dx%dx%d, %zu tissues) ===\n", name.c_str(), img.nx(),
              img.ny(), img.nz(), img.labels_present().size());

  pi2m::MeshingOptions opt;
  opt.delta = delta;
  opt.threads = threads;
  const pi2m::MeshingResult res = pi2m::mesh_image(img, opt);
  if (!res.ok()) {
    std::fprintf(stderr, "  meshing failed\n");
    return;
  }

  std::map<int, std::size_t> per_label;
  for (const pi2m::Label l : res.mesh.tet_labels) ++per_label[l];
  std::printf("  %zu elements in %.2fs (%.0f el/s), %zu interface tris\n",
              res.mesh.num_tets(), res.outcome.wall_sec,
              res.elements_per_sec(), res.mesh.boundary_tris.size());
  for (const auto& [label, count] : per_label) {
    std::printf("    tissue %d : %zu elements\n", label, count);
  }

  const pi2m::QualityReport q = pi2m::evaluate_quality(res.mesh);
  std::printf("  quality: max rho=%.2f, dihedral [%.1f, %.1f] deg, "
              "min boundary angle %.1f deg\n",
              q.max_radius_edge, q.min_dihedral_deg, q.max_dihedral_deg,
              q.min_boundary_planar_deg);

  // Fidelity: two-sided Hausdorff distance against the image isosurface.
  const pi2m::IsosurfaceOracle oracle(img, threads);
  const pi2m::HausdorffResult h =
      pi2m::hausdorff_distance(res.mesh, oracle, 2);
  std::printf("  fidelity: Hausdorff %.2f voxels (mesh->surf %.2f, "
              "surf->mesh %.2f)\n",
              h.symmetric(), h.mesh_to_surface, h.surface_to_mesh);

  const std::string base = name;
  pi2m::io::write_vtk(res.mesh, base + ".vtk");
  pi2m::io::write_medit(res.mesh, base + ".mesh");
  std::printf("  wrote %s.vtk / %s.mesh\n\n", base.c_str(), base.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const double delta = argc > 2 ? std::atof(argv[2]) : 2.0;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 2;

  mesh_case("abdominal", pi2m::phantom::abdominal(n, n, n), delta, threads);
  mesh_case("head_neck", pi2m::phantom::head_neck(n, n, n), delta, threads);
  return 0;
}
