#include <gtest/gtest.h>

#include "baselines/plc_mesher.hpp"
#include "baselines/seq_mesher.hpp"
#include "core/refiner.hpp"
#include "imaging/phantom.hpp"
#include "metrics/quality.hpp"

namespace pi2m {
namespace {

TEST(SeqMesher, BallPhantomTerminatesWithQuality) {
  const LabeledImage3D img = phantom::ball(24, 0.7);
  baselines::SeqMesherOptions opt;
  opt.delta = 2.5;
  const baselines::SeqMesherResult res =
      baselines::mesh_image_reference(img, opt);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.mesh.num_tets(), 50u);
  EXPECT_GT(res.insertions, 0u);

  const QualityReport q = evaluate_quality(res.mesh);
  // Same bound as PI2M, same small numerical slack.
  std::size_t violations = 0;
  for (std::size_t i = 0; i < q.radius_edge_histogram.size(); ++i) {
    if (i * 0.25 >= 2.1) violations += q.radius_edge_histogram[i];
  }
  EXPECT_LE(violations, q.num_tets / 20 + 2);
}

TEST(SeqMesher, MultiLabelImage) {
  const LabeledImage3D img = phantom::concentric_shells(20);
  baselines::SeqMesherOptions opt;
  opt.delta = 2.5;
  const auto res = baselines::mesh_image_reference(img, opt);
  ASSERT_TRUE(res.completed);
  bool has1 = false, has2 = false;
  for (Label l : res.mesh.tet_labels) {
    has1 = has1 || l == 1;
    has2 = has2 || l == 2;
  }
  EXPECT_TRUE(has1);
  EXPECT_TRUE(has2);
}

TEST(SeqMesher, ComparableSizeToPi2m) {
  // The stand-in must produce meshes in the same size class as PI2M for
  // the same delta, otherwise Table 6's "similar size" protocol is broken.
  const LabeledImage3D img = phantom::ball(24, 0.7);
  RefinerOptions popt;
  popt.threads = 1;
  popt.rules.delta = 2.5;
  Refiner refiner(img, popt);
  const RefineOutcome out = refiner.refine();
  ASSERT_TRUE(out.completed);

  baselines::SeqMesherOptions sopt;
  sopt.delta = 2.5;
  const auto res = baselines::mesh_image_reference(img, sopt);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.mesh.num_tets(), out.mesh_cells / 4);
  EXPECT_LT(res.mesh.num_tets(), out.mesh_cells * 4);
}

TEST(PlcMesher, FillsVolumeFromRecoveredSurface) {
  // Paper protocol: hand the PLC mesher the isosurface recovered by PI2M.
  const LabeledImage3D img = phantom::ball(24, 0.7);
  RefinerOptions popt;
  popt.threads = 1;
  popt.rules.delta = 2.5;
  Refiner refiner(img, popt);
  ASSERT_TRUE(refiner.refine().completed);
  const TetMesh surface = extract_mesh(refiner.mesh(), refiner.oracle(), 1);

  baselines::PlcMesherOptions opt;
  opt.protect_radius = 1.5;
  const auto res =
      baselines::mesh_volume_from_surface(surface, refiner.oracle(), opt);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.mesh.num_tets(), 50u);

  // The volume filled must be close to the object's voxel volume.
  const QualityReport q = evaluate_quality(res.mesh);
  std::size_t fg = 0;
  for (Label l : img.raw()) fg += l != 0;
  EXPECT_NEAR(q.total_volume, static_cast<double>(fg), 0.25 * fg);
}

TEST(PlcMesher, EmptySurfaceYieldsNothingUseful) {
  const LabeledImage3D img = phantom::ball(16, 0.6);
  const IsosurfaceOracle oracle(img, 1);
  baselines::PlcMesherOptions opt;
  const auto res = baselines::mesh_volume_from_surface(TetMesh{}, oracle, opt);
  EXPECT_TRUE(res.completed);  // terminates; box corners only
}

}  // namespace
}  // namespace pi2m
