// Degeneracy torture for the staged (A/B/C/D) predicate ladder.
//
// The adaptive stages B and C (predicates.cpp) certify a sign from partial
// expansions plus an error bound; a wrong bound or a sign error in the
// expansion code would make them *silently* disagree with the full exact
// stage D. These tests hammer the ladder with the configurations most
// likely to expose such a bug — exactly coplanar slabs, exactly cospherical
// lattices, and 1-ulp perturbations of both — and assert sign-for-sign
// agreement with orient3d_exact / insphere_exact on every call.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "predicates/predicates.hpp"

namespace pi2m {
namespace {

int sign_of(double v) { return (v > 0.0) - (v < 0.0); }

// Perturb one coordinate by n ulps (n may be negative).
double ulps(double v, int n) {
  double r = v;
  const double dir = n >= 0 ? INFINITY : -INFINITY;
  for (int i = 0; i < std::abs(n); ++i) r = std::nextafter(r, dir);
  return r;
}

TEST(StagedOrient3d, CoplanarSlabAgreesWithExact) {
  // A grid of points on the plane z = 1/3 (an inexactly-representable
  // height, so the stored coordinates are still exactly coplanar among
  // themselves) — every orient3d over the slab must be exactly 0.
  const double z = 1.0 / 3.0;
  std::vector<Vec3> slab;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      slab.push_back({0.25 * i + 0.125 * j, 0.5 * j - 0.0625 * i, z});
  int checked = 0;
  for (std::size_t i = 0; i < slab.size(); ++i)
    for (std::size_t j = i + 1; j < slab.size(); ++j)
      for (std::size_t k = j + 1; k < slab.size(); ++k) {
        const int s = orient3d(slab[i], slab[j], slab[k], slab.back());
        EXPECT_EQ(s, 0);
        EXPECT_EQ(s, orient3d_exact(slab[i], slab[j], slab[k], slab.back()));
        ++checked;
      }
  EXPECT_GT(checked, 100);
}

TEST(StagedOrient3d, OneUlpOffSlabAgreesWithExact) {
  // Perturb the apex height by -2..+2 ulps around the slab plane: the
  // determinant is a few units in the last place of the products, far
  // below every floating-point filter. Staged and exact must agree, and
  // the sign must track the perturbation direction.
  const double z = 1.0 / 3.0;
  const Vec3 a{0, 0, z}, b{1, 0, z}, c{0, 1, z};
  for (int n = -2; n <= 2; ++n) {
    const Vec3 d{0.25, 0.25, ulps(z, n)};
    const int staged = orient3d(a, b, c, d);
    EXPECT_EQ(staged, orient3d_exact(a, b, c, d)) << "n=" << n;
    // (a,b,c) counterclockwise seen from +z: apex below the plane => > 0.
    EXPECT_EQ(staged, -sign_of(static_cast<double>(n))) << "n=" << n;
  }
}

TEST(StagedOrient3d, RandomNearCoplanarAgreesWithExact) {
  // Random triangles with the query point lifted off the triangle plane by
  // 0 to a few hundred ulps: exercises stages B, C and D.
  std::mt19937 rng(101);
  std::uniform_real_distribution<double> u(1.0, 2.0);
  std::uniform_int_distribution<int> lift(-64, 64);
  for (int t = 0; t < 2000; ++t) {
    const Vec3 a{u(rng), u(rng), u(rng)};
    const Vec3 b{u(rng), u(rng), u(rng)};
    const Vec3 c{u(rng), u(rng), u(rng)};
    // d on the (rounded) plane point of the triangle, then lifted by ulps.
    const Vec3 mid = (1.0 / 3.0) * (a + b + c);
    const Vec3 d{mid.x, mid.y, ulps(mid.z, lift(rng))};
    EXPECT_EQ(orient3d(a, b, c, d), orient3d_exact(a, b, c, d));
  }
}

TEST(StagedInsphere, CosphericalLatticeAgreesWithExact) {
  // Integer lattice points on the sphere of radius 5 about the origin:
  // permutations of (+-3,+-4,0) and the six axis points. All coordinates
  // are exact small integers, so every insphere over the set is exactly 0.
  std::vector<Vec3> sph;
  for (const double s3 : {-3.0, 3.0})
    for (const double s4 : {-4.0, 4.0}) {
      sph.push_back({s3, s4, 0});
      sph.push_back({s4, s3, 0});
      sph.push_back({s3, 0, s4});
      sph.push_back({s4, 0, s3});
      sph.push_back({0, s3, s4});
      sph.push_back({0, s4, s3});
    }
  for (const double s5 : {-5.0, 5.0}) {
    sph.push_back({s5, 0, 0});
    sph.push_back({0, s5, 0});
    sph.push_back({0, 0, s5});
  }
  std::mt19937 rng(55);
  std::uniform_int_distribution<std::size_t> pick(0, sph.size() - 1);
  int checked = 0;
  for (int t = 0; t < 4000 && checked < 500; ++t) {
    Vec3 a = sph[pick(rng)], b = sph[pick(rng)], c = sph[pick(rng)],
         d = sph[pick(rng)];
    if (orient3d(a, b, c, d) < 0) std::swap(a, b);
    if (orient3d(a, b, c, d) <= 0) continue;  // need a positively-oriented tet
    const Vec3 e = sph[pick(rng)];
    const int staged = insphere(a, b, c, d, e);
    EXPECT_EQ(staged, 0);
    EXPECT_EQ(staged, insphere_exact(a, b, c, d, e));
    ++checked;
  }
  EXPECT_GE(checked, 500);
}

TEST(StagedInsphere, OneUlpOffSphereAgreesWithExact) {
  // Move the query point radially by single ulps across the sphere: the
  // staged result must match exact and flip sign with the direction.
  const Vec3 a{-3, 4, 0}, b{3, 4, 0}, c{0, -5, 0}, d{0, 0, 5};
  ASSERT_GT(orient3d(a, b, c, d), 0);
  for (int n = -3; n <= 3; ++n) {
    const Vec3 e{0, 0, ulps(-5.0, n)};  // |n| ulps inside (n>0) / outside
    const int staged = insphere(a, b, c, d, e);
    EXPECT_EQ(staged, insphere_exact(a, b, c, d, e)) << "n=" << n;
    EXPECT_EQ(staged, sign_of(static_cast<double>(n))) << "n=" << n;
  }
}

TEST(StagedInsphere, RandomNearCosphericalAgreesWithExact) {
  // Tets from the radius-5 lattice sphere, query points a few ulps off a
  // lattice point: near-zero determinants that fall through stage A.
  const std::vector<Vec3> sph = {{3, 4, 0},  {4, 3, 0},  {-3, 4, 0},
                                 {0, -5, 0}, {0, 0, 5},  {0, 0, -5},
                                 {5, 0, 0},  {-5, 0, 0}, {3, 0, 4},
                                 {0, 4, 3},  {0, -4, 3}, {-4, 0, -3}};
  std::mt19937 rng(77);
  std::uniform_int_distribution<std::size_t> pick(0, sph.size() - 1);
  std::uniform_int_distribution<int> nudge(-8, 8);
  std::uniform_int_distribution<int> axis(0, 2);
  int checked = 0;
  for (int t = 0; t < 4000 && checked < 500; ++t) {
    Vec3 a = sph[pick(rng)], b = sph[pick(rng)], c = sph[pick(rng)],
         d = sph[pick(rng)];
    if (orient3d(a, b, c, d) < 0) std::swap(a, b);
    if (orient3d(a, b, c, d) <= 0) continue;
    Vec3 e = sph[pick(rng)];
    double* coord = axis(rng) == 0 ? &e.x : (axis(rng) == 1 ? &e.y : &e.z);
    *coord = ulps(*coord, nudge(rng));
    EXPECT_EQ(insphere(a, b, c, d, e), insphere_exact(a, b, c, d, e));
    ++checked;
  }
  EXPECT_GE(checked, 500);
}

TEST(StagedCounters, AdaptiveStageResolvesMostNearDegenerateCalls) {
  // Near-coplanar inputs whose true determinant sits within a few ulps of
  // the evaluation noise, so a large share of calls falls through the
  // stage-A static filter. The coordinate range [1,50) spans more than a
  // factor of two, so the initial translations round (nonzero tails) and
  // stage C has to do real tail-correction work. The full exact stage D
  // must stay the rare path — that is the whole point of the ladder.
  reset_predicate_counters();
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> u(1.0, 50.0);
  const int kCalls = 2000;
  for (int t = 0; t < kCalls; ++t) {
    const Vec3 a{u(rng), u(rng), u(rng)};
    const Vec3 b{u(rng), u(rng), u(rng)};
    const Vec3 c{u(rng), u(rng), u(rng)};
    const Vec3 mid = (1.0 / 3.0) * (a + b + c);
    const Vec3 d{mid.x, mid.y, ulps(mid.z, (t % 7) - 3)};
    orient3d(a, b, c, d);
  }
  const PredicateCounters pc = predicate_counters();
  EXPECT_EQ(pc.orient3d_calls, static_cast<unsigned long long>(kCalls));
  // A solid share of the calls must have fallen through the static filter
  // (the exact fraction depends on how the rounded centroid lands)...
  EXPECT_GT(pc.orient3d_adapt, static_cast<unsigned long long>(kCalls) / 10);
  // ...and the adaptive B/C stages must absorb nearly all of them: only
  // the exactly-degenerate stragglers may reach stage D.
  EXPECT_LT(pc.orient3d_exact, pc.orient3d_adapt / 4);
}

TEST(StagedCounters, InsphereLadderCountsAreConsistent) {
  reset_predicate_counters();
  const Vec3 a{-3, 4, 0}, b{3, 4, 0}, c{0, -5, 0}, d{0, 0, 5};
  const int kCalls = 200;
  for (int t = 0; t < kCalls; ++t) {
    const Vec3 e{0, 0, ulps(-5.0, (t % 5) - 2)};
    insphere(a, b, c, d, e);
  }
  const PredicateCounters pc = predicate_counters();
  EXPECT_EQ(pc.insphere_calls, static_cast<unsigned long long>(kCalls));
  // Every stage count nests inside the previous one.
  EXPECT_LE(pc.insphere_exact, pc.insphere_adapt);
  EXPECT_LE(pc.insphere_adapt, pc.insphere_calls);
  // All of these are within ulps of the sphere: stage A can never certify.
  EXPECT_EQ(pc.insphere_adapt, static_cast<unsigned long long>(kCalls));
}

}  // namespace
}  // namespace pi2m
