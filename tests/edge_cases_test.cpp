// Edge cases and failure-mode coverage across modules: degenerate inputs,
// boundary-of-domain behaviour, empty objects, death-checked misuse.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pi2m.hpp"
#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "geometry/tetra.hpp"
#include "imaging/phantom.hpp"
#include "io/tables.hpp"
#include "io/writers.hpp"
#include "metrics/hausdorff.hpp"
#include "predicates/predicates.hpp"

namespace pi2m {
namespace {

// --- predicates -----------------------------------------------------------

TEST(PredicateEdge, AllCoincidentPointsAreDegenerate) {
  const Vec3 p{1.5, -2.25, 3.75};
  EXPECT_EQ(orient3d(p, p, p, p), 0);
  EXPECT_EQ(insphere(p, p, p, p, p), 0);
}

TEST(PredicateEdge, LargeAndSmallCoordinatesWithinSupportedRange) {
  // Exactness holds while intermediate products stay inside double range:
  // orient3d evaluates a degree-3 polynomial (|x| ≲ 1e100), insphere a
  // degree-5 one (|x| ≲ 1e60) — same envelope as Shewchuk's predicates.
  const double big = 1e100;
  EXPECT_GT(orient3d({0, 0, 0}, {big, 0, 0}, {0, big, 0}, {0, 0, -big}), 0);
  const double tiny = 1e-100;
  EXPECT_GT(orient3d({0, 0, 0}, {tiny, 0, 0}, {0, tiny, 0}, {0, 0, -tiny}), 0);
  const double ibig = 1e60;
  const Vec3 a{0, 0, 0}, b{ibig, 0, 0}, c{0, 0, ibig}, d{0, ibig, 0};
  ASSERT_GT(orient3d(a, b, c, d), 0);
  EXPECT_GT(insphere(a, b, c, d, {0.2 * ibig, 0.2 * ibig, 0.2 * ibig}), 0);
  EXPECT_LT(insphere(a, b, c, d, {3 * ibig, 3 * ibig, 3 * ibig}), 0);
}

TEST(PredicateEdge, InsphereParity) {
  // Swapping two of the first four arguments must flip the sign.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 0, 1}, d{0, 1, 0};
  const Vec3 e{0.2, 0.2, 0.2};
  ASSERT_GT(orient3d(a, b, c, d), 0);
  const int s = insphere(a, b, c, d, e);
  EXPECT_GT(s, 0);
  EXPECT_EQ(insphere(b, a, c, d, e), -s);
  EXPECT_EQ(insphere(a, c, b, d, e), -s);
  EXPECT_EQ(insphere(a, b, d, c, e), -s);
}

// --- kernel misuse (death) -------------------------------------------------

TEST(KernelDeath, UnlockWithoutOwnershipAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 100, 100);
  EXPECT_DEATH(mesh.unlock_vertex(0, /*tid=*/3), "not held");
}

TEST(KernelDeath, ArenaCapacityAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ChunkedStore<int> tiny(2);
        tiny.allocate();
        tiny.allocate();
        tiny.allocate();  // over capacity
      },
      "capacity");
}

TEST(OptionsDeath, MissingDeltaAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MeshingOptions opt;  // delta left at 0
  EXPECT_DEATH((void)to_refiner_options(opt), "delta");
}

// --- insertion on exact degeneracies ----------------------------------------

TEST(InsertEdge, PointOnSharedFaceOrEdge) {
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1000, 4000);
  OpScratch s;
  // Interior diagonal of the Kuhn subdivision: points on it lie on shared
  // faces/edges of the initial cells. Insertion must either succeed or fail
  // cleanly — never corrupt the structure.
  for (const double t : {0.25, 0.5, 0.75}) {
    insert_point(mesh, {t, t, t}, VertexKind::Circumcenter, 0, 0, s);
    ASSERT_EQ(mesh.check_integrity(true), "");
    ASSERT_NEAR(mesh.total_volume(), 1.0, 1e-12);
  }
  // A point on an axis-aligned face of the box interior grid.
  insert_point(mesh, {0.5, 0.5, 0.0}, VertexKind::Circumcenter, 0, 0, s);
  EXPECT_EQ(mesh.check_integrity(true), "");
}

TEST(InsertEdge, BoxCornersAreDuplicates) {
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1000, 4000);
  OpScratch s;
  const OpResult r =
      insert_point(mesh, {0, 0, 0}, VertexKind::Circumcenter, 0, 0, s);
  EXPECT_EQ(r.status, OpStatus::Failed);
  EXPECT_EQ(mesh.check_integrity(true), "");
}

// --- refiner on pathological images -----------------------------------------

TEST(RefinerEdge, EmptyImageProducesEmptyMesh) {
  LabeledImage3D img(12, 12, 12);  // all background
  RefinerOptions opt;
  opt.rules.delta = 2.0;
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.mesh_cells, 0u);
  EXPECT_EQ(out.totals.insertions, 0u);
  const TetMesh tm = extract_mesh(refiner.mesh(), refiner.oracle(), 1);
  EXPECT_EQ(tm.num_tets(), 0u);
}

TEST(RefinerEdge, FullForegroundTouchingImageBorder) {
  // Every voxel is tissue: the isosurface is the image border itself.
  LabeledImage3D img(14, 14, 14);
  for (auto& l : img.raw()) l = 1;
  MeshingOptions opt;
  opt.delta = 2.5;
  opt.threads = 2;
  const MeshingResult res = mesh_image(img, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res.mesh.num_tets(), 0u);
  // Mesh volume ~ image volume.
  double vol = 0;
  for (const auto& t : res.mesh.tets) {
    vol += std::abs(signed_volume(res.mesh.points[t[0]], res.mesh.points[t[1]],
                                  res.mesh.points[t[2]], res.mesh.points[t[3]]));
  }
  EXPECT_NEAR(vol, 14.0 * 14 * 14, 0.15 * 14 * 14 * 14);
}

TEST(RefinerEdge, SingleVoxelObject) {
  LabeledImage3D img(9, 9, 9);
  img.at({4, 4, 4}) = 1;
  MeshingOptions opt;
  opt.delta = 0.5;
  const MeshingResult res = mesh_image(img, opt);
  ASSERT_TRUE(res.ok());
  // A lone voxel still produces a tiny blob of elements around its center.
  EXPECT_GT(res.mesh.num_tets(), 0u);
  EXPECT_LT(res.mesh.num_tets(), 2000u);
}

TEST(RefinerEdge, MoreThreadsThanWork) {
  LabeledImage3D img(10, 10, 10);
  img.at({5, 5, 5}) = 1;
  img.at({5, 5, 6}) = 1;
  RefinerOptions opt;
  opt.threads = 12;  // massively more threads than elements to refine
  opt.rules.delta = 1.0;
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  EXPECT_TRUE(out.completed);  // termination protocol must not hang
}

TEST(RefinerEdge, DisjointComponentsBothMeshed) {
  // Two well-separated balls with different labels.
  LabeledImage3D img(40, 20, 20);
  const Vec3 c1{9, 9.5, 9.5}, c2{30, 9.5, 9.5};
  for (int z = 0; z < 20; ++z) {
    for (int y = 0; y < 20; ++y) {
      for (int x = 0; x < 40; ++x) {
        const Vec3 p{double(x), double(y), double(z)};
        if (distance2(p, c1) < 36) img.at({x, y, z}) = 1;
        if (distance2(p, c2) < 36) img.at({x, y, z}) = 2;
      }
    }
  }
  MeshingOptions opt;
  opt.delta = 1.6;
  opt.threads = 2;
  const MeshingResult res = mesh_image(img, opt);
  ASSERT_TRUE(res.ok());
  std::size_t n1 = 0, n2 = 0;
  for (const Label l : res.mesh.tet_labels) {
    n1 += l == 1;
    n2 += l == 2;
  }
  EXPECT_GT(n1, 50u);
  EXPECT_GT(n2, 50u);
  // Equal balls: comparable element counts.
  EXPECT_NEAR(double(n1), double(n2), 0.4 * double(n1));
}

TEST(RefinerEdge, AnisotropicSpacingEndToEnd) {
  // The paper's atlases are anisotropic (e.g. 0.96x0.96x2.4 mm). World-space
  // geometry must come out right: the meshed volume of a ball defined in
  // world units must match regardless of the voxel aspect.
  const double R = 9.0;
  auto make = [&](Vec3 sp) {
    const int nx = int(std::ceil(24 / sp.x)), ny = int(std::ceil(24 / sp.y)),
              nz = int(std::ceil(24 / sp.z));
    const Vec3 c{12, 12, 12};
    return phantom::from_function(nx, ny, nz, sp, [&](const Vec3& p) -> Label {
      return distance2(p, c) <= R * R ? 1 : 0;
    });
  };
  MeshingOptions opt;
  opt.delta = 2.0;
  const MeshingResult iso = mesh_image(make({1, 1, 1}), opt);
  const MeshingResult aniso = mesh_image(make({1, 1, 2.4}), opt);
  ASSERT_TRUE(iso.ok());
  ASSERT_TRUE(aniso.ok());
  auto vol = [](const TetMesh& m) {
    double v = 0;
    for (const auto& t : m.tets) {
      v += std::abs(signed_volume(m.points[t[0]], m.points[t[1]],
                                  m.points[t[2]], m.points[t[3]]));
    }
    return v;
  };
  const double exact = 4.0 / 3.0 * 3.14159265358979 * R * R * R;
  EXPECT_NEAR(vol(iso.mesh), exact, 0.12 * exact);
  EXPECT_NEAR(vol(aniso.mesh), exact, 0.20 * exact);  // coarser in z
}

// --- misc ------------------------------------------------------------------

TEST(PhantomEdge, RandomBlobsDeterministicPerSeed) {
  const LabeledImage3D a = phantom::random_blobs(20, 77);
  const LabeledImage3D b = phantom::random_blobs(20, 77);
  const LabeledImage3D c = phantom::random_blobs(20, 78);
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_NE(a.raw(), c.raw());
}

TEST(WritersEdge, EmptyMeshFilesAreValid) {
  const TetMesh empty;
  const std::string base = ::testing::TempDir() + "/empty";
  EXPECT_TRUE(io::write_vtk(empty, base + ".vtk"));
  EXPECT_TRUE(io::write_off_surface(empty, base + ".off"));
  EXPECT_TRUE(io::write_medit(empty, base + ".mesh"));
  EXPECT_TRUE(io::write_stl_surface(empty, base + ".stl"));
  for (const char* ext : {".vtk", ".off", ".mesh", ".stl"}) {
    std::remove((base + ext).c_str());
  }
}

TEST(HausdorffEdge, EmptyBoundaryGivesZero) {
  const LabeledImage3D img = phantom::ball(10, 0.6);
  const IsosurfaceOracle oracle(img, 1);
  const HausdorffResult h = hausdorff_distance(TetMesh{}, oracle);
  EXPECT_EQ(h.symmetric(), 0.0);
}

TEST(TablesEdge, EmptyAndRagged) {
  io::TextTable empty;
  EXPECT_EQ(empty.to_string(), "");
  io::TextTable ragged;
  ragged.add_row({"a", "b", "c"});
  ragged.add_row({"x"});  // short row must not crash
  const std::string s = ragged.to_string();
  EXPECT_NE(s.find('x'), std::string::npos);
}

}  // namespace
}  // namespace pi2m
