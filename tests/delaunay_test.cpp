#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "delaunay/local_dt.hpp"
#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "geometry/tetra.hpp"
#include "predicates/predicates.hpp"

namespace pi2m {
namespace {

Aabb unit_box() { return {{0, 0, 0}, {1, 1, 1}}; }

TEST(Mesh, InitialBoxIsSixTets) {
  DelaunayMesh mesh(unit_box(), 1000, 1000);
  EXPECT_EQ(mesh.count_alive_cells(), 6u);
  EXPECT_EQ(mesh.vertex_count(), 8u);
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-12);
  EXPECT_EQ(mesh.check_integrity(/*check_delaunay=*/false), "");
}

TEST(Mesh, VertexLocking) {
  DelaunayMesh mesh(unit_box(), 1000, 1000);
  std::int32_t held = -1;
  EXPECT_TRUE(mesh.try_lock_vertex(0, 3, held));
  EXPECT_TRUE(mesh.try_lock_vertex(0, 3, held));  // reentrant
  EXPECT_FALSE(mesh.try_lock_vertex(0, 5, held));
  EXPECT_EQ(held, 3);
  mesh.unlock_vertex(0, 3);
  EXPECT_TRUE(mesh.try_lock_vertex(0, 5, held));
  mesh.unlock_vertex(0, 5);
}

TEST(ChunkedStore, GrowthAndStability) {
  ChunkedStore<int> store(100000);
  std::vector<int*> addrs;
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t id = store.allocate();
    store[id] = i;
    if (i % 9999 == 0) addrs.push_back(&store[id]);
  }
  // Addresses captured early must remain valid after growth.
  EXPECT_EQ(*addrs[0], 0);
  EXPECT_EQ(store[49999], 49999);
  EXPECT_EQ(store.size(), 50000u);
}

TEST(ChunkedStore, ConcurrentAllocation) {
  ChunkedStore<std::uint32_t> store(1 << 18);
  constexpr int kThreads = 4, kPer = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&store, t] {
      for (int i = 0; i < kPer; ++i) {
        const std::uint32_t id = store.allocate();
        store[id] = static_cast<std::uint32_t>(t);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(store.size(), kThreads * kPer);
  std::array<int, kThreads> counts{};
  for (std::uint32_t i = 0; i < store.size(); ++i) ++counts[store[i]];
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(counts[t], kPer);
}

TEST(ChunkedStore, BlockAllocationDisjointAndClamped) {
  ChunkedStore<int> store(100);
  const auto [a_first, a_n] = store.allocate_block(32);
  const auto [b_first, b_n] = store.allocate_block(32);
  EXPECT_EQ(a_n, 32u);
  EXPECT_EQ(b_n, 32u);
  // Blocks are disjoint, contiguous ranges.
  EXPECT_TRUE(a_first + a_n <= b_first || b_first + b_n <= a_first);
  for (std::uint32_t i = 0; i < a_n; ++i) store[a_first + i] = 1;
  for (std::uint32_t i = 0; i < b_n; ++i) store[b_first + i] = 2;
  // Near capacity the grant clamps instead of tripping the capacity check.
  const auto [c_first, c_n] = store.allocate_block(64);
  EXPECT_EQ(c_n, 100u - 64u);
  EXPECT_EQ(c_first, 64u);
  EXPECT_EQ(store.size(), 100u);
}

TEST(ChunkedStore, ConcurrentBlockAllocationDisjoint) {
  ChunkedStore<std::uint32_t> store(1 << 18);
  constexpr int kThreads = 4, kBlocks = 500;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&store, t] {
      for (int i = 0; i < kBlocks; ++i) {
        const auto [first, n] = store.allocate_block(64);
        for (std::uint32_t j = 0; j < n; ++j) {
          store[first + j] = static_cast<std::uint32_t>(t) + 1;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  // Every slot was granted to exactly one thread's block.
  EXPECT_EQ(store.size(), kThreads * kBlocks * 64u);
  for (std::uint32_t i = 0; i < store.size(); ++i) {
    ASSERT_NE(store[i], 0u) << "slot " << i << " granted twice or never";
  }
}

TEST(Mesh, ArenaBlockModePreservesProtocols) {
  // A mesh with a large arena block must behave identically: reserved-
  // unused cell slots read dead (gen 0), reserved-unused vertex slots read
  // dead, and insertion through the block-create path yields a live vertex.
  DelaunayMesh mesh(unit_box(), 2000, 2000, /*arena_block=*/128);
  EXPECT_EQ(mesh.count_alive_cells(), 6u);
  EXPECT_EQ(mesh.check_integrity(/*check_delaunay=*/false), "");

  OpScratch s;
  const OpResult r =
      insert_point(mesh, {0.5, 0.5, 0.5}, VertexKind::Circumcenter, 0, 0, s);
  ASSERT_EQ(r.status, OpStatus::Success);
  for (VertexId v : s.locked) mesh.unlock_vertex(v, 0);
  EXPECT_FALSE(mesh.vertex(r.new_vertex).dead.load());
  EXPECT_EQ(mesh.check_integrity(true), "");
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-12);
  // The vertex block reserved slots ahead of use; they must not count as
  // live vertices (dead defaults true until create_vertex hands them out).
  std::size_t live = 0;
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    if (!mesh.vertex(v).dead.load()) ++live;
  }
  EXPECT_EQ(live, 9u);  // 8 box corners + 1 inserted
}

TEST(Locate, FindsContainingCell) {
  DelaunayMesh mesh(unit_box(), 1000, 1000);
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> u(0.01, 0.99);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p{u(rng), u(rng), u(rng)};
    const LocateResult loc = locate_point(mesh, p, 0);
    ASSERT_TRUE(loc.ok);
    const auto pos = mesh.positions(loc.cell);
    for (int f = 0; f < 4; ++f) {
      EXPECT_GE(orient3d(pos[kFaceOf[f][0]], pos[kFaceOf[f][1]],
                         pos[kFaceOf[f][2]], p),
                0);
    }
  }
}

TEST(Insert, SinglePoint) {
  DelaunayMesh mesh(unit_box(), 1000, 1000);
  OpScratch s;
  const OpResult r =
      insert_point(mesh, {0.5, 0.5, 0.5}, VertexKind::Circumcenter, 0, 0, s);
  ASSERT_EQ(r.status, OpStatus::Success);
  EXPECT_NE(r.new_vertex, kNoVertex);
  EXPECT_FALSE(s.created.empty());
  EXPECT_EQ(mesh.check_integrity(true), "");
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-12);
  // All vertex locks must have been released.
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    EXPECT_EQ(mesh.vertex(v).owner.load(), -1);
  }
}

TEST(Insert, DuplicateFails) {
  DelaunayMesh mesh(unit_box(), 1000, 1000);
  OpScratch s;
  ASSERT_EQ(insert_point(mesh, {0.5, 0.5, 0.5}, VertexKind::Circumcenter, 0, 0, s)
                .status,
            OpStatus::Success);
  EXPECT_EQ(insert_point(mesh, {0.5, 0.5, 0.5}, VertexKind::Circumcenter, 0, 0, s)
                .status,
            OpStatus::Failed);
}

TEST(Insert, OutsideBoxFails) {
  DelaunayMesh mesh(unit_box(), 1000, 1000);
  OpScratch s;
  EXPECT_EQ(insert_point(mesh, {1.5, 0.5, 0.5}, VertexKind::Circumcenter, 0, 0, s)
                .status,
            OpStatus::Failed);
}

class RandomInsertion : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomInsertion, DelaunayAfterManyInserts) {
  DelaunayMesh mesh(unit_box(), 10000, 40000);
  OpScratch s;
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> u(0.02, 0.98);
  CellId hint = 0;
  int inserted = 0;
  for (int i = 0; i < 250; ++i) {
    const OpResult r = insert_point(mesh, {u(rng), u(rng), u(rng)},
                                    VertexKind::Circumcenter, hint, 0, s);
    if (r.status == OpStatus::Success) {
      ++inserted;
      hint = s.created.front();
    }
  }
  EXPECT_GT(inserted, 240);
  EXPECT_EQ(mesh.check_integrity(true), "");
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInsertion,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u));

TEST(Insert, GridPointsWithCosphericalDegeneracies) {
  // Regular grid points produce many cospherical configurations; the exact
  // tie rule (on-sphere = outside) must keep the structure consistent.
  DelaunayMesh mesh(unit_box(), 10000, 40000);
  OpScratch s;
  int ok = 0;
  for (int x = 1; x <= 4; ++x) {
    for (int y = 1; y <= 4; ++y) {
      for (int z = 1; z <= 4; ++z) {
        const Vec3 p{x / 5.0, y / 5.0, z / 5.0};
        const OpResult r =
            insert_point(mesh, p, VertexKind::Circumcenter, 0, 0, s);
        if (r.status == OpStatus::Success) ++ok;
      }
    }
  }
  EXPECT_EQ(ok, 64);
  EXPECT_EQ(mesh.check_integrity(false), "");
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-9);
}

TEST(Remove, InsertThenRemoveRestoresDelaunay) {
  DelaunayMesh mesh(unit_box(), 10000, 40000);
  OpScratch s;
  std::mt19937 rng(77);
  std::uniform_real_distribution<double> u(0.1, 0.9);
  std::vector<VertexId> inserted;
  for (int i = 0; i < 60; ++i) {
    const OpResult r = insert_point(mesh, {u(rng), u(rng), u(rng)},
                                    VertexKind::Circumcenter, 0, 0, s);
    if (r.status == OpStatus::Success) inserted.push_back(r.new_vertex);
  }
  ASSERT_GT(inserted.size(), 50u);
  const double vol_before = mesh.total_volume();

  // Remove every third vertex.
  int removed = 0;
  for (std::size_t i = 0; i < inserted.size(); i += 3) {
    const OpResult r = remove_vertex(mesh, inserted[i], 0, s);
    if (r.status == OpStatus::Success) {
      ++removed;
      EXPECT_TRUE(mesh.vertex(inserted[i]).dead.load());
    }
  }
  EXPECT_GT(removed, 10);
  EXPECT_EQ(mesh.check_integrity(true), "");
  EXPECT_NEAR(mesh.total_volume(), vol_before, 1e-9);
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    EXPECT_EQ(mesh.vertex(v).owner.load(), -1);
  }
}

TEST(Remove, BoxVertexRefused) {
  DelaunayMesh mesh(unit_box(), 1000, 1000);
  OpScratch s;
  EXPECT_EQ(remove_vertex(mesh, mesh.box_vertices()[0], 0, s).status,
            OpStatus::Failed);
}

/// Seeds `mesh` with `n` jittered points so vertex links are generic (an
/// exactly-cospherical link — e.g. the bare box corners — makes removal
/// legitimately abort, per the documented degenerate-ball policy).
void seed_random_points(DelaunayMesh& mesh, int n, unsigned seed) {
  OpScratch s;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.05, 0.95);
  for (int i = 0; i < n; ++i) {
    insert_point(mesh, {u(rng), u(rng), u(rng)}, VertexKind::Circumcenter, 0,
                 0, s);
  }
}

TEST(Remove, DeadVertexRefused) {
  DelaunayMesh mesh(unit_box(), 1000, 8000);
  seed_random_points(mesh, 40, 31);
  OpScratch s;
  const OpResult r =
      insert_point(mesh, {0.49, 0.52, 0.47}, VertexKind::Circumcenter, 0, 0, s);
  ASSERT_EQ(r.status, OpStatus::Success);
  ASSERT_EQ(remove_vertex(mesh, r.new_vertex, 0, s).status, OpStatus::Success);
  EXPECT_EQ(remove_vertex(mesh, r.new_vertex, 0, s).status, OpStatus::Failed);
}

TEST(Remove, ConflictWhenVertexHeld) {
  DelaunayMesh mesh(unit_box(), 1000, 8000);
  seed_random_points(mesh, 40, 33);
  OpScratch s;
  const OpResult r =
      insert_point(mesh, {0.41, 0.63, 0.52}, VertexKind::Circumcenter, 0, 0, s);
  ASSERT_EQ(r.status, OpStatus::Success);
  std::int32_t held = -1;
  ASSERT_TRUE(mesh.try_lock_vertex(r.new_vertex, /*tid=*/9, held));
  OpScratch s2;
  const OpResult rr = remove_vertex(mesh, r.new_vertex, /*tid=*/0, s2);
  EXPECT_EQ(rr.status, OpStatus::Conflict);
  EXPECT_EQ(rr.conflicting_thread, 9);
  mesh.unlock_vertex(r.new_vertex, 9);
  EXPECT_EQ(remove_vertex(mesh, r.new_vertex, 0, s2).status, OpStatus::Success);
}

TEST(LocalDelaunay, CubeCorners) {
  std::vector<Vec3> pts;
  for (int b = 0; b < 8; ++b) {
    pts.push_back({double(b & 1), double((b >> 1) & 1), double((b >> 2) & 1)});
  }
  const LocalDelaunay dt(pts);
  ASSERT_TRUE(dt.ok());
  // The non-aux tets must tile the cube: total volume 1.
  double vol = 0.0;
  for (const auto& t : dt.tets()) {
    if (!t.alive) continue;
    bool aux = false;
    for (int v : t.v) aux = aux || LocalDelaunay::is_aux(v);
    if (aux) continue;
    vol += signed_volume(dt.point(t.v[0]), dt.point(t.v[1]), dt.point(t.v[2]),
                         dt.point(t.v[3]));
  }
  EXPECT_NEAR(vol, 1.0, 1e-9);
}

TEST(LocalDelaunay, DuplicatePointFails) {
  std::vector<Vec3> pts{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {0, 0, 0}};
  const LocalDelaunay dt(pts);
  EXPECT_FALSE(dt.ok());
}

// --- concurrent insertion stress ---------------------------------------

// Sanitizer instrumentation deschedules threads for long stretches while they
// hold vertex locks, so speculative operations abort with Conflict far more
// often than in a plain build. Progress floors shrink accordingly; the
// integrity / volume / lock-leak invariants stay at full strength.
#ifdef PI2M_UNDER_SANITIZER
constexpr int kProgressDiv = 10;
#else
constexpr int kProgressDiv = 1;
#endif

TEST(ConcurrentInsert, ParallelThreadsKeepInvariants) {
  DelaunayMesh mesh(unit_box(), 1 << 16, 1 << 19);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::atomic<int> successes{0}, conflicts{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      OpScratch s;
      std::mt19937 rng(1000 + t);
      std::uniform_real_distribution<double> u(0.02, 0.98);
      CellId hint = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const Vec3 p{u(rng), u(rng), u(rng)};
        const OpResult r = insert_point(mesh, p, VertexKind::Circumcenter,
                                        hint, t, s);
        if (r.status == OpStatus::Success) {
          successes.fetch_add(1);
          hint = s.created.front();
        } else if (r.status == OpStatus::Conflict) {
          conflicts.fetch_add(1);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_GT(successes.load(), kThreads * kPerThread / 2 / kProgressDiv);
  EXPECT_EQ(mesh.check_integrity(true), "");
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-9);
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    EXPECT_EQ(mesh.vertex(v).owner.load(), -1) << "leaked lock on " << v;
  }
}

TEST(ConcurrentMixed, InsertAndRemoveRace) {
  DelaunayMesh mesh(unit_box(), 1 << 16, 1 << 19);
  constexpr int kThreads = 4;
  std::atomic<int> ins{0}, rem{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      OpScratch s;
      std::mt19937 rng(2000 + t);
      std::uniform_real_distribution<double> u(0.05, 0.95);
      std::vector<VertexId> mine;
      for (int i = 0; i < 300; ++i) {
        if (!mine.empty() && i % 4 == 3) {
          const VertexId victim = mine.back();
          mine.pop_back();
          if (remove_vertex(mesh, victim, t, s).status == OpStatus::Success) {
            rem.fetch_add(1);
          }
        } else {
          const OpResult r = insert_point(mesh, {u(rng), u(rng), u(rng)},
                                          VertexKind::Circumcenter, 0, t, s);
          if (r.status == OpStatus::Success) {
            ins.fetch_add(1);
            mine.push_back(r.new_vertex);
          }
        }
        if (i % 16 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_GT(ins.load(), 300 / kProgressDiv);
  EXPECT_GT(rem.load(), 20 / kProgressDiv);
  EXPECT_EQ(mesh.check_integrity(true), "");
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-9);
}

}  // namespace
}  // namespace pi2m
