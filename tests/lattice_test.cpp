// Hybrid interior fill (BCC-lattice bulk + Delaunay skin): template
// geometry (positive orientation, disphenoid dihedral floor), the fidelity
// band (no template vertex within 2δ of ∂O), the stitched mesh's
// watertightness/validation, Hausdorff parity with the pure-Delaunay mode,
// the byte-identical degradation when no deep-interior band exists, and a
// multi-threaded hybrid run under the exact-arithmetic auditor (run under
// TSan/ASan via the `sanitize` label).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <set>

#include "core/pi2m.hpp"
#include "core/refiner.hpp"
#include "core/validate.hpp"
#include "geometry/tetra.hpp"
#include "imaging/phantom.hpp"
#include "lattice/lattice_fill.hpp"
#include "metrics/hausdorff.hpp"

namespace pi2m {
namespace {

constexpr double kDelta = 1.0;

const LabeledImage3D& volume_phantom() {
  static const LabeledImage3D img = phantom::ellipsoid(48);
  return img;
}

TEST(LatticeFill, NamesRoundTrip) {
  EXPECT_STREQ(interior_name(InteriorFill::Lattice), "lattice");
  EXPECT_STREQ(interior_name(InteriorFill::Delaunay), "delaunay");
  EXPECT_EQ(parse_interior_name("lattice"), InteriorFill::Lattice);
  EXPECT_EQ(parse_interior_name("delaunay"), InteriorFill::Delaunay);
  EXPECT_FALSE(parse_interior_name("voronoi").has_value());
}

TEST(LatticeFill, TemplatesArePositiveDisphenoidsInsideTheBand) {
  const IsosurfaceOracle oracle(volume_phantom(), 2);
  const lattice::LatticeFill fill(oracle, kDelta, 0.0, 2);
  ASSERT_FALSE(fill.empty());
  const lattice::LatticeStats& st = fill.stats();
  EXPECT_EQ(fill.cube_size(), 2.0 * kDelta);  // automatic spacing
  EXPECT_EQ(st.tets, 4 * st.faces);
  EXPECT_GT(st.interface_vertices, 0u);

  std::size_t count = 0;
  fill.for_each_tet([&](const std::array<std::uint64_t, 4>& keys,
                        const std::array<Vec3, 4>& p, Label label) {
    ++count;
    EXPECT_EQ(label, 1);
    // Positive orientation (the extraction appends these verbatim).
    EXPECT_GT(signed_volume(p[0], p[1], p[2], p[3]), 0.0);
    // Tetragonal disphenoid: dihedral angles exactly 60/90 degrees.
    for (const double ang : dihedral_angles(p[0], p[1], p[2], p[3])) {
      EXPECT_GT(ang, 59.0);
      EXPECT_LT(ang, 91.0);
    }
    // The fidelity band: no template vertex comes within 2δ of ∂O (exact
    // oracle query, not the EDT lower bound), and every vertex sits in the
    // tet's material.
    for (int i = 0; i < 4; ++i) {
      EXPECT_FALSE(oracle.ball_intersects_surface(p[i], 2.0 * kDelta));
      EXPECT_EQ(oracle.label_at(p[i]), label);
      // point_of(key) is the exact position used everywhere (stitching
      // relies on bit-identical shared coordinates).
      const Vec3 q = fill.point_of(keys[i]);
      EXPECT_EQ(std::memcmp(&q, &p[i], sizeof(Vec3)), 0);
    }
    // Template centroids are inside L; the guard zone covers L.
    const Vec3 centroid = 0.25 * (p[0] + p[1] + p[2] + p[3]);
    Label got = 0;
    EXPECT_TRUE(fill.contains(centroid, &got));
    EXPECT_EQ(got, label);
    EXPECT_TRUE(fill.protects(centroid));
  });
  EXPECT_EQ(count, st.tets);

  // Points far outside the object are in neither L nor G.
  EXPECT_FALSE(fill.contains({0.5, 0.5, 0.5}));
  EXPECT_FALSE(fill.protects({0.5, 0.5, 0.5}));
}

TEST(LatticeFill, HybridMeshIsWatertightAndAuditClean) {
  RefinerOptions opt;
  opt.threads = 4;
  opt.rules.delta = kDelta;
  opt.audit_final = true;
  Refiner refiner(volume_phantom(), opt);
  const RefineOutcome out = refiner.refine();
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.audit_errors.empty());
  ASSERT_NE(refiner.lattice(), nullptr);
  EXPECT_GT(out.lattice_tets, 0u);
  EXPECT_GT(out.lattice_seeds, 0u);

  const TetMesh tm = extract_mesh(refiner.mesh(), refiner.oracle(),
                                  opt.threads, refiner.lattice());
  ASSERT_GT(tm.num_tets(), out.lattice_tets);

  // The stitched mesh passes full structural validation: positive volumes,
  // face conformity across the lattice/shell interface ∂L, watertight
  // label boundaries.
  const MeshValidation v = validate_mesh(tm);
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());

  // Template tets are exactly the tets whose centroid lies in L: extraction
  // drops every kernel cell with centroid in L and appends the templates in
  // their place. (All-Lattice vertex kinds would overcount — the stitch
  // ring between the wall and rind seeds is made of ordinary Delaunay cells
  // whose corners all happen to be seeded lattice points.) Every template
  // meets the disphenoid quality floor the hybrid fill promises: dihedral
  // angles of exactly 60/90 degrees, asserted at >= 59 for fp slack.
  std::size_t lattice_tets = 0;
  for (std::size_t i = 0; i < tm.tets.size(); ++i) {
    const auto& t = tm.tets[i];
    const Vec3 centroid = 0.25 * (tm.points[t[0]] + tm.points[t[1]] +
                                  tm.points[t[2]] + tm.points[t[3]]);
    if (!refiner.lattice()->contains(centroid)) continue;
    ++lattice_tets;
    // Templates are built from seeded + fresh lattice points only.
    for (const std::uint32_t vi : t) {
      EXPECT_EQ(tm.point_kinds[vi], VertexKind::Lattice);
    }
    const auto angs = dihedral_angles(tm.points[t[0]], tm.points[t[1]],
                                      tm.points[t[2]], tm.points[t[3]]);
    EXPECT_GE(*std::min_element(angs.begin(), angs.end()), 59.0);
  }
  EXPECT_EQ(lattice_tets, out.lattice_tets);

  // The lattice is strictly interior: recovered isosurface triangles never
  // use lattice vertices.
  for (const auto& b : tm.boundary_tris) {
    for (const std::uint32_t vi : b) {
      EXPECT_NE(tm.point_kinds[vi], VertexKind::Lattice);
    }
  }
}

TEST(LatticeFill, HybridMatchesDelaunayFidelity) {
  MeshingOptions base;
  base.delta = 1.2;
  base.threads = 2;

  MeshingOptions hybrid = base;
  hybrid.interior = InteriorFill::Lattice;
  const MeshingResult rh = mesh_image(volume_phantom(), hybrid);
  ASSERT_TRUE(rh.ok());
  ASSERT_GT(rh.outcome.lattice_tets, 0u);

  MeshingOptions pure = base;
  pure.interior = InteriorFill::Delaunay;
  const MeshingResult rd = mesh_image(volume_phantom(), pure);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd.outcome.lattice_tets, 0u);

  // Equal surface fidelity: the lattice never touches the shell within 2δ
  // of ∂O, so both modes sample the isosurface identically (Theorem 1's
  // bound applies to both). Allow fp-level slack only.
  const IsosurfaceOracle oracle(volume_phantom(), 2);
  const double hh = hausdorff_distance(rh.mesh, oracle, 2).symmetric();
  const double hd = hausdorff_distance(rd.mesh, oracle, 2).symmetric();
  EXPECT_LT(hh, 2.0 * base.delta);
  EXPECT_LT(hd, 2.0 * base.delta);
  EXPECT_LT(hh, 1.5 * hd + 1e-9);
}

TEST(LatticeFill, EmptyBandDegradesToByteIdenticalDelaunay) {
  // A small object at a coarse δ has no deep-interior band: the hybrid
  // default must degrade to the pure-Delaunay path, byte for byte.
  const LabeledImage3D img = phantom::ball(16, 0.7);
  MeshingOptions opt;
  opt.delta = 2.0;
  opt.threads = 1;

  opt.interior = InteriorFill::Lattice;
  const MeshingResult a = mesh_image(img, opt);
  opt.interior = InteriorFill::Delaunay;
  const MeshingResult b = mesh_image(img, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.outcome.lattice_cubes, 0u);
  EXPECT_EQ(a.outcome.lattice_tets, 0u);

  ASSERT_EQ(a.mesh.num_points(), b.mesh.num_points());
  EXPECT_EQ(std::memcmp(a.mesh.points.data(), b.mesh.points.data(),
                        a.mesh.points.size() * sizeof(Vec3)),
            0);
  EXPECT_EQ(a.mesh.tets, b.mesh.tets);
  EXPECT_EQ(a.mesh.tet_labels, b.mesh.tet_labels);
  EXPECT_EQ(a.mesh.boundary_tris, b.mesh.boundary_tris);
  EXPECT_EQ(a.mesh.point_kinds, b.mesh.point_kinds);
}

TEST(LatticeFill, MultiMaterialCoreFillsWithoutBreakingInterfaces) {
  // thick_shell: a solid core (label 1) inside a thick shell (label 2). At
  // this δ only the core is deep enough to fill — the lattice must stay
  // inside one material while the shell and both isosurfaces remain pure
  // Delaunay and conforming.
  const LabeledImage3D img = phantom::thick_shell(64);
  MeshingOptions opt;
  opt.delta = 1.0;
  opt.threads = 4;
  const MeshingResult res = mesh_image(img, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res.outcome.lattice_tets, 0u);

  const std::set<Label> labels(res.mesh.tet_labels.begin(),
                               res.mesh.tet_labels.end());
  EXPECT_TRUE(labels.count(1));
  EXPECT_TRUE(labels.count(2));

  // Every template (all-lattice) tet carries the core label.
  for (std::size_t i = 0; i < res.mesh.tets.size(); ++i) {
    const auto& t = res.mesh.tets[i];
    if (std::all_of(t.begin(), t.end(), [&](std::uint32_t vi) {
          return res.mesh.point_kinds[vi] == VertexKind::Lattice;
        })) {
      EXPECT_EQ(res.mesh.tet_labels[i], 1);
    }
  }

  const MeshValidation v = validate_mesh(res.mesh);
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
}

}  // namespace
}  // namespace pi2m
