// Property-based sweeps over the core invariants: randomized operation
// sequences against exact reference computations.
#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <thread>

#include "core/spatial_grid.hpp"
#include "delaunay/local_dt.hpp"
#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "geometry/tetra.hpp"
#include "imaging/edt.hpp"
#include "imaging/phantom.hpp"
#include "metrics/hausdorff.hpp"
#include "predicates/expansion.hpp"
#include "predicates/predicates.hpp"

namespace pi2m {
namespace {

// --- expansion arithmetic vs 128-bit integer reference -------------------

class ExpansionExactness : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExpansionExactness, IntegerLatticeOpsAreExact) {
  // On integer-valued doubles every intermediate is exactly representable
  // in __int128, giving a bit-exact reference for +,-,*.
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<long long> u(-(1ll << 25), 1ll << 25);
  for (int iter = 0; iter < 500; ++iter) {
    const long long a = u(rng), b = u(rng), c = u(rng), d = u(rng);
    using exact::Expansion;
    const Expansion e = (Expansion(double(a)) * Expansion(double(b))) -
                        (Expansion(double(c)) * Expansion(double(d)));
    const __int128 ref = static_cast<__int128>(a) * b -
                         static_cast<__int128>(c) * d;
    const int ref_sign = ref > 0 ? 1 : (ref < 0 ? -1 : 0);
    EXPECT_EQ(e.sign(), ref_sign) << a << "*" << b << "-" << c << "*" << d;
    // The estimate reproduces the exact value when it fits in a double.
    if (ref > -(static_cast<__int128>(1) << 52) &&
        ref < (static_cast<__int128>(1) << 52)) {
      EXPECT_EQ(e.estimate(), static_cast<double>(static_cast<long long>(ref)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionExactness,
                         ::testing::Values(11u, 12u, 13u, 14u));

// --- mixed insert/remove fuzz against full Delaunay verification ---------

class MixedOpsFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(MixedOpsFuzz, SequentialRandomProgramKeepsInvariants) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> u(0.05, 0.95);
  std::uniform_int_distribution<int> coin(0, 9);

  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1 << 14, 1 << 17);
  OpScratch s;
  std::vector<VertexId> alive;
  int inserts = 0, removes = 0;
  for (int step = 0; step < 300; ++step) {
    if (!alive.empty() && coin(rng) < 3) {
      std::uniform_int_distribution<std::size_t> pick(0, alive.size() - 1);
      const std::size_t i = pick(rng);
      if (remove_vertex(mesh, alive[i], 0, s).status == OpStatus::Success) {
        alive[i] = alive.back();
        alive.pop_back();
        ++removes;
      }
    } else {
      const OpResult r = insert_point(mesh, {u(rng), u(rng), u(rng)},
                                      VertexKind::Circumcenter, 0, 0, s);
      if (r.status == OpStatus::Success) {
        alive.push_back(r.new_vertex);
        ++inserts;
      }
    }
  }
  EXPECT_GT(inserts, 150);
  EXPECT_GT(removes, 20);
  EXPECT_EQ(mesh.check_integrity(/*check_delaunay=*/true), "");
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-9);
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    ASSERT_EQ(mesh.vertex(v).owner.load(), -1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedOpsFuzz,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u,
                                           106u));

class ParallelMixedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMixedFuzz, ThreadSweepKeepsInvariants) {
  const int threads = GetParam();
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1 << 16, 1 << 19);
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&mesh, t, threads] {
      OpScratch s;
      std::mt19937 rng(900 + t);
      std::uniform_real_distribution<double> u(0.05, 0.95);
      std::vector<VertexId> mine;
      for (int i = 0; i < 600 / threads + 50; ++i) {
        if (!mine.empty() && i % 5 == 4) {
          if (remove_vertex(mesh, mine.back(), t, s).status ==
              OpStatus::Success) {
            mine.pop_back();
          }
        } else {
          const OpResult r = insert_point(mesh, {u(rng), u(rng), u(rng)},
                                          VertexKind::Circumcenter, 0, t, s);
          if (r.status == OpStatus::Success) mine.push_back(r.new_vertex);
        }
        if (i % 8 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mesh.check_integrity(true), "");
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelMixedFuzz,
                         ::testing::Values(2, 3, 4, 6, 8));

// --- locate after churn ----------------------------------------------------

TEST(LocateProperty, AlwaysFindsContainingCellAfterChurn) {
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1 << 14, 1 << 17);
  OpScratch s;
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0.05, 0.95);
  std::vector<VertexId> alive;
  for (int i = 0; i < 200; ++i) {
    const OpResult r = insert_point(mesh, {u(rng), u(rng), u(rng)},
                                    VertexKind::Circumcenter, 0, 0, s);
    if (r.status == OpStatus::Success) alive.push_back(r.new_vertex);
  }
  for (std::size_t i = 0; i < alive.size(); i += 2) {
    remove_vertex(mesh, alive[i], 0, s);
  }
  const CellId start = any_alive_cell(mesh, 0);
  for (int i = 0; i < 300; ++i) {
    const Vec3 p{u(rng), u(rng), u(rng)};
    const LocateResult loc = locate_point(mesh, p, start);
    ASSERT_TRUE(loc.ok);
    ASSERT_TRUE(mesh.cell_alive(loc.cell));
    const auto pos = mesh.positions(loc.cell);
    for (int f = 0; f < 4; ++f) {
      EXPECT_GE(orient3d(pos[kFaceOf[f][0]], pos[kFaceOf[f][1]],
                         pos[kFaceOf[f][2]], p),
                0);
    }
  }
}

// --- spatial grid vs brute force ------------------------------------------

class GridVsBrute : public ::testing::TestWithParam<unsigned> {};

TEST_P(GridVsBrute, QueriesMatchBruteForce) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> u(0.0, 50.0);
  const Aabb box{{0, 0, 0}, {50, 50, 50}};
  SpatialHashGrid grid(box, 3.0);
  std::vector<std::pair<Vec3, VertexId>> reference;

  for (int step = 0; step < 600; ++step) {
    const int action = step % 10;
    if (action < 6 || reference.empty()) {
      const Vec3 p{u(rng), u(rng), u(rng)};
      const VertexId id = static_cast<VertexId>(step);
      grid.insert(p, id);
      reference.emplace_back(p, id);
    } else if (action < 8) {
      std::uniform_int_distribution<std::size_t> pick(0, reference.size() - 1);
      const std::size_t i = pick(rng);
      EXPECT_TRUE(grid.remove(reference[i].first, reference[i].second));
      reference[i] = reference.back();
      reference.pop_back();
    } else {
      const Vec3 q{u(rng), u(rng), u(rng)};
      std::uniform_real_distribution<double> rad(0.1, 3.0);
      const double r = rad(rng);
      bool brute = false;
      std::size_t brute_count = 0;
      for (const auto& [p, id] : reference) {
        if (distance2(p, q) < r * r) {
          brute = true;
          ++brute_count;
        }
      }
      EXPECT_EQ(grid.any_within(q, r), brute);
      std::vector<std::pair<Vec3, VertexId>> got;
      grid.collect_within(q, r, got);
      EXPECT_EQ(got.size(), brute_count);
    }
  }
  EXPECT_EQ(grid.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridVsBrute,
                         ::testing::Values(21u, 22u, 23u, 24u));

// --- point-triangle distance vs dense sampling ------------------------------

TEST(PointTriangleProperty, MatchesDenseSampling) {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> u(-2, 2);
  for (int iter = 0; iter < 200; ++iter) {
    const Vec3 a{u(rng), u(rng), u(rng)}, b{u(rng), u(rng), u(rng)},
        c{u(rng), u(rng), u(rng)}, p{u(rng), u(rng), u(rng)};
    const double got = point_triangle_distance(p, a, b, c);
    double brute = std::numeric_limits<double>::infinity();
    const int n = 60;
    for (int i = 0; i <= n; ++i) {
      for (int j = 0; j <= n - i; ++j) {
        const double s = double(i) / n, t = double(j) / n;
        brute = std::min(brute, distance(p, a + s * (b - a) + t * (c - a)));
      }
    }
    EXPECT_LE(got, brute + 1e-9);           // never larger than any sample
    EXPECT_GE(got, brute - 0.2);            // sampling is a coarse upper bound
  }
}

// --- EDT exactness with anisotropic spacing ---------------------------------

class AnisoEdt : public ::testing::TestWithParam<unsigned> {};

TEST_P(AnisoEdt, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  const int n = 10;
  std::uniform_real_distribution<double> sp(0.3, 3.0);
  LabeledImage3D img(n, n, n, {sp(rng), sp(rng), sp(rng)});
  std::uniform_int_distribution<int> bit(0, 5);
  for (auto& l : img.raw()) l = bit(rng) == 0 ? 1 : 0;
  const FeatureTransform ft = FeatureTransform::compute(img, 2);
  if (!ft.has_surface()) return;
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const Voxel v{x, y, z};
        const Voxel f = ft.nearest_surface_voxel(v);
        ASSERT_GE(f.x, 0);
        const double got = distance(img.voxel_center(v), img.voxel_center(f));
        double best = std::numeric_limits<double>::infinity();
        for (int zz = 0; zz < n; ++zz)
          for (int yy = 0; yy < n; ++yy)
            for (int xx = 0; xx < n; ++xx)
              if (img.is_surface_voxel({xx, yy, zz}))
                best = std::min(best, distance(img.voxel_center(v),
                                               img.voxel_center({xx, yy, zz})));
        ASSERT_NEAR(got, best, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnisoEdt, ::testing::Values(41u, 42u, 43u));

// --- incremental LocalDelaunay API ------------------------------------------

TEST(LocalDelaunayIncremental, AddPointsAndVolume) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  LocalDelaunay dt(box);
  ASSERT_TRUE(dt.ok());
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(0.1, 0.9);
  int added = 0;
  for (int i = 0; i < 100; ++i) {
    const int idx = dt.add_point({u(rng), u(rng), u(rng)});
    if (idx >= 0) {
      ++added;
      EXPECT_EQ(idx, 4 + added - 1);  // dense indices after the 4 aux corners
      EXPECT_FALSE(dt.last_created().empty());
    }
  }
  EXPECT_GT(added, 95);
  // Duplicate fails and leaves the structure intact.
  const int before = static_cast<int>(dt.tets().size());
  Vec3 dup = dt.point(4);
  EXPECT_EQ(dt.add_point(dup), -1);
  EXPECT_EQ(static_cast<int>(dt.tets().size()), before);
}

}  // namespace
}  // namespace pi2m
