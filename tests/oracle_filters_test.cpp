// Conservativeness of the O(1) EDT prefilters and coverage for the
// remaining small utilities. The prefilters gate the expensive oracle
// queries in rule classification: a false negative would make the refiner
// silently skip required fidelity work, so these properties are
// load-bearing for correctness, not just performance.
#include <gtest/gtest.h>

#include <atomic>
#include <random>

#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "imaging/isosurface.hpp"
#include "imaging/phantom.hpp"
#include "runtime/stats.hpp"
#include "support/parallel_for.hpp"

namespace pi2m {
namespace {

class FilterConservativeness : public ::testing::TestWithParam<unsigned> {};

TEST_P(FilterConservativeness, BallFilterNeverFalseNegative) {
  const LabeledImage3D img = phantom::random_blobs(24, GetParam(), 3, 2);
  const IsosurfaceOracle oracle(img, 1);
  std::mt19937 rng(GetParam() * 31 + 7);
  std::uniform_real_distribution<double> u(-2.0, 26.0);
  std::uniform_real_distribution<double> rad(0.1, 12.0);
  int exact_hits = 0;
  for (int i = 0; i < 400; ++i) {
    const Vec3 c{u(rng), u(rng), u(rng)};
    const double r = rad(rng);
    const bool exact = oracle.ball_intersects_surface(c, r);
    if (exact) {
      ++exact_hits;
      // The cheap filter must never reject a ball the exact test accepts.
      EXPECT_TRUE(oracle.ball_may_intersect_surface(c, r))
          << "false negative at (" << c.x << "," << c.y << "," << c.z
          << ") r=" << r;
    }
  }
  EXPECT_GT(exact_hits, 30);  // the sweep actually exercised the property
}

TEST_P(FilterConservativeness, SegmentFilterNeverFalseNegative) {
  const LabeledImage3D img = phantom::random_blobs(24, GetParam() + 100, 3, 2);
  const IsosurfaceOracle oracle(img, 1);
  std::mt19937 rng(GetParam() * 17 + 3);
  std::uniform_real_distribution<double> u(0.0, 24.0);
  int crossings = 0;
  for (int i = 0; i < 400; ++i) {
    const Vec3 a{u(rng), u(rng), u(rng)}, b{u(rng), u(rng), u(rng)};
    if (oracle.segment_surface_intersection(a, b).has_value()) {
      ++crossings;
      EXPECT_TRUE(oracle.segment_may_intersect_surface(a, b))
          << "false negative for segment";
    }
  }
  EXPECT_GT(crossings, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterConservativeness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(FilterLowerBound, NeverExceedsTrueDistance) {
  const LabeledImage3D img = phantom::concentric_shells(24);
  const IsosurfaceOracle oracle(img, 1);
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> u(0.0, 23.0);
  for (int i = 0; i < 300; ++i) {
    const Vec3 p{u(rng), u(rng), u(rng)};
    const auto q = oracle.closest_surface_point(p);
    ASSERT_TRUE(q.has_value());
    // d_lb is a *lower* bound on the distance to the surface; since the
    // oracle's surface point is itself an approximation, allow its small
    // quantization slack.
    EXPECT_LE(oracle.surface_distance_lower_bound(p),
              distance(p, *q) + 1e-9);
  }
}

// --- fast-path insertion API -------------------------------------------------

TEST(InsertInConflict, StaleGenerationRejected) {
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1000, 4000);
  OpScratch s;
  const std::uint32_t gen0 = mesh.cell_gen(0);
  ASSERT_EQ(insert_point(mesh, {0.4, 0.4, 0.4}, VertexKind::Circumcenter, 0, 0,
                         s).status,
            OpStatus::Success);
  // Cell 0 was retired by the insertion: a conflict-start with the stale
  // generation must come back Stale, not corrupt anything.
  const OpResult r = insert_point_in_conflict(
      mesh, {0.6, 0.6, 0.6}, VertexKind::Circumcenter, 0, gen0, 0, s);
  EXPECT_EQ(r.status, OpStatus::Stale);
  EXPECT_EQ(mesh.check_integrity(true), "");
}

TEST(InsertInConflict, WrongConflictClaimFails) {
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1000, 4000);
  OpScratch s;
  // Point far outside cell 0's circumsphere? All initial cells' circumspheres
  // cover the whole box, so instead claim conflict with a *duplicate* of an
  // existing vertex (exactly on the sphere -> not in conflict).
  const OpResult r = insert_point_in_conflict(mesh, {0, 0, 1}, /* box corner */
                                              VertexKind::Circumcenter, 0,
                                              mesh.cell_gen(0), 0, s);
  EXPECT_EQ(r.status, OpStatus::Failed);
  EXPECT_EQ(mesh.check_integrity(true), "");
}

TEST(InsertInConflict, MatchesWalkingPathResults) {
  // Both APIs must produce Delaunay triangulations of the same point set.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> u(0.1, 0.9);
  std::vector<Vec3> pts(120);
  for (Vec3& p : pts) p = {u(rng), u(rng), u(rng)};

  DelaunayMesh a({{0, 0, 0}, {1, 1, 1}}, 1 << 12, 1 << 15);
  DelaunayMesh b({{0, 0, 0}, {1, 1, 1}}, 1 << 12, 1 << 15);
  // One scratch per mesh: the scratch's cell free-list is mesh-specific.
  OpScratch sa, sb;
  std::size_t ok_a = 0, ok_b = 0;
  for (const Vec3& p : pts) {
    ok_a += insert_point(a, p, VertexKind::Circumcenter, 0, 0, sa).status ==
            OpStatus::Success;
    // Conflict-seed with the cell containing p (found via locate): any
    // conflicting cell works.
    const LocateResult loc = locate_point(b, p, any_alive_cell(b, 0));
    ASSERT_TRUE(loc.ok);
    ok_b += insert_point_in_conflict(b, p, VertexKind::Circumcenter, loc.cell,
                                     b.cell_gen(loc.cell), 0, sb).status ==
            OpStatus::Success;
  }
  EXPECT_EQ(ok_a, ok_b);
  EXPECT_EQ(a.check_integrity(true), "");
  EXPECT_EQ(b.check_integrity(true), "");
  EXPECT_EQ(a.count_alive_cells(), b.count_alive_cells());
}

// --- small utilities ---------------------------------------------------------

TEST(ParallelBlocks, CoversRangeExactlyOnce) {
  for (const int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_blocks(hits.size(), threads, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
  // Empty range: no calls with non-empty blocks.
  parallel_blocks(0, 4, [](std::size_t b, std::size_t e) {
    ASSERT_EQ(b, e);
  });
}

TEST(StatsAggregate, SumsAcrossThreads) {
  std::vector<ThreadStats> stats(3);
  stats[0].operations.store(10);
  stats[1].operations.store(20);
  stats[2].rollbacks.store(5);
  stats[0].add_contention(1.0);
  stats[1].add_loadbalance(0.5);
  stats[2].add_rollback_time(0.25);
  stats[1].steals_inter_blade.store(7);
  const StatsTotals t = aggregate(stats);
  EXPECT_EQ(t.operations, 30u);
  EXPECT_EQ(t.rollbacks, 5u);
  EXPECT_NEAR(t.contention_sec, 1.0, 1e-6);
  EXPECT_NEAR(t.loadbalance_sec, 0.5, 1e-6);
  EXPECT_NEAR(t.rollback_sec, 0.25, 1e-6);
  EXPECT_NEAR(t.total_overhead_sec(), 1.75, 1e-6);
  EXPECT_EQ(t.total_steals(), 7u);
}

}  // namespace
}  // namespace pi2m
