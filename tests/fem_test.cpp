#include "fem/laplace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/pi2m.hpp"
#include "imaging/phantom.hpp"

namespace pi2m {
namespace {

TetMesh unit_tet() {
  TetMesh m;
  m.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  m.point_kinds.assign(4, VertexKind::Isosurface);
  m.tets = {{0, 1, 2, 3}};
  m.tet_labels = {1};
  m.boundary_tris = {{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}};
  return m;
}

TEST(Stiffness, UnitTetKnownMatrix) {
  const fem::CsrMatrix k = fem::assemble_stiffness(unit_tet());
  ASSERT_EQ(k.rows(), 4u);

  auto entry = [&](std::uint32_t r, std::uint32_t c) {
    for (std::uint32_t i = k.row_ptr[r]; i < k.row_ptr[r + 1]; ++i) {
      if (k.col[i] == c) return k.val[i];
    }
    return 0.0;
  };
  // Known P1 stiffness of the unit corner tet: K00 = |grad l0|^2 * V =
  // 3 * (1/6) = 1/2; K11 = K22 = K33 = 1/6; K0i = -1/6; Kij (i,j>0) = 0.
  EXPECT_NEAR(entry(0, 0), 0.5, 1e-12);
  for (int i = 1; i < 4; ++i) {
    EXPECT_NEAR(entry(0, i), -1.0 / 6.0, 1e-12);
    EXPECT_NEAR(entry(i, 0), -1.0 / 6.0, 1e-12);
    EXPECT_NEAR(entry(i, i), 1.0 / 6.0, 1e-12);
  }
  EXPECT_NEAR(entry(1, 2), 0.0, 1e-12);
  // Row sums vanish (constants are in the kernel of -∆).
  for (std::uint32_t r = 0; r < 4; ++r) {
    double s = 0.0;
    for (std::uint32_t i = k.row_ptr[r]; i < k.row_ptr[r + 1]; ++i) {
      s += k.val[i];
    }
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
}

TEST(Stiffness, RowSumsVanishOnRealMesh) {
  const LabeledImage3D img = phantom::ball(24, 0.7);
  MeshingOptions opt;
  opt.delta = 2.2;
  const MeshingResult res = mesh_image(img, opt);
  ASSERT_TRUE(res.ok());
  const fem::CsrMatrix k = fem::assemble_stiffness(res.mesh);
  for (std::size_t r = 0; r < k.rows(); ++r) {
    double s = 0.0, diag = 0.0;
    for (std::uint32_t i = k.row_ptr[r]; i < k.row_ptr[r + 1]; ++i) {
      s += k.val[i];
      if (k.col[i] == r) diag = k.val[i];
    }
    EXPECT_NEAR(s, 0.0, 1e-9 * std::max(1.0, diag));
    EXPECT_GT(diag, 0.0);
  }
}

TEST(CsrMatrix, Multiply) {
  // 2x2: [[2,-1],[-1,2]]
  fem::CsrMatrix m;
  m.row_ptr = {0, 2, 4};
  m.col = {0, 1, 0, 1};
  m.val = {2, -1, -1, 2};
  std::vector<double> y;
  m.multiply({1.0, 3.0}, y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
}

class HarmonicRecovery : public ::testing::TestWithParam<int> {};

TEST_P(HarmonicRecovery, LinearFunctionsAreReproducedExactly) {
  // P1 elements reproduce affine functions exactly: with Dirichlet data
  // g = alpha.p + c, the solve must return g at every node up to solver
  // tolerance, on any mesh.
  const int axis = GetParam();
  const LabeledImage3D img = phantom::ball(24, 0.7);
  MeshingOptions opt;
  opt.delta = 2.2;
  opt.threads = 2;
  const MeshingResult res = mesh_image(img, opt);
  ASSERT_TRUE(res.ok());

  fem::DirichletProblem problem;
  problem.boundary_value = [axis](const Vec3& p) { return p[axis] + 1.0; };
  const fem::SolveResult sol = fem::solve_laplace(res.mesh, problem, 1e-10);
  ASSERT_TRUE(sol.converged) << "iters=" << sol.iterations;

  double max_err = 0.0;
  for (std::size_t v = 0; v < res.mesh.points.size(); ++v) {
    max_err = std::max(max_err,
                       std::abs(sol.u[v] - (res.mesh.points[v][axis] + 1.0)));
  }
  EXPECT_LT(max_err, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Axes, HarmonicRecovery, ::testing::Values(0, 1, 2));

TEST(SolveLaplace, ConstantBoundaryGivesConstantField) {
  const LabeledImage3D img = phantom::ball(20, 0.7);
  MeshingOptions opt;
  opt.delta = 2.5;
  const MeshingResult res = mesh_image(img, opt);
  ASSERT_TRUE(res.ok());
  fem::DirichletProblem problem;
  problem.boundary_value = [](const Vec3&) { return 42.0; };
  const fem::SolveResult sol = fem::solve_laplace(res.mesh, problem);
  ASSERT_TRUE(sol.converged);
  for (const double u : sol.u) EXPECT_NEAR(u, 42.0, 1e-6);
}

TEST(SolveLaplace, EmptyMesh) {
  fem::DirichletProblem problem;
  problem.boundary_value = [](const Vec3&) { return 0.0; };
  const fem::SolveResult sol = fem::solve_laplace(TetMesh{}, problem);
  EXPECT_TRUE(sol.converged);
  EXPECT_TRUE(sol.u.empty());
}

}  // namespace
}  // namespace pi2m
