#include "core/refiner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/pi2m.hpp"
#include "geometry/tetra.hpp"
#include "imaging/phantom.hpp"

namespace pi2m {
namespace {

RefinerOptions base_options(double delta, int threads) {
  RefinerOptions opt;
  opt.threads = threads;
  opt.rules.delta = delta;
  opt.max_vertices = std::size_t{1} << 20;
  opt.max_cells = std::size_t{1} << 22;
  opt.watchdog_sec = 60.0;
  return opt;
}

/// Quality / fidelity assertions every refined mesh must satisfy.
void check_refined(Refiner& refiner, const RefineOutcome& out) {
  ASSERT_TRUE(out.completed) << "livelock=" << out.livelocked
                             << " budget=" << out.budget_exhausted;
  EXPECT_GT(out.mesh_cells, 0u);

  DelaunayMesh& mesh = refiner.mesh();
  // Invariants: adjacency + orientation always; the full Delaunay check is
  // quadratic so only run it for small meshes.
  const bool small = out.alive_cells < 4000;
  EXPECT_EQ(mesh.check_integrity(small), "");

  // The triangulation must still tile the virtual box.
  const Vec3 ext = mesh.box().extent();
  EXPECT_NEAR(mesh.total_volume(), ext.x * ext.y * ext.z,
              1e-6 * ext.x * ext.y * ext.z);

  // No leaked vertex locks.
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    ASSERT_EQ(mesh.vertex(v).owner.load(), -1) << "leaked lock " << v;
  }

  // Quality: elements of the final mesh (circumcenter inside O) satisfy the
  // radius-edge bound. The theory guarantees rho <= 2; floating point can
  // nudge individual elements slightly above (paper §7 notes the same), so
  // assert a small tolerance and that violations are rare.
  const auto& oracle = refiner.oracle();
  std::size_t elements = 0, rho_violations = 0;
  mesh.for_each_alive_cell([&](CellId c) {
    const auto p = mesh.positions(c);
    const Circumsphere cs = circumsphere(p[0], p[1], p[2], p[3]);
    if (!cs.valid || !oracle.inside(cs.center)) return;
    ++elements;
    const double rho = radius_edge_ratio(p[0], p[1], p[2], p[3]);
    if (rho > refiner.options().rules.rho_bound * 1.05) ++rho_violations;
  });
  EXPECT_EQ(elements, out.mesh_cells);
  EXPECT_LE(rho_violations, elements / 50 + 2)
      << rho_violations << " of " << elements << " elements exceed the bound";
}

TEST(RefinerSeq, BallPhantomTerminatesWithQuality) {
  const LabeledImage3D img = phantom::ball(24, 0.7);
  Refiner refiner(img, base_options(/*delta=*/2.5, /*threads=*/1));
  const RefineOutcome out = refiner.refine();
  check_refined(refiner, out);
  EXPECT_GT(out.rule_counts[static_cast<int>(Rule::R1)], 0u);
  EXPECT_GT(out.vertices, 8u);
}

TEST(RefinerSeq, MultiLabelShellsRecoverBothInterfaces) {
  const LabeledImage3D img = phantom::concentric_shells(24);
  Refiner refiner(img, base_options(2.5, 1));
  const RefineOutcome out = refiner.refine();
  check_refined(refiner, out);

  // Extraction must contain both labels and interface triangles.
  const TetMesh tm = extract_mesh(refiner.mesh(), refiner.oracle(), 1);
  bool has1 = false, has2 = false;
  for (Label l : tm.tet_labels) {
    has1 = has1 || l == 1;
    has2 = has2 || l == 2;
  }
  EXPECT_TRUE(has1);
  EXPECT_TRUE(has2);
  EXPECT_GT(tm.boundary_tris.size(), 0u);
}

TEST(RefinerSeq, SurfaceVerticesLieOnIsosurface) {
  const LabeledImage3D img = phantom::ball(24, 0.7);
  Refiner refiner(img, base_options(2.5, 1));
  const RefineOutcome out = refiner.refine();
  ASSERT_TRUE(out.completed);

  // Every Isosurface/SurfaceCenter vertex must lie on the isosurface. The
  // oracle's own closest_surface_point is voxel-quantized (it refines from
  // the nearest surface *voxel*), so the distance it reports for a point
  // already on ∂O can be up to about one voxel diagonal; use that bound and
  // additionally verify the analytic sphere distance, which is exact.
  const auto& oracle = refiner.oracle();
  const DelaunayMesh& mesh = refiner.mesh();
  const Vec3 c{(24 - 1) * 0.5, (24 - 1) * 0.5, (24 - 1) * 0.5};
  const double r = 0.7 * (24 - 1) * 0.5;
  std::size_t surface_vertices = 0;
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    const Vertex& vert = mesh.vertex(v);
    if (vert.dead.load() || !on_surface(vert.kind)) continue;
    ++surface_vertices;
    const auto q = oracle.closest_surface_point(vert.pos);
    ASSERT_TRUE(q.has_value());
    // This self-distance is bounded by ~1.5 voxel diagonals: feature-voxel
    // quantization plus the sideways axis-refinement fallback. The precise
    // on-surface property is asserted by the analytic check below.
    EXPECT_LT(distance(vert.pos, *q), 1.5 * std::sqrt(3.0)) << "vertex " << v;
    // Voxelized sphere boundary lies within half a voxel diagonal of the
    // analytic sphere; bisection adds sub-voxel error.
    EXPECT_NEAR(distance(vert.pos, c), r, 1.1) << "vertex " << v;
  }
  EXPECT_GT(surface_vertices, 20u);
}

TEST(RefinerSeq, DeltaControlsMeshSize) {
  const LabeledImage3D img = phantom::ball(24, 0.7);
  Refiner coarse(img, base_options(4.0, 1));
  Refiner fine(img, base_options(2.0, 1));
  const RefineOutcome oc = coarse.refine();
  const RefineOutcome of = fine.refine();
  ASSERT_TRUE(oc.completed);
  ASSERT_TRUE(of.completed);
  // Halving delta multiplies the element count by roughly 8 (volume
  // argument, paper §6.3); demand at least 3x to keep the test robust.
  EXPECT_GT(of.mesh_cells, 3 * oc.mesh_cells);
}

TEST(RefinerSeq, SizeFunctionDrivesR5) {
  const LabeledImage3D img = phantom::ball(24, 0.7);
  RefinerOptions opt = base_options(3.0, 1);
  RefinerOptions opt_sized = base_options(3.0, 1);
  opt_sized.rules.size_fn = sizing::uniform(2.0);
  Refiner plain(img, opt);
  Refiner sized(img, opt_sized);
  const RefineOutcome op = plain.refine();
  const RefineOutcome os = sized.refine();
  ASSERT_TRUE(op.completed);
  ASSERT_TRUE(os.completed);
  EXPECT_GT(os.rule_counts[static_cast<int>(Rule::R5)], 0u);
  EXPECT_GT(os.mesh_cells, op.mesh_cells);
}

TEST(RefinerSeq, RemovalsHappen) {
  const LabeledImage3D img = phantom::ball(28, 0.7);
  RefinerOptions opt = base_options(2.0, 1);
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  ASSERT_TRUE(out.completed);
  // R6 removals fire during surface recovery (a few % of operations in the
  // paper; nonzero here).
  EXPECT_GT(out.totals.removals, 0u);
}

class RefinerParallel
    : public ::testing::TestWithParam<std::tuple<int, CmKind, LbKind>> {};

TEST_P(RefinerParallel, MatchesSequentialInvariants) {
  const auto [threads, cm, lb] = GetParam();
  const LabeledImage3D img = phantom::concentric_shells(20);
  RefinerOptions opt = base_options(2.5, threads);
  opt.cm = cm;
  opt.lb = lb;
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  check_refined(refiner, out);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RefinerParallel,
    ::testing::Values(
        std::make_tuple(2, CmKind::Local, LbKind::HWS),
        std::make_tuple(4, CmKind::Local, LbKind::HWS),
        std::make_tuple(4, CmKind::Local, LbKind::RWS),
        std::make_tuple(4, CmKind::Global, LbKind::HWS),
        std::make_tuple(4, CmKind::Global, LbKind::RWS),
        std::make_tuple(4, CmKind::Random, LbKind::HWS),
        std::make_tuple(3, CmKind::Aggressive, LbKind::RWS),
        std::make_tuple(8, CmKind::Local, LbKind::HWS)));

TEST(RefinerParallelSched, MutexSchedulerMatchesInvariants) {
  // The escape hatch (--mutex-scheduler) must pass the exact same
  // invariants as the default lock-free scheduler.
  const LabeledImage3D img = phantom::concentric_shells(20);
  RefinerOptions opt = base_options(2.5, 4);
  opt.mutex_scheduler = true;
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  check_refined(refiner, out);
}

TEST(RefinerParallelSched, PinAndAutoTopologySmoke) {
  // --pin + --topology=auto on whatever host runs the tests: pinning is
  // best-effort and must never affect the result invariants.
  const LabeledImage3D img = phantom::ball(20, 0.7);
  RefinerOptions opt = base_options(2.5, 2);
  opt.pin = true;
  opt.topology_auto = true;
  opt.park_spin_us = 0;  // park immediately: exercises the timed-park path
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  check_refined(refiner, out);
}

TEST(RefinerParallelLarge, EightThreadsAbdominalPhantom) {
  const LabeledImage3D img = phantom::abdominal(32, 32, 32);
  RefinerOptions opt = base_options(2.0, 8);
  opt.topology = {2, 2};  // 2 cores/socket, 2 sockets/blade -> 2 blades
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  check_refined(refiner, out);
  // With 8 threads on a 2-blade virtual topology some work must have been
  // balanced; the begging lists should have seen traffic.
  EXPECT_GT(out.totals.total_steals(), 0u);
}

TEST(MeshImage, PublicApiEndToEnd) {
  const LabeledImage3D img = phantom::ball(20, 0.7);
  MeshingOptions opt;
  opt.delta = 2.5;
  opt.threads = 2;
  const MeshingResult res = mesh_image(img, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res.mesh.num_tets(), 0u);
  EXPECT_EQ(res.mesh.tets.size(), res.mesh.tet_labels.size());
  EXPECT_GT(res.mesh.boundary_tris.size(), 0u);
  // All point indices must be in range.
  for (const auto& t : res.mesh.tets) {
    for (std::uint32_t v : t) EXPECT_LT(v, res.mesh.num_points());
  }
  for (const auto& f : res.mesh.boundary_tris) {
    for (std::uint32_t v : f) EXPECT_LT(v, res.mesh.num_points());
  }
}

}  // namespace
}  // namespace pi2m
