#include "predicates/predicates.hpp"

#include <gtest/gtest.h>

#include <random>

#include "predicates/expansion.hpp"

namespace pi2m {
namespace {

using exact::Expansion;

TEST(Expansion, TwoSumExactness) {
  double x, y;
  exact::two_sum(1e30, 1.0, x, y);
  EXPECT_EQ(x, 1e30);
  EXPECT_EQ(y, 1.0);  // the small addend is preserved exactly in the tail
}

TEST(Expansion, TwoProdExactness) {
  double x, y;
  const double a = 1.0 + 1e-8, b = 1.0 - 1e-8;
  exact::two_prod(a, b, x, y);
  // x + y must equal a*b exactly: verify via long double reference.
  const long double ref = static_cast<long double>(a) * b;
  EXPECT_EQ(static_cast<long double>(x) + y, ref);
}

TEST(Expansion, SumAndScale) {
  Expansion e = Expansion(1e20) + Expansion(1.0);
  EXPECT_EQ(e.size(), 2u);
  EXPECT_EQ(e.sign(), 1);
  Expansion d = e - e;
  EXPECT_TRUE(d.is_zero());
  EXPECT_EQ(d.sign(), 0);
  Expansion n = e.negated();
  EXPECT_EQ(n.sign(), -1);
  EXPECT_EQ((e + n).sign(), 0);
}

TEST(Expansion, ProductMatchesLongDoubleOnSmallValues) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(-1e3, 1e3);
  for (int i = 0; i < 1000; ++i) {
    const double a = u(rng), b = u(rng), c = u(rng);
    const Expansion p = (Expansion(a) + Expansion(b)) * Expansion(c);
    const long double ref =
        (static_cast<long double>(a) + b) * static_cast<long double>(c);
    // The estimate is within one ulp; the sign is exact.
    EXPECT_EQ(p.sign(), (ref > 0) - (ref < 0));
    EXPECT_NEAR(static_cast<double>(p.estimate()), static_cast<double>(ref),
                1e-9 * std::abs(static_cast<double>(ref)) + 1e-300);
  }
}

TEST(Orient3d, BasicOrientation) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  EXPECT_GT(orient3d(a, b, c, {0, 0, -1}), 0);
  EXPECT_LT(orient3d(a, b, c, {0, 0, 1}), 0);
  EXPECT_EQ(orient3d(a, b, c, {0.3, 0.3, 0}), 0);
}

TEST(Orient3d, SignFlipsUnderSwap) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> u(-1, 1);
  for (int i = 0; i < 500; ++i) {
    const Vec3 a{u(rng), u(rng), u(rng)}, b{u(rng), u(rng), u(rng)};
    const Vec3 c{u(rng), u(rng), u(rng)}, d{u(rng), u(rng), u(rng)};
    EXPECT_EQ(orient3d(a, b, c, d), -orient3d(b, a, c, d));
  }
}

TEST(Orient3d, ExactOnNearDegenerate) {
  // Points nearly coplanar: the double filter cannot decide, the exact path
  // must. Build an exactly-coplanar triple plus a perturbed one whose offset
  // is representable.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  const double tiny = std::ldexp(1.0, -60);
  EXPECT_EQ(orient3d(a, b, c, {0.5, 0.5, 0.0}), 0);
  EXPECT_LT(orient3d(a, b, c, {0.5, 0.5, tiny}), 0);
  EXPECT_GT(orient3d(a, b, c, {0.5, 0.5, -tiny}), 0);
}

TEST(Orient3d, TranslationallyConsistentNearDegeneracy) {
  // A classic robustness trap: evaluate the same geometric configuration
  // shifted far from the origin.
  const double tiny = std::ldexp(1.0, -45);
  const double big = std::ldexp(1.0, 20);
  const Vec3 shift{big, -3 * big, 2 * big};
  const Vec3 a{0, 0, 0}, b{12, 12, 12}, c{24, 24, 24 + tiny}, d{1, 2, 3};
  const int s1 = orient3d(a, b, c, d);
  const int s2 = orient3d(a + shift, b + shift, c + shift, d + shift);
  // Near the origin the 2^-45 z-offset makes the determinant a tiny but
  // exactly-representable nonzero (12 * 2^-45); after the large translation
  // the offset is absorbed by rounding, making (a,b,c) exactly collinear ->
  // coplanar with any d. Both answers are exact for the stored coordinates.
  EXPECT_GT(s1, 0);
  EXPECT_EQ(s2, 0);
}

TEST(Insphere, UnitTetrahedron) {
  // Ordered positively under this library's convention.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 0, 1}, d{0, 1, 0};
  ASSERT_GT(orient3d(a, b, c, d), 0);
  EXPECT_GT(insphere(a, b, c, d, {0.25, 0.25, 0.25}), 0);
  EXPECT_LT(insphere(a, b, c, d, {10, 10, 10}), 0);
  // A vertex is exactly on the circumsphere.
  EXPECT_EQ(insphere(a, b, c, d, a), 0);
  // The point diagonally opposite the origin on the circumsphere (the
  // circumsphere of this tet has center (0.5,0.5,0.5)).
  EXPECT_EQ(insphere(a, b, c, d, {1, 1, 1}), 0);
}

TEST(Insphere, CosphericalExactZero) {
  // Eight cube corners are cospherical: any 4 + another corner give 0.
  const Vec3 p000{0, 0, 0}, p100{1, 0, 0}, p010{0, 1, 0}, p001{0, 0, 1};
  const Vec3 p111{1, 1, 1}, p110{1, 1, 0};
  ASSERT_GT(orient3d(p000, p100, p001, p010), 0);
  EXPECT_EQ(insphere(p000, p100, p001, p010, p111), 0);
  EXPECT_EQ(insphere(p000, p100, p001, p010, p110), 0);
}

TEST(Insphere, RandomAgreesWithNaiveWhenWellSeparated) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(-10, 10);
  int checked = 0;
  for (int i = 0; i < 2000; ++i) {
    Vec3 a{u(rng), u(rng), u(rng)}, b{u(rng), u(rng), u(rng)};
    Vec3 c{u(rng), u(rng), u(rng)}, d{u(rng), u(rng), u(rng)};
    if (orient3d(a, b, c, d) < 0) std::swap(a, b);
    if (orient3d(a, b, c, d) <= 0) continue;
    const Vec3 e{u(rng), u(rng), u(rng)};
    // Naive reference: compare |e - center| with radius via circumsphere.
    const Vec3 ba = b - a, ca = c - a, da = d - a;
    const Vec3 cbc = cross(ba, ca);
    const double denom = 2.0 * dot(cbc, da);
    if (std::abs(denom) < 1e-6) continue;
    const Vec3 num = norm2(da) * cbc + norm2(ca) * cross(da, ba) +
                     norm2(ba) * cross(ca, da);
    const Vec3 center = a + num / denom;
    const double r2 = norm2(center - a);
    const double d2 = norm2(center - e);
    if (std::abs(d2 - r2) < 1e-6 * r2) continue;  // too close to call naively
    EXPECT_EQ(insphere(a, b, c, d, e) > 0, d2 < r2);
    ++checked;
  }
  EXPECT_GT(checked, 500);
}

TEST(PredicateCounters, ExactPathIsRare) {
  reset_predicate_counters();
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> u(-1, 1);
  for (int i = 0; i < 1000; ++i) {
    const Vec3 a{u(rng), u(rng), u(rng)}, b{u(rng), u(rng), u(rng)};
    const Vec3 c{u(rng), u(rng), u(rng)}, d{u(rng), u(rng), u(rng)};
    orient3d(a, b, c, d);
  }
  const auto pc = predicate_counters();
  EXPECT_EQ(pc.orient3d_calls, 1000u);
  EXPECT_LT(pc.orient3d_exact, 10u);  // random inputs almost never degenerate
}

}  // namespace
}  // namespace pi2m
