// Tests for mesh validation, binary serialization, the vascular phantom,
// and a configuration sweep of full refinements.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/pi2m.hpp"
#include "core/validate.hpp"
#include "imaging/phantom.hpp"
#include "io/mesh_serialize.hpp"

namespace pi2m {
namespace {

MeshingResult quick_mesh(const LabeledImage3D& img, double delta,
                         int threads = 1) {
  MeshingOptions opt;
  opt.delta = delta;
  opt.threads = threads;
  return mesh_image(img, opt);
}

TEST(Validate, CleanMeshPasses) {
  const MeshingResult res = quick_mesh(phantom::ball(24, 0.7), 2.2, 2);
  ASSERT_TRUE(res.ok());
  const MeshValidation v = validate_mesh(res.mesh);
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
  EXPECT_EQ(v.connected_components, 1u);
}

TEST(Validate, MultiComponentCounted) {
  LabeledImage3D img(36, 16, 16);
  const Vec3 c1{7, 7.5, 7.5}, c2{28, 7.5, 7.5};
  for (int z = 0; z < 16; ++z)
    for (int y = 0; y < 16; ++y)
      for (int x = 0; x < 36; ++x) {
        const Vec3 p{double(x), double(y), double(z)};
        if (distance2(p, c1) < 20 || distance2(p, c2) < 20)
          img.at({x, y, z}) = 1;
      }
  const MeshingResult res = quick_mesh(img, 1.6);
  ASSERT_TRUE(res.ok());
  const MeshValidation v = validate_mesh(res.mesh);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.connected_components, 2u);
}

TEST(Validate, DetectsCorruption) {
  MeshingResult res = quick_mesh(phantom::ball(20, 0.7), 2.5);
  ASSERT_TRUE(res.ok());
  {
    TetMesh bad = res.mesh;
    bad.tets[0][1] = static_cast<std::uint32_t>(bad.points.size());  // OOB
    EXPECT_FALSE(validate_mesh(bad).ok);
  }
  {
    TetMesh bad = res.mesh;
    bad.tet_labels[0] = 0;  // background element
    EXPECT_FALSE(validate_mesh(bad).ok);
  }
  {
    TetMesh bad = res.mesh;
    bad.boundary_tris.push_back(bad.boundary_tris.front());  // duplicate
    EXPECT_FALSE(validate_mesh(bad).ok);
  }
  {
    TetMesh bad = res.mesh;
    bad.tets.pop_back();  // some interior face becomes exposed & unlisted
    bad.tet_labels.pop_back();
    EXPECT_FALSE(validate_mesh(bad).ok);
  }
  {
    TetMesh bad = res.mesh;
    bad.points[bad.tets[0][0]] = bad.points[bad.tets[0][1]];  // degenerate
    EXPECT_FALSE(validate_mesh(bad).ok);
  }
}

TEST(Validate, EmptyMeshIsValid) {
  const MeshValidation v = validate_mesh(TetMesh{});
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.connected_components, 0u);
}

TEST(Serialize, RoundTrip) {
  const MeshingResult res = quick_mesh(phantom::concentric_shells(22), 2.4, 2);
  ASSERT_TRUE(res.ok());
  const std::string path = ::testing::TempDir() + "/mesh.p2m";
  ASSERT_TRUE(io::save_mesh(res.mesh, path));

  std::string error;
  const auto back = io::load_mesh(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->points.size(), res.mesh.points.size());
  EXPECT_EQ(back->tets, res.mesh.tets);
  EXPECT_EQ(back->tet_labels, res.mesh.tet_labels);
  EXPECT_EQ(back->boundary_tris, res.mesh.boundary_tris);
  for (std::size_t i = 0; i < back->points.size(); ++i) {
    EXPECT_EQ(back->points[i], res.mesh.points[i]);  // bit-exact
    EXPECT_EQ(back->point_kinds[i], res.mesh.point_kinds[i]);
  }
  EXPECT_TRUE(validate_mesh(*back).ok);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.p2m";
  std::string error;
  EXPECT_FALSE(io::load_mesh("/no/such/file.p2m", &error).has_value());
  {
    std::ofstream(path, std::ios::binary) << "not a mesh at all";
    EXPECT_FALSE(io::load_mesh(path, &error).has_value());
    EXPECT_NE(error.find("magic"), std::string::npos);
  }
  {
    // Valid magic, truncated body.
    std::ofstream out(path, std::ios::binary);
    out.write("PI2MMSH1", 8);
    const std::uint64_t huge = 1ull << 40;
    out.write(reinterpret_cast<const char*>(&huge), 8);
  }
  EXPECT_FALSE(io::load_mesh(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(Vessels, ThinStructuresRecovered) {
  const LabeledImage3D img = phantom::vessels(48, 2);
  ASSERT_EQ(img.labels_present().size(), 3u);
  const MeshingResult res = quick_mesh(img, 1.2, 2);
  ASSERT_TRUE(res.ok());
  std::size_t lumen = 0, wall = 0, tissue = 0;
  for (const Label l : res.mesh.tet_labels) {
    lumen += l == 1;
    wall += l == 2;
    tissue += l == 3;
  }
  // All three compartments meshed, including the thin vessel wall.
  EXPECT_GT(lumen, 50u);
  EXPECT_GT(wall, 100u);
  EXPECT_GT(tissue, 500u);
  EXPECT_TRUE(validate_mesh(res.mesh).ok);
}

// --- full-pipeline configuration sweep --------------------------------------

struct SweepCase {
  const char* phantom;
  double delta;
  int threads;
};

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweep, MeshesValidateAcrossConfigs) {
  const SweepCase c = GetParam();
  LabeledImage3D img;
  const std::string name = c.phantom;
  if (name == "ball") img = phantom::ball(26, 0.7);
  if (name == "shells") img = phantom::concentric_shells(26);
  if (name == "abdominal") img = phantom::abdominal(26, 26, 26);
  if (name == "knee") img = phantom::knee(26, 26, 26);
  if (name == "vessels") img = phantom::vessels(30, 1);

  const MeshingResult res = quick_mesh(img, c.delta, c.threads);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res.mesh.num_tets(), 0u);
  const MeshValidation v = validate_mesh(res.mesh);
  EXPECT_TRUE(v.ok) << name << ": "
                    << (v.errors.empty() ? "" : v.errors.front());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineSweep,
    ::testing::Values(SweepCase{"ball", 3.0, 1}, SweepCase{"ball", 1.6, 4},
                      SweepCase{"shells", 2.4, 1}, SweepCase{"shells", 2.4, 4},
                      SweepCase{"abdominal", 2.0, 2},
                      SweepCase{"abdominal", 1.4, 8},
                      SweepCase{"knee", 2.0, 2}, SweepCase{"knee", 1.4, 4},
                      SweepCase{"vessels", 1.4, 2}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.phantom) + "_d" +
             std::to_string(int(info.param.delta * 10)) + "_t" +
             std::to_string(info.param.threads);
    });

}  // namespace
}  // namespace pi2m
