// Heavier concurrency torture: long mixed workloads at high (oversubscribed)
// thread counts with full invariant verification. These run a few seconds
// each — they are the closest this suite gets to the paper's 100+-core
// adversarial interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "core/refiner.hpp"
#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "imaging/phantom.hpp"

namespace pi2m {
namespace {

// Sanitizer instrumentation deschedules threads for long stretches while they
// hold vertex locks, so speculative operations abort with Conflict far more
// often than in a plain build. Progress floors shrink accordingly; the
// integrity / volume / lock-leak invariants stay at full strength.
#ifdef PI2M_UNDER_SANITIZER
constexpr std::uint64_t kProgressDiv = 10;
#else
constexpr std::uint64_t kProgressDiv = 1;
#endif

TEST(Torture, SixteenThreadsMixedOpsOnKernel) {
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1 << 17, 1 << 20);
  constexpr int kThreads = 16;
  std::atomic<std::uint64_t> inserts{0}, removes{0}, conflicts{0};

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      OpScratch s;
      std::mt19937 rng(5000 + t);
      std::uniform_real_distribution<double> u(0.02, 0.98);
      std::vector<VertexId> mine;
      CellId hint = 0;
      for (int i = 0; i < 500; ++i) {
        if (!mine.empty() && i % 3 == 2) {
          const OpResult r = remove_vertex(mesh, mine.back(), t, s);
          if (r.status == OpStatus::Success) {
            mine.pop_back();
            removes.fetch_add(1, std::memory_order_relaxed);
          } else if (r.status == OpStatus::Conflict) {
            conflicts.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          const OpResult r = insert_point(mesh, {u(rng), u(rng), u(rng)},
                                          VertexKind::Circumcenter, hint, t, s);
          if (r.status == OpStatus::Success) {
            mine.push_back(r.new_vertex);
            inserts.fetch_add(1, std::memory_order_relaxed);
            hint = s.created.front();
          } else if (r.status == OpStatus::Conflict) {
            conflicts.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_GT(inserts.load(), 3000u / kProgressDiv);
  EXPECT_GT(removes.load(), 500u / kProgressDiv);
  EXPECT_EQ(mesh.check_integrity(/*check_delaunay=*/true), "");
  EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-9);
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    ASSERT_EQ(mesh.vertex(v).owner.load(), -1) << "leaked lock on " << v;
  }
}

TEST(Torture, RefinerSixteenThreadsEveryConfig) {
  // One substantial refinement per CM at 16 threads, all invariants on.
  const LabeledImage3D img = phantom::abdominal(36, 36, 36);
  for (const CmKind cm :
       {CmKind::Random, CmKind::Global, CmKind::Local}) {
    RefinerOptions opt;
    opt.threads = 16;
    opt.topology = {2, 2};
    opt.rules.delta = 1.4;
    opt.cm = cm;
    opt.watchdog_sec = 60.0;
    Refiner refiner(img, opt);
    const RefineOutcome out = refiner.refine();
    ASSERT_TRUE(out.completed) << to_string(cm);
    EXPECT_EQ(refiner.mesh().check_integrity(false), "") << to_string(cm);
    const Vec3 ext = refiner.mesh().box().extent();
    EXPECT_NEAR(refiner.mesh().total_volume(), ext.x * ext.y * ext.z,
                1e-6 * ext.x * ext.y * ext.z)
        << to_string(cm);
    for (VertexId v = 0; v < refiner.mesh().vertex_count(); ++v) {
      ASSERT_EQ(refiner.mesh().vertex(v).owner.load(), -1)
          << to_string(cm) << " leaked lock " << v;
    }
  }
}

TEST(Torture, RepeatedRefinementsAreConsistent) {
  // Same input meshed repeatedly (different thread counts) must agree on
  // the element count within a small tolerance: the mesh is not literally
  // deterministic under concurrency, but the refinement rules pin the
  // density.
  const LabeledImage3D img = phantom::concentric_shells(28);
  std::vector<std::size_t> counts;
  for (const int threads : {1, 4, 16}) {
    RefinerOptions opt;
    opt.threads = threads;
    opt.rules.delta = 1.6;
    Refiner refiner(img, opt);
    const RefineOutcome out = refiner.refine();
    ASSERT_TRUE(out.completed);
    counts.push_back(out.mesh_cells);
  }
  for (const std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), static_cast<double>(counts[0]),
                0.15 * counts[0]);
  }
}

}  // namespace
}  // namespace pi2m
