// Cross-module integration: the full image -> mesh -> metrics -> export
// pipeline, plus refiner failure modes (op budget) and extraction
// consistency properties.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "baselines/plc_mesher.hpp"
#include "baselines/seq_mesher.hpp"
#include "core/pi2m.hpp"
#include "geometry/tetra.hpp"
#include "imaging/phantom.hpp"
#include "io/writers.hpp"
#include "metrics/hausdorff.hpp"
#include "metrics/quality.hpp"

namespace pi2m {
namespace {

TEST(Integration, FullPipelineKneePhantom) {
  const LabeledImage3D img = phantom::knee(40, 40, 40);
  MeshingOptions opt;
  opt.delta = 1.6;
  opt.threads = 4;
  const MeshingResult res = mesh_image(img, opt);
  ASSERT_TRUE(res.ok());
  ASSERT_GT(res.mesh.num_tets(), 500u);

  // 1. All four knee tissues present.
  std::set<Label> labels(res.mesh.tet_labels.begin(),
                         res.mesh.tet_labels.end());
  EXPECT_GE(labels.size(), 4u);
  EXPECT_EQ(labels.count(0), 0u);

  // 2. Quality report coherent with options.
  const QualityReport q = evaluate_quality(res.mesh);
  EXPECT_EQ(q.num_tets, res.mesh.num_tets());
  EXPECT_LE(q.max_radius_edge, opt.radius_edge_bound * 1.05);
  EXPECT_GT(q.total_volume, 0.0);

  // 3. Fidelity measurable and bounded.
  const IsosurfaceOracle oracle(img, 2);
  const HausdorffResult h = hausdorff_distance(res.mesh, oracle, 2);
  EXPECT_GT(h.symmetric(), 0.0);
  EXPECT_LT(h.symmetric(), 10.0);

  // 4. Export and re-read: counts must round-trip.
  const std::string path = ::testing::TempDir() + "/integration.vtk";
  ASSERT_TRUE(io::write_vtk(res.mesh, path));
  std::ifstream in(path);
  std::string line;
  bool found_points = false, found_cells = false;
  while (std::getline(in, line)) {
    if (line.rfind("POINTS", 0) == 0) {
      found_points = true;
      std::istringstream ss(line);
      std::string kw;
      std::size_t n = 0;
      ss >> kw >> n;
      EXPECT_EQ(n, res.mesh.num_points());
    }
    if (line.rfind("CELLS", 0) == 0) {
      found_cells = true;
      std::istringstream ss(line);
      std::string kw;
      std::size_t n = 0;
      ss >> kw >> n;
      EXPECT_EQ(n, res.mesh.num_tets());
    }
  }
  EXPECT_TRUE(found_points);
  EXPECT_TRUE(found_cells);
  std::remove(path.c_str());
}

TEST(Integration, ExtractionConsistency) {
  const LabeledImage3D img = phantom::concentric_shells(24);
  RefinerOptions opt;
  opt.threads = 2;
  opt.rules.delta = 2.0;
  Refiner refiner(img, opt);
  ASSERT_TRUE(refiner.refine().completed);
  const TetMesh tm = extract_mesh(refiner.mesh(), refiner.oracle(), 2);

  // Every tet positively "oriented" in the |volume| sense and labelled.
  ASSERT_EQ(tm.tets.size(), tm.tet_labels.size());
  for (std::size_t i = 0; i < tm.tets.size(); ++i) {
    const auto& t = tm.tets[i];
    const double vol = signed_volume(tm.points[t[0]], tm.points[t[1]],
                                     tm.points[t[2]], tm.points[t[3]]);
    EXPECT_GT(std::abs(vol), 0.0);
    EXPECT_NE(tm.tet_labels[i], 0);
  }

  // Every boundary triangle is a face of at least one kept tet, and the
  // triangle multiset has no duplicates (each interface emitted once).
  std::set<std::array<std::uint32_t, 3>> tet_faces;
  for (const auto& t : tm.tets) {
    const int f[4][3] = {{1, 3, 2}, {0, 2, 3}, {0, 3, 1}, {0, 1, 2}};
    for (const auto& fi : f) {
      std::array<std::uint32_t, 3> key{t[fi[0]], t[fi[1]], t[fi[2]]};
      std::sort(key.begin(), key.end());
      tet_faces.insert(key);
    }
  }
  std::set<std::array<std::uint32_t, 3>> seen;
  for (const auto& b : tm.boundary_tris) {
    std::array<std::uint32_t, 3> key{b[0], b[1], b[2]};
    std::sort(key.begin(), key.end());
    EXPECT_TRUE(tet_faces.count(key)) << "boundary tri not a tet face";
    EXPECT_TRUE(seen.insert(key).second) << "duplicate boundary tri";
  }

  // point_kinds parallel to points; surface triangles use surface vertices
  // almost exclusively (box corners never appear in the kept mesh).
  ASSERT_EQ(tm.point_kinds.size(), tm.points.size());
  for (const auto& b : tm.boundary_tris) {
    for (const std::uint32_t v : b) {
      EXPECT_NE(tm.point_kinds[v], VertexKind::Box);
    }
  }
}

TEST(Integration, OpBudgetAbortsCleanly) {
  const LabeledImage3D img = phantom::ball(24, 0.7);
  RefinerOptions opt;
  opt.threads = 2;
  opt.rules.delta = 1.0;
  opt.op_budget = 50;  // far too small to finish
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  EXPECT_FALSE(out.completed);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_FALSE(out.livelocked);
  // The mesh must still be structurally sound mid-refinement.
  EXPECT_EQ(refiner.mesh().check_integrity(false), "");
}

TEST(Integration, TimelineRecordsMonotonicSamples) {
  const LabeledImage3D img = phantom::ball(28, 0.7);
  RefinerOptions opt;
  opt.threads = 4;
  opt.rules.delta = 1.2;
  opt.record_timeline = true;
  opt.timeline_period_sec = 0.005;
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  ASSERT_TRUE(out.completed);
  double last_wall = -1, last_overhead = -1;
  std::uint64_t last_ops = 0;
  for (const TimelineSample& s : out.timeline) {
    EXPECT_GT(s.wall_sec, last_wall);
    const double oh = s.contention_sec + s.loadbalance_sec + s.rollback_sec;
    EXPECT_GE(oh, last_overhead);
    EXPECT_GE(s.operations, last_ops);
    last_wall = s.wall_sec;
    last_overhead = oh;
    last_ops = s.operations;
  }
}

TEST(Integration, BaselinesAgreeOnVolume) {
  // PI2M, the sequential reference, and the PLC mesher must all fill
  // (approximately) the same object volume for the same input.
  const LabeledImage3D img = phantom::ball(32, 0.7);
  std::size_t fg = 0;
  for (Label l : img.raw()) fg += l != 0;
  const double vox_volume = static_cast<double>(fg);

  MeshingOptions popt;
  popt.delta = 1.6;
  popt.threads = 2;
  const MeshingResult pres = mesh_image(img, popt);
  ASSERT_TRUE(pres.ok());
  EXPECT_NEAR(evaluate_quality(pres.mesh).total_volume, vox_volume,
              0.15 * vox_volume);

  baselines::SeqMesherOptions sopt;
  sopt.delta = 1.6;
  const auto sres = baselines::mesh_image_reference(img, sopt);
  ASSERT_TRUE(sres.completed);
  EXPECT_NEAR(evaluate_quality(sres.mesh).total_volume, vox_volume,
              0.15 * vox_volume);

  const IsosurfaceOracle oracle(img, 1);
  baselines::PlcMesherOptions qopt;
  qopt.protect_radius = 1.4;
  const auto qres = baselines::mesh_volume_from_surface(pres.mesh, oracle, qopt);
  ASSERT_TRUE(qres.completed);
  EXPECT_NEAR(evaluate_quality(qres.mesh).total_volume, vox_volume,
              0.15 * vox_volume);
}

}  // namespace
}  // namespace pi2m
