// Tests for the telemetry subsystem: event rings + spans, overflow
// behaviour, multithreaded emission (run under TSan via the `sanitize`
// label), Chrome trace export, the metrics registry, and the run manifest.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/json_writer.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/run_manifest.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace pi2m::telemetry;

// --- minimal JSON validity checker (recursive descent, RFC 8259 shape) ---

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class TelemetryTest : public ::testing::Test {
 protected:
  // Every test starts from a closed session; rings from prior tests are
  // invalidated by the next begin().
  void TearDown() override { end(); }
};

#if PI2M_TELEMETRY_ENABLED

TEST_F(TelemetryTest, SpanNestingAndOrdering) {
  begin(1024);
  set_thread_name("tester");
  {
    Span outer("outer", "test");
    instant("mark", "test", "value", 7);
    {
      Span inner("inner", "test");
      inner.set_arg("n", 3);
    }
  }
  end();

  const auto evs = snapshot();
  ASSERT_EQ(evs.size(), 3u);
  // snapshot() sorts by start timestamp: outer starts first, then the
  // instant, then the inner span.
  EXPECT_EQ(evs[0].name, "outer");
  EXPECT_EQ(evs[1].name, "mark");
  EXPECT_TRUE(evs[1].is_instant);
  EXPECT_EQ(evs[1].arg_name, "value");
  EXPECT_EQ(evs[1].arg, 7u);
  EXPECT_EQ(evs[2].name, "inner");
  EXPECT_EQ(evs[2].arg, 3u);
  EXPECT_EQ(evs[0].thread, "tester");
  // Time containment: inner lies inside outer (what Perfetto nests by).
  EXPECT_GE(evs[2].ts_ns, evs[0].ts_ns);
  EXPECT_LE(evs[2].ts_ns + evs[2].dur_ns, evs[0].ts_ns + evs[0].dur_ns);
}

TEST_F(TelemetryTest, SpanCloseEndsEarlyAndIsIdempotent) {
  begin(64);
  {
    Span s("early", "test");
    s.close();
    s.close();  // second close records nothing
    instant("after_close", "test");
  }  // destructor after close() records nothing either
  end();
  const auto evs = snapshot();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].name, "early");
  // The span ended at close(), before the instant was emitted.
  EXPECT_LE(evs[0].ts_ns + evs[0].dur_ns, evs[1].ts_ns);
}

TEST_F(TelemetryTest, NoSessionMeansNoEvents) {
  // Events of a previously *ended* session stay exportable, so only the
  // delta matters: emission without an active session buffers nothing.
  ASSERT_FALSE(active());
  const std::size_t before = event_count();
  instant("dropped", "test");
  { Span s("dropped_span", "test"); }
  EXPECT_EQ(event_count(), before);
}

TEST_F(TelemetryTest, EmissionAfterEndIsIgnored) {
  begin(64);
  instant("kept", "test");
  end();
  instant("late", "test");
  const auto evs = snapshot();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "kept");
}

TEST_F(TelemetryTest, RingOverflowDropsOldest) {
  begin(64);
  for (std::uint64_t i = 0; i < 200; ++i) {
    instant("tick", "test", "i", i);
  }
  end();
  EXPECT_EQ(event_count(), 64u);
  EXPECT_EQ(dropped_events(), 200u - 64u);
  const auto evs = snapshot();
  ASSERT_EQ(evs.size(), 64u);
  // Drop-oldest: the survivors are exactly the last 64 emissions, in order.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].arg, 200u - 64u + i);
  }
}

TEST_F(TelemetryTest, SessionRestartResetsBuffers) {
  begin(64);
  for (int i = 0; i < 100; ++i) instant("first", "test");
  end();
  EXPECT_GT(dropped_events(), 0u);

  begin(64);
  EXPECT_EQ(event_count(), 0u);
  EXPECT_EQ(dropped_events(), 0u);
  instant("second", "test");
  end();
  const auto evs = snapshot();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "second");
}

TEST_F(TelemetryTest, MultithreadedEmission) {
  // Run under TSan via `ctest -L sanitize`: concurrent emission into
  // per-thread rings must be race-free.
  constexpr int kThreads = 4;
  constexpr int kEvents = 1000;
  begin(4096);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      set_thread_name("emitter " + std::to_string(t));
      for (int i = 0; i < kEvents; ++i) {
        Span s("work", "test");
        s.set_arg("i", static_cast<std::uint64_t>(i));
        if (i % 3 == 0) instant("tick", "test");
      }
    });
  }
  for (auto& th : pool) th.join();
  end();

  const auto evs = snapshot();
  std::size_t spans = 0, ticks = 0;
  for (const auto& e : evs) {
    if (e.name == "work") ++spans;
    if (e.name == "tick") ++ticks;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads) * kEvents);
  EXPECT_EQ(ticks, static_cast<std::size_t>(kThreads) * ((kEvents + 2) / 3));
  EXPECT_EQ(dropped_events(), 0u);
  // Export is globally sorted by timestamp.
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_GE(evs[i].ts_ns, evs[i - 1].ts_ns);
  }
}

TEST_F(TelemetryTest, ChromeTraceParsesAndIsNonEmpty) {
  begin(256);
  set_thread_name("main");
  {
    Span s("phase.test", "phase");
    instant("event", "test", "arg", 42);
  }
  end();

  const std::string path = ::testing::TempDir() + "pi2m_trace_test.json";
  ASSERT_TRUE(write_chrome_trace(path));
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  // Trace-event essentials: the array, a complete event, an instant, the
  // thread-name metadata, and the drop counter.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"phase.test\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"main\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\":0"), std::string::npos);
}

#else  // !PI2M_TELEMETRY_ENABLED

TEST_F(TelemetryTest, CompiledOutEmissionIsInert) {
  begin(64);
  instant("nothing", "test");
  { Span s("nothing_span", "test"); }
  end();
  EXPECT_EQ(event_count(), 0u);
  // The export API still produces valid (empty) JSON.
  const std::string text = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
}

#endif  // PI2M_TELEMETRY_ENABLED

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistryTest, KindsAndFallbacks) {
  MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  r.set("a.count", 41);               // integral -> U64
  r.set("a.ratio", 0.5);              // double  -> F64
  r.set("a.ok", true);                // bool    -> Bool
  r.set_u64("a.big", std::uint64_t{1} << 40);
  r.set("a.negative", -3);            // clamps to 0
  EXPECT_EQ(r.size(), 5u);

  EXPECT_EQ(r.u64("a.count"), 41u);
  EXPECT_DOUBLE_EQ(r.f64("a.ratio"), 0.5);
  EXPECT_TRUE(r.flag("a.ok"));
  EXPECT_EQ(r.u64("a.big"), std::uint64_t{1} << 40);
  EXPECT_EQ(r.u64("a.negative"), 0u);

  // Cross-kind numeric views and fallbacks for absent names.
  EXPECT_DOUBLE_EQ(r.f64("a.count"), 41.0);
  EXPECT_EQ(r.u64("a.ok"), 1u);
  EXPECT_EQ(r.u64("missing", 9), 9u);
  EXPECT_DOUBLE_EQ(r.f64("missing", 2.5), 2.5);
  EXPECT_TRUE(r.flag("missing", true));
  EXPECT_FALSE(r.has("missing"));

  // Overwrite changes kind.
  r.set("a.count", 1.5);
  EXPECT_DOUBLE_EQ(r.f64("a.count"), 1.5);
}

TEST(MetricsRegistryTest, MergeAndJson) {
  MetricsRegistry a, b;
  a.set("x", 1);
  a.set("y", 2);
  b.set("y", 3);  // b wins the tie on merge
  b.set("z", 0.25);
  a.merge(b);
  EXPECT_EQ(a.u64("y"), 3u);
  EXPECT_EQ(a.size(), 3u);

  const std::string json = a.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"x\":1"), std::string::npos);
  EXPECT_NE(json.find("\"z\":0.25"), std::string::npos);
}

TEST(JsonWriterTest, EscapesAndNonFinite) {
  JsonWriter w;
  w.begin_object();
  w.key("text");
  w.value(std::string_view("a\"b\\c\nd\x01"));
  w.key("inf");
  w.value(1.0 / 0.0);
  w.key("nan");
  w.value(0.0 / 0.0);
  w.end_object();
  const std::string json = w.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\"inf\":\"inf\""), std::string::npos);
  EXPECT_NE(json.find("\"nan\":\"nan\""), std::string::npos);
}

// --- RunManifest ----------------------------------------------------------

TEST(RunManifestTest, WriteAndSchema) {
  RunManifest man;
  man.tool = "telemetry_test";
  man.set_config("threads", 4);
  man.set_config("delta", 1.5);
  man.set_config("phantom", "ball");
  man.add_phase("edt", 0.25);
  man.add_phase("refine", 1.75);
  man.metrics.set("refine.operations", 1234);
  man.notes = "unit test";

  const std::string path = ::testing::TempDir() + "pi2m_manifest_test.json";
  ASSERT_TRUE(man.write(path));
  const std::string text = slurp(path);
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"schema\":\"pi2m-manifest\""), std::string::npos);
  EXPECT_NE(text.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(text.find("\"tool\":\"telemetry_test\""), std::string::npos);
  EXPECT_NE(text.find("\"threads\":\"4\""), std::string::npos);
  EXPECT_NE(text.find("\"edt\":0.25"), std::string::npos);
  EXPECT_NE(text.find("\"refine.operations\":1234"), std::string::npos);
  EXPECT_NE(text.find("\"notes\":\"unit test\""), std::string::npos);
  EXPECT_NE(text.find("\"git\":"), std::string::npos);
  EXPECT_NE(text.find("\"timestamp\":"), std::string::npos);
  EXPECT_NE(text.find("\"hardware_threads\":"), std::string::npos);

  // Phase order is insertion order (edt before refine).
  EXPECT_LT(text.find("\"edt\""), text.find("\"refine\""));
}

}  // namespace
