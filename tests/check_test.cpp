// Tests for the correctness-hardening subsystem (src/check/) and the
// degeneracy fixes it flushed out: the oplog recorder + sequential replayer,
// canonical snapshots, the invariant auditor, and the point-triangle /
// validate_mesh / MHA-reader degenerate-input bugs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "check/auditor.hpp"
#include "check/oplog.hpp"
#include "check/replay.hpp"
#include "check/snapshot.hpp"
#include "core/refiner.hpp"
#include "core/validate.hpp"
#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "imaging/phantom.hpp"
#include "io/image_io.hpp"
#include "metrics/hausdorff.hpp"
#include "predicates/predicates.hpp"

namespace pi2m {
namespace {

// ---------------------------------------------------------------------------
// point_segment_distance / point_triangle_distance degeneracy fixes
// ---------------------------------------------------------------------------

TEST(PointSegmentDistance, ClampsAndHandlesDegenerateSegment) {
  const Vec3 a{0, 0, 0}, b{2, 0, 0};
  EXPECT_DOUBLE_EQ(point_segment_distance({1, 1, 0}, a, b), 1.0);  // interior
  EXPECT_DOUBLE_EQ(point_segment_distance({-3, 0, 0}, a, b), 3.0);  // clamp a
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 0, 0}, a, b), 3.0);   // clamp b
  // Zero-length segment: falls back to the point distance, no 0/0.
  const double d = point_segment_distance({3, 4, 0}, a, a);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_DOUBLE_EQ(d, 5.0);
}

TEST(PointTriangleDistance, NonDegenerateRegions) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  EXPECT_DOUBLE_EQ(point_triangle_distance({0.25, 0.25, 2}, a, b, c), 2.0);
  EXPECT_DOUBLE_EQ(point_triangle_distance({-1, -1, 0}, a, b, c),
                   std::sqrt(2.0));                                  // vertex a
  EXPECT_DOUBLE_EQ(point_triangle_distance({0.5, -1, 0}, a, b, c), 1.0);  // ab
}

TEST(PointTriangleDistance, CollinearTriangleIsFiniteAndExact) {
  // Zero-area but vertices distinct: the barycentric denominator va+vb+vc
  // vanishes; the old code divided and returned NaN. The triangle IS the
  // segment [a, c], so the distance must match the segment distance.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{2, 0, 0};
  const Vec3 p{1, 3, 0};
  const double d = point_triangle_distance(p, a, b, c);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_DOUBLE_EQ(d, point_segment_distance(p, a, c));
  EXPECT_DOUBLE_EQ(d, 3.0);
}

TEST(PointTriangleDistance, CoincidentVertexPairIsFinite) {
  // a == b used to hit the t = d1/(d1-d3) edge-region 0/0.
  const Vec3 a{1, 1, 1}, c{4, 1, 1};
  const Vec3 p{2, 2, 1};
  const double d = point_triangle_distance(p, a, a, c);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_DOUBLE_EQ(d, point_segment_distance(p, a, c));
  EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(PointTriangleDistance, FullyCollapsedTriangleIsFinite) {
  const Vec3 a{1, 2, 3};
  const double d = point_triangle_distance({1, 2, 7}, a, a, a);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_DOUBLE_EQ(d, 4.0);
}

// ---------------------------------------------------------------------------
// validate_mesh exact degeneracy / sliver detection
// ---------------------------------------------------------------------------

TetMesh single_tet(const Vec3& d) {
  TetMesh m;
  m.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, d};
  m.point_kinds.assign(4, VertexKind::Isosurface);
  std::array<std::uint32_t, 4> t{0, 1, 2, 3};
  // Orient positively per the kernel convention so the test exercises the
  // degeneracy logic, not the base orientation of the coordinates.
  if (orient3d(m.points[t[0]], m.points[t[1]], m.points[t[2]],
               m.points[t[3]]) < 0) {
    std::swap(t[0], t[1]);
  }
  m.tets = {t};
  m.tet_labels = {1};
  for (const auto& f : kFaceOf) {
    m.boundary_tris.push_back({t[f[0]], t[f[1]], t[f[2]]});
  }
  return m;
}

bool has_error_containing(const MeshValidation& v, const std::string& what) {
  for (const auto& e : v.errors) {
    if (e.find(what) != std::string::npos) return true;
  }
  return false;
}

TEST(ValidateMesh, WellShapedTetPasses) {
  const MeshValidation v = validate_mesh(single_tet({0, 0, 1}));
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
  EXPECT_EQ(v.sliver_elements, 0u);
}

TEST(ValidateMesh, InvertedTetIsRejectedExactly) {
  TetMesh m = single_tet({0, 0, 1});
  std::swap(m.tets[0][0], m.tets[0][1]);  // flip orientation
  const MeshValidation v = validate_mesh(m);
  EXPECT_FALSE(v.ok);
  EXPECT_TRUE(has_error_containing(v, "inverted"));
}

TEST(ValidateMesh, CoplanarTetIsRejectedExactly) {
  // Fourth point exactly in the plane of the first three. The
  // floating-point volume of such a quadruple can round to a tiny nonzero
  // value; only the exact predicate classifies it reliably.
  TetMesh m = single_tet({0.25, 0.25, 0.0});
  const MeshValidation v = validate_mesh(m);
  EXPECT_FALSE(v.ok);
  EXPECT_TRUE(has_error_containing(v, "degenerate"));
}

TEST(ValidateMesh, SliverIsCountedNotFatal) {
  // Positive orientation but volume ~1.7e-15 against a threshold of
  // 1e-12 * diag^3 ~ 2.8e-12: reported as a sliver, not an error.
  const MeshValidation v = validate_mesh(single_tet({0.25, 0.25, 1e-14}));
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
  EXPECT_EQ(v.sliver_elements, 1u);
}

// ---------------------------------------------------------------------------
// MHA reader: byte order + compression rejection
// ---------------------------------------------------------------------------

std::string write_temp(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

std::string ushort_mha_header(const std::string& order_key) {
  return "ObjectType = Image\n"
         "NDims = 3\n"
         "BinaryData = True\n" +
         order_key +
         "CompressedData = False\n"
         "DimSize = 2 2 1\n"
         "ElementSpacing = 1 1 1\n"
         "ElementType = MET_USHORT\n"
         "ElementDataFile = LOCAL\n";
}

TEST(ImageIo, BigEndianUshortIsByteSwapped) {
  std::string raw = ushort_mha_header("BinaryDataByteOrderMSB = True\n");
  for (unsigned lab : {0u, 1u, 2u, 200u}) {
    raw.push_back(static_cast<char>(0));    // MSB first
    raw.push_back(static_cast<char>(lab));  // value in the low byte
  }
  const std::string path = write_temp("be.mha", raw);
  std::string err;
  const auto img = io::read_mha(path, &err);
  ASSERT_TRUE(img.has_value()) << err;
  EXPECT_EQ(img->raw()[0], 0);
  EXPECT_EQ(img->raw()[1], 1);
  EXPECT_EQ(img->raw()[2], 2);
  EXPECT_EQ(img->raw()[3], 200);
}

TEST(ImageIo, LittleEndianUshortAlternateKeySpelling) {
  std::string raw = ushort_mha_header("ElementByteOrderMSB = False\n");
  for (unsigned lab : {7u, 0u, 9u, 1u}) {
    raw.push_back(static_cast<char>(lab));
    raw.push_back(static_cast<char>(0));
  }
  const std::string path = write_temp("le.mha", raw);
  std::string err;
  const auto img = io::read_mha(path, &err);
  ASSERT_TRUE(img.has_value()) << err;
  EXPECT_EQ(img->raw()[0], 7);
  EXPECT_EQ(img->raw()[2], 9);
}

TEST(ImageIo, BigEndianLabelOverflowDetected) {
  // 0x0101 = 257 > 255 only when the swap is honoured; a reader that
  // ignored the MSB flag would read the same value and miss nothing, so
  // use an asymmetric pattern: 0x01 0x2C = 300 big-endian, 11265 little.
  std::string raw = ushort_mha_header("ElementByteOrderMSB = True\n");
  raw.push_back(static_cast<char>(0x01));
  raw.push_back(static_cast<char>(0x2C));
  for (int i = 0; i < 3; ++i) {
    raw.push_back(static_cast<char>(0));
    raw.push_back(static_cast<char>(0));
  }
  const std::string path = write_temp("be_overflow.mha", raw);
  std::string err;
  EXPECT_FALSE(io::read_mha(path, &err).has_value());
  EXPECT_NE(err.find("exceeds 255"), std::string::npos) << err;
}

TEST(ImageIo, CompressedDataIsRejectedWithClearError) {
  const std::string raw =
      "ObjectType = Image\n"
      "NDims = 3\n"
      "BinaryData = True\n"
      "CompressedData = True\n"
      "DimSize = 2 2 1\n"
      "ElementType = MET_UCHAR\n"
      "ElementDataFile = LOCAL\n";
  const std::string path = write_temp("compressed.mha", raw);
  std::string err;
  EXPECT_FALSE(io::read_mha(path, &err).has_value());
  EXPECT_NE(err.find("CompressedData"), std::string::npos) << err;
  EXPECT_NE(err.find("decompress"), std::string::npos) << err;
}

TEST(ImageIo, RoundTripStillWorks) {
  const LabeledImage3D img = phantom::ball(8, 0.6);
  const std::string path = ::testing::TempDir() + "roundtrip.mha";
  ASSERT_TRUE(io::write_mha(img, path));
  std::string err;
  const auto back = io::read_mha(path, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->raw(), img.raw());
}

// ---------------------------------------------------------------------------
// Oplog recorder + canonical snapshots + sequential replay
// ---------------------------------------------------------------------------

Aabb test_box() { return {{0, 0, 0}, {16, 16, 16}}; }

/// Inserts `count` pseudo-random interior points; returns inserted ids.
std::vector<VertexId> insert_random(DelaunayMesh& mesh, std::uint64_t seed,
                                    int count, int tid, OpScratch& scratch) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.5, 15.5);
  std::vector<VertexId> out;
  CellId hint = 0;
  while (static_cast<int>(out.size()) < count) {
    const Vec3 p{u(rng), u(rng), u(rng)};
    const OpResult r =
        insert_point(mesh, p, VertexKind::Circumcenter, hint, tid, scratch);
    if (r.status == OpStatus::Success) {
      out.push_back(r.new_vertex);
      if (!scratch.created.empty()) hint = scratch.created.front();
    } else if (r.status == OpStatus::Failed) {
      continue;  // duplicate/degenerate draw; try another point
    }
  }
  return out;
}

TEST(Oplog, HookIsQuietWithoutSession) {
  const std::size_t before = check::record_count();
  DelaunayMesh mesh(test_box(), 1 << 12, 1 << 14);
  OpScratch scratch;
  insert_random(mesh, 1, 20, /*tid=*/0, scratch);
  EXPECT_FALSE(check::active());
  EXPECT_EQ(check::record_count(), before);
}

#if PI2M_OPLOG_ENABLED

TEST(Oplog, RecordsCommitsInSequenceOrder) {
  DelaunayMesh mesh(test_box(), 1 << 12, 1 << 14);
  OpScratch scratch;
  check::begin();
  const auto ids = insert_random(mesh, 2, 50, /*tid=*/0, scratch);
  // Remove a few of the inserted vertices too.
  int removed = 0;
  for (std::size_t i = 0; i < ids.size() && removed < 5; i += 7) {
    if (remove_vertex(mesh, ids[i], /*tid=*/0, scratch).status ==
        OpStatus::Success) {
      ++removed;
    }
  }
  check::end();

  const auto log = check::snapshot();
  ASSERT_EQ(log.size(), 50u + static_cast<std::size_t>(removed));
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LT(log[i - 1].seq, log[i].seq);
  }
  std::size_t removes = 0;
  for (const auto& r : log) {
    if (r.op == check::OpKind::Remove) ++removes;
    EXPECT_GT(r.cavity, 0u);
  }
  EXPECT_EQ(removes, static_cast<std::size_t>(removed));
}

TEST(Oplog, SaveLoadRoundTrip) {
  DelaunayMesh mesh(test_box(), 1 << 12, 1 << 14);
  OpScratch scratch;
  check::begin();
  insert_random(mesh, 3, 25, /*tid=*/0, scratch);
  check::end();
  const auto log = check::snapshot();

  const std::string path = ::testing::TempDir() + "oplog.bin";
  ASSERT_TRUE(check::save_oplog(log, path));
  std::string err;
  const auto back = check::load_oplog(path, &err);
  ASSERT_TRUE(back.has_value()) << err;
  ASSERT_EQ(back->size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ((*back)[i].point.x, log[i].point.x);
    EXPECT_EQ((*back)[i].point.y, log[i].point.y);
    EXPECT_EQ((*back)[i].point.z, log[i].point.z);
    EXPECT_EQ((*back)[i].seq, log[i].seq);
    EXPECT_EQ((*back)[i].cavity, log[i].cavity);
    EXPECT_EQ((*back)[i].tid, log[i].tid);
    EXPECT_EQ((*back)[i].op, log[i].op);
    EXPECT_EQ((*back)[i].kind, log[i].kind);
  }
}

TEST(Snapshot, CanonicalFormErasesInsertionOrder) {
  // The same point set inserted in opposite orders allocates different
  // vertex/cell ids but builds the same Delaunay complex; the canonical
  // snapshot must not see the difference.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.5, 15.5);
  std::vector<Vec3> pts;
  for (int i = 0; i < 40; ++i) pts.push_back({u(rng), u(rng), u(rng)});

  DelaunayMesh fwd(test_box(), 1 << 12, 1 << 14);
  DelaunayMesh rev(test_box(), 1 << 12, 1 << 14);
  OpScratch s1, s2;
  for (const Vec3& p : pts) {
    ASSERT_EQ(insert_point(fwd, p, VertexKind::Circumcenter, 0, 0, s1).status,
              OpStatus::Success);
  }
  for (auto it = pts.rbegin(); it != pts.rend(); ++it) {
    ASSERT_EQ(insert_point(rev, *it, VertexKind::Circumcenter, 0, 0, s2).status,
              OpStatus::Success);
  }

  const check::MeshSnapshot a = check::snapshot_mesh(fwd);
  const check::MeshSnapshot b = check::snapshot_mesh(rev);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(check::snapshot_bytes(a), check::snapshot_bytes(b));
  EXPECT_EQ(check::snapshot_hash(a), check::snapshot_hash(b));

  const std::string path = ::testing::TempDir() + "snap.bin";
  ASSERT_TRUE(check::save_snapshot(a, path));
  check::MeshSnapshot loaded;
  std::string err;
  ASSERT_TRUE(check::load_snapshot(path, loaded, &err)) << err;
  EXPECT_TRUE(loaded == a);
}

TEST(Replay, SingleThreadRunReplaysByteIdentical) {
  DelaunayMesh mesh(test_box(), 1 << 12, 1 << 14);
  OpScratch scratch;
  check::begin();
  const auto ids = insert_random(mesh, 11, 120, /*tid=*/0, scratch);
  for (std::size_t i = 0; i < ids.size(); i += 9) {
    remove_vertex(mesh, ids[i], /*tid=*/0, scratch);
  }
  check::end();

  const auto log = check::snapshot();
  const check::ReplayOptions opts{.audit_every = 32};
  const check::ReplayResult r = check::replay_oplog(test_box(), log, opts);
  ASSERT_TRUE(r.ok) << r.error << " at op " << r.failed_op;
  EXPECT_EQ(r.applied, log.size());
  EXPECT_TRUE(r.final_audit.ok);

  const check::MeshSnapshot live = check::snapshot_mesh(mesh);
  EXPECT_EQ(check::snapshot_bytes(live), check::snapshot_bytes(r.snapshot));
}

TEST(Replay, FourThreadRunReplaysByteIdentical) {
  DelaunayMesh mesh(test_box(), 1 << 14, 1 << 16);
  constexpr int kThreads = 4;
  check::begin();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&mesh, t] {
      OpScratch scratch;
      std::mt19937_64 rng(100 + t);
      std::uniform_real_distribution<double> u(0.5, 15.5);
      std::vector<VertexId> mine;
      int inserted = 0;
      while (inserted < 150) {
        const Vec3 p{u(rng), u(rng), u(rng)};
        for (int retry = 0; retry < 1000; ++retry) {
          const OpResult r =
              insert_point(mesh, p, VertexKind::Circumcenter, 0, t, scratch);
          if (r.status == OpStatus::Success) {
            mine.push_back(r.new_vertex);
            ++inserted;
            break;
          }
          if (r.status == OpStatus::Failed) break;  // bad draw, new point
        }
      }
      // Sparse removals of this thread's own vertices.
      for (std::size_t i = 0; i < mine.size(); i += 13) {
        for (int retry = 0; retry < 1000; ++retry) {
          const OpStatus st = remove_vertex(mesh, mine[i], t, scratch).status;
          if (st == OpStatus::Success || st == OpStatus::Failed) break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  check::end();

  EXPECT_EQ(mesh.check_integrity(/*check_delaunay=*/false), "");
  const auto log = check::snapshot();
  EXPECT_GE(log.size(), 4u * 150u);

  const check::ReplayOptions opts{.audit_every = 128};
  const check::ReplayResult r = check::replay_oplog(test_box(), log, opts);
  ASSERT_TRUE(r.ok) << r.error << " at op " << r.failed_op;
  const check::MeshSnapshot live = check::snapshot_mesh(mesh);
  EXPECT_EQ(check::snapshot_bytes(live), check::snapshot_bytes(r.snapshot));
  EXPECT_EQ(check::snapshot_hash(live), r.hash);
}

#endif  // PI2M_OPLOG_ENABLED

// ---------------------------------------------------------------------------
// Invariant auditor
// ---------------------------------------------------------------------------

TEST(Auditor, CleanMeshPassesFullAudit) {
  DelaunayMesh mesh(test_box(), 1 << 12, 1 << 14);
  OpScratch scratch;
  insert_random(mesh, 21, 200, /*tid=*/0, scratch);
  check::InvariantAuditor auditor(mesh, /*insphere_sample=*/2);
  const check::AuditReport rep = auditor.audit_full();
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors.front());
  EXPECT_GT(rep.cells_checked, 0u);
  EXPECT_GT(rep.insphere_checked, 0u);

  // Incremental re-audit of an unchanged mesh touches nothing.
  const check::AuditReport inc = auditor.audit_incremental();
  EXPECT_TRUE(inc.ok);
  EXPECT_EQ(inc.cells_checked, 0u);
}

TEST(Auditor, DetectsSeveredAdjacency) {
  DelaunayMesh mesh(test_box(), 1 << 12, 1 << 14);
  OpScratch scratch;
  insert_random(mesh, 22, 100, /*tid=*/0, scratch);

  // Sever an interior face: a kNoCell neighbour whose face vertices are not
  // all Box-kind violates hull conformity, and the (former) neighbour's
  // back-pointer now dangles into an asymmetric pair.
  bool corrupted = false;
  mesh.for_each_alive_cell([&](CellId c) {
    if (corrupted) return;
    Cell& cell = mesh.cell(c);
    for (int f = 0; f < 4 && !corrupted; ++f) {
      if (cell.n[f].load() == kNoCell) continue;
      bool interior = false;
      for (int k = 0; k < 3; ++k) {
        const VertexId v = cell.v[kFaceOf[f][k]];
        if (mesh.vertex(v).kind != VertexKind::Box) interior = true;
      }
      if (!interior) continue;
      cell.n[f].store(kNoCell);
      corrupted = true;
    }
  });
  ASSERT_TRUE(corrupted);

  check::InvariantAuditor auditor(mesh, /*insphere_sample=*/0);
  const check::AuditReport rep = auditor.audit_full();
  EXPECT_FALSE(rep.ok);
  EXPECT_GE(rep.total_violations, 1u);
  ASSERT_FALSE(rep.errors.empty());
}

TEST(Auditor, DetectsDeadVertexReference) {
  DelaunayMesh mesh(test_box(), 1 << 12, 1 << 14);
  OpScratch scratch;
  const auto ids = insert_random(mesh, 23, 50, /*tid=*/0, scratch);

  // Mark a referenced vertex dead without retriangulating its ball.
  mesh.vertex(ids.front()).dead.store(true);
  check::InvariantAuditor auditor(mesh, /*insphere_sample=*/0);
  const check::AuditReport rep = auditor.audit_full();
  EXPECT_FALSE(rep.ok);
  mesh.vertex(ids.front()).dead.store(false);  // restore for dtor sanity
}

// ---------------------------------------------------------------------------
// Refiner integration: audit_final + seeded contention managers
// ---------------------------------------------------------------------------

TEST(RefinerCheck, FinalAuditCleanOnPhantom) {
  const LabeledImage3D img = phantom::ball(16, 0.7);
  RefinerOptions opt;
  opt.threads = 2;
  opt.rules.delta = 3.0;
  opt.max_vertices = std::size_t{1} << 20;
  opt.max_cells = std::size_t{1} << 22;
  opt.watchdog_sec = 60.0;
  opt.audit_final = true;
  opt.rng_seed = 42;
  Refiner refiner(img, opt);
  const RefineOutcome out = refiner.refine();
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.audit_errors.empty())
      << out.audit_errors.size() << " audit errors, first: "
      << out.audit_errors.front();
}

}  // namespace
}  // namespace pi2m
