#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sizing.hpp"
#include "core/spatial_grid.hpp"
#include "runtime/contention.hpp"
#include "runtime/mpsc_inbox.hpp"
#include "runtime/park.hpp"
#include "runtime/stats.hpp"
#include "runtime/topology.hpp"
#include "runtime/workstealing.hpp"
#include "telemetry/collectors.hpp"

namespace pi2m {
namespace {

// --- topology -----------------------------------------------------------

TEST(Topology, BlacklightLayout) {
  const Topology t(32, {8, 2});
  EXPECT_EQ(t.threads_per_socket(), 8);
  EXPECT_EQ(t.threads_per_blade(), 16);
  EXPECT_EQ(t.num_sockets(), 4);
  EXPECT_EQ(t.num_blades(), 2);
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(7), 0);
  EXPECT_EQ(t.socket_of(8), 1);
  EXPECT_EQ(t.blade_of(15), 0);
  EXPECT_EQ(t.blade_of(16), 1);
  EXPECT_TRUE(t.same_socket(0, 7));
  EXPECT_FALSE(t.same_socket(7, 8));
  EXPECT_TRUE(t.same_blade(7, 8));
  EXPECT_FALSE(t.same_blade(15, 16));
}

TEST(Topology, PartialLastSocket) {
  const Topology t(10, {4, 2});
  EXPECT_EQ(t.num_sockets(), 3);
  EXPECT_EQ(t.num_blades(), 2);
}

// --- host topology probe --------------------------------------------------

/// Builds a fake /sys/devices/system/cpu tree: cpus[i] belongs to
/// packages[i].
std::string make_fake_sysfs(const std::vector<int>& packages) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(testing::TempDir()) /
      ("pi2m_sysfs_" + std::to_string(::getpid()) + "_" +
       std::to_string(packages.size()));
  fs::remove_all(root);
  for (std::size_t cpu = 0; cpu < packages.size(); ++cpu) {
    const fs::path topo = root / ("cpu" + std::to_string(cpu)) / "topology";
    fs::create_directories(topo);
    std::ofstream(topo / "physical_package_id") << packages[cpu] << "\n";
  }
  return root.string();
}

TEST(TopologyProbe, TwoPackageHost) {
  // 8 cpus, packages interleaved the way real hosts number HT siblings.
  const std::string root = make_fake_sysfs({0, 0, 0, 0, 1, 1, 1, 1});
  const HostProbe probe = probe_host_topology(root);
  ASSERT_TRUE(probe.ok);
  EXPECT_EQ(probe.spec.cores_per_socket, 4);
  EXPECT_EQ(probe.spec.sockets_per_blade, 2);
  // cpus grouped package-by-package so contiguous tids share a package.
  ASSERT_EQ(probe.cpus.size(), 8u);
  EXPECT_EQ(probe.cpus, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));

  const Topology topo = Topology::from_probe(8, probe);
  EXPECT_TRUE(topo.host_probed());
  EXPECT_EQ(topo.threads_per_socket(), 4);
  EXPECT_TRUE(topo.same_socket(0, 3));
  EXPECT_FALSE(topo.same_socket(3, 4));
  EXPECT_EQ(topo.cpu_of(0), 0);
  EXPECT_EQ(topo.cpu_of(7), 7);
  std::filesystem::remove_all(root);
}

TEST(TopologyProbe, InterleavedPackageIds) {
  // Package ids alternate per cpu (common BIOS numbering): the probe must
  // still group the cpu map so tid blocks land on one package.
  const std::string root = make_fake_sysfs({0, 1, 0, 1});
  const HostProbe probe = probe_host_topology(root);
  ASSERT_TRUE(probe.ok);
  EXPECT_EQ(probe.spec.cores_per_socket, 2);
  EXPECT_EQ(probe.spec.sockets_per_blade, 2);
  EXPECT_EQ(probe.cpus, (std::vector<int>{0, 2, 1, 3}));
  std::filesystem::remove_all(root);
}

TEST(TopologyProbe, MissingSysfsFallsBack) {
  const HostProbe probe =
      probe_host_topology("/nonexistent/pi2m/sysfs/here");
  EXPECT_FALSE(probe.ok);
  // from_probe degrades to the declared Blacklight-style spec with an
  // identity cpu map.
  const Topology topo = Topology::from_probe(4, probe);
  EXPECT_FALSE(topo.host_probed());
  EXPECT_EQ(topo.threads_per_socket(), 8);
  EXPECT_EQ(topo.cpu_of(3), 3);
}

// --- contention managers ------------------------------------------------

struct CmFixture {
  std::atomic<bool> done{false};
  std::atomic<int> idle{0};
  ThreadStats stats;

  CmContext ctx(int n) {
    CmContext c;
    c.done = &done;
    c.idle_threads = &idle;
    c.nthreads = n;
    return c;
  }
};

TEST(ContentionManager, AggressiveNeverBlocks) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Aggressive, f.ctx(4));
  for (int i = 0; i < 100; ++i) cm->on_rollback(0, 1, f.stats);
  EXPECT_EQ(cm->blocked_count(), 0);
  EXPECT_EQ(f.stats.contention_ns.load(), 0u);
}

TEST(ContentionManager, RandomSleepsAfterRPlusRollbacks) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Random, f.ctx(4), /*r_plus=*/3);
  for (int i = 0; i < 3; ++i) cm->on_rollback(0, 1, f.stats);
  EXPECT_EQ(f.stats.contention_ns.load(), 0u);  // not yet over the limit
  cm->on_rollback(0, 1, f.stats);               // 4th consecutive: sleeps
  EXPECT_GT(f.stats.contention_ns.load(), 0u);
  // Success resets the streak.
  cm->on_success(0);
  const auto before = f.stats.contention_ns.load();
  for (int i = 0; i < 3; ++i) cm->on_rollback(0, 1, f.stats);
  EXPECT_EQ(f.stats.contention_ns.load(), before);
}

TEST(ContentionManager, GlobalBlocksAndIsWokenBySuccessStreak) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Global, f.ctx(2), 5, /*s_plus=*/3);
  ThreadStats st1;
  std::thread blocked([&] { cm->on_rollback(1, 0, st1); });
  while (cm->blocked_count() == 0) std::this_thread::yield();
  // Thread 0 makes s_plus consecutive successes -> wakes thread 1.
  for (int i = 0; i < 3; ++i) cm->on_success(0);
  blocked.join();
  EXPECT_EQ(cm->blocked_count(), 0);
  EXPECT_GT(st1.contention_ns.load(), 0u);
}

TEST(ContentionManager, GlobalNeverBlocksLastActiveThread) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Global, f.ctx(2));
  f.idle.store(1);  // the other thread is idle: we are the last active one
  cm->on_rollback(0, 1, f.stats);  // must return immediately
  EXPECT_EQ(cm->blocked_count(), 0);
}

TEST(ContentionManager, LocalBreaksTwoCycle) {
  // T0 -> T1 and T1 -> T0 concurrently: by Lemma 1 at least one must not
  // block; by Lemma 2 (with a 3rd active thread present) at most one runs
  // free. Either way both must eventually return once the free one
  // "progresses".
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Local, f.ctx(3), 5, /*s_plus=*/1);
  ThreadStats st0, st1;
  std::atomic<bool> done0{false}, done1{false};
  std::thread t0([&] {
    cm->on_rollback(0, 1, st0);
    done0 = true;
  });
  std::thread t1([&] {
    cm->on_rollback(1, 0, st1);
    done1 = true;
  });
  // One of them may block; simulate progress of whichever returned.
  const double deadline = now_sec() + 10.0;
  while ((!done0 || !done1) && now_sec() < deadline) {
    if (done0) cm->on_success(0);
    if (done1) cm->on_success(1);
    std::this_thread::yield();
  }
  EXPECT_TRUE(done0 && done1) << "dependency cycle deadlocked";
  t0.join();
  t1.join();
}

TEST(ContentionManager, WakeAllReleasesEveryone) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Local, f.ctx(4), 5, 1000);
  ThreadStats st[2];
  std::thread a([&] { cm->on_rollback(1, 0, st[0]); });
  std::thread b([&] { cm->on_rollback(2, 0, st[1]); });
  while (cm->blocked_count() < 2) std::this_thread::yield();
  cm->wake_all();
  a.join();
  b.join();
  EXPECT_EQ(cm->blocked_count(), 0);
}

// --- load balancers ------------------------------------------------------

TEST(LoadBalancer, RwsFifoOrder) {
  const Topology topo(4, {2, 2});
  auto lb = make_load_balancer(LbKind::RWS, topo);
  EXPECT_FALSE(lb->any_beggar());
  lb->enqueue_beggar(2);
  lb->enqueue_beggar(3);
  StealLevel lvl{};
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 2);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 3);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), -1);
}

TEST(LoadBalancer, HwsPrefersLocality) {
  // 8 threads: sockets {0,1},{2,3},{4,5},{6,7}; blades {0..3},{4..7}.
  const Topology topo(8, {2, 2});
  auto lb = make_load_balancer(LbKind::HWS, topo);
  StealLevel lvl{};

  // Socket-mate begging on BL1 is the giver's first choice.
  lb->enqueue_beggar(1);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 1);
  EXPECT_EQ(lvl, StealLevel::IntraSocket);

  // BL1 of socket 1 holds tps-1 = 1 beggar; the second one overflows into
  // BL2 of blade 0, where giver 0 (other socket, same blade) can see it.
  lb->enqueue_beggar(3);
  lb->enqueue_beggar(2);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 2);
  EXPECT_EQ(lvl, StealLevel::IntraBlade);

  // Fill blade 1's BL1/BL2 so thread 7 overflows into the global BL3,
  // where any giver finds it.
  lb->enqueue_beggar(4);  // BL1 socket 2
  lb->enqueue_beggar(5);  // BL1[2] full -> BL2 blade 1
  lb->enqueue_beggar(6);  // BL1 socket 3
  lb->enqueue_beggar(7);  // BL1[3] full, BL2[1] full -> BL3
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 7);
  EXPECT_EQ(lvl, StealLevel::InterBlade);

  // Thread 3, still on socket 1's BL1, is deliberately invisible to giver
  // 0 (paper §6.1: BL1 is shared only among the threads of one socket).
  EXPECT_EQ(lb->pop_beggar(0, &lvl), -1);
  EXPECT_EQ(lb->pop_beggar(2, &lvl), 3);  // its socket-mate serves it
  EXPECT_EQ(lvl, StealLevel::IntraSocket);
}

TEST(LoadBalancer, HwsLevelCapacities) {
  // When a whole socket and its blade's BL2 slot are taken, the next
  // beggar lands on BL3 and becomes reachable from the other blade.
  const Topology topo(8, {2, 2});
  auto lb = make_load_balancer(LbKind::HWS, topo);
  lb->enqueue_beggar(0);  // BL1 socket 0
  lb->enqueue_beggar(1);  // BL1[0] full -> BL2 blade 0
  lb->enqueue_beggar(2);  // BL1 socket 1
  lb->enqueue_beggar(3);  // BL1[1] full, BL2[0] full -> BL3
  StealLevel lvl{};
  EXPECT_EQ(lb->pop_beggar(6, &lvl), 3);  // giver on blade 1 reaches BL3
  EXPECT_EQ(lvl, StealLevel::InterBlade);
  // Blade-0 givers still drain their local levels first.
  EXPECT_EQ(lb->pop_beggar(2, &lvl), 2);
  EXPECT_EQ(lvl, StealLevel::IntraSocket);
  EXPECT_EQ(lb->pop_beggar(2, &lvl), 1);
  EXPECT_EQ(lvl, StealLevel::IntraBlade);
}

TEST(LoadBalancer, CancelRemoves) {
  const Topology topo(4, {2, 2});
  auto lb = make_load_balancer(LbKind::HWS, topo);
  lb->enqueue_beggar(1);
  EXPECT_TRUE(lb->any_beggar());
  lb->cancel(1);
  EXPECT_FALSE(lb->any_beggar());
  StealLevel lvl{};
  EXPECT_EQ(lb->pop_beggar(0, &lvl), -1);
  lb->cancel(1);  // double-cancel is a no-op
  EXPECT_FALSE(lb->any_beggar());
}

TEST(LoadBalancer, WorkFlagsHandshake) {
  const Topology topo(2, {2, 2});
  auto lb = make_load_balancer(LbKind::RWS, topo);
  EXPECT_FALSE(lb->work_flag(1).load());
  lb->work_flag(1).store(true);
  EXPECT_TRUE(lb->work_flag(1).load());
}

// Both implementations must satisfy the same begging-list contract; the
// remaining suites parametrize over the impl.
class LoadBalancerImpl : public ::testing::TestWithParam<SchedulerImpl> {};

TEST_P(LoadBalancerImpl, RwsFifoSemantics) {
  const Topology topo(4, {2, 2});
  auto lb = make_load_balancer(LbKind::RWS, topo, GetParam());
  lb->enqueue_beggar(2);
  lb->enqueue_beggar(3);
  StealLevel lvl{};
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 2);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 3);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), -1);
}

TEST_P(LoadBalancerImpl, HwsLocalityOrder) {
  // The HWS invariant: a giver always serves its own socket's BL1 first,
  // then its blade's BL2, then BL3 — regardless of begging order.
  const Topology topo(8, {2, 2});
  auto lb = make_load_balancer(LbKind::HWS, topo, GetParam());
  StealLevel lvl{};
  lb->enqueue_beggar(7);  // BL1 socket 3 — invisible to giver 0
  lb->enqueue_beggar(3);  // BL1 socket 1 — invisible to giver 0
  lb->enqueue_beggar(2);  // BL1[1] full -> BL2 blade 0
  lb->enqueue_beggar(1);  // BL1 socket 0 — giver 0's own socket
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 1);
  EXPECT_EQ(lvl, StealLevel::IntraSocket);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 2);
  EXPECT_EQ(lvl, StealLevel::IntraBlade);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), -1);  // 3 and 7 stay socket-local
  EXPECT_EQ(lb->pop_beggar(6, &lvl), 7);
  EXPECT_EQ(lvl, StealLevel::IntraSocket);
}

TEST_P(LoadBalancerImpl, StillBeggingToken) {
  // The lost-wakeup contract: the token is set by enqueue, survives
  // pop_beggar, and is cleared only by the beggar's own cancel.
  const Topology topo(4, {2, 2});
  auto lb = make_load_balancer(LbKind::HWS, topo, GetParam());
  EXPECT_FALSE(lb->still_begging(1));
  lb->enqueue_beggar(1);
  EXPECT_TRUE(lb->still_begging(1));
  StealLevel lvl{};
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 1);
  EXPECT_TRUE(lb->still_begging(1)) << "pop must not clear the token";
  lb->cancel(1);
  EXPECT_FALSE(lb->still_begging(1));
}

TEST_P(LoadBalancerImpl, ConcurrentEnqueuePopCancelStress) {
  // Beggars enqueue/cancel while givers pop. Invariants checked: a beggar
  // is never handed out twice per enqueue (claim counter), and the list
  // drains to empty at the end.
  const Topology topo(8, {2, 2});
  auto lb = make_load_balancer(LbKind::HWS, topo, GetParam());
  constexpr int kBeggars = 6, kRounds = 2000;
  std::array<std::atomic<int>, kBeggars> claimed{};
  std::atomic<bool> stop{false};

  std::vector<std::thread> pool;
  for (int b = 0; b < kBeggars; ++b) {
    pool.emplace_back([&, b] {
      for (int r = 0; r < kRounds; ++r) {
        lb->enqueue_beggar(b);
        claimed[b].fetch_add(1);  // one claim budget per enqueue
        if ((r & 3) == 0) std::this_thread::yield();
        lb->cancel(b);  // also consumes the budget if nobody popped us
      }
    });
  }
  std::array<std::atomic<int>, kBeggars> popped{};
  for (int g = 6; g < 8; ++g) {
    pool.emplace_back([&, g] {
      StealLevel lvl{};
      while (!stop.load(std::memory_order_acquire)) {
        const int b = lb->pop_beggar(g, &lvl);
        if (b >= 0) {
          ASSERT_LT(b, kBeggars);
          popped[b].fetch_add(1);
        }
      }
    });
  }
  for (int b = 0; b < kBeggars; ++b) pool[b].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t g = kBeggars; g < pool.size(); ++g) pool[g].join();

  for (int b = 0; b < kBeggars; ++b) {
    // Each enqueue can be consumed at most once (by a pop or the cancel).
    EXPECT_LE(popped[b].load(), claimed[b].load());
  }
  // Everyone cancelled on exit: the lists must be empty and every token
  // cleared.
  StealLevel lvl{};
  EXPECT_EQ(lb->pop_beggar(0, &lvl), -1);
  EXPECT_FALSE(lb->any_beggar());
  for (int b = 0; b < kBeggars; ++b) EXPECT_FALSE(lb->still_begging(b));
}

INSTANTIATE_TEST_SUITE_P(Impls, LoadBalancerImpl,
                         ::testing::Values(SchedulerImpl::LockFree,
                                           SchedulerImpl::Mutex),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// --- MPSC inbox ring ------------------------------------------------------

TEST(MpscRing, BatchPushDrainOrder) {
  MpscRing<int> ring(8);
  const int batch[3] = {10, 11, 12};
  ASSERT_TRUE(ring.try_push_batch(batch, 3));
  ASSERT_TRUE(ring.try_push(13));
  std::vector<int> got;
  EXPECT_EQ(ring.drain([&](const int& v) { got.push_back(v); }), 4u);
  EXPECT_EQ(got, (std::vector<int>{10, 11, 12, 13}));
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, FullRejectsBatchWithoutPartialPublish) {
  MpscRing<int> ring(4);
  const int a[3] = {1, 2, 3};
  ASSERT_TRUE(ring.try_push_batch(a, 3));
  const int b[2] = {4, 5};
  EXPECT_FALSE(ring.try_push_batch(b, 2)) << "only 1 slot left";
  ASSERT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));
  std::vector<int> got;
  ring.drain([&](const int& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
  // Slots recycle after the drain.
  EXPECT_TRUE(ring.try_push_batch(a, 3));
}

class MpscRingProducers : public ::testing::TestWithParam<int> {};

TEST_P(MpscRingProducers, ConcurrentBatchesKeepPerProducerFifo) {
  const int kProducers = GetParam();
  constexpr int kPerProducer = 4000;
  constexpr int kBatch = 8;
  MpscRing<std::uint32_t> ring(256);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint32_t batch[kBatch];
      for (int i = 0; i < kPerProducer; i += kBatch) {
        for (int j = 0; j < kBatch; ++j) {
          // value = producer id in the high bits, sequence in the low.
          batch[j] = (static_cast<std::uint32_t>(p) << 24) |
                     static_cast<std::uint32_t>(i + j);
        }
        while (!ring.try_push_batch(batch, kBatch)) {
          std::this_thread::yield();  // consumer will free slots
        }
      }
    });
  }

  std::vector<std::uint32_t> next(static_cast<std::size_t>(kProducers), 0);
  std::uint64_t total = 0;
  const std::uint64_t want =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  while (total < want) {
    total += ring.drain([&](const std::uint32_t& v) {
      const std::uint32_t p = v >> 24;
      const std::uint32_t seq = v & 0xFFFFFFu;
      // A producer's elements arrive in its publication order.
      ASSERT_EQ(seq, next[p]);
      next[p] = seq + 1;
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(total, want);
  EXPECT_TRUE(ring.empty());
}

INSTANTIATE_TEST_SUITE_P(Fanin, MpscRingProducers,
                         ::testing::Values(1, 2, 4));

// --- thread parker --------------------------------------------------------

TEST(ThreadParker, UnparkBeforeParkIsNotLost) {
  ThreadParker p;
  p.unpark();               // token stored
  EXPECT_TRUE(p.park(0));   // consumed without blocking
}

TEST(ThreadParker, TimedParkReturnsOnTimeout) {
  ThreadParker p;
  const double t0 = now_sec();
  EXPECT_FALSE(p.park(2000));  // 2ms, nobody unparks
  EXPECT_LT(now_sec() - t0, 2.0) << "park must not hang";
}

TEST(ThreadParker, NoLostWakeupUnderHandoffRaces) {
  // The refiner's pattern: consumer checks a flag, parks if clear; producer
  // sets the flag then unparks. Whatever the interleaving, the consumer
  // must observe the flag without waiting out a full timeout each round.
  ThreadParker parker;
  std::atomic<bool> flag{false};
  std::atomic<bool> stop{false};
  constexpr int kRounds = 2000;

  std::thread consumer([&] {
    for (int r = 0; r < kRounds; ++r) {
      while (!flag.load(std::memory_order_acquire)) {
        parker.park(/*timeout_us=*/100000);
        if (stop.load(std::memory_order_acquire)) return;
      }
      flag.store(false, std::memory_order_release);
    }
  });
  std::thread producer([&] {
    for (int r = 0; r < kRounds; ++r) {
      flag.store(true, std::memory_order_release);
      parker.unpark();
      while (flag.load(std::memory_order_acquire)) std::this_thread::yield();
    }
  });

  const double deadline = now_sec() + 30.0;
  producer.join();
  consumer.join();
  EXPECT_LT(now_sec(), deadline) << "hand-off latency collapsed to timeouts";
  stop.store(true);
}

// --- spatial grid ---------------------------------------------------------

TEST(SpatialGrid, InsertQueryRemove) {
  const Aabb box{{0, 0, 0}, {100, 100, 100}};
  SpatialHashGrid grid(box, 2.0);
  grid.insert({10, 10, 10}, 1);
  grid.insert({11, 10, 10}, 2);
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_TRUE(grid.any_within({10.2, 10, 10}, 1.0));
  EXPECT_FALSE(grid.any_within({50, 50, 50}, 2.0));
  // Radius is strict.
  EXPECT_FALSE(grid.any_within({12, 10, 10}, 1.0));

  std::vector<std::pair<Vec3, VertexId>> out;
  grid.collect_within({10.5, 10, 10}, 1.0, out);
  ASSERT_EQ(out.size(), 2u);

  EXPECT_TRUE(grid.remove({10, 10, 10}, 1));
  EXPECT_FALSE(grid.remove({10, 10, 10}, 1));  // already gone
  grid.collect_within({10.5, 10, 10}, 1.0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 2u);
}

TEST(SpatialGrid, NeighbouringCellsCovered) {
  const Aabb box{{0, 0, 0}, {10, 10, 10}};
  SpatialHashGrid grid(box, 1.0);
  // Points just across cell boundaries from the query point.
  grid.insert({4.95, 5.0, 5.0}, 1);
  grid.insert({5.05, 6.04, 5.0}, 2);
  EXPECT_TRUE(grid.any_within({5.05, 5.0, 5.0}, 0.2));
  EXPECT_TRUE(grid.any_within({5.05, 6.0, 5.0}, 0.2));
}

TEST(SpatialGrid, ConcurrentInsertAndQuery) {
  const Aabb box{{0, 0, 0}, {64, 64, 64}};
  SpatialHashGrid grid(box, 1.0);
  constexpr int kThreads = 4, kPer = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&grid, t] {
      for (int i = 0; i < kPer; ++i) {
        const double x = (t * kPer + i) % 64;
        const double y = ((t * kPer + i) / 64) % 64;
        const double z = t;
        grid.insert({x + 0.1, y + 0.1, z + 0.1},
                    static_cast<VertexId>(t * kPer + i));
        (void)grid.any_within({x, y, z}, 0.5);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(grid.size(), static_cast<std::size_t>(kThreads * kPer));
}

// --- sizing ---------------------------------------------------------------

TEST(Sizing, Helpers) {
  EXPECT_TRUE(std::isinf(sizing::unconstrained()({1, 2, 3})));
  EXPECT_DOUBLE_EQ(sizing::uniform(2.5)({0, 0, 0}), 2.5);

  const auto graded = sizing::axis_graded(0, 0.0, 10.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(graded({0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(graded({10, 0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(graded({5, 0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(graded({-5, 0, 0}), 1.0);  // clamped

  const auto rad = sizing::radial({0, 0, 0}, 1.0, 4.0, 1.0);
  EXPECT_DOUBLE_EQ(rad({0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(rad({2, 0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(rad({100, 0, 0}), 4.0);
}

// --- stats -> metrics registry --------------------------------------------

TEST(Stats, CollectorMatchesAggregateTotals) {
  // The MetricsRegistry snapshot must mirror the legacy aggregate() totals
  // exactly — the manifest consumers treat the two as the same numbers.
  std::vector<ThreadStats> per_thread(3);
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    ThreadStats& s = per_thread[t];
    const auto k = static_cast<std::uint64_t>(t + 1);
    s.operations = 100 * k;
    s.insertions = 80 * k;
    s.removals = 20 * k;
    s.rollbacks = 7 * k;
    s.failed_ops = 3 * k;
    s.cells_created = 500 * k;
    s.steals_intra_socket = 4 * k;
    s.steals_intra_blade = 2 * k;
    s.steals_inter_blade = k;
    s.parks = 6 * k;
    s.unparks_sent = 5 * k;
    s.add_parked(0.5 * static_cast<double>(k));
    s.add_contention(0.25 * static_cast<double>(k));
    s.add_loadbalance(0.125 * static_cast<double>(k));
    s.add_rollback_time(0.0625 * static_cast<double>(k));
  }
  const StatsTotals totals = aggregate(per_thread);

  telemetry::MetricsRegistry reg;
  telemetry::collect_stats(reg, totals);

  EXPECT_EQ(reg.u64("refine.operations"), totals.operations);
  EXPECT_EQ(reg.u64("refine.insertions"), totals.insertions);
  EXPECT_EQ(reg.u64("refine.removals"), totals.removals);
  EXPECT_EQ(reg.u64("refine.rollbacks"), totals.rollbacks);
  EXPECT_EQ(reg.u64("refine.failed_ops"), totals.failed_ops);
  EXPECT_EQ(reg.u64("refine.cells_created"), totals.cells_created);
  EXPECT_EQ(reg.u64("refine.steals_intra_socket"),
            totals.steals_intra_socket);
  EXPECT_EQ(reg.u64("refine.steals_intra_blade"), totals.steals_intra_blade);
  EXPECT_EQ(reg.u64("refine.steals_inter_blade"), totals.steals_inter_blade);
  EXPECT_EQ(reg.u64("refine.steals_total"), totals.total_steals());
  EXPECT_EQ(reg.u64("refine.parks"), totals.parks);
  EXPECT_EQ(reg.u64("refine.unparks"), totals.unparks);
  EXPECT_DOUBLE_EQ(reg.f64("refine.parked_sec"), totals.parked_sec);
  EXPECT_DOUBLE_EQ(reg.f64("refine.contention_sec"), totals.contention_sec);
  EXPECT_DOUBLE_EQ(reg.f64("refine.loadbalance_sec"),
                   totals.loadbalance_sec);
  EXPECT_DOUBLE_EQ(reg.f64("refine.rollback_sec"), totals.rollback_sec);
  EXPECT_DOUBLE_EQ(reg.f64("refine.overhead_sec"),
                   totals.total_overhead_sec());

  // Spot-check against hand-computed sums (1+2+3 = 6 multipliers).
  EXPECT_EQ(reg.u64("refine.operations"), 600u);
  EXPECT_EQ(reg.u64("refine.steals_total"), 42u);
  EXPECT_EQ(reg.u64("refine.parks"), 36u);
  EXPECT_NEAR(reg.f64("refine.parked_sec"), 3.0, 1e-6);
  EXPECT_NEAR(reg.f64("refine.contention_sec"), 1.5, 1e-6);
}

}  // namespace
}  // namespace pi2m
