#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/sizing.hpp"
#include "core/spatial_grid.hpp"
#include "runtime/contention.hpp"
#include "runtime/stats.hpp"
#include "runtime/topology.hpp"
#include "runtime/workstealing.hpp"
#include "telemetry/collectors.hpp"

namespace pi2m {
namespace {

// --- topology -----------------------------------------------------------

TEST(Topology, BlacklightLayout) {
  const Topology t(32, {8, 2});
  EXPECT_EQ(t.threads_per_socket(), 8);
  EXPECT_EQ(t.threads_per_blade(), 16);
  EXPECT_EQ(t.num_sockets(), 4);
  EXPECT_EQ(t.num_blades(), 2);
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(7), 0);
  EXPECT_EQ(t.socket_of(8), 1);
  EXPECT_EQ(t.blade_of(15), 0);
  EXPECT_EQ(t.blade_of(16), 1);
  EXPECT_TRUE(t.same_socket(0, 7));
  EXPECT_FALSE(t.same_socket(7, 8));
  EXPECT_TRUE(t.same_blade(7, 8));
  EXPECT_FALSE(t.same_blade(15, 16));
}

TEST(Topology, PartialLastSocket) {
  const Topology t(10, {4, 2});
  EXPECT_EQ(t.num_sockets(), 3);
  EXPECT_EQ(t.num_blades(), 2);
}

// --- contention managers ------------------------------------------------

struct CmFixture {
  std::atomic<bool> done{false};
  std::atomic<int> idle{0};
  ThreadStats stats;

  CmContext ctx(int n) {
    CmContext c;
    c.done = &done;
    c.idle_threads = &idle;
    c.nthreads = n;
    return c;
  }
};

TEST(ContentionManager, AggressiveNeverBlocks) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Aggressive, f.ctx(4));
  for (int i = 0; i < 100; ++i) cm->on_rollback(0, 1, f.stats);
  EXPECT_EQ(cm->blocked_count(), 0);
  EXPECT_EQ(f.stats.contention_ns.load(), 0u);
}

TEST(ContentionManager, RandomSleepsAfterRPlusRollbacks) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Random, f.ctx(4), /*r_plus=*/3);
  for (int i = 0; i < 3; ++i) cm->on_rollback(0, 1, f.stats);
  EXPECT_EQ(f.stats.contention_ns.load(), 0u);  // not yet over the limit
  cm->on_rollback(0, 1, f.stats);               // 4th consecutive: sleeps
  EXPECT_GT(f.stats.contention_ns.load(), 0u);
  // Success resets the streak.
  cm->on_success(0);
  const auto before = f.stats.contention_ns.load();
  for (int i = 0; i < 3; ++i) cm->on_rollback(0, 1, f.stats);
  EXPECT_EQ(f.stats.contention_ns.load(), before);
}

TEST(ContentionManager, GlobalBlocksAndIsWokenBySuccessStreak) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Global, f.ctx(2), 5, /*s_plus=*/3);
  ThreadStats st1;
  std::thread blocked([&] { cm->on_rollback(1, 0, st1); });
  while (cm->blocked_count() == 0) std::this_thread::yield();
  // Thread 0 makes s_plus consecutive successes -> wakes thread 1.
  for (int i = 0; i < 3; ++i) cm->on_success(0);
  blocked.join();
  EXPECT_EQ(cm->blocked_count(), 0);
  EXPECT_GT(st1.contention_ns.load(), 0u);
}

TEST(ContentionManager, GlobalNeverBlocksLastActiveThread) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Global, f.ctx(2));
  f.idle.store(1);  // the other thread is idle: we are the last active one
  cm->on_rollback(0, 1, f.stats);  // must return immediately
  EXPECT_EQ(cm->blocked_count(), 0);
}

TEST(ContentionManager, LocalBreaksTwoCycle) {
  // T0 -> T1 and T1 -> T0 concurrently: by Lemma 1 at least one must not
  // block; by Lemma 2 (with a 3rd active thread present) at most one runs
  // free. Either way both must eventually return once the free one
  // "progresses".
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Local, f.ctx(3), 5, /*s_plus=*/1);
  ThreadStats st0, st1;
  std::atomic<bool> done0{false}, done1{false};
  std::thread t0([&] {
    cm->on_rollback(0, 1, st0);
    done0 = true;
  });
  std::thread t1([&] {
    cm->on_rollback(1, 0, st1);
    done1 = true;
  });
  // One of them may block; simulate progress of whichever returned.
  const double deadline = now_sec() + 10.0;
  while ((!done0 || !done1) && now_sec() < deadline) {
    if (done0) cm->on_success(0);
    if (done1) cm->on_success(1);
    std::this_thread::yield();
  }
  EXPECT_TRUE(done0 && done1) << "dependency cycle deadlocked";
  t0.join();
  t1.join();
}

TEST(ContentionManager, WakeAllReleasesEveryone) {
  CmFixture f;
  auto cm = make_contention_manager(CmKind::Local, f.ctx(4), 5, 1000);
  ThreadStats st[2];
  std::thread a([&] { cm->on_rollback(1, 0, st[0]); });
  std::thread b([&] { cm->on_rollback(2, 0, st[1]); });
  while (cm->blocked_count() < 2) std::this_thread::yield();
  cm->wake_all();
  a.join();
  b.join();
  EXPECT_EQ(cm->blocked_count(), 0);
}

// --- load balancers ------------------------------------------------------

TEST(LoadBalancer, RwsFifoOrder) {
  const Topology topo(4, {2, 2});
  auto lb = make_load_balancer(LbKind::RWS, topo);
  EXPECT_FALSE(lb->any_beggar());
  lb->enqueue_beggar(2);
  lb->enqueue_beggar(3);
  StealLevel lvl{};
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 2);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 3);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), -1);
}

TEST(LoadBalancer, HwsPrefersLocality) {
  // 8 threads: sockets {0,1},{2,3},{4,5},{6,7}; blades {0..3},{4..7}.
  const Topology topo(8, {2, 2});
  auto lb = make_load_balancer(LbKind::HWS, topo);
  StealLevel lvl{};

  // Socket-mate begging on BL1 is the giver's first choice.
  lb->enqueue_beggar(1);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 1);
  EXPECT_EQ(lvl, StealLevel::IntraSocket);

  // BL1 of socket 1 holds tps-1 = 1 beggar; the second one overflows into
  // BL2 of blade 0, where giver 0 (other socket, same blade) can see it.
  lb->enqueue_beggar(3);
  lb->enqueue_beggar(2);
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 2);
  EXPECT_EQ(lvl, StealLevel::IntraBlade);

  // Fill blade 1's BL1/BL2 so thread 7 overflows into the global BL3,
  // where any giver finds it.
  lb->enqueue_beggar(4);  // BL1 socket 2
  lb->enqueue_beggar(5);  // BL1[2] full -> BL2 blade 1
  lb->enqueue_beggar(6);  // BL1 socket 3
  lb->enqueue_beggar(7);  // BL1[3] full, BL2[1] full -> BL3
  EXPECT_EQ(lb->pop_beggar(0, &lvl), 7);
  EXPECT_EQ(lvl, StealLevel::InterBlade);

  // Thread 3, still on socket 1's BL1, is deliberately invisible to giver
  // 0 (paper §6.1: BL1 is shared only among the threads of one socket).
  EXPECT_EQ(lb->pop_beggar(0, &lvl), -1);
  EXPECT_EQ(lb->pop_beggar(2, &lvl), 3);  // its socket-mate serves it
  EXPECT_EQ(lvl, StealLevel::IntraSocket);
}

TEST(LoadBalancer, HwsLevelCapacities) {
  // When a whole socket and its blade's BL2 slot are taken, the next
  // beggar lands on BL3 and becomes reachable from the other blade.
  const Topology topo(8, {2, 2});
  auto lb = make_load_balancer(LbKind::HWS, topo);
  lb->enqueue_beggar(0);  // BL1 socket 0
  lb->enqueue_beggar(1);  // BL1[0] full -> BL2 blade 0
  lb->enqueue_beggar(2);  // BL1 socket 1
  lb->enqueue_beggar(3);  // BL1[1] full, BL2[0] full -> BL3
  StealLevel lvl{};
  EXPECT_EQ(lb->pop_beggar(6, &lvl), 3);  // giver on blade 1 reaches BL3
  EXPECT_EQ(lvl, StealLevel::InterBlade);
  // Blade-0 givers still drain their local levels first.
  EXPECT_EQ(lb->pop_beggar(2, &lvl), 2);
  EXPECT_EQ(lvl, StealLevel::IntraSocket);
  EXPECT_EQ(lb->pop_beggar(2, &lvl), 1);
  EXPECT_EQ(lvl, StealLevel::IntraBlade);
}

TEST(LoadBalancer, CancelRemoves) {
  const Topology topo(4, {2, 2});
  auto lb = make_load_balancer(LbKind::HWS, topo);
  lb->enqueue_beggar(1);
  EXPECT_TRUE(lb->any_beggar());
  lb->cancel(1);
  EXPECT_FALSE(lb->any_beggar());
  StealLevel lvl{};
  EXPECT_EQ(lb->pop_beggar(0, &lvl), -1);
  lb->cancel(1);  // double-cancel is a no-op
  EXPECT_FALSE(lb->any_beggar());
}

TEST(LoadBalancer, WorkFlagsHandshake) {
  const Topology topo(2, {2, 2});
  auto lb = make_load_balancer(LbKind::RWS, topo);
  EXPECT_FALSE(lb->work_flag(1).load());
  lb->work_flag(1).store(true);
  EXPECT_TRUE(lb->work_flag(1).load());
}

// --- spatial grid ---------------------------------------------------------

TEST(SpatialGrid, InsertQueryRemove) {
  const Aabb box{{0, 0, 0}, {100, 100, 100}};
  SpatialHashGrid grid(box, 2.0);
  grid.insert({10, 10, 10}, 1);
  grid.insert({11, 10, 10}, 2);
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_TRUE(grid.any_within({10.2, 10, 10}, 1.0));
  EXPECT_FALSE(grid.any_within({50, 50, 50}, 2.0));
  // Radius is strict.
  EXPECT_FALSE(grid.any_within({12, 10, 10}, 1.0));

  std::vector<std::pair<Vec3, VertexId>> out;
  grid.collect_within({10.5, 10, 10}, 1.0, out);
  ASSERT_EQ(out.size(), 2u);

  EXPECT_TRUE(grid.remove({10, 10, 10}, 1));
  EXPECT_FALSE(grid.remove({10, 10, 10}, 1));  // already gone
  grid.collect_within({10.5, 10, 10}, 1.0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 2u);
}

TEST(SpatialGrid, NeighbouringCellsCovered) {
  const Aabb box{{0, 0, 0}, {10, 10, 10}};
  SpatialHashGrid grid(box, 1.0);
  // Points just across cell boundaries from the query point.
  grid.insert({4.95, 5.0, 5.0}, 1);
  grid.insert({5.05, 6.04, 5.0}, 2);
  EXPECT_TRUE(grid.any_within({5.05, 5.0, 5.0}, 0.2));
  EXPECT_TRUE(grid.any_within({5.05, 6.0, 5.0}, 0.2));
}

TEST(SpatialGrid, ConcurrentInsertAndQuery) {
  const Aabb box{{0, 0, 0}, {64, 64, 64}};
  SpatialHashGrid grid(box, 1.0);
  constexpr int kThreads = 4, kPer = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&grid, t] {
      for (int i = 0; i < kPer; ++i) {
        const double x = (t * kPer + i) % 64;
        const double y = ((t * kPer + i) / 64) % 64;
        const double z = t;
        grid.insert({x + 0.1, y + 0.1, z + 0.1},
                    static_cast<VertexId>(t * kPer + i));
        (void)grid.any_within({x, y, z}, 0.5);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(grid.size(), static_cast<std::size_t>(kThreads * kPer));
}

// --- sizing ---------------------------------------------------------------

TEST(Sizing, Helpers) {
  EXPECT_TRUE(std::isinf(sizing::unconstrained()({1, 2, 3})));
  EXPECT_DOUBLE_EQ(sizing::uniform(2.5)({0, 0, 0}), 2.5);

  const auto graded = sizing::axis_graded(0, 0.0, 10.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(graded({0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(graded({10, 0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(graded({5, 0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(graded({-5, 0, 0}), 1.0);  // clamped

  const auto rad = sizing::radial({0, 0, 0}, 1.0, 4.0, 1.0);
  EXPECT_DOUBLE_EQ(rad({0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(rad({2, 0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(rad({100, 0, 0}), 4.0);
}

// --- stats -> metrics registry --------------------------------------------

TEST(Stats, CollectorMatchesAggregateTotals) {
  // The MetricsRegistry snapshot must mirror the legacy aggregate() totals
  // exactly — the manifest consumers treat the two as the same numbers.
  std::vector<ThreadStats> per_thread(3);
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    ThreadStats& s = per_thread[t];
    const auto k = static_cast<std::uint64_t>(t + 1);
    s.operations = 100 * k;
    s.insertions = 80 * k;
    s.removals = 20 * k;
    s.rollbacks = 7 * k;
    s.failed_ops = 3 * k;
    s.cells_created = 500 * k;
    s.steals_intra_socket = 4 * k;
    s.steals_intra_blade = 2 * k;
    s.steals_inter_blade = k;
    s.add_contention(0.25 * static_cast<double>(k));
    s.add_loadbalance(0.125 * static_cast<double>(k));
    s.add_rollback_time(0.0625 * static_cast<double>(k));
  }
  const StatsTotals totals = aggregate(per_thread);

  telemetry::MetricsRegistry reg;
  telemetry::collect_stats(reg, totals);

  EXPECT_EQ(reg.u64("refine.operations"), totals.operations);
  EXPECT_EQ(reg.u64("refine.insertions"), totals.insertions);
  EXPECT_EQ(reg.u64("refine.removals"), totals.removals);
  EXPECT_EQ(reg.u64("refine.rollbacks"), totals.rollbacks);
  EXPECT_EQ(reg.u64("refine.failed_ops"), totals.failed_ops);
  EXPECT_EQ(reg.u64("refine.cells_created"), totals.cells_created);
  EXPECT_EQ(reg.u64("refine.steals_intra_socket"),
            totals.steals_intra_socket);
  EXPECT_EQ(reg.u64("refine.steals_intra_blade"), totals.steals_intra_blade);
  EXPECT_EQ(reg.u64("refine.steals_inter_blade"), totals.steals_inter_blade);
  EXPECT_EQ(reg.u64("refine.steals_total"), totals.total_steals());
  EXPECT_DOUBLE_EQ(reg.f64("refine.contention_sec"), totals.contention_sec);
  EXPECT_DOUBLE_EQ(reg.f64("refine.loadbalance_sec"),
                   totals.loadbalance_sec);
  EXPECT_DOUBLE_EQ(reg.f64("refine.rollback_sec"), totals.rollback_sec);
  EXPECT_DOUBLE_EQ(reg.f64("refine.overhead_sec"),
                   totals.total_overhead_sec());

  // Spot-check against hand-computed sums (1+2+3 = 6 multipliers).
  EXPECT_EQ(reg.u64("refine.operations"), 600u);
  EXPECT_EQ(reg.u64("refine.steals_total"), 42u);
  EXPECT_NEAR(reg.f64("refine.contention_sec"), 1.5, 1e-6);
}

}  // namespace
}  // namespace pi2m
