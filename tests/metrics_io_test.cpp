#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/refiner.hpp"
#include "imaging/phantom.hpp"
#include "io/tables.hpp"
#include "io/writers.hpp"
#include "metrics/hausdorff.hpp"
#include "metrics/quality.hpp"

namespace pi2m {
namespace {

TetMesh single_tet_mesh() {
  TetMesh m;
  m.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  m.point_kinds.assign(4, VertexKind::Isosurface);
  m.tets = {{0, 1, 2, 3}};
  m.tet_labels = {1};
  m.boundary_tris = {{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}};
  return m;
}

TEST(Quality, SingleTetReport) {
  const QualityReport r = evaluate_quality(single_tet_mesh());
  EXPECT_EQ(r.num_tets, 1u);
  EXPECT_EQ(r.num_boundary_tris, 4u);
  EXPECT_NEAR(r.total_volume, 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(r.min_dihedral_deg, 54.7356, 1e-3);  // arctan(sqrt(2)) corner
  EXPECT_NEAR(r.max_dihedral_deg, 90.0, 1e-9);
  EXPECT_NEAR(r.min_boundary_planar_deg, 45.0, 1e-9);
  // radius-edge of the unit corner tet: R = sqrt(3)/2, shortest edge 1.
  EXPECT_NEAR(r.max_radius_edge, std::sqrt(3.0) / 2.0, 1e-12);
  std::size_t dihedral_total = 0;
  for (auto c : r.dihedral_histogram) dihedral_total += c;
  EXPECT_EQ(dihedral_total, 6u);
}

TEST(Quality, EmptyMesh) {
  const QualityReport r = evaluate_quality(TetMesh{});
  EXPECT_EQ(r.num_tets, 0u);
  EXPECT_EQ(r.max_radius_edge, 0.0);
}

TEST(PointTriangle, Distances) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  EXPECT_NEAR(point_triangle_distance({0.2, 0.2, 1.0}, a, b, c), 1.0, 1e-12);
  EXPECT_NEAR(point_triangle_distance({0.2, 0.2, 0}, a, b, c), 0.0, 1e-12);
  EXPECT_NEAR(point_triangle_distance({-1, 0, 0}, a, b, c), 1.0, 1e-12);  // vertex
  EXPECT_NEAR(point_triangle_distance({0.5, -2, 0}, a, b, c), 2.0, 1e-12);  // edge
  EXPECT_NEAR(point_triangle_distance({1, 1, 0}, a, b, c),
              std::sqrt(2.0) / 2.0, 1e-12);  // hypotenuse
}

TEST(Hausdorff, RefinedBallIsFaithful) {
  const LabeledImage3D img = phantom::ball(24, 0.7);
  RefinerOptions opt;
  opt.threads = 1;
  opt.rules.delta = 2.5;
  Refiner refiner(img, opt);
  ASSERT_TRUE(refiner.refine().completed);
  const TetMesh tm = extract_mesh(refiner.mesh(), refiner.oracle(), 1);
  const HausdorffResult h = hausdorff_distance(tm, refiner.oracle(), 2);
  // With delta=2.5 voxels the sample theorem bounds the two-sided distance
  // by O(delta^2 / lfs); empirically a few voxels at this coarseness.
  EXPECT_GT(h.symmetric(), 0.0);
  EXPECT_LT(h.symmetric(), 2.5 * 2.5);
  EXPECT_LT(h.mesh_to_surface, 2.5 * 2.5);
  EXPECT_LT(h.surface_to_mesh, 2.5 * 2.5);
}

TEST(Hausdorff, ShrinksWithDelta) {
  const LabeledImage3D img = phantom::ball(32, 0.7);
  auto run = [&](double delta) {
    RefinerOptions opt;
    opt.threads = 1;
    opt.rules.delta = delta;
    Refiner refiner(img, opt);
    EXPECT_TRUE(refiner.refine().completed);
    const TetMesh tm = extract_mesh(refiner.mesh(), refiner.oracle(), 1);
    // Compare the surface->mesh direction: it scales with the sample
    // spacing delta (Theorem 1), while mesh->surface is dominated by the
    // voxel-quantized oracle's measurement floor at fine deltas.
    return hausdorff_distance(tm, refiner.oracle(), 2).surface_to_mesh;
  };
  const double coarse = run(6.0);
  const double fine = run(1.5);
  EXPECT_LT(fine, coarse);
}

TEST(Writers, VtkOffMedit) {
  const TetMesh m = single_tet_mesh();
  const std::string base = ::testing::TempDir() + "/pi2m_io_test";
  ASSERT_TRUE(io::write_vtk(m, base + ".vtk"));
  ASSERT_TRUE(io::write_off_surface(m, base + ".off"));
  ASSERT_TRUE(io::write_medit(m, base + ".mesh"));

  auto slurp = [](const std::string& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string vtk = slurp(base + ".vtk");
  EXPECT_NE(vtk.find("POINTS 4 double"), std::string::npos);
  EXPECT_NE(vtk.find("CELLS 1 5"), std::string::npos);
  EXPECT_NE(vtk.find("SCALARS label int 1"), std::string::npos);

  const std::string off = slurp(base + ".off");
  EXPECT_EQ(off.rfind("OFF", 0), 0u);
  EXPECT_NE(off.find("4 4 0"), std::string::npos);

  const std::string medit = slurp(base + ".mesh");
  EXPECT_NE(medit.find("Tetrahedra"), std::string::npos);
  EXPECT_NE(medit.find("End"), std::string::npos);

  std::remove((base + ".vtk").c_str());
  std::remove((base + ".off").c_str());
  std::remove((base + ".mesh").c_str());
}

TEST(Writers, FailureOnBadPath) {
  EXPECT_FALSE(io::write_vtk(TetMesh{}, "/nonexistent_dir_xyz/file.vtk"));
}

TEST(Tables, AlignmentAndFormat) {
  io::TextTable t;
  t.add_row({"metric", "a", "b"});
  t.add_row({"time", "1.5", "20.25"});
  t.add_row({"rollbacks", "7", "1234"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Data cells right-aligned under their headers: "b" column width 5.
  EXPECT_NE(s.find(" 1234"), std::string::npos);

  EXPECT_EQ(io::fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(io::fmt_int(1234567), "1,234,567");
  EXPECT_EQ(io::fmt_int(12), "12");
  EXPECT_EQ(io::fmt_pct(0.825, 1), "82.5%");
  EXPECT_EQ(io::fmt_sci(14300000.0, 2), "1.43E+07");
}

}  // namespace
}  // namespace pi2m
