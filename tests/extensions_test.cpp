// Tests for the extension modules: MetaImage I/O and quality-guarded
// smoothing (the paper's stated future work).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/pi2m.hpp"
#include "core/smoothing.hpp"
#include "imaging/phantom.hpp"
#include "imaging/resample.hpp"
#include "io/image_io.hpp"
#include "io/writers.hpp"
#include "metrics/quality.hpp"

namespace pi2m {
namespace {

TEST(ImageIo, MhaRoundTrip) {
  LabeledImage3D img = phantom::abdominal(14, 11, 9, {0.5, 1.25, 2.0});
  const std::string path = ::testing::TempDir() + "/roundtrip.mha";
  ASSERT_TRUE(io::write_mha(img, path));

  std::string error;
  const auto back = io::read_mha(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->nx(), img.nx());
  EXPECT_EQ(back->ny(), img.ny());
  EXPECT_EQ(back->nz(), img.nz());
  EXPECT_EQ(back->spacing(), img.spacing());
  EXPECT_EQ(back->origin(), img.origin());
  EXPECT_EQ(back->raw(), img.raw());
  std::remove(path.c_str());
}

TEST(ImageIo, ReadUshort) {
  // Hand-craft a MET_USHORT image (little endian).
  const std::string path = ::testing::TempDir() + "/ushort.mha";
  {
    std::ofstream out(path, std::ios::binary);
    out << "ObjectType = Image\nNDims = 3\nDimSize = 2 1 1\n"
        << "ElementSpacing = 1 1 1\nElementType = MET_USHORT\n"
        << "ElementDataFile = LOCAL\n";
    const unsigned char data[4] = {7, 0, 200, 0};
    out.write(reinterpret_cast<const char*>(data), 4);
  }
  const auto img = io::read_mha(path);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->at({0, 0, 0}), 7);
  EXPECT_EQ(img->at({1, 0, 0}), 200);
  std::remove(path.c_str());
}

TEST(ImageIo, RejectsMalformed) {
  const std::string path = ::testing::TempDir() + "/bad.mha";
  std::string error;

  auto write_and_try = [&](const std::string& content) {
    std::ofstream(path, std::ios::binary) << content;
    const auto r = io::read_mha(path, &error);
    return r.has_value();
  };
  EXPECT_FALSE(io::read_mha("/nonexistent/nope.mha", &error).has_value());
  EXPECT_FALSE(write_and_try("NDims = 2\nElementDataFile = LOCAL\n"));
  EXPECT_FALSE(write_and_try(
      "NDims = 3\nDimSize = 2 2 2\nElementType = MET_FLOAT\n"
      "ElementDataFile = LOCAL\n"));
  EXPECT_FALSE(write_and_try(
      "NDims = 3\nDimSize = 4 4 4\nElementType = MET_UCHAR\n"
      "ElementDataFile = LOCAL\nxx"));  // truncated voxels
  EXPECT_FALSE(write_and_try(
      "NDims = 3\nDimSize = 2 2 2\nElementType = MET_UCHAR\n"
      "ElementDataFile = voxels.raw\n"));  // external data unsupported
  std::remove(path.c_str());
}

TEST(ImageIo, UshortLabelOverflowRejected) {
  const std::string path = ::testing::TempDir() + "/overflow.mha";
  {
    std::ofstream out(path, std::ios::binary);
    out << "ObjectType = Image\nNDims = 3\nDimSize = 1 1 1\n"
        << "ElementType = MET_USHORT\nElementDataFile = LOCAL\n";
    const unsigned char data[2] = {0x00, 0x01};  // 256
    out.write(reinterpret_cast<const char*>(data), 2);
  }
  std::string error;
  EXPECT_FALSE(io::read_mha(path, &error).has_value());
  EXPECT_NE(error.find("255"), std::string::npos);
  std::remove(path.c_str());
}

class SmoothingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    img_ = phantom::ball(32, 0.7);
    MeshingOptions opt;
    opt.delta = 1.8;
    opt.threads = 2;
    res_ = mesh_image(img_, opt);
    ASSERT_TRUE(res_.ok());
    oracle_ = std::make_unique<IsosurfaceOracle>(img_, 2);
  }

  LabeledImage3D img_;
  MeshingResult res_;
  std::unique_ptr<IsosurfaceOracle> oracle_;
};

TEST_F(SmoothingTest, ImprovesWorstDihedralWithoutBreakingBounds) {
  const QualityReport before = evaluate_quality(res_.mesh);
  SmoothingOptions opt;
  opt.iterations = 3;
  opt.threads = 2;
  const SmoothingReport rep = smooth_mesh(res_.mesh, *oracle_, opt);
  const QualityReport after = evaluate_quality(res_.mesh);

  EXPECT_GT(rep.moves_accepted, 0u);
  EXPECT_GE(rep.min_dihedral_after, rep.min_dihedral_before);
  // Quality guards: the radius-edge bound survives smoothing, volumes stay
  // positive (no inversions), and the total volume is conserved within the
  // tolerance of boundary re-projection.
  EXPECT_LE(after.max_radius_edge, std::max(before.max_radius_edge, 2.0) + 1e-9);
  EXPECT_GT(after.min_volume, 0.0);
  EXPECT_NEAR(after.total_volume, before.total_volume,
              0.05 * before.total_volume);
}

TEST_F(SmoothingTest, SurfaceVerticesStayOnSurface) {
  SmoothingOptions opt;
  opt.iterations = 2;
  opt.threads = 1;
  smooth_mesh(res_.mesh, *oracle_, opt);
  const Vec3 c{(32 - 1) * 0.5, (32 - 1) * 0.5, (32 - 1) * 0.5};
  const double r = 0.7 * (32 - 1) * 0.5;
  for (const auto& f : res_.mesh.boundary_tris) {
    for (const std::uint32_t v : f) {
      EXPECT_NEAR(distance(res_.mesh.points[v], c), r, 1.2);
    }
  }
}

TEST_F(SmoothingTest, InteriorOnlyLeavesBoundaryFixed) {
  std::vector<Vec3> boundary_before;
  std::vector<char> on_boundary(res_.mesh.points.size(), 0);
  for (const auto& f : res_.mesh.boundary_tris) {
    for (const std::uint32_t v : f) on_boundary[v] = 1;
  }
  for (std::size_t v = 0; v < res_.mesh.points.size(); ++v) {
    if (on_boundary[v]) boundary_before.push_back(res_.mesh.points[v]);
  }
  SmoothingOptions opt;
  opt.smooth_surface = false;
  const SmoothingReport rep = smooth_mesh(res_.mesh, *oracle_, opt);
  EXPECT_GT(rep.moves_accepted, 0u);
  std::size_t i = 0;
  for (std::size_t v = 0; v < res_.mesh.points.size(); ++v) {
    if (on_boundary[v]) {
      EXPECT_EQ(res_.mesh.points[v], boundary_before[i]) << "vertex " << v;
      ++i;
    }
  }
}

TEST(Smoothing, EmptyMeshIsNoop) {
  TetMesh empty;
  const LabeledImage3D img = phantom::ball(8, 0.6);
  const IsosurfaceOracle oracle(img, 1);
  const SmoothingReport rep = smooth_mesh(empty, oracle);
  EXPECT_EQ(rep.moves_accepted, 0u);
}

TEST(Resample, DownsampleMajorityVote) {
  LabeledImage3D img(4, 4, 4, {1, 1, 1});
  for (auto& l : img.raw()) l = 1;
  for (int z = 0; z < 2; ++z)
    for (int y = 0; y < 2; ++y)
      for (int x = 0; x < 2; ++x) img.at({x, y, z}) = 2;
  const LabeledImage3D small = downsample(img, 2);
  EXPECT_EQ(small.nx(), 2);
  EXPECT_EQ(small.at({0, 0, 0}), 2);
  EXPECT_EQ(small.at({1, 1, 1}), 1);
  EXPECT_EQ(small.spacing(), (Vec3{2, 2, 2}));
  EXPECT_EQ(downsample(img, 1).raw(), img.raw());
}

TEST(Resample, CropPreservesWorldCoordinates) {
  LabeledImage3D img = phantom::ball(16, 0.6);
  const LabeledImage3D sub = crop(img, {4, 4, 4}, {11, 11, 11});
  EXPECT_EQ(sub.nx(), 8);
  EXPECT_EQ(sub.voxel_center({0, 0, 0}), img.voxel_center({4, 4, 4}));
  for (int z = 0; z < sub.nz(); ++z)
    for (int y = 0; y < sub.ny(); ++y)
      for (int x = 0; x < sub.nx(); ++x)
        ASSERT_EQ(sub.at({x, y, z}), img.at({4 + x, 4 + y, 4 + z}));
}

TEST(Resample, ForegroundBounds) {
  LabeledImage3D img(10, 10, 10);
  img.at({3, 4, 5}) = 1;
  img.at({6, 4, 5}) = 2;
  Voxel lo, hi;
  foreground_bounds(img, 1, &lo, &hi);
  EXPECT_EQ(lo, (Voxel{2, 3, 4}));
  EXPECT_EQ(hi, (Voxel{7, 5, 6}));
  LabeledImage3D empty(4, 4, 4);
  foreground_bounds(empty, 2, &lo, &hi);
  EXPECT_EQ(lo, (Voxel{0, 0, 0}));
  EXPECT_EQ(hi, (Voxel{3, 3, 3}));
}

TEST(Resample, CroppedForegroundMeshesLikeOriginal) {
  const LabeledImage3D img = phantom::ball(32, 0.5);
  Voxel lo, hi;
  foreground_bounds(img, 2, &lo, &hi);
  const LabeledImage3D sub = crop(img, lo, hi);
  MeshingOptions opt;
  opt.delta = 2.0;
  const MeshingResult full = mesh_image(img, opt);
  const MeshingResult cropped = mesh_image(sub, opt);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(cropped.ok());
  EXPECT_NEAR(static_cast<double>(cropped.mesh.num_tets()),
              static_cast<double>(full.mesh.num_tets()),
              0.3 * full.mesh.num_tets());
}

TEST(PerLabelSizing, DrivesDensityPerTissue) {
  const LabeledImage3D img = phantom::concentric_shells(28);
  MeshingOptions fine_core;
  fine_core.delta = 2.2;
  fine_core.size_function = sizing::per_label(img, {{2, 1.3}}, 1e30);
  MeshingOptions uniform;
  uniform.delta = 2.2;

  const MeshingResult a = mesh_image(img, fine_core);
  const MeshingResult b = mesh_image(img, uniform);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto count_label = [](const TetMesh& m, Label l) {
    std::size_t c = 0;
    for (const Label x : m.tet_labels) c += x == l;
    return c;
  };
  // The core (label 2) must densify far more than the shell: the shell
  // also grows some near the interface (size grading), but the growth
  // ratio must be dominated by the sized tissue.
  const double core_ratio = static_cast<double>(count_label(a.mesh, 2)) /
                            static_cast<double>(count_label(b.mesh, 2));
  const double shell_ratio = static_cast<double>(count_label(a.mesh, 1)) /
                             static_cast<double>(count_label(b.mesh, 1));
  EXPECT_GT(core_ratio, 2.0);
  EXPECT_GT(core_ratio, 1.5 * shell_ratio);
}

TEST(StlWriter, BinaryLayout) {
  TetMesh m;
  m.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  m.point_kinds.assign(3, VertexKind::Isosurface);
  m.boundary_tris = {{0, 1, 2}};
  const std::string path = ::testing::TempDir() + "/surface.stl";
  ASSERT_TRUE(io::write_stl_surface(m, path));
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ASSERT_EQ(data.size(), 80u + 4u + 50u);
  std::uint32_t count = 0;
  std::memcpy(&count, data.data() + 80, 4);
  EXPECT_EQ(count, 1u);
  float normal[3];
  std::memcpy(normal, data.data() + 84, 12);
  EXPECT_FLOAT_EQ(normal[0], 0.0f);
  EXPECT_FLOAT_EQ(normal[1], 0.0f);
  EXPECT_FLOAT_EQ(normal[2], 1.0f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pi2m
