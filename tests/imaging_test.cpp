#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "imaging/edt.hpp"
#include "imaging/image3d.hpp"
#include "imaging/isosurface.hpp"
#include "imaging/phantom.hpp"

namespace pi2m {
namespace {

TEST(Image3D, IndexingAndBounds) {
  LabeledImage3D img(4, 5, 6, {1, 2, 3}, {10, 20, 30});
  EXPECT_EQ(img.voxel_count(), 120u);
  EXPECT_EQ(img.at({3, 4, 5}), 0);
  img.at({1, 2, 3}) = 7;
  EXPECT_EQ(img.at({1, 2, 3}), 7);
  const LabeledImage3D& cimg = img;
  EXPECT_EQ(cimg.at({-1, 0, 0}), 0);  // out-of-bounds reads are background
  EXPECT_EQ(cimg.at({4, 0, 0}), 0);
  EXPECT_EQ(img.voxel_center({1, 1, 1}), (Vec3{11, 22, 33}));
}

TEST(Image3D, NearestVoxelClamping) {
  LabeledImage3D img(10, 10, 10);
  EXPECT_EQ(img.nearest_voxel({-100, 4.4, 100}), (Voxel{0, 4, 9}));
  // Half-way coordinates round away from zero (lround semantics).
  EXPECT_EQ(img.nearest_voxel({4.6, 4.5, 4.49}), (Voxel{5, 5, 4}));
}

TEST(Image3D, SurfaceVoxelDetection) {
  LabeledImage3D img = phantom::ball(16, 0.6);
  int surface = 0, interior = 0;
  for (int z = 0; z < 16; ++z) {
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        if (img.at({x, y, z}) == 0) continue;
        if (img.is_surface_voxel({x, y, z})) {
          ++surface;
        } else {
          ++interior;
        }
      }
    }
  }
  EXPECT_GT(surface, 0);
  EXPECT_GT(interior, 0);
  // A border foreground voxel is a surface voxel even without in-image
  // neighbours of different label.
  LabeledImage3D full(3, 3, 3);
  for (auto& l : full.raw()) l = 1;
  EXPECT_TRUE(full.is_surface_voxel({0, 1, 1}));
  EXPECT_FALSE(full.is_surface_voxel({1, 1, 1}));
}

TEST(Image3D, MultiLabelInterfaceIsSurface) {
  LabeledImage3D img = phantom::concentric_shells(24);
  const auto labels = img.labels_present();
  ASSERT_EQ(labels.size(), 2u);
  // Find a voxel of label 2 adjacent to label 1: it must be a surface voxel
  // even though it is nowhere near background.
  bool found = false;
  for (int z = 1; z < 23 && !found; ++z) {
    for (int y = 1; y < 23 && !found; ++y) {
      for (int x = 1; x < 23 && !found; ++x) {
        if (img.at({x, y, z}) == 2 && img.at({x + 1, y, z}) == 1) {
          EXPECT_TRUE(img.is_surface_voxel({x, y, z}));
          found = true;
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(Phantoms, AllNonEmptyAndMultiLabel) {
  EXPECT_EQ(phantom::ball(16).labels_present().size(), 1u);
  EXPECT_EQ(phantom::concentric_shells(20).labels_present().size(), 2u);
  EXPECT_EQ(phantom::abdominal(32, 32, 32).labels_present().size(), 4u);
  EXPECT_EQ(phantom::knee(32, 32, 32).labels_present().size(), 4u);
  EXPECT_GE(phantom::head_neck(32, 32, 32).labels_present().size(), 3u);
  EXPECT_GE(phantom::random_blobs(24, 42).labels_present().size(), 1u);
}

// --- EDT: exactness against brute force -------------------------------

double brute_force_surface_distance(const LabeledImage3D& img, const Voxel& v,
                                    Voxel* who = nullptr) {
  double best = std::numeric_limits<double>::infinity();
  const Vec3 p = img.voxel_center(v);
  for (int z = 0; z < img.nz(); ++z) {
    for (int y = 0; y < img.ny(); ++y) {
      for (int x = 0; x < img.nx(); ++x) {
        if (!img.is_surface_voxel({x, y, z})) continue;
        const double d = distance(p, img.voxel_center({x, y, z}));
        if (d < best) {
          best = d;
          if (who) *who = {x, y, z};
        }
      }
    }
  }
  return best;
}

class EdtExactness : public ::testing::TestWithParam<unsigned> {};

TEST_P(EdtExactness, MatchesBruteForceOnRandomImages) {
  const unsigned seed = GetParam();
  const int n = 14;
  LabeledImage3D img = phantom::random_blobs(n, seed, 3, 2);
  const FeatureTransform ft = FeatureTransform::compute(img, 2);
  ASSERT_TRUE(ft.has_surface());
  std::mt19937 rng(seed * 7 + 1);
  std::uniform_int_distribution<int> c(0, n - 1);
  for (int trial = 0; trial < 60; ++trial) {
    const Voxel v{c(rng), c(rng), c(rng)};
    const double ref = brute_force_surface_distance(img, v);
    const Voxel f = ft.nearest_surface_voxel(v);
    ASSERT_GE(f.x, 0);
    EXPECT_TRUE(img.is_surface_voxel(f));
    const double got = distance(img.voxel_center(v), img.voxel_center(f));
    EXPECT_NEAR(got, ref, 1e-9) << "voxel (" << v.x << "," << v.y << "," << v.z
                                << ") seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdtExactness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Edt, AnisotropicSpacing) {
  // One surface voxel plane; with z-spacing 5 the closest feature to a voxel
  // 1 step away in z must still be found despite x/y being "cheaper".
  LabeledImage3D img(9, 9, 9, {1, 1, 5});
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 9; ++x) img.at({x, y, 4}) = 1;
  }
  const FeatureTransform ft = FeatureTransform::compute(img, 1);
  const Voxel f = ft.nearest_surface_voxel({4, 4, 3});
  EXPECT_EQ(f.z, 4);
  EXPECT_NEAR(ft.surface_distance_estimate(img.voxel_center({4, 4, 3})), 5.0,
              1e-12);
}

TEST(Edt, ThreadCountInvariance) {
  LabeledImage3D img = phantom::abdominal(24, 20, 28);
  const FeatureTransform f1 = FeatureTransform::compute(img, 1);
  const FeatureTransform f4 = FeatureTransform::compute(img, 4);
  for (int z = 0; z < img.nz(); z += 3) {
    for (int y = 0; y < img.ny(); y += 3) {
      for (int x = 0; x < img.nx(); x += 3) {
        const Vec3 p = img.voxel_center({x, y, z});
        EXPECT_DOUBLE_EQ(f1.surface_distance_estimate(p),
                         f4.surface_distance_estimate(p));
      }
    }
  }
}

TEST(Edt, EmptyImageHasNoSurface) {
  LabeledImage3D img(8, 8, 8);
  const FeatureTransform ft = FeatureTransform::compute(img, 1);
  EXPECT_FALSE(ft.has_surface());
}

// --- Isosurface oracle -------------------------------------------------

TEST(IsosurfaceOracle, ClosestPointLiesOnBallSurface) {
  const int n = 32;
  LabeledImage3D img = phantom::ball(n, 0.6);
  const IsosurfaceOracle oracle(img, 2);
  const Vec3 c{(n - 1) * 0.5, (n - 1) * 0.5, (n - 1) * 0.5};
  const double r = 0.6 * (n - 1) * 0.5;

  std::mt19937 rng(9);
  std::uniform_real_distribution<double> u(-0.9, 0.9);
  for (int i = 0; i < 100; ++i) {
    const Vec3 p = c + Vec3{u(rng) * r, u(rng) * r, u(rng) * r};
    const auto q = oracle.closest_surface_point(p);
    ASSERT_TRUE(q.has_value());
    // The surface point must sit within a voxel of the analytic sphere.
    EXPECT_NEAR(distance(*q, c), r, 1.2);
    // And it must sit on a genuine label transition: some probe within 0.6
    // voxels of q (along the query ray or an axis) must differ in label.
    std::vector<Vec3> dirs = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    if (distance(*q, p) > 1e-9) dirs.push_back(normalized(*q - p));
    bool transition = false;
    for (const Vec3& dir : dirs) {
      if (oracle.label_at(*q - 0.6 * dir) != oracle.label_at(*q + 0.6 * dir)) {
        transition = true;
      }
    }
    EXPECT_TRUE(transition) << "q not on an interface";
  }
}

TEST(IsosurfaceOracle, SegmentIntersection) {
  const int n = 32;
  LabeledImage3D img = phantom::ball(n, 0.6);
  const IsosurfaceOracle oracle(img, 1);
  const Vec3 c{(n - 1) * 0.5, (n - 1) * 0.5, (n - 1) * 0.5};
  const double r = 0.6 * (n - 1) * 0.5;

  // Segment from the center to far outside must cross the sphere once.
  const auto hit = oracle.segment_surface_intersection(c, c + Vec3{2 * r, 0, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(distance(*hit, c), r, 1.0);

  // Segment fully inside must not cross.
  EXPECT_FALSE(
      oracle.segment_surface_intersection(c, c + Vec3{0.2 * r, 0, 0}).has_value());
  // Degenerate zero-length segment.
  EXPECT_FALSE(oracle.segment_surface_intersection(c, c).has_value());
}

TEST(IsosurfaceOracle, BallIntersectionTest) {
  const int n = 32;
  LabeledImage3D img = phantom::ball(n, 0.6);
  const IsosurfaceOracle oracle(img, 1);
  const Vec3 c{(n - 1) * 0.5, (n - 1) * 0.5, (n - 1) * 0.5};
  const double r = 0.6 * (n - 1) * 0.5;

  EXPECT_TRUE(oracle.ball_intersects_surface(c, 1.2 * r));
  EXPECT_FALSE(oracle.ball_intersects_surface(c, 0.3 * r));
  EXPECT_TRUE(oracle.inside(c));
  EXPECT_FALSE(oracle.inside(c + Vec3{2 * r, 0, 0}));
}

TEST(IsosurfaceOracle, InternalInterfaceIsDetected) {
  const int n = 32;
  LabeledImage3D img = phantom::concentric_shells(n);
  const IsosurfaceOracle oracle(img, 1);
  const Vec3 c{(n - 1) * 0.5, (n - 1) * 0.5, (n - 1) * 0.5};
  // From the core (label 2) walking outward we must first hit the 2|1
  // interface, well before the outer radius.
  const auto hit = oracle.segment_surface_intersection(c, c + Vec3{0.45 * n, 0, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(distance(*hit, c), 0.22 * n, 1.0);
}

}  // namespace
}  // namespace pi2m
