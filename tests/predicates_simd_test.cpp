// Batched-predicate and SoA-mirror validation: lane-vs-scalar parity of the
// SIMD stage-A filters on a torture corpus (near-degenerate, exactly
// cospherical, huge/tiny magnitudes), dispatch-override semantics, and
// coherence of the arena's SoA coordinate mirror under concurrent churn.
#include <gtest/gtest.h>

#include <atomic>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "delaunay/mesh.hpp"
#include "delaunay/operations.hpp"
#include "predicates/predicates.hpp"
#include "predicates/predicates_simd.hpp"
#include "support/simd.hpp"

namespace pi2m {
namespace {

/// Every test leaves dispatch in environment/CPUID-driven mode.
struct SimdOverrideGuard {
  ~SimdOverrideGuard() { simd::clear_simd_override(); }
};

struct O3dCase {
  Vec3 a, b, c, d;
};
struct IspCase {
  Vec3 a, b, c, d, e;
};

/// Corpus shared by the parity tests: random tuples plus the adversarial
/// families that defeat (or barely pass) the stage-A filter.
std::vector<O3dCase> orient3d_corpus() {
  std::vector<O3dCase> cases;
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const auto rnd = [&] { return Vec3{u(rng), u(rng), u(rng)}; };
  for (int i = 0; i < 256; ++i) cases.push_back({rnd(), rnd(), rnd(), rnd()});
  // Near-degenerate: coplanar base, apex perturbed by ever-smaller amounts
  // (including exactly zero and sub-errbound offsets the filter cannot
  // certify).
  for (const double dz :
       {0.0, 1e-300, -1e-300, DBL_MIN, 1e-18, -1e-18, 1e-12, DBL_EPSILON}) {
    cases.push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0.3, 0.4, dz}});
    cases.push_back(
        {{0.1, 0.2, 0.3}, {1.1, 0.2, 0.3}, {0.1, 1.2, 0.3}, {0.5, 0.6, 0.3 + dz}});
  }
  // Huge and tiny magnitudes (the filter's relative error bound must scale,
  // and overflow/underflow must fail the filter rather than mis-certify).
  for (const double s : {1e50, 1e-50, 1e120, 1e-120}) {
    for (int i = 0; i < 16; ++i) {
      cases.push_back({s * rnd(), s * rnd(), s * rnd(), s * rnd()});
    }
    cases.push_back(
        {{0, 0, 0}, {s, 0, 0}, {0, s, 0}, {0.3 * s, 0.4 * s, 0}});
  }
  // Mixed magnitudes within one tuple.
  for (int i = 0; i < 16; ++i) {
    cases.push_back({1e40 * rnd(), rnd(), 1e-40 * rnd(), rnd()});
  }
  return cases;
}

std::vector<IspCase> insphere_corpus() {
  std::vector<IspCase> cases;
  std::mt19937 rng(43);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const auto rnd = [&] { return Vec3{u(rng), u(rng), u(rng)}; };
  for (int i = 0; i < 256; ++i) {
    cases.push_back({rnd(), rnd(), rnd(), rnd(), rnd()});
  }
  // Exactly cospherical: all eight cube corners lie on one sphere, so the
  // determinant is exactly zero and only the exact ladder can say so.
  cases.push_back(
      {{0, 0, 0}, {1, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 1, 1}});
  cases.push_back(
      {{0, 0, 0}, {1, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 1, 0}});
  // Near-cospherical: query point nudged off the sphere by tiny offsets.
  for (const double dz :
       {0.0, 1e-300, -1e-300, 1e-18, -1e-18, DBL_EPSILON, -DBL_EPSILON}) {
    cases.push_back(
        {{0, 0, 0}, {1, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 1, 1 + dz}});
  }
  // Huge/tiny magnitudes (insphere's determinant is degree 5, so overflow
  // kicks in earlier than orient3d's degree 3).
  for (const double s : {1e40, 1e-40, 1e60}) {
    for (int i = 0; i < 16; ++i) {
      cases.push_back({s * rnd(), s * rnd(), s * rnd(), s * rnd(), s * rnd()});
    }
  }
  for (int i = 0; i < 16; ++i) {
    cases.push_back({1e30 * rnd(), rnd(), 1e-30 * rnd(), rnd(), rnd()});
  }
  return cases;
}

std::vector<simd::Level> levels_under_test() {
  // Force each level in turn; a clamped request (no AVX2 hardware or
  // -DPI2M_SIMD=OFF build) simply re-tests the scalar path.
  return {simd::Level::kScalar, simd::Level::kAvx2};
}

TEST(SimdParity, Orient3dLaneVsScalarOnTortureCorpus) {
  SimdOverrideGuard guard;
  const auto corpus = orient3d_corpus();
  for (const simd::Level want : levels_under_test()) {
    simd::force_simd_level(want);
    SCOPED_TRACE(std::string("level=") + simd::level_name(simd::active_level()));
    // Every batch width 1..kMaxLanes, sliding over the corpus so each case
    // appears at every lane position.
    for (int lanes = 1; lanes <= Orient3dBatch::kMaxLanes; ++lanes) {
      for (std::size_t base = 0; base + static_cast<std::size_t>(lanes) <=
                                 corpus.size();
           base += static_cast<std::size_t>(lanes)) {
        Orient3dBatch b;
        for (int k = 0; k < lanes; ++k) {
          const O3dCase& t = corpus[base + static_cast<std::size_t>(k)];
          b.set_lane(k, t.a, t.b, t.c, t.d);
        }
        int signs[Orient3dBatch::kMaxLanes];
        orient3d_batch(b, lanes, signs);
        for (int k = 0; k < lanes; ++k) {
          const O3dCase& t = corpus[base + static_cast<std::size_t>(k)];
          ASSERT_EQ(signs[k], orient3d(t.a, t.b, t.c, t.d))
              << "case " << base + static_cast<std::size_t>(k) << " lane " << k
              << " of " << lanes;
        }
      }
    }
  }
}

TEST(SimdParity, InsphereLaneVsScalarOnTortureCorpus) {
  SimdOverrideGuard guard;
  const auto corpus = insphere_corpus();
  for (const simd::Level want : levels_under_test()) {
    simd::force_simd_level(want);
    SCOPED_TRACE(std::string("level=") + simd::level_name(simd::active_level()));
    for (int lanes = 1; lanes <= InsphereBatch::kMaxLanes; ++lanes) {
      for (std::size_t base = 0; base + static_cast<std::size_t>(lanes) <=
                                 corpus.size();
           base += static_cast<std::size_t>(lanes)) {
        InsphereBatch b;
        for (int k = 0; k < lanes; ++k) {
          const IspCase& t = corpus[base + static_cast<std::size_t>(k)];
          b.set_lane(k, t.a, t.b, t.c, t.d, t.e);
        }
        int signs[InsphereBatch::kMaxLanes];
        insphere_batch(b, lanes, signs);
        for (int k = 0; k < lanes; ++k) {
          const IspCase& t = corpus[base + static_cast<std::size_t>(k)];
          ASSERT_EQ(signs[k], insphere(t.a, t.b, t.c, t.d, t.e))
              << "case " << base + static_cast<std::size_t>(k) << " lane " << k
              << " of " << lanes;
        }
      }
    }
  }
}

TEST(SimdParity, DegenerateLanesFallBackToScalarLadder) {
  SimdOverrideGuard guard;
  reset_simd_predicate_counters();
  // Two certifiable lanes bracketing two exactly-degenerate ones: the batch
  // must report exactly the uncertifiable lanes as fallbacks and still
  // return the true (zero) signs for them.
  Orient3dBatch b;
  b.set_lane(0, {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1});    // certified
  b.set_lane(1, {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0.3, 0.4, 0});  // 0, exact
  b.set_lane(2, {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, -1});   // certified
  b.set_lane(3, {0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {1.0, 0.5, 0});  // 0, exact
  int signs[4];
  const int nfail = orient3d_batch(b, 4, signs);
  EXPECT_EQ(nfail, 2);
  EXPECT_EQ(signs[0], orient3d({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}));
  EXPECT_EQ(signs[1], 0);
  EXPECT_EQ(signs[2], orient3d({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, -1}));
  EXPECT_EQ(signs[3], 0);
  EXPECT_NE(signs[0], 0);
  EXPECT_EQ(signs[0], -signs[2]);
  const SimdPredicateCounters c = simd_predicate_counters();
  EXPECT_EQ(c.orient3d_batches, 1u);
  EXPECT_EQ(c.orient3d_lanes, 4u);
  EXPECT_EQ(c.orient3d_fallback, 2u);
}

TEST(SimdDispatch, ForceAndClearOverride) {
  SimdOverrideGuard guard;
  simd::force_simd_level(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  simd::force_simd_level(simd::Level::kAvx2);
#if PI2M_SIMD_AVX2
  // Clamped to hardware support: either honoured or scalar, never invalid.
  const simd::Level l = simd::active_level();
  EXPECT_TRUE(l == simd::Level::kAvx2 || l == simd::Level::kScalar);
  if (__builtin_cpu_supports("avx2")) EXPECT_EQ(l, simd::Level::kAvx2);
#else
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
#endif
  simd::clear_simd_override();
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
}

/// Insert/remove churn with concurrent lock-free readers (locate walks read
/// positions through the SoA mirror), then a full-strength coherence check:
/// the mirror must agree bit-for-bit with the vertex records.
void soa_mirror_churn(int writer_threads) {
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1 << 16, 1 << 19);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inserts{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < writer_threads; ++t) {
    pool.emplace_back([&, t] {
      OpScratch s;
      std::mt19937 rng(9000 + t);
      std::uniform_real_distribution<double> u(0.02, 0.98);
      std::vector<VertexId> mine;
      CellId hint = 0;
      for (int i = 0; i < 400; ++i) {
        if (!mine.empty() && i % 4 == 3) {
          if (remove_vertex(mesh, mine.back(), t, s).status ==
              OpStatus::Success) {
            mine.pop_back();
          }
        } else {
          const OpResult r = insert_point(mesh, {u(rng), u(rng), u(rng)},
                                          VertexKind::Circumcenter, hint, t, s);
          if (r.status == OpStatus::Success) {
            mine.push_back(r.new_vertex);
            inserts.fetch_add(1, std::memory_order_relaxed);
            hint = s.created.front();
          }
        }
      }
    });
  }
  // One reader walking concurrently: every step reads coordinates through
  // the mirror (mesh.position) on the lock-free snapshot path.
  std::thread reader([&] {
    std::mt19937 rng(777);
    std::uniform_real_distribution<double> u(0.02, 0.98);
    while (!stop.load(std::memory_order_acquire)) {
      (void)locate_point(mesh, {u(rng), u(rng), u(rng)}, 0);
    }
  });
  for (auto& th : pool) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(inserts.load(), 0u);
  // check_integrity includes the mirror-vs-record scan; also assert it
  // directly so a future integrity refactor cannot silently drop it.
  EXPECT_EQ(mesh.check_integrity(/*check_delaunay=*/true), "");
  for (VertexId v = 0; v < mesh.vertex_count(); ++v) {
    if (mesh.vertex(v).dead.load()) continue;
    const Vec3 m = mesh.position(v);
    const Vec3& p = mesh.vertex(v).pos;
    ASSERT_EQ(std::memcmp(&m, &p, sizeof(Vec3)), 0)
        << "mirror mismatch at vertex " << v;
  }
}

TEST(SoaMirror, CoherentAfterSingleThreadChurn) { soa_mirror_churn(1); }
TEST(SoaMirror, CoherentAfterTwoThreadChurn) { soa_mirror_churn(2); }
TEST(SoaMirror, CoherentAfterFourThreadChurn) { soa_mirror_churn(4); }

TEST(SoaMirror, BatchedLocateMatchesScalar) {
  // locate_points on a quiescent mesh must land every query in a cell that
  // actually contains it (the same contract as scalar locate_point).
  DelaunayMesh mesh({{0, 0, 0}, {1, 1, 1}}, 1 << 16, 1 << 19);
  OpScratch s;
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> u(0.05, 0.95);
  CellId hint = 0;
  for (int i = 0; i < 600; ++i) {
    const OpResult r = insert_point(mesh, {u(rng), u(rng), u(rng)},
                                    VertexKind::Circumcenter, hint, 0, s);
    if (r.status == OpStatus::Success) hint = s.created.front();
  }
  for (int round = 0; round < 64; ++round) {
    Vec3 pts[kMaxLocateBatch];
    CellId hints[kMaxLocateBatch];
    LocateResult out[kMaxLocateBatch];
    for (int k = 0; k < kMaxLocateBatch; ++k) {
      pts[k] = {u(rng), u(rng), u(rng)};
      hints[k] = hint;
    }
    const int ok = locate_points(mesh, pts, kMaxLocateBatch, hints, out);
    EXPECT_EQ(ok, kMaxLocateBatch);
    for (int k = 0; k < kMaxLocateBatch; ++k) {
      ASSERT_TRUE(out[k].ok);
      const LocateResult ref = locate_point(mesh, pts[k], hints[k]);
      ASSERT_TRUE(ref.ok);
      // Quiescent mesh + identical hint and walk rule: identical cell.
      EXPECT_EQ(out[k].cell, ref.cell);
    }
  }
}

}  // namespace
}  // namespace pi2m
