#include "geometry/tetra.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geometry/vec3.hpp"

namespace pi2m {
namespace {

TEST(Vec3, BasicAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
  EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
}

TEST(Aabb, ExpandAndContain) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 2, 3});
  EXPECT_TRUE(box.contains({0.5, 1.0, 1.5}));
  EXPECT_FALSE(box.contains({-0.1, 0, 0}));
  const Aabb big = box.inflated(1.0);
  EXPECT_TRUE(big.contains({-0.5, -0.5, -0.5}));
  EXPECT_EQ(box.center(), (Vec3{0.5, 1.0, 1.5}));
}

TEST(Circumsphere, RegularTetrahedron) {
  // Vertices of a regular tetrahedron inscribed in the unit sphere.
  const double s = 1.0 / std::sqrt(3.0);
  const Vec3 a{s, s, s}, b{s, -s, -s}, c{-s, s, -s}, d{-s, -s, s};
  const Circumsphere cs = circumsphere(a, b, c, d);
  ASSERT_TRUE(cs.valid);
  EXPECT_NEAR(cs.center.x, 0.0, 1e-12);
  EXPECT_NEAR(cs.center.y, 0.0, 1e-12);
  EXPECT_NEAR(cs.center.z, 0.0, 1e-12);
  EXPECT_NEAR(cs.radius2, 1.0, 1e-12);
}

TEST(Circumsphere, EquidistantFromAllVerticesRandom) {
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> u(-5, 5);
  int valid = 0;
  for (int i = 0; i < 500; ++i) {
    const Vec3 a{u(rng), u(rng), u(rng)}, b{u(rng), u(rng), u(rng)};
    const Vec3 c{u(rng), u(rng), u(rng)}, d{u(rng), u(rng), u(rng)};
    const Circumsphere cs = circumsphere(a, b, c, d);
    if (!cs.valid) continue;
    ++valid;
    const double r2 = cs.radius2;
    for (const Vec3& p : {a, b, c, d}) {
      EXPECT_NEAR(distance2(cs.center, p), r2, 1e-6 * r2 + 1e-12);
    }
  }
  EXPECT_GT(valid, 450);
}

TEST(Circumsphere, DegenerateFlagged) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{2, 0, 0}, d{3, 0, 0};
  EXPECT_FALSE(circumsphere(a, b, c, d).valid);
  EXPECT_GE(radius_edge_ratio(a, b, c, d), 1e299);
}

TEST(TriangleCircumcircle, Equilateral) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0.5, std::sqrt(3.0) / 2.0, 0};
  const Circumsphere cc = triangle_circumcircle(a, b, c);
  ASSERT_TRUE(cc.valid);
  EXPECT_NEAR(std::sqrt(cc.radius2), 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(distance(cc.center, a), distance(cc.center, b), 1e-12);
  EXPECT_NEAR(distance(cc.center, a), distance(cc.center, c), 1e-12);
}

TEST(SignedVolume, UnitTet) {
  EXPECT_NEAR(
      signed_volume({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}), -1.0 / 6.0,
      1e-15);
  EXPECT_NEAR(
      signed_volume({0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {0, 0, 1}), 1.0 / 6.0,
      1e-15);
}

TEST(RadiusEdgeRatio, RegularTetIsOptimal) {
  const double s = 1.0 / std::sqrt(3.0);
  const Vec3 a{s, s, s}, b{s, -s, -s}, c{-s, s, -s}, d{-s, -s, s};
  // Regular tetrahedron: R / l = sqrt(3/8) ~ 0.612, the global minimum.
  EXPECT_NEAR(radius_edge_ratio(a, b, c, d), std::sqrt(3.0 / 8.0), 1e-12);
}

TEST(DihedralAngles, RightCornerTet) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  const auto angles = dihedral_angles(a, b, c, d);
  // The three coordinate-plane pairs meet at 90 degrees.
  int right = 0;
  for (double ang : angles) {
    if (std::abs(ang - 90.0) < 1e-9) ++right;
  }
  EXPECT_EQ(right, 3);
}

TEST(DihedralAngles, SumKnownForRegular) {
  const double s = 1.0 / std::sqrt(3.0);
  const Vec3 a{s, s, s}, b{s, -s, -s}, c{-s, s, -s}, d{-s, -s, s};
  const auto angles = dihedral_angles(a, b, c, d);
  for (double ang : angles) {
    EXPECT_NEAR(ang, 70.528779365509308630754, 1e-9);  // arccos(1/3)
  }
}

TEST(TriangleAngles, SumTo180) {
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> u(-3, 3);
  for (int i = 0; i < 300; ++i) {
    const Vec3 a{u(rng), u(rng), u(rng)}, b{u(rng), u(rng), u(rng)},
        c{u(rng), u(rng), u(rng)};
    const auto ang = triangle_angles(a, b, c);
    EXPECT_NEAR(ang[0] + ang[1] + ang[2], 180.0, 1e-6);
    EXPECT_LE(min_triangle_angle(a, b, c), 60.0 + 1e-9);
  }
}

}  // namespace
}  // namespace pi2m
